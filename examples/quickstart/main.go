// Quickstart: define a GFD, build a small graph, and detect violations —
// the Canberra/Melbourne "two capitals" inconsistency from the paper's
// introduction.
package main

import (
	"fmt"

	"gfd"
)

func main() {
	// A GFD ϕ = (Q[x̄], X → Y) has a pattern (the topological scope) and a
	// dependency. Pattern Q2: a country with two capital edges.
	q := gfd.NewPattern()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")

	// ϕ2 = (Q2[x,y,z], ∅ → y.val = z.val): if a country has two capital
	// entities, they must be the same city.
	phi2 := gfd.MustGFD("one_capital", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "z", "val")})

	// A knowledge graph with the classic error.
	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "Australia"})
	canberra := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	melbourne := g.AddNode("city", gfd.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, canberra, "capital")
	g.MustAddEdge(au, melbourne, "capital")

	fr := g.AddNode("country", gfd.Attrs{"val": "France"})
	paris := g.AddNode("city", gfd.Attrs{"val": "Paris"})
	g.MustAddEdge(fr, paris, "capital")

	// Sequential validation returns every violating match.
	set := gfd.MustSet(phi2)
	for _, v := range gfd.Validate(g, set) {
		fmt.Printf("violation of %s:", v.Rule)
		for _, node := range v.Nodes() {
			val, _ := g.Attr(node, "val")
			fmt.Printf(" %s(%s)", g.Label(node), val)
		}
		fmt.Println()
	}

	// The same detection, parallel over 4 workers with the graph
	// replicated (the paper's repVal).
	res := gfd.ValidateParallel(g, set, gfd.Options{N: 4})
	fmt.Printf("parallel: %d violations across %d work units in %v\n",
		len(res.Violations), res.Units, res.Wall.Round(0))
}
