// Quickstart: define a GFD, build a small graph, and detect violations —
// the Canberra/Melbourne "two capitals" inconsistency from the paper's
// introduction — through the intended lifecycle:
//
//	build graph -> NewSession -> Prepare -> Detect / Violations
//
// The session owns the compiled state (the frozen snapshot and the
// lowered rules); Detect and the pull-based Violations iterator run any
// engine from it, and mutating the graph re-prepares automatically on
// the next call.
package main

import (
	"context"
	"fmt"

	"gfd"
)

func main() {
	// A GFD ϕ = (Q[x̄], X → Y) has a pattern (the topological scope) and a
	// dependency. Pattern Q2: a country with two capital edges.
	q := gfd.NewPattern()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")

	// ϕ2 = (Q2[x,y,z], ∅ → y.val = z.val): if a country has two capital
	// entities, they must be the same city.
	phi2 := gfd.MustGFD("one_capital", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "z", "val")})

	// A knowledge graph with the classic error.
	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "Australia"})
	canberra := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	melbourne := g.AddNode("city", gfd.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, canberra, "capital")
	g.MustAddEdge(au, melbourne, "capital")

	fr := g.AddNode("country", gfd.Attrs{"val": "France"})
	paris := g.AddNode("city", gfd.Attrs{"val": "Paris"})
	g.MustAddEdge(fr, paris, "capital")

	// Prepare once: the graph is frozen into its compiled snapshot and
	// every rule is lowered onto it. All later Detect/Violations calls reuse
	// those artifacts.
	ctx := context.Background()
	sess, err := gfd.NewSession(g)
	if err != nil {
		panic(err)
	}
	prep, err := sess.Prepare(gfd.MustSet(phi2))
	if err != nil {
		panic(err)
	}

	// Sequential detection returns every violating match.
	res, err := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineSequential})
	if err != nil {
		panic(err)
	}
	for _, v := range res.Violations {
		fmt.Printf("violation of %s:", v.Rule)
		for _, node := range v.Nodes() {
			val, _ := g.Attr(node, "val")
			fmt.Printf(" %s(%s)", g.Label(node), val)
		}
		fmt.Println()
	}

	// The same detection, parallel over 4 workers with the graph
	// replicated (the paper's repVal) — same prepared state, different
	// engine.
	par, err := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineReplicated, N: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallel: %d violations across %d work units in %v\n",
		len(par.Violations), par.Units, par.Wall.Round(0))

	// Violations pulls violations lazily as the engine finds them — no
	// report is materialized, and breaking out of the range stops
	// detection immediately, all the way down inside candidate
	// enumeration. The iterator yields a non-nil error at most once, as
	// its final element.
	for v, err := range prep.Violations(ctx, gfd.Options{Engine: gfd.EngineSequential}) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("streamed first violation: %s\n", v.Rule)
		break // stop after one — no goroutines leak, no workers wedge
	}

	// Mutating the graph invalidates the prepared state; the next Detect
	// re-freezes and re-lowers automatically. Fixing Melbourne's capital
	// edge away resolves nothing (the edge stays), but renaming the city
	// to Canberra satisfies y.val = z.val.
	g.SetAttr(melbourne, "val", "Canberra")
	res, err = prep.Detect(ctx, gfd.Options{Engine: gfd.EngineSequential})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after repair: %d violations\n", len(res.Violations))
}
