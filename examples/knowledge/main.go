// Knowledge-graph cleaning: the three real-life GFDs of the paper's Fig. 7
// run against a YAGO2-like knowledge graph with injected noise, using both
// the replicated (repVal) and fragmented (disVal) parallel engines.
//
// This is deliverable (b)'s domain scenario for the paper's headline use
// case — detecting inconsistencies in knowledge bases.
package main

import (
	"fmt"

	"gfd"
)

// childParentCycle is Fig. 7 GFD 1: nobody is both child and parent of the
// same person. The consequent is unsatisfiable by construction, so every
// match of the cyclic pattern is an error.
func childParentCycle() *gfd.GFD {
	q := gfd.NewPattern()
	x := q.AddNode("x", "person")
	y := q.AddNode("y", "person")
	q.AddEdge(x, y, "has_child")
	q.AddEdge(x, y, "has_parent")
	return gfd.MustGFD("child_parent_cycle", q, nil,
		[]gfd.Literal{gfd.Const("x", "__absurd", "1")})
}

// disjointTypes is Fig. 7 GFD 2: an entity cannot carry two disjoint
// classes.
func disjointTypes() *gfd.GFD {
	q := gfd.NewPattern()
	x := q.AddNode("x", gfd.Wildcard)
	y := q.AddNode("y", "class")
	yp := q.AddNode("yp", "class")
	q.AddEdge(x, y, "type")
	q.AddEdge(x, yp, "type")
	q.AddEdge(y, yp, "disjoint_with")
	return gfd.MustGFD("disjoint_types", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "yp", "val")})
}

// mayorPartyCountry is Fig. 7 GFD 3: a mayor's city and party must be in
// the same country.
func mayorPartyCountry() *gfd.GFD {
	q := gfd.NewPattern()
	p := q.AddNode("p", "person")
	c := q.AddNode("c", "city")
	z := q.AddNode("z", "country")
	pa := q.AddNode("pa", "party")
	zp := q.AddNode("zp", "country")
	q.AddEdge(p, c, "mayor_of")
	q.AddEdge(c, z, "located_in")
	q.AddEdge(p, pa, "affiliated_to")
	q.AddEdge(pa, zp, "in_country")
	return gfd.MustGFD("mayor_party_country", q, nil,
		[]gfd.Literal{gfd.VarEq("z", "val", "zp", "val")})
}

// flightConsistency is ϕ1 of Example 5 (reduced to id/from/to): flights
// sharing a flight number share origin and destination.
func flightConsistency() *gfd.GFD {
	q := gfd.NewPattern()
	for _, pre := range []string{"x", "y"} {
		f := q.AddNode(gfd.Var(pre), "flight")
		id := q.AddNode(gfd.Var(pre+"1"), "id")
		from := q.AddNode(gfd.Var(pre+"2"), "city")
		to := q.AddNode(gfd.Var(pre+"3"), "city")
		q.AddEdge(f, id, "number")
		q.AddEdge(f, from, "from")
		q.AddEdge(f, to, "to")
	}
	return gfd.MustGFD("flight_consistency", q,
		[]gfd.Literal{gfd.VarEq("x1", "val", "y1", "val")},
		[]gfd.Literal{gfd.VarEq("x2", "val", "y2", "val"), gfd.VarEq("x3", "val", "y3", "val")})
}

func main() {
	// A YAGO2-like stand-in with corrupted entities. The generators live
	// behind the MineGFDs-style public API; here we build the graph by
	// file to show the text format, then inject inconsistencies by hand.
	g := buildNoisyKnowledgeGraph()
	set := gfd.MustSet(childParentCycle(), disjointTypes(), mayorPartyCountry(), flightConsistency())

	// Static analyses first: the rule set must be satisfiable (not dirty
	// itself), and free of redundant rules.
	if ok, conflict := gfd.Satisfiable(set); !ok {
		fmt.Println("rule set is dirty:", conflict)
		return
	}
	reduced := gfd.Reduce(set)
	fmt.Printf("rules: %d (%d after implication reduction)\n", set.Len(), reduced.Len())

	// Replicated-graph parallel detection.
	rep := gfd.ValidateParallel(g, reduced, gfd.Options{N: 8})
	fmt.Printf("repVal: %d violations, %d units, makespan %d, wall %v\n",
		len(rep.Violations), rep.Units, rep.Makespan, rep.Wall.Round(0))

	// Fragmented-graph detection with simulated data shipment.
	frag := gfd.Partition(g, 8)
	dis := gfd.ValidateFragmented(g, frag, reduced, gfd.Options{N: 8})
	fmt.Printf("disVal: %d violations, shipped %d bytes, comm %v, total %v\n",
		len(dis.Violations), dis.BytesShipped, dis.Comm.Round(0), dis.TotalTime().Round(0))

	// Report the inconsistent entities per rule.
	byRule := make(map[string]int)
	for _, v := range rep.Violations {
		byRule[v.Rule]++
	}
	for rule, n := range byRule {
		fmt.Printf("  %-24s %d violating matches\n", rule, n)
	}
}

// buildNoisyKnowledgeGraph lays down a small knowledge graph containing
// one instance of each Fig. 7 inconsistency and a flight-number clash.
func buildNoisyKnowledgeGraph() *gfd.Graph {
	g := gfd.NewGraph(0, 0)

	// Family with an impossible cycle.
	ann := g.AddNode("person", gfd.Attrs{"val": "ann"})
	tom := g.AddNode("person", gfd.Attrs{"val": "tom"})
	g.MustAddEdge(ann, tom, "has_child")
	g.MustAddEdge(ann, tom, "has_parent") // corrupt: tom is also ann's parent

	// Disjoint classes on one entity.
	person := g.AddNode("class", gfd.Attrs{"val": "Person"})
	building := g.AddNode("class", gfd.Attrs{"val": "Building"})
	g.MustAddEdge(person, building, "disjoint_with")
	odd := g.AddNode("entity", gfd.Attrs{"val": "Big_Ben_Smith"})
	g.MustAddEdge(odd, person, "type")
	g.MustAddEdge(odd, building, "type")

	// Mayor of NYC affiliated to a party registered in France.
	us := g.AddNode("country", gfd.Attrs{"val": "US"})
	fr := g.AddNode("country", gfd.Attrs{"val": "FR"})
	nyc := g.AddNode("city", gfd.Attrs{"val": "NYC"})
	dem := g.AddNode("party", gfd.Attrs{"val": "Democratic"})
	mayor := g.AddNode("person", gfd.Attrs{"val": "the_mayor"})
	g.MustAddEdge(nyc, us, "located_in")
	g.MustAddEdge(dem, fr, "in_country")
	g.MustAddEdge(mayor, nyc, "mayor_of")
	g.MustAddEdge(mayor, dem, "affiliated_to")

	// Two DL1 flights with different destinations (Example 1).
	addFlight := func(name, id, from, to string) {
		f := g.AddNode("flight", gfd.Attrs{"val": name})
		sat := func(label, val string) gfd.NodeID {
			return g.AddNode(label, gfd.Attrs{"val": val})
		}
		g.MustAddEdge(f, sat("id", id), "number")
		g.MustAddEdge(f, sat("city", from), "from")
		g.MustAddEdge(f, sat("city", to), "to")
	}
	addFlight("flight1", "DL1", "Paris", "NYC")
	addFlight("flight2", "DL1", "Paris", "Singapore")
	addFlight("flight3", "BA7", "Edi", "Lon")
	addFlight("flight4", "BA7", "Edi", "Lon")
	return g
}
