// Relational dependencies as GFDs: FDs and CFDs over a relation become
// GFDs over a tuple graph (Example 5, ϕ4 / ϕ4' / ϕ4”), and the classical
// static analyses run on them — including the paper's observation that a
// CFD set can be unsatisfiable on its own.
package main

import (
	"fmt"

	"gfd"
)

func main() {
	// The relation cust(country, area_code, zip, city, street, phone),
	// one node labeled "cust" per tuple.
	g := gfd.NewGraph(0, 0)
	rows := []gfd.Attrs{
		{"country": "44", "area_code": "131", "zip": "EH4 1DT", "city": "Edi", "street": "Mayfield"},
		{"country": "44", "area_code": "131", "zip": "EH4 1DT", "city": "Edi", "street": "Crichton"}, // zip→street breach
		{"country": "44", "area_code": "131", "zip": "EH8 9LE", "city": "Lon", "street": "Baker"},    // city should be Edi
		{"country": "01", "area_code": "908", "zip": "07974", "city": "MH", "street": "Mountain Ave"},
	}
	for _, r := range rows {
		g.AddNode("cust", r)
	}

	// ϕ4: the plain FD zip → street, scoped to the UK via conditions —
	// exactly the paper's CFD R(country = 44, zip → street).
	cfd1 := gfd.FromCFD("uk_zip_street", "cust",
		[]gfd.CFDCondition{{Attr: "country", Value: "44"}},
		[]string{"zip"}, []string{"street"})

	// ϕ4'': the constant CFD R(country = 44, area_code = 131 → city = Edi).
	cfd2 := gfd.FromConstantCFD("uk_area_city", "cust",
		[]gfd.CFDCondition{{Attr: "country", Value: "44"}, {Attr: "area_code", Value: "131"}},
		[]gfd.CFDCondition{{Attr: "city", Value: "Edi"}})

	set := gfd.MustSet(cfd1, cfd2)
	fmt.Println("violations over the tuple graph:")
	for _, v := range gfd.Validate(g, set) {
		fmt.Printf("  %s on tuple(s) %v\n", v.Rule, v.Nodes())
	}

	// Static analysis: two constant CFDs forcing different cities for the
	// same condition are unsatisfiable — caught before ever touching data.
	clash := gfd.FromConstantCFD("uk_area_city_conflict", "cust",
		[]gfd.CFDCondition{{Attr: "country", Value: "44"}, {Attr: "area_code", Value: "131"}},
		[]gfd.CFDCondition{{Attr: "city", Value: "Gla"}})
	dirty := gfd.MustSet(cfd2, clash,
		gfd.MustGFD("seed", oneCust(), nil, []gfd.Literal{
			gfd.Const("x", "country", "44"), gfd.Const("x", "area_code", "131"),
		}))
	if ok, conflict := gfd.Satisfiable(dirty); !ok {
		fmt.Println("dirty rule set rejected:", conflict)
	} else {
		fmt.Println("rule set satisfiable")
	}

	// Implication prunes redundant rules: a weaker copy of cfd1 is implied.
	weaker := gfd.FromCFD("uk_zip_street_weaker", "cust",
		[]gfd.CFDCondition{{Attr: "country", Value: "44"}, {Attr: "area_code", Value: "131"}},
		[]string{"zip"}, []string{"street"})
	withWeaker := gfd.MustSet(cfd1, cfd2, weaker)
	reduced := gfd.Reduce(withWeaker)
	fmt.Printf("reduction: %d rules -> %d (dropped the implied CFD)\n",
		withWeaker.Len(), reduced.Len())
}

func oneCust() *gfd.Pattern {
	q := gfd.NewPattern()
	q.AddNode("x", "cust")
	return q
}
