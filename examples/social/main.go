// Social-network moderation: the fake-account GFD ϕ6 and the blog/photo
// annotation GFD ϕ5 of Example 5, over a small social graph. Demonstrates
// constant literals, larger patterns, and using violations as a work queue
// for moderation.
package main

import (
	"fmt"
	"sort"

	"gfd"
)

// fakeAccount is ϕ6 with k = 2: if a confirmed-fake account x' and an
// account x like the same two blogs, and both posted blogs carrying the
// same spam keyword c, then x is fake too.
func fakeAccount(keyword string) *gfd.GFD {
	q := gfd.NewPattern()
	x := q.AddNode("x", "account")
	xp := q.AddNode("xp", "account")
	y1 := q.AddNode("y1", "blog")
	y2 := q.AddNode("y2", "blog")
	z1 := q.AddNode("z1", "blog")
	z2 := q.AddNode("z2", "blog")
	q.AddEdge(x, y1, "like")
	q.AddEdge(x, y2, "like")
	q.AddEdge(xp, y1, "like")
	q.AddEdge(xp, y2, "like")
	q.AddEdge(xp, z1, "post")
	q.AddEdge(x, z2, "post")
	return gfd.MustGFD("fake_account", q,
		[]gfd.Literal{
			gfd.Const("xp", "is_fake", "true"),
			gfd.Const("z1", "keyword", keyword),
			gfd.Const("z2", "keyword", keyword),
		},
		[]gfd.Literal{gfd.Const("x", "is_fake", "true")})
}

// blogAnnotation is ϕ5: a status describing a blog's photo must match the
// photo's description.
func blogAnnotation() *gfd.GFD {
	q := gfd.NewPattern()
	z := q.AddNode("z", "blog")
	x := q.AddNode("x", "status")
	y := q.AddNode("y", "photo")
	q.AddEdge(z, x, "has_status")
	q.AddEdge(z, y, "has_photo")
	q.AddEdge(x, y, "has_attachment")
	return gfd.MustGFD("blog_annotation", q, nil,
		[]gfd.Literal{gfd.VarEq("x", "text", "y", "desc")})
}

func main() {
	g := buildSocialGraph()
	set := gfd.MustSet(fakeAccount("free prize"), blogAnnotation())

	res := gfd.ValidateParallel(g, set, gfd.Options{N: 4})
	fmt.Printf("checked %d accounts/blogs: %d violations (%d work units)\n",
		g.NumNodes(), len(res.Violations), res.Units)

	// Build the moderation queue: accounts implicated by fake_account,
	// ranked by how many violating matches involve them.
	suspect := make(map[string]int)
	for _, v := range res.Violations {
		if v.Rule != "fake_account" {
			continue
		}
		// Pattern node 0 is x, the account to flag.
		val, _ := g.Attr(v.Match[0], "val")
		suspect[val]++
	}
	names := make([]string, 0, len(suspect))
	for n := range suspect {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return suspect[names[i]] > suspect[names[j]] })
	fmt.Println("moderation queue (fake-account suspects):")
	for _, n := range names {
		fmt.Printf("  %-10s evidence: %d matching spam patterns\n", n, suspect[n])
	}

	for _, v := range res.Violations {
		if v.Rule == "blog_annotation" {
			txt, _ := g.Attr(v.Match[1], "text")
			desc, _ := g.Attr(v.Match[2], "desc")
			fmt.Printf("mismatched annotation: status says %q, photo says %q\n", txt, desc)
		}
	}
}

// buildSocialGraph reproduces the shape of Fig. 1's G2: three confirmed
// fake accounts and one unlabeled account sharing likes and spam posts,
// plus a blog whose status contradicts its photo.
func buildSocialGraph() *gfd.Graph {
	g := gfd.NewGraph(0, 0)
	acct := func(name, fake string) gfd.NodeID {
		return g.AddNode("account", gfd.Attrs{"val": name, "is_fake": fake})
	}
	blog := func(name, keyword string) gfd.NodeID {
		a := gfd.Attrs{"val": name}
		if keyword != "" {
			a["keyword"] = keyword
		}
		return g.AddNode("blog", a)
	}
	a1 := acct("acct1", "true")
	a2 := acct("acct2", "true")
	a3 := acct("acct3", "true")
	a4 := acct("acct4", "false") // the paper's G2: acct4 should be caught

	p := make([]gfd.NodeID, 9)
	for i := 1; i <= 4; i++ {
		p[i] = blog(fmt.Sprintf("p%d", i), "")
	}
	p[5] = blog("p5", "free prize")
	p[6] = blog("p6", "free prize")
	p[7] = blog("p7", "free prize")
	p[8] = blog("p8", "free prize")

	// Likes: acct1/acct2 share p1,p2; acct3/acct4 share p3,p4.
	g.MustAddEdge(a1, p[1], "like")
	g.MustAddEdge(a1, p[2], "like")
	g.MustAddEdge(a2, p[1], "like")
	g.MustAddEdge(a2, p[2], "like")
	g.MustAddEdge(a3, p[3], "like")
	g.MustAddEdge(a3, p[4], "like")
	g.MustAddEdge(a4, p[3], "like")
	g.MustAddEdge(a4, p[4], "like")
	// Posts with the spam keyword.
	g.MustAddEdge(a1, p[5], "post")
	g.MustAddEdge(a2, p[6], "post")
	g.MustAddEdge(a3, p[7], "post")
	g.MustAddEdge(a4, p[8], "post")

	// Blog with inconsistent annotation (ϕ5).
	b := blog("travel", "")
	s := g.AddNode("status", gfd.Attrs{"val": "s1", "text": "beach day"})
	ph := g.AddNode("photo", gfd.Attrs{"val": "ph1", "desc": "mountain hike"})
	g.MustAddEdge(b, s, "has_status")
	g.MustAddEdge(b, ph, "has_photo")
	g.MustAddEdge(s, ph, "has_attachment")
	return g
}
