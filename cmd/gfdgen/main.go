// gfdgen generates benchmark inputs: synthetic or dataset-stand-in graphs,
// mined GFD rule sets, and noise injection with ground truth.
//
// Usage:
//
//	gfdgen -dataset yago2 -scale 500 -out g.graph [-rules r.gfd -nrules 10]
//	       [-noise 0.02] [-seed 1] [-snapshot g.gfds] [-fragments 4 [-strategy hash]]
//
// With -rules set, rules are mined on the *clean* graph before noise is
// injected, matching the evaluation methodology of the paper (Section 7).
// With -snapshot set, the final graph (after noise) is also frozen and
// saved in the binary snapshot format, which gfdcheck and gfdbench open
// without rebuilding; at least one of -out / -snapshot is required.
// With -fragments n (requires -snapshot), the frozen graph is additionally
// persisted as n per-fragment shards plus a shard manifest next to the
// snapshot — the input of gfdcheck -mode dist, whose worker processes each
// mmap their own shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gfd"
	"gfd/internal/gen"
	"gfd/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "synthetic", "synthetic | yago2 | dbpedia | pokec")
		scale   = flag.Int("scale", 500, "dataset scale (entities; synthetic: nodes = 10x)")
		out     = flag.String("out", "", "graph text output file")
		snap    = flag.String("snapshot", "", "binary snapshot output file (.gfds; freeze + save)")
		rules   = flag.String("rules", "", "also mine rules into this file")
		nrules  = flag.Int("nrules", 10, "rules to mine")
		qsize   = flag.Int("q", 5, "pattern size |Q| in nodes")
		twoFrac = flag.Float64("two-comp", 0.3, "fraction of two-component rules")
		noise   = flag.Float64("noise", 0, "attribute-noise rate to inject after mining")
		skew    = flag.Float64("skew", 0.5, "degree skew for synthetic graphs")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		frags   = flag.Int("fragments", 0, "also persist the snapshot as this many per-fragment shards + manifest (requires -snapshot)")
		strat   = flag.String("strategy", "hash", "shard ownership strategy: hash | range")
	)
	flag.Parse()
	if *out == "" && *snap == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *frags > 0 && *snap == "" {
		fatal(fmt.Errorf("-fragments requires -snapshot (shards live next to the snapshot file)"))
	}

	var g *graph.Graph
	switch *dataset {
	case "yago2":
		g = gen.YAGO2Like(gen.DatasetConfig{Scale: *scale, Seed: *seed})
	case "dbpedia":
		g = gen.DBpediaLike(gen.DatasetConfig{Scale: *scale, Seed: *seed})
	case "pokec":
		g = gen.PokecLike(gen.DatasetConfig{Scale: *scale, Seed: *seed})
	case "synthetic":
		g = gen.Synthetic(gen.SyntheticConfig{Nodes: *scale * 10, Edges: *scale * 20, Skew: *skew, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	fmt.Printf("generated %s: %d nodes, %d edges\n", *dataset, g.NumNodes(), g.NumEdges())

	if *rules != "" {
		set := gfd.MineGFDs(g, gfd.MineConfig{
			NumRules: *nrules, PatternSize: *qsize, TwoCompFrac: *twoFrac, Seed: *seed + 2,
		})
		if err := writeRules(*rules, set); err != nil {
			fatal(err)
		}
		fmt.Printf("mined %d rules -> %s\n", set.Len(), *rules)
	}

	if *noise > 0 {
		errs := gen.Inject(g, gen.NoiseConfig{Rate: *noise, Seed: *seed + 1})
		fmt.Printf("injected %d errors\n", len(errs))
	}

	if *out != "" {
		if err := writeGraph(*out, g); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *snap != "" {
		if err := gfd.SaveSnapshot(context.Background(), g, *snap); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote snapshot %s\n", *snap)
	}
	if *frags > 0 {
		dir := filepath.Dir(*snap)
		prefix := strings.TrimSuffix(filepath.Base(*snap), ".gfds")
		mp, err := gfd.WriteShards(g, *frags, *strat, dir, prefix)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d %s-partitioned shards + manifest %s\n", *frags, *strat, mp)
	}
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.Write(f, g)
}

func writeRules(path string, set *gfd.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gfd.WriteRules(f, set)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdgen:", err)
	os.Exit(2)
}
