package main

import (
	"encoding/json"
	"math"
	"testing"
)

func emission(t *testing.T, cells map[string]float64) map[string]any {
	t.Helper()
	doc := map[string]any{
		"experiment": "fig6", "timestamp": "ignored",
		"scale": 60, "rules": 8, "pattern_q": 4, "seed": 42,
		"result": map[string]any{
			"Title": "t", "XLabel": "x",
			"Rows": []any{map[string]any{"X": "1x", "Cells": cells}},
		},
	}
	// Round-trip through JSON so numbers decode as float64 like real files.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdenticalRunsPass(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.01, "disran": 0.02})
	r, err := Compare("BENCH_fig6.json", base, base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Geomean-1) > 1e-9 {
		t.Fatalf("identical runs geomean = %v, want 1", r.Geomean)
	}
	if _, failed := Summarize([]FileResult{r}, 0.15); failed {
		t.Fatal("identical runs must pass the gate")
	}
}

// TestSyntheticRegressionFails is the gate's acceptance check: a uniform
// +20% slowdown (above the 15% threshold) must fail.
func TestSyntheticRegressionFails(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.010, "disran": 0.020, "disnop": 0.015})
	fresh := emission(t, map[string]float64{"disVal": 0.012, "disran": 0.024, "disnop": 0.018})
	r, err := Compare("BENCH_fig6.json", base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Geomean-1.2) > 1e-6 {
		t.Fatalf("geomean = %v, want 1.2", r.Geomean)
	}
	overall, failed := Summarize([]FileResult{r}, 0.15)
	if !failed {
		t.Fatalf("a 20%% regression (geomean %.3f) must fail the 15%% gate", overall)
	}
}

func TestModestNoisePasses(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.010, "disran": 0.020})
	fresh := emission(t, map[string]float64{"disVal": 0.011, "disran": 0.021}) // ≈ +7.5% geomean
	r, err := Compare("BENCH_fig6.json", base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := Summarize([]FileResult{r}, 0.15); failed {
		t.Fatal("sub-threshold noise must pass")
	}
}

func TestImprovementPasses(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.020})
	fresh := emission(t, map[string]float64{"disVal": 0.010})
	r, err := Compare("BENCH_fig6.json", base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := Summarize([]FileResult{r}, 0.15); failed {
		t.Fatal("a 2x speedup must pass")
	}
}

func TestConfigMismatchIsHardError(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.01})
	fresh := emission(t, map[string]float64{"disVal": 0.01})
	fresh["scale"] = float64(120)
	if _, err := Compare("BENCH_fig6.json", base, fresh); err == nil {
		t.Fatal("differing scale must be a hard error, not a comparison")
	}
}

// TestNoComparableMetricsIsHardError: a comparison where nothing pairs up
// must not pass vacuously — that would mean the gate silently stopped
// gating (e.g. after a series rename).
func TestNoComparableMetricsIsHardError(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.01})
	fresh := emission(t, map[string]float64{"disval": 0.01}) // renamed series
	if _, err := Compare("BENCH_fig6.json", base, fresh); err == nil {
		t.Fatal("zero comparable metrics must be a hard error, not geomean 1")
	}
}

// TestBestOfNMergeDampsNoise: with repeated fresh runs, each metric takes
// its per-path minimum, so one noisy run does not trip the gate — while a
// real regression, present in every run, survives the minimum.
func TestBestOfNMergeDampsNoise(t *testing.T) {
	noisy := emission(t, map[string]float64{"disVal": 0.019, "disran": 0.010})
	quiet := emission(t, map[string]float64{"disVal": 0.010, "disran": 0.019})
	mergeMin(noisy, quiet)
	got := flatten("", noisy["result"])
	for path, v := range got {
		if v != 0.010 {
			t.Fatalf("min-merge: %s = %v, want 0.010", path, v)
		}
	}
}

func TestBelowFloorAndMissingMetricsSkipped(t *testing.T) {
	base := emission(t, map[string]float64{"disVal": 0.01, "tiny": 1e-9, "gone": 0.02})
	fresh := emission(t, map[string]float64{"disVal": 0.01, "tiny": 5e-7, "new": 0.03})
	r, err := Compare("BENCH_fig6.json", base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ratios) != 1 {
		t.Fatalf("want exactly the disVal ratio, got %v", r.Ratios)
	}
	if len(r.Skipped) != 3 { // tiny (floor), gone (missing in fresh), new (missing in baseline)
		t.Fatalf("skipped = %v, want 3 entries", r.Skipped)
	}
}

// TestPerFileRegressionNotDiluted: a >threshold regression confined to one
// experiment file must fail even when other files are stable enough to
// keep the cross-file geomean under threshold.
func TestPerFileRegressionNotDiluted(t *testing.T) {
	stable := emission(t, map[string]float64{"disVal": 0.01, "disran": 0.01, "disnop": 0.01})
	rStable, err := Compare("BENCH_fig5a.json", stable, stable)
	if err != nil {
		t.Fatal(err)
	}
	regressed, err := Compare("BENCH_fig6.json",
		emission(t, map[string]float64{"disVal": 0.010}),
		emission(t, map[string]float64{"disVal": 0.013}))
	if err != nil {
		t.Fatal(err)
	}
	overall, failed := Summarize([]FileResult{rStable, regressed}, 0.15)
	if overall > 1.15 {
		t.Fatalf("precondition: overall %.3f should be diluted under threshold", overall)
	}
	if !failed {
		t.Fatal("a 30%% regression in one file must fail the gate despite dilution")
	}
}

// TestGeomeanDampsSingleCellNoise documents the gate's design: one noisy
// cell among many stable ones stays under threshold, while a broad
// regression trips it (TestSyntheticRegressionFails).
func TestGeomeanDampsSingleCellNoise(t *testing.T) {
	cells := map[string]float64{}
	freshCells := map[string]float64{}
	for i := 0; i < 10; i++ {
		k := string(rune('a' + i))
		cells[k] = 0.01
		freshCells[k] = 0.01
	}
	freshCells["a"] = 0.02 // one cell doubles
	r, err := Compare("BENCH_fig6.json", emission(t, cells), emission(t, freshCells))
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := Summarize([]FileResult{r}, 0.15); failed {
		t.Fatalf("single-cell noise (geomean %.3f) should not trip the gate", r.Geomean)
	}
}
