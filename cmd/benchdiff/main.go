// benchdiff is the benchmark-regression gate: it compares fresh
// `gfdbench -json` output against committed BENCH_*.json baselines and
// fails (exit 1) when the geometric mean of the fresh/baseline metric
// ratios regresses by more than a threshold.
//
// Usage:
//
//	gfdbench -exp fig6 -scale 60 -json     # writes BENCH_fig6.json
//	benchdiff -base BENCH_baselines -fresh .            # gate at 15%
//	benchdiff -base BENCH_baselines -fresh . -threshold 25
//	benchdiff -base BENCH_baselines -fresh . -update    # refresh baselines
//
// Every BENCH_*.json in -base must have a counterpart in -fresh, produced
// with the same configuration (experiment, scale, rules, pattern size,
// seed — checked, since comparing different workloads is meaningless).
// Numeric leaves of the result payload are flattened to dotted paths and
// compared pairwise; the gate is the geomean over all ratios, so a real
// slowdown must be broad or deep to trip it while single-cell noise is
// damped. Baselines are machine-specific: refresh them with -update when
// the benchmark host changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var (
		baseDir   = flag.String("base", "BENCH_baselines", "directory holding committed BENCH_*.json baselines")
		freshDirs = flag.String("fresh", ".", "comma-separated directories of freshly generated BENCH_*.json files; with several (repeated runs), each metric takes its best-of-N minimum before diffing")
		threshold = flag.Float64("threshold", 15, "maximum tolerated geomean regression, percent")
		update    = flag.Bool("update", false, "overwrite the baselines with the (first) fresh files instead of comparing")
	)
	flag.Parse()
	dirs := strings.Split(*freshDirs, ",")

	baselines, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no BENCH_*.json baselines in %s\n", *baseDir)
		os.Exit(2)
	}

	if *update {
		if err := updateBaselines(baselines, dirs); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -update: %v\n", err)
			os.Exit(2)
		}
		return
	}

	var results []FileResult
	for _, b := range baselines {
		fresh := make([]string, len(dirs))
		for i, d := range dirs {
			fresh[i] = filepath.Join(d, filepath.Base(b))
		}
		r, err := CompareFiles(b, fresh...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		results = append(results, r)
	}

	overall, failed := Summarize(results, *threshold/100)
	for _, r := range results {
		fmt.Print(r.Report())
	}
	fmt.Printf("overall geomean ratio: %.3f (threshold %.2f)\n", overall, 1+*threshold/100)
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — benchmark regression above %.0f%%\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// updateBaselines replaces each baseline with its fresh counterpart after
// validating it: the fresh file must parse and carry comparable numeric
// metrics (a truncated emission must never become the new baseline), and
// config drift from the old baseline is reported loudly — legitimate when
// the benchmark flags changed on purpose, a footgun otherwise. With
// several fresh directories (repeated runs), the installed baseline is
// the per-metric minimum, a low-noise floor.
func updateBaselines(baselines []string, freshDirs []string) error {
	for _, b := range baselines {
		freshPath := filepath.Join(freshDirs[0], filepath.Base(b))
		fresh, err := loadBench(freshPath)
		if err != nil {
			return err
		}
		for _, d := range freshDirs[1:] {
			next, err := loadBench(filepath.Join(d, filepath.Base(b)))
			if err != nil {
				return err
			}
			mergeMin(fresh, next)
		}
		if leaves := flatten("", fresh["result"]); len(leaves) == 0 {
			return fmt.Errorf("%s: no numeric metrics in result payload; refusing to install as baseline", freshPath)
		}
		if old, err := loadBench(b); err == nil {
			for _, k := range configKeys {
				if ov, fv := fmt.Sprint(old[k]), fmt.Sprint(fresh[k]); ov != fv {
					fmt.Printf("note: %s config %q changes %s -> %s\n", filepath.Base(b), k, ov, fv)
				}
			}
		}
		data, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(b, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s\n", b)
	}
	return nil
}
