package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// metricFloor is the magnitude below which a baseline value is too small
// to yield a meaningful ratio (sub-microsecond timings are scheduler
// noise); such pairs are skipped rather than gated on.
const metricFloor = 1e-6

// configKeys are the gfdbench emission fields that must match between a
// baseline and a fresh run: a diff across different workloads is
// meaningless, so a mismatch is a hard error (regenerate the baselines).
var configKeys = []string{"experiment", "scale", "rules", "pattern_q", "seed"}

// FileResult is the comparison of one BENCH_*.json pair.
type FileResult struct {
	Name    string
	Ratios  map[string]float64 // metric path -> fresh/base
	Skipped []string           // metrics present on only one side or below floor
	Geomean float64
}

// CompareFiles loads a baseline and one or more fresh emissions of the
// same experiment and compares their numeric metrics. With several fresh
// files (repeated runs), each metric takes its per-path minimum first —
// best-of-N damps scheduler noise on shared CI runners, and a real
// regression survives the minimum by definition.
func CompareFiles(basePath string, freshPaths ...string) (FileResult, error) {
	base, err := loadBench(basePath)
	if err != nil {
		return FileResult{}, err
	}
	fresh, err := loadBench(freshPaths[0])
	if err != nil {
		return FileResult{}, fmt.Errorf("%w (generate it with `gfdbench -json` before diffing)", err)
	}
	for _, p := range freshPaths[1:] {
		next, err := loadBench(p)
		if err != nil {
			return FileResult{}, err
		}
		mergeMin(fresh, next)
	}
	return Compare(basePath, base, fresh)
}

// mergeMin folds next's numeric leaves into dst, keeping the smaller value
// per position. Both arguments decode the same experiment config, so their
// shapes match; non-numeric values are left as dst's.
func mergeMin(dst, next map[string]any) {
	var walk func(d, n any) any
	walk = func(d, n any) any {
		switch dv := d.(type) {
		case float64:
			if nv, ok := n.(float64); ok && nv < dv {
				return nv
			}
		case map[string]any:
			if nm, ok := n.(map[string]any); ok {
				for k, c := range dv {
					if nc, ok := nm[k]; ok {
						dv[k] = walk(c, nc)
					}
				}
			}
		case []any:
			if na, ok := n.([]any); ok {
				for i := range dv {
					if i < len(na) {
						dv[i] = walk(dv[i], na[i])
					}
				}
			}
		}
		return d
	}
	res, ok := dst["result"]
	nres, nok := next["result"]
	if ok && nok {
		dst["result"] = walk(res, nres)
	}
}

func loadBench(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Compare diffs two parsed emissions: config keys must match, then every
// numeric leaf under "result" is compared by dotted path.
func Compare(name string, base, fresh map[string]any) (FileResult, error) {
	for _, k := range configKeys {
		if bv, fv := fmt.Sprint(base[k]), fmt.Sprint(fresh[k]); bv != fv {
			return FileResult{}, fmt.Errorf("%s: config %q differs (baseline %s, fresh %s); regenerate baselines with the same flags", name, k, bv, fv)
		}
	}
	bm := flatten("", base["result"])
	fm := flatten("", fresh["result"])
	r := FileResult{Name: name, Ratios: make(map[string]float64)}
	for path, bv := range bm {
		fv, ok := fm[path]
		if !ok {
			r.Skipped = append(r.Skipped, path+" (missing in fresh)")
			continue
		}
		if math.Abs(bv) < metricFloor || math.Abs(fv) < metricFloor {
			r.Skipped = append(r.Skipped, path+" (below floor)")
			continue
		}
		r.Ratios[path] = fv / bv
	}
	for path := range fm {
		if _, ok := bm[path]; !ok {
			r.Skipped = append(r.Skipped, path+" (missing in baseline)")
		}
	}
	if len(r.Ratios) == 0 {
		// A gate that compares nothing silently stops gating: treat it as
		// a hard error, not a vacuous pass (typical cause: the emission
		// schema or series names changed — regenerate the baselines).
		return FileResult{}, fmt.Errorf("%s: no comparable metrics (%d skipped: %s ...); regenerate baselines", name, len(r.Skipped), first(r.Skipped))
	}
	sort.Strings(r.Skipped)
	r.Geomean = geomean(r.Ratios)
	return r, nil
}

func first(ss []string) string {
	if len(ss) == 0 {
		return "none"
	}
	return ss[0]
}

// flatten walks a decoded JSON value and collects numeric leaves keyed by
// dotted path ("Rows.0.Cells.disVal").
func flatten(prefix string, v any) map[string]float64 {
	out := make(map[string]float64)
	var walk func(string, any)
	walk = func(p string, v any) {
		switch t := v.(type) {
		case float64:
			out[p] = t
		case map[string]any:
			for k, c := range t {
				walk(join(p, k), c)
			}
		case []any:
			for i, c := range t {
				walk(join(p, fmt.Sprint(i)), c)
			}
		}
	}
	walk(prefix, v)
	return out
}

func join(p, k string) string {
	if p == "" {
		return k
	}
	return p + "." + k
}

func geomean(ratios map[string]float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// Summarize computes the overall geomean across files (each ratio weighted
// equally) and whether the gate fails: a breach of 1+threshold either
// overall or in any single file. The per-file check matters — a regression
// confined to one experiment must not be diluted to a pass by the stable
// ones.
func Summarize(results []FileResult, threshold float64) (overall float64, failed bool) {
	all := make(map[string]float64)
	for _, r := range results {
		for p, v := range r.Ratios {
			all[r.Name+":"+p] = v
		}
		if r.Geomean > 1+threshold {
			failed = true
		}
	}
	overall = geomean(all)
	return overall, failed || overall > 1+threshold
}

// Report renders one file's comparison: its geomean and the worst
// regressions, so a failing gate points at what slowed down.
func (r FileResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s geomean %.3f over %d metrics", r.Name, r.Geomean, len(r.Ratios))
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, " (%d skipped)", len(r.Skipped))
	}
	b.WriteByte('\n')
	type kv struct {
		path string
		r    float64
	}
	var worst []kv
	for p, v := range r.Ratios {
		worst = append(worst, kv{p, v})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].r > worst[j].r })
	for i := 0; i < len(worst) && i < 3; i++ {
		if worst[i].r <= 1.05 {
			break
		}
		fmt.Fprintf(&b, "    %-50s %.3fx\n", worst[i].path, worst[i].r)
	}
	return b.String()
}
