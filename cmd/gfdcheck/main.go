// gfdcheck validates a property graph against a set of GFD rules and
// reports the violation set Vio(Σ, G). It demonstrates the intended
// lifecycle: read the graph, open a Session, Prepare the rules once, then
// Detect — or, with -stream, pull violations lazily from the Violations
// iterator as the engines find them — with the selected engine.
//
// Usage:
//
//	gfdcheck -graph g.graph -rules r.gfd [-mode seq|rep|dis|dist|gcfd|bigdansing] [-n 8] [-v] [-stream] [-timeout 30s]
//
// Mode dist runs detection as real worker processes over persisted shards:
// pass -manifest with the shard manifest written by gfdgen -fragments (the
// worker count comes from the manifest, not -n). Workers are respawned
// re-executions of this binary.
//
// The graph file uses the line format of package graph (node/edge lines),
// or — with a .gfds extension — the binary snapshot format written by
// gfdgen -snapshot / gfd.SaveSnapshot, which is mapped read-only and
// skips the build+freeze phase entirely (snapshot files carry no node
// names, so violations print #id placeholders). The rules file uses the
// gfd block format (see README.md). Exit status:
//
//	0   the graph satisfies Σ
//	1   violations were found (complete report)
//	2   errors (bad input, corrupt or version-skewed snapshot file,
//	    unknown mode, engine failure)
//	3   the -timeout deadline expired before detection finished
//	4   the result is partial (retry budgets exhausted under worker
//	    failures) and no violations were found — "clean" cannot be
//	    certified; violations found in a partial run still exit 1
//	130 interrupted by the user (SIGINT/SIGTERM)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gfd"
)

// engines maps -mode values to the session engine selector.
var engines = map[string]gfd.Engine{
	"seq":        gfd.EngineSequential,
	"rep":        gfd.EngineReplicated,
	"dis":        gfd.EngineFragmented,
	"dist":       gfd.EngineDistributed,
	"gcfd":       gfd.EngineGCFD,
	"bigdansing": gfd.EngineBigDansing,
}

func main() {
	// This binary doubles as the distributed engine's worker executable:
	// when spawned with the worker environment set, it becomes a shard
	// worker here and never reaches flag parsing.
	gfd.MaybeWorker()
	var (
		graphPath = flag.String("graph", "", "graph file (required)")
		rulesPath = flag.String("rules", "", "GFD rules file (required)")
		mode      = flag.String("mode", "rep", "engine: seq (detVio), rep (repVal), dis (disVal), dist (multi-process over shards), gcfd, bigdansing")
		manifest  = flag.String("manifest", "", "shard manifest written by gfdgen -fragments (required for -mode dist)")
		workers   = flag.Int("n", 8, "workers for the parallel engines")
		verbose   = flag.Bool("v", false, "print each violation")
		stream    = flag.Bool("stream", false, "pull violations from the iterator pipeline as they are found instead of collecting a report (implies -v; prints time-to-first-violation)")
		timeout   = flag.Duration("timeout", 0, "abort detection after this long (0 = no limit)")
		doCheck   = flag.Bool("check-rules", true, "check rule-set satisfiability before validating")
		doReduce  = flag.Bool("reduce", false, "drop implied rules before validating")
	)
	flag.Parse()
	if *graphPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	engine, ok := engines[*mode]
	if !ok {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *mode == "dist" && *manifest == "" {
		fatal(errors.New("-mode dist requires -manifest (write one with gfdgen -fragments)"))
	}

	// A .gfds graph is opened straight off its read-only mapping: no text
	// parse, no rebuild, no freeze — the session below starts from the
	// persisted snapshot with zero snapshot builds. Load failures (missing
	// file, corruption, format version skew) are input errors: exit 2.
	var (
		g     *gfd.Graph
		names map[string]gfd.NodeID
		sess  *gfd.Session
	)
	if strings.HasSuffix(*graphPath, ".gfds") {
		var loaded *gfd.LoadedSnapshot
		var err error
		sess, loaded, err = gfd.OpenSnapshot(context.Background(), *graphPath)
		if err != nil {
			fatal(err)
		}
		g = loaded.Snapshot().Graph() // mapping lives for the process; exit unmaps
	} else {
		var err error
		g, names, err = readGraph(*graphPath)
		if err != nil {
			fatal(err)
		}
	}
	set, err := readRules(*rulesPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; rules: %d\n", g.NumNodes(), g.NumEdges(), set.Len())

	if *doCheck {
		if ok, conflict := gfd.Satisfiable(set); !ok {
			fmt.Fprintf(os.Stderr, "rule set is unsatisfiable: %v\n", conflict)
			os.Exit(2)
		}
	}
	if *doReduce {
		before := set.Len()
		set = gfd.Reduce(set)
		fmt.Printf("reduction: %d -> %d rules\n", before, set.Len())
	}

	// The session lifecycle: prepare once, detect with any engine. A
	// long-running checker would keep sess and prep alive across requests
	// and graph updates; here one invocation is one Detect. (A .gfds input
	// arrives with its session already opened over the mapping.)
	if sess == nil {
		sess, err = gfd.NewSession(g)
		if err != nil {
			fatal(err)
		}
	}
	prep, err := sess.Prepare(set)
	if err != nil {
		fatal(err)
	}
	// A SIGINT/SIGTERM cancels the context (exit 130); the -timeout flag
	// arms a deadline (exit 3). The two expire the same context but are
	// reported differently — an operator's ^C is not a capacity problem.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := gfd.Options{Engine: engine, N: *workers}
	if *mode == "dist" {
		opt.Dist = &gfd.DistOptions{ManifestPath: *manifest}
	}

	rev := make(map[gfd.NodeID]string, len(names))
	for name, id := range names {
		rev[id] = name
	}
	printViolation := func(v gfd.Violation) {
		fmt.Printf("  %s:", v.Rule)
		for _, n := range v.Nodes() {
			name := rev[n]
			if name == "" {
				// Snapshot files carry no node names; fall back to the id.
				name = fmt.Sprintf("#%d", n)
			}
			fmt.Printf(" %s(%s)", name, g.Label(n))
		}
		fmt.Println()
	}

	var (
		nViolations int
		partial     bool
	)
	if *stream {
		// The pull-based pipeline: violations print the moment a worker
		// finds them, and the engine's instrumentation (census, timings)
		// is still available afterwards through ViolationsResult.
		var (
			res       gfd.Result
			count     int
			firstAt   time.Duration
			streamErr error
		)
		start := time.Now()
		for v, err := range prep.ViolationsResult(ctx, opt, &res) {
			if err != nil {
				streamErr = err
				break
			}
			if count == 0 {
				firstAt = time.Since(start)
			}
			count++
			printViolation(v)
		}
		if count > 0 {
			fmt.Printf("time to first violation: %v (full stream %v)\n", firstAt.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
		}
		if streamErr != nil {
			partial = reportDetectError(streamErr, *timeout, res.Completeness)
		}
		nViolations = count
	} else {
		res, err := prep.Detect(ctx, opt)
		if err != nil {
			partial = reportDetectError(err, *timeout, res.Completeness)
		}
		switch engine {
		case gfd.EngineReplicated:
			fmt.Printf("repVal: %d units over %d workers, wall %v\n", res.Units, *workers, res.Wall.Round(0))
		case gfd.EngineFragmented:
			fmt.Printf("disVal: %d units, shipped %d bytes, comm %v, total %v\n",
				res.Units, res.BytesShipped, res.Comm.Round(0), res.TotalTime().Round(0))
		case gfd.EngineDistributed:
			// The worker-process count comes from the manifest, not -n.
			fmt.Printf("dist: %d units, shipped %d bytes in %d frames, wall %v (modeled %v)\n",
				res.Units, res.BytesShipped, res.Messages, res.Wall.Round(0), res.ModeledTime().Round(0))
		case gfd.EngineGCFD:
			fmt.Printf("gcfd: %d of %d rules expressible, wall %v\n", res.Rules, set.Len(), res.Wall.Round(0))
		}
		if *verbose {
			for _, v := range res.Violations {
				printViolation(v)
			}
		}
		nViolations = len(res.Violations)
	}
	fmt.Printf("violations: %d\n", nViolations)
	switch {
	case nViolations > 0:
		os.Exit(1)
	case partial:
		// No violations surfaced, but some units never ran to completion:
		// "satisfied" cannot be certified.
		os.Exit(4)
	}
}

// reportDetectError classifies a Detect/Violations error, printing the
// completeness census FIRST — an interrupted or timed-out operator must
// still learn how much of the workload actually ran before the process
// exits. A partial result (retry budgets exhausted under worker failures)
// returns true — the violations that were found are still printed, and
// the final exit status reflects the gap. Note ErrPartial is classified
// before the context errors: a distributed run whose unit failures wrap
// deadline kills is a partial result, not a -timeout expiry. Every other
// cause terminates: deadline expiry (exit 3), user interruption (exit
// 130), engine failure (exit 2).
func reportDetectError(err error, timeout time.Duration, c gfd.Completeness) bool {
	fmt.Fprintf(os.Stderr, "gfdcheck: completeness: %d/%d units succeeded, %d retries, %d worker deaths, %d recovery rounds\n",
		c.Succeeded, c.Units, c.Retries, c.WorkerDeaths, c.RecoveryRounds)
	switch {
	case errors.Is(err, gfd.ErrPartial):
		var pe *gfd.PartialError
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "gfdcheck: partial result: %d unit(s) failed after exhausting retries\n", len(pe.Failures))
			for _, f := range pe.Failures {
				fmt.Fprintf(os.Stderr, "  unit %d (group %d) after %d attempt(s): %v\n", f.Unit, f.Group, f.Attempts, f.Err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "gfdcheck: partial result: %v\n", err)
		}
		return true
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "gfdcheck: deadline exceeded after %v; rerun with a larger -timeout\n", timeout)
		os.Exit(3)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "gfdcheck: interrupted")
		os.Exit(130)
	default:
		fatal(fmt.Errorf("detection aborted: %w", err))
	}
	panic("unreachable")
}

func readGraph(path string) (*gfd.Graph, map[string]gfd.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return gfd.ReadGraph(f)
}

func readRules(path string) (*gfd.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gfd.ParseRules(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdcheck:", err)
	os.Exit(2)
}
