// gfdcheck validates a property graph against a set of GFD rules and
// reports the violation set Vio(Σ, G).
//
// Usage:
//
//	gfdcheck -graph g.graph -rules r.gfd [-mode seq|rep|dis] [-n 8] [-v]
//
// The graph file uses the line format of package graph (node/edge lines);
// the rules file uses the gfd block format (see README.md). Exit status is
// 0 when the graph satisfies Σ, 1 when violations were found, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"gfd"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (required)")
		rulesPath = flag.String("rules", "", "GFD rules file (required)")
		mode      = flag.String("mode", "rep", "engine: seq (detVio), rep (repVal), dis (disVal)")
		workers   = flag.Int("n", 8, "workers for the parallel engines")
		verbose   = flag.Bool("v", false, "print each violation")
		doCheck   = flag.Bool("check-rules", true, "check rule-set satisfiability before validating")
		doReduce  = flag.Bool("reduce", false, "drop implied rules before validating")
	)
	flag.Parse()
	if *graphPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, names, err := readGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	set, err := readRules(*rulesPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; rules: %d\n", g.NumNodes(), g.NumEdges(), set.Len())

	if *doCheck {
		if ok, conflict := gfd.Satisfiable(set); !ok {
			fmt.Fprintf(os.Stderr, "rule set is unsatisfiable: %v\n", conflict)
			os.Exit(2)
		}
	}
	if *doReduce {
		before := set.Len()
		set = gfd.Reduce(set)
		fmt.Printf("reduction: %d -> %d rules\n", before, set.Len())
	}

	var report gfd.Report
	switch *mode {
	case "seq":
		report = gfd.Validate(g, set)
	case "rep":
		res := gfd.ValidateParallel(g, set, gfd.Options{N: *workers})
		report = res.Violations
		fmt.Printf("repVal: %d units over %d workers, wall %v\n", res.Units, *workers, res.Wall.Round(0))
	case "dis":
		frag := gfd.Partition(g, *workers)
		res := gfd.ValidateFragmented(g, frag, set, gfd.Options{N: *workers})
		report = res.Violations
		fmt.Printf("disVal: %d units, shipped %d bytes, comm %v, total %v\n",
			res.Units, res.BytesShipped, res.Comm.Round(0), res.TotalTime().Round(0))
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	rev := make(map[gfd.NodeID]string, len(names))
	for name, id := range names {
		rev[id] = name
	}
	fmt.Printf("violations: %d\n", len(report))
	if *verbose {
		for _, v := range report {
			fmt.Printf("  %s:", v.Rule)
			for _, n := range v.Nodes() {
				fmt.Printf(" %s(%s)", rev[n], g.Label(n))
			}
			fmt.Println()
		}
	}
	if len(report) > 0 {
		os.Exit(1)
	}
}

func readGraph(path string) (*gfd.Graph, map[string]gfd.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return gfd.ReadGraph(f)
}

func readRules(path string) (*gfd.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gfd.ParseRules(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdcheck:", err)
	os.Exit(2)
}
