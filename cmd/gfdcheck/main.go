// gfdcheck validates a property graph against a set of GFD rules and
// reports the violation set Vio(Σ, G). It demonstrates the intended
// lifecycle: read the graph, open a Session, Prepare the rules once, then
// Detect (or Stream) with the selected engine.
//
// Usage:
//
//	gfdcheck -graph g.graph -rules r.gfd [-mode seq|rep|dis|gcfd|bigdansing] [-n 8] [-v] [-stream] [-timeout 30s]
//
// The graph file uses the line format of package graph (node/edge lines);
// the rules file uses the gfd block format (see README.md). Exit status is
// 0 when the graph satisfies Σ, 1 when violations were found, 2 on errors
// (including a -timeout expiry).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gfd"
)

// engines maps -mode values to the session engine selector.
var engines = map[string]gfd.Engine{
	"seq":        gfd.EngineSequential,
	"rep":        gfd.EngineReplicated,
	"dis":        gfd.EngineFragmented,
	"gcfd":       gfd.EngineGCFD,
	"bigdansing": gfd.EngineBigDansing,
}

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (required)")
		rulesPath = flag.String("rules", "", "GFD rules file (required)")
		mode      = flag.String("mode", "rep", "engine: seq (detVio), rep (repVal), dis (disVal), gcfd, bigdansing")
		workers   = flag.Int("n", 8, "workers for the parallel engines")
		verbose   = flag.Bool("v", false, "print each violation")
		stream    = flag.Bool("stream", false, "print violations as they are found instead of collecting a report (implies -v)")
		timeout   = flag.Duration("timeout", 0, "abort detection after this long (0 = no limit)")
		doCheck   = flag.Bool("check-rules", true, "check rule-set satisfiability before validating")
		doReduce  = flag.Bool("reduce", false, "drop implied rules before validating")
	)
	flag.Parse()
	if *graphPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	engine, ok := engines[*mode]
	if !ok {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	g, names, err := readGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	set, err := readRules(*rulesPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; rules: %d\n", g.NumNodes(), g.NumEdges(), set.Len())

	if *doCheck {
		if ok, conflict := gfd.Satisfiable(set); !ok {
			fmt.Fprintf(os.Stderr, "rule set is unsatisfiable: %v\n", conflict)
			os.Exit(2)
		}
	}
	if *doReduce {
		before := set.Len()
		set = gfd.Reduce(set)
		fmt.Printf("reduction: %d -> %d rules\n", before, set.Len())
	}

	// The session lifecycle: prepare once, detect with any engine. A
	// long-running checker would keep sess and prep alive across requests
	// and graph updates; here one invocation is one Detect.
	sess := gfd.NewSession(g)
	prep, err := sess.Prepare(set)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := gfd.Options{Engine: engine, N: *workers}

	rev := make(map[gfd.NodeID]string, len(names))
	for name, id := range names {
		rev[id] = name
	}
	printViolation := func(v gfd.Violation) {
		fmt.Printf("  %s:", v.Rule)
		for _, n := range v.Nodes() {
			fmt.Printf(" %s(%s)", rev[n], g.Label(n))
		}
		fmt.Println()
	}

	var nViolations int
	if *stream {
		count := 0
		err := prep.Stream(ctx, opt, func(v gfd.Violation) bool {
			count++
			printViolation(v)
			return true
		})
		if err != nil {
			fatal(fmt.Errorf("detection aborted: %w", err))
		}
		nViolations = count
	} else {
		res, err := prep.Detect(ctx, opt)
		if err != nil {
			fatal(fmt.Errorf("detection aborted: %w", err))
		}
		switch engine {
		case gfd.EngineReplicated:
			fmt.Printf("repVal: %d units over %d workers, wall %v\n", res.Units, *workers, res.Wall.Round(0))
		case gfd.EngineFragmented:
			fmt.Printf("disVal: %d units, shipped %d bytes, comm %v, total %v\n",
				res.Units, res.BytesShipped, res.Comm.Round(0), res.TotalTime().Round(0))
		case gfd.EngineGCFD:
			fmt.Printf("gcfd: %d of %d rules expressible, wall %v\n", res.Rules, set.Len(), res.Wall.Round(0))
		}
		if *verbose {
			for _, v := range res.Violations {
				printViolation(v)
			}
		}
		nViolations = len(res.Violations)
	}
	fmt.Printf("violations: %d\n", nViolations)
	if nViolations > 0 {
		os.Exit(1)
	}
}

func readGraph(path string) (*gfd.Graph, map[string]gfd.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return gfd.ReadGraph(f)
}

func readRules(path string) (*gfd.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gfd.ParseRules(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdcheck:", err)
	os.Exit(2)
}
