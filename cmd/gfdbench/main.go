// gfdbench runs the paper's experiment sweeps (Section 7) and prints
// paper-style tables. Each -exp value corresponds to a figure or table of
// the evaluation; `-exp all` runs everything.
//
// Usage:
//
//	gfdbench -exp fig5a          # time vs n on the DBpedia stand-in
//	gfdbench -exp fig9 -scale 400
//	gfdbench -exp all -scale 200 # quick full sweep
//	gfdbench -exp fig6 -json     # also write BENCH_fig6.json
//
// With -json, every experiment additionally writes a machine-readable
// BENCH_<exp>.json file (config + result rows) so perf trajectories can be
// tracked across commits.
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gfd/internal/dist"
	"gfd/internal/exp"
)

func main() {
	// The dist experiment spawns this binary as its worker processes;
	// when the worker environment is set, become one and never return.
	dist.MaybeWorker()
	var (
		which      = flag.String("exp", "all", "fig5a|fig5b|fig5c|fig5sigma|fig5q|fig5comm|fig6|fig7|fig8|fig9|speedup|sessionreuse|incremental|freeze|stream|coldstart|cyclic|dist|all")
		scale      = flag.Int("scale", 250, "dataset scale")
		rules      = flag.Int("rules", 8, "rule count ‖Σ‖")
		qsize      = flag.Int("q", 4, "pattern size |Q| (nodes)")
		seed       = flag.Int64("seed", 42, "deterministic seed")
		twoFrac    = flag.Float64("two-comp", 0.3, "fraction of two-component rules")
		graphPath  = flag.String("graph", "", "run experiments over this graph file (text or .gfds snapshot) instead of generating one")
		rulePath   = flag.String("rulefile", "", "parse Σ from this rule file instead of mining")
		jsonOut    = flag.Bool("json", false, "write BENCH_<exp>.json result files")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file after the run (go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gfdbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gfdbench: -memprofile: %v\n", err)
			}
		}()
	}

	// Fail early and readably on bad file inputs; the harness itself
	// panics on unreadable paths.
	for _, p := range []string{*graphPath, *rulePath} {
		if p != "" {
			if _, err := os.Stat(p); err != nil {
				fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
				os.Exit(2)
			}
		}
	}

	base := func(dataset string) exp.Config {
		return exp.Config{
			Dataset: dataset, Scale: *scale, Rules: *rules,
			PatternSize: *qsize, TwoCompFrac: *twoFrac, Seed: *seed,
			GraphPath: *graphPath, RulesPath: *rulePath,
		}
	}

	// Each experiment prints its paper-style rendering and returns the raw
	// result for the optional JSON emission.
	run := map[string]func() any{
		"fig5a": func() any { t := exp.Fig5VaryN(base("dbpedia"), nil); fmt.Println(t); return t },
		"fig5b": func() any { t := exp.Fig5VaryN(base("yago2"), nil); fmt.Println(t); return t },
		"fig5c": func() any { t := exp.Fig5VaryN(base("pokec"), nil); fmt.Println(t); return t },
		"fig5sigma": func() any {
			var ts []exp.Table
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				t := exp.Fig5VarySigma(base(ds), nil)
				fmt.Println(t)
				ts = append(ts, t)
			}
			return ts
		},
		"fig5q": func() any {
			var ts []exp.Table
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				t := exp.Fig5VaryQ(base(ds), nil)
				fmt.Println(t)
				ts = append(ts, t)
			}
			return ts
		},
		"fig5comm": func() any {
			var ts []exp.Table
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				t := exp.Fig5Comm(base(ds), nil)
				fmt.Println(t)
				ts = append(ts, t)
			}
			return ts
		},
		"fig6": func() any {
			c := base("synthetic")
			c.Scale = *scale / 2
			t := exp.Fig6ScaleG(c, nil)
			fmt.Println(t)
			return t
		},
		"fig7": func() any {
			fmt.Println("Fig 7 — real-life GFDs on the YAGO2 stand-in")
			fmt.Printf("%-28s%10s%12s%8s\n", "rule", "injected", "violations", "caught")
			findings := exp.Fig7RealLife(*scale, 5, *seed)
			for _, f := range findings {
				fmt.Printf("%-28s%10d%12d%8d\n", f.Rule, f.Injected, f.Violations, f.Caught)
			}
			fmt.Println()
			return findings
		},
		"fig8": func() any { t := exp.Fig8Skew(base("synthetic"), nil); fmt.Println(t); return t },
		"fig9": func() any {
			c := base("yago2")
			c.TwoCompFrac = 0.5
			c.Rules = max(*rules, 12)
			c.NoiseRate = 0.05
			fmt.Println("Fig 9 — accuracy and time vs baselines (YAGO2 stand-in)")
			fmt.Printf("%-12s%8s%8s%8s%12s\n", "model", "recall", "prec.", "rules", "time")
			rows := exp.Fig9Accuracy(c)
			for _, r := range rows {
				fmt.Printf("%-12s%8.2f%8.2f%8d%12v\n", r.Model, r.Recall, r.Precision, r.Rules, r.Time.Round(0))
			}
			fmt.Println()
			return rows
		},
		"sessionreuse": func() any {
			t := exp.SessionReuse(base("yago2"), 5)
			fmt.Println(t)
			return t
		},
		"stream": func() any {
			t := exp.Stream(base("yago2"), 5)
			fmt.Println(t)
			return t
		},
		"dist": func() any {
			t := exp.Dist(base("yago2"), 3)
			fmt.Println(t)
			if d, ok := t.Get("dist_procs", "ms"); ok {
				if s, ok := t.Get("disval_sim", "ms"); ok && d > 0 {
					fmt.Printf("process-per-shard wall is %.2fx the in-process simulation (real pipes + spawn vs modeled comm)\n\n", d/s)
				}
			}
			return t
		},
		"coldstart": func() any {
			t := exp.Coldstart(base("yago2"), 5)
			fmt.Println(t)
			if r, ok := exp.ColdstartRatio(t); ok {
				fmt.Printf("snapshot open reaches the first violation at %.2fx of the build+freeze wall\n\n", r)
			}
			return t
		},
		"incremental": func() any {
			t := exp.Incremental(base("yago2"), 20, 6)
			fmt.Println(t)
			return t
		},
		"freeze": func() any {
			t := exp.Freeze(base("yago2"), []int{2, 4})
			fmt.Println(t)
			if s, ok := exp.FreezeSpeedup(t, 4); ok {
				fmt.Printf("parallel speedup at 4 workers: %.2fx (GOMAXPROCS-bound; see GFD_FREEZE_WORKERS)\n\n", s)
			}
			return t
		},
		"cyclic": func() any {
			wco := exp.Cyclic(base("synthetic"), 3)
			fmt.Println(wco)
			for _, r := range wco.Rows {
				if s := exp.CyclicSpeedups(wco)[r.X]; s > 0 {
					fmt.Printf("%s: intersection %.2fx over probe backtracking\n", r.X, s)
				}
			}
			fmt.Println()
			fac := exp.CyclicFactor(base("synthetic"), 3)
			fmt.Println(fac)
			if per, ok := fac.Get("group4", "perrule_ms"); ok {
				if f, ok := fac.Get("group4", "factored_ms"); ok && f > 0 {
					fmt.Printf("factorized group detection %.2fx over per-rule enumeration\n\n", per/f)
				}
			}
			return []exp.Table{wco, fac}
		},
		"speedup": func() any {
			fmt.Println("Exp-1 — parallel speedup n=4 -> n=20")
			out := map[string]map[string]float64{}
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				t := exp.Fig5VaryN(base(ds), []int{4, 20})
				s := exp.SpeedupSummary(t)
				out[ds] = s
				fmt.Printf("%-10s", ds)
				for _, alg := range exp.SixAlgorithms {
					fmt.Printf("  %s=%.2fx", alg, s[alg])
				}
				fmt.Println()
			}
			fmt.Println()
			return out
		},
	}

	names := []string{*which}
	if *which == "all" {
		names = []string{"fig5a", "fig5b", "fig5c", "fig5sigma", "fig5q", "fig5comm",
			"fig6", "fig7", "fig8", "fig9", "speedup", "sessionreuse", "incremental", "freeze", "stream", "coldstart", "cyclic", "dist"}
	}
	for _, name := range names {
		f, ok := run[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "gfdbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		result := f()
		if *jsonOut {
			if err := writeJSON(name, *scale, *rules, *qsize, *seed, result); err != nil {
				fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// benchFile is the schema of a BENCH_<exp>.json emission.
type benchFile struct {
	Experiment string `json:"experiment"`
	Timestamp  string `json:"timestamp"`
	Scale      int    `json:"scale"`
	Rules      int    `json:"rules"`
	PatternQ   int    `json:"pattern_q"`
	Seed       int64  `json:"seed"`
	Result     any    `json:"result"`
}

func writeJSON(name string, scale, rules, qsize int, seed int64, result any) error {
	path := fmt.Sprintf("BENCH_%s.json", name)
	data, err := json.MarshalIndent(benchFile{
		Experiment: name,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      scale,
		Rules:      rules,
		PatternQ:   qsize,
		Seed:       seed,
		Result:     result,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
