// gfdbench runs the paper's experiment sweeps (Section 7) and prints
// paper-style tables. Each -exp value corresponds to a figure or table of
// the evaluation; `-exp all` runs everything.
//
// Usage:
//
//	gfdbench -exp fig5a          # time vs n on the DBpedia stand-in
//	gfdbench -exp fig9 -scale 400
//	gfdbench -exp all -scale 200 # quick full sweep
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gfd/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "fig5a|fig5b|fig5c|fig5sigma|fig5q|fig5comm|fig6|fig7|fig8|fig9|speedup|all")
		scale   = flag.Int("scale", 250, "dataset scale")
		rules   = flag.Int("rules", 8, "rule count ‖Σ‖")
		qsize   = flag.Int("q", 4, "pattern size |Q| (nodes)")
		seed    = flag.Int64("seed", 42, "deterministic seed")
		twoFrac = flag.Float64("two-comp", 0.3, "fraction of two-component rules")
	)
	flag.Parse()

	base := func(dataset string) exp.Config {
		return exp.Config{
			Dataset: dataset, Scale: *scale, Rules: *rules,
			PatternSize: *qsize, TwoCompFrac: *twoFrac, Seed: *seed,
		}
	}

	run := map[string]func(){
		"fig5a": func() { fmt.Println(exp.Fig5VaryN(base("dbpedia"), nil)) },
		"fig5b": func() { fmt.Println(exp.Fig5VaryN(base("yago2"), nil)) },
		"fig5c": func() { fmt.Println(exp.Fig5VaryN(base("pokec"), nil)) },
		"fig5sigma": func() {
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				fmt.Println(exp.Fig5VarySigma(base(ds), nil))
			}
		},
		"fig5q": func() {
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				fmt.Println(exp.Fig5VaryQ(base(ds), nil))
			}
		},
		"fig5comm": func() {
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				fmt.Println(exp.Fig5Comm(base(ds), nil))
			}
		},
		"fig6": func() {
			c := base("synthetic")
			c.Scale = *scale / 2
			fmt.Println(exp.Fig6ScaleG(c, nil))
		},
		"fig7": func() {
			fmt.Println("Fig 7 — real-life GFDs on the YAGO2 stand-in")
			fmt.Printf("%-28s%10s%12s%8s\n", "rule", "injected", "violations", "caught")
			for _, f := range exp.Fig7RealLife(*scale, 5, *seed) {
				fmt.Printf("%-28s%10d%12d%8d\n", f.Rule, f.Injected, f.Violations, f.Caught)
			}
			fmt.Println()
		},
		"fig8": func() { fmt.Println(exp.Fig8Skew(base("synthetic"), nil)) },
		"fig9": func() {
			c := base("yago2")
			c.TwoCompFrac = 0.5
			c.Rules = max(*rules, 12)
			c.NoiseRate = 0.05
			fmt.Println("Fig 9 — accuracy and time vs baselines (YAGO2 stand-in)")
			fmt.Printf("%-12s%8s%8s%8s%12s\n", "model", "recall", "prec.", "rules", "time")
			for _, r := range exp.Fig9Accuracy(c) {
				fmt.Printf("%-12s%8.2f%8.2f%8d%12v\n", r.Model, r.Recall, r.Precision, r.Rules, r.Time.Round(0))
			}
			fmt.Println()
		},
		"speedup": func() {
			fmt.Println("Exp-1 — parallel speedup n=4 -> n=20")
			for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
				t := exp.Fig5VaryN(base(ds), []int{4, 20})
				s := exp.SpeedupSummary(t)
				fmt.Printf("%-10s", ds)
				for _, alg := range exp.SixAlgorithms {
					fmt.Printf("  %s=%.2fx", alg, s[alg])
				}
				fmt.Println()
			}
			fmt.Println()
		},
	}

	names := []string{*which}
	if *which == "all" {
		names = []string{"fig5a", "fig5b", "fig5c", "fig5sigma", "fig5q", "fig5comm",
			"fig6", "fig7", "fig8", "fig9", "speedup"}
	}
	for _, name := range names {
		f, ok := run[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "gfdbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		f()
	}
}
