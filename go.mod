module gfd

go 1.24
