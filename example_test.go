package gfd_test

import (
	"context"
	"fmt"
	"strings"

	"gfd"
)

// ExampleSession demonstrates the prepared-session lifecycle: build a
// graph, prepare a rule set once, then detect and stream with any engine
// — freeze and rule lowering are paid once across every call.
func ExampleSession() {
	q := gfd.NewPattern()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	phi := gfd.MustGFD("one_capital", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "z", "val")})

	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "Australia"})
	c1 := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	c2 := g.AddNode("city", gfd.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")

	ctx := context.Background()
	sess, _ := gfd.NewSession(g)
	prep, _ := sess.Prepare(gfd.MustSet(phi))

	seq, _ := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineSequential})
	par, _ := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineReplicated, N: 4})
	fmt.Println("sequential:", len(seq.Violations), "parallel:", len(par.Violations))

	// Stream delivers violations as found; returning false stops early.
	streamed := 0
	_ = prep.Stream(ctx, gfd.Options{}, func(gfd.Violation) bool {
		streamed++
		return false
	})
	fmt.Println("streamed before stop:", streamed)

	// Mutation invalidates the prepared state; the next Detect re-freezes.
	g.SetAttr(c2, "val", "Canberra")
	after, _ := prep.Detect(ctx, gfd.Options{})
	fmt.Println("after repair:", len(after.Violations))
	// Output:
	// sequential: 2 parallel: 2
	// streamed before stop: 1
	// after repair: 0
}

// ExampleValidate demonstrates the one-capital rule catching the
// Canberra/Melbourne inconsistency from the paper's introduction.
func ExampleValidate() {
	q := gfd.NewPattern()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	phi := gfd.MustGFD("one_capital", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "z", "val")})

	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "Australia"})
	c1 := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	c2 := g.AddNode("city", gfd.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")

	vio := gfd.Validate(g, gfd.MustSet(phi))
	fmt.Println(len(vio), "violations of", vio[0].Rule)
	// Output: 2 violations of one_capital
}

// ExampleSatisfiable shows static conflict detection: two rules forcing
// different constants on the same attribute cannot have a model
// (Example 7 of the paper).
func ExampleSatisfiable() {
	mk := func(name, c string) *gfd.GFD {
		q := gfd.NewPattern()
		q.AddNode("x", "tau")
		return gfd.MustGFD(name, q, nil, []gfd.Literal{gfd.Const("x", "A", c)})
	}
	ok, _ := gfd.Satisfiable(gfd.MustSet(mk("r1", "c"), mk("r2", "d")))
	fmt.Println("satisfiable:", ok)
	// Output: satisfiable: false
}

// ExampleImplies shows implication-based redundancy checks (Example 8's
// shape): a rule with a strengthened antecedent is implied.
func ExampleImplies() {
	q1 := gfd.NewPattern()
	q1.AddNode("x", "R")
	base := gfd.MustGFD("base", q1,
		[]gfd.Literal{gfd.Const("x", "country", "44")},
		[]gfd.Literal{gfd.Const("x", "currency", "GBP")})

	q2 := gfd.NewPattern()
	q2.AddNode("x", "R")
	weaker := gfd.MustGFD("weaker", q2,
		[]gfd.Literal{gfd.Const("x", "country", "44"), gfd.Const("x", "city", "Edi")},
		[]gfd.Literal{gfd.Const("x", "currency", "GBP")})

	fmt.Println(gfd.Implies(gfd.MustSet(base), weaker))
	// Output: true
}

// ExampleParseRules parses the rule DSL and validates a graph with it.
func ExampleParseRules() {
	rules := `
gfd penguin {
  node x _
  node y _
  edge y is_a x
  then x.can_fly = y.can_fly
}`
	set, _ := gfd.ParseRules(strings.NewReader(rules))

	g := gfd.NewGraph(0, 0)
	bird := g.AddNode("bird", gfd.Attrs{"can_fly": "true"})
	penguin := g.AddNode("penguin", gfd.Attrs{"can_fly": "false"})
	g.MustAddEdge(penguin, bird, "is_a")

	fmt.Println("satisfies:", gfd.Satisfies(g, set))
	// Output: satisfies: false
}

// ExampleNewIncremental maintains the violation set across updates.
func ExampleNewIncremental() {
	q := gfd.NewPattern()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	phi := gfd.MustGFD("one_capital", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "z", "val")})

	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "AU"})
	c1 := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	g.MustAddEdge(au, c1, "capital")

	d := gfd.NewIncremental(g, gfd.MustSet(phi))
	fmt.Println("initial violations:", d.Len())

	ids := d.Apply(gfd.UpdateAddNode{Label: "city", Attrs: gfd.Attrs{"val": "Melbourne"}})
	d.Apply(gfd.UpdateAddEdge{From: au, To: ids[0], Label: "capital"})
	fmt.Println("after bad update:", d.Len())

	d.Apply(gfd.UpdateSetAttr{Node: ids[0], Attr: "val", Value: "Canberra"})
	fmt.Println("after repair:", d.Len())
	// Output:
	// initial violations: 0
	// after bad update: 2
	// after repair: 0
}
