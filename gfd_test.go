package gfd_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gfd"
)

// --- Fig. 7 real-life GFDs, end to end through the public API -------------

// gfd1 is Fig. 7's GFD 1: a person cannot have the same person as both a
// child and a parent. The consequent demands an attribute/value no node
// carries, so every match is a violation (the paper phrases it as
// x.val = c ∧ y.val = d for distinct c, d — constant-false).
func gfd1(t *testing.T) *gfd.GFD {
	t.Helper()
	q := gfd.NewPattern()
	x := q.AddNode("x", "person")
	y := q.AddNode("y", "person")
	q.AddEdge(x, y, "has_child")
	q.AddEdge(y, x, "has_child")
	f, err := gfd.NewGFD("gfd1_child_parent_cycle", q, nil,
		[]gfd.Literal{gfd.Const("x", "__absurd", "1")})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// gfd2 is Fig. 7's GFD 2: an entity cannot have two disjoint types.
func gfd2(t *testing.T) *gfd.GFD {
	t.Helper()
	q := gfd.NewPattern()
	x := q.AddNode("x", gfd.Wildcard)
	y := q.AddNode("y", "class")
	yp := q.AddNode("yp", "class")
	q.AddEdge(x, y, "type")
	q.AddEdge(x, yp, "type")
	q.AddEdge(y, yp, "disjoint_with")
	f, err := gfd.NewGFD("gfd2_disjoint_types", q, nil,
		[]gfd.Literal{gfd.VarEq("y", "val", "yp", "val")})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// gfd3 is Fig. 7's GFD 3: if a person is mayor of a city in country z and
// affiliated to a party of country z', then z = z'.
func gfd3(t *testing.T) *gfd.GFD {
	t.Helper()
	q := gfd.NewPattern()
	p := q.AddNode("p", "person")
	c := q.AddNode("c", "city")
	z := q.AddNode("z", "country")
	pa := q.AddNode("pa", "party")
	zp := q.AddNode("zp", "country")
	q.AddEdge(p, c, "mayor_of")
	q.AddEdge(c, z, "located_in")
	q.AddEdge(p, pa, "affiliated_to")
	q.AddEdge(pa, zp, "in_country")
	f, err := gfd.NewGFD("gfd3_mayor_party_country", q, nil,
		[]gfd.Literal{gfd.VarEq("z", "val", "zp", "val")})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fig7Graph builds a small knowledge graph containing one violation of
// each Fig. 7 rule plus consistent counterparts.
func fig7Graph(t *testing.T) *gfd.Graph {
	t.Helper()
	g := gfd.NewGraph(0, 0)
	// GFD 1: ann <-> tom child cycle (error); sue -> kid consistent.
	ann := g.AddNode("person", gfd.Attrs{"val": "ann"})
	tom := g.AddNode("person", gfd.Attrs{"val": "tom"})
	sue := g.AddNode("person", gfd.Attrs{"val": "sue"})
	kid := g.AddNode("person", gfd.Attrs{"val": "kid"})
	g.MustAddEdge(ann, tom, "has_child")
	g.MustAddEdge(tom, ann, "has_child")
	g.MustAddEdge(sue, kid, "has_child")

	// GFD 2: entity typed with two disjoint classes (error).
	c1 := g.AddNode("class", gfd.Attrs{"val": "Person"})
	c2 := g.AddNode("class", gfd.Attrs{"val": "Building"})
	g.MustAddEdge(c1, c2, "disjoint_with")
	e := g.AddNode("thing", gfd.Attrs{"val": "oddity"})
	g.MustAddEdge(e, c1, "type")
	g.MustAddEdge(e, c2, "type")

	// GFD 3: NYC in country US, Democratic Party in country FR (error).
	us := g.AddNode("country", gfd.Attrs{"val": "US"})
	fr := g.AddNode("country", gfd.Attrs{"val": "FR"})
	nyc := g.AddNode("city", gfd.Attrs{"val": "NYC"})
	dem := g.AddNode("party", gfd.Attrs{"val": "Democratic"})
	mayor := g.AddNode("person", gfd.Attrs{"val": "mayor"})
	g.MustAddEdge(nyc, us, "located_in")
	g.MustAddEdge(dem, fr, "in_country")
	g.MustAddEdge(mayor, nyc, "mayor_of")
	g.MustAddEdge(mayor, dem, "affiliated_to")
	return g
}

func TestFig7RealLifeGFDs(t *testing.T) {
	g := fig7Graph(t)
	set := gfd.MustSet(gfd1(t), gfd2(t), gfd3(t))
	vio := gfd.Validate(g, set)

	byRule := make(map[string]int)
	for _, v := range vio {
		byRule[v.Rule]++
	}
	// GFD 1 fires in both orders of the cycle; GFD 2 in both orders only
	// if disjoint_with were symmetric (it is directed here): one match.
	if byRule["gfd1_child_parent_cycle"] != 2 {
		t.Errorf("GFD1 violations = %d, want 2", byRule["gfd1_child_parent_cycle"])
	}
	if byRule["gfd2_disjoint_types"] != 1 {
		t.Errorf("GFD2 violations = %d, want 1", byRule["gfd2_disjoint_types"])
	}
	if byRule["gfd3_mayor_party_country"] != 1 {
		t.Errorf("GFD3 violations = %d, want 1", byRule["gfd3_mayor_party_country"])
	}
}

func TestFig7ParallelEnginesAgree(t *testing.T) {
	g := fig7Graph(t)
	set := gfd.MustSet(gfd1(t), gfd2(t), gfd3(t))
	want := gfd.Validate(g, set)

	rep := gfd.ValidateParallel(g, set, gfd.Options{N: 4})
	if !rep.Violations.Equal(want) {
		t.Errorf("ValidateParallel diverges: %d vs %d", len(rep.Violations), len(want))
	}
	frag := gfd.Partition(g, 4)
	dis := gfd.ValidateFragmented(g, frag, set, gfd.Options{N: 4})
	if !dis.Violations.Equal(want) {
		t.Errorf("ValidateFragmented diverges: %d vs %d", len(dis.Violations), len(want))
	}
}

// TestSessionPublicAPI drives the session lifecycle through the facade:
// every engine constant agrees with the deprecated free functions on the
// Fig. 7 workload, and one graph version means one freeze across all of
// them.
func TestSessionPublicAPI(t *testing.T) {
	g := fig7Graph(t)
	set := gfd.MustSet(gfd1(t), gfd2(t), gfd3(t))
	want := gfd.Validate(g, set)

	sess, err := gfd.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, engine := range []gfd.Engine{gfd.EngineAuto, gfd.EngineSequential, gfd.EngineReplicated, gfd.EngineFragmented} {
		res, err := prep.Detect(ctx, gfd.Options{Engine: engine, N: 4})
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if !res.Violations.Equal(want) {
			t.Errorf("engine %v diverges from Validate: %d vs %d", engine, len(res.Violations), len(want))
		}
	}
	// BigDansing evaluates the same rules relationally — same answers.
	res, err := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineBigDansing, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violations.Equal(want) {
		t.Errorf("EngineBigDansing diverges: %d vs %d", len(res.Violations), len(want))
	}
	var streamed gfd.Report
	if err := prep.Stream(ctx, gfd.Options{}, func(v gfd.Violation) bool {
		streamed = append(streamed, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(want) {
		t.Errorf("Stream diverges: %d vs %d", len(streamed), len(want))
	}
	if builds := g.SnapshotBuilds(); builds != 1 {
		t.Errorf("snapshot builds = %d across all engines, want 1", builds)
	}
}

func TestPublicReasoningAPI(t *testing.T) {
	// Example 7's conflicting pair through the public API.
	q1 := gfd.NewPattern()
	q1.AddNode("x", "tau")
	f1 := gfd.MustGFD("a", q1, nil, []gfd.Literal{gfd.Const("x", "A", "c")})
	q2 := gfd.NewPattern()
	q2.AddNode("x", "tau")
	f2 := gfd.MustGFD("b", q2, nil, []gfd.Literal{gfd.Const("x", "A", "d")})

	ok, conflict := gfd.Satisfiable(gfd.MustSet(f1, f2))
	if ok || conflict == nil {
		t.Error("conflicting constants must be unsatisfiable")
	}
	if ok, _ := gfd.Satisfiable(gfd.MustSet(f1)); !ok {
		t.Error("single rule is satisfiable")
	}
	if !gfd.Implies(gfd.MustSet(f1), f1) {
		t.Error("Σ implies its own members")
	}
	if red := gfd.Reduce(gfd.MustSet(f1)); red.Len() != 1 {
		t.Error("nothing to reduce")
	}
}

func TestPublicEncodings(t *testing.T) {
	fd := gfd.FromFD("fd", "R", []string{"A"}, []string{"B"})
	if !fd.IsVariable() {
		t.Error("FD encoding should be variable")
	}
	cfd := gfd.FromCFD("cfd", "R", []gfd.CFDCondition{{Attr: "cc", Value: "44"}}, []string{"zip"}, []string{"street"})
	if cfd.IsVariable() || cfd.IsConstant() {
		t.Error("CFD encoding mixes literal kinds")
	}
	ccfd := gfd.FromConstantCFD("ccfd", "R",
		[]gfd.CFDCondition{{Attr: "cc", Value: "44"}},
		[]gfd.CFDCondition{{Attr: "city", Value: "Edi"}})
	if !ccfd.IsConstant() {
		t.Error("constant CFD encoding should be constant")
	}
	req := gfd.RequireAttr("req", "person", "name")
	if len(req.Y) != 1 || !req.Y[0].IsTautology() {
		t.Error("RequireAttr should produce an existence tautology")
	}
}

func TestPublicIO(t *testing.T) {
	g := fig7Graph(t)
	var gbuf bytes.Buffer
	if err := gfd.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := gfd.ReadGraph(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Error("graph roundtrip lost nodes")
	}

	set := gfd.MustSet(gfd1(t), gfd3(t))
	var rbuf bytes.Buffer
	if err := gfd.WriteRules(&rbuf, set); err != nil {
		t.Fatal(err)
	}
	set2, err := gfd.ParseRules(&rbuf)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Len() != 2 {
		t.Error("rules roundtrip lost rules")
	}
	// The reparsed rules detect the same violations.
	want := gfd.Validate(g, set)
	got := gfd.Validate(g, set2)
	if !got.Equal(want) {
		t.Error("reparsed rules disagree")
	}
}

func TestParseRulesFromSource(t *testing.T) {
	src := `
gfd capital {
  node x country
  node y city
  node z city
  edge x capital y
  edge x capital z
  then y.val = z.val
}`
	set, err := gfd.ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g := gfd.NewGraph(0, 0)
	au := g.AddNode("country", gfd.Attrs{"val": "AU"})
	c1 := g.AddNode("city", gfd.Attrs{"val": "Canberra"})
	c2 := g.AddNode("city", gfd.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")
	if len(gfd.Validate(g, set)) != 2 {
		t.Error("parsed capital rule must flag the two-capitals country")
	}
}

func TestMineAPI(t *testing.T) {
	g := gfd.NewGraph(0, 0)
	for i := 0; i < 30; i++ {
		p := g.AddNode("person", gfd.Attrs{"val": string(rune('a' + i%26))})
		c := g.AddNode("city", gfd.Attrs{"val": "c" + string(rune('0'+i%3))})
		g.MustAddEdge(p, c, "born_in")
	}
	set := gfd.MineGFDs(g, gfd.MineConfig{NumRules: 2, PatternSize: 2, Seed: 1})
	for _, f := range set.Rules() {
		if err := f.Check(); err != nil {
			t.Error(err)
		}
	}
}

func TestDetectRepairLoop(t *testing.T) {
	// End-to-end data-cleaning loop: detect violations, apply confident
	// repairs, re-validate to a clean graph.
	g := gfd.NewGraph(0, 0)
	bad := g.AddNode("R", gfd.Attrs{"area_code": "131", "city": "Gla"})
	g.AddNode("R", gfd.Attrs{"area_code": "131", "city": "Edi"})
	rule := gfd.FromConstantCFD("uk_area_city", "R",
		[]gfd.CFDCondition{{Attr: "area_code", Value: "131"}},
		[]gfd.CFDCondition{{Attr: "city", Value: "Edi"}})
	set := gfd.MustSet(rule)

	vio := gfd.Validate(g, set)
	if len(vio) != 1 {
		t.Fatalf("violations = %d", len(vio))
	}
	sugg := gfd.SuggestRepairs(g, set, vio)
	if len(sugg) != 1 || sugg[0].Node != bad {
		t.Fatalf("suggestions = %v", sugg)
	}
	if n := gfd.ApplyRepairs(g, sugg, 0.9); n != 1 {
		t.Fatalf("applied = %d", n)
	}
	if !gfd.Satisfies(g, set) {
		t.Error("graph must satisfy Σ after repair")
	}
}
