// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 7). Each figure has a Benchmark* entry; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or e.g. -bench=Fig5VaryProcessors for one figure.
// Custom metrics: violations/op (work done), comm-ms/op (modeled
// communication time), recall/precision for the accuracy table. The
// cmd/gfdbench tool prints the same sweeps as paper-style tables.
package gfd_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gfd"
	"gfd/internal/baseline"
	"gfd/internal/exp"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/match"
	"gfd/internal/validate"
	"gfd/internal/workload"
)

// benchConfig is the shared workload scale for the figure benchmarks:
// large enough that parallelism wins, small enough that the whole harness
// finishes in minutes (see DESIGN.md §4 on scale substitution).
func benchConfig(dataset string) exp.Config {
	return exp.Config{Dataset: dataset, Scale: 250, Rules: 8, PatternSize: 4, TwoCompFrac: 0.3, Seed: 42}
}

func reportResult(b *testing.B, res *validate.Result) {
	b.ReportMetric(float64(len(res.Violations)), "violations/op")
	b.ReportMetric(float64(res.Units), "units/op")
	b.ReportMetric(res.Comm.Seconds()*1000, "comm-ms/op")
}

// BenchmarkFig5VaryProcessors regenerates Fig. 5(a–c): all six algorithms
// on the three dataset stand-ins as the worker count grows.
func BenchmarkFig5VaryProcessors(b *testing.B) {
	for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
		w := exp.Prepare(benchConfig(ds))
		for _, n := range []int{4, 8, 16, 20} {
			for _, alg := range exp.SixAlgorithms {
				b.Run(fmt.Sprintf("%s/n=%d/%s", ds, n, alg), func(b *testing.B) {
					var res *validate.Result
					for i := 0; i < b.N; i++ {
						res = exp.RunAlgorithm(alg, w, n, 42)
					}
					reportResult(b, res)
				})
			}
		}
	}
}

// BenchmarkFig5VarySigma regenerates Fig. 5(d,f,h): time as the rule count
// grows, n = 16.
func BenchmarkFig5VarySigma(b *testing.B) {
	for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
		for _, rules := range []int{4, 8, 12, 16} {
			c := benchConfig(ds)
			c.Rules = rules
			w := exp.Prepare(c)
			for _, alg := range []string{"repVal", "repnop", "disVal", "disnop"} {
				b.Run(fmt.Sprintf("%s/rules=%d/%s", ds, w.Set.Len(), alg), func(b *testing.B) {
					var res *validate.Result
					for i := 0; i < b.N; i++ {
						res = exp.RunAlgorithm(alg, w, 16, 42)
					}
					reportResult(b, res)
				})
			}
		}
	}
}

// BenchmarkFig5VaryPatternSize regenerates Fig. 5(e,g,i): time as |Q|
// grows 2 → 6 pattern nodes, n = 16.
func BenchmarkFig5VaryPatternSize(b *testing.B) {
	for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
		for _, q := range []int{2, 4, 6} {
			c := benchConfig(ds)
			c.PatternSize = q
			w := exp.Prepare(c)
			for _, alg := range []string{"repVal", "disVal"} {
				b.Run(fmt.Sprintf("%s/q=%d/%s", ds, q, alg), func(b *testing.B) {
					var res *validate.Result
					for i := 0; i < b.N; i++ {
						res = exp.RunAlgorithm(alg, w, 16, 42)
					}
					reportResult(b, res)
				})
			}
		}
	}
}

// BenchmarkFig5Communication regenerates Fig. 5(j–l): the communication
// cost of the fragmented algorithms; comm-ms/op is the plotted metric.
func BenchmarkFig5Communication(b *testing.B) {
	for _, ds := range []string{"dbpedia", "yago2", "pokec"} {
		w := exp.Prepare(benchConfig(ds))
		for _, n := range []int{4, 12, 20} {
			for _, alg := range []string{"disVal", "disran", "disnop"} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", ds, n, alg), func(b *testing.B) {
					var res *validate.Result
					for i := 0; i < b.N; i++ {
						res = exp.RunAlgorithm(alg, w, n, 42)
					}
					b.ReportMetric(res.Comm.Seconds()*1000, "comm-ms/op")
					b.ReportMetric(float64(res.BytesShipped), "bytes-shipped/op")
				})
			}
		}
	}
}

// BenchmarkFig6ScaleGraph regenerates Fig. 6: disVal and variants on
// synthetic power-law graphs of growing size, n = 16.
func BenchmarkFig6ScaleGraph(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		c := exp.Config{Dataset: "synthetic", Scale: 100 * mult, Rules: 6, PatternSize: 4, Seed: 42}
		w := exp.Prepare(c)
		for _, alg := range []string{"disVal", "disran", "disnop"} {
			b.Run(fmt.Sprintf("G=%dx/%s", mult, alg), func(b *testing.B) {
				var res *validate.Result
				for i := 0; i < b.N; i++ {
					res = exp.RunAlgorithm(alg, w, 16, 42)
				}
				reportResult(b, res)
			})
		}
	}
}

// BenchmarkFig7RealLifeGFDs regenerates Fig. 7 / Exp-5: the three
// real-life GFDs over a knowledge graph with injected structural errors.
func BenchmarkFig7RealLifeGFDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings := exp.Fig7RealLife(300, 5, 42)
		caught, injected := 0, 0
		for _, f := range findings {
			caught += f.Caught
			injected += f.Injected
		}
		if caught < injected {
			b.Fatalf("Fig 7 reproduction failed: caught %d of %d", caught, injected)
		}
		b.ReportMetric(float64(caught), "errors-caught/op")
	}
}

// BenchmarkFig8Skew regenerates the Appendix skew experiment: disVal's
// replicate-and-split strategy against the variants on increasingly
// skewed synthetic graphs.
func BenchmarkFig8Skew(b *testing.B) {
	for _, skew := range []float64{0.1, 0.5, 0.9} {
		clean := gen.Synthetic(gen.SyntheticConfig{Nodes: 2500, Edges: 5000, Skew: skew, Seed: 42})
		set := gen.MineGFDs(clean, gen.MineConfig{NumRules: 6, PatternSize: 4, Seed: 44})
		gen.Inject(clean, gen.NoiseConfig{Rate: 0.02, Seed: 43})
		w := exp.NewWorkload(clean, set)
		for _, alg := range []string{"disVal", "disran", "disnop"} {
			b.Run(fmt.Sprintf("skew=%.1f/%s", skew, alg), func(b *testing.B) {
				var res *validate.Result
				for i := 0; i < b.N; i++ {
					res = exp.RunAlgorithm(alg, w, 16, 42)
				}
				reportResult(b, res)
				b.ReportMetric(float64(res.SplitUnits), "split-units/op")
			})
		}
	}
}

// BenchmarkFig9Accuracy regenerates the Fig. 9 table: GFD vs GCFD vs
// BigDansing recall/precision/time. The recall and precision land as
// custom metrics; the paper's shape (GFD ≈ BigDansing accuracy, GCFD
// lower recall, BigDansing slower) is asserted.
func BenchmarkFig9Accuracy(b *testing.B) {
	c := exp.Config{Scale: 400, Rules: 12, PatternSize: 4, TwoCompFrac: 0.5, NoiseRate: 0.05, Seed: 3}
	var rows []exp.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = exp.Fig9Accuracy(c)
	}
	for _, r := range rows {
		prefix := map[string]string{"GFD": "gfd", "GCFD": "gcfd", "BigDansing": "bigdansing"}[r.Model]
		b.ReportMetric(r.Recall, prefix+"-recall")
		b.ReportMetric(r.Precision, prefix+"-precision")
		b.ReportMetric(r.Time.Seconds()*1000, prefix+"-ms")
	}
}

// BenchmarkSequentialVsParallel covers Exp-1/Exp-2's detVio comparison:
// the sequential algorithm against repVal with 16 workers on the same
// workload (the paper's detVio did not terminate at all at full scale).
func BenchmarkSequentialVsParallel(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	b.Run("detVio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			_, _ = validate.DetVioCtx(ctx, w.G, w.Set)
			cancel()
		}
	})
	b.Run("repVal-n16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			validate.RepVal(w.G, w.Set, validate.Options{N: 16})
		}
	})
}

// BenchmarkSessionReuse is the prepared-session payoff benchmark: warm
// Detect rounds on one Prepared (freeze, reduction, grouping and rule
// lowering all amortized) against the cold free-function path on a fresh
// graph copy per call (cloning excluded from the timing). The gfdbench
// `sessionreuse` experiment emits the same comparison as JSON for the
// benchdiff gate.
func BenchmarkSessionReuse(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	opt := gfd.Options{Engine: gfd.EngineReplicated, N: 8}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gc := w.G.Clone()
			b.StartTimer()
			gfd.ValidateParallel(gc, w.Set, opt)
		}
	})
	b.Run("warm", func(b *testing.B) {
		prep := w.Prepared()
		ctx := context.Background()
		if _, err := prep.Detect(ctx, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Detect(ctx, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ------

// BenchmarkAblationShipping compares disVal's adaptive prefetch/partial
// strategy selection against forcing prefetch for every unit.
func BenchmarkAblationShipping(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	frag := fragment.Partition(w.G, 8, fragment.Hash)
	b.Run("adaptive", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.DisVal(w.G, frag, w.Set, validate.Options{N: 8})
		}
		b.ReportMetric(float64(res.BytesShipped), "bytes-shipped/op")
		b.ReportMetric(float64(res.PartialUnits), "partial-units/op")
	})
	b.Run("prefetch-only", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.DisVal(w.G, frag, w.Set, validate.Options{N: 8, NoOptimize: true})
		}
		b.ReportMetric(float64(res.BytesShipped), "bytes-shipped/op")
	})
}

// BenchmarkAblationPivot compares min-radius pivot selection against
// arbitrary pivots (larger radii mean larger data blocks).
func BenchmarkAblationPivot(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	b.Run("min-radius", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.RepVal(w.G, w.Set, validate.Options{N: 8})
		}
		b.ReportMetric(float64(res.TotalWeight), "workload/op")
	})
	b.Run("arbitrary", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.RepVal(w.G, w.Set, validate.Options{N: 8, ArbitraryPivot: true})
		}
		b.ReportMetric(float64(res.TotalWeight), "workload/op")
	})
}

// BenchmarkAblationSplitThreshold sweeps the replicate-and-split θ on a
// skewed graph.
func BenchmarkAblationSplitThreshold(b *testing.B) {
	clean := gen.Synthetic(gen.SyntheticConfig{Nodes: 2500, Edges: 6000, Skew: 0.9, Seed: 7})
	set := gen.MineGFDs(clean, gen.MineConfig{NumRules: 5, PatternSize: 4, Seed: 8})
	w := exp.NewWorkload(clean, set)
	for _, theta := range []int{-1, 0, 64, 256} {
		name := fmt.Sprintf("theta=%d", theta)
		if theta == -1 {
			name = "disabled"
		} else if theta == 0 {
			name = "auto"
		}
		b.Run(name, func(b *testing.B) {
			var res *validate.Result
			for i := 0; i < b.N; i++ {
				res = validate.RepVal(w.G, w.Set, validate.Options{N: 16, SplitThreshold: theta})
			}
			b.ReportMetric(float64(res.SplitUnits), "split-units/op")
			b.ReportMetric(float64(res.Makespan), "makespan/op")
		})
	}
}

// BenchmarkAblationGrouping isolates multi-query pattern grouping.
func BenchmarkAblationGrouping(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	b.Run("grouped", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.RepVal(w.G, w.Set, validate.Options{N: 8, NoReduce: true})
		}
		b.ReportMetric(float64(res.Groups), "groups/op")
	})
	b.Run("ungrouped", func(b *testing.B) {
		var res *validate.Result
		for i := 0; i < b.N; i++ {
			res = validate.RepVal(w.G, w.Set, validate.Options{N: 8, NoOptimize: true})
		}
		b.ReportMetric(float64(res.Groups), "groups/op")
	})
}

// --- Micro-benchmarks on the substrates -----------------------------------

func BenchmarkSubgraphIsoStar(b *testing.B) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 400, Seed: 1})
	q := gfd.NewPattern()
	f := q.AddNode("f", "flight")
	id := q.AddNode("i", "id")
	from := q.AddNode("c", "city")
	q.AddEdge(f, id, "number")
	q.AddEdge(f, from, "from")
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.Count(g, q, match.Options{})
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		m := match.NewMatcher(g.Freeze())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Count(q, match.Options{})
		}
	})
}

func BenchmarkNeighborhood2Hop(b *testing.B) {
	g := gen.Synthetic(gen.SyntheticConfig{Nodes: 5000, Edges: 15000, Skew: 0.6, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Neighborhood(gfd.NodeID(i%g.NumNodes()), 2)
	}
}

func BenchmarkWorkloadEstimation(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	pivots := make([]*workload.Pivot, 0, w.Set.Len())
	for _, f := range w.Set.Rules() {
		pivots = append(pivots, workload.ComputePivot(f.Q))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := workload.NewSizeCache()
		for _, pv := range pivots {
			k := pv.Arity()
			cands := make([][]gfd.NodeID, k)
			for j := 0; j < k; j++ {
				cands[j] = pv.Candidates(w.G, j)
			}
			workload.BuildUnitsFrom(w.G, pv, cands, cache, workload.BuildOptions{DedupSymmetric: true})
		}
	}
}

func BenchmarkLPTBalance(b *testing.B) {
	weights := make([]int, 10000)
	for i := range weights {
		weights[i] = (i*7919)%997 + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.BalanceLPT(weights, 20)
	}
}

func BenchmarkSatisfiability(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gfd.Satisfiable(w.Set)
	}
}

func BenchmarkImplicationReduce(b *testing.B) {
	w := exp.Prepare(benchConfig("yago2"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gfd.Reduce(w.Set)
	}
}

func BenchmarkBigDansingJoins(b *testing.B) {
	w := exp.Prepare(exp.Config{Dataset: "yago2", Scale: 150, Rules: 5, PatternSize: 4, Seed: 42})
	rel := baseline.Encode(w.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.DetectJoins(w.G, rel, w.Set, 8)
	}
}
