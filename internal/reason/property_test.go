package reason

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gfd/internal/core"
	"gfd/internal/pattern"
)

// randomRuleSet builds a small random constant-GFD set over a couple of
// labels — the fragment where satisfiability is interesting.
func randomRuleSet(seed int64) *core.Set {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"t", "s"}
	attrs := []string{"A", "B"}
	consts := []string{"c", "d"}
	n := 1 + rng.Intn(4)
	rules := make([]*core.GFD, 0, n)
	for i := 0; i < n; i++ {
		q := pattern.New()
		q.AddNode("x", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			y := q.AddNode("y", labels[rng.Intn(len(labels))])
			xi, _ := q.VarIndex("x")
			q.AddEdge(xi, y, "e")
		}
		var x []core.Literal
		if rng.Intn(2) == 0 {
			x = append(x, core.Const("x", attrs[rng.Intn(2)], consts[rng.Intn(2)]))
		}
		y := []core.Literal{core.Const("x", attrs[rng.Intn(2)], consts[rng.Intn(2)])}
		rules = append(rules, core.MustNew(fmt.Sprintf("r%d", i), q, x, y))
	}
	return core.MustNewSet(rules...)
}

// TestPropertySatisfiabilityAntiMonotone: removing a rule from a
// satisfiable set keeps it satisfiable (conflicts need all their
// participants).
func TestPropertySatisfiabilityAntiMonotone(t *testing.T) {
	f := func(seedRaw uint32) bool {
		set := randomRuleSet(int64(seedRaw))
		ok, _ := Satisfiable(set)
		if !ok {
			return true // nothing to check
		}
		rules := set.Rules()
		for i := range rules {
			rest := make([]*core.GFD, 0, len(rules)-1)
			rest = append(rest, rules[:i]...)
			rest = append(rest, rules[i+1:]...)
			if len(rest) == 0 {
				continue
			}
			if ok2, _ := Satisfiable(core.MustNewSet(rest...)); !ok2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyImplicationMonotone: if Σ |= ϕ then any superset of Σ also
// implies ϕ (the closure only grows with more embedded rules).
func TestPropertyImplicationMonotone(t *testing.T) {
	f := func(seedRaw uint32, extraRaw uint32) bool {
		set := randomRuleSet(int64(seedRaw))
		extra := randomRuleSet(int64(extraRaw) + 1<<32)
		phi := set.Rules()[0]
		if !Implies(set, phi) {
			return true // reflexivity guarantees this never fires, but be safe
		}
		var all []*core.GFD
		all = append(all, set.Rules()...)
		for i, r := range extra.Rules() {
			clone := core.MustNew(fmt.Sprintf("x%d", i), r.Q, r.X, r.Y)
			all = append(all, clone)
		}
		return Implies(core.MustNewSet(all...), phi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReduceSoundness: every dropped rule is implied by the
// surviving cover, and the cover itself is a subset of Σ.
func TestPropertyReduceSoundness(t *testing.T) {
	f := func(seedRaw uint32) bool {
		set := randomRuleSet(int64(seedRaw))
		if ok, _ := Satisfiable(set); !ok {
			return true // Reduce assumes satisfiable input
		}
		red := Reduce(set)
		if red.Len() > set.Len() {
			return false
		}
		for _, f := range red.Rules() {
			if set.Get(f.Name) == nil {
				return false // cover must be a subset
			}
		}
		for _, f := range set.Rules() {
			if red.Get(f.Name) == nil && !Implies(red, f) {
				return false // dropped rules must be implied
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyXSatisfiableNeverBlocksSingleLiteral: any single constant
// binding is satisfiable.
func TestPropertyXSatisfiableNeverBlocksSingleLiteral(t *testing.T) {
	f := func(attr, val string) bool {
		if attr == "" {
			return true
		}
		q := pattern.New()
		q.AddNode("x", "t")
		g := core.MustNew("g", q, []core.Literal{core.Const("x", attr, val)}, nil)
		return XSatisfiable(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
