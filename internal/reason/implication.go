package reason

import (
	"gfd/internal/core"
)

// Implies decides Σ |= ϕ: every graph satisfying Σ also satisfies ϕ
// (Section 4.2). It assumes Σ is satisfiable; callers that cannot guarantee
// this should check Satisfiable first (the paper's extended algorithm does
// the same in sequence).
//
// Following Lemma 7, Σ |= ϕ = (Q[x̄], X → Y) iff each normalized consequent
// literal of Y is deducible from Σ and X: it belongs to closure(Σ_Q, X)
// where Σ_Q is the set of GFDs embedded in Q and derived from Σ.
func Implies(s *core.Set, f *core.GFD) bool {
	// An unsatisfiable antecedent makes ϕ hold vacuously.
	if !XSatisfiable(f) {
		return true
	}
	norm := f.Normalize()
	if len(norm) == 0 {
		return true // Y = ∅ holds trivially
	}
	emb := embedAll(s.Rules(), f.Q)
	id := identityMap(f.Q.NumNodes())
	for _, nf := range norm {
		y := rewrite(nf, id).y[0]
		if isTautologyLiteral(y) {
			// x.A = x.A in Y forces the attribute to exist; it is implied
			// only if some rule in the closure also forces x.A (i.e. the
			// chase derives a literal on that term).
			if !termForced(emb, rewrite(nf, id), y) {
				return false
			}
			continue
		}
		rel := newEqRel()
		seedAntecedent(rel, rewrite(nf, id).x)
		if rel.conflict {
			continue // this X is unsatisfiable; literal vacuously implied
		}
		chase(rel, emb)
		if rel.conflict {
			continue // Σ ∪ X inconsistent on Q: anything follows
		}
		if !rel.holds(y) {
			return false
		}
	}
	return true
}

// ImpliedBy reports, for each rule in Σ, whether it is implied by the other
// rules. Used by workload reduction.
func ImpliedBy(s *core.Set) []bool {
	rules := s.Rules()
	out := make([]bool, len(rules))
	for i, f := range rules {
		rest := make([]*core.GFD, 0, len(rules)-1)
		rest = append(rest, rules[:i]...)
		rest = append(rest, rules[i+1:]...)
		out[i] = Implies(core.MustNewSet(rest...), f)
	}
	return out
}

// Reduce returns a cover of Σ with implied rules removed (the Appendix's
// workload-reduction optimization): validating the cover yields the same
// violation set on every graph. Removal is greedy in rule order, re-testing
// implication against the shrinking set so that mutually-implied duplicates
// leave one representative behind.
func Reduce(s *core.Set) *core.Set {
	kept := append([]*core.GFD(nil), s.Rules()...)
	for i := 0; i < len(kept); {
		rest := make([]*core.GFD, 0, len(kept)-1)
		rest = append(rest, kept[:i]...)
		rest = append(rest, kept[i+1:]...)
		if len(rest) > 0 && Implies(core.MustNewSet(rest...), kept[i]) {
			kept = rest
			continue
		}
		i++
	}
	return core.MustNewSet(kept...)
}

func seedAntecedent(rel *eqRel, x []hostLiteral) {
	for _, l := range x {
		rel.apply(l)
	}
}

func isTautologyLiteral(l hostLiteral) bool {
	return l.kind == litVar && l.xNode == l.yNode && l.a == l.b
}

// termForced reports whether the chase starting from ϕ's antecedent derives
// any literal touching the tautology's term, which is what makes the
// attribute's existence a logical consequence.
func termForced(emb []embeddedGFD, ef embeddedGFD, y hostLiteral) bool {
	rel := newEqRel()
	seedAntecedent(rel, ef.x)
	chase(rel, emb)
	// The term is forced when some embedded rule that fires under the
	// closure mentions it in its consequent.
	for _, e := range emb {
		if !allHold(rel, e.x) {
			continue
		}
		for _, l := range e.y {
			if (l.xNode == y.xNode && l.a == y.a) ||
				(l.kind == litVar && l.yNode == y.xNode && l.b == y.a) {
				return true
			}
		}
	}
	return false
}
