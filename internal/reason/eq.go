// Package reason implements the static analyses of GFDs (Section 4 of the
// paper): satisfiability of a set Σ (is there a non-empty model satisfying
// every rule with every pattern matched?), implication (Σ |= ϕ), the
// tractable special cases of Corollaries 4 and 8, and implication-based
// workload reduction (a minimal cover of Σ).
//
// Both analyses reduce to computing equality closures of literal sets over
// a single host pattern — enforced(Σ_Q) for satisfiability and
// closure(Σ_Q, X) for implication — using the embedded-GFD construction:
// every rule of Σ whose pattern embeds isomorphically into the host
// contributes its literals, rewritten through the embedding.
package reason

// term is an attribute occurrence u.A on a host-pattern node: the unit the
// equality closure reasons over.
type term struct {
	node int    // host pattern node index
	attr string // attribute name
}

// eqRel is a union-find over terms where each equivalence class may carry
// at most one constant. Merging classes with distinct constants, or binding
// a class to a second distinct constant, raises a conflict — the condition
// defining "conflicting" literal sets in Lemma 3.
type eqRel struct {
	parent map[term]term
	rank   map[term]int
	val    map[term]string // representative -> bound constant
	// conflict is set permanently once two distinct constants meet in one
	// class; conflicted closures characterize unsatisfiability.
	conflict bool
}

func newEqRel() *eqRel {
	return &eqRel{
		parent: make(map[term]term),
		rank:   make(map[term]int),
		val:    make(map[term]string),
	}
}

func (r *eqRel) find(t term) term {
	p, ok := r.parent[t]
	if !ok {
		r.parent[t] = t
		return t
	}
	if p == t {
		return t
	}
	root := r.find(p)
	r.parent[t] = root
	return root
}

// union merges the classes of a and b, reporting whether anything changed.
func (r *eqRel) union(a, b term) bool {
	ra, rb := r.find(a), r.find(b)
	if ra == rb {
		return false
	}
	va, hasA := r.val[ra]
	vb, hasB := r.val[rb]
	if hasA && hasB && va != vb {
		r.conflict = true
	}
	if r.rank[ra] < r.rank[rb] {
		ra, rb = rb, ra
		va, hasA = vb, hasB
	}
	r.parent[rb] = ra
	if r.rank[ra] == r.rank[rb] {
		r.rank[ra]++
	}
	if !hasA && hasB {
		r.val[ra] = vb
	} else if hasA {
		r.val[ra] = va
	}
	delete(r.val, rb)
	return true
}

// bind asserts t = c, reporting whether anything changed.
func (r *eqRel) bind(t term, c string) bool {
	root := r.find(t)
	if v, ok := r.val[root]; ok {
		if v != c {
			r.conflict = true
		}
		return false
	}
	r.val[root] = c
	return true
}

// sameClass reports whether a and b are known equal: same class, or both
// bound to the same constant (transitivity through constants).
func (r *eqRel) sameClass(a, b term) bool {
	ra, rb := r.find(a), r.find(b)
	if ra == rb {
		return true
	}
	va, okA := r.val[ra]
	vb, okB := r.val[rb]
	return okA && okB && va == vb
}

// hasConst reports whether t is known equal to c.
func (r *eqRel) hasConst(t term, c string) bool {
	v, ok := r.val[r.find(t)]
	return ok && v == c
}

// holds evaluates an embedded literal against the current closure.
func (r *eqRel) holds(l hostLiteral) bool {
	if l.kind == litConst {
		return r.hasConst(term{l.xNode, l.a}, l.c)
	}
	return r.sameClass(term{l.xNode, l.a}, term{l.yNode, l.b})
}

// apply asserts an embedded literal, reporting whether the closure changed.
func (r *eqRel) apply(l hostLiteral) bool {
	if l.kind == litConst {
		return r.bind(term{l.xNode, l.a}, l.c)
	}
	return r.union(term{l.xNode, l.a}, term{l.yNode, l.b})
}
