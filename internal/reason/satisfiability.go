package reason

import (
	"fmt"

	"gfd/internal/core"
)

// Conflict describes why a rule set is unsatisfiable: a host pattern (owned
// by HostRule) on which the enforced closure binds one attribute occurrence
// to two distinct constants.
type Conflict struct {
	// HostRule owns the host pattern Q on which the conflict arises; every
	// model of Σ must contain a match of Q, so the conflict is genuine.
	HostRule string
	// Rules are the names of the rules whose embedded GFDs participate in
	// the conflicting closure (a superset of the minimal culprit set).
	Rules []string
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("gfd set unsatisfiable: conflicting enforced literals on pattern of %s (rules %v)", c.HostRule, c.Rules)
}

// Satisfiable decides whether Σ has a model: a non-empty graph satisfying
// every GFD in which every pattern has a match (Section 4.1). It returns a
// non-nil *Conflict when unsatisfiable.
//
// The procedure implements the characterization of Lemma 3: Σ is
// unsatisfiable iff some set Σ_Q of GFDs embedded in a pattern Q and
// derived from Σ is conflicting. Host patterns Q range over the patterns of
// Σ itself: under the paper's size bound (|Q| at most the largest pattern
// in Σ), a host that embeds the largest participating pattern is
// isomorphic to it, so rule patterns are the canonical hosts (see
// DESIGN.md). Embeddings are exact — a concrete label never maps onto a
// wildcard host node — because an embedded GFD must apply to *every* match
// of the host for a conflict to contradict the required match.
func Satisfiable(s *core.Set) (bool, *Conflict) {
	rules := s.Rules()
	// Tractable shortcuts (Corollary 4): a set of variable GFDs only, or a
	// set with no rule of the form (Q, ∅ → Y), is always satisfiable —
	// nothing can enforce two distinct constants on one attribute.
	if allVariable(rules) || noEmptyAntecedent(rules) {
		return true, nil
	}
	for _, hostRule := range rules {
		emb := embedAll(rules, hostRule.Q)
		rel := newEqRel()
		chase(rel, emb)
		if rel.conflict {
			return false, &Conflict{HostRule: hostRule.Name, Rules: participantNames(emb)}
		}
	}
	return true, nil
}

// XSatisfiable reports whether the antecedent X of ϕ is itself satisfiable
// (no two distinct constants forced on the same attribute occurrence via
// transitivity). Implication treats rules with unsatisfiable X as trivially
// implied.
func XSatisfiable(f *core.GFD) bool {
	rel := newEqRel()
	e := rewrite(&core.GFD{Name: f.Name, Q: f.Q, X: nil, Y: f.X}, identityMap(f.Q.NumNodes()))
	for _, l := range e.y {
		rel.apply(l)
		if rel.conflict {
			return false
		}
	}
	return true
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func allVariable(rules []*core.GFD) bool {
	for _, f := range rules {
		if !f.IsVariable() {
			return false
		}
	}
	return true
}

func noEmptyAntecedent(rules []*core.GFD) bool {
	for _, f := range rules {
		if len(f.X) == 0 && len(f.Y) > 0 {
			return false
		}
	}
	return true
}

func participantNames(emb []embeddedGFD) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, e := range emb {
		if _, dup := seen[e.src.Name]; !dup {
			seen[e.src.Name] = struct{}{}
			out = append(out, e.src.Name)
		}
	}
	return out
}
