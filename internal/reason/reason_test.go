package reason

import (
	"testing"

	"gfd/internal/core"
	"gfd/internal/pattern"
)

// q7 builds Q7 of Fig. 3: a single node labeled tau.
func q7() *pattern.Pattern {
	p := pattern.New()
	p.AddNode("x", "tau")
	return p
}

// q8 builds Q8 of Fig. 3: x -l-> y, x -l-> z, y -l-> z, all tau.
func q8() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "tau")
	y := p.AddNode("y", "tau")
	z := p.AddNode("z", "tau")
	p.AddEdge(x, y, "l")
	p.AddEdge(x, z, "l")
	p.AddEdge(y, z, "l")
	return p
}

// q9 builds Q9 of Fig. 3: Q8 plus z -l-> w.
func q9() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "tau")
	y := p.AddNode("y", "tau")
	z := p.AddNode("z", "tau")
	w := p.AddNode("w", "tau")
	p.AddEdge(x, y, "l")
	p.AddEdge(x, z, "l")
	p.AddEdge(y, z, "l")
	p.AddEdge(z, w, "l")
	return p
}

// --- Satisfiability (Example 7, Theorem 1, Corollary 4) -----------------

func TestSatisfiabilityExample7SamePattern(t *testing.T) {
	// ϕ7 = (Q7, ∅ → x.A = c), ϕ7' = (Q7, ∅ → x.A = d): unsatisfiable.
	phi7 := core.MustNew("phi7", q7(), nil, []core.Literal{core.Const("x", "A", "c")})
	phi7p := core.MustNew("phi7p", q7(), nil, []core.Literal{core.Const("x", "A", "d")})
	ok, conflict := Satisfiable(core.MustNewSet(phi7, phi7p))
	if ok {
		t.Fatal("ϕ7 + ϕ7' must be unsatisfiable (Example 7)")
	}
	if conflict == nil || len(conflict.Rules) < 2 {
		t.Errorf("conflict diagnostics = %+v", conflict)
	}
	if conflict.Error() == "" {
		t.Error("conflict must describe itself")
	}
	// Each alone is satisfiable.
	if ok, _ := Satisfiable(core.MustNewSet(phi7)); !ok {
		t.Error("ϕ7 alone is satisfiable")
	}
}

func TestSatisfiabilityExample7CrossPattern(t *testing.T) {
	// ϕ8 = (Q8, ∅ → x.A = c), ϕ9 = (Q9, ∅ → x.A = d): Q8 embeds in Q9, so
	// the pair conflicts on Q9 although each alone has a model.
	phi8 := core.MustNew("phi8", q8(), nil, []core.Literal{core.Const("x", "A", "c")})
	phi9 := core.MustNew("phi9", q9(), nil, []core.Literal{core.Const("x", "A", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(phi8)); !ok {
		t.Error("ϕ8 alone is satisfiable")
	}
	if ok, _ := Satisfiable(core.MustNewSet(phi9)); !ok {
		t.Error("ϕ9 alone is satisfiable")
	}
	ok, conflict := Satisfiable(core.MustNewSet(phi8, phi9))
	if ok {
		t.Fatal("ϕ8 + ϕ9 must be unsatisfiable (Example 7)")
	}
	if conflict.HostRule != "phi9" {
		t.Errorf("conflict host = %s, want phi9", conflict.HostRule)
	}
}

func TestSatisfiabilityCorollary4VariableOnly(t *testing.T) {
	// A set of variable GFDs only is always satisfiable.
	f1 := core.MustNew("f1", q8(), []core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	f2 := core.MustNew("f2", q9(), []core.Literal{core.VarEq("x", "B", "y", "B")},
		[]core.Literal{core.VarEq("z", "C", "w", "C")})
	if ok, _ := Satisfiable(core.MustNewSet(f1, f2)); !ok {
		t.Error("variable GFDs are always satisfiable (Corollary 4)")
	}
}

func TestSatisfiabilityCorollary4NoEmptyAntecedent(t *testing.T) {
	// No rule of the form (Q, ∅ → Y): always satisfiable, even with
	// conflicting constants guarded behind antecedents.
	f1 := core.MustNew("f1", q7(), []core.Literal{core.Const("x", "B", "on")},
		[]core.Literal{core.Const("x", "A", "c")})
	f2 := core.MustNew("f2", q7(), []core.Literal{core.Const("x", "B", "on")},
		[]core.Literal{core.Const("x", "A", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(f1, f2)); !ok {
		t.Error("guarded conflicts are satisfiable: the model simply avoids B = on")
	}
}

func TestSatisfiabilityChainedDerivation(t *testing.T) {
	// ∅ → x.B = on; x.B = on → x.A = c; x.B = on → x.A = d: the chase must
	// chain through the enforced antecedent to find the conflict.
	f0 := core.MustNew("f0", q7(), nil, []core.Literal{core.Const("x", "B", "on")})
	f1 := core.MustNew("f1", q7(), []core.Literal{core.Const("x", "B", "on")},
		[]core.Literal{core.Const("x", "A", "c")})
	f2 := core.MustNew("f2", q7(), []core.Literal{core.Const("x", "B", "on")},
		[]core.Literal{core.Const("x", "A", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(f0, f1, f2)); ok {
		t.Error("chained enforcement must be detected")
	}
}

func TestSatisfiabilityTransitivityThroughVariables(t *testing.T) {
	// ∅ → x.A = c; ∅ → x.A = x.B; ∅ → x.B = d: conflict via transitivity.
	f0 := core.MustNew("f0", q7(), nil, []core.Literal{core.Const("x", "A", "c")})
	f1 := core.MustNew("f1", q7(), nil, []core.Literal{core.VarEq("x", "A", "x", "B")})
	f2 := core.MustNew("f2", q7(), nil, []core.Literal{core.Const("x", "B", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(f0, f1, f2)); ok {
		t.Error("transitive conflict must be detected")
	}
	// Without the bridging equality the set is fine.
	if ok, _ := Satisfiable(core.MustNewSet(f0, f2)); !ok {
		t.Error("different attributes may carry different constants")
	}
}

func TestSatisfiabilityDifferentLabelsNoInteraction(t *testing.T) {
	sigma := pattern.New()
	sigma.AddNode("x", "sigma")
	f1 := core.MustNew("f1", q7(), nil, []core.Literal{core.Const("x", "A", "c")})
	f2 := core.MustNew("f2", sigma, nil, []core.Literal{core.Const("x", "A", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(f1, f2)); !ok {
		t.Error("rules on disjoint labels cannot conflict")
	}
}

func TestSatisfiabilityWildcardRuleAppliesEverywhere(t *testing.T) {
	// Wildcard rule ∅ → x.A = c conflicts with a tau rule ∅ → x.A = d,
	// because the wildcard embeds into the tau pattern.
	wq := pattern.New()
	wq.AddNode("x", pattern.Wildcard)
	f1 := core.MustNew("wild", wq, nil, []core.Literal{core.Const("x", "A", "c")})
	f2 := core.MustNew("tau", q7(), nil, []core.Literal{core.Const("x", "A", "d")})
	if ok, _ := Satisfiable(core.MustNewSet(f1, f2)); ok {
		t.Error("wildcard rule must conflict with the tau rule on the tau host")
	}
}

func TestXSatisfiable(t *testing.T) {
	good := core.MustNew("g", q7(), []core.Literal{core.Const("x", "A", "c")}, nil)
	if !XSatisfiable(good) {
		t.Error("single binding is satisfiable")
	}
	bad := core.MustNew("b", q7(), []core.Literal{
		core.Const("x", "A", "c"), core.Const("x", "A", "d"),
	}, nil)
	if XSatisfiable(bad) {
		t.Error("x.A = c ∧ x.A = d is unsatisfiable")
	}
	badTrans := core.MustNew("bt", q7(), []core.Literal{
		core.Const("x", "A", "c"), core.VarEq("x", "A", "x", "B"), core.Const("x", "B", "d"),
	}, nil)
	if XSatisfiable(badTrans) {
		t.Error("transitive X conflict must be detected")
	}
}

// --- Implication (Example 8, Theorem 5) ----------------------------------

func TestImplicationExample8(t *testing.T) {
	// Σ = {(Q8, x.A = y.A → x.B = y.B), (Q9, x.B = y.B → z.C = w.C)};
	// ϕ11 = (Q9, x.A = y.A → z.C = w.C). Σ |= ϕ11.
	s1 := core.MustNew("s1", q8(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	s2 := core.MustNew("s2", q9(),
		[]core.Literal{core.VarEq("x", "B", "y", "B")},
		[]core.Literal{core.VarEq("z", "C", "w", "C")})
	phi11 := core.MustNew("phi11", q9(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("z", "C", "w", "C")})
	if !Implies(core.MustNewSet(s1, s2), phi11) {
		t.Fatal("Example 8: Σ |= ϕ11 must hold")
	}
	// Dropping the bridge rule s2 breaks the implication.
	if Implies(core.MustNewSet(s1), phi11) {
		t.Error("without s2 the implication must fail")
	}
	// The reverse direction does not hold either: s1's consequent is not
	// implied by s2 alone.
	if Implies(core.MustNewSet(s2), s1) {
		t.Error("s2 alone must not imply s1")
	}
}

func TestImplicationReflexive(t *testing.T) {
	f := core.MustNew("f", q8(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	if !Implies(core.MustNewSet(f), f) {
		t.Error("Σ |= ϕ for ϕ ∈ Σ")
	}
}

func TestImplicationTrivialCases(t *testing.T) {
	f := core.MustNew("f", q7(), []core.Literal{core.Const("x", "A", "c")}, nil)
	empty := core.MustNewSet()
	// Empty Y: trivially implied.
	if !Implies(empty, f) {
		t.Error("Y = ∅ holds trivially")
	}
	// Unsatisfiable X: vacuously implied.
	vac := core.MustNew("v", q7(),
		[]core.Literal{core.Const("x", "A", "c"), core.Const("x", "A", "d")},
		[]core.Literal{core.Const("x", "B", "q")})
	if !Implies(empty, vac) {
		t.Error("unsatisfiable X implies anything")
	}
	// X ⊇ Y: implied without any rules.
	sub := core.MustNew("s", q7(),
		[]core.Literal{core.Const("x", "A", "c")},
		[]core.Literal{core.Const("x", "A", "c")})
	if !Implies(empty, sub) {
		t.Error("Y ⊆ X must be implied by the empty set")
	}
	// A genuinely new consequent is not implied by the empty set.
	nf := core.MustNew("n", q7(),
		[]core.Literal{core.Const("x", "A", "c")},
		[]core.Literal{core.Const("x", "B", "d")})
	if Implies(empty, nf) {
		t.Error("the empty set implies nothing new")
	}
}

func TestImplicationConstantPropagation(t *testing.T) {
	// Σ: x.A = c → x.B = d. ϕ: x.A = c ∧ x.Z = q → x.B = d (weaker
	// antecedent is fine).
	s := core.MustNew("s", q7(),
		[]core.Literal{core.Const("x", "A", "c")},
		[]core.Literal{core.Const("x", "B", "d")})
	f := core.MustNew("f", q7(),
		[]core.Literal{core.Const("x", "A", "c"), core.Const("x", "Z", "q")},
		[]core.Literal{core.Const("x", "B", "d")})
	if !Implies(core.MustNewSet(s), f) {
		t.Error("strengthened antecedent preserves implication")
	}
	// But the wrong constant in X must not fire the rule.
	f2 := core.MustNew("f2", q7(),
		[]core.Literal{core.Const("x", "A", "other")},
		[]core.Literal{core.Const("x", "B", "d")})
	if Implies(core.MustNewSet(s), f2) {
		t.Error("rule must not fire on a different constant")
	}
}

func TestImplicationEmbeddedSmallerPattern(t *testing.T) {
	// Σ's rule on Q8 applies inside ϕ's larger pattern Q9.
	s := core.MustNew("s", q8(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	f := core.MustNew("f", q9(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	if !Implies(core.MustNewSet(s), f) {
		t.Error("rule on embedded pattern must transfer to the host")
	}
	// The opposite direction fails: a rule on Q9 does not constrain Q8
	// matches (Q9 does not embed into Q8).
	if Implies(core.MustNewSet(f), s) {
		t.Error("larger-pattern rule must not imply the smaller-pattern one")
	}
}

func TestImplicationTautologyConsequent(t *testing.T) {
	// ϕ: X → x.A = x.A (attribute existence). Implied only when some rule
	// forces x.A.
	force := core.MustNew("force", q7(), nil, []core.Literal{core.Const("x", "A", "c")})
	f := core.MustNew("f", q7(), nil, []core.Literal{core.VarEq("x", "A", "x", "A")})
	if !Implies(core.MustNewSet(force), f) {
		t.Error("a forced attribute implies its existence tautology")
	}
	unrelated := core.MustNew("u", q7(), nil, []core.Literal{core.Const("x", "B", "c")})
	if Implies(core.MustNewSet(unrelated), f) {
		t.Error("an unrelated attribute must not imply existence of x.A")
	}
}

// --- Reduce (workload reduction) ------------------------------------------

func TestReduceDropsImpliedRules(t *testing.T) {
	s1 := core.MustNew("s1", q8(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("x", "B", "y", "B")})
	s2 := core.MustNew("s2", q9(),
		[]core.Literal{core.VarEq("x", "B", "y", "B")},
		[]core.Literal{core.VarEq("z", "C", "w", "C")})
	implied := core.MustNew("implied", q9(),
		[]core.Literal{core.VarEq("x", "A", "y", "A")},
		[]core.Literal{core.VarEq("z", "C", "w", "C")})
	red := Reduce(core.MustNewSet(s1, s2, implied))
	if red.Len() != 2 {
		t.Fatalf("reduced to %d rules, want 2", red.Len())
	}
	if red.Get("implied") != nil {
		t.Error("the implied rule must be dropped")
	}
}

func TestReduceKeepsIndependentRules(t *testing.T) {
	f1 := core.MustNew("f1", q7(), []core.Literal{core.Const("x", "A", "1")},
		[]core.Literal{core.Const("x", "B", "2")})
	f2 := core.MustNew("f2", q7(), []core.Literal{core.Const("x", "C", "3")},
		[]core.Literal{core.Const("x", "D", "4")})
	red := Reduce(core.MustNewSet(f1, f2))
	if red.Len() != 2 {
		t.Errorf("independent rules must survive, got %d", red.Len())
	}
}

func TestReduceMutualDuplicatesKeepOne(t *testing.T) {
	// Two identical rules (different names): exactly one survives.
	mk := func(name string) *core.GFD {
		return core.MustNew(name, q7(),
			[]core.Literal{core.Const("x", "A", "1")},
			[]core.Literal{core.Const("x", "B", "2")})
	}
	red := Reduce(core.MustNewSet(mk("a"), mk("b")))
	if red.Len() != 1 {
		t.Errorf("duplicates must reduce to one, got %d", red.Len())
	}
}

func TestImpliedBy(t *testing.T) {
	dup1 := core.MustNew("dup1", q7(),
		[]core.Literal{core.Const("x", "A", "1")},
		[]core.Literal{core.Const("x", "B", "2")})
	dup2 := core.MustNew("dup2", q7(),
		[]core.Literal{core.Const("x", "A", "1")},
		[]core.Literal{core.Const("x", "B", "2")})
	solo := core.MustNew("solo", q7(),
		[]core.Literal{core.Const("x", "C", "1")},
		[]core.Literal{core.Const("x", "D", "2")})
	flags := ImpliedBy(core.MustNewSet(dup1, dup2, solo))
	if !flags[0] || !flags[1] {
		t.Error("mutual duplicates are each implied by the rest")
	}
	if flags[2] {
		t.Error("solo is not implied")
	}
}
