package reason

import (
	"gfd/internal/core"
	"gfd/internal/pattern"
)

// litKind mirrors core.LiteralKind for host-rewritten literals.
type litKind uint8

const (
	litConst litKind = iota
	litVar
)

// hostLiteral is a literal rewritten onto host pattern node indices via an
// embedding f: variables become the host nodes f maps them to.
type hostLiteral struct {
	xNode int
	a     string
	kind  litKind
	c     string
	yNode int
	b     string
}

// embeddedGFD is an embedded GFD of some ϕ ∈ Σ in a host pattern Q
// (Section 4.1): the dependency f(X) → f(Y) enforced on every match of Q.
type embeddedGFD struct {
	src  *core.GFD // provenance, for diagnostics
	x, y []hostLiteral
}

// embedAll derives the set Σ_Q of GFDs embedded in host from every rule of
// rules, taking all isomorphic embeddings. Exact embeddings only: a
// concrete sub label never maps onto a wildcard host node (callers handle
// wildcard refinement by refining the host pattern first).
func embedAll(rules []*core.GFD, host *pattern.Pattern) []embeddedGFD {
	var out []embeddedGFD
	for _, f := range rules {
		for _, emb := range pattern.Embeddings(f.Q, host) {
			out = append(out, rewrite(f, emb.Map))
		}
	}
	return out
}

// rewrite maps ϕ's literals through an embedding (sub node -> host node).
func rewrite(f *core.GFD, m []int) embeddedGFD {
	conv := func(ls []core.Literal) []hostLiteral {
		out := make([]hostLiteral, 0, len(ls))
		for _, l := range ls {
			xi, _ := f.Q.VarIndex(l.X)
			hl := hostLiteral{xNode: m[xi], a: l.A}
			if l.Kind == core.Constant {
				hl.kind = litConst
				hl.c = l.C
			} else {
				yi, _ := f.Q.VarIndex(l.Y)
				hl.kind = litVar
				hl.yNode = m[yi]
				hl.b = l.B
			}
			out = append(out, hl)
		}
		return out
	}
	return embeddedGFD{src: f, x: conv(f.X), y: conv(f.Y)}
}

// chase runs the inductive closure of Section 4: starting from rel (empty
// for enforced(Σ_Q), seeded with X for closure(Σ_Q, X)), repeatedly applies
// every embedded GFD whose antecedent literals are all derivable, merging
// its consequent into the closure, until fixpoint. The closure computation
// is PTIME, mirroring relational FD closures.
func chase(rel *eqRel, emb []embeddedGFD) {
	changed := true
	for changed && !rel.conflict {
		changed = false
		for _, e := range emb {
			if !allHold(rel, e.x) {
				continue
			}
			for _, l := range e.y {
				if rel.apply(l) {
					changed = true
				}
				if rel.conflict {
					return
				}
			}
		}
	}
}

func allHold(rel *eqRel, ls []hostLiteral) bool {
	for _, l := range ls {
		if !rel.holds(l) {
			return false
		}
	}
	return true
}
