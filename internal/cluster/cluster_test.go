package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllWorkers(t *testing.T) {
	c := New(8, DefaultCostModel())
	var hits int64
	seen := make([]bool, 8)
	c.Run(func(w int) {
		atomic.AddInt64(&hits, 1)
		seen[w] = true
	})
	if hits != 8 {
		t.Fatalf("ran %d workers", hits)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("worker %d never ran", i)
		}
	}
}

func TestShipAccounting(t *testing.T) {
	c := New(4, DefaultCostModel())
	c.Ship(0, 1, 1000)
	c.Ship(2, 1, 500)
	c.Ship(3, Coordinator, 100)
	st := c.Stats()
	if st.TotalBytes != 1600 || st.TotalMsgs != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.PerWorker[1] != 1500 {
		t.Errorf("worker 1 received %d", st.PerWorker[1])
	}
	if st.Coordinator != 100 {
		t.Errorf("coordinator received %d", st.Coordinator)
	}
}

func TestShipLocalIsFree(t *testing.T) {
	c := New(2, DefaultCostModel())
	c.Ship(1, 1, 1<<20)
	if c.Stats().TotalBytes != 0 {
		t.Error("local access must not be charged")
	}
}

func TestCommTimeModel(t *testing.T) {
	model := CostModel{LatencyPerRound: time.Millisecond, BytesPerSecond: 1000}
	c := New(2, model)
	c.Ship(0, 1, 500) // 500ms occupancy
	c.EndRound()      // + 1ms round latency
	got := c.CommTime()
	want := time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
	// Parallel receivers within a round: the max, not the sum.
	c.Ship(1, 0, 500)
	if c.CommTime() != want {
		t.Errorf("parallel shipments must overlap: %v", c.CommTime())
	}
	// More data into the same receiver accumulates occupancy.
	c.Ship(0, 1, 500)
	if c.CommTime() <= want {
		t.Error("same receiver must accumulate")
	}
	// Another round adds one latency.
	before := c.CommTime()
	c.EndRound()
	if c.CommTime() != before+time.Millisecond {
		t.Error("each round costs one latency")
	}
}

func TestReset(t *testing.T) {
	c := New(2, DefaultCostModel())
	c.Ship(0, 1, 42)
	c.Reset()
	if c.Stats().TotalBytes != 0 || c.CommTime() != 0 {
		t.Error("Reset must clear accounting")
	}
}

func TestConcurrentShip(t *testing.T) {
	c := New(4, DefaultCostModel())
	c.Run(func(w int) {
		for i := 0; i < 1000; i++ {
			c.Ship(w, (w+1)%4, 1)
		}
	})
	if c.Stats().TotalBytes != 4000 {
		t.Errorf("concurrent accounting lost bytes: %d", c.Stats().TotalBytes)
	}
}

func TestNClamped(t *testing.T) {
	if New(0, DefaultCostModel()).N() != 1 {
		t.Error("n must clamp to 1")
	}
}

func TestStringer(t *testing.T) {
	c := New(2, DefaultCostModel())
	c.Ship(0, 1, 7)
	if s := c.String(); s == "" {
		t.Error("String must describe the cluster")
	}
}
