// Package cluster is the distributed-runtime substrate for the parallel
// validation algorithms of Section 6. The paper evaluated on 20 Amazon EC2
// instances; this package substitutes an in-process simulated cluster
// (see DESIGN.md §4): a coordinator plus n workers running as goroutines,
// with every cross-worker data movement routed through a byte-counting
// message layer and charged against a configurable network cost model.
//
// Computation parallelism is real (goroutines across cores); communication
// *cost* is modeled exactly as the paper's CC(w) = c_s·|M|, so the
// communication-time figures (Fig. 5(j–l)) are regenerated from bytes
// shipped rather than wall-clock socket time.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gfd/internal/fault"
)

// CostModel prices simulated communication in BSP style: each
// communication round (superstep barrier) costs one latency, and each
// receiver's occupancy is its received bytes over the link bandwidth.
// Messages within a round overlap — they are not serialized at the
// receiver — which is how the paper's algorithms batch their exchanges.
type CostModel struct {
	LatencyPerRound time.Duration // barrier/propagation cost per communication round
	BytesPerSecond  int64         // link bandwidth per worker
}

// DefaultCostModel is a 1 Gbit/s network with 0.5 ms per round, the
// gigabit-datacenter setting of the paper's EC2 cluster.
func DefaultCostModel() CostModel {
	return CostModel{LatencyPerRound: 500 * time.Microsecond, BytesPerSecond: 125_000_000}
}

// Cluster is a coordinator with n workers. The zero value is unusable; use
// New.
type Cluster struct {
	n     int
	model CostModel
	inj   *fault.Injector // armed fault plan; nil in production (no-op crossings)

	mu         sync.Mutex
	recvBytes  []int64 // bytes received per worker (coordinator = index n)
	recvMsgs   []int64
	totalBytes int64
	totalMsgs  int64
	rounds     int64 // communication rounds (BSP supersteps with exchange)
}

// WorkerError is the typed failure a recovered worker panic converts to:
// the worker that died, the work unit it was executing (-1 when the panic
// was not unit-scoped — e.g. during estimation), the panic value, and the
// goroutine stack at recovery. One process-tearing panic becomes one
// inspectable error; the coordinator decides what to retry.
type WorkerError struct {
	Worker int
	Unit   int
	Panic  any
	Stack  []byte
}

// Error summarizes the death without the stack; use Stack when debugging.
func (e *WorkerError) Error() string {
	if e.Unit >= 0 {
		return fmt.Sprintf("cluster: worker %d died on unit %d: %v", e.Worker, e.Unit, e.Panic)
	}
	return fmt.Sprintf("cluster: worker %d died: %v", e.Worker, e.Panic)
}

// Recovered converts a recovered panic value into a WorkerError carrying
// the current stack. Call it from a deferred recover with r != nil.
func Recovered(worker, unit int, r any) *WorkerError {
	return &WorkerError{Worker: worker, Unit: unit, Panic: r, Stack: debug.Stack()}
}

// Arm threads an armed fault injector through the cluster: Ship crossings
// consult it. A nil injector (the production state) keeps every crossing a
// nil check.
func (c *Cluster) Arm(inj *fault.Injector) { c.inj = inj }

// Coordinator is the pseudo-worker index used for shipments to/from the
// coordinator S_c.
const Coordinator = -1

// New creates a cluster of n workers with the given cost model.
func New(n int, model CostModel) *Cluster {
	if n < 1 {
		n = 1
	}
	return &Cluster{
		n:         n,
		model:     model,
		recvBytes: make([]int64, n+1),
		recvMsgs:  make([]int64, n+1),
	}
}

// N returns the number of workers.
func (c *Cluster) N() int { return c.n }

func (c *Cluster) slot(worker int) int {
	if worker == Coordinator {
		return c.n
	}
	return worker
}

// Ship records a data shipment of the given size from one worker (or the
// coordinator) to another. It is safe for concurrent use.
func (c *Cluster) Ship(from, to int, bytes int64) {
	if from == to {
		return // local access is free
	}
	c.inj.Cross(fault.Ship, to, -1)
	c.mu.Lock()
	c.recvBytes[c.slot(to)] += bytes
	c.recvMsgs[c.slot(to)]++
	c.totalBytes += bytes
	c.totalMsgs++
	c.mu.Unlock()
}

// Run executes task(workerID) on n goroutines and waits for all of them —
// one BSP superstep. A panicking task no longer tears down the process:
// each worker recovers independently into a *WorkerError (unit -1), the
// surviving workers drain, and the joined errors are returned.
func (c *Cluster) Run(task func(worker int)) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	wg.Add(c.n)
	for w := 0; w < c.n; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = Recovered(w, -1, r)
				}
			}()
			task(w)
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunMeasured executes one BSP superstep of n *logical* workers and
// returns each worker's busy time. OS-level concurrency is capped at the
// physical core count so busy times measure actual compute rather than
// scheduler contention; the caller derives the modeled parallel span as
// the maximum busy time. This is what lets the simulation report faithful
// n-worker scaling on a host with fewer cores than n (see DESIGN.md §4).
//
// Panic isolation matches Run: a dying worker is recovered into a
// *WorkerError while the others drain, and the joined errors are returned
// alongside the busy times (a dead worker's busy time covers up to its
// death). Callers that recover inside task (the detection scheduler does,
// to keep unit context) will never see an error here — this is the safety
// net for the fan-outs that do not.
func (c *Cluster) RunMeasured(task func(worker int)) ([]time.Duration, error) {
	limit := runtime.NumCPU()
	if limit > c.n {
		limit = c.n
	}
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	busy := make([]time.Duration, c.n)
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	wg.Add(c.n)
	for w := 0; w < c.n; w++ {
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			defer func() {
				busy[w] = time.Since(start)
				if r := recover(); r != nil {
					errs[w] = Recovered(w, -1, r)
				}
			}()
			task(w)
		}(w)
	}
	wg.Wait()
	return busy, errors.Join(errs...)
}

// MaxSpan returns the largest busy time — the modeled parallel duration of
// a superstep.
func MaxSpan(busy []time.Duration) time.Duration {
	var max time.Duration
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// Stats is a snapshot of the communication accounting.
type Stats struct {
	Workers     int
	TotalBytes  int64
	TotalMsgs   int64
	PerWorker   []int64 // bytes received per worker
	Coordinator int64   // bytes received by the coordinator
}

// Stats returns the current communication totals.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := append([]int64(nil), c.recvBytes[:c.n]...)
	return Stats{
		Workers:     c.n,
		TotalBytes:  c.totalBytes,
		TotalMsgs:   c.totalMsgs,
		PerWorker:   per,
		Coordinator: c.recvBytes[c.n],
	}
}

// EndRound marks the end of one communication round (a BSP exchange
// barrier); each round costs one LatencyPerRound in the modeled time.
func (c *Cluster) EndRound() {
	c.mu.Lock()
	c.rounds++
	c.mu.Unlock()
}

// CommTime returns the modeled parallel communication time: shipments to
// different workers overlap, so occupancy is the maximum per-receiver
// bytes over the bandwidth, plus one latency per communication round.
// This is the quantity plotted in Fig. 5(j–l).
func (c *Cluster) CommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var worstBytes int64
	for i := 0; i <= c.n; i++ {
		if c.recvBytes[i] > worstBytes {
			worstBytes = c.recvBytes[i]
		}
	}
	t := time.Duration(c.rounds) * c.model.LatencyPerRound
	if c.model.BytesPerSecond > 0 {
		t += time.Duration(float64(worstBytes) / float64(c.model.BytesPerSecond) * float64(time.Second))
	}
	return t
}

// Reset clears the communication accounting (between experiment runs).
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.recvBytes {
		c.recvBytes[i] = 0
		c.recvMsgs[i] = 0
	}
	c.totalBytes, c.totalMsgs, c.rounds = 0, 0, 0
}

func (c *Cluster) String() string {
	s := c.Stats()
	return fmt.Sprintf("cluster(n=%d, shipped=%dB in %d msgs)", s.Workers, s.TotalBytes, s.TotalMsgs)
}
