package repair

import (
	"strings"
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

func constantRule() *core.Set {
	q := pattern.New()
	q.AddNode("x", "R")
	return core.MustNewSet(core.MustNew("uk_city", q,
		[]core.Literal{core.Const("x", "area_code", "131")},
		[]core.Literal{core.Const("x", "city", "Edi")}))
}

func TestSuggestConstantLiteral(t *testing.T) {
	g := graph.New(0, 0)
	bad := g.AddNode("R", graph.Attrs{"area_code": "131", "city": "Gla"})
	g.AddNode("R", graph.Attrs{"area_code": "131", "city": "Edi"})
	set := constantRule()
	vio := validate.DetVio(g, set)
	if len(vio) != 1 {
		t.Fatalf("violations = %d", len(vio))
	}
	sugg := Suggest(g, set, vio)
	if len(sugg) != 1 {
		t.Fatalf("suggestions = %d", len(sugg))
	}
	s := sugg[0]
	if s.Node != bad || s.Attr != "city" || s.Proposed != "Edi" || s.Current != "Gla" {
		t.Errorf("suggestion = %+v", s)
	}
	if s.Confidence != 1.0 {
		t.Errorf("constant repairs have full confidence, got %v", s.Confidence)
	}
	if len(s.Rules) != 1 || s.Rules[0] != "uk_city" {
		t.Errorf("evidence = %v", s.Rules)
	}
	if !strings.Contains(s.String(), "Edi") {
		t.Error("String must describe the proposal")
	}
}

func TestSuggestVariableLiteralMajority(t *testing.T) {
	// A hub city whose three residents' country attribute must match the
	// city's: one corrupted hub value disagrees with three partners, so
	// the hub is blamed with their (unanimous) value proposed.
	q := pattern.New()
	p := q.AddNode("p", "person")
	c := q.AddNode("c", "city")
	q.AddEdge(p, c, "born_in")
	set := core.MustNewSet(core.MustNew("cc", q, nil,
		[]core.Literal{core.VarEq("p", "country", "c", "country")}))

	g := graph.New(0, 0)
	hub := g.AddNode("city", graph.Attrs{"country": "WRONG"})
	for i := 0; i < 3; i++ {
		pn := g.AddNode("person", graph.Attrs{"country": "FR"})
		g.MustAddEdge(pn, hub, "born_in")
	}
	vio := validate.DetVio(g, set)
	if len(vio) != 3 {
		t.Fatalf("violations = %d", len(vio))
	}
	sugg := Suggest(g, set, vio)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	top := sugg[0]
	if top.Node != hub || top.Proposed != "FR" {
		t.Errorf("top suggestion = %+v, want hub -> FR", top)
	}
	// The hub (3 partners) must outrank any single person (1 partner).
	for _, s := range sugg[1:] {
		if s.Confidence > top.Confidence {
			t.Errorf("suggestion %+v outranks the hub", s)
		}
	}
}

func TestSuggestTieLowConfidence(t *testing.T) {
	// A 1-vs-1 disagreement is symmetric: both sides get suggestions at
	// reduced confidence.
	q := pattern.New()
	a := q.AddNode("a", "n")
	b := q.AddNode("b", "n")
	q.AddEdge(a, b, "e")
	set := core.MustNewSet(core.MustNew("eq", q, nil,
		[]core.Literal{core.VarEq("a", "v", "b", "v")}))

	g := graph.New(0, 0)
	x := g.AddNode("n", graph.Attrs{"v": "1"})
	y := g.AddNode("n", graph.Attrs{"v": "2"})
	g.MustAddEdge(x, y, "e")

	sugg := Suggest(g, set, validate.DetVio(g, set))
	if len(sugg) != 2 {
		t.Fatalf("want both sides suggested, got %d", len(sugg))
	}
	for _, s := range sugg {
		if s.Confidence > 0.5 {
			t.Errorf("tie suggestion too confident: %+v", s)
		}
	}
}

func TestApplyRepairsGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.AddNode("R", graph.Attrs{"area_code": "131", "city": "Gla"})
	set := constantRule()
	vio := validate.DetVio(g, set)
	sugg := Suggest(g, set, vio)
	if n := Apply(g, sugg, 0.9); n != 1 {
		t.Fatalf("applied %d repairs, want 1", n)
	}
	// After repair the graph satisfies Σ.
	if !validate.Satisfies(g, set) {
		t.Error("applied repair did not clear the violation")
	}
	// Re-applying changes nothing.
	if n := Apply(g, Suggest(g, set, validate.DetVio(g, set)), 0.9); n != 0 {
		t.Errorf("idempotent re-apply changed %d cells", n)
	}
}

func TestApplyThresholdFilters(t *testing.T) {
	g := graph.New(0, 0)
	x := g.AddNode("n", graph.Attrs{"v": "1"})
	y := g.AddNode("n", graph.Attrs{"v": "2"})
	g.MustAddEdge(x, y, "e")
	q := pattern.New()
	a := q.AddNode("a", "n")
	b := q.AddNode("b", "n")
	q.AddEdge(a, b, "e")
	set := core.MustNewSet(core.MustNew("eq", q, nil,
		[]core.Literal{core.VarEq("a", "v", "b", "v")}))
	sugg := Suggest(g, set, validate.DetVio(g, set))
	if n := Apply(g, sugg, 0.9); n != 0 {
		t.Errorf("low-confidence ties must not auto-apply, applied %d", n)
	}
}

func TestSuggestMissingAttribute(t *testing.T) {
	// Missing Y-attribute: the constant rule proposes creating it.
	g := graph.New(0, 0)
	bad := g.AddNode("R", graph.Attrs{"area_code": "131"})
	set := constantRule()
	sugg := Suggest(g, set, validate.DetVio(g, set))
	if len(sugg) != 1 || sugg[0].Node != bad || sugg[0].Current != "" || sugg[0].Proposed != "Edi" {
		t.Errorf("suggestions = %+v", sugg)
	}
}
