// Package repair turns violation reports into repair suggestions — the
// downstream use the paper positions GFDs for ("dependencies ... have
// proven effective in capturing semantic inconsistencies", Section 1; the
// repair step itself is delegated to data-quality tooling such as
// BigDansing, which consumes exactly this kind of evidence).
//
// The suggester works per failed consequent literal:
//
//   - a failed constant literal x.A = c proposes setting h(x).A to c (the
//     rule states the required value outright);
//   - a failed variable literal x.A = y.B is resolved by *blame voting*
//     across all failures of that literal: the endpoint disagreeing with
//     more distinct partners is blamed, and the proposed value is the
//     majority value among its partners. Ties produce a suggestion with
//     both candidate values and lower confidence.
//
// Suggestions are evidence, not automatic fixes: Apply exists for
// experimentation and replays suggestions above a confidence threshold.
package repair

import (
	"fmt"
	"sort"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/validate"
)

// Suggestion is one proposed attribute repair.
type Suggestion struct {
	Node       graph.NodeID
	Attr       string
	Current    string  // present value ("" when the attribute is missing)
	Proposed   string  // value that would satisfy the failed literals
	Confidence float64 // ∈ (0, 1]: agreement mass behind the proposal
	Rules      []string
}

func (s Suggestion) String() string {
	return fmt.Sprintf("set node %d .%s = %q (was %q, confidence %.2f, rules %v)",
		s.Node, s.Attr, s.Proposed, s.Current, s.Confidence, s.Rules)
}

// cell identifies one attribute occurrence (node, attribute).
type cell struct {
	node graph.NodeID
	attr string
}

// Suggest analyzes a violation report and returns repair suggestions,
// ordered by descending confidence and then by node.
func Suggest(g *graph.Graph, set *core.Set, vio validate.Report) []Suggestion {
	// For constant literals: required value per cell, with rule evidence.
	constWant := make(map[cell]map[string][]string) // cell -> value -> rules
	// For variable literals: observed partner values per cell.
	varSeen := make(map[cell]map[string][]string)
	disagree := make(map[cell]map[graph.NodeID]struct{})

	record := func(m map[cell]map[string][]string, c cell, val, rule string) {
		if m[c] == nil {
			m[c] = make(map[string][]string)
		}
		m[c][val] = append(m[c][val], rule)
	}

	for _, v := range vio {
		f := set.Get(v.Rule)
		if f == nil {
			continue
		}
		for _, l := range f.Y {
			xi, _ := f.Q.VarIndex(l.X)
			xNode := v.Match[xi]
			xVal, xOK := g.Attr(xNode, l.A)
			if l.Kind == core.Constant {
				if !xOK || xVal != l.C {
					record(constWant, cell{xNode, l.A}, l.C, v.Rule)
				}
				continue
			}
			yi, _ := f.Q.VarIndex(l.Y)
			yNode := v.Match[yi]
			yVal, yOK := g.Attr(yNode, l.B)
			if xOK && yOK && xVal == yVal {
				continue // this literal holds; another one failed
			}
			cx, cy := cell{xNode, l.A}, cell{yNode, l.B}
			if yOK {
				record(varSeen, cx, yVal, v.Rule)
			}
			if xOK {
				record(varSeen, cy, xVal, v.Rule)
			}
			markDisagree(disagree, cx, yNode)
			markDisagree(disagree, cy, xNode)
		}
	}

	var out []Suggestion
	for c, want := range constWant {
		val, rules := majority(want)
		cur, _ := g.Attr(c.node, c.attr)
		out = append(out, Suggestion{
			Node: c.node, Attr: c.attr, Current: cur, Proposed: val,
			Confidence: 1.0, Rules: dedupe(rules),
		})
	}
	for c, seen := range varSeen {
		// Blame voting: suggest a repair for this cell only if it
		// disagrees with at least as many distinct partners as any single
		// partner value's owner would — approximated by requiring ≥ 2
		// distinct partners, or exactly one with a deterministic
		// tie-break on node order.
		partners := len(disagree[c])
		val, rules := majority(seen)
		cur, _ := g.Attr(c.node, c.attr)
		conf := float64(len(seen[val])) / float64(total(seen))
		if partners < 2 {
			conf /= 2 // symmetric 1-vs-1 disagreement: either side may be wrong
		}
		out = append(out, Suggestion{
			Node: c.node, Attr: c.attr, Current: cur, Proposed: val,
			Confidence: conf, Rules: dedupe(rules),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// Apply replays every suggestion with confidence ≥ threshold onto the
// graph and returns how many were applied. Suggestions proposing the
// current value are skipped.
func Apply(g *graph.Graph, suggestions []Suggestion, threshold float64) int {
	applied := 0
	for _, s := range suggestions {
		if s.Confidence < threshold {
			continue
		}
		if cur, ok := g.Attr(s.Node, s.Attr); ok && cur == s.Proposed {
			continue
		}
		g.SetAttr(s.Node, s.Attr, s.Proposed)
		applied++
	}
	return applied
}

func markDisagree(m map[cell]map[graph.NodeID]struct{}, c cell, other graph.NodeID) {
	if m[c] == nil {
		m[c] = make(map[graph.NodeID]struct{})
	}
	m[c][other] = struct{}{}
}

// majority returns the value with the most supporting rules (ties broken
// lexicographically for determinism) plus its evidence.
func majority(m map[string][]string) (string, []string) {
	best, bestN := "", -1
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if n := len(m[k]); n > bestN {
			best, bestN = k, n
		}
	}
	return best, m[best]
}

func total(m map[string][]string) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

func dedupe(xs []string) []string {
	seen := make(map[string]struct{}, len(xs))
	var out []string
	for _, x := range xs {
		if _, dup := seen[x]; !dup {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
