package pattern

import "gfd/internal/graph"

// CompiledEdge is a pattern edge with its label resolved to a symbol code
// of a Snapshot's table.
type CompiledEdge struct {
	From, To int32
	Label    graph.Sym
}

// Compiled is a pattern lowered onto a frozen graph's symbol table: node
// and edge labels become dense graph.Sym codes, so the matcher's inner
// loop compares integers — including the wildcard check (WildcardSym) —
// instead of strings. Labels the snapshot never mentions compile to NoSym,
// which matches nothing (the pattern then has no matches, exactly as with
// string comparison).
//
// A Compiled is tied to the Symbols table it was compiled against; after
// re-freezing a mutated graph, recompile (match.Matcher handles this by
// caching per snapshot).
type Compiled struct {
	Q        *Pattern
	NodeSyms []graph.Sym
	Edges    []CompiledEdge
}

// compiledEntry pins a Compiled to the symbol table it was lowered on.
type compiledEntry struct {
	syms *graph.Symbols
	c    *Compiled
}

// CompileFor is Compile memoized on the pattern per symbol table: engines
// share one snapshot per run, so the steady state is an atomic load and a
// pointer compare — repeated matcher construction (one per worker, one per
// DetVio call) stops re-lowering every rule pattern.
func CompileFor(q *Pattern, syms *graph.Symbols) *Compiled {
	if e := q.compiled.Load(); e != nil && e.syms == syms {
		return e.c
	}
	e := &compiledEntry{syms: syms, c: Compile(q, syms)}
	q.compiled.Store(e)
	return e.c
}

// Compile lowers q onto syms. It only reads the table (Lookup, never
// Intern), so compiling against a shared snapshot is safe from concurrent
// workers.
func Compile(q *Pattern, syms *graph.Symbols) *Compiled {
	c := &Compiled{
		Q:        q,
		NodeSyms: make([]graph.Sym, len(q.Nodes)),
		Edges:    make([]CompiledEdge, len(q.Edges)),
	}
	lower := func(label string) graph.Sym {
		if label == Wildcard {
			return graph.WildcardSym
		}
		return syms.Lookup(label)
	}
	for i, n := range q.Nodes {
		c.NodeSyms[i] = lower(n.Label)
	}
	for i, e := range q.Edges {
		c.Edges[i] = CompiledEdge{From: int32(e.From), To: int32(e.To), Label: lower(e.Label)}
	}
	return c
}

// LabelMatchesSym is LabelMatches over interned codes: WildcardSym matches
// anything, otherwise code equality. NoSym pattern labels match nothing.
func LabelMatchesSym(patternSym, concrete graph.Sym) bool {
	return patternSym == graph.WildcardSym || patternSym == concrete
}
