package pattern

import "gfd/internal/graph"

// CompiledEdge is a pattern edge with its label resolved to a symbol code
// of a Snapshot's table.
type CompiledEdge struct {
	From, To int32
	Label    graph.Sym
}

// Compiled is a pattern lowered onto a frozen graph's symbol table: node
// and edge labels become dense graph.Sym codes, so the matcher's inner
// loop compares integers — including the wildcard check (WildcardSym) —
// instead of strings. Labels the snapshot never mentions compile to NoSym,
// which matches nothing (the pattern then has no matches, exactly as with
// string comparison).
//
// A Compiled is tied to the Symbols table it was compiled against; after
// re-freezing a mutated graph, recompile (match.Matcher handles this by
// caching per snapshot).
type Compiled struct {
	Q        *Pattern
	NodeSyms []graph.Sym
	Edges    []CompiledEdge
}

// compiledEntry pins a Compiled to the symbol table it was lowered on.
// symsLen and noSym handle growing tables (graph.Overlay interns new
// names into its base snapshot's table): an entry that lowered some label
// to NoSym is only trusted while the table has not grown, because the
// missing label may have been interned since; an entry with every label
// resolved can never go stale (codes are append-only).
type compiledEntry struct {
	syms    *graph.Symbols
	symsLen int
	noSym   bool
	c       *Compiled
}

// current reports whether the entry is still valid for its table.
func (e *compiledEntry) current(syms *graph.Symbols) bool {
	return e.syms == syms && (!e.noSym || e.symsLen == syms.Len())
}

// CompileFor is Compile memoized on the pattern per symbol table: engines
// share one snapshot per run, so the steady state is an atomic load and a
// few pointer compares — repeated matcher construction (one per worker,
// one per DetVio call) stops re-lowering every rule pattern.
//
// The memo holds one entry per live symbol table (copy-on-write list), so
// two prepared sessions over different graphs sharing one rule set do not
// evict each other — each keeps its "lowered once per (graph version,
// rule set)" guarantee. Dead tables' entries are dropped once the list
// outgrows a small bound, keeping the memo from pinning old snapshots of
// a long-lived mutating graph. Stale entries over a table that has grown
// past an unresolved label (see compiledEntry) are recompiled and
// replaced in place.
func CompileFor(q *Pattern, syms *graph.Symbols) *Compiled {
	entries := q.compiled.Load()
	if entries != nil {
		for i := range *entries {
			if (*entries)[i].current(syms) {
				return (*entries)[i].c
			}
		}
	}
	// The table length is captured BEFORE compiling: a concurrent Intern
	// between Compile's lookups and the length read would otherwise stamp
	// a NoSym lowering with the post-intern length, making the stale entry
	// look current forever (the pattern would silently match nothing).
	// Captured-early, such an interleaving only makes the entry look stale
	// and recompile once — the safe direction.
	lenBefore := syms.Len()
	c := Compile(q, syms)
	fresh := compiledEntry{syms: syms, symsLen: lenBefore, noSym: hasNoSym(c), c: c}
	for {
		old := q.compiled.Load()
		var next []compiledEntry
		if old != nil {
			// Re-check under the CAS loop (a racing compile may have won),
			// dropping any stale entry for this table along the way.
			for i := range *old {
				if (*old)[i].current(syms) {
					return (*old)[i].c
				}
				if (*old)[i].syms != syms {
					next = append(next, (*old)[i])
				}
			}
			if len(next) >= maxCompiledEntries {
				// Keep the newest entries; the evicted tables recompile on
				// their next use (correctness is unaffected).
				next = next[len(next)-maxCompiledEntries+1:]
			}
		}
		next = append(next, fresh)
		if q.compiled.CompareAndSwap(old, &next) {
			return c
		}
	}
}

// hasNoSym reports whether any node or edge label lowered to NoSym.
func hasNoSym(c *Compiled) bool {
	for _, s := range c.NodeSyms {
		if s == graph.NoSym {
			return true
		}
	}
	for _, e := range c.Edges {
		if e.Label == graph.NoSym {
			return true
		}
	}
	return false
}

// InternInto interns every non-wildcard node and edge label of q into
// syms — the pattern analogue of GFD.InternLiterals, required before
// compiling against a growing table (graph.Overlay): a label lowered to
// NoSym must mean "matches nothing", which only holds when the table is
// the sole authority on the label universe.
func InternInto(q *Pattern, syms *graph.Symbols) {
	for _, n := range q.Nodes {
		if n.Label != Wildcard {
			syms.Intern(n.Label)
		}
	}
	for _, e := range q.Edges {
		if e.Label != Wildcard {
			syms.Intern(e.Label)
		}
	}
}

// maxCompiledEntries bounds the per-pattern memo: enough for several
// concurrent sessions, small enough that a mutating graph's discarded
// symbol tables don't accumulate.
const maxCompiledEntries = 8

// Compile lowers q onto syms. It only reads the table (Lookup, never
// Intern), so compiling against a shared snapshot is safe from concurrent
// workers.
func Compile(q *Pattern, syms *graph.Symbols) *Compiled {
	c := &Compiled{
		Q:        q,
		NodeSyms: make([]graph.Sym, len(q.Nodes)),
		Edges:    make([]CompiledEdge, len(q.Edges)),
	}
	lower := func(label string) graph.Sym {
		if label == Wildcard {
			return graph.WildcardSym
		}
		return syms.Lookup(label)
	}
	for i, n := range q.Nodes {
		c.NodeSyms[i] = lower(n.Label)
	}
	for i, e := range q.Edges {
		c.Edges[i] = CompiledEdge{From: int32(e.From), To: int32(e.To), Label: lower(e.Label)}
	}
	return c
}

// LabelMatchesSym is LabelMatches over interned codes: WildcardSym matches
// anything, otherwise code equality. NoSym pattern labels match nothing.
func LabelMatchesSym(patternSym, concrete graph.Sym) bool {
	return patternSym == graph.WildcardSym || patternSym == concrete
}
