package pattern

import "gfd/internal/graph"

// CompiledEdge is a pattern edge with its label resolved to a symbol code
// of a Snapshot's table.
type CompiledEdge struct {
	From, To int32
	Label    graph.Sym
}

// Compiled is a pattern lowered onto a frozen graph's symbol table: node
// and edge labels become dense graph.Sym codes, so the matcher's inner
// loop compares integers — including the wildcard check (WildcardSym) —
// instead of strings. Labels the snapshot never mentions compile to NoSym,
// which matches nothing (the pattern then has no matches, exactly as with
// string comparison).
//
// A Compiled is tied to the Symbols table it was compiled against; after
// re-freezing a mutated graph, recompile (match.Matcher handles this by
// caching per snapshot).
type Compiled struct {
	Q        *Pattern
	NodeSyms []graph.Sym
	Edges    []CompiledEdge
}

// compiledEntry pins a Compiled to the symbol table it was lowered on.
type compiledEntry struct {
	syms *graph.Symbols
	c    *Compiled
}

// CompileFor is Compile memoized on the pattern per symbol table: engines
// share one snapshot per run, so the steady state is an atomic load and a
// few pointer compares — repeated matcher construction (one per worker,
// one per DetVio call) stops re-lowering every rule pattern.
//
// The memo holds one entry per live symbol table (copy-on-write list), so
// two prepared sessions over different graphs sharing one rule set do not
// evict each other — each keeps its "lowered once per (graph version,
// rule set)" guarantee. Dead tables' entries are dropped once the list
// outgrows a small bound, keeping the memo from pinning old snapshots of
// a long-lived mutating graph.
func CompileFor(q *Pattern, syms *graph.Symbols) *Compiled {
	entries := q.compiled.Load()
	if entries != nil {
		for _, e := range *entries {
			if e.syms == syms {
				return e.c
			}
		}
	}
	c := Compile(q, syms)
	for {
		old := q.compiled.Load()
		var next []compiledEntry
		if old != nil {
			// Re-check under the CAS loop (a racing compile may have won).
			for _, e := range *old {
				if e.syms == syms {
					return e.c
				}
			}
			if len(*old) >= maxCompiledEntries {
				// Keep the newest entries; the evicted tables recompile on
				// their next use (correctness is unaffected).
				next = append(next, (*old)[len(*old)-maxCompiledEntries+1:]...)
			} else {
				next = append(next, *old...)
			}
		}
		next = append(next, compiledEntry{syms: syms, c: c})
		if q.compiled.CompareAndSwap(old, &next) {
			return c
		}
	}
}

// maxCompiledEntries bounds the per-pattern memo: enough for several
// concurrent sessions, small enough that a mutating graph's discarded
// symbol tables don't accumulate.
const maxCompiledEntries = 8

// Compile lowers q onto syms. It only reads the table (Lookup, never
// Intern), so compiling against a shared snapshot is safe from concurrent
// workers.
func Compile(q *Pattern, syms *graph.Symbols) *Compiled {
	c := &Compiled{
		Q:        q,
		NodeSyms: make([]graph.Sym, len(q.Nodes)),
		Edges:    make([]CompiledEdge, len(q.Edges)),
	}
	lower := func(label string) graph.Sym {
		if label == Wildcard {
			return graph.WildcardSym
		}
		return syms.Lookup(label)
	}
	for i, n := range q.Nodes {
		c.NodeSyms[i] = lower(n.Label)
	}
	for i, e := range q.Edges {
		c.Edges[i] = CompiledEdge{From: int32(e.From), To: int32(e.To), Label: lower(e.Label)}
	}
	return c
}

// LabelMatchesSym is LabelMatches over interned codes: WildcardSym matches
// anything, otherwise code equality. NoSym pattern labels match nothing.
func LabelMatchesSym(patternSym, concrete graph.Sym) bool {
	return patternSym == graph.WildcardSym || patternSym == concrete
}
