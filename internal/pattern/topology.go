package pattern

// Components returns the maximal connected components of p (edges treated
// as undirected), each as a sorted slice of node indices, ordered by their
// smallest member. Patterns in GFDs typically have 1 or 2 components
// (Section 5.2 of the paper).
func (p *Pattern) Components() [][]int {
	n := len(p.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(comps)
		stack := []int{start}
		comp[start] = id
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, ei := range p.out[v] {
				if w := p.Edges[ei].To; comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
			for _, ei := range p.in[v] {
				if w := p.Edges[ei].From; comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		sortInts(members)
		comps = append(comps, members)
	}
	return comps
}

// Eccentricity returns the longest undirected shortest-path distance from
// node v to any node reachable from it (its component). This is the radius
// c_Q of the component when v is its center.
func (p *Pattern) Eccentricity(v int) int {
	dist := map[int]int{v: 0}
	frontier := []int{v}
	max := 0
	for d := 1; len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			for _, ei := range p.out[u] {
				if w := p.Edges[ei].To; !contains(dist, w) {
					dist[w] = d
					next = append(next, w)
					max = d
				}
			}
			for _, ei := range p.in[u] {
				if w := p.Edges[ei].From; !contains(dist, w) {
					dist[w] = d
					next = append(next, w)
					max = d
				}
			}
		}
		frontier = next
	}
	return max
}

// Center returns, for the component whose members are given, the member with
// minimum eccentricity (ties broken by smallest index) and that minimum
// eccentricity. This is the pivot selection rule of Section 5.2.
func (p *Pattern) Center(members []int) (node, radius int) {
	node, radius = -1, int(^uint(0)>>1)
	for _, v := range members {
		if ecc := p.Eccentricity(v); ecc < radius {
			node, radius = v, ecc
		}
	}
	return node, radius
}

// IsTree reports whether every connected component of p is a tree when
// edges are treated as undirected (|E_c| = |V_c| - 1 for each component and
// no multi-edges between the same unordered node pair). Tree patterns admit
// PTIME satisfiability and implication analyses (Corollaries 4 and 8).
func (p *Pattern) IsTree() bool {
	comps := p.Components()
	edgeCount := make([]int, len(comps))
	compOf := make([]int, len(p.Nodes))
	for ci, members := range comps {
		for _, v := range members {
			compOf[v] = ci
		}
	}
	type pair struct{ a, b int }
	seen := make(map[pair]struct{}, len(p.Edges))
	for _, e := range p.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if _, dup := seen[pair{a, b}]; dup {
			return false // multi-edge or 2-cycle creates an undirected cycle
		}
		seen[pair{a, b}] = struct{}{}
		if a == b {
			return false // self-loop
		}
		edgeCount[compOf[e.From]]++
	}
	for ci, members := range comps {
		if edgeCount[ci] != len(members)-1 {
			return false
		}
	}
	return true
}

// IsDAG reports whether p has no directed cycle.
func (p *Pattern) IsDAG() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(p.Nodes))
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = gray
		for _, ei := range p.out[v] {
			w := p.Edges[ei].To
			switch color[w] {
			case gray:
				return false
			case white:
				if !visit(w) {
					return false
				}
			}
		}
		color[v] = black
		return true
	}
	for v := range p.Nodes {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

func contains(m map[int]int, k int) bool { _, ok := m[k]; return ok }

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
