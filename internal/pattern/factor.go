package pattern

import "math/bits"

// Shared-core factorization metadata (FDB-style factorized evaluation):
// a group of rule patterns that share a connected sub-pattern — the "core",
// or shared prefix — can be enumerated by matching the core once and
// branching per rule at the divergence point, with the core's image pinned.
// This file computes the cores; internal/validate drives the factorized
// enumeration.
//
// Strictness matters here, and differs from Embeddings (embed.go): an
// embedding used as a shared *enumeration* prefix must be label-strict in
// both directions — a wildcard core node may only map to a wildcard host
// node, and vice versa — so that the core's match set restricts exactly
// neither tighter nor looser than each member's. (Embeddings' wildcard-sub
// ⊆ any-host direction is sound for implication reasoning but would make a
// wildcard core scan the whole graph for members whose node is concrete.)

// maxFactorNodes bounds the subset enumeration of CommonCore. Rule
// patterns are tiny (|Q| ≤ ~8 in every workload); patterns beyond the
// bound simply decline to factorize.
const maxFactorNodes = 12

// StrictEmbedding returns a label-strict embedding of sub into host —
// map[i] is the host node sub node i maps to — or nil when none exists.
// Strict: node labels must be equal strings (Wildcard only equals
// Wildcard), and every sub edge needs a host edge between the images with
// an equal label.
func StrictEmbedding(sub, host *Pattern) []int {
	if sub.NumNodes() > host.NumNodes() || sub.NumEdges() > host.NumEdges() {
		return nil
	}
	e := &strictEmbedder{sub: sub, host: host}
	e.order = connectivityOrder(sub)
	e.assign = make([]int, sub.NumNodes())
	for i := range e.assign {
		e.assign[i] = -1
	}
	e.usedHost = make([]bool, host.NumNodes())
	if e.search(0) {
		return e.assign
	}
	return nil
}

type strictEmbedder struct {
	sub, host *Pattern
	order     []int
	assign    []int
	usedHost  []bool
}

func (e *strictEmbedder) search(depth int) bool {
	if depth == len(e.order) {
		return true
	}
	u := e.order[depth]
	for h := 0; h < e.host.NumNodes(); h++ {
		if e.usedHost[h] || e.sub.Nodes[u].Label != e.host.Nodes[h].Label {
			continue
		}
		if !e.edgesOK(u, h) {
			continue
		}
		e.assign[u] = h
		e.usedHost[h] = true
		if e.search(depth + 1) {
			return true
		}
		e.usedHost[h] = false
		e.assign[u] = -1
	}
	return false
}

func (e *strictEmbedder) edgesOK(u, h int) bool {
	for _, ei := range e.sub.OutEdges(u) {
		se := e.sub.Edges[ei]
		to := e.assign[se.To]
		if se.To == u {
			to = h // self-loop
		}
		if to >= 0 && !e.hostHasEdge(h, to, se.Label) {
			return false
		}
	}
	for _, ei := range e.sub.InEdges(u) {
		se := e.sub.Edges[ei]
		if se.From == u {
			continue // self-loop handled above
		}
		if from := e.assign[se.From]; from >= 0 && !e.hostHasEdge(from, h, se.Label) {
			return false
		}
	}
	return true
}

func (e *strictEmbedder) hostHasEdge(from, to int, label string) bool {
	for _, ei := range e.host.OutEdges(from) {
		he := e.host.Edges[ei]
		if he.To == to && he.Label == label {
			return true
		}
	}
	return false
}

// CommonCore returns a maximum connected induced sub-pattern of a that is
// label-strictly embeddable in b and has at least minNodes nodes, along
// with the node maps aMap, bMap (core node index -> a / b node index).
// Ties break deterministically (smallest node subset in ascending mask
// order). Returns ok == false when no qualifying core exists or a is too
// large to enumerate (maxFactorNodes).
//
// The core is *induced* from a: it carries every a edge between the chosen
// nodes, which maximizes the constraints the shared enumeration applies
// before branching.
func CommonCore(a, b *Pattern, minNodes int) (core *Pattern, aMap, bMap []int, ok bool) {
	n := a.NumNodes()
	if n == 0 || n > maxFactorNodes || minNodes > n {
		return nil, nil, nil, false
	}
	if minNodes < 1 {
		minNodes = 1
	}
	// Enumerate node subsets of a by descending size; the first connected
	// induced sub-pattern that strictly embeds in b is a maximum core.
	for size := n; size >= minNodes; size-- {
		for mask := 1; mask < 1<<uint(n); mask++ {
			if bits.OnesCount(uint(mask)) != size {
				continue
			}
			if !connectedSubset(a, mask) {
				continue
			}
			sub, subMap := inducedSub(a, mask)
			if bm := StrictEmbedding(sub, b); bm != nil {
				return sub, subMap, bm, true
			}
		}
	}
	return nil, nil, nil, false
}

// connectedSubset reports whether the nodes of mask induce a connected
// sub-pattern of a (edges in either direction connect).
func connectedSubset(a *Pattern, mask int) bool {
	start := bits.TrailingZeros(uint(mask))
	seen := 1 << uint(start)
	frontier := seen
	for frontier != 0 {
		next := 0
		for v := 0; v < a.NumNodes(); v++ {
			if frontier&(1<<uint(v)) == 0 {
				continue
			}
			for _, ei := range a.OutEdges(v) {
				w := a.Edges[ei].To
				if mask&(1<<uint(w)) != 0 && seen&(1<<uint(w)) == 0 {
					next |= 1 << uint(w)
				}
			}
			for _, ei := range a.InEdges(v) {
				w := a.Edges[ei].From
				if mask&(1<<uint(w)) != 0 && seen&(1<<uint(w)) == 0 {
					next |= 1 << uint(w)
				}
			}
		}
		seen |= next
		frontier = next
	}
	return seen == mask
}

// inducedSub builds the sub-pattern induced by mask's nodes, preserving
// a's variable names, plus the core -> a node map (ascending a order).
func inducedSub(a *Pattern, mask int) (*Pattern, []int) {
	sub := New()
	var subMap []int
	remap := make(map[int]int, bits.OnesCount(uint(mask)))
	for v := 0; v < a.NumNodes(); v++ {
		if mask&(1<<uint(v)) != 0 {
			remap[v] = sub.AddNode(a.Nodes[v].Var, a.Nodes[v].Label)
			subMap = append(subMap, v)
		}
	}
	for _, e := range a.Edges {
		fi, okF := remap[e.From]
		ti, okT := remap[e.To]
		if okF && okT {
			sub.AddEdge(fi, ti, e.Label)
		}
	}
	return sub, subMap
}

// HasCycle reports whether p contains an undirected cycle (edge
// directions ignored, parallel edges count): union-find over the edge
// list — an edge whose endpoints are already connected closes a cycle.
// Factorization pre-filters on it: a connected common core can only be
// cyclic when both host patterns are.
func HasCycle(p *Pattern) bool {
	parent := make([]int, len(p.Nodes))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range p.Edges {
		ru, rv := find(e.From), find(e.To)
		if ru == rv {
			return true
		}
		parent[ru] = rv
	}
	return false
}

// HasDuplicateEdges reports whether p carries two edges with identical
// (From, To, Label) — the multi-edge corner the factorized driver must not
// shortcut through (a strict embedding maps duplicates onto one host edge,
// leaving another host edge unverified).
func HasDuplicateEdges(p *Pattern) bool {
	for i, e := range p.Edges {
		for _, f := range p.Edges[i+1:] {
			if e == f {
				return true
			}
		}
	}
	return false
}
