package pattern

import "testing"

// buildQ8 and buildQ9 reproduce Fig. 3 of the paper: Q8 is a triangle
// τ -l-> τ (two children) with cross edge; Q9 extends Q8 with one more
// node w. Exact shapes: Q8 has x -l-> y, x -l-> z, y -l-> z; Q9 adds
// z -l-> w.
func buildQ8() *Pattern {
	p := New()
	x := p.AddNode("x", "tau")
	y := p.AddNode("y", "tau")
	z := p.AddNode("z", "tau")
	p.AddEdge(x, y, "l")
	p.AddEdge(x, z, "l")
	p.AddEdge(y, z, "l")
	return p
}

func buildQ9() *Pattern {
	p := buildQ8()
	w := p.AddNode("w", "tau")
	z, _ := p.VarIndex("z")
	p.AddEdge(z, w, "l")
	return p
}

func TestEmbeddingQ8IntoQ9(t *testing.T) {
	q8, q9 := buildQ8(), buildQ9()
	embs := Embeddings(q8, q9)
	if len(embs) == 0 {
		t.Fatal("Q8 must embed into Q9 (the paper's satisfiability example)")
	}
	// The identity mapping must be among them.
	foundIdentity := false
	for _, e := range embs {
		if e.Map[0] == 0 && e.Map[1] == 1 && e.Map[2] == 2 {
			foundIdentity = true
		}
		if len(e.Refine) != 0 {
			t.Error("exact embeddings must not refine")
		}
	}
	if !foundIdentity {
		t.Error("identity embedding missing")
	}
	// Q9 must NOT embed into Q8 (too many edges).
	if len(Embeddings(q9, q8)) != 0 {
		t.Error("Q9 must not embed into the smaller Q8")
	}
}

func TestEmbeddingSelfIsomorphism(t *testing.T) {
	q8 := buildQ8()
	embs := Embeddings(q8, q8)
	// The triangle with directed edges x->y, x->z, y->z is rigid: only the
	// identity automorphism exists.
	if len(embs) != 1 {
		t.Fatalf("triangle automorphisms = %d, want 1", len(embs))
	}
}

func TestEmbeddingLabelMismatch(t *testing.T) {
	a := New()
	a.AddNode("x", "sigma")
	host := New()
	host.AddNode("h", "tau")
	if len(Embeddings(a, host)) != 0 {
		t.Error("sigma must not embed onto tau")
	}
}

func TestEmbeddingWildcardSub(t *testing.T) {
	// A wildcard sub node embeds onto any host label.
	sub := New()
	x := sub.AddNode("x", Wildcard)
	y := sub.AddNode("y", Wildcard)
	sub.AddEdge(x, y, "is_a")

	host := New()
	b := host.AddNode("b", "bird")
	p := host.AddNode("p", "penguin")
	host.AddEdge(p, b, "is_a")

	embs := Embeddings(sub, host)
	if len(embs) != 1 {
		t.Fatalf("wildcard embeddings = %d, want 1", len(embs))
	}
	if embs[0].Map[0] != 1 || embs[0].Map[1] != 0 {
		t.Errorf("mapping = %v, want [1 0]", embs[0].Map)
	}
}

func TestEmbeddingWildcardEdge(t *testing.T) {
	sub := New()
	x := sub.AddNode("x", "a")
	y := sub.AddNode("y", "b")
	sub.AddEdge(x, y, Wildcard)

	host := New()
	hx := host.AddNode("hx", "a")
	hy := host.AddNode("hy", "b")
	host.AddEdge(hx, hy, "anything")

	if len(Embeddings(sub, host)) != 1 {
		t.Error("wildcard edge label must match any host edge label")
	}
	// But a concrete sub edge label must match exactly.
	sub2 := New()
	x2 := sub2.AddNode("x", "a")
	y2 := sub2.AddNode("y", "b")
	sub2.AddEdge(x2, y2, "specific")
	if len(Embeddings(sub2, host)) != 0 {
		t.Error("concrete sub edge must not match a different host edge label")
	}
}

func TestEmbeddingsUnifyRefinesHostWildcard(t *testing.T) {
	sub := New()
	sub.AddNode("x", "tau")
	host := New()
	host.AddNode("h", Wildcard)

	if len(Embeddings(sub, host)) != 0 {
		t.Error("exact embedding must not map concrete onto wildcard")
	}
	embs := EmbeddingsUnify(sub, host)
	if len(embs) != 1 {
		t.Fatalf("unify embeddings = %d, want 1", len(embs))
	}
	if embs[0].Refine[0] != "tau" {
		t.Errorf("refinement = %v, want host node 0 -> tau", embs[0].Refine)
	}
}

func TestEmbeddingDirectionMatters(t *testing.T) {
	sub := New()
	x := sub.AddNode("x", "a")
	y := sub.AddNode("y", "a")
	sub.AddEdge(x, y, "e")

	host := New()
	hx := host.AddNode("hx", "a")
	hy := host.AddNode("hy", "a")
	host.AddEdge(hy, hx, "e") // reversed

	embs := Embeddings(sub, host)
	// Only the mapping x->hy, y->hx preserves direction.
	if len(embs) != 1 || embs[0].Map[0] != 1 {
		t.Errorf("embeddings = %v", embs)
	}
}

func TestEmbeddingSelfLoop(t *testing.T) {
	sub := New()
	x := sub.AddNode("x", "a")
	sub.AddEdge(x, x, "e")

	hostNoLoop := New()
	hostNoLoop.AddNode("h", "a")
	if len(Embeddings(sub, hostNoLoop)) != 0 {
		t.Error("self-loop requires a host self-loop")
	}

	hostLoop := New()
	h := hostLoop.AddNode("h", "a")
	hostLoop.AddEdge(h, h, "e")
	if len(Embeddings(sub, hostLoop)) != 1 {
		t.Error("self-loop should embed onto host self-loop")
	}
}

func TestEmbeddableExactShortCircuits(t *testing.T) {
	q8, q9 := buildQ8(), buildQ9()
	if !EmbeddableExact(q8, q9) {
		t.Error("EmbeddableExact(Q8, Q9) must hold")
	}
	if EmbeddableExact(q9, q8) {
		t.Error("EmbeddableExact(Q9, Q8) must not hold")
	}
}

func TestEmbeddingDisconnectedSub(t *testing.T) {
	// Two isolated tau nodes embed into any host with >= 2 tau nodes.
	sub := New()
	sub.AddNode("x", "tau")
	sub.AddNode("y", "tau")

	host := buildQ8()
	embs := Embeddings(sub, host)
	// 3 hosts choose 2 ordered = 6 injective mappings.
	if len(embs) != 6 {
		t.Errorf("disconnected embeddings = %d, want 6", len(embs))
	}
}
