package pattern

import (
	"strings"
	"testing"
)

// q1Flight builds the flight component of the paper's Q1: a flight node
// with five satellites.
func q1Flight(prefix string) *Pattern {
	p := New()
	x := p.AddNode(Var(prefix), "flight")
	labels := []string{"id", "city", "city", "time", "time"}
	edges := []string{"number", "from", "to", "depart", "arrive"}
	for i, l := range labels {
		s := p.AddNode(Var(prefix+string(rune('1'+i))), l)
		p.AddEdge(x, s, edges[i])
	}
	return p
}

func TestAddNodeDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate variable")
		}
	}()
	p := New()
	p.AddNode("x", "a")
	p.AddNode("x", "b")
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad edge index")
		}
	}()
	p := New()
	p.AddNode("x", "a")
	p.AddEdge(0, 3, "e")
}

func TestVarIndexAndVars(t *testing.T) {
	p := q1Flight("x")
	if i, ok := p.VarIndex("x"); !ok || i != 0 {
		t.Errorf("VarIndex(x) = %d,%v", i, ok)
	}
	if _, ok := p.VarIndex("zz"); ok {
		t.Error("unknown var should not resolve")
	}
	vars := p.Vars()
	if len(vars) != 6 || vars[0] != "x" || vars[1] != "x1" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestSizeMeasures(t *testing.T) {
	p := q1Flight("x")
	if p.NumNodes() != 6 || p.NumEdges() != 5 || p.Size() != 11 {
		t.Errorf("sizes: %d nodes %d edges %d total", p.NumNodes(), p.NumEdges(), p.Size())
	}
}

func TestComponents(t *testing.T) {
	// Two disconnected flight stars (like Q1).
	p := New()
	a := p.AddNode("x", "flight")
	b := p.AddNode("x1", "id")
	p.AddEdge(a, b, "number")
	c := p.AddNode("y", "flight")
	d := p.AddNode("y1", "id")
	p.AddEdge(c, d, "number")

	comps := p.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Errorf("comp0 = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 2 {
		t.Errorf("comp1 = %v", comps[1])
	}
}

func TestEccentricityAndCenter(t *testing.T) {
	// Path a -> b -> c: center is b with radius 1.
	p := New()
	a := p.AddNode("a", "n")
	b := p.AddNode("b", "n")
	c := p.AddNode("c", "n")
	p.AddEdge(a, b, "e")
	p.AddEdge(b, c, "e")
	if got := p.Eccentricity(a); got != 2 {
		t.Errorf("ecc(a) = %d, want 2", got)
	}
	if got := p.Eccentricity(b); got != 1 {
		t.Errorf("ecc(b) = %d, want 1", got)
	}
	node, radius := p.Center([]int{0, 1, 2})
	if node != b || radius != 1 {
		t.Errorf("Center = (%d, %d), want (%d, 1)", node, radius, b)
	}
}

func TestCenterStarPattern(t *testing.T) {
	// The flight star: center must be the hub with radius 1.
	p := q1Flight("x")
	comps := p.Components()
	node, radius := p.Center(comps[0])
	if node != 0 || radius != 1 {
		t.Errorf("star center = (%d,%d), want (0,1)", node, radius)
	}
}

func TestIsTree(t *testing.T) {
	tree := q1Flight("x")
	if !tree.IsTree() {
		t.Error("star should be a tree")
	}
	// Add a cycle.
	cyc := q1Flight("x")
	i1, _ := cyc.VarIndex("x1")
	i2, _ := cyc.VarIndex("x2")
	cyc.AddEdge(i1, i2, "link")
	if cyc.IsTree() {
		t.Error("cycle should not be a tree")
	}
	// 2-cycle (a->b, b->a) is an undirected multi-edge: not a tree.
	two := New()
	a := two.AddNode("a", "n")
	b := two.AddNode("b", "n")
	two.AddEdge(a, b, "e")
	two.AddEdge(b, a, "e")
	if two.IsTree() {
		t.Error("2-cycle should not be a tree")
	}
	// Self-loop.
	self := New()
	s := self.AddNode("a", "n")
	self.AddEdge(s, s, "e")
	if self.IsTree() {
		t.Error("self-loop should not be a tree")
	}
	// Forest of two trees is a "tree pattern" per component.
	forest := New()
	forest.AddNode("a", "n")
	forest.AddNode("b", "n")
	if !forest.IsTree() {
		t.Error("two isolated nodes form a forest of trees")
	}
}

func TestIsDAG(t *testing.T) {
	p := q1Flight("x")
	if !p.IsDAG() {
		t.Error("star is a DAG")
	}
	i1, _ := p.VarIndex("x1")
	x, _ := p.VarIndex("x")
	p.AddEdge(i1, x, "back")
	if p.IsDAG() {
		t.Error("back edge creates a directed cycle")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := q1Flight("x")
	c := p.Clone()
	c.AddNode("extra", "n")
	if p.NumNodes() == c.NumNodes() {
		t.Error("clone shares node storage")
	}
	if _, ok := p.VarIndex("extra"); ok {
		t.Error("clone shares variable index")
	}
}

func TestStringRendering(t *testing.T) {
	p := New()
	a := p.AddNode("x", "country")
	b := p.AddNode("y", "city")
	p.AddEdge(a, b, "capital")
	s := p.String()
	if !strings.Contains(s, "(x:country)") || !strings.Contains(s, "x-[capital]->y") {
		t.Errorf("String = %q", s)
	}
}

func TestLabelMatches(t *testing.T) {
	if !LabelMatches(Wildcard, "anything") {
		t.Error("wildcard must match")
	}
	if !LabelMatches("a", "a") || LabelMatches("a", "b") {
		t.Error("concrete labels must compare")
	}
}
