// Package pattern implements graph patterns Q[x̄] (Section 2 of the GFD
// paper): directed graphs whose nodes carry labels (possibly the wildcard
// '_') and are in bijection µ with a list of variables x̄. Patterns impose
// the topological constraint of a GFD; package match finds their
// isomorphic images in data graphs.
package pattern

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Wildcard is the special label '_' that matches any node or edge label.
const Wildcard = "_"

// Var is a pattern variable name (an element of x̄).
type Var string

// Node is a pattern node: the variable µ⁻¹(u) naming it and its label.
type Node struct {
	Var   Var
	Label string
}

// Edge is a directed pattern edge between node indices, with a label that
// may be Wildcard.
type Edge struct {
	From, To int
	Label    string
}

// Pattern is a graph pattern Q[x̄]. Nodes are indexed 0..len(Nodes)-1; the
// variable list x̄ is exactly the Var fields in index order (µ is the
// identity on indices).
type Pattern struct {
	Nodes []Node
	Edges []Edge

	varIdx map[Var]int
	out    [][]int // edge indices leaving node i
	in     [][]int // edge indices entering node i

	// Lowered forms cached per symbol table, one entry per live table
	// (see CompileFor). Do not mutate a pattern after it has been
	// compiled against a snapshot.
	compiled atomic.Pointer[[]compiledEntry]
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{varIdx: make(map[Var]int)}
}

// AddNode appends a pattern node for variable v with the given label and
// returns its index. It panics if v is already used: µ must be a bijection.
func (p *Pattern) AddNode(v Var, label string) int {
	if p.varIdx == nil {
		p.varIdx = make(map[Var]int)
	}
	if _, dup := p.varIdx[v]; dup {
		panic(fmt.Sprintf("pattern: duplicate variable %q", v))
	}
	idx := len(p.Nodes)
	p.Nodes = append(p.Nodes, Node{Var: v, Label: label})
	p.varIdx[v] = idx
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	return idx
}

// AddEdge appends a directed pattern edge from -> to with the given label
// (Wildcard allowed).
func (p *Pattern) AddEdge(from, to int, label string) {
	if from < 0 || from >= len(p.Nodes) || to < 0 || to >= len(p.Nodes) {
		panic(fmt.Sprintf("pattern: edge (%d,%d) out of range", from, to))
	}
	ei := len(p.Edges)
	p.Edges = append(p.Edges, Edge{From: from, To: to, Label: label})
	p.out[from] = append(p.out[from], ei)
	p.in[to] = append(p.in[to], ei)
}

// AddEdgeVars is AddEdge addressing endpoints by variable name.
func (p *Pattern) AddEdgeVars(from, to Var, label string) {
	fi, ok := p.varIdx[from]
	if !ok {
		panic(fmt.Sprintf("pattern: unknown variable %q", from))
	}
	ti, ok := p.varIdx[to]
	if !ok {
		panic(fmt.Sprintf("pattern: unknown variable %q", to))
	}
	p.AddEdge(fi, ti, label)
}

// VarIndex returns the node index of variable v and whether it exists.
func (p *Pattern) VarIndex(v Var) (int, bool) {
	i, ok := p.varIdx[v]
	return i, ok
}

// Vars returns x̄: the variable list in node-index order.
func (p *Pattern) Vars() []Var {
	out := make([]Var, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.Var
	}
	return out
}

// NumNodes returns |V_Q|.
func (p *Pattern) NumNodes() int { return len(p.Nodes) }

// NumEdges returns |E_Q|.
func (p *Pattern) NumEdges() int { return len(p.Edges) }

// Size returns |Q| = |V_Q| + |E_Q|, the pattern size measure of the paper.
func (p *Pattern) Size() int { return len(p.Nodes) + len(p.Edges) }

// OutEdges returns the indices into Edges of edges leaving node i.
func (p *Pattern) OutEdges(i int) []int { return p.out[i] }

// InEdges returns the indices into Edges of edges entering node i.
func (p *Pattern) InEdges(i int) []int { return p.in[i] }

// Degree returns the undirected degree of node i.
func (p *Pattern) Degree(i int) int { return len(p.out[i]) + len(p.in[i]) }

// Clone returns a deep copy of p.
func (p *Pattern) Clone() *Pattern {
	c := New()
	for _, n := range p.Nodes {
		c.AddNode(n.Var, n.Label)
	}
	for _, e := range p.Edges {
		c.AddEdge(e.From, e.To, e.Label)
	}
	return c
}

// String renders the pattern compactly, e.g.
// "(x:flight), (y:city); x-[to]->y".
func (p *Pattern) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s:%s)", n.Var, n.Label)
	}
	if len(p.Edges) > 0 {
		b.WriteString("; ")
		for i, e := range p.Edges {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s-[%s]->%s", p.Nodes[e.From].Var, e.Label, p.Nodes[e.To].Var)
		}
	}
	return b.String()
}

// LabelMatches reports whether a pattern label accepts a concrete label
// under wildcard semantics: '_' matches anything, otherwise equality.
func LabelMatches(patternLabel, concrete string) bool {
	return patternLabel == Wildcard || patternLabel == concrete
}
