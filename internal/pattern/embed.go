package pattern

// Embedding is an isomorphic mapping f from a pattern Q' into a subgraph of
// a host pattern Q (Section 4.1 of the paper: "Q' is embeddable in Q").
// Map[i] is the host node index that sub node i maps to.
//
// Labels are handled so that an embedded GFD remains enforceable on every
// match of the host:
//   - a wildcard sub label maps onto any host label (the sub GFD applies to
//     arbitrary entities, hence to every instantiation of the host node);
//   - a concrete sub label maps onto an equal host label;
//   - a concrete sub label may also map onto a *wildcard* host label, in
//     which case the host node must be refined to that label for the
//     embedding to be valid on all matches. Refine records such
//     refinements (host node index -> required label). Two embeddings can
//     be combined only if their refinements agree.
type Embedding struct {
	Map    []int
	Refine map[int]string
}

// Embeddings returns all exact embeddings of sub into host: no host
// refinement is permitted (Refine is always empty). This is the common case
// for GFD reasoning over wildcard-free rule sets.
func Embeddings(sub, host *Pattern) []Embedding {
	return findEmbeddings(sub, host, false)
}

// EmbeddingsUnify returns all embeddings of sub into host, additionally
// allowing concrete sub labels to refine wildcard host labels. The caller is
// responsible for checking that refinements from different embeddings are
// mutually consistent.
func EmbeddingsUnify(sub, host *Pattern) []Embedding {
	return findEmbeddings(sub, host, true)
}

// EmbeddableExact reports whether at least one exact embedding exists.
func EmbeddableExact(sub, host *Pattern) bool {
	return len(findEmbeddingsLimited(sub, host, false, 1)) > 0
}

func findEmbeddings(sub, host *Pattern, unify bool) []Embedding {
	return findEmbeddingsLimited(sub, host, unify, -1)
}

func findEmbeddingsLimited(sub, host *Pattern, unify bool, limit int) []Embedding {
	if sub.NumNodes() > host.NumNodes() || sub.NumEdges() > host.NumEdges() {
		return nil
	}
	e := &embedder{sub: sub, host: host, unify: unify, limit: limit}
	e.order = connectivityOrder(sub)
	e.assign = make([]int, sub.NumNodes())
	for i := range e.assign {
		e.assign[i] = -1
	}
	e.usedHost = make([]bool, host.NumNodes())
	e.refine = make(map[int]string)
	e.search(0)
	return e.found
}

type embedder struct {
	sub, host *Pattern
	unify     bool
	limit     int
	order     []int
	assign    []int // sub node -> host node or -1
	usedHost  []bool
	refine    map[int]string
	found     []Embedding
}

func (e *embedder) search(depth int) bool {
	if e.limit >= 0 && len(e.found) >= e.limit {
		return true
	}
	if depth == len(e.order) {
		m := append([]int(nil), e.assign...)
		var r map[int]string
		if len(e.refine) > 0 {
			r = make(map[int]string, len(e.refine))
			for k, v := range e.refine {
				r[k] = v
			}
		}
		e.found = append(e.found, Embedding{Map: m, Refine: r})
		return e.limit >= 0 && len(e.found) >= e.limit
	}
	u := e.order[depth]
	for h := 0; h < e.host.NumNodes(); h++ {
		if e.usedHost[h] {
			continue
		}
		refined, ok := e.nodeCompatible(u, h)
		if !ok {
			continue
		}
		if !e.edgesCompatible(u, h) {
			continue
		}
		e.assign[u] = h
		e.usedHost[h] = true
		if refined {
			e.refine[h] = e.sub.Nodes[u].Label
		}
		if e.search(depth + 1) {
			return true
		}
		if refined {
			delete(e.refine, h)
		}
		e.usedHost[h] = false
		e.assign[u] = -1
	}
	return false
}

// nodeCompatible reports whether sub node u can map to host node h, and
// whether doing so refines a wildcard host label.
func (e *embedder) nodeCompatible(u, h int) (refined, ok bool) {
	sl, hl := e.sub.Nodes[u].Label, e.host.Nodes[h].Label
	switch {
	case sl == Wildcard:
		return false, true
	case sl == hl:
		return false, true
	case hl == Wildcard && e.unify:
		if prev, already := e.refine[h]; already {
			return false, prev == sl
		}
		return true, true
	default:
		return false, false
	}
}

// edgesCompatible verifies all sub edges between u and already-assigned
// nodes have counterparts in the host with compatible labels.
func (e *embedder) edgesCompatible(u, h int) bool {
	for _, ei := range e.sub.OutEdges(u) {
		se := e.sub.Edges[ei]
		if hv := e.assign[se.To]; hv >= 0 && !e.hostHasEdge(h, hv, se.Label) {
			return false
		}
	}
	for _, ei := range e.sub.InEdges(u) {
		se := e.sub.Edges[ei]
		if hv := e.assign[se.From]; hv >= 0 && !e.hostHasEdge(hv, h, se.Label) {
			return false
		}
	}
	// Self-loops.
	for _, ei := range e.sub.OutEdges(u) {
		if se := e.sub.Edges[ei]; se.To == u && !e.hostHasEdge(h, h, se.Label) {
			return false
		}
	}
	return true
}

func (e *embedder) hostHasEdge(from, to int, subLabel string) bool {
	for _, ei := range e.host.OutEdges(from) {
		he := e.host.Edges[ei]
		if he.To != to {
			continue
		}
		if subLabel == Wildcard || subLabel == he.Label {
			return true
		}
	}
	return false
}

// connectivityOrder orders sub nodes so that each node after the first in
// its component is adjacent to an earlier one, maximizing early pruning.
func connectivityOrder(p *Pattern) []int {
	n := p.NumNodes()
	order := make([]int, 0, n)
	placed := make([]bool, n)
	adj := func(v int) []int {
		var out []int
		for _, ei := range p.OutEdges(v) {
			out = append(out, p.Edges[ei].To)
		}
		for _, ei := range p.InEdges(v) {
			out = append(out, p.Edges[ei].From)
		}
		return out
	}
	for len(order) < n {
		// Seed with the unplaced node of maximum degree.
		seed, best := -1, -1
		for v := 0; v < n; v++ {
			if !placed[v] && p.Degree(v) > best {
				seed, best = v, p.Degree(v)
			}
		}
		queue := []int{seed}
		placed[seed] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range adj(v) {
				if !placed[w] {
					placed[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}
