package pattern

import (
	"fmt"
	"testing"

	"gfd/internal/graph"
)

// TestCompileForCachesPerTable: the per-pattern memo holds one entry per
// live symbol table, so two sessions (two snapshots) sharing one rule's
// pattern do not evict each other — CompileFor stays a pointer-compare
// hit for both, preserving the lowered-once guarantee.
func TestCompileForCachesPerTable(t *testing.T) {
	q := New()
	a := q.AddNode("x", "a")
	b := q.AddNode("y", "b")
	q.AddEdge(a, b, "e")

	s1 := graph.NewSymbols()
	s1.Intern("a")
	s1.Intern("b")
	s1.Intern("e")
	s2 := graph.NewSymbols()
	s2.Intern("b")
	s2.Intern("a")

	c1 := CompileFor(q, s1)
	c2 := CompileFor(q, s2)
	if c1 == c2 {
		t.Fatal("distinct tables must get distinct lowerings")
	}
	// Alternating lookups must hit both cached entries, not recompile.
	for i := 0; i < 4; i++ {
		if CompileFor(q, s1) != c1 {
			t.Fatalf("round %d: table 1 entry was evicted", i)
		}
		if CompileFor(q, s2) != c2 {
			t.Fatalf("round %d: table 2 entry was evicted", i)
		}
	}
}

// TestCompileForBoundedEntries: the memo stays bounded when a pattern
// outlives many symbol tables (a long-lived mutating graph), and the
// newest table survives eviction.
func TestCompileForBoundedEntries(t *testing.T) {
	q := New()
	q.AddNode("x", "a")

	var last *graph.Symbols
	for i := 0; i < 3*maxCompiledEntries; i++ {
		last = graph.NewSymbols()
		last.Intern(fmt.Sprintf("l%d", i))
		CompileFor(q, last)
	}
	entries := q.compiled.Load()
	if entries == nil || len(*entries) > maxCompiledEntries {
		t.Fatalf("memo grew unbounded: %d entries", len(*entries))
	}
	c := CompileFor(q, last)
	if CompileFor(q, last) != c {
		t.Error("newest table must remain cached after eviction")
	}
}
