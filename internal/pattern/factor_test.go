package pattern

import "testing"

func triangle() *Pattern {
	p := New()
	x := p.AddNode("x", "A")
	y := p.AddNode("y", "B")
	z := p.AddNode("z", "C")
	p.AddEdge(x, y, "ab")
	p.AddEdge(y, z, "bc")
	p.AddEdge(x, z, "ac")
	return p
}

func TestStrictEmbedding(t *testing.T) {
	tri := triangle()
	// The triangle embeds strictly into itself.
	if m := StrictEmbedding(tri, tri); m == nil {
		t.Fatal("triangle must strictly embed into itself")
	}
	// A path A->B embeds into the triangle.
	path := New()
	a := path.AddNode("p", "A")
	b := path.AddNode("q", "B")
	path.AddEdge(a, b, "ab")
	m := StrictEmbedding(path, tri)
	if m == nil {
		t.Fatal("A-[ab]->B must embed into the triangle")
	}
	if tri.Nodes[m[0]].Label != "A" || tri.Nodes[m[1]].Label != "B" {
		t.Fatalf("embedding maps to wrong labels: %v", m)
	}
	// Strictness: a wildcard sub node must NOT map onto a concrete host
	// node (Embeddings would allow it; the factorized prefix must not).
	wild := New()
	wa := wild.AddNode("p", Wildcard)
	wb := wild.AddNode("q", "B")
	wild.AddEdge(wa, wb, "ab")
	if m := StrictEmbedding(wild, tri); m != nil {
		t.Fatalf("wildcard node strictly embedded onto concrete host: %v", m)
	}
	// And the reverse direction: concrete sub onto wildcard host.
	host := New()
	ha := host.AddNode("p", Wildcard)
	hb := host.AddNode("q", "B")
	host.AddEdge(ha, hb, "ab")
	if m := StrictEmbedding(path, host); m != nil {
		t.Fatalf("concrete node strictly embedded onto wildcard host: %v", m)
	}
	// Edge labels are strict too.
	badEdge := New()
	ba := badEdge.AddNode("p", "A")
	bb := badEdge.AddNode("q", "B")
	badEdge.AddEdge(ba, bb, "zz")
	if m := StrictEmbedding(badEdge, tri); m != nil {
		t.Fatalf("mismatched edge label embedded: %v", m)
	}
}

func TestCommonCore(t *testing.T) {
	// Two rules sharing a triangle core with different suffixes.
	q1 := triangle()
	w1 := q1.AddNode("w", "D")
	q1.AddEdge(2, w1, "cd")

	q2 := triangle()
	w2 := q2.AddNode("v", "E")
	q2.AddEdge(0, w2, "ae")

	core, aMap, bMap, ok := CommonCore(q1, q2, 2)
	if !ok {
		t.Fatal("no common core found")
	}
	if core.NumNodes() != 3 || core.NumEdges() != 3 {
		t.Fatalf("core should be the triangle, got %s", core)
	}
	// Maps must be label-consistent.
	for ci := 0; ci < core.NumNodes(); ci++ {
		if core.Nodes[ci].Label != q1.Nodes[aMap[ci]].Label {
			t.Fatalf("aMap label mismatch at %d", ci)
		}
		if core.Nodes[ci].Label != q2.Nodes[bMap[ci]].Label {
			t.Fatalf("bMap label mismatch at %d", ci)
		}
	}
	// Disjoint label sets: no core.
	other := New()
	o1 := other.AddNode("m", "X")
	o2 := other.AddNode("n", "Y")
	other.AddEdge(o1, o2, "xy")
	if _, _, _, ok := CommonCore(q1, other, 2); ok {
		t.Fatal("found a core between label-disjoint patterns")
	}
	// Identical patterns: the core is the whole pattern.
	core2, _, _, ok := CommonCore(q1, q1.Clone(), 2)
	if !ok || core2.NumNodes() != q1.NumNodes() || core2.NumEdges() != q1.NumEdges() {
		t.Fatalf("self core should be the full pattern, got %v ok=%v", core2, ok)
	}
	// The core must be connected: two rules sharing two disconnected
	// label pairs only yield one pair (plus its edge).
	d1 := New()
	d1.AddNode("a", "A")
	d1.AddNode("b", "B")
	d1.AddNode("c", "C")
	d1.AddEdge(0, 1, "ab")
	d2 := New()
	d2.AddNode("a2", "A")
	d2.AddNode("b2", "B")
	d2.AddNode("c2", "C")
	d2.AddEdge(0, 1, "ab")
	core3, _, _, ok := CommonCore(d1, d2, 2)
	if !ok || core3.NumNodes() != 2 || core3.NumEdges() != 1 {
		t.Fatalf("disconnected candidates must shrink to a connected core, got %v", core3)
	}
}

func TestHasDuplicateEdges(t *testing.T) {
	p := New()
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	p.AddEdge(a, b, "ab")
	if HasDuplicateEdges(p) {
		t.Fatal("no duplicates yet")
	}
	p.AddEdge(a, b, "ab")
	if !HasDuplicateEdges(p) {
		t.Fatal("duplicate edge not detected")
	}
}

func TestHasCycle(t *testing.T) {
	tri := New()
	a, b, c := tri.AddNode("a", "A"), tri.AddNode("b", "B"), tri.AddNode("c", "C")
	tri.AddEdge(a, b, "ab")
	tri.AddEdge(b, c, "bc")
	tri.AddEdge(a, c, "ac")
	if !HasCycle(tri) {
		t.Fatal("triangle not detected as cyclic")
	}
	path := New()
	pa, pb, pc := path.AddNode("a", "A"), path.AddNode("b", "B"), path.AddNode("c", "C")
	path.AddEdge(pa, pb, "ab")
	path.AddEdge(pb, pc, "bc")
	if HasCycle(path) {
		t.Fatal("path reported cyclic")
	}
	// Directions are ignored: two edges between the same endpoints close a
	// cycle even when anti-parallel or parallel.
	dup := New()
	da, db := dup.AddNode("a", "A"), dup.AddNode("b", "B")
	dup.AddEdge(da, db, "x")
	dup.AddEdge(db, da, "y")
	if !HasCycle(dup) {
		t.Fatal("anti-parallel pair not detected as cyclic")
	}
	// Cycle in one component, tree in another: still cyclic even though
	// total edges < total nodes.
	mixed := New()
	ma, mb := mixed.AddNode("a", "A"), mixed.AddNode("b", "B")
	mixed.AddEdge(ma, mb, "x")
	mixed.AddEdge(mb, ma, "y")
	mixed.AddNode("lone1", "L")
	mixed.AddNode("lone2", "L")
	if !HasCycle(mixed) {
		t.Fatal("cycle alongside isolated nodes not detected")
	}
}
