//go:build !linux && !darwin

package store

import (
	"io"
	"os"
	"unsafe"
)

// mapFile reads path fully into an 8-aligned heap buffer on platforms
// without the mmap path. Semantics match the unix version except the
// "mapped" report: the arrays are plain heap memory, Close is a no-op for
// the garbage collector's benefit only, and writes through them would not
// fault (the read-only contract is upheld by the graph packages, not the
// hardware).
func mapFile(path string) (data []byte, release func() error, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	// A []uint64 backing guarantees the 8-byte alignment the typed views
	// need; a plain make([]byte) does not for all sizes.
	buf := make([]uint64, (size+7)/8)
	data = unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return nil }, false, nil
}
