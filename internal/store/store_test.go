package store_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/store"
)

func randomGraph(seed int64, nodes, edges int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"person", "city", "org", "x"}
	elabels := []string{"knows", "in", "owns"}
	attrs := []string{"name", "zip", "since"}
	g := graph.New(nodes, edges)
	for i := 0; i < nodes; i++ {
		var a graph.Attrs
		if rng.Intn(4) > 0 {
			a = graph.Attrs{attrs[rng.Intn(len(attrs))]: string(rune('a' + rng.Intn(6)))}
		}
		g.AddNode(labels[rng.Intn(len(labels))], a)
	}
	for i := 0; i < edges; i++ {
		g.MustAddEdge(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes)), elabels[rng.Intn(len(elabels))])
	}
	return g
}

func saveTo(t *testing.T, s *graph.Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gfds")
	if err := store.Save(context.Background(), s, path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path
}

// flatEqual compares every array of two snapshot images for exact
// equality — the round-trip contract is byte-identical arrays and
// identical symbol codes, not just isomorphic graphs.
func flatEqual(t *testing.T, got, want graph.Flat) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		name := gv.Type().Field(i).Name
		a, b := gv.Field(i).Interface(), wv.Field(i).Interface()
		if !reflect.DeepEqual(a, b) && !(gv.Field(i).Len() == 0 && wv.Field(i).Len() == 0) {
			t.Fatalf("round trip changed %s:\n got %v\nwant %v", name, a, b)
		}
	}
}

// TestRoundTrip is the differential core: Open(Save(Freeze(g))) must
// reproduce the fresh freeze exactly, across graph shapes and both
// freeze paths, and the serial and parallel freezes must save
// byte-identical files.
func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name         string
		nodes, edges int
		seed         int64
	}{
		{"small", 30, 80, 1},
		{"medium", 400, 1600, 2},
		{"sparse", 200, 50, 3},
		{"single", 1, 0, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGraph(tc.seed, tc.nodes, tc.edges)
			serial := g.BuildSnapshot(1)
			parallel := g.BuildSnapshot(4)

			pSerial := filepath.Join(t.TempDir(), "serial.gfds")
			pParallel := filepath.Join(t.TempDir(), "parallel.gfds")
			if err := store.Save(context.Background(), serial, pSerial); err != nil {
				t.Fatalf("Save(serial): %v", err)
			}
			if err := store.Save(context.Background(), parallel, pParallel); err != nil {
				t.Fatalf("Save(parallel): %v", err)
			}
			bs, _ := os.ReadFile(pSerial)
			bp, _ := os.ReadFile(pParallel)
			if !bytes.Equal(bs, bp) {
				t.Fatalf("serial and parallel freeze saved different bytes (%d vs %d)", len(bs), len(bp))
			}

			l, err := store.Open(context.Background(), pSerial)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer l.Close()
			flatEqual(t, l.Snapshot().Flat(), serial.Flat())

			// The loaded snapshot's graph handle answers reads without a
			// single snapshot build.
			lg := l.Snapshot().Graph()
			if lg.SnapshotBuilds() != 0 {
				t.Fatalf("loaded graph built %d snapshots before any use", lg.SnapshotBuilds())
			}
			if lg.NumNodes() != g.NumNodes() || lg.NumEdges() != g.NumEdges() {
				t.Fatalf("loaded graph (%d,%d), want (%d,%d)", lg.NumNodes(), lg.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			if lg.Freeze() != l.Snapshot() {
				t.Fatal("Freeze on the loaded graph did not return the adopted snapshot")
			}
			if lg.SnapshotBuilds() != 0 {
				t.Fatalf("Freeze on the loaded graph built a snapshot (builds=%d)", lg.SnapshotBuilds())
			}
			for v := 0; v < g.NumNodes(); v++ {
				id := graph.NodeID(v)
				if lg.Label(id) != g.Label(id) {
					t.Fatalf("node %d: label %q, want %q", v, lg.Label(id), g.Label(id))
				}
				if lg.Degree(id) != g.Degree(id) {
					t.Fatalf("node %d: degree %d, want %d", v, lg.Degree(id), g.Degree(id))
				}
			}
		})
	}
}

// TestRoundTripEmptyGraph covers the degenerate arenas (no nodes, no
// edges, no attributes).
func TestRoundTripEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	path := saveTo(t, g.Freeze())
	l, err := store.Open(context.Background(), path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if n := l.Snapshot().NumNodes(); n != 0 {
		t.Fatalf("empty graph loaded with %d nodes", n)
	}
}

// TestLoadedGraphMutation checks the migration contract: mutating the
// graph behind a loaded snapshot thaws a private heap copy, and the next
// freeze builds fresh instead of writing anywhere near the mapping.
func TestLoadedGraphMutation(t *testing.T) {
	g := randomGraph(11, 50, 150)
	path := saveTo(t, g.Freeze())
	l, err := store.Open(context.Background(), path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	lg := l.Snapshot().Graph()
	lg.SetAttr(0, "name", "changed")
	id := lg.AddNode("person", graph.Attrs{"name": "new"})
	lg.MustAddEdge(id, 0, "knows")

	s2 := lg.Freeze()
	if s2 == l.Snapshot() {
		t.Fatal("freeze after mutation returned the mapped snapshot")
	}
	if lg.SnapshotBuilds() != 1 {
		t.Fatalf("expected exactly one rebuild after mutation, got %d", lg.SnapshotBuilds())
	}
	if v, _ := s2.Attr(0, "name"); v != "changed" {
		t.Fatalf("mutation lost: attr = %q", v)
	}
	if got, want := s2.NumNodes(), g.NumNodes()+1; got != want {
		t.Fatalf("rebuilt snapshot has %d nodes, want %d", got, want)
	}
	// The original file must be untouched by all of the above.
	l2, err := store.Open(context.Background(), path)
	if err != nil {
		t.Fatalf("re-Open after mutation: %v", err)
	}
	defer l2.Close()
	flatEqual(t, l2.Snapshot().Flat(), g.Freeze().Flat())
}

// corrupt returns a copy of b with mutate applied.
func corrupt(b []byte, mutate func([]byte)) []byte {
	c := append([]byte(nil), b...)
	mutate(c)
	return c
}

func mustDecodeErr(t *testing.T, data []byte, want error) {
	t.Helper()
	_, err := store.Decode(data)
	if err == nil {
		t.Fatal("Decode accepted corrupt input")
	}
	if !errors.Is(err, want) {
		t.Fatalf("Decode error = %v, want errors.Is(%v)", err, want)
	}
}

// TestDecodeCorruption walks the corruption taxonomy: every class must
// come back as the right typed error, never a panic or a bogus snapshot.
func TestDecodeCorruption(t *testing.T) {
	g := randomGraph(5, 40, 120)
	path := saveTo(t, g.Freeze())
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Decode(good); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	t.Run("bad magic", func(t *testing.T) {
		mustDecodeErr(t, corrupt(good, func(b []byte) { b[0] = 'X' }), store.ErrCorrupt)
	})
	t.Run("version skew", func(t *testing.T) {
		c := corrupt(good, func(b []byte) { binary.LittleEndian.PutUint32(b[4:8], 99) })
		mustDecodeErr(t, c, store.ErrVersion)
	})
	t.Run("endianness mismatch", func(t *testing.T) {
		c := corrupt(good, func(b []byte) { b[8], b[9], b[10], b[11] = b[11], b[10], b[9], b[8] })
		mustDecodeErr(t, c, store.ErrVersion)
	})
	t.Run("section count lies", func(t *testing.T) {
		for _, n := range []uint32{0, 3, 65, 1 << 30} {
			c := corrupt(good, func(b []byte) { binary.LittleEndian.PutUint32(b[12:16], n) })
			mustDecodeErr(t, c, store.ErrCorrupt)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		// Every strict prefix must be rejected; step oddly so boundary and
		// mid-section cuts are both hit, and cover the smallest prefixes
		// exhaustively.
		for cut := 0; cut < len(good); cut += 1 + cut/16 {
			if _, err := store.Decode(good[:cut]); err == nil {
				t.Fatalf("accepted %d-byte prefix of a %d-byte file", cut, len(good))
			} else if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrVersion) {
				t.Fatalf("prefix %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("table offset beyond file", func(t *testing.T) {
		c := corrupt(good, func(b []byte) { binary.LittleEndian.PutUint64(b[16+8:], 1<<40) })
		mustDecodeErr(t, c, store.ErrCorrupt)
	})
	t.Run("table length lies", func(t *testing.T) {
		c := corrupt(good, func(b []byte) { binary.LittleEndian.PutUint64(b[16+16:], 1<<40) })
		mustDecodeErr(t, c, store.ErrCorrupt)
	})
	t.Run("duplicate section id", func(t *testing.T) {
		c := corrupt(good, func(b []byte) {
			copy(b[16+32:16+64], b[16:16+32]) // second entry = first entry
		})
		mustDecodeErr(t, c, store.ErrCorrupt)
	})
	t.Run("header edits fail the header crc", func(t *testing.T) {
		// The three table lies above hit the range the header checksum
		// covers, so flipping any single header/table byte must fail too.
		c := corrupt(good, func(b []byte) { b[20] ^= 0x40 })
		mustDecodeErr(t, c, store.ErrCorrupt)
	})
	t.Run("body bit flips", func(t *testing.T) {
		// Flip one bit in each body byte position (sampled): either the
		// section checksum catches it, or the flip landed in inter-section
		// padding and the decode result must equal the pristine one.
		want := g.Freeze().Flat()
		start := 16 + 12*32 + 4
		for pos := start; pos < len(good); pos += 7 {
			c := corrupt(good, func(b []byte) { b[pos] ^= 0x10 })
			s, err := store.Decode(c)
			if err != nil {
				if !errors.Is(err, store.ErrCorrupt) {
					t.Fatalf("flip at %d: untyped error %v", pos, err)
				}
				continue
			}
			flatEqual(t, s.Flat(), want)
		}
	})
	t.Run("skip checksums still validates structure", func(t *testing.T) {
		// Without body CRCs, a flipped adjacency byte must still be caught
		// by the structural validation whenever it breaks an invariant —
		// and must never panic. Flip a byte inside the out-offsets section
		// so monotonicity breaks.
		c := corrupt(good, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[16+6*32+8:]) // secOutOff entry
			binary.LittleEndian.PutUint32(b[off+4:], 1<<30)
		})
		if _, err := store.Decode(c, store.SkipChecksums()); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("structural validation missed a lying offset: %v", err)
		}
	})
}

// TestSaveOpenCancellation: a canceled context aborts both directions
// with ctx.Err() and leaves no temp debris behind.
func TestSaveOpenCancellation(t *testing.T) {
	g := randomGraph(9, 30, 90)
	s := g.Freeze()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	path := filepath.Join(dir, "g.gfds")
	if err := store.Save(ctx, s, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("Save under canceled ctx: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("canceled Save published a file")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("canceled Save left %d temp files", len(ents))
	}

	if err := store.Save(context.Background(), s, path); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(ctx, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open under canceled ctx: %v", err)
	}
}

func TestSaveNilSnapshot(t *testing.T) {
	if err := store.Save(context.Background(), nil, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("Save accepted a nil snapshot")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := store.Open(context.Background(), filepath.Join(t.TempDir(), "absent.gfds")); err == nil {
		t.Fatal("Open accepted a missing file")
	}
}

// TestRoundTripEmptyFragmentShard covers the shard-sized degenerate the
// distributed runtime produces: a fragment that owns no nodes at all.
// Its .gfds still carries the full node, label, class, and symbol tables
// (shards are full-width so NodeIDs and Sym codes stay global), but the
// attribute arena and both CSR edge arenas are zero-length sections — the
// file must round-trip through Save/Open instead of erroring on the
// zero-length section views, and every truncation of it must come back
// as a typed error.
func TestRoundTripEmptyFragmentShard(t *testing.T) {
	g := randomGraph(23, 30, 90)
	full := g.Freeze()
	// Every node owned by shard 0 of 3: shards 1 and 2 own nothing and
	// carry no attrs and no edges.
	owner := make([]int, g.NumNodes())
	dir := t.TempDir()
	paths, err := fragment.SaveShards(context.Background(), full, owner, 3, dir, "g")
	if err != nil {
		t.Fatalf("SaveShards: %v", err)
	}
	if len(paths) != 3 {
		t.Fatalf("SaveShards wrote %d shards, want 3", len(paths))
	}

	// Shard 0 holds everything: its image must equal the source freeze.
	l0, err := store.Open(context.Background(), paths[0])
	if err != nil {
		t.Fatalf("Open(full shard): %v", err)
	}
	defer l0.Close()
	flatEqual(t, l0.Snapshot().Flat(), full.Flat())

	for _, p := range paths[1:] {
		l, err := store.Open(context.Background(), p)
		if err != nil {
			t.Fatalf("Open(empty shard %s): %v", p, err)
		}
		s := l.Snapshot()
		if s.NumNodes() != g.NumNodes() {
			t.Fatalf("empty shard holds %d nodes, want full table of %d", s.NumNodes(), g.NumNodes())
		}
		if got, want := s.Syms().Len(), full.Syms().Len(); got != want {
			t.Fatalf("empty shard symbol table has %d codes, want global %d", got, want)
		}
		for v := 0; v < s.NumNodes(); v++ {
			id := graph.NodeID(v)
			if s.Label(id) != full.Label(id) {
				t.Fatalf("empty shard relabeled node %d", v)
			}
			if len(s.AttrPairs(id)) != 0 || len(s.Out(id)) != 0 || len(s.In(id)) != 0 {
				t.Fatalf("empty shard carries data for node %d", v)
			}
		}
		l.Close()
	}

	// The zero-length-section file joins the corruption matrix: every
	// strict prefix must be rejected with a typed error, never accepted
	// or panicked on.
	empty, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(empty); cut += 1 + cut/16 {
		if _, err := store.Decode(empty[:cut]); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte empty shard", cut, len(empty))
		} else if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrVersion) {
			t.Fatalf("prefix %d: untyped error %v", cut, err)
		}
	}

	// A zero-node source graph degenerates every shard to the zero-node
	// snapshot; those must round-trip too (the gfdgen -fragments path on
	// a pathological input).
	eg := graph.New(0, 0)
	eps, err := fragment.SaveShards(context.Background(), eg.Freeze(), nil, 2, dir, "e")
	if err != nil {
		t.Fatalf("SaveShards(zero-node): %v", err)
	}
	for _, p := range eps {
		l, err := store.Open(context.Background(), p)
		if err != nil {
			t.Fatalf("Open(zero-node shard %s): %v", p, err)
		}
		if n := l.Snapshot().NumNodes(); n != 0 {
			t.Fatalf("zero-node shard loaded with %d nodes", n)
		}
		l.Close()
	}
}
