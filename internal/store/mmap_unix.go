//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned bytes are a PROT_READ /
// MAP_PRIVATE view — any write through them faults — and stay valid until
// the returned release function runs. An empty file maps to an empty
// slice (Decode rejects it as truncated).
func mapFile(path string) (data []byte, release func() error, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	if size != int64(int(size)) {
		return nil, nil, false, fmt.Errorf("store: %s: file size %d exceeds address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}
