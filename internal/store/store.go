// Package store persists frozen graph snapshots in a versioned binary
// format (.gfds) and loads them back as zero-copy views over a read-only
// memory mapping. A Snapshot's backing storage is already flat and
// offset-based — CSR adjacency, interned symbol table, attribute tuple
// arena — so saving is a section-per-array dump and opening is page-table
// setup plus an O(|V|+|E|) integer validation scan, never a rebuild.
//
// File layout (format version 1, all header/table scalars little-endian):
//
//	[0:4)   magic "GFDS"
//	[4:8)   format version (u32)
//	[8:12)  byte-order mark 0x01020304, written in NATIVE order — array
//	        sections are raw native-endian dumps, so a file written on a
//	        machine of the other endianness reads back 0x04030201 and is
//	        rejected as ErrVersion instead of decoding garbage
//	[12:16) section count (u32)
//	then    count × 32-byte section entries {id u32, _ u32, off u64,
//	        len u64, crc32c u32, _ u32}
//	then    crc32c of everything above (u32)
//	then    the sections, each starting at an 8-byte-aligned offset
//
// Per-section CRCs are Castagnoli CRC-32; the header+table CRC is always
// verified on open, body CRCs can be skipped (SkipChecksums) for fast
// opens of very large trusted files. Unknown section ids are ignored so
// later minor revisions can add sections without a version bump; removing
// or reshaping a section is a version bump.
//
// The mapping is PROT_READ: nothing may ever write through a loaded
// snapshot's arrays. The graph packages uphold this by construction —
// Overlay borrows snapshot arenas strictly copy-on-write, and a mutation
// of the snapshot's source graph materializes a private heap copy first
// (see graph.AdoptFlat) — so a write through the mapping would be a bug,
// and on unix it faults loudly instead of corrupting the file.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"gfd/internal/graph"
)

// Typed failure classes. Every decode failure wraps one of these; callers
// branch with errors.Is.
var (
	// ErrCorrupt reports a structurally invalid file: bad magic, lying
	// section table, checksum mismatch, truncation, or an image that
	// fails the graph-invariant validation.
	ErrCorrupt = errors.New("store: corrupt snapshot file")

	// ErrVersion reports a well-formed header whose format version or
	// byte order this build cannot decode.
	ErrVersion = errors.New("store: unsupported snapshot format version")
)

const (
	magic         = "GFDS"
	formatVersion = 1
	byteOrderMark = 0x01020304

	headerSize   = 16
	sectionEntry = 32

	// maxSections bounds the section count a decoder will consider, so a
	// lying header cannot make it allocate or scan an absurd table.
	maxSections = 64
)

// Section ids of format version 1. All are required.
const (
	secMeta      = 1  // 4 × u64: numNodes, numEdges, numSyms, numAttrPairs
	secSymBlob   = 2  // concatenated symbol name bytes
	secSymOff    = 3  // []u32, numSyms+1: offsets into symblob
	secLabels    = 4  // []graph.Sym (i32), numNodes
	secAttrOff   = 5  // []i32, numNodes+1
	secAttrPairs = 6  // []graph.AttrPair, numAttrPairs
	secOutOff    = 7  // []i32, numNodes+1
	secOut       = 8  // []graph.CSREdge, numEdges
	secInOff     = 9  // []i32, numNodes+1
	secIn        = 10 // []graph.CSREdge, numEdges
	secClassOff  = 11 // []i32, numSyms+1
	secClasses   = 12 // []graph.NodeID (i32), numNodes
	numSections  = 12
)

// The raw-dump sections rely on these layouts exactly; a field added to
// either type must bump formatVersion. The index expressions compile only
// while the sizes are 8, making the dependency a build failure instead of
// a silently incompatible file.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(graph.CSREdge{})-8]
	_ = [1]struct{}{}[unsafe.Sizeof(graph.AttrPair{})-8]
	_ = [1]struct{}{}[unsafe.Sizeof(graph.Sym(0))-4]
	_ = [1]struct{}{}[unsafe.Sizeof(graph.NodeID(0))-4]
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// options collects Open/Decode behavior toggles.
type options struct {
	skipBodyCRC bool
}

// Option configures Open and Decode.
type Option func(*options)

// SkipChecksums disables per-section body checksum verification on open.
// The header and section-table checksum is still verified, and the full
// structural validation still runs — this trades detection of bit rot
// inside array payloads for not touching every page of a very large
// mapping up front. Default is to verify everything.
func SkipChecksums() Option { return func(o *options) { o.skipBodyCRC = true } }

// corruptf wraps a decode failure detail into ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// viewOf reinterprets a byte section as a typed slice without copying.
// The caller has verified length and 8-alignment of the section start.
func viewOf[T any](b []byte, count int) []T {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), count)
}

// bytesOf reinterprets a typed slice as its raw bytes without copying.
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// sectionEntryAt parses the i-th section table entry.
func sectionEntryAt(table []byte, i int) (id uint32, off, ln uint64, crc uint32) {
	e := table[i*sectionEntry:]
	id = binary.LittleEndian.Uint32(e[0:4])
	off = binary.LittleEndian.Uint64(e[8:16])
	ln = binary.LittleEndian.Uint64(e[16:24])
	crc = binary.LittleEndian.Uint32(e[24:28])
	return
}

// Decode reconstructs a snapshot from the raw bytes of a .gfds file. The
// returned snapshot's arrays are views into data — the caller must keep
// data alive (and unmodified) for the snapshot's lifetime; Open handles
// that pairing. Decode never trusts an on-disk length: every offset and
// count is bounds-checked against len(data) and the meta section before
// any slice is formed, and the full graph-invariant validation runs before
// the snapshot is returned, so corrupt input yields ErrCorrupt (or
// ErrVersion), never a panic or an oversized allocation.
func Decode(data []byte, opts ...Option) (*graph.Snapshot, error) {
	var o options
	for _, f := range opts {
		f(&o)
	}
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Arbitrary caller-supplied buffers (fuzzing, embedded copies) may
		// be misaligned for the typed views; realign with a copy. Mappings
		// are page-aligned and never take this path.
		aligned := make([]uint64, (len(data)+7)/8)
		n := copy(unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), len(data)), data)
		data = unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), n)
	}

	if len(data) < headerSize {
		return nil, corruptf("file shorter than header (%d bytes)", len(data))
	}
	if string(data[0:4]) != magic {
		return nil, corruptf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: file is format %d, this build reads %d", ErrVersion, v, formatVersion)
	}
	if bom := *(*uint32)(unsafe.Pointer(&data[8])); bom != byteOrderMark {
		return nil, fmt.Errorf("%w: byte-order mark %#x (file written on a machine of different endianness)", ErrVersion, bom)
	}
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	if count < numSections || count > maxSections {
		return nil, corruptf("section count %d outside [%d, %d]", count, numSections, maxSections)
	}
	tableEnd := headerSize + count*sectionEntry
	if len(data) < tableEnd+4 {
		return nil, corruptf("file truncated inside section table")
	}
	if got, want := crc32.Checksum(data[:tableEnd], castagnoli), binary.LittleEndian.Uint32(data[tableEnd:tableEnd+4]); got != want {
		return nil, corruptf("header checksum mismatch (%#x != %#x)", got, want)
	}

	// Resolve the table into per-id byte sections, rejecting duplicates,
	// out-of-file ranges, and misaligned starts. Unknown ids are skipped.
	table := data[headerSize:tableEnd]
	var secs [numSections + 1][]byte
	seen := [numSections + 1]bool{}
	for i := 0; i < count; i++ {
		id, off, ln, crc := sectionEntryAt(table, i)
		if id == 0 || id > numSections {
			continue
		}
		if seen[id] {
			return nil, corruptf("duplicate section %d", id)
		}
		if off%8 != 0 || off < uint64(tableEnd+4) || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, corruptf("section %d claims [%d, +%d) outside file of %d bytes", id, off, ln, len(data))
		}
		sec := data[off : off+ln]
		if !o.skipBodyCRC {
			if got := crc32.Checksum(sec, castagnoli); got != crc {
				return nil, corruptf("section %d checksum mismatch (%#x != %#x)", id, got, crc)
			}
		}
		seen[id] = true
		secs[id] = sec
	}
	for id := 1; id <= numSections; id++ {
		if !seen[id] {
			return nil, corruptf("missing section %d", id)
		}
	}

	// Meta fixes every array's element count; each section's byte length
	// must then agree exactly. Counts are bounded to int32 territory (the
	// in-memory representation is int32-indexed) before any conversion.
	meta := secs[secMeta]
	if len(meta) != 32 {
		return nil, corruptf("meta section is %d bytes, want 32", len(meta))
	}
	var counts [4]uint64
	for i := range counts {
		counts[i] = binary.LittleEndian.Uint64(meta[i*8:])
		if counts[i] > 1<<31-1 {
			return nil, corruptf("meta count %d = %d exceeds int32", i, counts[i])
		}
	}
	numNodes, numEdges, numSyms, numPairs := int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3])
	if numSyms == 0 {
		return nil, corruptf("empty symbol table")
	}
	checkLen := func(id int, elems, elemSize int) ([]byte, error) {
		if want := uint64(elems) * uint64(elemSize); uint64(len(secs[id])) != want {
			return nil, corruptf("section %d is %d bytes, meta implies %d", id, len(secs[id]), want)
		}
		return secs[id], nil
	}

	symOffB, err := checkLen(secSymOff, numSyms+1, 4)
	if err != nil {
		return nil, err
	}
	// Symbol names are the one deep copy: one string allocation for the
	// whole blob, sliced per name. Thawed graphs and compacted overlays
	// hold interned strings long after the caller may have closed the
	// mapping, so names must never alias it; the O(|V|+|E|) arrays, which
	// only the snapshot itself holds, stay zero-copy.
	symOff := viewOf[uint32](symOffB, numSyms+1)
	blob := secs[secSymBlob]
	if symOff[0] != 0 {
		return nil, corruptf("symbol offsets start at %d", symOff[0])
	}
	for i := 1; i <= numSyms; i++ {
		if symOff[i] < symOff[i-1] {
			return nil, corruptf("symbol offsets decrease at %d", i)
		}
	}
	if int(symOff[numSyms]) != len(blob) {
		return nil, corruptf("symbol offsets end at %d, blob holds %d bytes", symOff[numSyms], len(blob))
	}
	blobStr := string(blob)
	names := make([]string, numSyms)
	for i := range names {
		names[i] = blobStr[symOff[i]:symOff[i+1]]
	}

	sections := []struct {
		id, elems, elemSize int
	}{
		{secLabels, numNodes, 4},
		{secAttrOff, numNodes + 1, 4},
		{secAttrPairs, numPairs, 8},
		{secOutOff, numNodes + 1, 4},
		{secOut, numEdges, 8},
		{secInOff, numNodes + 1, 4},
		{secIn, numEdges, 8},
		{secClassOff, numSyms + 1, 4},
		{secClasses, numNodes, 4},
	}
	for _, s := range sections {
		if _, err := checkLen(s.id, s.elems, s.elemSize); err != nil {
			return nil, err
		}
	}

	f := graph.Flat{
		Names:     names,
		Labels:    viewOf[graph.Sym](secs[secLabels], numNodes),
		AttrOff:   viewOf[int32](secs[secAttrOff], numNodes+1),
		AttrPairs: viewOf[graph.AttrPair](secs[secAttrPairs], numPairs),
		OutOff:    viewOf[int32](secs[secOutOff], numNodes+1),
		Out:       viewOf[graph.CSREdge](secs[secOut], numEdges),
		InOff:     viewOf[int32](secs[secInOff], numNodes+1),
		In:        viewOf[graph.CSREdge](secs[secIn], numEdges),
		ClassOff:  viewOf[int32](secs[secClassOff], numSyms+1),
		Classes:   viewOf[graph.NodeID](secs[secClasses], numNodes),
	}
	snap, err := graph.AdoptFlat(f)
	if err != nil {
		return nil, corruptf("invalid snapshot image: %v", err)
	}
	return snap, nil
}
