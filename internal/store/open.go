package store

import (
	"context"
	"sync"

	"gfd/internal/graph"
)

// Loaded is an open snapshot file: the decoded snapshot plus the mapping
// (or read buffer) backing its arrays. The snapshot is valid until Close;
// closing while the snapshot is still in use unmaps memory out from under
// it, so a Loaded must outlive every session and overlay derived from the
// snapshot — unless the graph has migrated off the mapping first (any
// mutation does; see graph.AdoptFlat).
type Loaded struct {
	snap   *graph.Snapshot
	unmap  func() error
	mapped bool
	once   sync.Once
	err    error
}

// Snapshot returns the loaded snapshot.
func (l *Loaded) Snapshot() *graph.Snapshot { return l.snap }

// Mapped reports whether the arrays are zero-copy views over a memory
// mapping (true on unix) or a heap buffer fallback.
func (l *Loaded) Mapped() bool { return l.mapped }

// Close releases the mapping. Idempotent; returns the first error.
func (l *Loaded) Close() error {
	l.once.Do(func() {
		if l.unmap != nil {
			l.err = l.unmap()
		}
	})
	return l.err
}

// Open maps the file at path read-only and decodes it (see Decode for the
// validation contract). On unix the snapshot's arrays are zero-copy views
// over a PROT_READ mapping — open cost is page-table setup plus the
// validation scan, independent of how much of the graph is ever touched;
// elsewhere the file is read into memory. The returned Loaded owns the
// mapping; see its contract for lifetime. Cancellation is honored at the
// syscall boundaries.
func Open(ctx context.Context, path string, opts ...Option) (*Loaded, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, unmap, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		unmap()
		return nil, err
	}
	snap, err := Decode(data, opts...)
	if err != nil {
		unmap()
		return nil, err
	}
	return &Loaded{snap: snap, unmap: unmap, mapped: mapped}, nil
}
