package store_test

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/store"
)

// FuzzDecode throws arbitrary bytes at the decoder. The contract under
// fuzzing: Decode either returns a structurally valid snapshot or a typed
// error (ErrCorrupt / ErrVersion) — never a panic, never an allocation
// sized from an unvalidated on-disk length (a lying length would either
// fail a bounds check or OOM the fuzzer, which counts as a crash). A
// returned snapshot must survive a full accessor walk.
func FuzzDecode(f *testing.F) {
	// Seed with a pristine file and targeted mutations of it, so the
	// fuzzer starts at the format's cliff edges instead of random noise.
	g := graph.New(8, 16)
	a := g.AddNode("person", graph.Attrs{"name": "ann"})
	b := g.AddNode("person", graph.Attrs{"name": "bob"})
	c := g.AddNode("city", nil)
	g.MustAddEdge(a, b, "knows")
	g.MustAddEdge(a, c, "in")
	g.MustAddEdge(b, c, "in")
	path := filepath.Join(f.TempDir(), "seed.gfds")
	if err := store.Save(context.Background(), g.Freeze(), path); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:17])
	f.Add([]byte("GFDS"))
	f.Add([]byte{})
	// Shard-sized degenerates: an empty fragment shard (full node table,
	// zero-length attribute and adjacency sections — what the distributed
	// runtime writes for a fragment owning nothing) and the zero-node
	// snapshot. Seeding them puts the fuzzer right at the zero-length
	// section edges.
	shardPaths, err := fragment.SaveShards(context.Background(), g.Freeze(),
		make([]int, g.NumNodes()), 2, f.TempDir(), "shard")
	if err != nil {
		f.Fatal(err)
	}
	emptyShard, err := os.ReadFile(shardPaths[1])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(emptyShard)
	zeroNode := filepath.Join(f.TempDir(), "zero.gfds")
	if err := store.Save(context.Background(), graph.New(0, 0).Freeze(), zeroNode); err != nil {
		f.Fatal(err)
	}
	zn, err := os.ReadFile(zeroNode)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(zn)
	for _, mut := range []func([]byte){
		func(b []byte) { binary.LittleEndian.PutUint32(b[4:8], 2) },         // future version
		func(b []byte) { binary.LittleEndian.PutUint32(b[12:16], 64) },      // count high
		func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<60) },     // huge offset
		func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 1<<60) },     // huge length
		func(b []byte) { b[len(b)-1] ^= 0xff },                              // tail flip
		func(b []byte) { binary.LittleEndian.PutUint64(b[16+32+16:], 1e9) }, // lying section len
	} {
		c := append([]byte(nil), good...)
		mut(c)
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := store.Decode(data)
		if err != nil {
			if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: the snapshot must be internally consistent
		// enough to walk every accessor without panicking.
		n := s.NumNodes()
		syms := s.Syms()
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			_ = syms.Name(s.Label(id))
			for _, e := range s.Out(id) {
				_ = syms.Name(e.Label)
				_ = s.Label(e.To)
			}
			for _, e := range s.In(id) {
				_ = s.Label(e.To)
			}
			for _, p := range s.AttrPairs(id) {
				_ = syms.Name(p.Name)
				_ = syms.Name(p.Val)
			}
		}
		for l := 0; l < syms.Len(); l++ {
			for _, v := range s.NodesWith(graph.Sym(l)) {
				if s.Label(v) != graph.Sym(l) {
					t.Fatalf("class %d contains node %d labeled %d", l, v, s.Label(v))
				}
			}
		}
	})
}
