package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"gfd/internal/graph"
)

// Save writes the snapshot to path in the .gfds format, atomically: the
// bytes go to a temp file in the target directory, are fsynced, and the
// rename (plus a directory fsync) publishes the file — a crash mid-save
// leaves either the old file or none, never a torn one. The array
// sections are written straight from the snapshot's backing storage (no
// staging copy); output is deterministic for a given snapshot, so a
// serial and a parallel freeze of the same graph save byte-identical
// files. Cancellation is checked between sections; a canceled save
// removes its temp file and returns ctx.Err().
func Save(ctx context.Context, s *graph.Snapshot, path string) (err error) {
	if s == nil {
		return fmt.Errorf("store: cannot save nil snapshot")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f := s.Flat()

	// Symbol table sections are the only assembled payloads; everything
	// else dumps an existing array.
	symOff := make([]uint32, len(f.Names)+1)
	total := 0
	for i, n := range f.Names {
		total += len(n)
		symOff[i+1] = uint32(total)
	}
	blob := make([]byte, 0, total)
	for _, n := range f.Names {
		blob = append(blob, n...)
	}
	var meta [32]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(len(f.Labels)))
	binary.LittleEndian.PutUint64(meta[8:], uint64(len(f.Out)))
	binary.LittleEndian.PutUint64(meta[16:], uint64(len(f.Names)))
	binary.LittleEndian.PutUint64(meta[24:], uint64(len(f.AttrPairs)))

	payloads := [numSections][]byte{
		secMeta - 1:      meta[:],
		secSymBlob - 1:   blob,
		secSymOff - 1:    bytesOf(symOff),
		secLabels - 1:    bytesOf(f.Labels),
		secAttrOff - 1:   bytesOf(f.AttrOff),
		secAttrPairs - 1: bytesOf(f.AttrPairs),
		secOutOff - 1:    bytesOf(f.OutOff),
		secOut - 1:       bytesOf(f.Out),
		secInOff - 1:     bytesOf(f.InOff),
		secIn - 1:        bytesOf(f.In),
		secClassOff - 1:  bytesOf(f.ClassOff),
		secClasses - 1:   bytesOf(f.Classes),
	}

	// Lay out sections and build the header + table in memory (a few KB),
	// so the file is written front to back in one pass.
	tableEnd := headerSize + numSections*sectionEntry
	head := make([]byte, tableEnd+4)
	copy(head[0:4], magic)
	binary.LittleEndian.PutUint32(head[4:8], formatVersion)
	bom := uint32(byteOrderMark)
	copy(head[8:12], bytesOf([]uint32{bom}))
	binary.LittleEndian.PutUint32(head[12:16], numSections)
	pos := align8(tableEnd + 4)
	offsets := [numSections]int{}
	for i, p := range payloads {
		e := head[headerSize+i*sectionEntry:]
		binary.LittleEndian.PutUint32(e[0:4], uint32(i+1))
		binary.LittleEndian.PutUint64(e[8:16], uint64(pos))
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(p)))
		binary.LittleEndian.PutUint32(e[24:28], crc32.Checksum(p, castagnoli))
		offsets[i] = pos
		pos = align8(pos + len(p))
	}
	binary.LittleEndian.PutUint32(head[tableEnd:], crc32.Checksum(head[:tableEnd], castagnoli))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gfds-tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err = w.Write(head); err != nil {
		return err
	}
	written := len(head)
	var pad [8]byte
	for i, p := range payloads {
		if err = ctx.Err(); err != nil {
			return err
		}
		if gap := offsets[i] - written; gap > 0 {
			if _, err = w.Write(pad[:gap]); err != nil {
				return err
			}
			written += gap
		}
		if _, err = w.Write(p); err != nil {
			return err
		}
		written += len(p)
	}
	if err = w.Flush(); err != nil {
		return err
	}
	// fsync-on-save: the data must be durable before the rename publishes
	// it, and the rename itself before Save reports success.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		// Directory fsync makes the rename durable; some filesystems
		// reject Sync on a directory handle, which is not a save failure.
		d.Sync()
		d.Close()
	}
	return nil
}
