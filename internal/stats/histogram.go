// Package stats provides the statistics substrate the workload estimator
// relies on: equi-depth histograms over candidate sets (used by bPar to
// derive m-balanced range partitions, Section 6.1) and degree/skew
// statistics over graphs (used by the skew experiments of the Appendix).
package stats

import (
	"sort"

	"gfd/internal/graph"
)

// Range is a half-open slice [Lo, Hi) of a sorted candidate list. Workload
// estimation messages carry ranges rather than explicit candidate lists.
type Range struct {
	Lo, Hi int
}

// Len returns the number of candidates covered by the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// EquiDepth partitions n sorted candidates into at most m ranges of nearly
// equal cardinality (an m-balanced partition in the paper's terminology).
// It returns fewer than m ranges when n < m.
func EquiDepth(n, m int) []Range {
	if n <= 0 || m <= 0 {
		return nil
	}
	if m > n {
		m = n
	}
	out := make([]Range, 0, m)
	base, rem := n/m, n%m
	lo := 0
	for i := 0; i < m; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// EquiDepthByValue partitions candidates into at most m ranges balanced by
// cardinality after sorting by the given attribute value (candidates
// missing the attribute sort first by ID). This mirrors the paper's
// equi-depth histogram over a selected attribute of C(µ(z)); the returned
// order is the sorted candidate list the ranges index into.
func EquiDepthByValue(g *graph.Graph, candidates []graph.NodeID, attr string, m int) ([]graph.NodeID, []Range) {
	sorted := append([]graph.NodeID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool {
		vi, oki := g.Attr(sorted[i], attr)
		vj, okj := g.Attr(sorted[j], attr)
		switch {
		case oki != okj:
			return !oki // missing first
		case vi != vj:
			return vi < vj
		default:
			return sorted[i] < sorted[j]
		}
	})
	return sorted, EquiDepth(len(sorted), m)
}

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Max    int
	Mean   float64
	P50    int
	P90    int
	P99    int
	Gini   float64 // inequality of the degree distribution, 0 = uniform
	SkewDM float64 // |G_dm| / |G_dm'|: mean size of bottom-10% vs top-10% d-hop neighborhoods
}

// Degrees computes degree statistics for g. The SkewDM measure follows the
// Appendix: the ratio of the average size of the 10% smallest d-hop
// neighborhoods to the 10% largest (d fixed at 1 here for tractability;
// the generators control the true d=3 skew knob).
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	deg := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		deg[i] = g.Degree(graph.NodeID(i))
		total += deg[i]
	}
	sort.Ints(deg)
	pick := func(q float64) int { return deg[min(n-1, int(q*float64(n)))] }
	ds := DegreeStats{
		Max:  deg[n-1],
		Mean: float64(total) / float64(n),
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
	}
	// Gini coefficient over degrees.
	if total > 0 {
		var cum float64
		for i, d := range deg {
			cum += float64(d) * float64(2*(i+1)-n-1)
		}
		ds.Gini = cum / (float64(n) * float64(total))
	}
	tenth := max(1, n/10)
	var small, large int
	for i := 0; i < tenth; i++ {
		small += deg[i] + 1
		large += deg[n-1-i] + 1
	}
	ds.SkewDM = float64(small) / float64(large)
	return ds
}
