package stats

import (
	"fmt"
	"testing"
	"testing/quick"

	"gfd/internal/gen"
	"gfd/internal/graph"
)

func TestEquiDepthBasic(t *testing.T) {
	rs := EquiDepth(10, 3)
	if len(rs) != 3 {
		t.Fatalf("ranges = %d", len(rs))
	}
	// Sizes 4,3,3 covering [0,10).
	if rs[0].Len() != 4 || rs[1].Len() != 3 || rs[2].Len() != 3 {
		t.Errorf("range sizes = %d,%d,%d", rs[0].Len(), rs[1].Len(), rs[2].Len())
	}
	if rs[0].Lo != 0 || rs[2].Hi != 10 {
		t.Errorf("coverage = [%d,%d)", rs[0].Lo, rs[2].Hi)
	}
}

func TestEquiDepthEdgeCases(t *testing.T) {
	if EquiDepth(0, 3) != nil {
		t.Error("empty input yields no ranges")
	}
	if EquiDepth(5, 0) != nil {
		t.Error("zero ranges yields nil")
	}
	if got := EquiDepth(2, 5); len(got) != 2 {
		t.Errorf("m > n must clamp: %d ranges", len(got))
	}
}

func TestEquiDepthCoversExactlyProperty(t *testing.T) {
	f := func(nRaw, mRaw uint16) bool {
		n, m := int(nRaw%5000)+1, int(mRaw%64)+1
		rs := EquiDepth(n, m)
		pos := 0
		for _, r := range rs {
			if r.Lo != pos || r.Hi < r.Lo {
				return false
			}
			pos = r.Hi
		}
		if pos != n {
			return false
		}
		// Balance: sizes differ by at most 1.
		min, max := n, 0
		for _, r := range rs {
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquiDepthByValue(t *testing.T) {
	g := graph.New(0, 0)
	var ids []graph.NodeID
	for i := 0; i < 9; i++ {
		ids = append(ids, g.AddNode("n", graph.Attrs{"val": fmt.Sprintf("%d", 9-i)}))
	}
	// One node missing the attribute sorts first.
	ids = append(ids, g.AddNode("n", nil))
	sorted, rs := EquiDepthByValue(g, ids, "val", 2)
	if len(sorted) != 10 || len(rs) != 2 {
		t.Fatalf("sorted=%d ranges=%d", len(sorted), len(rs))
	}
	if sorted[0] != ids[9] {
		t.Error("missing-attribute node must sort first")
	}
	// Values ascend lexicographically afterwards.
	prev := ""
	for _, id := range sorted[1:] {
		v, _ := g.Attr(id, "val")
		if v < prev {
			t.Errorf("sort order broken at %q < %q", v, prev)
		}
		prev = v
	}
}

func TestDegreesOnKnownGraph(t *testing.T) {
	g := graph.New(0, 0)
	hub := g.AddNode("h", nil)
	for i := 0; i < 9; i++ {
		v := g.AddNode("s", nil)
		g.MustAddEdge(hub, v, "e")
	}
	ds := Degrees(g)
	if ds.Max != 9 {
		t.Errorf("Max = %d", ds.Max)
	}
	if ds.Mean != 1.8 { // 18 endpoints over 10 nodes
		t.Errorf("Mean = %v", ds.Mean)
	}
	if ds.P50 != 1 {
		t.Errorf("P50 = %d", ds.P50)
	}
	if ds.Gini <= 0 {
		t.Errorf("hub-and-spoke must have positive Gini, got %v", ds.Gini)
	}
	if ds.SkewDM <= 0 || ds.SkewDM > 1 {
		t.Errorf("SkewDM = %v outside (0,1]", ds.SkewDM)
	}
}

func TestDegreesEmptyGraph(t *testing.T) {
	ds := Degrees(graph.New(0, 0))
	if ds.Max != 0 || ds.Mean != 0 {
		t.Error("empty graph stats must be zero")
	}
}

func TestSkewKnobOrdersSkewDM(t *testing.T) {
	flat := gen.Synthetic(gen.SyntheticConfig{Nodes: 3000, Edges: 9000, Skew: 0.0, Seed: 1})
	skewed := gen.Synthetic(gen.SyntheticConfig{Nodes: 3000, Edges: 9000, Skew: 0.9, Seed: 1})
	dsFlat, dsSkewed := Degrees(flat), Degrees(skewed)
	if dsSkewed.SkewDM >= dsFlat.SkewDM {
		t.Errorf("higher Skew must yield smaller SkewDM: %v vs %v", dsSkewed.SkewDM, dsFlat.SkewDM)
	}
	if dsSkewed.Max <= dsFlat.Max {
		t.Errorf("higher Skew must yield larger hubs: %d vs %d", dsSkewed.Max, dsFlat.Max)
	}
}
