// Package fault is the deterministic fault-injection registry the
// chaos-differential suite drives the runtime with. The paper's parallel
// algorithms ran on a 20-node EC2 cluster where worker loss and stragglers
// are the steady state; this package lets the in-process runtime rehearse
// exactly those failures — a worker panicking mid-unit, a unit stalling
// past its deadline, a crash inside match enumeration, literal evaluation,
// or a simulated shipment — without build tags, sleeps-and-prayers, or
// nondeterministic monkey processes.
//
// # Plans and injectors
//
// A Plan is an immutable, declarative fault specification:
//
//	plan := fault.NewPlan(42).
//	        KillWorker(1, 0).                       // worker 1 dies starting its 1st unit
//	        DelayUnit(7, 5*time.Millisecond).       // unit 7's first attempt stalls
//	        PanicAt(fault.Match, 100)               // 100th match crossing panics
//
// Arming a plan (Plan.Arm) produces an Injector holding the run-local
// crossing counters; the runtime threads the injector through its
// goroutine fan-outs and calls Injector.Cross at each instrumented site.
// A nil injector makes every crossing a nil-check no-op — production runs
// arm nothing and pay nothing (the benchdiff gate pins this).
//
// # Deterministic replay
//
// Replay is a property of the armed run, not of wall clock or scheduler
// luck: every rule fires on a counted crossing (the k-th unit a worker
// starts, the first attempt of unit u, the N-th crossing of a site), each
// rule fires exactly once per armed injector, and panics carry a typed
// Injected value naming the rule that fired. Re-arming the same plan over
// the same workload re-injects the same faults; a randomized plan is fully
// determined by its seed (FromSeed), so a failing chaos case is reproduced
// by logging one int64 and re-running. Counted crossings make the single
// concession to concurrency explicit: which worker observes the N-th
// global crossing of a shared site may vary between schedules, but the
// fault still fires exactly once, and the recovery machinery must converge
// to the same violation set regardless — which is precisely the invariant
// the differential suite checks.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one instrumented crossing in the runtime.
type Site uint8

const (
	// UnitStart is crossed by a worker about to execute a work unit
	// (validation engines), after the unit's attempt is charged.
	UnitStart Site = iota
	// Match is crossed once per pattern match delivered by the enumerator.
	Match
	// Literal is crossed once per dependency (literal-program) evaluation.
	Literal
	// Ship is crossed once per simulated data shipment (cluster.Ship).
	Ship
	// FreezeShard is crossed once per parallel-freeze shard task.
	FreezeShard
	// ProcUnit is crossed by a worker *process* starting an assigned unit
	// (internal/dist). Unlike UnitStart it never panics: the query API
	// (Injector.ProcKill) reports whether the process should exit, so the
	// child controls its own exit status.
	ProcUnit
	// PipeFrame is crossed once per outbound wire frame a worker process
	// writes (internal/dist). Queried via Injector.CrossPipe for stall and
	// truncation faults.
	PipeFrame

	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case UnitStart:
		return "unit-start"
	case Match:
		return "match"
	case Literal:
		return "literal"
	case Ship:
		return "ship"
	case FreezeShard:
		return "freeze-shard"
	case ProcUnit:
		return "proc-unit"
	case PipeFrame:
		return "pipe-frame"
	}
	return "unknown"
}

// Injected is the panic value an armed injector raises. The recovery
// machinery treats it like any other panic (a fault is a fault); tests use
// it to assert that a recovered failure was the injected one and not a
// genuine bug.
type Injected struct {
	Site   Site
	Worker int // worker observing the crossing; -1 when siteless
	Unit   int // unit being executed; -1 when not unit-scoped
}

// Error makes an Injected usable as an error value after recovery.
func (i Injected) Error() string {
	return fmt.Sprintf("fault: injected %s panic (worker %d, unit %d)", i.Site, i.Worker, i.Unit)
}

type action uint8

const (
	actKill action = iota
	actDelay
	actPanic
	actKillProc // process exits at the k-th unit it starts
	actStall    // frame write stalls (holding the writer) before the k-th frame
	actTruncate // the k-th frame is written truncated and the process exits
)

// rule is one declarative fault of a plan.
type rule struct {
	act    action
	site   Site
	worker int           // actKill: the worker to kill
	nth    int64         // actKill: per-worker unit ordinal (1-based); actPanic: site crossing ordinal (1-based)
	unit   int           // actDelay: unit index
	delay  time.Duration // actDelay
}

// Plan is an immutable fault specification. The zero value and nil inject
// nothing; build one with NewPlan (or FromSeed) and the chainable rule
// methods, then hand it to Options.Inject (validation engines) or arm it
// directly for other subsystems.
type Plan struct {
	seed  int64
	rules []rule
}

// NewPlan returns an empty plan tagged with a seed (recorded for replay
// logging; FromSeed derives the rules from it too).
func NewPlan(seed int64) *Plan { return &Plan{seed: seed} }

// Seed returns the plan's seed tag.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// KillWorker makes worker w panic when it starts its k-th unit (0-based:
// k = 0 kills it on its very first unit). The panic fires once per armed
// injector; the ordinal counts UnitStart crossings by that worker.
func (p *Plan) KillWorker(w, k int) *Plan {
	p.rules = append(p.rules, rule{act: actKill, site: UnitStart, worker: w, nth: int64(k) + 1})
	return p
}

// DelayUnit stalls the first attempt of unit index u by d — the straggler
// fault. Combined with Options.UnitDeadline < d, the first attempt times
// out and the retry (which is not delayed — the rule fires once) succeeds.
func (p *Plan) DelayUnit(u int, d time.Duration) *Plan {
	p.rules = append(p.rules, rule{act: actDelay, site: UnitStart, unit: u, delay: d})
	return p
}

// PanicAt panics at the n-th crossing (1-based) of site, firing once per
// armed injector.
func (p *Plan) PanicAt(site Site, n int) *Plan {
	p.rules = append(p.rules, rule{act: actPanic, site: site, nth: int64(n)})
	return p
}

// KillProcess makes worker *process* w exit when it starts its k-th
// assigned unit (0-based). Unlike KillWorker it does not panic: the worker
// queries Injector.ProcKill at unit start and exits with a distinct status,
// which is what a SIGKILLed or crashed child looks like to the coordinator.
func (p *Plan) KillProcess(w, k int) *Plan {
	p.rules = append(p.rules, rule{act: actKillProc, site: ProcUnit, worker: w, nth: int64(k) + 1})
	return p
}

// StallPipe makes worker process w sleep d before writing its k-th
// outbound wire frame (0-based), while holding the frame writer — so
// heartbeats starve too and the coordinator's liveness monitor must kill
// the process. The sleep fires once per armed injector.
func (p *Plan) StallPipe(w, k int, d time.Duration) *Plan {
	p.rules = append(p.rules, rule{act: actStall, site: PipeFrame, worker: w, nth: int64(k) + 1, delay: d})
	return p
}

// TruncateMessage makes worker process w write only a prefix of its k-th
// outbound frame (0-based) and then exit: a torn frame is what death
// mid-write looks like, and the coordinator must drop the partial frame
// rather than decode garbage.
func (p *Plan) TruncateMessage(w, k int) *Plan {
	p.rules = append(p.rules, rule{act: actTruncate, site: PipeFrame, worker: w, nth: int64(k) + 1})
	return p
}

// Len returns the number of faults in the plan.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.rules)
}

// String summarizes the plan for logs and failing-test output.
func (p *Plan) String() string {
	if p == nil || len(p.rules) == 0 {
		return "fault.Plan{}"
	}
	s := fmt.Sprintf("fault.Plan{seed=%d", p.seed)
	for _, r := range p.rules {
		switch r.act {
		case actKill:
			s += fmt.Sprintf(", kill(w%d@unit#%d)", r.worker, r.nth-1)
		case actDelay:
			s += fmt.Sprintf(", delay(u%d,%v)", r.unit, r.delay)
		case actPanic:
			s += fmt.Sprintf(", panic(%s#%d)", r.site, r.nth)
		case actKillProc:
			s += fmt.Sprintf(", killproc(w%d@unit#%d)", r.worker, r.nth-1)
		case actStall:
			s += fmt.Sprintf(", stall(w%d@frame#%d,%v)", r.worker, r.nth-1, r.delay)
		case actTruncate:
			s += fmt.Sprintf(", trunc(w%d@frame#%d)", r.worker, r.nth-1)
		}
	}
	return s + "}"
}

// Encode serializes the plan into a compact single-line form suitable for
// an environment variable — how the coordinator arms a seeded plan inside a
// worker child so process faults replay deterministically. DecodePlan is
// the inverse. A nil or empty plan encodes to "".
func (p *Plan) Encode() string {
	if p == nil || len(p.rules) == 0 {
		return ""
	}
	s := fmt.Sprintf("v1;seed=%d", p.seed)
	for _, r := range p.rules {
		switch r.act {
		case actKill:
			s += fmt.Sprintf(";kill,%d,%d", r.worker, r.nth)
		case actDelay:
			s += fmt.Sprintf(";delay,%d,%d", r.unit, int64(r.delay))
		case actPanic:
			s += fmt.Sprintf(";panic,%d,%d", uint8(r.site), r.nth)
		case actKillProc:
			s += fmt.Sprintf(";killproc,%d,%d", r.worker, r.nth)
		case actStall:
			s += fmt.Sprintf(";stall,%d,%d,%d", r.worker, r.nth, int64(r.delay))
		case actTruncate:
			s += fmt.Sprintf(";trunc,%d,%d", r.worker, r.nth)
		}
	}
	return s
}

// DecodePlan parses a Plan.Encode string. "" decodes to nil (no plan).
func DecodePlan(s string) (*Plan, error) {
	if s == "" {
		return nil, nil
	}
	fields := strings.Split(s, ";")
	if fields[0] != "v1" {
		return nil, fmt.Errorf("fault: unknown plan encoding %q", fields[0])
	}
	p := &Plan{}
	for _, f := range fields[1:] {
		if seed, ok := strings.CutPrefix(f, "seed="); ok {
			v, err := strconv.ParseInt(seed, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad plan seed %q", seed)
			}
			p.seed = v
			continue
		}
		parts := strings.Split(f, ",")
		args := make([]int64, 0, 3)
		for _, a := range parts[1:] {
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad plan field %q", f)
			}
			args = append(args, v)
		}
		bad := func() (*Plan, error) { return nil, fmt.Errorf("fault: bad plan field %q", f) }
		switch parts[0] {
		case "kill":
			if len(args) != 2 {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actKill, site: UnitStart, worker: int(args[0]), nth: args[1]})
		case "delay":
			if len(args) != 2 {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actDelay, site: UnitStart, unit: int(args[0]), delay: time.Duration(args[1])})
		case "panic":
			if len(args) != 2 || args[0] < 0 || args[0] >= int64(numSites) {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actPanic, site: Site(args[0]), nth: args[1]})
		case "killproc":
			if len(args) != 2 {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actKillProc, site: ProcUnit, worker: int(args[0]), nth: args[1]})
		case "stall":
			if len(args) != 3 {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actStall, site: PipeFrame, worker: int(args[0]), nth: args[1], delay: time.Duration(args[2])})
		case "trunc":
			if len(args) != 2 {
				return bad()
			}
			p.rules = append(p.rules, rule{act: actTruncate, site: PipeFrame, worker: int(args[0]), nth: args[1]})
		default:
			return bad()
		}
	}
	return p, nil
}

// FromSeed derives a pseudo-random recoverable plan for a run with the
// given worker and unit counts: one or two faults drawn from worker kills,
// unit delays, and match/literal-crossing panics. The same seed always
// yields the same plan — the chaos suite sweeps seeds and logs only the
// seed on failure.
func FromSeed(seed int64, workers, units int) *Plan {
	if workers < 1 {
		workers = 1
	}
	if units < 1 {
		units = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan(seed)
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			p.KillWorker(rng.Intn(workers), rng.Intn(3))
		case 1:
			p.DelayUnit(rng.Intn(units), time.Duration(1+rng.Intn(4))*time.Millisecond)
		case 2:
			p.PanicAt(Match, 1+rng.Intn(64))
		case 3:
			p.PanicAt(Literal, 1+rng.Intn(32))
		}
	}
	return p
}

// FromSeedProc derives a pseudo-random *recoverable* process-fault plan
// for a distributed run: one or two faults drawn from process kills, pipe
// stalls, truncated frames, and unit delays. Stall durations are far above
// any sane heartbeat interval, so the coordinator's liveness monitor —
// not the sleep expiring — is what ends the stalled process. Like
// FromSeed, the same seed always yields the same plan.
func FromSeedProc(seed int64, workers, units int) *Plan {
	if workers < 1 {
		workers = 1
	}
	if units < 1 {
		units = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan(seed)
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			p.KillProcess(rng.Intn(workers), rng.Intn(3))
		case 1:
			p.StallPipe(rng.Intn(workers), rng.Intn(6), 30*time.Second)
		case 2:
			p.TruncateMessage(rng.Intn(workers), rng.Intn(6))
		case 3:
			p.DelayUnit(rng.Intn(units), time.Duration(1+rng.Intn(4))*time.Millisecond)
		}
	}
	return p
}

// armedRule is one rule plus its fired latch.
type armedRule struct {
	rule
	fired atomic.Bool
}

// Injector is a plan armed for one run: the rules plus run-local crossing
// counters. It is safe for concurrent use by every worker of the run; a
// nil *Injector is a valid no-op (Cross nil-checks), which is what an
// unarmed production run carries.
type Injector struct {
	plan       *Plan
	rules      []*armedRule
	siteCounts [numSites]atomic.Int64
	workerUnit []atomic.Int64 // UnitStart crossings per worker
	procUnit   []atomic.Int64 // ProcUnit crossings per worker process
	pipeFrames []atomic.Int64 // PipeFrame crossings per worker process
}

// Arm binds the plan to a run with the given worker count, resetting every
// crossing counter. A nil plan (or one with no rules) arms to nil, so the
// injection points compile down to a nil check.
func (p *Plan) Arm(workers int) *Injector {
	if p == nil || len(p.rules) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	in := &Injector{
		plan:       p,
		workerUnit: make([]atomic.Int64, workers),
		procUnit:   make([]atomic.Int64, workers),
		pipeFrames: make([]atomic.Int64, workers),
	}
	in.rules = make([]*armedRule, len(p.rules))
	for i := range p.rules {
		in.rules[i] = &armedRule{rule: p.rules[i]}
	}
	return in
}

// Plan returns the armed plan.
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// Cross is the injection point: the runtime calls it with the site being
// crossed, the observing worker (or -1), and the unit being executed (or
// -1). It returns immediately on a nil receiver; otherwise it advances the
// crossing counters and fires any matching un-fired rule — a panic
// (Injected value) for kills and site panics, a sleep for delays. Each
// rule fires at most once per armed injector.
func (in *Injector) Cross(site Site, worker, unit int) {
	if in == nil {
		return
	}
	n := in.siteCounts[site].Add(1)
	var wn int64
	if site == UnitStart && worker >= 0 && worker < len(in.workerUnit) {
		wn = in.workerUnit[worker].Add(1)
	}
	for _, r := range in.rules {
		if r.site != site || r.fired.Load() {
			continue
		}
		switch r.act {
		case actKill:
			if worker == r.worker && wn == r.nth && r.fired.CompareAndSwap(false, true) {
				panic(Injected{Site: site, Worker: worker, Unit: unit})
			}
		case actDelay:
			if unit == r.unit && r.fired.CompareAndSwap(false, true) {
				time.Sleep(r.delay)
			}
		case actPanic:
			if n == r.nth && r.fired.CompareAndSwap(false, true) {
				panic(Injected{Site: site, Worker: worker, Unit: unit})
			}
		}
	}
}

// ProcKill is the worker-process injection point for KillProcess rules:
// the child calls it when starting an assigned unit and exits (with a
// distinct status) when it returns true. It never panics — the caller owns
// the exit — and a nil receiver reports false. The delay rules of the plan
// (DelayUnit) still fire through Cross(UnitStart, ...); ProcKill counts a
// separate per-process ordinal so an in-process KillWorker plan and a
// process-kill plan don't alias.
func (in *Injector) ProcKill(worker, unit int) bool {
	if in == nil {
		return false
	}
	in.siteCounts[ProcUnit].Add(1)
	var wn int64
	if worker >= 0 && worker < len(in.procUnit) {
		wn = in.procUnit[worker].Add(1)
	}
	for _, r := range in.rules {
		if r.act != actKillProc || r.fired.Load() {
			continue
		}
		if worker == r.worker && wn == r.nth && r.fired.CompareAndSwap(false, true) {
			return true
		}
	}
	return false
}

// CrossPipe is the worker-process injection point for outbound wire
// frames: the frame writer calls it before writing each frame. It returns
// the stall to sleep (while holding the writer, so heartbeats starve) and
// whether the frame must be written truncated followed by process exit.
// A nil receiver reports no faults.
func (in *Injector) CrossPipe(worker int) (stall time.Duration, truncate bool) {
	if in == nil {
		return 0, false
	}
	in.siteCounts[PipeFrame].Add(1)
	var wn int64
	if worker >= 0 && worker < len(in.pipeFrames) {
		wn = in.pipeFrames[worker].Add(1)
	}
	for _, r := range in.rules {
		if r.fired.Load() || r.worker != worker || r.nth != wn {
			continue
		}
		switch r.act {
		case actStall:
			if r.fired.CompareAndSwap(false, true) {
				stall = r.delay
			}
		case actTruncate:
			if r.fired.CompareAndSwap(false, true) {
				truncate = true
			}
		}
	}
	return stall, truncate
}

// Fired reports how many of the plan's rules have fired so far — tests
// assert the fault actually happened (a plan that never fires makes a
// recovery test vacuous).
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	fired := 0
	for _, r := range in.rules {
		if r.fired.Load() {
			fired++
		}
	}
	return fired
}
