package fault

import (
	"sync"
	"testing"
	"time"
)

// recoverInjected runs fn and returns the Injected value it panicked with,
// or nil.
func recoverInjected(fn func()) (out *Injected) {
	defer func() {
		if r := recover(); r != nil {
			inj := r.(Injected)
			out = &inj
		}
	}()
	fn()
	return nil
}

func TestKillWorkerFiresOnOrdinal(t *testing.T) {
	in := NewPlan(1).KillWorker(2, 1).Arm(4)
	// Worker 2's first unit passes, the second panics; other workers never
	// trip it.
	if p := recoverInjected(func() { in.Cross(UnitStart, 0, 0) }); p != nil {
		t.Fatalf("worker 0 tripped a kill aimed at worker 2: %v", p)
	}
	if p := recoverInjected(func() { in.Cross(UnitStart, 2, 5) }); p != nil {
		t.Fatalf("kill fired on worker 2's first unit, want second: %v", p)
	}
	p := recoverInjected(func() { in.Cross(UnitStart, 2, 6) })
	if p == nil {
		t.Fatal("kill did not fire on worker 2's second unit")
	}
	if p.Worker != 2 || p.Unit != 6 || p.Site != UnitStart {
		t.Fatalf("injected value = %+v", p)
	}
	// Fires once: the next crossing is clean.
	if p := recoverInjected(func() { in.Cross(UnitStart, 2, 7) }); p != nil {
		t.Fatalf("kill fired twice: %v", p)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestPanicAtNthCrossing(t *testing.T) {
	in := NewPlan(1).PanicAt(Match, 3).Arm(2)
	for i := 0; i < 2; i++ {
		if p := recoverInjected(func() { in.Cross(Match, 0, 0) }); p != nil {
			t.Fatalf("panic fired at crossing %d, want 3", i+1)
		}
	}
	if p := recoverInjected(func() { in.Cross(Match, 1, 9) }); p == nil {
		t.Fatal("panic did not fire at the 3rd crossing")
	}
	if p := recoverInjected(func() { in.Cross(Match, 1, 9) }); p != nil {
		t.Fatal("panic fired twice")
	}
}

func TestDelayUnitFiresOnce(t *testing.T) {
	d := 30 * time.Millisecond
	in := NewPlan(1).DelayUnit(4, d).Arm(2)
	start := time.Now()
	in.Cross(UnitStart, 0, 4)
	if got := time.Since(start); got < d {
		t.Fatalf("first crossing of unit 4 slept %v, want >= %v", got, d)
	}
	start = time.Now()
	in.Cross(UnitStart, 1, 4) // retry: rule already fired
	if got := time.Since(start); got > d/2 {
		t.Fatalf("second crossing of unit 4 slept %v, want ~0", got)
	}
}

func TestNilAndEmptyPlansAreNoOps(t *testing.T) {
	var p *Plan
	if in := p.Arm(4); in != nil {
		t.Fatal("nil plan armed to a non-nil injector")
	}
	if in := NewPlan(9).Arm(4); in != nil {
		t.Fatal("empty plan armed to a non-nil injector")
	}
	var in *Injector
	in.Cross(Match, 0, 0) // must not panic
	if in.Fired() != 0 {
		t.Fatal("nil injector reports fired rules")
	}
}

func TestFromSeedIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := FromSeed(seed, 4, 100), FromSeed(seed, 4, 100)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %s != %s", seed, a, b)
		}
		if a.Len() == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
	}
	if FromSeed(1, 4, 100).String() == FromSeed(2, 4, 100).String() {
		t.Skip("seeds 1 and 2 collide (allowed, but suspicious)")
	}
}

func TestConcurrentCrossingsFireExactlyOnce(t *testing.T) {
	in := NewPlan(1).PanicAt(Ship, 500).Arm(8)
	var fired atomic32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p := recoverInjected(func() { in.Cross(Ship, w, -1) }); p != nil {
					fired.add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := fired.load(); got != 1 {
		t.Fatalf("rule fired %d times across concurrent crossings, want 1", got)
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
