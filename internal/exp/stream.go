package exp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"gfd/internal/validate"
)

// Stream measures the payoff of the pull-based Violations iterator:
// time-to-first-K against the full collect-everything Detect wall on the
// same prepared workload (replicated engine, n = 8). The fused pipeline
// exists so a consumer that needs one violation does not pay for the whole
// run — first_1's frac_of_full cell is that claim as a number (the
// acceptance bar is ≤ 0.2: first violation at least 5× below the full
// wall), and the benchmark gate watches it alongside the absolute times
// and allocation footprints. Every cell is lower-better, so a fresh/base
// ratio above 1 always means a regression.
//
// Each metric is the best of `rounds` measurements: early-termination
// latency is scheduler-sensitive (the first violation races the worker
// pool spin-up), and a real regression survives a minimum by definition.
func Stream(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 5
	}
	// The workload is reshaped from the flag config (as Fig 6 scales and
	// Fig 9 re-noises theirs): first-K latency is only meaningful against
	// a full run long enough that scheduler startup is not the measurement.
	// Scale grows 6×, the rule budget is floored at 16 (more units → more
	// total work), patterns shrink to 3 nodes (cheap per-candidate
	// enumeration, so the first violating candidate is reached early), and
	// noise is dialed up to 40% — at the default 2% the bench graph can be
	// outright clean, and a run with zero violations has no first-K
	// latency to measure.
	c.Scale *= 6
	if c.Rules < 16 {
		c.Rules = 16
	}
	c.PatternSize = 3
	if c.NoiseRate < 0.4 {
		c.NoiseRate = 0.4
	}
	w := Prepare(c)
	opt := validate.Options{Engine: validate.EngineReplicated, N: 8, Seed: c.Seed}
	ctx := context.Background()
	prep := w.Prepared()

	// Untimed warm-up absorbs lazily cached variant state and pins the
	// violation count so first-K is well-defined.
	warm, err := prep.Detect(ctx, opt)
	if err != nil {
		panic(err)
	}
	total := len(warm.Violations)
	if total == 0 {
		panic("stream experiment workload produced no violations; time-to-first-K is undefined")
	}
	k16 := min(16, total)

	// measure wraps one run with a wall clock and a TotalAlloc delta —
	// cumulative bytes allocated, immune to GC timing, so the iterator
	// path's footprint (lanes, forwarders, no materialized report) is
	// comparable across commits.
	var ms runtime.MemStats
	measure := func(run func()) (wallMS, allocKB float64) {
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now()
		run()
		wallMS = time.Since(start).Seconds() * 1000
		runtime.ReadMemStats(&ms)
		return wallMS, float64(ms.TotalAlloc-before) / 1024
	}
	best := func(f func() (float64, float64)) (wallMS, allocKB float64) {
		wallMS, allocKB = math.Inf(1), math.Inf(1)
		for i := 0; i < rounds; i++ {
			m, kb := f()
			wallMS = math.Min(wallMS, m)
			allocKB = math.Min(allocKB, kb)
		}
		return wallMS, allocKB
	}

	fullMS, fullKB := best(func() (float64, float64) {
		return measure(func() {
			if _, err := prep.Detect(ctx, opt); err != nil {
				panic(err)
			}
		})
	})
	pull := func(k int) (float64, float64) {
		return best(func() (float64, float64) {
			return measure(func() {
				seen := 0
				for _, err := range prep.Violations(ctx, opt) {
					if err != nil {
						panic(err)
					}
					if seen++; seen >= k {
						break
					}
				}
			})
		})
	}
	first1MS, first1KB := pull(1)
	firstKMS, firstKKB := pull(k16)

	return Table{
		Title: fmt.Sprintf("Stream — time-to-first-K via Violations vs full Detect (%s, rep n=8, %d violations)",
			c.Dataset, total),
		XLabel: "consumer",
		Series: []string{"ms", "alloc_kb", "frac_of_full"},
		Rows: []Row{
			{X: "full_detect", Cells: map[string]float64{"ms": fullMS, "alloc_kb": fullKB}},
			{X: "first_1", Cells: map[string]float64{
				"ms": first1MS, "alloc_kb": first1KB, "frac_of_full": first1MS / fullMS}},
			{X: fmt.Sprintf("first_%d", k16), Cells: map[string]float64{
				"ms": firstKMS, "alloc_kb": firstKKB}},
		},
	}
}
