//go:build !race

package exp

const raceEnabled = false
