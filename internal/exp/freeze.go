package exp

import (
	"fmt"
	"time"
)

// Freeze measures the snapshot-construction pipeline serial vs parallel
// across graph sizes and worker counts — the cold-start cost every engine
// run pays before matching, and the compaction cost the overlay lifecycle
// amortizes. Each row is one builder configuration on one graph size:
// "x1/serial" is the single-threaded buildSnapshot, "x1/w4" the sharded
// pipeline (count → offset merge → symbol merge → fill+sort → classes)
// with 4 workers on the same graph, "x2/..." the same on a doubled scale.
//
// Rows report best-of-N wall milliseconds per freeze so the benchmark
// gate watches both builders: a serial regression slows cold starts and
// compaction everywhere, a parallel regression defeats the pipeline's
// purpose. Times are machine-flavored like every committed baseline — on
// a single-core host the parallel rows track serial plus fan-out
// overhead; the ≥2× speedup target at 4 workers is a multi-core property.
func Freeze(c Config, workers []int) Table {
	c = c.Defaults()
	if len(workers) == 0 {
		workers = []int{2, 4}
	}
	t := Table{
		Title:  fmt.Sprintf("Freeze — serial vs parallel buildSnapshot (%s)", c.Dataset),
		XLabel: "builder",
		Series: []string{"ms_per_freeze"},
	}
	const reps = 3
	for _, m := range []int{1, 2} {
		cc := c
		cc.Scale = c.Scale * m
		g := cc.Graph()
		bench := func(name string, w int) {
			best := 0.0
			for r := 0; r < reps; r++ {
				start := time.Now()
				g.BuildSnapshot(w)
				ms := time.Since(start).Seconds() * 1000
				if r == 0 || ms < best {
					best = ms
				}
			}
			t.Rows = append(t.Rows, Row{
				X:     fmt.Sprintf("x%d/%s", m, name),
				Cells: map[string]float64{"ms_per_freeze": best},
			})
		}
		bench("serial", 1)
		for _, w := range workers {
			bench(fmt.Sprintf("w%d", w), w)
		}
	}
	return t
}

// FreezeSpeedup derives the parallel speedup at a worker count from a
// Freeze table (serial ms over parallel ms on the base-size graph).
func FreezeSpeedup(t Table, w int) (float64, bool) {
	serial, ok1 := t.Get("x1/serial", "ms_per_freeze")
	par, ok2 := t.Get(fmt.Sprintf("x1/w%d", w), "ms_per_freeze")
	if !ok1 || !ok2 || par <= 0 {
		return 0, false
	}
	return serial / par, true
}
