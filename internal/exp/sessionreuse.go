package exp

import (
	"context"
	"fmt"
	"time"

	"gfd/internal/graph"
	"gfd/internal/validate"
)

// SessionReuse measures the prepared-session payoff the Session API
// exists for: warm Detect rounds on one Prepared (freeze, workload
// reduction, grouping and rule lowering all paid once) against the cold
// per-request path a stateless server would take — the legacy free
// function on a fresh copy of the graph each round, re-paying freeze and
// every lowering. Clones are built outside the timed region, so the cold
// rounds are charged exactly the per-request compilation cost, nothing
// else.
//
// The emitted table carries per-round wall times (prepare is amortized
// into the warm side: its one-time cost is a separate row), so the
// benchmark gate watches all three: a slowdown of the warm path defeats
// the API's purpose, and a slowdown of prepare or the cold path is an
// engine regression.
func SessionReuse(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 5
	}
	w := Prepare(c)
	opt := validate.Options{Engine: validate.EngineReplicated, N: 8, Seed: c.Seed}
	ctx := context.Background()

	// Warm path: one prepared session, `rounds` Detect rounds (a first
	// untimed round absorbs any lazily cached variant state).
	prep := w.Prepared()
	if _, err := prep.Detect(ctx, opt); err != nil {
		panic(err)
	}
	warmStart := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := prep.Detect(ctx, opt); err != nil {
			panic(err)
		}
	}
	warmMS := time.Since(warmStart).Seconds() * 1000 / float64(rounds)

	// One-time session boot cost on a fresh graph copy: open, prepare,
	// first Detect — what a server pays once at startup or per graph
	// update before warm rounds begin.
	boot := w.G.Clone()
	prepStart := time.Now()
	bootPrep, err := mustSession(boot).Prepare(w.Set)
	if err != nil {
		panic(err)
	}
	if _, err := bootPrep.Detect(ctx, opt); err != nil {
		panic(err)
	}
	prepareMS := time.Since(prepStart).Seconds() * 1000

	// Cold path: each round validates a fresh clone of the same graph
	// through the legacy free function, as a per-request server would,
	// re-paying freeze, reduction, grouping and lowering every time.
	clones := make([]*graph.Graph, rounds)
	for i := range clones {
		clones[i] = w.G.Clone()
	}
	coldStart := time.Now()
	for _, gc := range clones {
		validate.RepVal(gc, w.Set, opt)
	}
	coldMS := time.Since(coldStart).Seconds() * 1000 / float64(rounds)

	t := Table{
		Title:  fmt.Sprintf("Session reuse — warm Detect vs cold per-request repVal (%s, %d rounds)", c.Dataset, rounds),
		XLabel: "path",
		Series: []string{"ms_per_round"},
		Rows: []Row{
			{X: "cold", Cells: map[string]float64{"ms_per_round": coldMS}},
			{X: "warm", Cells: map[string]float64{"ms_per_round": warmMS}},
			{X: "prepare+first", Cells: map[string]float64{"ms_per_round": prepareMS}},
		},
	}
	return t
}
