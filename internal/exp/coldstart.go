package exp

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/session"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// Coldstart measures what the persistent snapshot store exists to remove:
// the cold path from artifact on disk to first violation. Two starts over
// the same graph and prepared rule set race — build_first1 parses the text
// graph, builds adjacency, and pays a full freeze before matching can
// begin; open_first1 maps the .gfds file read-only and matches straight
// off the persisted CSR arrays, with zero snapshot builds (the run panics
// if the probe ever reads otherwise). The open row's frac_of_build cell is
// the claim as a number — the benchmark gate and the acceptance bar
// (≤ 0.25) watch it — and heap_kb shows the second win: the open path's
// arrays live in file-backed pages, not on the heap.
//
// Detection runs the sequential engine: detVio starts matching the moment
// the topology exists, so time-to-first reflects the cold-start cost being
// compared. The parallel engines pay a workload-estimation and scheduler
// startup prefix that is identical on both paths and several times the
// build+freeze cost at this scale — under repVal the two rows converge on
// that shared prefix and measure the engine, not the store.
//
// Each metric is the best of `rounds` measurements, as in Stream: cold
// opens race page cache and scheduler noise, and a real regression
// survives a minimum.
func Coldstart(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 5
	}
	// Reshape as the other derived benches do: a bigger graph so the
	// build+freeze cost being measured dominates process noise, small
	// patterns and heavy noise so the first violation arrives early and
	// surely (a violation-free round has no time-to-first to measure).
	c.Scale *= 4
	if c.Rules < 12 {
		c.Rules = 12
	}
	c.PatternSize = 3
	if c.NoiseRate < 0.3 {
		c.NoiseRate = 0.3
	}

	// Untimed setup: materialize the workload once, persist it in both
	// formats, and sanity-check that violations exist. The setup closure
	// scopes the in-memory graph so it is collectable before measuring —
	// each round truly cold-starts from its file.
	dir, err := os.MkdirTemp("", "gfd-coldstart-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	textPath := filepath.Join(dir, "g.graph")
	snapPath := filepath.Join(dir, "g.gfds")
	opt := validate.Options{Engine: validate.EngineSequential, Seed: c.Seed}
	ctx := context.Background()
	set := func() *core.Set {
		clean := c.cleanGraph()
		set := c.Mine(clean)
		gen.Inject(clean, gen.NoiseConfig{Rate: c.NoiseRate, Seed: c.Seed + 1,
			Kinds: []gen.NoiseKind{gen.AttributeNoise, gen.RepresentationalNoise}})
		tf, err := os.Create(textPath)
		if err != nil {
			panic(err)
		}
		if err := graph.Write(tf, clean); err != nil {
			panic(err)
		}
		tf.Close()
		if err := store.Save(ctx, clean.Freeze(), snapPath); err != nil {
			panic(err)
		}
		prep, err := mustSession(clean).Prepare(set)
		if err != nil {
			panic(err)
		}
		if warm, err := prep.Detect(ctx, opt); err != nil {
			panic(err)
		} else if len(warm.Violations) == 0 {
			panic("coldstart workload produced no violations; time-to-first is undefined")
		}
		return set
	}()

	// measure wraps one cold start with a wall clock, a TotalAlloc delta
	// (cumulative, GC-immune), and a post-GC HeapInuse delta — the live-
	// heap footprint the path leaves behind, which is the RSS story the
	// mapping changes: file-backed pages never show up in it.
	var ms runtime.MemStats
	measure := func(run func() any) (wallMS, allocKB, heapKB float64) {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		allocBefore, heapBefore := ms.TotalAlloc, ms.HeapInuse
		start := time.Now()
		keep := run()
		wallMS = time.Since(start).Seconds() * 1000
		runtime.GC()
		runtime.ReadMemStats(&ms)
		allocKB = float64(ms.TotalAlloc-allocBefore) / 1024
		heapKB = math.Max(0, float64(ms.HeapInuse)-float64(heapBefore)) / 1024
		runtime.KeepAlive(keep)
		return
	}
	best := func(f func() (float64, float64, float64)) (wallMS, allocKB, heapKB float64) {
		wallMS, allocKB, heapKB = math.Inf(1), math.Inf(1), math.Inf(1)
		for i := 0; i < rounds; i++ {
			w, a, h := f()
			wallMS = math.Min(wallMS, w)
			allocKB = math.Min(allocKB, a)
			heapKB = math.Min(heapKB, h)
		}
		return
	}
	firstViolation := func(prep *session.Prepared) {
		for _, err := range prep.Violations(ctx, opt) {
			if err != nil {
				panic(err)
			}
			return
		}
		panic("coldstart round found no violation")
	}

	buildMS, buildKB, buildHeapKB := best(func() (float64, float64, float64) {
		return measure(func() any {
			f, err := os.Open(textPath)
			if err != nil {
				panic(err)
			}
			g, _, err := graph.Read(f)
			f.Close()
			if err != nil {
				panic(err)
			}
			prep, err := mustSession(g).Prepare(set)
			if err != nil {
				panic(err)
			}
			firstViolation(prep)
			return prep
		})
	})
	openMS, openKB, openHeapKB := best(func() (float64, float64, float64) {
		return measure(func() any {
			l, err := store.Open(ctx, snapPath)
			if err != nil {
				panic(err)
			}
			defer l.Close()
			g := l.Snapshot().Graph()
			prep, err := mustSession(g).Prepare(set)
			if err != nil {
				panic(err)
			}
			firstViolation(prep)
			if b := g.SnapshotBuilds(); b != 0 {
				panic(fmt.Sprintf("coldstart open path built %d snapshots; the zero-build contract is broken", b))
			}
			return prep
		})
	})

	return Table{
		Title: fmt.Sprintf("Coldstart — artifact on disk to first violation (%s, detVio)",
			c.Dataset),
		XLabel: "path",
		Series: []string{"ms", "alloc_kb", "heap_kb", "frac_of_build", "snapshot_builds"},
		Rows: []Row{
			{X: "build_first1", Cells: map[string]float64{
				"ms": buildMS, "alloc_kb": buildKB, "heap_kb": buildHeapKB}},
			{X: "open_first1", Cells: map[string]float64{
				"ms": openMS, "alloc_kb": openKB, "heap_kb": openHeapKB,
				"frac_of_build": openMS / buildMS, "snapshot_builds": 0}},
		},
	}
}

// ColdstartRatio extracts open_first1's fraction of the build path's wall
// time from a Coldstart table — the number the acceptance gate bounds.
func ColdstartRatio(t Table) (float64, bool) {
	return t.Get("open_first1", "frac_of_build")
}
