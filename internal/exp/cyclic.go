package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// Cyclic measures the worst-case-optimal multiway intersection step
// against the probe-per-candidate backtracking fallback (Options.
// NoIntersect) on the cyclic patterns where it matters: the closing node
// of a triangle, diamond, or 4-cycle has two already-matched neighbors,
// so the matcher intersects their label-filtered adjacency ranges
// directly instead of probing every candidate of the smaller one. The
// workload is window-clustered (each node's adjacency is a contiguous
// window placed by a per-kind stride), so most range pairs are disjoint
// or barely overlap — exactly the shape where galloping skips whole runs
// that probing would test one candidate at a time.
//
// Cells are lower-better: wall times for the two paths plus their ratio
// (frac = wco_ms / probe_ms; below 1 means the intersection wins). Both
// paths must count the same matches — the harness panics otherwise.
// Every metric is the best of `rounds` runs.
func Cyclic(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 3
	}
	g := cyclicGraph(c.Scale, c.Seed)
	snap := g.Freeze()

	shapes := []struct {
		name string
		q    *pattern.Pattern
	}{
		{"triangle", cyclicTriangle()},
		{"diamond", cyclicDiamond()},
		{"cycle4", cyclicSquare()},
	}
	t := Table{
		Title:  fmt.Sprintf("Cyclic — multiway intersection vs probe backtracking (scale %d)", c.Scale),
		XLabel: "pattern",
		Series: []string{"wco_ms", "probe_ms", "frac"},
	}
	for _, s := range shapes {
		wcoMS, wcoN := bestEnum(snap, s.q, false, rounds)
		probeMS, probeN := bestEnum(snap, s.q, true, rounds)
		if wcoN != probeN {
			panic(fmt.Sprintf("cyclic %s: WCO found %d matches, probe %d", s.name, wcoN, probeN))
		}
		t.Rows = append(t.Rows, Row{X: s.name, Cells: map[string]float64{
			"wco_ms": wcoMS, "probe_ms": probeMS, "frac": wcoMS / probeMS,
		}})
	}
	return t
}

// bestEnum times a full enumeration of q over snap, best of rounds, and
// returns the (constant) match count alongside.
func bestEnum(snap *graph.Snapshot, q *pattern.Pattern, noIntersect bool, rounds int) (float64, int) {
	m := match.NewMatcher(snap)
	opts := match.Options{NoIntersect: noIntersect}
	best := math.Inf(1)
	count := 0
	for i := 0; i < rounds; i++ {
		n := 0
		start := time.Now()
		for range m.Matches(q, opts) {
			n++
		}
		best = math.Min(best, time.Since(start).Seconds()*1000)
		count = n
	}
	return best, count
}

// CyclicFactor measures the factorized shared-core driver (DetVioB)
// against per-rule enumeration (DetVioPerRuleB) on a four-rule group
// whose patterns share the triangle core: three rules hang one cheap
// tail off the triangle and one IS the triangle, so per-rule detection
// re-enumerates the expensive cyclic prefix four times while the
// factorized driver walks it once and branches. Cells are lower-better
// (frac = factored_ms / perrule_ms).
func CyclicFactor(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 3
	}
	g := cyclicGraph(c.Scale, c.Seed)
	set := cyclicFactorRules()
	b := validate.NewBundle(g, set)
	ctx := context.Background()

	run := func(det func(context.Context, *validate.Bundle, validate.Sink) error) (float64, int) {
		best := math.Inf(1)
		count := 0
		for i := 0; i < rounds; i++ {
			sink := validate.NewCollectSink(1)
			start := time.Now()
			if err := det(ctx, b, sink); err != nil {
				panic(err)
			}
			best = math.Min(best, time.Since(start).Seconds()*1000)
			count = len(sink.Report())
		}
		return best, count
	}
	facMS, facN := run(validate.DetVioB)
	perMS, perN := run(validate.DetVioPerRuleB)
	if facN != perN {
		panic(fmt.Sprintf("cyclic factor: factorized found %d violations, per-rule %d", facN, perN))
	}
	return Table{
		Title:  fmt.Sprintf("Cyclic — factorized shared-core group vs per-rule (4 rules, scale %d, %d violations)", c.Scale, facN),
		XLabel: "driver",
		Series: []string{"factored_ms", "perrule_ms", "frac"},
		Rows: []Row{{X: "group4", Cells: map[string]float64{
			"factored_ms": facMS, "perrule_ms": perMS, "frac": facMS / perMS,
		}}},
	}
}

// CyclicSpeedups extracts the probe/wco speedup per pattern row —
// the acceptance numbers the CLI prints under the table.
func CyclicSpeedups(t Table) map[string]float64 {
	out := make(map[string]float64, len(t.Rows))
	for _, r := range t.Rows {
		if r.Cells["wco_ms"] > 0 {
			out[r.X] = r.Cells["probe_ms"] / r.Cells["wco_ms"]
		}
	}
	return out
}

// cyclicGraph builds the window-clustered workload: five node classes of
// equal size N with seven directed edge kinds, each node's out-adjacency
// for a kind being a contiguous window of deg targets whose start is a
// per-kind stride multiple of the source index (mod N). Distinct strides
// decorrelate the windows, so the two ranges feeding a closing-node
// intersection overlap in ~deg²/N candidates (≈1 at the default sizing)
// while each is deg long. Tail classes T1..T3 carry one edge per C node
// for the factor-group branches, and every node gets a val attribute over
// a small alphabet so dependency literals both hold and fail.
func cyclicGraph(scale int, seed int64) *graph.Graph {
	n := scale * 10
	if n < 200 {
		n = 200
	}
	deg := 32
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(0, 0)

	classes := []string{"A", "B", "C", "D", "T1", "T2", "T3"}
	ids := make(map[string][]graph.NodeID, len(classes))
	for _, cl := range classes {
		nodes := make([]graph.NodeID, n)
		for i := range nodes {
			nodes[i] = g.AddNode(cl, graph.Attrs{"val": fmt.Sprintf("v%d", rng.Intn(7))})
		}
		ids[cl] = nodes
	}

	window := func(from, to string, label string, stride int) {
		src, dst := ids[from], ids[to]
		for i, u := range src {
			start := (i * stride) % n
			for k := 0; k < deg; k++ {
				g.MustAddEdge(u, dst[(start+k)%n], label)
			}
		}
	}
	window("A", "B", "ab", 7)
	window("A", "C", "ac", 13)
	window("B", "C", "bc", 19)
	window("B", "D", "bd", 23)
	window("C", "D", "cd", 29)
	window("A", "D", "ad", 31)
	window("D", "C", "dc", 37)
	for i, u := range ids["C"] {
		g.MustAddEdge(u, ids["T1"][i], "t1")
		g.MustAddEdge(u, ids["T2"][(i*3)%n], "t2")
		g.MustAddEdge(u, ids["T3"][(i*5)%n], "t3")
	}
	// Sparse closing edge for the factor-group core: one acs edge per A
	// node makes the triangle a-[ab]->b-[bc]->c, a-[acs]->c expensive to
	// search relative to its match count (most (a, b) pairs close on
	// nothing), which is the regime where re-walking the core per rule is
	// the dominant cost factorization removes.
	for i, u := range ids["A"] {
		g.MustAddEdge(u, ids["C"][(i*11)%n], "acs")
	}
	return g
}

// cyclicTriangle is a -[ab]-> b -[bc]-> c with the closing a -[ac]-> c.
func cyclicTriangle() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, c, "ac")
	return q
}

// cyclicDiamond closes two length-2 paths a->b->d and a->c->d at d.
func cyclicDiamond() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	d := q.AddNode("d", "D")
	q.AddEdge(a, b, "ab")
	q.AddEdge(a, c, "ac")
	q.AddEdge(b, d, "bd")
	q.AddEdge(c, d, "cd")
	return q
}

// cyclicSquare is the undirected 4-cycle a->b->c <- d <- a.
func cyclicSquare() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	d := q.AddNode("d", "D")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, d, "ad")
	q.AddEdge(d, c, "dc")
	return q
}

// sparseTriangle is the factor-group core: a -[ab]-> b -[bc]-> c closed
// by the sparse a -[acs]-> c, so the search visits ~deg (a, b) pairs per
// match it produces.
func sparseTriangle() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, c, "acs")
	return q
}

// cyclicFactorRules is the four-rule shared-core group: three triangle
// rules with one tail each (t1/t2/t3) and one bare triangle. The shared
// connected core is the full sparse triangle, so the factorized driver
// walks the expensive cyclic prefix once instead of four times.
func cyclicFactorRules() *core.Set {
	tail := func(name, cls, label string) *core.GFD {
		q := sparseTriangle()
		t := q.AddNode("t", cls)
		q.AddEdge(2, t, label)
		return core.MustNew(name, q, nil,
			[]core.Literal{core.VarEq("a", "val", "t", "val")})
	}
	bare := core.MustNew("tri", sparseTriangle(), nil,
		[]core.Literal{core.VarEq("a", "val", "b", "val")})
	return core.MustNewSet(
		tail("tri_t1", "T1", "t1"),
		tail("tri_t2", "T2", "t2"),
		tail("tri_t3", "T3", "t3"),
		bare,
	)
}
