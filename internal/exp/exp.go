// Package exp is the experiment harness regenerating every table and
// figure of the paper's evaluation (Section 7). Each Fig* function runs a
// sweep and returns a Table whose rows mirror the paper's plots: the same
// x-axes (n, ‖Σ‖, |Q|, |G|, skew), the same six algorithms (repVal,
// repran, repnop, disVal, disran, disnop), and the same derived metrics
// (total detection time, communication time, accuracy).
//
// Scales are reduced relative to the paper (in-process simulated cluster
// instead of 20 EC2 machines; see DESIGN.md §4): the *shapes* — who wins,
// by what factor, where the curves bend — are the reproduction target, not
// absolute seconds. EXPERIMENTS.md records paper-vs-measured per figure.
package exp

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/session"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// Config sizes an experiment run.
type Config struct {
	Dataset     string // yago2 | dbpedia | pokec | synthetic
	Scale       int    // dataset scale knob (entities)
	Rules       int    // ‖Σ‖ (the paper used 50–100; scaled down by default)
	PatternSize int    // |Q| in pattern nodes (paper: 2–6, default 5)
	TwoCompFrac float64
	NoiseRate   float64
	Seed        int64

	// GraphPath, when set, loads the experiment graph from a file — the
	// text format, or the binary snapshot format for a .gfds extension —
	// instead of generating one; no noise is injected into a loaded
	// graph (the file is taken as the workload verbatim). RulesPath,
	// when set, parses Σ from a rule file instead of mining it; without
	// it, rules are mined on the loaded graph as-is.
	GraphPath string
	RulesPath string
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Dataset == "" {
		c.Dataset = "yago2"
	}
	if c.Scale <= 0 {
		c.Scale = 300
	}
	if c.Rules <= 0 {
		c.Rules = 10
	}
	if c.PatternSize <= 0 {
		c.PatternSize = 5
	}
	if c.TwoCompFrac == 0 {
		c.TwoCompFrac = 0.25
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Graph materializes the configured dataset with noise injected.
func (c Config) Graph() *graph.Graph {
	g := c.cleanGraph()
	gen.Inject(g, gen.NoiseConfig{Rate: c.NoiseRate, Seed: c.Seed + 1,
		Kinds: []gen.NoiseKind{gen.AttributeNoise, gen.RepresentationalNoise}})
	return g
}

func (c Config) cleanGraph() *graph.Graph {
	switch c.Dataset {
	case "dbpedia":
		return gen.DBpediaLike(gen.DatasetConfig{Scale: c.Scale, Seed: c.Seed})
	case "pokec":
		return gen.PokecLike(gen.DatasetConfig{Scale: c.Scale, Seed: c.Seed})
	case "synthetic":
		return gen.Synthetic(gen.SyntheticConfig{Nodes: c.Scale * 10, Edges: c.Scale * 20, Skew: 0.5, Seed: c.Seed})
	default:
		return gen.YAGO2Like(gen.DatasetConfig{Scale: c.Scale, Seed: c.Seed})
	}
}

// Rules mines Σ over a clean copy of the dataset (rules must hold on the
// clean data so the noise is what they catch).
func (c Config) Mine(clean *graph.Graph) *core.Set {
	return gen.MineGFDs(clean, gen.MineConfig{
		NumRules:    c.Rules,
		PatternSize: c.PatternSize,
		TwoCompFrac: c.TwoCompFrac,
		Seed:        c.Seed + 2,
	})
}

// Workload bundles a graph + rule set behind one prepared session, so an
// entire sweep — every round, every worker count, all six algorithm
// variants — shares a single freeze, workload reduction, grouping and
// rule lowering. Construct it with NewWorkload (or Prepare); the zero
// value and struct literals still work but fall back to a one-shot
// session per RunAlgorithm call.
type Workload struct {
	G    *graph.Graph
	Set  *core.Set
	prep *session.Prepared
}

// NewWorkload prepares a session over g and set and returns the workload
// every sweep round should share.
func NewWorkload(g *graph.Graph, set *core.Set) Workload {
	p, err := mustSession(g).Prepare(set)
	if err != nil {
		panic(err) // harness inputs are constructed, not user-supplied
	}
	return Workload{G: g, Set: set, prep: p}
}

// mustSession opens a session, panicking on the nil-graph error: harness
// graphs are constructed, not user-supplied.
func mustSession(g *graph.Graph) *session.Session {
	s, err := session.New(g)
	if err != nil {
		panic(err)
	}
	return s
}

// Prepared returns the workload's prepared session, building a one-shot
// one for workloads assembled as struct literals.
func (w Workload) Prepared() *session.Prepared {
	if w.prep != nil {
		return w.prep
	}
	p, err := mustSession(w.G).Prepare(w.Set)
	if err != nil {
		panic(err)
	}
	return p
}

// Prepare mines rules on the clean graph, injects noise, then prepares
// the session on the noisy graph. A Config with GraphPath/RulesPath set
// loads those files instead (see Config); the harness panics on unreadable
// inputs, so CLI callers should pre-validate paths.
func Prepare(c Config) Workload {
	c = c.Defaults()
	if c.GraphPath != "" || c.RulesPath != "" {
		g := c.cleanGraph()
		if c.GraphPath != "" {
			var err error
			if g, err = LoadGraph(c.GraphPath); err != nil {
				panic(err)
			}
		}
		var set *core.Set
		if c.RulesPath != "" {
			f, err := os.Open(c.RulesPath)
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if set, err = core.ParseRules(f); err != nil {
				panic(err)
			}
		} else {
			set = c.Mine(g)
		}
		return NewWorkload(g, set)
	}
	clean := c.cleanGraph()
	set := c.Mine(clean)
	gen.Inject(clean, gen.NoiseConfig{Rate: c.NoiseRate, Seed: c.Seed + 1,
		Kinds: []gen.NoiseKind{gen.AttributeNoise, gen.RepresentationalNoise}})
	return NewWorkload(clean, set)
}

// LoadGraph reads an experiment graph from disk: the line-oriented text
// format, or — for a .gfds extension — the binary snapshot store, opened
// zero-copy off its read-only mapping. The mapping of a .gfds load stays
// open for the process lifetime (experiment graphs live until exit; a
// caller needing eager unmapping should use package store directly).
func LoadGraph(path string) (*graph.Graph, error) {
	if strings.HasSuffix(path, ".gfds") {
		l, err := store.Open(context.Background(), path)
		if err != nil {
			return nil, err
		}
		return l.Snapshot().Graph(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := graph.Read(f)
	return g, err
}

// Table is one figure's data: rows indexed by the x-axis, one cell per
// series (algorithm).
type Table struct {
	Title  string
	XLabel string
	Series []string
	Rows   []Row
}

// Row is one x-axis point.
type Row struct {
	X     string
	Cells map[string]float64
}

// String renders the table in a paper-style fixed-width layout.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%14s", s)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.X)
		for _, s := range t.Series {
			if v, ok := r.Cells[s]; ok {
				fmt.Fprintf(&b, "%14.3f", v)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Get returns a cell value.
func (t Table) Get(x, series string) (float64, bool) {
	for _, r := range t.Rows {
		if r.X == x {
			v, ok := r.Cells[series]
			return v, ok
		}
	}
	return 0, false
}

// SixAlgorithms is the series order of Fig. 5.
var SixAlgorithms = []string{"repVal", "repran", "repnop", "disVal", "disran", "disnop"}

// RunAlgorithm executes one of the six named algorithms (repVal, repran,
// repnop, disVal, disran, disnop) on a workload with n workers, through
// the workload's prepared session: the freeze and rule lowering were paid
// when the workload was built, and fragmentations are cached per n.
func RunAlgorithm(alg string, w Workload, n int, seed int64) *validate.Result {
	opt := validate.Options{N: n, Seed: seed}
	switch alg {
	case "repran", "disran":
		opt.RandomAssign = true
	case "repnop", "disnop":
		opt.NoOptimize = true
	}
	if strings.HasPrefix(alg, "rep") {
		opt.Engine = validate.EngineReplicated
	} else {
		opt.Engine = validate.EngineFragmented
	}
	res, _ := w.Prepared().Detect(context.Background(), opt)
	return res
}

// seconds converts a result to the plotted metric: the modeled n-worker
// parallel time (max per-worker busy span per phase plus communication).
// Wall-clock time would be bounded below by total-work / physical-cores on
// this host regardless of n, so it cannot show n-scaling; the modeled span
// can, and it is what the simulated-cluster substitution reports (see
// DESIGN.md §4).
func seconds(r *validate.Result) float64 { return r.ModeledTime().Seconds() }

// Fig5VaryN reproduces Fig. 5(a–c): detection time of all six algorithms
// as the worker count grows 4 → 20, for the configured dataset.
func Fig5VaryN(c Config, ns []int) Table {
	c = c.Defaults()
	if len(ns) == 0 {
		ns = []int{4, 8, 12, 16, 20}
	}
	w := Prepare(c)
	t := Table{
		Title:  fmt.Sprintf("Fig 5 — time vs n (%s, ‖Σ‖=%d, |Q|=%d)", c.Dataset, w.Set.Len(), c.PatternSize),
		XLabel: "n",
		Series: SixAlgorithms,
	}
	for _, n := range ns {
		row := Row{X: fmt.Sprintf("%d", n), Cells: map[string]float64{}}
		for _, alg := range SixAlgorithms {
			row.Cells[alg] = seconds(RunAlgorithm(alg, w, n, c.Seed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5VarySigma reproduces Fig. 5(d,f,h): time as ‖Σ‖ grows, n fixed at 16.
// The paper sweeps 50 → 100 rules; the sweep here scales linearly from the
// configured rule budget.
func Fig5VarySigma(c Config, ruleCounts []int) Table {
	c = c.Defaults()
	if len(ruleCounts) == 0 {
		ruleCounts = []int{5, 10, 15, 20, 25}
	}
	t := Table{
		Title:  fmt.Sprintf("Fig 5 — time vs ‖Σ‖ (%s, n=16, |Q|=%d)", c.Dataset, c.PatternSize),
		XLabel: "‖Σ‖",
		Series: SixAlgorithms,
	}
	for _, rc := range ruleCounts {
		cc := c
		cc.Rules = rc
		w := Prepare(cc)
		row := Row{X: fmt.Sprintf("%d", w.Set.Len()), Cells: map[string]float64{}}
		for _, alg := range SixAlgorithms {
			row.Cells[alg] = seconds(RunAlgorithm(alg, w, 16, c.Seed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5VaryQ reproduces Fig. 5(e,g,i): time as the pattern size |Q| grows
// 2 → 6 nodes, n fixed at 16.
func Fig5VaryQ(c Config, sizes []int) Table {
	c = c.Defaults()
	if len(sizes) == 0 {
		sizes = []int{2, 3, 4, 5, 6}
	}
	t := Table{
		Title:  fmt.Sprintf("Fig 5 — time vs |Q| (%s, n=16, ‖Σ‖=%d)", c.Dataset, c.Rules),
		XLabel: "|Q|",
		Series: SixAlgorithms,
	}
	for _, q := range sizes {
		cc := c
		cc.PatternSize = q
		w := Prepare(cc)
		row := Row{X: fmt.Sprintf("%d", q), Cells: map[string]float64{}}
		for _, alg := range SixAlgorithms {
			row.Cells[alg] = seconds(RunAlgorithm(alg, w, 16, c.Seed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5Comm reproduces Fig. 5(j–l): modeled communication time of the three
// fragmented-graph algorithms as n grows.
func Fig5Comm(c Config, ns []int) Table {
	c = c.Defaults()
	if len(ns) == 0 {
		ns = []int{4, 8, 12, 16, 20}
	}
	w := Prepare(c)
	series := []string{"disVal", "disran", "disnop"}
	t := Table{
		Title:  fmt.Sprintf("Fig 5 — communication time vs n (%s)", c.Dataset),
		XLabel: "n",
		Series: series,
	}
	for _, n := range ns {
		row := Row{X: fmt.Sprintf("%d", n), Cells: map[string]float64{}}
		for _, alg := range series {
			row.Cells[alg] = RunAlgorithm(alg, w, n, c.Seed).Comm.Seconds()
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6ScaleG reproduces Fig. 6: disVal and variants on growing synthetic
// graphs, n = 16. The paper grows (10M,20M) → (50M,100M); the sweep here
// multiplies the configured base scale 1×..5×.
func Fig6ScaleG(c Config, multipliers []int) Table {
	c = c.Defaults()
	c.Dataset = "synthetic"
	if len(multipliers) == 0 {
		multipliers = []int{1, 2, 3, 4, 5}
	}
	series := []string{"disVal", "disran", "disnop"}
	t := Table{
		Title:  "Fig 6 — time vs |G| (synthetic, n=16)",
		XLabel: "|G| (x base)",
		Series: series,
	}
	for _, m := range multipliers {
		cc := c
		cc.Scale = c.Scale * m
		w := Prepare(cc)
		row := Row{
			X:     fmt.Sprintf("%dx(%dV,%dE)", m, w.G.NumNodes(), w.G.NumEdges()),
			Cells: map[string]float64{},
		}
		for _, alg := range series {
			row.Cells[alg] = seconds(RunAlgorithm(alg, w, 16, c.Seed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8Skew reproduces the Appendix skew experiment: disVal and variants on
// synthetic graphs of growing degree skew, n = 16, with replicate-and-split
// active in disVal only.
func Fig8Skew(c Config, skews []float64) Table {
	c = c.Defaults()
	if len(skews) == 0 {
		skews = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	series := []string{"disVal", "disran", "disnop"}
	t := Table{
		Title:  "Fig 8 — time vs skew (synthetic, n=16)",
		XLabel: "skew",
		Series: series,
	}
	for _, sk := range skews {
		clean := gen.Synthetic(gen.SyntheticConfig{
			Nodes: c.Scale * 10, Edges: c.Scale * 20, Skew: sk, Seed: c.Seed,
		})
		set := c.Mine(clean)
		gen.Inject(clean, gen.NoiseConfig{Rate: c.NoiseRate, Seed: c.Seed + 1})
		w := NewWorkload(clean, set)
		row := Row{X: fmt.Sprintf("%.1f", sk), Cells: map[string]float64{}}
		for _, alg := range series {
			row.Cells[alg] = seconds(RunAlgorithm(alg, w, 16, c.Seed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SpeedupSummary derives the Exp-1 headline numbers from a Fig5VaryN
// table: the speedup of each algorithm between the smallest and largest n.
func SpeedupSummary(t Table) map[string]float64 {
	if len(t.Rows) < 2 {
		return nil
	}
	first, last := t.Rows[0], t.Rows[len(t.Rows)-1]
	out := make(map[string]float64)
	for _, s := range t.Series {
		if a, ok := first.Cells[s]; ok {
			if b, ok2 := last.Cells[s]; ok2 && b > 0 {
				out[s] = a / b
			}
		}
	}
	return out
}

// SortedKeys is a helper for deterministic map printing.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Timed runs f and returns its duration alongside the value.
func Timed[T any](f func() T) (T, time.Duration) {
	start := time.Now()
	v := f()
	return v, time.Since(start)
}
