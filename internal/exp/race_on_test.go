//go:build race

package exp

// raceEnabled skips timing-sensitive gate tests under the race detector,
// whose instrumentation flattens the parallel/serial ratio they assert.
const raceEnabled = true
