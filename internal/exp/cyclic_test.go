package exp

import "testing"

// TestCyclicShape runs the cyclic sweep at a tiny scale: both enumeration
// paths must agree (the harness panics inside Cyclic on a count mismatch,
// so completing IS the differential assertion) and every row must carry
// the gated cells.
func TestCyclicShape(t *testing.T) {
	c := Config{Dataset: "synthetic", Scale: 20, Seed: 7}
	tab := Cyclic(c, 1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want triangle/diamond/cycle4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, cell := range []string{"wco_ms", "probe_ms", "frac"} {
			if v, ok := r.Cells[cell]; !ok || v < 0 {
				t.Fatalf("%s: missing or negative %s", r.X, cell)
			}
		}
	}
	if s := CyclicSpeedups(tab); len(s) != 3 {
		t.Fatalf("speedups = %v", s)
	}
}

// TestCyclicFactorShape: the factorized and per-rule drivers must find
// the same violation count (CyclicFactor panics otherwise), with > 0
// violations so the comparison measures real work.
func TestCyclicFactorShape(t *testing.T) {
	c := Config{Dataset: "synthetic", Scale: 20, Seed: 7}
	tab := CyclicFactor(c, 1)
	f, ok := tab.Get("group4", "factored_ms")
	if !ok || f <= 0 {
		t.Fatal("missing factored_ms cell")
	}
	if _, ok := tab.Get("group4", "perrule_ms"); !ok {
		t.Fatal("missing perrule_ms cell")
	}
}
