package exp

import (
	"runtime"
	"testing"
)

// TestFreezeTableShape sanity-checks the benchmark table gfdbench emits
// for the freeze experiment: every builder row present with a positive
// timing, and the speedup summary derivable.
func TestFreezeTableShape(t *testing.T) {
	tab := Freeze(Config{Dataset: "yago2", Scale: 30, Rules: 2, Seed: 1}, []int{2})
	want := []string{"x1/serial", "x1/w2", "x2/serial", "x2/w2"}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(want))
	}
	for i, x := range want {
		if tab.Rows[i].X != x {
			t.Fatalf("row %d = %q, want %q", i, tab.Rows[i].X, x)
		}
		if ms := tab.Rows[i].Cells["ms_per_freeze"]; ms <= 0 {
			t.Errorf("row %s: ms_per_freeze = %v, want > 0", x, ms)
		}
	}
	if _, ok := FreezeSpeedup(tab, 2); !ok {
		t.Error("FreezeSpeedup not derivable from the table")
	}
}

// TestFreezeSpeedupMultiCore is the acceptance gate for the parallel
// freeze pipeline: >= 2x over the serial builder at 4 workers. The ratio
// is a multi-core property — the committed BENCH_freeze.json tracks both
// builders per-row on whatever host minted it, and this test enforces the
// speedup itself wherever >= 4 CPUs are available (CI's test job; skipped
// on smaller hosts and under the race detector, whose instrumentation
// flattens the ratio).
func TestFreezeSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate; race instrumentation distorts the ratio")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("parallel speedup needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	tab := Freeze(Config{Dataset: "yago2", Scale: 1000, Rules: 4, Seed: 42}, []int{4})
	s, ok := FreezeSpeedup(tab, 4)
	if !ok {
		t.Fatal("speedup not derivable from the freeze table")
	}
	if s < 2.0 {
		t.Errorf("parallel freeze speedup at 4 workers = %.2fx, want >= 2.0x\n%s", s, tab)
	}
}
