package exp

import (
	"strings"
	"testing"
)

// TestWorkloadSweepFreezesOnce is the session-reuse acceptance probe: an
// entire sweep — every worker count and all six algorithm variants, twice
// — performs exactly one Freeze and one rule lowering on the workload's
// graph version. Before the session API each RunAlgorithm call re-derived
// reduction, grouping and (on mutated graphs) the snapshot.
func TestWorkloadSweepFreezesOnce(t *testing.T) {
	w := Prepare(small())
	// Prepare performed the one freeze of the noisy graph version (mining
	// froze the pre-noise version separately); the sweep must add zero.
	base := w.G.SnapshotBuilds()
	if base < 1 {
		t.Fatalf("workload preparation performed %d snapshot builds, want >= 1", base)
	}
	syms := w.G.Freeze().Syms()
	progs := make(map[string]any, w.Set.Len())
	for _, f := range w.Set.Rules() {
		progs[f.Name] = f.ProgramFor(syms)
	}

	for round := 0; round < 2; round++ {
		for _, n := range []int{2, 4} {
			for _, alg := range SixAlgorithms {
				if res := RunAlgorithm(alg, w, n, 3); res == nil {
					t.Fatalf("%s/n=%d returned nil", alg, n)
				}
			}
		}
	}

	if builds := w.G.SnapshotBuilds() - base; builds != 0 {
		t.Errorf("sweep performed %d extra snapshot builds, want 0 (one freeze per graph version)", builds)
	}
	// One lowering per rule: the per-rule program cache still holds the
	// artifact compiled at prepare time — nothing inside the sweep evicted
	// it by lowering against a different symbol table.
	for _, f := range w.Set.Rules() {
		if got := f.ProgramFor(syms); got != progs[f.Name] {
			t.Errorf("rule %s was re-lowered during the sweep", f.Name)
		}
	}
}

// TestSessionReuseShape sanity-checks the benchmark table gfdbench emits
// for the benchdiff gate.
func TestSessionReuseShape(t *testing.T) {
	tab := SessionReuse(small(), 2)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		v, ok := r.Cells["ms_per_round"]
		if !ok || v <= 0 {
			t.Errorf("row %s: bad ms_per_round %v", r.X, v)
		}
	}
}

// Small-scale smoke reproductions: the bench harness runs these sweeps at
// full scale; here the *shapes* are asserted on reduced workloads.

func small() Config {
	return Config{Scale: 120, Rules: 5, PatternSize: 4, Seed: 3}
}

func TestFig5VaryNShape(t *testing.T) {
	tab := Fig5VaryN(small(), []int{2, 8})
	if len(tab.Rows) != 2 || len(tab.Series) != 6 {
		t.Fatalf("table shape: %d rows, %d series", len(tab.Rows), len(tab.Series))
	}
	// Modeled parallel time must not grow with workers (it is max worker
	// busy + comm; small fixed comm noise gets slack). Real speedup
	// factors are measured by the bench harness at full scale.
	for _, alg := range []string{"repVal", "disVal"} {
		t2, _ := tab.Get("2", alg)
		t8, _ := tab.Get("8", alg)
		if t8 > t2*1.5+0.005 {
			t.Errorf("%s: modeled time grew with workers: %v -> %v", alg, t2, t8)
		}
	}
	if s := tab.String(); !strings.Contains(s, "repVal") || !strings.Contains(s, "n") {
		t.Error("table rendering broken")
	}
}

func TestFig5VarySigmaGrows(t *testing.T) {
	tab := Fig5VarySigma(small(), []int{2, 6})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More rules => at least as much total work for the sequential-ish
	// weight; assert on the workload proxy rather than noisy wall time.
	if tab.Rows[0].X >= tab.Rows[1].X && tab.Rows[0].X != tab.Rows[1].X {
		t.Errorf("rule counts not increasing: %s then %s", tab.Rows[0].X, tab.Rows[1].X)
	}
}

func TestFig5CommOnlyDisAlgorithms(t *testing.T) {
	tab := Fig5Comm(small(), []int{2, 4})
	if len(tab.Series) != 3 {
		t.Fatalf("series = %v", tab.Series)
	}
	for _, r := range tab.Rows {
		for alg, v := range r.Cells {
			if v < 0 {
				t.Errorf("%s: negative comm time", alg)
			}
		}
	}
}

func TestFig6ScaleGrows(t *testing.T) {
	c := small()
	c.Scale = 40
	tab := Fig6ScaleG(c, []int{1, 3})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Bigger graphs take longer for disVal (allow generous noise slack).
	v1 := tab.Rows[0].Cells["disVal"]
	v3 := tab.Rows[1].Cells["disVal"]
	if v3 < v1*0.5 {
		t.Errorf("3x graph faster than 1x: %v vs %v", v3, v1)
	}
}

func TestFig7AllErrorsCaught(t *testing.T) {
	findings := Fig7RealLife(200, 4, 7)
	if len(findings) != 3 {
		t.Fatalf("findings = %d", len(findings))
	}
	for _, f := range findings {
		if f.Injected == 0 {
			t.Errorf("%s: nothing injected", f.Rule)
			continue
		}
		if f.Caught < f.Injected {
			t.Errorf("%s: caught %d of %d injected errors", f.Rule, f.Caught, f.Injected)
		}
		if f.Violations == 0 {
			t.Errorf("%s: no violations reported", f.Rule)
		}
	}
}

func TestFig9AccuracyShape(t *testing.T) {
	c := small()
	c.Rules = 8
	c.NoiseRate = 0.05
	rows := Fig9Accuracy(c)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := make(map[string]AccuracyRow)
	for _, r := range rows {
		byModel[r.Model] = r
	}
	gfdRow, gcfd, bd := byModel["GFD"], byModel["GCFD"], byModel["BigDansing"]
	// The paper's shape: GFD recall >= GCFD recall (GCFD drops non-path
	// rules), and GFD == BigDansing accuracy (same rules).
	if gfdRow.Recall < gcfd.Recall {
		t.Errorf("GFD recall %v below GCFD %v", gfdRow.Recall, gcfd.Recall)
	}
	if gfdRow.Recall != bd.Recall || gfdRow.Precision != bd.Precision {
		t.Errorf("BigDansing accuracy must equal GFD: (%v,%v) vs (%v,%v)",
			bd.Recall, bd.Precision, gfdRow.Recall, gfdRow.Precision)
	}
	if gcfd.Rules >= gfdRow.Rules {
		t.Errorf("GCFD must drop rules: %d vs %d", gcfd.Rules, gfdRow.Rules)
	}
	if gfdRow.Recall <= 0 {
		t.Error("GFD must catch something at 5% noise")
	}
}

func TestSpeedupSummary(t *testing.T) {
	tab := Table{
		Series: []string{"a"},
		Rows: []Row{
			{X: "4", Cells: map[string]float64{"a": 8}},
			{X: "20", Cells: map[string]float64{"a": 2}},
		},
	}
	s := SpeedupSummary(tab)
	if s["a"] != 4 {
		t.Errorf("speedup = %v", s["a"])
	}
	if SpeedupSummary(Table{}) != nil {
		t.Error("empty table has no speedups")
	}
}

func TestPrepareDeterministic(t *testing.T) {
	a := Prepare(small())
	b := Prepare(small())
	if a.G.NumNodes() != b.G.NumNodes() || a.Set.Len() != b.Set.Len() {
		t.Error("Prepare must be deterministic")
	}
}
