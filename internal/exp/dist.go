package exp

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"gfd/internal/dist"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// DistWorkers is the shard/worker-process count the dist experiment runs.
const DistWorkers = 4

// Dist measures the real shared-nothing runtime against its in-process
// simulation: the same workload runs once through disVal (simulated
// fragments, one OS process) and once through the multi-process engine
// (one worker process per persisted shard, mmap'd cold, halo shipping
// over pipes). Both rows report measured wall clock, real shipment bytes,
// and the modeled-span oracle (max per-worker busy time + modeled comm) —
// the differential the chaos suite pins byte-exactly is asserted here
// too: the run panics if the two violation sets diverge.
//
// The dist row starts cold by contract: each round re-opens the full
// snapshot read-only and every worker mmaps its own shard, and the run
// panics if the coordinator ever builds a snapshot (the zero-build pin
// from the coldstart experiment, extended across process spawn).
//
// Metrics are the best of `rounds` measurements: process spawn races the
// OS scheduler and page cache, and a real regression survives a minimum.
func Dist(c Config, rounds int) Table {
	c = c.Defaults()
	if rounds <= 0 {
		rounds = 3
	}
	// Reshape as coldstart does: a bigger graph so per-unit work dwarfs
	// process-spawn noise, small patterns and heavy noise so the violation
	// set is non-empty and the differential below means something (the run
	// panics on a vacuous workload).
	c.Scale *= 2
	c.PatternSize = 4
	if c.Rules < 12 {
		c.Rules = 12
	}
	if c.NoiseRate < 0.4 {
		c.NoiseRate = 0.4
	}
	ctx := context.Background()

	// Untimed setup: materialize the workload, persist the full snapshot
	// and the per-fragment shards + manifest.
	dir, err := os.MkdirTemp("", "gfd-dist-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	clean := c.cleanGraph()
	set := c.Mine(clean)
	gen.Inject(clean, gen.NoiseConfig{Rate: c.NoiseRate, Seed: c.Seed + 1})
	snapPath := dir + "/g.gfds"
	if err := store.Save(ctx, clean.Freeze(), snapPath); err != nil {
		panic(err)
	}
	manifest, err := dist.WriteShards(clean.Freeze(), DistWorkers, fragment.Hash, dir, "g")
	if err != nil {
		panic(err)
	}

	type sample struct {
		wallMS, modeledMS, shippedKB, frames, violations float64
	}
	min := func(a, b sample) sample {
		return sample{
			wallMS:     math.Min(a.wallMS, b.wallMS),
			modeledMS:  math.Min(a.modeledMS, b.modeledMS),
			shippedKB:  math.Min(a.shippedKB, b.shippedKB),
			frames:     math.Min(a.frames, b.frames),
			violations: math.Min(a.violations, b.violations),
		}
	}
	toSample := func(res *validate.Result, wall time.Duration) sample {
		return sample{
			wallMS:     wall.Seconds() * 1000,
			modeledMS:  res.ModeledTime().Seconds() * 1000,
			shippedKB:  float64(res.BytesShipped) / 1024,
			frames:     float64(res.Messages),
			violations: float64(len(res.Violations)),
		}
	}

	inf := sample{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}
	disBest, distBest := inf, inf
	for i := 0; i < rounds; i++ {
		// In-process fragmented engine: the simulation the runtime mirrors.
		// Cold from the snapshot file, like the dist row.
		l, err := store.Open(ctx, snapPath)
		if err != nil {
			panic(err)
		}
		g := l.Snapshot().Graph()
		b := validate.NewBundle(g, set)
		frag := fragment.Partition(g, DistWorkers, fragment.Hash)
		start := time.Now()
		disRes, err := validate.DisValB(ctx, b, frag, validate.Options{N: DistWorkers, Seed: c.Seed}, nil)
		if err != nil {
			panic(err)
		}
		disBest = min(disBest, toSample(disRes, time.Since(start)))
		l.Close()

		// Multi-process runtime: cold open of the full snapshot for the
		// coordinator, worker processes mmapping their shards.
		l, err = store.Open(ctx, snapPath)
		if err != nil {
			panic(err)
		}
		g = l.Snapshot().Graph()
		b = validate.NewBundle(g, set)
		opt := validate.Options{
			Seed: c.Seed,
			Dist: &validate.DistOptions{ManifestPath: manifest},
		}
		start = time.Now()
		distRes, err := dist.DetectB(ctx, b, opt, nil)
		if err != nil {
			panic(err)
		}
		distBest = min(distBest, toSample(distRes, time.Since(start)))
		if builds := g.SnapshotBuilds(); builds != 0 {
			panic(fmt.Sprintf("dist coordinator built %d snapshots; the cold mmap contract is broken", builds))
		}
		if len(disRes.Violations) == 0 {
			panic("dist workload produced no violations; the differential is vacuous")
		}
		if !distRes.Violations.Equal(disRes.Violations) {
			panic(fmt.Sprintf("dist run diverged from in-process disVal: %d vs %d violations",
				len(distRes.Violations), len(disRes.Violations)))
		}
		if !distRes.Completeness.Complete() {
			panic(fmt.Sprintf("fault-free dist run incomplete: %+v", distRes.Completeness))
		}
		l.Close()
	}

	return Table{
		Title: fmt.Sprintf("Dist — multi-process shards vs in-process simulation (%s, n=%d)",
			c.Dataset, DistWorkers),
		XLabel: "engine",
		Series: []string{"ms", "modeled_ms", "shipped_kb", "frames", "violations", "snapshot_builds"},
		Rows: []Row{
			{X: "disval_sim", Cells: map[string]float64{
				"ms": disBest.wallMS, "modeled_ms": disBest.modeledMS,
				"shipped_kb": disBest.shippedKB, "frames": disBest.frames,
				"violations": disBest.violations}},
			{X: "dist_procs", Cells: map[string]float64{
				"ms": distBest.wallMS, "modeled_ms": distBest.modeledMS,
				"shipped_kb": distBest.shippedKB, "frames": distBest.frames,
				"violations": distBest.violations, "snapshot_builds": 0}},
		},
	}
}
