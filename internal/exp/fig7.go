package exp

import (
	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// Fig7Rules builds the three real-life GFDs of the paper's Fig. 7 over the
// knowledge-graph vocabulary of the YAGO2/DBpedia stand-ins.
func Fig7Rules() *core.Set {
	// GFD 1: a person cannot have the same person as both child and
	// parent. The consequent is constant-false (the paper writes it as
	// ∅ → x.val = c ∧ y.val = d for distinct constants).
	q1 := pattern.New()
	x := q1.AddNode("x", "person")
	y := q1.AddNode("y", "person")
	q1.AddEdge(x, y, "has_child")
	q1.AddEdge(x, y, "has_parent")
	gfd1 := core.MustNew("fig7_gfd1_child_parent", q1, nil,
		[]core.Literal{core.Const("x", "__absurd", "impossible")})

	// GFD 2: no entity carries two disjoint types.
	q2 := pattern.New()
	e := q2.AddNode("e", pattern.Wildcard)
	c := q2.AddNode("c", "class")
	cp := q2.AddNode("cp", "class")
	q2.AddEdge(e, c, "type")
	q2.AddEdge(e, cp, "type")
	q2.AddEdge(c, cp, "disjoint_with")
	gfd2 := core.MustNew("fig7_gfd2_disjoint_types", q2, nil,
		[]core.Literal{core.VarEq("c", "val", "cp", "val")})

	// GFD 3: a mayor's city country and party country coincide.
	q3 := pattern.New()
	p := q3.AddNode("p", "person")
	ct := q3.AddNode("ct", "city")
	z := q3.AddNode("z", "country")
	pa := q3.AddNode("pa", "party")
	zp := q3.AddNode("zp", "country")
	q3.AddEdge(p, ct, "mayor_of")
	q3.AddEdge(ct, z, "located_in")
	q3.AddEdge(p, pa, "affiliated_to")
	q3.AddEdge(pa, zp, "in_country")
	gfd3 := core.MustNew("fig7_gfd3_mayor_party", q3, nil,
		[]core.Literal{core.VarEq("z", "val", "zp", "val")})

	return core.MustNewSet(gfd1, gfd2, gfd3)
}

// Fig7Finding is one rule's detection outcome.
type Fig7Finding struct {
	Rule       string
	Injected   int // structural errors of this class injected
	Violations int // violating matches found
	Caught     int // injected entities appearing in violations
}

// Fig7RealLife reproduces Exp-5's Fig. 7: inject the paper's three
// real-life error classes into a YAGO2-like graph and report what the
// corresponding GFDs catch. Each injected error must be caught; the
// experiment fails the reproduction if Caught < Injected for any rule.
func Fig7RealLife(scale int, perKind int, seed int64) []Fig7Finding {
	if scale <= 0 {
		scale = 300
	}
	if perKind <= 0 {
		perKind = 5
	}
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: scale, Seed: seed})
	errs := gen.InjectStructural(g, perKind, seed+1)
	set := Fig7Rules()
	res := validate.RepVal(g, set, validate.Options{N: 8})

	caughtBy := func(rule string, injected []graph.NodeID) (count, caught int) {
		flagged := make(graph.NodeSet)
		for _, v := range res.Violations {
			if v.Rule != rule {
				continue
			}
			count++
			for _, n := range v.Nodes() {
				flagged.Add(n)
			}
		}
		for _, e := range injected {
			if _, ok := flagged[e]; ok {
				caught++
			}
		}
		return count, caught
	}

	var out []Fig7Finding
	v1, c1 := caughtBy("fig7_gfd1_child_parent", errs.ChildParentCycles)
	out = append(out, Fig7Finding{"fig7_gfd1_child_parent", len(errs.ChildParentCycles), v1, c1})
	v2, c2 := caughtBy("fig7_gfd2_disjoint_types", errs.DisjointTyped)
	out = append(out, Fig7Finding{"fig7_gfd2_disjoint_types", len(errs.DisjointTyped), v2, c2})
	v3, c3 := caughtBy("fig7_gfd3_mayor_party", errs.MayorMismatch)
	out = append(out, Fig7Finding{"fig7_gfd3_mayor_party", len(errs.MayorMismatch), v3, c3})
	return out
}
