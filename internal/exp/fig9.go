package exp

import (
	"context"
	"time"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/validate"
)

// AccuracyRow is one line of the Fig. 9 table: a detection model with its
// recall, precision and running time on the noise-injected graph.
type AccuracyRow struct {
	Model     string
	Recall    float64
	Precision float64
	Rules     int // rules the model could express
	Time      time.Duration
}

// Fig9Accuracy reproduces the Appendix comparison table (Fig. 9): GFDs vs
// GCFDs vs a BigDansing-style join engine on a YAGO2-like graph.
// Following the paper's methodology, rules are mined on the clean graph
// and noise is injected into sampled rule-covered entities (with the
// rules' constants taken from pre-noise values); detected entities are the
// endpoints of *failed consequent literals* of violating matches.
//
// The reproduction targets the paper's shape: GFD recall strictly above
// GCFD recall (GCFDs drop every non-path rule), identical accuracy between
// GFD and BigDansing (same rules, different evaluation), and BigDansing
// several times slower.
func Fig9Accuracy(c Config) []AccuracyRow {
	c = c.Defaults()
	g := c.cleanGraph()
	set := c.Mine(g)
	errs := gen.InjectTargeted(g, set, c.NoiseRate*10, c.Seed+1)
	truth := gen.GroundTruth(errs)

	// All three models run from one prepared session: the shared freeze
	// and rule lowering drop out, so the timed gap is purely evaluation
	// strategy (pivot-localized search vs path scans vs relational joins).
	prep, err := mustSession(g).Prepare(set)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	var out []AccuracyRow
	row := func(model string, opt validate.Options) {
		// Keep the timed region purely evaluation: derive the engine's
		// lazy artifacts (grouping variant, GCFD conversion, relational
		// encoding) first.
		prep.WarmEngine(opt)
		start := time.Now()
		res, _ := prep.Detect(ctx, opt)
		elapsed := time.Since(start)
		p, r := gen.PrecisionRecall(truth, failedLiteralNodes(g, set, res.Violations))
		out = append(out, AccuracyRow{Model: model, Recall: r, Precision: p, Rules: res.Rules, Time: elapsed})
	}
	// GFD engine (repVal, n=16); GCFD baseline (path-expressible rules
	// only); BigDansing-style join engine (all rules, join evaluation).
	row("GFD", validate.Options{Engine: validate.EngineReplicated, N: 16, NoReduce: true})
	row("GCFD", validate.Options{Engine: validate.EngineGCFD})
	row("BigDansing", validate.Options{Engine: validate.EngineBigDansing, N: 16})
	return out
}

// failedLiteralNodes extracts the inconsistent-entity set Vio(A) from a
// violation report. Constant-literal failures implicate their single
// endpoint. For a failed variable literal x.A = y.B the culprit is
// resolved by blame voting: across all failures of that literal, the
// endpoint disagreeing with the larger number of distinct partners is
// blamed (a corrupted value disagrees with everyone; an innocent partner
// disagrees only with corrupted ones). Ties blame both endpoints — from
// data alone a 1-vs-1 disagreement is symmetric.
func failedLiteralNodes(g *graph.Graph, set *core.Set, vio validate.Report) graph.NodeSet {
	out := make(graph.NodeSet)
	type litKey struct {
		rule string
		idx  int
	}
	type pair struct{ a, b graph.NodeID }
	disagree := make(map[litKey]map[graph.NodeID]map[graph.NodeID]struct{})
	var pairs []struct {
		k litKey
		p pair
	}
	record := func(k litKey, a, b graph.NodeID) {
		m := disagree[k]
		if m == nil {
			m = make(map[graph.NodeID]map[graph.NodeID]struct{})
			disagree[k] = m
		}
		if m[a] == nil {
			m[a] = make(map[graph.NodeID]struct{})
		}
		if m[b] == nil {
			m[b] = make(map[graph.NodeID]struct{})
		}
		m[a][b] = struct{}{}
		m[b][a] = struct{}{}
	}
	for _, v := range vio {
		f := set.Get(v.Rule)
		if f == nil {
			continue
		}
		for li, l := range f.Y {
			if literalHolds(g, f, v.Match, l) {
				continue
			}
			xi, _ := f.Q.VarIndex(l.X)
			if l.Kind == core.Constant {
				out.Add(v.Match[xi])
				continue
			}
			yi, _ := f.Q.VarIndex(l.Y)
			// A missing attribute unambiguously blames its owner.
			_, xok := g.Attr(v.Match[xi], l.A)
			_, yok := g.Attr(v.Match[yi], l.B)
			switch {
			case !xok:
				out.Add(v.Match[xi])
			case !yok:
				out.Add(v.Match[yi])
			default:
				k := litKey{v.Rule, li}
				record(k, v.Match[xi], v.Match[yi])
				pairs = append(pairs, struct {
					k litKey
					p pair
				}{k, pair{v.Match[xi], v.Match[yi]}})
			}
		}
	}
	for _, e := range pairs {
		ca := len(disagree[e.k][e.p.a])
		cb := len(disagree[e.k][e.p.b])
		if ca >= cb {
			out.Add(e.p.a)
		}
		if cb >= ca {
			out.Add(e.p.b)
		}
	}
	return out
}

func literalHolds(g *graph.Graph, f *core.GFD, m core.Match, l core.Literal) bool {
	xi, _ := f.Q.VarIndex(l.X)
	xv, ok := g.Attr(m[xi], l.A)
	if !ok {
		return false
	}
	if l.Kind == core.Constant {
		return xv == l.C
	}
	yi, _ := f.Q.VarIndex(l.Y)
	yv, ok := g.Attr(m[yi], l.B)
	return ok && xv == yv
}
