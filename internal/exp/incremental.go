package exp

import (
	"fmt"
	"math/rand"
	"time"

	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/validate"
)

// Incremental measures update-batch maintenance latency — the quantity
// the delta-overlay design exists for. Two maintainers process the same
// deterministic update stream against identical copies of the workload:
//
//   - overlay: the incremental detector, which folds each batch into its
//     maintained graph.Overlay and re-validates only the touched units on
//     the compiled match path (no re-freeze);
//   - refreeze: the naive recompute a stateless server would do — mutate
//     the graph, then freeze and run a full batch detection per batch.
//
// The emitted table carries per-batch wall times plus each path's
// snapshot-build count, so the benchmark gate watches both the speedup
// and the structural claim: the overlay path's builds must stay at the
// single construction freeze while the re-freeze path pays one per batch
// (a regression that silently re-freezes per batch shows up as an
// exploding build ratio long before the timing noise would catch it).
func Incremental(c Config, batches, batchSize int) Table {
	c = c.Defaults()
	if batches <= 0 {
		batches = 10
	}
	if batchSize <= 0 {
		batchSize = 4
	}
	w := Prepare(c)

	// Deterministic update stream, generated once and replayed on both
	// paths so they maintain identical graphs.
	stream := make([][]incremental.Update, batches)
	labels := w.G.Labels()
	rng := rand.New(rand.NewSource(c.Seed + 7))
	n := w.G.NumNodes()
	for b := range stream {
		ups := make([]incremental.Update, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			switch rng.Intn(3) {
			case 0:
				ups = append(ups, incremental.AddNode{
					Label: labels[rng.Intn(len(labels))],
					Attrs: graph.Attrs{"val": fmt.Sprintf("u%d_%d", b, i)},
				})
			case 1:
				from := graph.NodeID(rng.Intn(n))
				to := graph.NodeID(rng.Intn(n))
				if from == to {
					to = (to + 1) % graph.NodeID(n)
				}
				ups = append(ups, incremental.AddEdge{From: from, To: to, Label: "related_to"})
			default:
				ups = append(ups, incremental.SetAttr{
					Node:  graph.NodeID(rng.Intn(n)),
					Attr:  "val",
					Value: fmt.Sprintf("v%d_%d", b, i),
				})
			}
		}
		stream[b] = ups
	}

	// Both paths run the identical stream several times on fresh clones
	// and report the fastest sweep — scheduler noise on a per-batch
	// timescale of fractions of a millisecond would otherwise dominate
	// the gated ratio. Builds are counted from zero on the measured
	// clone, so the overlay's construction freeze is included: the steady
	// state is exactly 1, and a regression that silently re-freezes per
	// batch explodes the ratio (a zero baseline would fall below
	// benchdiff's metric floor and stop gating).
	const reps = 3
	var incMS, fullMS float64
	var incBuilds, fullBuilds int

	// Overlay path: one detector, batches applied incrementally.
	for r := 0; r < reps; r++ {
		gInc := w.G.Clone()
		det := incremental.New(gInc, w.Set)
		start := time.Now()
		for _, ups := range stream {
			det.Apply(ups...)
		}
		ms := time.Since(start).Seconds() * 1000 / float64(batches)
		if r == 0 || ms < incMS {
			incMS = ms
		}
		incBuilds = gInc.SnapshotBuilds()
	}

	// Re-freeze path: mutate directly, then full freeze + batch detection
	// per batch (the sequential engine — the comparison is maintenance
	// strategy, not parallelism).
	for r := 0; r < reps; r++ {
		gFull := w.G.Clone()
		start := time.Now()
		for _, ups := range stream {
			for _, up := range ups {
				switch u := up.(type) {
				case incremental.AddNode:
					gFull.AddNode(u.Label, u.Attrs)
				case incremental.AddEdge:
					gFull.MustAddEdge(u.From, u.To, u.Label)
				case incremental.SetAttr:
					gFull.SetAttr(u.Node, u.Attr, u.Value)
				}
			}
			validate.DetVio(gFull, w.Set)
		}
		ms := time.Since(start).Seconds() * 1000 / float64(batches)
		if r == 0 || ms < fullMS {
			fullMS = ms
		}
		fullBuilds = gFull.SnapshotBuilds()
	}

	return Table{
		Title: fmt.Sprintf("Incremental — update-batch maintenance: overlay vs re-freeze (%s, %d batches × %d updates)",
			c.Dataset, batches, batchSize),
		XLabel: "path",
		Series: []string{"ms_per_batch", "snapshot_builds"},
		Rows: []Row{
			{X: "overlay", Cells: map[string]float64{"ms_per_batch": incMS, "snapshot_builds": float64(incBuilds)}},
			{X: "refreeze", Cells: map[string]float64{"ms_per_batch": fullMS, "snapshot_builds": float64(fullBuilds)}},
		},
	}
}
