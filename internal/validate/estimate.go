package validate

import (
	"time"

	"gfd/internal/cluster"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/stats"
	"gfd/internal/workload"
)

// This file is the cached workload-estimation layer. The estimation phase
// (bPar / disPar) is the per-Detect serial prefix PR 4 left on the warm
// path: candidate listing, equi-depth partitioning, one c-hop traversal
// per pivot candidate (measureSizes — the expensive part), and unit
// assembly re-ran on every call even when nothing changed. The Bundle now
// memoizes the assembled unit set per (grouping variant, n, histogram m)
// and the block-size measurements across all variants, so:
//
//   - warm rounds (same bundle, same options) perform zero estimation
//     passes: the unit set, the modeled estimation span, and the phase's
//     comm charges are replayed from the cache (EstimationStats is the
//     probe, mirroring Graph.SnapshotBuilds);
//   - rounds after Session.Apply re-measure only the touched blocks: the
//     superseding bundle inherits the size cache pruned by the overlay's
//     touch log (a (v, r) measurement is stale only when a touched node
//     lies within r hops of v), making warm estimation update-
//     proportional like the detection phase already was.
//
// Result faithfulness: EstimateSpan is reconstructed from per-traversal
// costs recorded at measurement time (the same round-robin schedule the
// live phase uses), so the modeled n-worker spans the figures plot are
// unchanged by caching — only EstimateWall collapses on warm rounds.

// sizeReq identifies one block-size measurement |G_z̄[v]|.
type sizeReq struct {
	node   graph.NodeID
	radius int
}

// sizeVal is one cached measurement plus its traversal cost; the cost
// replays faithful modeled spans without re-traversing.
type sizeVal struct {
	size int
	cost time.Duration
}

// shipRec is one recorded estimation-phase shipment, replayed into the
// per-call cluster on warm rounds so comm accounting stays identical.
type shipRec struct {
	from, to int
	bytes    int64
}

// estKey identifies one cached estimation variant: the grouping variant
// plus the option fields the assembled unit set depends on.
type estKey struct {
	gk         groupKey
	n          int
	histogramM int
}

// estEntry is one memoized estimation phase: the pre-split unit set in
// canonical order (read-only; splitting and assignment copy), the modeled
// span, and the phase's comm charges.
type estEntry struct {
	units []workUnit
	span  time.Duration
	ships []shipRec
}

// fragEstKey adds the fragmentation identity: ship costs and candidate
// messages are per-partition artifacts.
type fragEstKey struct {
	ek   estKey
	frag *fragment.Fragmentation
}

// fragEstEntry is the fragmented-engine layer over a base estimation:
// units with per-worker ship costs attached, plus the candidate-report
// charges of disPar's first exchange.
type fragEstEntry struct {
	units     []workUnit
	span      time.Duration
	candShips []shipRec
	estShips  []shipRec
}

// planKey identifies one memoized detection plan: the estimation variant
// plus every option field the split and the balanced assignment depend
// on. seed is folded in only for randomized assignment — deterministic
// plans are shared across seeds.
type planKey struct {
	ek        estKey
	frag      *fragment.Fragmentation // nil for the replicated engine
	threshold int
	noOpt     bool
	random    bool
	seed      int64
}

// planEntry is one memoized post-split unit set with its balanced
// assignment and the derived accounting the engines report. Units and
// assignment are shared read-only across rounds: the detection runtime
// copies the assignment's top-level slice and reads unit descriptors by
// value, so no round mutates the plan.
type planEntry struct {
	units       []workUnit
	split       int
	totalWeight int64
	makespan    int64
	assign      workload.Assignment
}

// estState is the Bundle's estimation cache, guarded by Bundle.mu except
// for the traversals themselves (workers measure without the lock and
// merge results under it).
type estState struct {
	sizes       map[sizeReq]sizeVal
	entries     map[estKey]*estEntry
	fragEntries map[fragEstKey]*fragEstEntry
	plans       map[planKey]*planEntry

	builds   int // full estimation passes (unit-set cache misses)
	reuses   int // Detect rounds served without an estimation pass
	measured int // block-size traversals actually run
}

// EstStats are the estimation-cache probe counters, cumulative across the
// bundles a Prepared re-derives (they survive Session.Apply rebuilds the
// way Graph.SnapshotBuilds survives Freeze cache hits). The regression
// tests assert warm rounds leave Builds and Measured unchanged, and that
// an Apply delta re-measures exactly the touched blocks.
type EstStats struct {
	Builds   int
	Reused   int
	Measured int
}

// EstimationStats returns the bundle's estimation-cache counters.
func (b *Bundle) EstimationStats() EstStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return EstStats{Builds: b.est.builds, Reused: b.est.reuses, Measured: b.est.measured}
}

func replayShips(cl *cluster.Cluster, ships []shipRec) {
	for _, s := range ships {
		cl.Ship(s.from, s.to, s.bytes)
	}
}

// estimateFor returns the pre-split unit set and modeled estimation span
// for the given grouping variant, serving warm rounds entirely from the
// cache (comm charges replayed, zero traversals). The returned slice is
// shared and read-only; applySplit copies before mutating.
//
// Estimation is not unit-granular, so a panic here (recovered by the
// cluster into a *WorkerError) is not retried: the error propagates and
// the failed pass is not cached.
func (b *Bundle) estimateFor(cl *cluster.Cluster, groups []*ruleGroup, gk groupKey, opt Options) ([]workUnit, time.Duration, error) {
	e, err := b.baseEstimate(cl, groups, gk, opt)
	if err != nil {
		return nil, 0, err
	}
	return e.units, e.span, nil
}

func (b *Bundle) baseEstimate(cl *cluster.Cluster, groups []*ruleGroup, gk groupKey, opt Options) (*estEntry, error) {
	key := estKey{gk: gk, n: opt.N, histogramM: opt.HistogramM}
	b.mu.Lock()
	if e, ok := b.est.entries[key]; ok {
		b.est.reuses++
		b.mu.Unlock()
		replayShips(cl, e.ships)
		cl.EndRound()
		return e, nil
	}
	b.mu.Unlock()

	var ships []shipRec
	ship := func(from, to int, bytes int64) {
		ships = append(ships, shipRec{from, to, bytes})
		cl.Ship(from, to, bytes)
	}
	units, span, err := b.assembleUnits(cl, groups, opt, ship)
	if err != nil {
		return nil, err
	}
	cl.EndRound()
	e := &estEntry{units: units, span: span, ships: ships}

	b.mu.Lock()
	if prev, dup := b.est.entries[key]; dup {
		// A concurrent cold round won the race; share its entry.
		e = prev
	} else if len(b.est.entries) < maxEstEntries {
		if b.est.entries == nil {
			b.est.entries = make(map[estKey]*estEntry, 2)
		}
		b.est.entries[key] = e
	}
	b.est.builds++
	b.mu.Unlock()
	return e, nil
}

// maxEstEntries / maxFragEstEntries bound the per-bundle variant caches:
// real sweeps use a handful of (variant, n) combinations, so past the cap
// a round simply runs uncached (still correct) instead of letting a
// caller iterating arbitrary options — or handing a fresh Options.Frag to
// every Detect — grow the bundle without bound.
const (
	maxEstEntries     = 64
	maxFragEstEntries = 16
	maxPlanEntries    = 64
)

// planFor returns the post-split unit set and balanced assignment for the
// options' variant, memoized per variant. The split copy, the weights
// scan, and the LPT / bi-criteria balance are the per-call serial prefix
// between (cached) estimation and the workers' first emission; replaying
// them from the cache bounds the pull pipeline's time-to-first-violation
// by scheduler startup rather than re-planning — latency scales with the
// answer, not the unit count. Comm charges (estimation replay and, in the
// callers, unit-descriptor shipments) still flow through cl on every
// round, so the modeled figures are unchanged by caching.
func (b *Bundle) planFor(cl *cluster.Cluster, groups []*ruleGroup, gk groupKey, opt Options, frag *fragment.Fragmentation) (*planEntry, time.Duration, error) {
	var (
		units []workUnit
		span  time.Duration
		err   error
	)
	if frag != nil {
		units, span, err = b.estimateFrag(cl, groups, gk, opt, frag)
	} else {
		units, span, err = b.estimateFor(cl, groups, gk, opt)
	}
	if err != nil {
		return nil, 0, err
	}
	key := planKey{
		ek:        estKey{gk: gk, n: opt.N, histogramM: opt.HistogramM},
		frag:      frag,
		threshold: opt.SplitThreshold,
		noOpt:     opt.NoOptimize,
		random:    opt.RandomAssign,
	}
	if opt.RandomAssign {
		key.seed = opt.Seed
	}
	b.mu.Lock()
	if p, ok := b.est.plans[key]; ok {
		b.mu.Unlock()
		return p, span, nil
	}
	b.mu.Unlock()

	theta := splitThreshold(opt, units)
	p := &planEntry{}
	p.units, p.split = applySplit(units, groups, theta)
	weights := make([]int, len(p.units))
	for i, u := range p.units {
		weights[i] = u.Weight()
		p.totalWeight += int64(u.Weight())
	}
	switch {
	case opt.RandomAssign:
		p.assign = workload.BalanceRandom(weights, opt.N, opt.Seed)
	case frag != nil:
		cc := func(unit, worker int) int64 { return p.units[unit].shipBytes[worker] }
		p.assign = workload.BalanceBiCriteria(weights, opt.N, cc, commCostWeight)
	default:
		p.assign = workload.BalanceLPT(weights, opt.N)
	}
	p.makespan = p.assign.Makespan(weights)

	b.mu.Lock()
	if prev, dup := b.est.plans[key]; dup {
		// A concurrent cold round won the race; share its entry.
		p = prev
	} else if len(b.est.plans) < maxPlanEntries {
		if b.est.plans == nil {
			b.est.plans = make(map[planKey]*planEntry, 2)
		}
		b.est.plans[key] = p
	}
	b.mu.Unlock()
	return p, span, nil
}

// estimateFrag is the fragmented-engine estimation: disPar's candidate
// reports, the shared base estimation, and per-worker ship costs attached
// to a private copy of the units — all memoized per (variant, partition).
func (b *Bundle) estimateFrag(cl *cluster.Cluster, groups []*ruleGroup, gk groupKey, opt Options, frag *fragment.Fragmentation) ([]workUnit, time.Duration, error) {
	key := fragEstKey{ek: estKey{gk: gk, n: opt.N, histogramM: opt.HistogramM}, frag: frag}
	b.mu.Lock()
	if e, ok := b.est.fragEntries[key]; ok {
		b.est.reuses++
		b.mu.Unlock()
		replayShips(cl, e.candShips)
		cl.EndRound()
		replayShips(cl, e.estShips)
		cl.EndRound()
		return e.units, e.span, nil
	}
	b.mu.Unlock()

	var candShips []shipRec
	chargeCandidateMessages(b.g, func(from, to int, bytes int64) {
		candShips = append(candShips, shipRec{from, to, bytes})
		cl.Ship(from, to, bytes)
	}, frag, groups)
	cl.EndRound()
	base, err := b.baseEstimate(cl, groups, gk, opt)
	if err != nil {
		return nil, 0, err
	}
	units := append([]workUnit(nil), base.units...)
	for i := range units {
		attachShipCosts(b.g, b.topo, frag, &units[i])
	}
	e := &fragEstEntry{units: units, span: base.span, candShips: candShips, estShips: base.ships}

	b.mu.Lock()
	if prev, dup := b.est.fragEntries[key]; dup {
		e = prev
	} else if len(b.est.fragEntries) < maxFragEstEntries {
		if b.est.fragEntries == nil {
			b.est.fragEntries = make(map[fragEstKey]*fragEstEntry, 2)
		}
		b.est.fragEntries[key] = e
	}
	b.mu.Unlock()
	return e.units, e.span, nil
}

// assembleUnits runs the parallel workload-estimation phase shared by
// repVal and disVal: pivot candidate lists are split into equi-depth
// ranges, range combinations are distributed round-robin to workers, each
// worker assembles unit descriptors from the (cached) block-size
// measurements and reports them to the coordinator via ship. The caller
// owns the communication round.
func (b *Bundle) assembleUnits(cl *cluster.Cluster, groups []*ruleGroup, opt Options, ship func(from, to int, bytes int64)) ([]workUnit, time.Duration, error) {
	topo := b.topo
	type task struct {
		group  int
		ranges []stats.Range // one per component
	}
	var tasks []task
	cands := make([][][]graph.NodeID, len(groups)) // group -> component -> sorted candidates
	for gi, grp := range groups {
		k := grp.pivot.Arity()
		cands[gi] = make([][]graph.NodeID, k)
		ranges := make([][]stats.Range, k)
		for i := 0; i < k; i++ {
			sorted, rs := stats.EquiDepthByValue(b.g, grp.pivot.CandidatesIn(topo, i), "val", opt.HistogramM)
			cands[gi][i] = sorted
			ranges[i] = rs
		}
		// Cross-product of per-component ranges; for symmetric deduped
		// patterns only ordered range pairs are kept (Example 10).
		symmetric := !opt.NoOptimize && grp.pivot.Symmetric() && k == 2
		switch k {
		case 1:
			for _, r := range ranges[0] {
				tasks = append(tasks, task{group: gi, ranges: []stats.Range{r}})
			}
		case 2:
			for i, r1 := range ranges[0] {
				for j, r2 := range ranges[1] {
					if symmetric && j < i {
						continue
					}
					tasks = append(tasks, task{group: gi, ranges: []stats.Range{r1, r2}})
				}
			}
		default:
			// k > 2 is rare; a single task covers the full cross product.
			full := make([]stats.Range, k)
			for i := range full {
				full[i] = stats.Range{Lo: 0, Hi: len(cands[gi][i])}
			}
			tasks = append(tasks, task{group: gi, ranges: full})
		}
	}

	// Phase A: resolve every needed c-hop block size, traversing only the
	// pairs the bundle-level cache is missing.
	sizeOf, sizeSpan, err := b.measureSizes(cl, groups, cands, opt.N)
	if err != nil {
		return nil, 0, err
	}

	// Phase B: workers assemble the unit descriptors for their range
	// combinations from the resolved sizes.
	perWorker := make([][]workUnit, opt.N)
	busy, err := cl.RunMeasured(func(w int) {
		var mine []workUnit
		for ti := w; ti < len(tasks); ti += opt.N {
			t := tasks[ti]
			grp := groups[t.group]
			slice := make([][]graph.NodeID, len(t.ranges))
			for i, r := range t.ranges {
				slice[i] = cands[t.group][i][r.Lo:r.Hi]
			}
			symmetric := !opt.NoOptimize && grp.pivot.Symmetric()
			// Within the diagonal range pair the ordered-pair rule applies;
			// BuildUnitsSized handles it via DedupSymmetric. Off-diagonal
			// pairs are disjoint, so the flag only prunes the diagonal.
			dedup := symmetric && len(t.ranges) == 2 && t.ranges[0] == t.ranges[1]
			us := workload.BuildUnitsSized(grp.pivot, slice, sizeOf, workload.BuildOptions{DedupSymmetric: dedup})
			for _, u := range us {
				mine = append(mine, workUnit{Unit: u, group: t.group})
			}
		}
		perWorker[w] = mine
	})
	if err != nil {
		return nil, 0, err
	}
	var units []workUnit
	for w, mine := range perWorker {
		units = append(units, mine...)
		// Report ⟨v̄_z, |G_z̄|⟩ descriptors to the coordinator (one batched
		// message per worker).
		ship(w, cluster.Coordinator, int64(len(mine))*unitDescriptorBytes)
	}
	return units, sizeSpan + cluster.MaxSpan(busy), nil
}

// measureSizes resolves |G_z̄[z]| for every (candidate, radius) pair any
// group needs: cached pairs are read back, missing ones are traversed in
// parallel (each assigned to exactly one worker) and added to the
// bundle-level cache with their traversal cost. The modeled span is
// reconstructed from the per-pair costs over the round-robin schedule, so
// it is faithful to a from-scratch n-worker phase whether the pairs were
// cached or traversed this round.
func (b *Bundle) measureSizes(cl *cluster.Cluster, groups []*ruleGroup, cands [][][]graph.NodeID, n int) (func(graph.NodeID, int) int, time.Duration, error) {
	seen := make(map[sizeReq]struct{})
	var reqs []sizeReq
	for gi, grp := range groups {
		for i := 0; i < grp.pivot.Arity(); i++ {
			r := grp.pivot.Radii[i]
			for _, v := range cands[gi][i] {
				k := sizeReq{v, r}
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					reqs = append(reqs, k)
				}
			}
		}
	}
	// The size cache is copy-on-write: readers take the current map as an
	// immutable snapshot (lock-free reads during parallel unit assembly),
	// writers publish a merged replacement under the lock. A superseded
	// map stays valid for any still-running round holding it.
	b.mu.Lock()
	resolved := b.est.sizes
	b.mu.Unlock()
	var missing []sizeReq
	for _, k := range reqs {
		if _, ok := resolved[k]; !ok {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		topo := b.topo
		partial := make([]map[sizeReq]sizeVal, n)
		_, err := cl.RunMeasured(func(w int) {
			mine := make(map[sizeReq]sizeVal)
			start := time.Now()
			var weight int64
			for i := w; i < len(missing); i += n {
				sz := topo.NeighborhoodSize(missing[i].node, missing[i].radius)
				mine[missing[i]] = sizeVal{size: sz}
				weight += int64(sz) + 1
			}
			// Attribute the worker's busy time to its traversals in
			// proportion to block size (traversal cost is linear in it):
			// per-traversal clock reads would tax the cold path the cache
			// exists to keep cheap.
			if total := time.Since(start); weight > 0 {
				for k, v := range mine {
					v.cost = time.Duration(int64(total) * (int64(v.size) + 1) / weight)
					mine[k] = v
				}
			}
			partial[w] = mine
		})
		if err != nil {
			// A measurement worker died; the completed traversals from the
			// surviving workers are still valid, but this estimation pass
			// cannot finish. Do not pollute the cache with a partial merge.
			return nil, 0, err
		}
		b.mu.Lock()
		merged := make(map[sizeReq]sizeVal, len(b.est.sizes)+len(missing))
		for k, v := range b.est.sizes {
			merged[k] = v
		}
		for _, m := range partial {
			for k, v := range m {
				merged[k] = v
			}
		}
		b.est.sizes = merged
		b.est.measured += len(missing)
		b.mu.Unlock()
		resolved = merged
	}
	busy := make([]time.Duration, n)
	for i, k := range reqs {
		busy[i%n] += resolved[k].cost
	}
	sizeOf := func(v graph.NodeID, c int) int { return resolved[sizeReq{v, c}].size }
	return sizeOf, cluster.MaxSpan(busy), nil
}

// inheritEstimationLocked carries the estimation cache across a bundle
// rebuild (the caller holds prev.mu; b is not yet shared). Counters always
// carry — they are cumulative probes. The size cache carries only when the
// topology deltas separating the two bundles are known from an overlay
// touch log, pruned to drop every measurement a touched node could have
// changed (within radius); assembled unit sets are always re-derived, so
// new candidates and shifted equi-depth ranges are picked up, from cached
// sizes wherever the blocks were not touched.
func (b *Bundle) inheritEstimationLocked(prev *Bundle) {
	b.est.builds = prev.est.builds
	b.est.reuses = prev.est.reuses
	b.est.measured = prev.est.measured
	if len(prev.est.sizes) == 0 {
		return
	}
	var touched []graph.NodeID
	switch pt := prev.topo.(type) {
	case *graph.Overlay:
		// Normal warm path: the session's overlay absorbed the deltas (and
		// may have been superseded by a compacted view of the same graph).
		if !pt.Synced() || pt.Graph() != b.g {
			return
		}
		touched = pt.TouchedSince(prev.touchMark)
	case *graph.Snapshot:
		// First Apply after a cold prepare: the new overlay patches the
		// very snapshot prev ran on, so its whole touch log is the delta.
		ov, ok := b.topo.(*graph.Overlay)
		if !ok || ov.Base() != pt || ov.Graph() != b.g {
			return
		}
		touched = ov.TouchedSince(0)
	default:
		return
	}
	if len(touched) == 0 {
		// Attribute-only deltas: every measurement survives. The map is
		// copy-on-write, so sharing it is safe.
		b.est.sizes = prev.est.sizes
		return
	}
	maxR := 0
	for k := range prev.est.sizes {
		if k.radius > maxR {
			maxR = k.radius
		}
	}
	stale := distWithin(b.topo, touched, maxR)
	sizes := make(map[sizeReq]sizeVal, len(prev.est.sizes))
	for k, v := range prev.est.sizes {
		if d, ok := stale[k.node]; ok && d <= k.radius {
			continue
		}
		sizes[k] = v
	}
	b.est.sizes = sizes
}

// distWithin runs a multi-source undirected BFS from the touched nodes up
// to maxR hops and returns each reached node's hop distance to the nearest
// source — the stale region: a cached (v, r) measurement can only have
// changed if dist(v) <= r. Distances are computed on the new topology;
// updates are insert-only, so new edges can only shorten distances, which
// errs on the side of re-measuring.
func distWithin(topo graph.Topology, sources []graph.NodeID, maxR int) map[graph.NodeID]int {
	dist := make(map[graph.NodeID]int, len(sources)*4)
	var frontier []graph.NodeID
	for _, v := range sources {
		if _, ok := dist[v]; !ok {
			dist[v] = 0
			frontier = append(frontier, v)
		}
	}
	for hop := 1; hop <= maxR && len(frontier) > 0; hop++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, e := range topo.Out(v) {
				if _, ok := dist[e.To]; !ok {
					dist[e.To] = hop
					next = append(next, e.To)
				}
			}
			for _, e := range topo.In(v) {
				if _, ok := dist[e.To]; !ok {
					dist[e.To] = hop
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return dist
}
