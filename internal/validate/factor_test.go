package validate

import (
	"context"
	"fmt"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// --- fixtures: a ≥4-rule group sharing a triangle core ---------------------

// tailRule builds a rule whose pattern extends the shared triangle core
// a-[ab]->b-[bc]->c, a-[ac]->c with one extra tail node C-[label]->Tail,
// plus a VarEq consequence. The core is cyclic, so the structural
// profitability guard accepts it.
func tailRule(name, tailLabel, edgeLabel string, lit core.Literal) *core.GFD {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, c, "ac")
	if tailLabel != "" {
		t := q.AddNode("t", tailLabel)
		q.AddEdge(c, t, edgeLabel)
	}
	return core.MustNew(name, q, nil, []core.Literal{lit})
}

// sharedCoreSet is four rules over the same triangle prefix: three with
// distinct tails (proper-prefix branches) and one that IS the core (a
// full-coverage branch).
func sharedCoreSet() *core.Set {
	return core.MustNewSet(
		tailRule("r1", "D", "cd", core.VarEq("a", "val", "t", "val")),
		tailRule("r2", "E", "ce", core.VarEq("b", "val", "t", "val")),
		tailRule("r3", "F", "cf", core.VarEq("a", "val", "b", "val")),
		tailRule("r4", "", "", core.VarEq("a", "val", "b", "val")),
	)
}

// sharedCoreGraph keeps the six classes the same size so the class-size
// guard accepts the group, and mixes values so rules both hold and
// violate.
func sharedCoreGraph() *graph.Graph {
	g := graph.New(0, 0)
	val := func(i int) string { return fmt.Sprintf("v%d", i%3) }
	for i := 0; i < 5; i++ {
		a := g.AddNode("A", graph.Attrs{"val": val(i)})
		b := g.AddNode("B", graph.Attrs{"val": val(i + 1)})
		c := g.AddNode("C", graph.Attrs{"val": val(i + 2)})
		g.MustAddEdge(a, b, "ab")
		g.MustAddEdge(b, c, "bc")
		g.MustAddEdge(a, c, "ac")
		d := g.AddNode("D", graph.Attrs{"val": val(i + 1)})
		e := g.AddNode("E", graph.Attrs{"val": val(i + 1)})
		f := g.AddNode("F", graph.Attrs{"val": val(i)})
		g.MustAddEdge(c, d, "cd")
		g.MustAddEdge(c, e, "ce")
		g.MustAddEdge(c, f, "cf")
	}
	return g
}

func collectWith(t *testing.T, run func(context.Context, *Bundle, Sink) error, g *graph.Graph, set *core.Set) Report {
	t.Helper()
	sink := NewCollectSink(1)
	if err := run(context.Background(), NewBundle(g, set), sink); err != nil {
		t.Fatalf("detection failed: %v", err)
	}
	r := sink.Report()
	r.Sort()
	return r
}

// --- tests -----------------------------------------------------------------

func TestFactorGroupsFormOnSharedCore(t *testing.T) {
	b := NewBundle(sharedCoreGraph(), sharedCoreSet())
	groups := b.factorGroups()
	var factored *factorGroup
	for _, g := range groups {
		if g.core != nil {
			factored = g
		}
	}
	if factored == nil {
		t.Fatal("no factorized group formed over a 4-rule shared core")
	}
	if len(factored.branches) != 4 {
		t.Fatalf("group has %d branches, want 4", len(factored.branches))
	}
	if factored.core.NumNodes() != 3 || factored.core.NumEdges() != 3 {
		t.Fatalf("core = %s, want the 3-node triangle prefix", factored.core)
	}
	fulls := 0
	for _, br := range factored.branches {
		if br.full {
			fulls++
		}
	}
	if fulls != 1 {
		t.Fatalf("full-coverage branches = %d, want exactly 1 (r4)", fulls)
	}
	// Second call returns the cached slice.
	if &b.factorGroups()[0].branches[0] != &groups[0].branches[0] {
		t.Fatal("factor groups not cached per bundle")
	}
}

func TestFactorizedMatchesPerRuleOnSharedCore(t *testing.T) {
	g, set := sharedCoreGraph(), sharedCoreSet()
	want := collectWith(t, DetVioPerRuleB, g, set)
	if len(want) == 0 {
		t.Fatal("fixture produced no violations; test is vacuous")
	}
	got := collectWith(t, DetVioB, g, set)
	if !got.Equal(want) {
		t.Fatalf("factorized report differs: %d violations, want %d", len(got), len(want))
	}
}

// TestFactorizedGuardDecline plants one member whose most selective class
// (a single G node) lies outside the (cyclic) core: the 4× class-size
// guard must decline the group, and the per-rule fallback must still
// produce identical results.
func TestFactorizedGuardDecline(t *testing.T) {
	g := sharedCoreGraph()
	gn := g.AddNode("G", graph.Attrs{"val": "v0"})
	g.MustAddEdge(2, gn, "cg") // node 2 is the first C
	set := core.MustNewSet(
		tailRule("r1", "D", "cd", core.VarEq("a", "val", "t", "val")),
		tailRule("r5", "G", "cg", core.VarEq("a", "val", "t", "val")),
	)
	b := NewBundle(g, set)
	for _, grp := range b.factorGroups() {
		if grp.core != nil && len(grp.branches) > 1 {
			t.Fatal("guard should decline: one member's min class (|G|=1) is far below the core's")
		}
	}
	want := collectWith(t, DetVioPerRuleB, g, set)
	got := collectWith(t, DetVioB, g, set)
	if !got.Equal(want) {
		t.Fatalf("declined-group report differs: %d vs %d", len(got), len(want))
	}
}

// TestFactorizedDeclinesTreeCore: rules sharing only an acyclic prefix
// must NOT factorize — a tree core enumerates in near-constant amortized
// time per match, so the per-core-match inner-enumeration setup the
// factorized driver pays would exceed the re-walk it saves. The
// structural guard declines and the per-rule fallback stays exact.
func TestFactorizedDeclinesTreeCore(t *testing.T) {
	pathRule := func(name, tailLabel, edgeLabel string, lit core.Literal) *core.GFD {
		q := pattern.New()
		a := q.AddNode("a", "A")
		b := q.AddNode("b", "B")
		q.AddEdge(a, b, "ab")
		if tailLabel != "" {
			t := q.AddNode("t", tailLabel)
			q.AddEdge(b, t, edgeLabel)
		}
		return core.MustNew(name, q, nil, []core.Literal{lit})
	}
	set := core.MustNewSet(
		pathRule("p1", "D", "bd", core.VarEq("a", "val", "t", "val")),
		pathRule("p2", "E", "be", core.VarEq("b", "val", "t", "val")),
		pathRule("p3", "", "", core.VarEq("a", "val", "b", "val")),
	)
	g := graph.New(0, 0)
	val := func(i int) string { return fmt.Sprintf("v%d", i%3) }
	for i := 0; i < 5; i++ {
		a := g.AddNode("A", graph.Attrs{"val": val(i)})
		b := g.AddNode("B", graph.Attrs{"val": val(i + 1)})
		g.MustAddEdge(a, b, "ab")
		d := g.AddNode("D", graph.Attrs{"val": val(i)})
		e := g.AddNode("E", graph.Attrs{"val": val(i)})
		g.MustAddEdge(b, d, "bd")
		g.MustAddEdge(b, e, "be")
	}
	b := NewBundle(g, set)
	for _, grp := range b.factorGroups() {
		if grp.core != nil {
			t.Fatalf("tree-core group factorized (core %s); acyclic cores must decline", grp.core)
		}
	}
	want := collectWith(t, DetVioPerRuleB, g, set)
	if len(want) == 0 {
		t.Fatal("fixture produced no violations; test is vacuous")
	}
	got := collectWith(t, DetVioB, g, set)
	if !got.Equal(want) {
		t.Fatalf("declined tree-core report differs: %d vs %d", len(got), len(want))
	}
}

// TestFactorizedMatchesPerRuleOnMinedWorkloads is the random differential:
// generated graphs, mined rule sets (which often share cores), factorized
// vs per-rule must agree violation-for-violation.
func TestFactorizedMatchesPerRuleOnMinedWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		var g *graph.Graph
		if seed%2 == 0 {
			g = gen.YAGO2Like(gen.DatasetConfig{Scale: 120, Seed: seed})
		} else {
			g = gen.Synthetic(gen.SyntheticConfig{Nodes: 400, Edges: 1200, Seed: seed})
		}
		gen.Inject(g, gen.NoiseConfig{Rate: 0.08, Seed: seed + 100})
		set := gen.MineGFDs(g, gen.MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.25, Seed: seed})
		if set.Len() == 0 {
			continue
		}
		want := collectWith(t, DetVioPerRuleB, g, set)
		got := collectWith(t, DetVioB, g, set)
		if !got.Equal(want) {
			t.Fatalf("seed %d: factorized %d violations, per-rule %d", seed, len(got), len(want))
		}
	}
}

func TestFactorizedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := DetVioB(ctx, NewBundle(sharedCoreGraph(), sharedCoreSet()), NewCollectSink(1))
	if err == nil {
		t.Skip("enumeration finished before the first cancellation probe")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFactorizedSinkStop(t *testing.T) {
	seen := 0
	err := DetVioB(context.Background(), NewBundle(sharedCoreGraph(), sharedCoreSet()),
		Callback(func(Violation) bool {
			seen++
			return false // refuse after the first violation
		}))
	if err != nil {
		t.Fatalf("sink stop must not error: %v", err)
	}
	if seen != 1 {
		t.Fatalf("sink saw %d violations after stopping at 1", seen)
	}
}
