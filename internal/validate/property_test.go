package validate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// randomWorkload builds a small random graph plus a random rule, both
// derived deterministically from a seed — the generator for the
// end-to-end equivalence properties.
func randomWorkload(seed int64) (*graph.Graph, *core.Set) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c"}
	edgeLabels := []string{"e", "f"}
	attrs := []string{"p", "q"}

	n := 8 + rng.Intn(16)
	g := graph.New(n, 0)
	for i := 0; i < n; i++ {
		am := graph.Attrs{}
		for _, a := range attrs {
			if rng.Intn(3) > 0 { // attributes may be missing
				am[a] = fmt.Sprintf("v%d", rng.Intn(3))
			}
		}
		g.AddNode(labels[rng.Intn(len(labels))], am)
	}
	nEdges := n + rng.Intn(2*n)
	for e := 0; e < nEdges; e++ {
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		if from != to {
			g.MustAddEdge(from, to, edgeLabels[rng.Intn(len(edgeLabels))])
		}
	}

	// Random pattern: 2-4 nodes, chain plus a random extra edge; possibly
	// a second single-node component.
	q := pattern.New()
	pn := 2 + rng.Intn(3)
	for i := 0; i < pn; i++ {
		q.AddNode(pattern.Var(fmt.Sprintf("v%d", i)), labels[rng.Intn(len(labels))])
	}
	for i := 1; i < pn; i++ {
		q.AddEdge(i-1, i, edgeLabels[rng.Intn(len(edgeLabels))])
	}
	if rng.Intn(2) == 0 && pn > 2 {
		q.AddEdge(0, pn-1, edgeLabels[rng.Intn(len(edgeLabels))])
	}
	if rng.Intn(3) == 0 {
		q.AddNode(pattern.Var("iso"), labels[rng.Intn(len(labels))])
	}

	randLit := func() core.Literal {
		vars := q.Vars()
		x := vars[rng.Intn(len(vars))]
		if rng.Intn(2) == 0 {
			return core.Const(x, attrs[rng.Intn(len(attrs))], fmt.Sprintf("v%d", rng.Intn(3)))
		}
		y := vars[rng.Intn(len(vars))]
		return core.VarEq(x, attrs[rng.Intn(len(attrs))], y, attrs[rng.Intn(len(attrs))])
	}
	var x, y []core.Literal
	for i := 0; i < rng.Intn(2); i++ {
		x = append(x, randLit())
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		y = append(y, randLit())
	}
	return g, core.MustNewSet(core.MustNew("r", q, x, y))
}

// TestPropertyEnginesEquivalent is the central end-to-end property: on
// arbitrary graphs and rules, repVal and disVal (all variants) compute
// exactly detVio's violation set.
func TestPropertyEnginesEquivalent(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := int64(seedRaw)
		g, set := randomWorkload(seed)
		want := DetVio(g, set)
		for _, opt := range []Options{
			{N: 1, NoReduce: true},
			{N: 3, NoReduce: true},
			{N: 3, RandomAssign: true, Seed: seed, NoReduce: true},
			{N: 3, NoOptimize: true},
			{N: 3, SplitThreshold: 4, NoReduce: true},
		} {
			if !RepVal(g, set, opt).Violations.Equal(want) {
				t.Logf("seed %d: repVal(%+v) diverged", seed, opt)
				return false
			}
			frag := fragment.Partition(g, opt.N, fragment.Hash)
			if !DisVal(g, frag, set, opt).Violations.Equal(want) {
				t.Logf("seed %d: disVal(%+v) diverged", seed, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNormalizePreservesSemantics: a match violates ϕ iff it
// violates some rule of ϕ's normal form.
func TestPropertyNormalizePreservesSemantics(t *testing.T) {
	f := func(seedRaw uint32) bool {
		g, set := randomWorkload(int64(seedRaw))
		ruleOrig := set.Rules()[0]
		norm := ruleOrig.Normalize()
		normSet := core.MustNewSet(norm...)
		want := DetVio(g, set)
		got := DetVio(g, normSet)
		// Entities flagged must coincide (multiple normalized rules may
		// flag the same match, so counts differ but entity sets must not).
		wantNodes, gotNodes := want.ViolatingNodes(), got.ViolatingNodes()
		if wantNodes.Len() != gotNodes.Len() {
			return false
		}
		for v := range wantNodes {
			if !gotNodes.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySatisfiesIffNoViolations: Satisfies(g, Σ) == (Vio = ∅).
func TestPropertySatisfiesIffNoViolations(t *testing.T) {
	f := func(seedRaw uint32) bool {
		g, set := randomWorkload(int64(seedRaw))
		return Satisfies(g, set) == (len(DetVio(g, set)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFragmentationInvariant: the violation set is independent of
// how the graph is fragmented.
func TestPropertyFragmentationInvariant(t *testing.T) {
	f := func(seedRaw uint32) bool {
		g, set := randomWorkload(int64(seedRaw))
		a := DisVal(g, fragment.Partition(g, 2, fragment.Hash), set, Options{N: 2, NoReduce: true})
		b := DisVal(g, fragment.Partition(g, 5, fragment.Range), set, Options{N: 5, NoReduce: true})
		return a.Violations.Equal(b.Violations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
