package validate

import (
	"context"
	"fmt"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/fault"
	"gfd/internal/graph"
	"gfd/internal/workload"
)

// This file is the seam between the in-process engines and the
// shared-nothing runtime in internal/dist: a serializable view of the
// memoized workload plan (DistPlan) for the coordinator, and a per-unit
// execution facade (UnitRunner) for the worker process. Both sides run
// the same unitDetector the in-process engines use; what crosses the
// process boundary is only unit descriptors, halo data, and violations.

// DistOptions configures EngineDistributed. It is carried on
// Options.Dist and ignored by every other engine.
type DistOptions struct {
	// ManifestPath locates the shard manifest written by
	// fragment.SaveShards / gfdgen -fragments (a JSON file naming the
	// per-fragment .gfds files, the partition strategy, and the node
	// count). Required.
	ManifestPath string
	// Command is the argv prefix used to spawn one worker process per
	// shard. Empty defaults to re-executing the current binary; the child
	// is recognized by environment (dist.MaybeWorker), not by flags, so
	// any binary that calls MaybeWorker early in main works.
	Command []string
	// HeartbeatInterval is how often an idle worker writes a heartbeat
	// frame; the coordinator declares a worker lost after three silent
	// intervals. 0 defaults to dist.DefaultHeartbeat.
	HeartbeatInterval time.Duration
	// HandshakeTimeout bounds spawn-to-READY; a worker that cannot open
	// its shard in time is killed and its units reassigned. 0 defaults to
	// dist.DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// MaxRespawns caps how many replacement processes the coordinator
	// starts per worker slot after a death. Respawned processes never
	// re-arm fault plans (a real crash would not either). Negative
	// disables respawn; 0 defaults to 1.
	MaxRespawns int
}

// DistUnit is the wire-facing descriptor of one work unit: everything a
// worker process needs to reconstruct the exact workUnit the in-process
// engines would run, given that it rebuilds the identical rule groups
// from the shipped effective rule set.
type DistUnit struct {
	ID         int // index into DistPlan.Units — the unit's global identity
	Group      int // rule-group index (group order is deterministic in rule order)
	Candidates []graph.NodeID
	StripeMod  int // 0 = unstriped
	StripeRem  int
	BlockSize  int
}

// Weight is the unit's scheduling weight (its estimated block size).
func (u DistUnit) Weight() int64 { return int64(u.BlockSize) }

// DistPlan is the coordinator's serializable image of one memoized
// workload plan: the effective rule set (post-reduction — workers must
// not reduce again), the grouping flags workers need to rebuild identical
// group indices, the unit descriptors, and the balanced initial
// assignment with its modeled accounting.
type DistPlan struct {
	Set            *core.Set // effective rule set; ship via core.WriteRules
	Combine        bool      // multi-query grouping was applied
	ArbitraryPivot bool
	Groups         int
	Units          []DistUnit
	Assign         [][]int // worker -> unit IDs, LPT-balanced
	Split          int     // units produced by replicate-and-split
	TotalWeight    int64
	Makespan       int64
	EstimateSpan   time.Duration

	b     *Bundle
	units []workUnit
}

// DistPlan derives the distributed execution plan from the bundle's
// memoized estimation caches, charging estimation shipment against cl
// exactly as repVal does (the modeled-span oracle the measured run is
// compared to). The plan is estimated against the coordinator's replicated
// topology with frag == nil: ownership lives in the shard manifest, not in
// an in-memory Fragmentation, so deriving the plan performs no partition
// and no snapshot build.
func (b *Bundle) DistPlan(cl *cluster.Cluster, opt Options) (*DistPlan, error) {
	opt = opt.Normalized()
	set, groups, gk := b.ruleGroupsKeyed(opt)
	plan, estSpan, err := b.planFor(cl, groups, gk, opt, nil)
	if err != nil {
		return nil, err
	}
	p := &DistPlan{
		Set:            set,
		Combine:        gk.combine,
		ArbitraryPivot: gk.arbitraryPivot,
		Groups:         len(groups),
		Split:          plan.split,
		TotalWeight:    plan.totalWeight,
		Makespan:       plan.makespan,
		EstimateSpan:   estSpan,
		b:              b,
		units:          plan.units,
	}
	p.Units = make([]DistUnit, len(plan.units))
	for i, u := range plan.units {
		p.Units[i] = DistUnit{
			ID:         i,
			Group:      u.group,
			Candidates: u.Candidates,
			StripeMod:  u.stripeMod,
			StripeRem:  u.stripeRem,
			BlockSize:  u.BlockSize,
		}
	}
	p.Assign = make([][]int, len(plan.assign))
	for w, idxs := range plan.assign {
		p.Assign[w] = append([]int(nil), idxs...)
	}
	return p, nil
}

// BlockNodes returns unit i's data block — the union of the pivot
// candidates' radius neighborhoods — computed on the coordinator's
// topology, sorted ascending. The coordinator uses it to decide which
// non-owned nodes a worker needs shipped (the halo) before it can
// reproduce the block locally.
func (p *DistPlan) BlockNodes(i int) []graph.NodeID {
	return p.units[i].BlockIn(p.b.topo).Sorted()
}

// UnitRunner executes DistUnits inside a worker process: the same
// unitDetector, data-block assembly, stripe filtering, and symmetric
// dedup enumeration the in-process engines run, over the worker's
// shard-backed topology. It is single-threaded, like the worker's
// assignment loop (the coordinator keeps one unit in flight per worker).
type UnitRunner struct {
	groups []*ruleGroup
	det    *unitDetector
	cancel *cancelCheck
	noOpt  bool
}

// NewUnitRunner prepares a runner over the worker's bundle. opt must
// carry the grouping flags the coordinator shipped (NoOptimize=!Combine,
// ArbitraryPivot) with NoReduce=true, so the worker's group indices match
// the coordinator's plan. inj is the worker's armed fault injector (nil
// in production); worker is this process's worker id.
func NewUnitRunner(ctx context.Context, b *Bundle, opt Options, inj *fault.Injector, worker int) *UnitRunner {
	opt = opt.Normalized()
	_, groups, _ := b.ruleGroupsKeyed(opt)
	cancel := &cancelCheck{ctx: ctx}
	return &UnitRunner{
		groups: groups,
		det:    newUnitDetector(b.topo, cancel, inj, worker),
		cancel: cancel,
		noOpt:  opt.NoOptimize,
	}
}

// Groups returns how many rule groups the runner rebuilt — the worker
// sanity-checks it against the coordinator's count during the handshake.
func (r *UnitRunner) Groups() int { return len(r.groups) }

// Run executes one unit. found counts every violation the unit
// enumerates; the first skip of them are suppressed without emission —
// the exactly-once retry dedupe: enumeration order is deterministic for a
// given shard + halo, so a retried unit resumes past what a previous
// incarnation already delivered. emit returning false stops enumeration
// early (the caller knows why). A non-nil error reports cancellation;
// panics (injected or genuine) are deliberately NOT recovered — in a
// worker process a panic must crash the process so the coordinator sees a
// death, not a silently shortened unit.
func (r *UnitRunner) Run(u DistUnit, skip int64, emit func(Violation) bool) (found int64, err error) {
	if u.Group < 0 || u.Group >= len(r.groups) {
		return 0, fmt.Errorf("validate: unit %d names group %d of %d", u.ID, u.Group, len(r.groups))
	}
	grp := r.groups[u.Group]
	if len(u.Candidates) != len(grp.pivot.Vars) {
		return 0, fmt.Errorf("validate: unit %d carries %d candidates, group %d pivots %d",
			u.ID, len(u.Candidates), u.Group, len(grp.pivot.Vars))
	}
	r.det.unit = u.ID
	// Cross the in-process unit-start site too: DelayUnit straggler rules
	// fire here, and an in-process KillWorker rule panics — which in a
	// worker process is just another way to die.
	r.det.inj.Cross(fault.UnitStart, r.det.worker, u.ID)
	wu := workUnit{
		Unit:      workload.Unit{Pivot: grp.pivot, Candidates: u.Candidates, BlockSize: u.BlockSize},
		group:     u.Group,
		stripeMod: u.StripeMod,
		stripeRem: u.StripeRem,
	}
	out := func(v Violation) bool {
		found++
		if found <= skip {
			return true
		}
		return emit(v)
	}
	if !r.det.detect(grp, wu, !r.noOpt, out) {
		if cerr := r.cancel.ctx.Err(); cerr != nil {
			return found, cerr
		}
	}
	return found, nil
}
