package validate

import (
	"context"
	"testing"

	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// --- fixtures -------------------------------------------------------------

// paperG1 builds Fig. 1's G1 plus one consistent flight pair, so both
// violating and non-violating matches exist.
func paperG1() *graph.Graph {
	g := graph.New(0, 0)
	addFlight := func(name, id, from, to string) {
		f := g.AddNode("flight", graph.Attrs{"val": name})
		sat := func(label, val string) graph.NodeID {
			return g.AddNode(label, graph.Attrs{"val": val})
		}
		g.MustAddEdge(f, sat("id", id), "number")
		g.MustAddEdge(f, sat("city", from), "from")
		g.MustAddEdge(f, sat("city", to), "to")
	}
	addFlight("flight1", "DL1", "Paris", "NYC")
	addFlight("flight2", "DL1", "Paris", "Singapore") // inconsistent pair
	addFlight("flight3", "BA7", "Edi", "Lon")
	addFlight("flight4", "BA7", "Edi", "Lon") // consistent pair
	return g
}

// phi1 is the flight GFD over the reduced Q1 (id + two cities).
func phi1() *core.GFD {
	q := pattern.New()
	for _, pre := range []string{"x", "y"} {
		f := q.AddNode(pattern.Var(pre), "flight")
		id := q.AddNode(pattern.Var(pre+"1"), "id")
		c1 := q.AddNode(pattern.Var(pre+"2"), "city")
		c2 := q.AddNode(pattern.Var(pre+"3"), "city")
		q.AddEdge(f, id, "number")
		q.AddEdge(f, c1, "from")
		q.AddEdge(f, c2, "to")
	}
	return core.MustNew("phi1", q,
		[]core.Literal{core.VarEq("x1", "val", "y1", "val")},
		[]core.Literal{core.VarEq("x2", "val", "y2", "val"), core.VarEq("x3", "val", "y3", "val")})
}

// capitalSet builds ϕ2 over a country with two capitals.
func phi2() *core.GFD {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	return core.MustNew("phi2", q, nil, []core.Literal{core.VarEq("y", "val", "z", "val")})
}

// allVariants enumerates engine configurations whose violation set must
// match detVio exactly. They all set NoReduce: implication-based reduction
// may drop a *duplicate* rule, which changes rule attribution (though not
// the flagged entities) — TestReducePreservesEntities covers that path.
func allVariants() map[string]Options {
	return map[string]Options{
		"val":    {N: 4, NoReduce: true},
		"ran":    {N: 4, RandomAssign: true, Seed: 99, NoReduce: true},
		"nop":    {N: 4, NoOptimize: true},
		"n1":     {N: 1, NoReduce: true},
		"n8":     {N: 8, NoReduce: true},
		"arbPiv": {N: 4, ArbitraryPivot: true, NoReduce: true},
		"split":  {N: 4, SplitThreshold: 2, NoReduce: true},
	}
}

func TestReducePreservesEntities(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 160, Seed: 11})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.05, Seed: 12})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.3, Seed: 13})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	want := DetVio(g, set).ViolatingNodes()
	res := RepVal(g, set, Options{N: 4}) // reduction on
	got := res.Violations.ViolatingNodes()
	if got.Len() != want.Len() {
		t.Fatalf("reduction changed flagged entities: %d vs %d", got.Len(), want.Len())
	}
	for v := range want {
		if !got.Contains(v) {
			t.Fatalf("entity %d lost after reduction", v)
		}
	}
}

// --- DetVio on paper examples ----------------------------------------------

func TestDetVioFlightExample(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet(phi1())
	vio := DetVio(g, set)
	// The DL1 pair violates in both orders; the BA7 pair is consistent.
	if len(vio) != 2 {
		t.Fatalf("violations = %d, want 2 (both orders of the DL1 pair)", len(vio))
	}
	for _, v := range vio {
		if v.Rule != "phi1" {
			t.Errorf("rule = %s", v.Rule)
		}
		if len(v.Nodes()) != 8 {
			t.Errorf("violation entities = %d, want 8", len(v.Nodes()))
		}
	}
}

func TestDetVioCapitalExample(t *testing.T) {
	g := graph.New(0, 0)
	au := g.AddNode("country", graph.Attrs{"val": "Australia"})
	c1 := g.AddNode("city", graph.Attrs{"val": "Canberra"})
	c2 := g.AddNode("city", graph.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")
	fr := g.AddNode("country", graph.Attrs{"val": "France"})
	paris := g.AddNode("city", graph.Attrs{"val": "Paris"})
	g.MustAddEdge(fr, paris, "capital")

	set := core.MustNewSet(phi2())
	vio := DetVio(g, set)
	// Canberra/Melbourne in both orders; France has one capital: G3 |= ϕ2
	// vacuously for it (Example 6(b)).
	if len(vio) != 2 {
		t.Fatalf("violations = %d, want 2", len(vio))
	}
	if !Satisfies(g, set) == false {
		// Satisfies must agree with DetVio emptiness.
		t.Log("ok")
	}
	if Satisfies(g, set) {
		t.Error("graph with violations cannot satisfy Σ")
	}
}

func TestSatisfiesConsistentGraph(t *testing.T) {
	g := graph.New(0, 0)
	fr := g.AddNode("country", graph.Attrs{"val": "France"})
	paris := g.AddNode("city", graph.Attrs{"val": "Paris"})
	g.MustAddEdge(fr, paris, "capital")
	if !Satisfies(g, core.MustNewSet(phi2())) {
		t.Error("single capital graph satisfies ϕ2 (no match of Q2)")
	}
}

func TestDetVioCtxCancellation(t *testing.T) {
	g := gen.Synthetic(gen.SyntheticConfig{Nodes: 500, Edges: 1500, Seed: 3})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 5, Seed: 3})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DetVioCtx(ctx, g, set); err == nil {
		t.Skip("enumeration finished before the first cancellation check; nothing to assert")
	}
}

// --- Parallel engine equivalence -------------------------------------------

func TestRepValMatchesDetVioOnPaperExample(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet(phi1())
	want := DetVio(g, set)
	for name, opt := range allVariants() {
		got := RepVal(g, set, opt)
		if !got.Violations.Equal(want) {
			t.Errorf("repVal[%s]: %d violations, want %d", name, len(got.Violations), len(want))
		}
	}
}

func TestDisValMatchesDetVioOnPaperExample(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet(phi1())
	want := DetVio(g, set)
	for name, opt := range allVariants() {
		frag := fragment.Partition(g, max(opt.N, 1), fragment.Hash)
		got := DisVal(g, frag, set, opt)
		if !got.Violations.Equal(want) {
			t.Errorf("disVal[%s]: %d violations, want %d", name, len(got.Violations), len(want))
		}
	}
}

func TestEnginesAgreeOnMinedWorkload(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 160, Seed: 11})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.05, Seed: 12})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.3, Seed: 13})
	if set.Len() == 0 {
		t.Fatal("mining produced no rules")
	}
	want := DetVio(g, set)
	for name, opt := range allVariants() {
		rep := RepVal(g, set, opt)
		if !rep.Violations.Equal(want) {
			t.Errorf("repVal[%s] diverges from detVio: %d vs %d violations",
				name, len(rep.Violations), len(want))
		}
		frag := fragment.Partition(g, max(opt.N, 1), fragment.Hash)
		dis := DisVal(g, frag, set, opt)
		if !dis.Violations.Equal(want) {
			t.Errorf("disVal[%s] diverges from detVio: %d vs %d violations",
				name, len(dis.Violations), len(want))
		}
	}
}

func TestEnginesAgreeOnSocialGraph(t *testing.T) {
	g := gen.PokecLike(gen.DatasetConfig{Scale: 120, Seed: 21})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.03, Seed: 22})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 6, PatternSize: 5, TwoCompFrac: 0.2, Seed: 23})
	if set.Len() == 0 {
		t.Fatal("mining produced no rules")
	}
	want := DetVio(g, set)
	rep := RepVal(g, set, Options{N: 4})
	if !rep.Violations.Equal(want) {
		t.Errorf("repVal diverges: %d vs %d", len(rep.Violations), len(want))
	}
	frag := fragment.Partition(g, 4, fragment.Hash)
	dis := DisVal(g, frag, set, Options{N: 4})
	if !dis.Violations.Equal(want) {
		t.Errorf("disVal diverges: %d vs %d", len(dis.Violations), len(want))
	}
}

// --- Engine instrumentation -------------------------------------------------

func TestRepValInstrumentation(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet(phi1())
	res := RepVal(g, set, Options{N: 4})
	if res.Rules != 1 || res.Groups != 1 {
		t.Errorf("rules=%d groups=%d", res.Rules, res.Groups)
	}
	// 8 flights... 4 flights -> C(4,2) = 6 deduped units.
	if res.Units != 6 {
		t.Errorf("units = %d, want 6 unordered flight pairs", res.Units)
	}
	if res.TotalWeight <= 0 || res.Makespan <= 0 || res.Makespan > res.TotalWeight {
		t.Errorf("weights: total=%d makespan=%d", res.TotalWeight, res.Makespan)
	}
	if res.Wall <= 0 {
		t.Error("wall time must be positive")
	}
	if res.BytesShipped <= 0 {
		t.Error("unit descriptors must be charged")
	}
}

func TestRepValNoOptimizeDoublesSymmetricUnits(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet(phi1())
	opt := RepVal(g, set, Options{N: 4})
	nop := RepVal(g, set, Options{N: 4, NoOptimize: true})
	if nop.Units != 2*opt.Units {
		t.Errorf("nop units = %d, want double of %d", nop.Units, opt.Units)
	}
}

func TestDisValShipsData(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 100, Seed: 31})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 4, PatternSize: 4, Seed: 32})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	frag := fragment.Partition(g, 4, fragment.Hash)
	res := DisVal(g, frag, set, Options{N: 4})
	if res.BytesShipped <= 0 {
		t.Error("fragmented detection must ship data")
	}
	if res.Comm <= 0 {
		t.Error("communication time must be modeled")
	}
	if res.PrefetchUnits+res.PartialUnits != res.Units {
		t.Errorf("strategy counts %d+%d != units %d",
			res.PrefetchUnits, res.PartialUnits, res.Units)
	}
	if res.TotalTime() < res.Wall {
		t.Error("TotalTime must include communication")
	}
}

func TestDisValShipsLessThanDisnop(t *testing.T) {
	// The Fig. 5(j-l) shape: the optimized disVal ships less than disnop
	// (which never deduplicates symmetric units and always prefetches
	// whole blocks). A skewed graph gives blocks big enough for the
	// partial-match alternative to engage.
	g := gen.Synthetic(gen.SyntheticConfig{Nodes: 4000, Edges: 12000, Skew: 0.8, Seed: 41})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 5, PatternSize: 4, TwoCompFrac: 0.4, Seed: 42})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	frag := fragment.Partition(g, 4, fragment.Hash)
	smart := DisVal(g, frag, set, Options{N: 4})
	nop := DisVal(g, frag, set, Options{N: 4, NoOptimize: true})
	if smart.BytesShipped >= nop.BytesShipped {
		t.Errorf("disVal shipped %d, disnop %d — optimization ineffective",
			smart.BytesShipped, nop.BytesShipped)
	}
	if !smart.Violations.Equal(nop.Violations) {
		t.Error("shipping strategy must not change the violation set")
	}
}

func TestSplitThresholdProducesStripes(t *testing.T) {
	g := gen.Synthetic(gen.SyntheticConfig{Nodes: 400, Edges: 1600, Skew: 0.8, Seed: 51})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 3, PatternSize: 4, Seed: 52})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	want := DetVio(g, set)
	res := RepVal(g, set, Options{N: 4, SplitThreshold: 8})
	if res.SplitUnits == 0 {
		t.Skip("no unit exceeded the threshold; nothing to verify")
	}
	if !res.Violations.Equal(want) {
		t.Error("splitting changed the violation set")
	}
}

func TestWorkloadReductionPreservesViolationsModuloRuleNames(t *testing.T) {
	// Two duplicate rules: reduction drops one; the violating *entities*
	// are unchanged even though rule attribution shrinks.
	g := paperG1()
	f1 := phi1()
	f2 := phi1()
	f2.Name = "phi1_dup"
	set := core.MustNewSet(f1, f2)
	res := RepVal(g, set, Options{N: 2})
	if res.Rules != 1 {
		t.Errorf("reduction kept %d rules, want 1", res.Rules)
	}
	full := DetVio(g, core.MustNewSet(f1))
	if len(res.Violations) != len(full) {
		t.Errorf("reduced set found %d violations, one copy finds %d",
			len(res.Violations), len(full))
	}
	// Rule attribution may name either duplicate; the violating entities
	// are what must coincide.
	if res.Violations.ViolatingNodes().Len() != full.ViolatingNodes().Len() {
		t.Error("reduced set must flag the same entities as one copy")
	}
	// NoReduce keeps both.
	res2 := RepVal(g, set, Options{N: 2, NoReduce: true})
	if res2.Rules != 2 {
		t.Errorf("NoReduce kept %d rules", res2.Rules)
	}
	if len(res2.Violations) != 2*len(full) {
		t.Errorf("both duplicates must report: %d vs %d", len(res2.Violations), 2*len(full))
	}
}

func TestViolationReportHelpers(t *testing.T) {
	r := Report{
		{Rule: "b", Match: core.Match{2, 1}},
		{Rule: "a", Match: core.Match{0, 1}},
	}
	r.Sort()
	if r[0].Rule != "a" {
		t.Error("Sort must order by rule")
	}
	if r[0].Key() != "a,0,1" {
		t.Errorf("Key = %q", r[0].Key())
	}
	if !r.Equal(Report{{Rule: "a", Match: core.Match{0, 1}}, {Rule: "b", Match: core.Match{2, 1}}}) {
		t.Error("Equal must ignore order")
	}
	if r.Equal(Report{{Rule: "a", Match: core.Match{0, 1}}}) {
		t.Error("different sizes must differ")
	}
	nodes := r.ViolatingNodes()
	if nodes.Len() != 3 {
		t.Errorf("violating entities = %d, want 3", nodes.Len())
	}
}

func TestEmptyRuleSet(t *testing.T) {
	g := paperG1()
	set := core.MustNewSet()
	if len(DetVio(g, set)) != 0 {
		t.Error("empty Σ yields no violations")
	}
	res := RepVal(g, set, Options{N: 2})
	if len(res.Violations) != 0 || res.Units != 0 {
		t.Error("empty Σ: empty parallel result")
	}
}

func TestMultiQueryGroupingSharesPatterns(t *testing.T) {
	// Two rules on the same (isomorphic) pattern with different deps must
	// land in one group but report separately.
	q1 := pattern.New()
	x := q1.AddNode("x", "country")
	y := q1.AddNode("y", "city")
	q1.AddEdge(x, y, "capital")
	f1 := core.MustNew("r1", q1, nil, []core.Literal{core.VarEq("x", "val", "y", "val")})

	q2 := pattern.New()
	a := q2.AddNode("a", "country")
	b := q2.AddNode("b", "city")
	q2.AddEdge(a, b, "capital")
	f2 := core.MustNew("r2", q2, []core.Literal{core.Const("a", "val", "zzz")},
		[]core.Literal{core.Const("b", "val", "yyy")})

	g := graph.New(0, 0)
	c := g.AddNode("country", graph.Attrs{"val": "Oz"})
	ct := g.AddNode("city", graph.Attrs{"val": "Emerald"})
	g.MustAddEdge(c, ct, "capital")

	set := core.MustNewSet(f1, f2)
	res := RepVal(g, set, Options{N: 2, NoReduce: true})
	if res.Groups != 1 {
		t.Errorf("groups = %d, want 1 (isomorphic patterns)", res.Groups)
	}
	want := DetVio(g, set)
	if !res.Violations.Equal(want) {
		t.Errorf("grouped result diverges: %v vs %v", res.Violations, want)
	}
}
