package validate

import (
	"context"
	"sync"
	"time"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/reason"
)

// Engine selects the detection algorithm a unified entry point runs. The
// session layer (internal/session, surfaced as gfd.Session) dispatches on
// it; the two baseline engines are executed there because they live in
// internal/baseline, which sits above this package.
type Engine uint8

const (
	// EngineAuto resolves to EngineReplicated, the paper's scalable
	// default (Theorem 10) and the right choice for a server with the
	// whole graph in memory.
	EngineAuto Engine = iota
	// EngineSequential is detVio (Section 5.1): exhaustive, exact, and
	// exponential in the worst case.
	EngineSequential
	// EngineReplicated is repVal (Theorem 10); Options.RandomAssign and
	// Options.NoOptimize select the repran / repnop variants.
	EngineReplicated
	// EngineFragmented is disVal (Theorem 11) over Options.Frag (or a
	// hash partition into Options.N fragments when unset).
	EngineFragmented
	// EngineGCFD is the path-restricted GCFD baseline of Exp-5.
	EngineGCFD
	// EngineBigDansing is the relational-join baseline of Exp-5.
	EngineBigDansing
	// EngineDistributed is the real shared-nothing runtime (internal/dist):
	// per-fragment worker processes over persisted .gfds shards, selected
	// through Options.Dist.
	EngineDistributed
)

// String names the engine as the paper does.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "detVio"
	case EngineReplicated:
		return "repVal"
	case EngineFragmented:
		return "disVal"
	case EngineGCFD:
		return "gcfd"
	case EngineBigDansing:
		return "bigdansing"
	case EngineDistributed:
		return "dist"
	}
	return "unknown"
}

// Resolve maps EngineAuto to the concrete default engine.
func (e Engine) Resolve() Engine {
	if e == EngineAuto {
		return EngineReplicated
	}
	return e
}

// Bundle is the compiled execution state every engine runs from: the
// compiled topology view of the graph (a frozen snapshot, or a delta
// overlay after small mutations) plus the rule set with its lowered
// artifacts. Building one pays, exactly once per (graph version, rule
// set):
//
//   - the topology — Graph.Freeze on the cold path, or a graph.Overlay
//     handed down by the session after an update batch (no re-freeze);
//   - pattern.CompileFor per rule — pattern labels lowered onto the
//     topology's symbol table;
//   - GFD literal lowering — X → Y literals as integer instructions.
//
// Workload reduction (reason.Reduce) and multi-query grouping are lazy —
// they depend on Options variants — but each variant is computed once and
// cached, so repeated Detect calls re-derive nothing; both are functions
// of the rule set alone, so NewBundleOver inherits them from the
// predecessor bundle across graph versions. A Bundle is immutable with
// respect to the graph: it is valid for the graph version it was built
// at, and safe for concurrent readers. The session layer rebuilds bundles
// when the graph mutates.
type Bundle struct {
	g    *graph.Graph
	topo graph.Topology
	set  *core.Set

	mu      sync.Mutex
	reduced *core.Set
	groups  map[groupKey][]*ruleGroup
	// factors caches the sequential engine's shared-core factor groups
	// (factor.go); they depend on the rule set and the topology's class
	// sizes, both fixed for a bundle's lifetime, so they build once.
	factors []*factorGroup
	// progs holds the bundle's own reference to each rule's compiled
	// literal program. The GFD-level ProgramFor cache is single-entry per
	// rule; two live bundles over different graphs sharing one rule set
	// would evict each other through it, silently recompiling per call
	// (or per match, from checkMatch). Bundle-held references make the
	// "lowered once per (graph version, rule set)" guarantee immune to
	// other sessions.
	progs map[*core.GFD]*core.LiteralProgram

	// est is the cached workload-estimation state (see estimate.go): unit
	// sets per option variant, block-size measurements shared across
	// variants, probe counters. touchMark is the overlay touch-log
	// position this bundle's view begins at, so a successor bundle can
	// invalidate exactly the measurements its Apply deltas touched.
	est       estState
	touchMark int
}

// groupKey identifies one cached grouping variant.
type groupKey struct {
	combine        bool // multi-query grouping on (not *nop)
	arbitraryPivot bool
	reduced        bool // built over the reduced set
}

// NewBundle freezes g and eagerly lowers every rule of set onto the
// snapshot's symbol table.
func NewBundle(g *graph.Graph, set *core.Set) *Bundle {
	return NewBundleOver(g, g.Freeze(), set, nil)
}

// NewBundleOver builds a bundle over an externally supplied topology —
// the session layer passes the overlay maintained across update batches
// instead of re-freezing. When prev (the bundle this one supersedes) is
// given and shares the rule set, the rule-side caches that do not depend
// on the graph are inherited: the reduced set always, the grouping
// variants when the symbol table is unchanged (the overlay case — their
// compiled-program bindings stay valid because programs are keyed by
// table).
//
// Lowering differs by topology kind. A frozen snapshot's table is
// immutable, so rules lower by lookup and cache at the GFD level. An
// overlay's table grows with updates, so every rule's labels and literal
// constants are interned first (pattern.InternInto / GFD.InternLiterals)
// and the programs are compiled fresh for this bundle — a cached program
// lowered before the constants existed would wrongly short-circuit to
// "never matches".
func NewBundleOver(g *graph.Graph, topo graph.Topology, set *core.Set, prev *Bundle) *Bundle {
	b := &Bundle{
		g:      g,
		topo:   topo,
		set:    set,
		groups: make(map[groupKey][]*ruleGroup, 2),
		progs:  make(map[*core.GFD]*core.LiteralProgram, set.Len()),
	}
	if ov, ok := topo.(*graph.Overlay); ok {
		b.touchMark = ov.TouchLen()
	}
	syms := topo.Syms()
	sameTable := prev != nil && prev.set == set && prev.topo.Syms() == syms
	if _, growing := topo.(*graph.Overlay); growing {
		for _, f := range set.Rules() {
			pattern.InternInto(f.Q, syms)
			f.InternLiterals(syms)
		}
		// Warm rounds reuse the predecessor's programs when they can't be
		// stale: a fully resolved lowering survives any table growth
		// (codes are append-only). A program with an unresolved side
		// recompiles — the missing name may just have been interned. The
		// entries are copied under prev's lock: a still-running Detect on
		// the superseded bundle may insert out-of-set programs (baseline
		// conversions) into prev.progs through Bundle.Program.
		var prevProgs map[*core.GFD]*core.LiteralProgram
		if sameTable {
			prev.mu.Lock()
			prevProgs = make(map[*core.GFD]*core.LiteralProgram, len(prev.progs))
			for f, p := range prev.progs {
				prevProgs[f] = p
			}
			prev.mu.Unlock()
		}
		for _, f := range set.Rules() {
			pattern.CompileFor(f.Q, syms)
			if p, ok := prevProgs[f]; ok && p.Resolved() {
				b.progs[f] = p
				continue
			}
			b.progs[f] = f.CompileLiterals(syms)
		}
	} else {
		for _, f := range set.Rules() {
			pattern.CompileFor(f.Q, syms)
			b.progs[f] = f.ProgramFor(syms)
		}
	}
	if prev != nil && prev.set == set {
		b.inherit(prev, syms)
	}
	return b
}

// inherit copies the caches the superseded bundle can donate: the
// implication-reduced set, the estimation cache (counters always; the
// block-size measurements when the topology delta is known from an
// overlay touch log — pruned to the untouched region), and — when the
// symbol table carried over — every grouping variant, with each
// dependency rebound to this bundle's program references (groups are
// never shared between bundles, so a still-running Detect on prev is
// unaffected).
func (b *Bundle) inherit(prev *Bundle, syms *graph.Symbols) {
	prev.mu.Lock()
	defer prev.mu.Unlock()
	b.reduced = prev.reduced
	b.inheritEstimationLocked(prev)
	if prev.topo.Syms() != syms {
		return
	}
	for key, gs := range prev.groups {
		ngs := make([]*ruleGroup, len(gs))
		for i, grp := range gs {
			ng := &ruleGroup{q: grp.q, pivot: grp.pivot, deps: append([]depSpec(nil), grp.deps...)}
			for j := range ng.deps {
				ng.deps[j].prog = b.progs[ng.deps[j].rule]
			}
			ngs[i] = ng
		}
		b.groups[key] = ngs
	}
}

// Program returns f's literal program lowered onto the bundle's symbol
// table: the bundle-held reference for prepared rules, a compile-and-
// cache for rules outside the set (e.g. the GCFD baseline's encodings).
func (b *Bundle) Program(f *core.GFD) *core.LiteralProgram {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.progs[f]; ok {
		return p
	}
	if _, growing := b.topo.(*graph.Overlay); growing {
		f.InternLiterals(b.topo.Syms())
	}
	p := f.CompileLiterals(b.topo.Syms())
	b.progs[f] = p
	return p
}

// Graph returns the source graph the bundle was compiled from.
func (b *Bundle) Graph() *graph.Graph { return b.g }

// Topo returns the compiled topology view the engines run against: a
// frozen snapshot, or the session's delta overlay after an update batch.
func (b *Bundle) Topo() graph.Topology { return b.topo }

// Set returns the full (unreduced) rule set.
func (b *Bundle) Set() *core.Set { return b.set }

// ruleSet resolves the effective rule set under opt, caching the
// implication-based reduction so a prepared session pays it once, not
// once per Detect round.
func (b *Bundle) ruleSet(opt Options) *core.Set {
	if opt.NoOptimize || opt.NoReduce || b.set.Len() <= 1 {
		return b.set
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.reduced == nil {
		b.reduced = reason.Reduce(b.set)
	}
	return b.reduced
}

// ruleGroups resolves the effective rule set and its multi-query groups
// under opt, cached per variant.
func (b *Bundle) ruleGroups(opt Options) (*core.Set, []*ruleGroup) {
	set, gs, _ := b.ruleGroupsKeyed(opt)
	return set, gs
}

// ruleGroupsKeyed is ruleGroups returning the variant key as well — the
// estimation cache keys off it.
func (b *Bundle) ruleGroupsKeyed(opt Options) (*core.Set, []*ruleGroup, groupKey) {
	set := b.ruleSet(opt)
	key := groupKey{
		combine:        !opt.NoOptimize,
		arbitraryPivot: opt.ArbitraryPivot,
		reduced:        set != b.set,
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if gs, ok := b.groups[key]; ok {
		return set, gs, key
	}
	gs := buildGroups(set.Rules(), key.combine, key.arbitraryPivot)
	// Bind each dependency to its bundle-held program so the per-match
	// hot path (checkMatch) neither locks nor touches the evictable
	// GFD-level cache. Every grouped rule was lowered at NewBundle.
	for _, grp := range gs {
		for i := range grp.deps {
			grp.deps[i].prog = b.progs[grp.deps[i].rule]
		}
	}
	b.groups[key] = gs
	return set, gs, key
}

// Warm precomputes the reduction and grouping variant opt selects, so a
// later timed Detect with the same options pays nothing beyond
// estimation and enumeration. Variants not warmed cache on first use.
func (b *Bundle) Warm(opt Options) { b.ruleGroups(opt) }

// cancelStride is how many per-match checkpoints pass between actual
// ctx.Err() consultations: Err takes the context's mutex, which the
// zero-alloc enumeration hot path must not hit per match.
const cancelStride = 64

// cancelCheck is a per-worker cooperative cancellation probe, optionally
// carrying a per-unit deadline (the fault-tolerant scheduler arms one per
// attempt). It is not safe for concurrent use; every worker owns one.
type cancelCheck struct {
	ctx         context.Context
	deadline    time.Time // per-attempt deadline; zero = none
	n           uint32
	hit         bool // context expired — the whole run must stop
	deadlineHit bool // only the current attempt's deadline expired
}

// arm sets the current attempt's deadline and clears any expiry left over
// from the previous unit.
func (c *cancelCheck) arm(deadline time.Time) {
	c.deadline = deadline
	c.deadlineHit = false
}

// expiredNow checks the armed deadline directly, without the stride — the
// runtime calls it at attempt boundaries, where a stall before enumeration
// (an injected straggler, a slow block shipment) may have consumed the
// whole budget for a unit too small to ever reach a strided checkpoint.
func (c *cancelCheck) expiredNow() bool {
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.deadlineHit = true
		return true
	}
	return false
}

// disarm clears the per-attempt deadline (and its expiry flag) so the
// worker's between-unit checks see only the context.
func (c *cancelCheck) disarm() {
	c.deadline = time.Time{}
	c.deadlineHit = false
}

// canceled reports whether the run (context) or the current attempt
// (deadline) is done, consulting the clocks on the first call and then
// every cancelStride calls.
func (c *cancelCheck) canceled() bool {
	if c == nil {
		return false
	}
	if c.hit || c.deadlineHit {
		return true
	}
	c.n++
	if c.n != 1 && c.n%cancelStride != 0 {
		return false
	}
	if c.ctx.Err() != nil {
		c.hit = true
		return true
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.deadlineHit = true
		return true
	}
	return false
}
