package validate

import (
	"context"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// Factorized group enumeration (FDB-style): rules whose patterns share a
// connected core enumerate that core ONCE and branch per rule at the
// divergence point — the core's image is pinned into each member's own
// enumeration, so the shared prefix of the search tree is never re-walked
// per rule. This turns reason.Reduce's rule-level sharing into match-level
// sharing on the sequential engine; the parallel engines keep their
// pivot-grouped ruleGroup path (groups.go), which shares matches for fully
// isomorphic patterns.

// minFactorCoreNodes is the smallest core worth factorizing: below two
// nodes and one edge the "shared prefix" is a bare label class, which every
// member's own enumeration seeds equally cheaply.
const minFactorCoreNodes = 2

// factorBranch is one rule of a factor group: the per-rule literal program
// plus the embedding of the group core into the rule's pattern.
type factorBranch struct {
	rule *core.GFD
	prog *core.LiteralProgram
	pin  []int // core node index -> rule pattern node index
	// full marks a branch whose pattern the core covers exactly (node and
	// edge bijection, no duplicate parallel edges): a core match IS a rule
	// match modulo the pin permutation, no inner enumeration needed.
	full bool
}

// factorGroup is a set of rules sharing one connected core pattern. A nil
// core means the group declined factorization (singleton, oversized
// pattern, or the profitability guard) and runs per-rule.
type factorGroup struct {
	core     *pattern.Pattern
	branches []factorBranch
}

// factorGroups returns the rule set's factor groups, computed once per
// bundle (patterns and class sizes are fixed for a bundle's lifetime) with
// each branch bound to its bundle-held program.
func (b *Bundle) factorGroups() []*factorGroup {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.factors == nil {
		b.factors = buildFactorGroups(b.set.Rules(), b.topo)
		for _, g := range b.factors {
			for i := range g.branches {
				g.branches[i].prog = b.progs[g.branches[i].rule]
			}
		}
	}
	return b.factors
}

// buildFactorGroups greedily groups rules by shared core: each rule joins
// the first group whose running core still shares a connected *cyclic*
// sub-pattern with it, shrinking the group core to the overlap; otherwise
// it opens its own group. Per-branch embeddings resolve against the final
// core.
//
// Two statistics-free profitability guards keep factorization from losing
// to the per-rule loop:
//
//  1. Structural: the core must contain a cycle (edges ≥ nodes on a
//     connected pattern). An acyclic core enumerates in near-constant
//     amortized time per match — re-walking it per rule costs less than
//     the per-core-match inner-enumeration setup factorization replaces
//     it with, so tree cores are a guaranteed loss (the break-even
//     recorded in the ROADMAP). Only a cyclic core does real filtering
//     work per emitted match, which is the cost sharing recovers.
//  2. Class-size (the ROADMAP's spirit): every member's most selective
//     node class must be reachable from the core — i.e. the smallest
//     class size over the core's image is within a small factor of the
//     smallest over the whole pattern. Without it, a barely-selective
//     shared cycle would force members whose own search starts from a
//     tiny class elsewhere to enumerate the core's full match set.
//
// Groups failing either guard fall back to per-rule enumeration
// (core == nil).
//
// Rules whose own pattern is acyclic never enter grouping at all — a
// connected common core can only be cyclic when both hosts contain a
// cycle — so construction does CommonCore's subset enumeration only among
// cyclic rules and is near-free on the (common) tree-only rule sets. That
// matters because the groups build lazily inside the first detection
// call: it sits on the cold-start path to the first violation.
func buildFactorGroups(rules []*core.GFD, topo graph.Topology) []*factorGroup {
	var groups []*factorGroup
	for _, f := range rules {
		placed := false
		eligible := f.Q.NumNodes() >= minFactorCoreNodes && pattern.HasCycle(f.Q)
		if eligible {
			for _, g := range groups {
				if g.core == nil {
					continue
				}
				c, _, _, ok := pattern.CommonCore(g.core, f.Q, minFactorCoreNodes)
				if ok && c.NumEdges() >= c.NumNodes() {
					g.core = c
					g.branches = append(g.branches, factorBranch{rule: f})
					placed = true
					break
				}
			}
		}
		if !placed {
			groups = append(groups, &factorGroup{branches: []factorBranch{{rule: f}}})
			if eligible {
				groups[len(groups)-1].core = f.Q
			}
		}
	}
	syms := topo.Syms()
	for _, g := range groups {
		if len(g.branches) == 1 {
			g.core = nil // nothing shared; run per-rule
			continue
		}
		if !resolveFactorMaps(g, topo, syms) {
			g.core = nil
		}
	}
	return groups
}

// resolveFactorMaps binds each branch's core embedding and applies the
// profitability guard; false declines factorization for the group.
func resolveFactorMaps(g *factorGroup, topo graph.Topology, syms *graph.Symbols) bool {
	coreEst := classEstimates(g.core, topo, syms)
	coreMin := minInt(coreEst)
	for i := range g.branches {
		q := g.branches[i].rule.Q
		m := pattern.StrictEmbedding(g.core, q)
		if m == nil {
			return false
		}
		g.branches[i].pin = m
		g.branches[i].full = len(m) == q.NumNodes() &&
			g.core.NumEdges() == q.NumEdges() &&
			!pattern.HasDuplicateEdges(g.core)
		// Guard: the member's most selective class must (approximately)
		// live inside the core image, or its own search would beat the
		// factorized prefix.
		if qMin := minInt(classEstimates(q, topo, syms)); coreMin > 4*qMin {
			return false
		}
	}
	return true
}

// classEstimates resolves each pattern node's candidate-class size on the
// topology — the same statistics-free estimates the matcher plans with.
func classEstimates(q *pattern.Pattern, topo graph.Topology, syms *graph.Symbols) []int {
	cq := pattern.CompileFor(q, syms)
	out := make([]int, q.NumNodes())
	for v := range out {
		if sym := cq.NodeSyms[v]; sym == graph.WildcardSym {
			out[v] = topo.NumNodes()
		} else {
			out[v] = topo.ClassSize(sym)
		}
	}
	return out
}

func minInt(xs []int) int {
	m := int(^uint(0) >> 1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// detVioFactored is the factorized sequential driver: for every factor
// group it enumerates the shared core once and, per core match, branches
// into each member rule — a full-coverage branch remaps the core match
// through its pin permutation and checks the literal program directly; a
// proper-prefix branch enumerates its pattern with the core image pinned.
// Violations stream to the sink exactly as DetVioPerRuleB's, in a
// different (group-interleaved) order; the sets coincide because every
// member match restricts to exactly one core match.
func detVioFactored(ctx context.Context, b *Bundle, sink Sink) error {
	topo := b.topo
	outer := match.NewMatcher(topo)
	inner := match.NewMatcher(topo)
	cancel := &cancelCheck{ctx: ctx}
	copts := match.Options{Halt: cancel.canceled}
	emit := func(name string, h core.Match) bool {
		return sink == nil || sink.Emit(0, Violation{Rule: name, Match: append(core.Match(nil), h...)})
	}
	var scratch core.Match
	stopped := false
	for _, g := range b.factorGroups() {
		if g.core == nil {
			for bi := range g.branches {
				br := &g.branches[bi]
				for h := range outer.Matches(br.rule.Q, copts) {
					if cancel.canceled() {
						break
					}
					if br.prog.IsViolation(topo, h) && !emit(br.rule.Name, h) {
						stopped = true
						break
					}
				}
				if stopped || cancel.hit {
					break
				}
			}
		} else {
			pin := make(map[int]graph.NodeID, g.core.NumNodes())
			iopts := match.Options{Pin: pin, Halt: cancel.canceled}
			outer.Enumerate(g.core, copts, func(pm core.Match) bool {
				for bi := range g.branches {
					br := &g.branches[bi]
					if br.full {
						if cap(scratch) < len(br.pin) {
							scratch = make(core.Match, len(br.pin))
						}
						scratch = scratch[:len(br.pin)]
						for ci, ri := range br.pin {
							scratch[ri] = pm[ci]
						}
						if br.prog.IsViolation(topo, scratch) && !emit(br.rule.Name, scratch) {
							stopped = true
							return false
						}
						continue
					}
					clear(pin)
					for ci, ri := range br.pin {
						pin[ri] = pm[ci]
					}
					inner.Enumerate(br.rule.Q, iopts, func(h core.Match) bool {
						if br.prog.IsViolation(topo, h) && !emit(br.rule.Name, h) {
							stopped = true
							return false
						}
						return true
					})
					if stopped || cancel.canceled() {
						return false
					}
				}
				return true
			})
		}
		if cancel.hit {
			return ctx.Err()
		}
		if stopped {
			return nil
		}
	}
	if cancel.hit {
		return ctx.Err()
	}
	return nil
}
