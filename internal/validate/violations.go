// Package validate implements GFD-based inconsistency detection (Sections
// 5 and 6 of the paper): the sequential algorithm detVio, the parallel
// scalable algorithm repVal for replicated graphs (Theorem 10), the
// parallel algorithm disVal for fragmented graphs (Theorem 11), their
// ablation variants repran/repnop/disran/disnop, and the Appendix's
// optimization strategies (multi-query processing, workload reduction, and
// replicate-and-split for skewed graphs).
package validate

import (
	"fmt"
	"sort"
	"strings"

	"gfd/internal/core"
	"gfd/internal/graph"
)

// Violation is one element of Vio(Σ, G): a match h(x̄) of some rule's
// pattern that satisfies X but not Y. Match is indexed by the rule's own
// pattern node order.
type Violation struct {
	Rule  string
	Match core.Match
}

// Key returns a canonical string identity for set comparisons.
func (v Violation) Key() string {
	var b strings.Builder
	b.WriteString(v.Rule)
	for _, id := range v.Match {
		fmt.Fprintf(&b, ",%d", id)
	}
	return b.String()
}

// Nodes returns the distinct graph nodes involved in the violation — the
// "inconsistent entities" reported to users.
func (v Violation) Nodes() []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(v.Match))
	out := make([]graph.NodeID, 0, len(v.Match))
	for _, id := range v.Match {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Report is a set of violations.
type Report []Violation

// Sort orders the report canonically (by rule, then match vector).
func (r Report) Sort() {
	sort.Slice(r, func(i, j int) bool { return r[i].Key() < r[j].Key() })
}

// Keys returns the sorted canonical keys.
func (r Report) Keys() []string {
	ks := make([]string, len(r))
	for i, v := range r {
		ks[i] = v.Key()
	}
	sort.Strings(ks)
	return ks
}

// Equal reports whether two reports describe the same violation set.
func (r Report) Equal(other Report) bool {
	a, b := r.Keys(), other.Keys()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ViolatingNodes returns the distinct inconsistent entities across the
// report, the quantity precision/recall are computed over in Exp-5.
func (r Report) ViolatingNodes() graph.NodeSet {
	set := make(graph.NodeSet)
	for _, v := range r {
		for _, id := range v.Nodes() {
			set.Add(id)
		}
	}
	return set
}
