package validate

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to at most base,
// dumping stacks on timeout. Forwarder shutdown is asynchronous (the
// merger goroutine closes Out after the lanes drain), so the check must
// tolerate a scheduling delay without tolerating a leak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipeSinkProducerErrorBeforeFirstEmission pins the forwarder
// shutdown path the distributed violation-return route relies on: an
// engine that fails before emitting anything (a bad manifest, a spawn
// refusal, a worker fleet that never handshakes) closes the sink with
// every lane still empty. Out must still close — the consumer's range
// loop must terminate so the error can be yielded — and every forwarder
// goroutine must exit.
func TestPipeSinkProducerErrorBeforeFirstEmission(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pipe := NewPipeSink(ctx, 4, 8)
	errEngine := errors.New("engine failed before first emission")
	done := make(chan error, 1)
	go func() {
		// The engine errors without ever calling Emit; the owner closes
		// the sink after the engine returns, exactly as the session's
		// iterator goroutine does.
		pipe.Close()
		done <- errEngine
	}()

	got := 0
	for range pipe.Out() {
		got++
	}
	if got != 0 {
		t.Fatalf("drained %d violations from an engine that emitted none", got)
	}
	if err := <-done; !errors.Is(err, errEngine) {
		t.Fatalf("engine error lost: %v", err)
	}
	waitGoroutines(t, before)
}

// TestPipeSinkProducerErrorAfterCancel is the same shutdown under a dead
// run context — the coordinator path when every worker process dies
// pre-assignment. Emit's contract after cancellation is that it cannot
// wedge: a single Emit may still win the select race against a lane with
// buffer space, but repeated emissions must refuse promptly instead of
// blocking forever, and Close must still release the forwarders and
// close Out.
func TestPipeSinkProducerErrorAfterCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())

	pipe := NewPipeSink(ctx, 4, 1)
	cancel()
	refused := false
	for i := 0; i < 256 && !refused; i++ {
		refused = !pipe.Emit(0, Violation{})
	}
	if !refused {
		t.Fatal("Emit never refused on a cancelled sink")
	}
	pipe.Close()
	for range pipe.Out() {
		// Post-cancel leftovers that beat the forwarders' discard are
		// permitted; the drain just has to terminate.
	}
	waitGoroutines(t, before)
}

// TestPipeSinkAbandonedConsumerAfterError: the consumer saw the engine
// fail and never ranges Out at all (the iterator yields the error and
// returns). With buffered lanes below capacity, Close alone must unwind
// the forwarders — shutdown must not require a drain when everything
// buffered fits in the merged channel.
func TestPipeSinkAbandonedConsumerAfterError(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pipe := NewPipeSink(ctx, 2, 8)
	if !pipe.Emit(0, Violation{Rule: "r"}) {
		t.Fatal("Emit refused on a live sink")
	}
	cancel() // consumer abandons: run context dies, Out is never ranged
	pipe.Close()
	waitGoroutines(t, before)
}
