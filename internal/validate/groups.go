package validate

import (
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/workload"
)

// depSpec is one rule's dependency attached to a rule group: the rule plus
// the isomorphism perm mapping its own pattern node indices to the group
// pattern's node indices, and (when built through a Bundle) the rule's
// literal program lowered onto the bundle's symbol table.
type depSpec struct {
	rule *core.GFD
	perm []int                // rule node index -> group node index
	prog *core.LiteralProgram // bundle-held; nil falls back to ProgramFor
}

// ruleGroup is the multi-query processing unit (Appendix, "Multi-query
// processing"): rules whose patterns are isomorphic share a single pattern,
// pivot vector, work-unit set and match enumeration; each match is checked
// against every member dependency.
type ruleGroup struct {
	q     *pattern.Pattern
	pivot *workload.Pivot
	deps  []depSpec
}

// buildGroups partitions rules into groups. With combine=false (the *nop
// variants), every rule forms its own group and no enumeration sharing
// happens. arbitraryPivot selects the ablation pivot rule.
func buildGroups(rules []*core.GFD, combine, arbitraryPivot bool) []*ruleGroup {
	var groups []*ruleGroup
	computePivot := workload.ComputePivot
	if arbitraryPivot {
		computePivot = workload.ArbitraryPivot
	}
	for _, f := range rules {
		placed := false
		if combine {
			for _, grp := range groups {
				if perm, ok := isoMap(f.Q, grp.q); ok {
					grp.deps = append(grp.deps, depSpec{rule: f, perm: perm})
					placed = true
					break
				}
			}
		}
		if !placed {
			groups = append(groups, &ruleGroup{
				q:     f.Q,
				pivot: computePivot(f.Q),
				deps:  []depSpec{{rule: f, perm: identityPerm(f.Q.NumNodes())}},
			})
		}
	}
	return groups
}

// isoMap returns an isomorphism from pattern a onto pattern b, if one
// exists. Since exact embeddings never map a concrete label onto a
// wildcard, a full-size embedding with equal node and edge counts is a
// label-preserving isomorphism (see the grouping discussion in DESIGN.md).
func isoMap(a, b *pattern.Pattern) ([]int, bool) {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return nil, false
	}
	embs := pattern.Embeddings(a, b)
	if len(embs) == 0 {
		return nil, false
	}
	// Verify the reverse direction to rule out wildcard refinements: the
	// found mapping must preserve labels exactly in both directions.
	m := embs[0].Map
	for i, hi := range m {
		if a.Nodes[i].Label != b.Nodes[hi].Label {
			return nil, false
		}
	}
	for _, e := range a.Edges {
		if !edgeLabelEqual(b, m[e.From], m[e.To], e.Label) {
			return nil, false
		}
	}
	return m, true
}

func edgeLabelEqual(p *pattern.Pattern, from, to int, label string) bool {
	for _, ei := range p.OutEdges(from) {
		e := p.Edges[ei]
		if e.To == to && e.Label == label {
			return true
		}
	}
	return false
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// checkMatch evaluates every dependency of the group against a group-level
// match, delivering violations to emit (with matches remapped to each
// rule's own node order). The remapped match is staged in *scratch so the
// per-match hot path allocates only when a violation is actually recorded.
// Literal checking runs each rule's compiled program against the shared
// topology's interned attributes (the bundle-held program pointer in the
// steady state). Returns false when emit refused a violation and the
// enumeration must stop.
func (grp *ruleGroup) checkMatch(topo graph.Topology, m core.Match, scratch *core.Match, emit func(Violation) bool) bool {
	for _, d := range grp.deps {
		rm := *scratch
		if cap(rm) < len(d.perm) {
			rm = make(core.Match, len(d.perm))
		}
		rm = rm[:len(d.perm)]
		*scratch = rm
		for i, gi := range d.perm {
			rm[i] = m[gi]
		}
		p := d.prog
		if p == nil {
			p = d.rule.ProgramFor(topo.Syms())
		}
		if p.IsViolation(topo, rm) {
			if !emit(Violation{Rule: d.rule.Name, Match: append(core.Match(nil), rm...)}) {
				return false
			}
		}
	}
	return true
}
