package validate

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/fault"
	"gfd/internal/fragment"
)

// This file is the chaos differential suite: every recoverable fault plan
// must leave the violation set byte-identical to the fault-free run's,
// and every unrecoverable one must announce itself as a *PartialError
// with an honest Completeness census. Failing cases reproduce from the
// plan printed in the failure message (plans are seed-deterministic).

// requireNoGoroutineLeak polls until the goroutine count returns to the
// pre-test level (workers exit asynchronously after a stop) and fails
// with a full stack dump if it never does.
func requireNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDifferential sweeps seed-derived recoverable fault plans over
// both parallel engines: worker kills, straggler delays, and panics
// inside match enumeration and literal evaluation must all recover to
// exactly the fault-free violation set, with a complete census.
func TestChaosDifferential(t *testing.T) {
	g, b := cancelWorkload(t)
	ctx := context.Background()
	const n = 4
	frag := fragment.Partition(g, n, fragment.Hash)

	baseRep, err := RepValB(ctx, b, Options{N: n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseDis, err := DisValB(ctx, b, frag, Options{N: n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseRep.Violations) == 0 {
		t.Fatal("workload produced no violations; the differential is vacuous")
	}

	activity := 0
	for seed := int64(1); seed <= 8; seed++ {
		repPlan := fault.FromSeed(seed, n, baseRep.Units)
		t.Run(fmt.Sprintf("rep/seed=%d", seed), func(t *testing.T) {
			res, err := RepValB(ctx, b, Options{N: n, Inject: repPlan}, nil)
			if err != nil {
				t.Fatalf("%v: %v", repPlan, err)
			}
			if !res.Violations.Equal(baseRep.Violations) {
				t.Fatalf("%v: violation set diverged from fault-free run (%d vs %d)",
					repPlan, len(res.Violations), len(baseRep.Violations))
			}
			c := res.Completeness
			if !c.Complete() || c.Failed != 0 {
				t.Fatalf("%v: census not complete: %+v", repPlan, c)
			}
			activity += c.Retries + c.WorkerDeaths
		})

		disPlan := fault.FromSeed(seed+1000, n, baseDis.Units)
		t.Run(fmt.Sprintf("dis/seed=%d", seed), func(t *testing.T) {
			res, err := DisValB(ctx, b, frag, Options{N: n, Inject: disPlan}, nil)
			if err != nil {
				t.Fatalf("%v: %v", disPlan, err)
			}
			if !res.Violations.Equal(baseDis.Violations) {
				t.Fatalf("%v: violation set diverged from fault-free run (%d vs %d)",
					disPlan, len(res.Violations), len(baseDis.Violations))
			}
			c := res.Completeness
			if !c.Complete() || c.Failed != 0 {
				t.Fatalf("%v: census not complete: %+v", disPlan, c)
			}
			activity += c.Retries + c.WorkerDeaths
		})
	}
	if activity == 0 {
		t.Error("no fault fired across the whole sweep — every differential was vacuous")
	}
}

// TestChaosStreamDedupe pins exactly-once delivery on the streaming path:
// a worker killed mid-run forces its in-flight unit to be retried, and
// the retry must skip the violations the first attempt already streamed.
func TestChaosStreamDedupe(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx := context.Background()
	base, err := RepValB(ctx, b, Options{N: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Kill one worker after it has streamed part of a unit, and panic a
	// match crossing late enough to land mid-enumeration of another.
	plan := fault.NewPlan(17).KillWorker(1, 1).PanicAt(fault.Match, 200)
	var got Report
	_, err = RepValB(ctx, b, Options{N: 4, Inject: plan}, Callback(func(v Violation) bool {
		got = append(got, v)
		return true
	}))
	if err != nil {
		t.Fatalf("%v: %v", plan, err)
	}
	got.Sort()
	if !got.Equal(base.Violations) {
		t.Fatalf("%v: streamed set diverged (%d vs %d) — duplicate or lost emissions under retry",
			plan, len(got), len(base.Violations))
	}
}

// TestChaosStragglerDeadline: a unit whose first attempt stalls past
// Options.UnitDeadline is abandoned cooperatively (the worker survives)
// and the retry — not delayed, the fault fires once — completes the run
// with the full violation set.
func TestChaosStragglerDeadline(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx := context.Background()
	base, err := RepValB(ctx, b, Options{N: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(5).DelayUnit(0, 300*time.Millisecond)
	res, err := RepValB(ctx, b, Options{N: 4, Inject: plan, UnitDeadline: 60 * time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("%v: %v", plan, err)
	}
	if !res.Violations.Equal(base.Violations) {
		t.Fatalf("%v: violation set diverged after deadline retry", plan)
	}
	c := res.Completeness
	if c.Retries < 1 {
		t.Fatalf("%v: straggler never timed out: %+v", plan, c)
	}
	if !c.Complete() {
		t.Fatalf("%v: census not complete after retry: %+v", plan, c)
	}
	if c.WorkerDeaths != 0 {
		t.Fatalf("%v: deadline expiry killed a worker: %+v", plan, c)
	}
}

// TestChaosAllWorkersDead: killing every worker on its first unit leaves
// nothing to reassign to — the run returns ErrPartial, no unit succeeds,
// and the census says exactly that.
func TestChaosAllWorkersDead(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx := context.Background()

	plan := fault.NewPlan(2).KillWorker(0, 0).KillWorker(1, 0)
	res, err := RepValB(ctx, b, Options{N: 2, Inject: plan}, nil)
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("%v: err = %v, want ErrPartial", plan, err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || len(pe.Failures) == 0 {
		t.Fatalf("%v: err = %v, want *PartialError with failures", plan, err)
	}
	var we *cluster.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("%v: failures do not unwrap to a *cluster.WorkerError: %v", plan, err)
	}
	c := res.Completeness
	if c.WorkerDeaths != 2 || c.Succeeded != 0 || c.Failed != c.Units || c.Complete() {
		t.Fatalf("%v: census lies about total loss: %+v", plan, c)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("%v: %d violations from workers killed before any detection", plan, len(res.Violations))
	}
}

// TestChaosRetryDisabled: with Retry.Max < 0 a single injected panic
// exhausts its unit's budget immediately — exactly one unit fails, the
// dead worker's unstarted units still migrate to the survivors, and the
// partial violation set is a subset of the fault-free one.
func TestChaosRetryDisabled(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx := context.Background()
	base, err := RepValB(ctx, b, Options{N: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(3).PanicAt(fault.Match, 1)
	res, err := RepValB(ctx, b, Options{N: 4, Retry: Retry{Max: -1}, Inject: plan}, nil)
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("%v: err = %v, want ErrPartial", plan, err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("%v: err = %v, want *PartialError", plan, err)
	}
	if len(pe.Failures) != 1 {
		t.Fatalf("%v: %d failures, want exactly 1 (the panicked unit)", plan, len(pe.Failures))
	}
	if f := pe.Failures[0]; f.Attempts != 1 {
		t.Fatalf("%v: failed unit consumed %d attempts with retries disabled", plan, f.Attempts)
	}
	c := res.Completeness
	if c.WorkerDeaths != 1 || c.Failed != 1 || c.Succeeded != c.Units-1 || c.Retries != 0 {
		t.Fatalf("%v: census wrong under disabled retries: %+v", plan, c)
	}
	// Partial output is trustworthy: everything reported is real.
	seen := make(map[string]bool, len(base.Violations))
	for _, v := range base.Violations {
		seen[fmt.Sprint(v.Rule, v.Match)] = true
	}
	for _, v := range res.Violations {
		if !seen[fmt.Sprint(v.Rule, v.Match)] {
			t.Fatalf("%v: partial run reported a violation absent from the fault-free set: %v", plan, v)
		}
	}
}

// TestChaosNoGoroutineLeaks drives faulted runs — including a mid-stream
// early stop — and requires the goroutine count to settle back to its
// pre-test level: dead workers, stopped streams, and recovery rounds must
// not strand goroutines.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx := context.Background()
	before := runtime.NumGoroutine()

	for seed := int64(1); seed <= 4; seed++ {
		plan := fault.FromSeed(seed, 4, 64)
		if _, err := RepValB(ctx, b, Options{N: 4, Inject: plan}, nil); err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		stopPlan := fault.NewPlan(seed).KillWorker(0, 0)
		n := 0
		_, err := RepValB(ctx, b, Options{N: 4, Inject: stopPlan}, Callback(func(Violation) bool {
			n++
			return false // stop at the first violation
		}))
		if err != nil {
			t.Fatalf("%v: early-stopped run returned %v", stopPlan, err)
		}
		if n != 1 {
			t.Fatalf("%v: yield called %d times after returning false", stopPlan, n)
		}
	}
	requireNoGoroutineLeak(t, before)
}
