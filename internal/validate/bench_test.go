// Allocation-tracked benchmarks for sequential detection: the snapshot
// path DetVio now runs on, against the legacy slice-backed enumeration it
// replaced. Run with
//
//	go test ./internal/validate -bench=BenchmarkDetVio -benchmem
package validate

import (
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/match"
)

func detVioWorkload() (*graph.Graph, *core.Set) {
	clean := gen.YAGO2Like(gen.DatasetConfig{Scale: 250, Seed: 42})
	set := gen.MineGFDs(clean, gen.MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.3, Seed: 44})
	gen.Inject(clean, gen.NoiseConfig{Rate: 0.02, Seed: 43})
	return clean, set
}

// detVioLegacy is the pre-snapshot sequential detector, kept verbatim as
// the benchmark baseline: it walks the mutable graph's [][]HalfEdge slices
// with string label comparison.
func detVioLegacy(g *graph.Graph, set *core.Set) Report {
	var out Report
	for _, f := range set.Rules() {
		match.Enumerate(g, f.Q, match.Options{}, func(m core.Match) bool {
			if f.IsViolation(g, m) {
				out = append(out, Violation{Rule: f.Name, Match: append(core.Match(nil), m...)})
			}
			return true
		})
	}
	out.Sort()
	return out
}

func BenchmarkDetVio(b *testing.B) {
	g, set := detVioWorkload()
	var want, got Report
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			want = detVioLegacy(g, set)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		g.Freeze() // amortized across runs, as in production use
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got = DetVio(g, set)
		}
	})
	if want != nil && got != nil && !want.Equal(got) {
		b.Fatalf("paths disagree: legacy %d violations, snapshot %d", len(want), len(got))
	}
}
