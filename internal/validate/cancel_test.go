package validate

import (
	"context"
	"testing"
	"time"

	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/graph"
)

// cancelWorkload builds a repVal run large enough that aborting it
// mid-flight is observable: a dense synthetic graph with mined rules and
// heavy noise, so detection emits many violations across many units.
func cancelWorkload(t *testing.T) (*graph.Graph, *Bundle) {
	t.Helper()
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 600, Seed: 9})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.3, Seed: 13})
	if set.Len() == 0 {
		t.Fatal("no rules mined")
	}
	gen.Inject(g, gen.NoiseConfig{Rate: 0.4, Seed: 11})
	return g, NewBundle(g, set)
}

// TestRepValCancelledBeforeStart: an already-expired context aborts the
// run with its error before detection does meaningful work.
func TestRepValCancelledBeforeStart(t *testing.T) {
	_, b := cancelWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RepValB(ctx, b, Options{N: 4}, nil)
	if err == nil {
		t.Fatal("cancelled repVal returned no error")
	}
	if len(res.Violations) != 0 {
		t.Errorf("cancelled-before-start run still collected %d violations", len(res.Violations))
	}
}

// TestRepValCancelMidRunAbortsPromptly: cancelling from inside the
// streaming callback stops the workers at their next checkpoint, so the
// run emits only a small prefix of the full violation set. This is the
// deterministic promptness assertion: with worker loops that ignore the
// context, the stream would deliver every violation regardless.
func TestRepValCancelMidRunAbortsPromptly(t *testing.T) {
	_, b := cancelWorkload(t)
	full, err := RepValB(context.Background(), b, Options{N: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Violations)
	if total < 50 {
		t.Fatalf("workload too small to observe mid-run cancellation: %d violations", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err = RepValB(ctx, b, Options{N: 4}, Callback(func(Violation) bool {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return true
	}))
	if err == nil {
		t.Fatal("mid-run cancellation returned no error")
	}
	// Each of the 4 workers stops within one cancellation stride of the
	// cancel; the emitted prefix must stay far below the full set.
	if emitted >= total/2 {
		t.Errorf("cancelled run emitted %d of %d violations; worker loops are not honoring ctx", emitted, total)
	}
}

// TestDisValCancelMidRunAbortsPromptly is the disVal counterpart.
func TestDisValCancelMidRunAbortsPromptly(t *testing.T) {
	g, b := cancelWorkload(t)
	frag := fragment.Partition(g, 4, fragment.Hash)
	full, err := DisValB(context.Background(), b, frag, Options{N: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Violations)
	if total < 50 {
		t.Fatalf("workload too small: %d violations", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err = DisValB(ctx, b, frag, Options{N: 4}, Callback(func(Violation) bool {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return true
	}))
	if err == nil {
		t.Fatal("mid-run cancellation returned no error")
	}
	if emitted >= total/2 {
		t.Errorf("cancelled run emitted %d of %d violations", emitted, total)
	}
}

// TestRepValDeadlineAborts: a short wall-clock deadline aborts a run that
// would otherwise take much longer, and returns promptly (generous bound:
// an engine ignoring ctx would run to completion).
func TestRepValDeadlineAborts(t *testing.T) {
	_, b := cancelWorkload(t)
	// Measure the uncancelled run; skip the timing assertion on hosts
	// where it is too fast to bound reliably.
	start := time.Now()
	if _, err := RepValB(context.Background(), b, Options{N: 2}, nil); err != nil {
		t.Fatal(err)
	}
	fullWall := time.Since(start)
	if fullWall < 20*time.Millisecond {
		t.Skip("full run too fast to time a deadline against")
	}
	ctx, cancel := context.WithTimeout(context.Background(), fullWall/20)
	defer cancel()
	start = time.Now()
	_, err := RepValB(ctx, b, Options{N: 2}, nil)
	aborted := time.Since(start)
	if err == nil {
		t.Skip("run finished before the deadline; nothing to assert")
	}
	if aborted > fullWall {
		t.Errorf("deadline-aborted run took %v, full run %v", aborted, fullWall)
	}
}

// TestSequentialStreamCancel covers DetVioB's cancellation the same way.
func TestSequentialStreamCancel(t *testing.T) {
	_, b := cancelWorkload(t)
	var all Report
	if err := DetVioB(context.Background(), b, Callback(func(v Violation) bool {
		all = append(all, v)
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if len(all) < 50 {
		t.Fatalf("workload too small: %d violations", len(all))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err := DetVioB(ctx, b, Callback(func(Violation) bool {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return true
	}))
	if err == nil {
		t.Fatal("cancelled sequential run returned no error")
	}
	if emitted >= len(all)/2 {
		t.Errorf("cancelled run emitted %d of %d violations", emitted, len(all))
	}
}
