package validate

import (
	"context"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/workload"
)

// RepVal is the parallel scalable error-detection algorithm for replicated
// graphs (Fig. 4 / Theorem 10). The graph is available at every worker, so
// no block data is ever shipped; the engine balances the estimated
// workload W(Σ, G) across workers with the LPT greedy 2-approximation and
// runs local detection in parallel.
//
// Variants: Options.RandomAssign yields repran, Options.NoOptimize yields
// repnop.
//
// It builds a one-shot bundle per call; callers validating the same graph
// repeatedly should hold a session (gfd.NewSession) and Detect with
// EngineReplicated instead.
func RepVal(g *graph.Graph, set *core.Set, opt Options) *Result {
	res, _ := RepValB(context.Background(), NewBundle(g, set), opt, nil)
	return res
}

// RepValB is repVal over a prepared bundle with cooperative cancellation:
// workers check the context between work units and (strided) between
// matches, so a cancelled run aborts promptly and returns the context's
// error with partial instrumentation. When emit is non-nil, violations
// stream to it as they are found (serialized across workers, stopping the
// engine when it returns false) and Result.Violations stays empty;
// otherwise they are collected per worker, unioned and sorted.
//
// Detection runs under the fault-tolerant scheduler (runtime.go): worker
// panics are isolated, failed units are retried under Options.Retry, and
// when budgets exhaust the error is a *PartialError (errors.Is ErrPartial)
// with Result.Completeness carrying the census.
func RepValB(ctx context.Context, b *Bundle, opt Options, emit func(Violation) bool) (res *Result, err error) {
	if err := ctx.Err(); err != nil {
		// A dead context must not pay for the estimation phase.
		return &Result{}, err
	}
	res = &Result{}
	defer engineRecover(&err)
	opt = opt.Normalized()
	start := time.Now()
	cl := cluster.New(opt.N, opt.Cost)
	inj := opt.Inject.Arm(opt.N)
	cl.Arm(inj)

	set, groups, gk := b.ruleGroupsKeyed(opt)
	res.Rules = set.Len()
	res.Groups = len(groups)
	topo := b.topo

	// ---- bPar: parallel workload estimation (cached per variant; warm
	// rounds replay the memoized unit set, span and comm charges) -------
	estStart := time.Now()
	units, estSpan, err := b.estimateFor(cl, groups, gk, opt)
	if err != nil {
		return res, err
	}
	res.EstimateSpan = estSpan
	theta := splitThreshold(opt, units)
	var split int
	units, split = applySplit(units, groups, theta)
	res.SplitUnits = split
	res.Units = len(units)
	res.EstimateWall = time.Since(estStart)
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// ---- bPar: balanced n-partition ----------------------------------
	weights := make([]int, len(units))
	for i, u := range units {
		weights[i] = u.Weight()
		res.TotalWeight += int64(u.Weight())
	}
	var assign workload.Assignment
	if opt.RandomAssign {
		assign = workload.BalanceRandom(weights, opt.N, opt.Seed)
	} else {
		assign = workload.BalanceLPT(weights, opt.N)
	}
	res.Makespan = assign.Makespan(weights)
	// Shipping W_i(Σ, G) to each worker: one compact descriptor per unit.
	for w, idxs := range assign {
		cl.Ship(cluster.Coordinator, w, int64(len(idxs))*unitDescriptorBytes)
	}
	cl.EndRound()

	// ---- localVio: parallel local detection under the fault-tolerant
	// scheduler (runtime.go) -------------------------------------------
	detStart := time.Now()
	var sink *streamSink
	if emit != nil {
		sink = &streamSink{yield: emit}
	}
	run := &detectRun{ctx: ctx, cl: cl, topo: topo, groups: groups, units: units, opt: opt, sink: sink, inj: inj}
	span, comp, perr := run.run(assign)
	res.DetectWall = time.Since(detStart)
	res.DetectSpan = span
	res.Completeness = comp

	// ---- union at the coordinator -------------------------------------
	for w, out := range run.perWorker {
		cl.Ship(w, cluster.Coordinator, int64(len(out))*violationBytes)
		res.Violations = append(res.Violations, out...)
	}
	cl.EndRound()
	res.Violations.Sort()

	st := cl.Stats()
	res.BytesShipped = st.TotalBytes
	res.Messages = st.TotalMsgs
	res.Comm = cl.CommTime()
	res.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if perr != nil {
		return res, perr
	}
	return res, nil
}

// workerEmit selects one worker's violation consumer: the shared
// streaming sink when the caller streams, else an append onto the
// worker's private report slice.
func workerEmit(sink *streamSink, out *Report) func(Violation) bool {
	if sink != nil {
		return sink.emit
	}
	return func(v Violation) bool {
		*out = append(*out, v)
		return true
	}
}

const (
	unitDescriptorBytes = 16 // ⟨v̄_z, |G_z̄|⟩ on the wire
	candidateInfoBytes  = 16 // candidate + block-part size
	violationBytes      = 48 // rule name tag + match vector
)

// The workload-estimation phase (candidate listing, equi-depth ranges,
// block-size measurement, unit assembly) lives in estimate.go: it is
// shared by repVal and disVal and memoized on the Bundle so warm rounds
// skip it entirely.
