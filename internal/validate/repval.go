package validate

import (
	"context"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/stats"
	"gfd/internal/workload"
)

// RepVal is the parallel scalable error-detection algorithm for replicated
// graphs (Fig. 4 / Theorem 10). The graph is available at every worker, so
// no block data is ever shipped; the engine balances the estimated
// workload W(Σ, G) across workers with the LPT greedy 2-approximation and
// runs local detection in parallel.
//
// Variants: Options.RandomAssign yields repran, Options.NoOptimize yields
// repnop.
//
// It builds a one-shot bundle per call; callers validating the same graph
// repeatedly should hold a session (gfd.NewSession) and Detect with
// EngineReplicated instead.
func RepVal(g *graph.Graph, set *core.Set, opt Options) *Result {
	res, _ := RepValB(context.Background(), NewBundle(g, set), opt, nil)
	return res
}

// RepValB is repVal over a prepared bundle with cooperative cancellation:
// workers check the context between work units and (strided) between
// matches, so a cancelled run aborts promptly and returns the context's
// error with partial instrumentation. When emit is non-nil, violations
// stream to it as they are found (serialized across workers, stopping the
// engine when it returns false) and Result.Violations stays empty;
// otherwise they are collected per worker, unioned and sorted.
func RepValB(ctx context.Context, b *Bundle, opt Options, emit func(Violation) bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		// A dead context must not pay for the estimation phase.
		return &Result{}, err
	}
	opt = opt.Normalized()
	start := time.Now()
	cl := cluster.New(opt.N, opt.Cost)
	res := &Result{}

	set, groups := b.ruleGroups(opt)
	res.Rules = set.Len()
	res.Groups = len(groups)
	topo := b.topo

	// ---- bPar: parallel workload estimation --------------------------
	estStart := time.Now()
	units, estSpan := estimateUnits(b.g, topo, cl, groups, opt)
	res.EstimateSpan = estSpan
	theta := splitThreshold(opt, units)
	var split int
	units, split = applySplit(units, groups, theta)
	res.SplitUnits = split
	res.Units = len(units)
	res.EstimateWall = time.Since(estStart)
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// ---- bPar: balanced n-partition ----------------------------------
	weights := make([]int, len(units))
	for i, u := range units {
		weights[i] = u.Weight()
		res.TotalWeight += int64(u.Weight())
	}
	var assign workload.Assignment
	if opt.RandomAssign {
		assign = workload.BalanceRandom(weights, opt.N, opt.Seed)
	} else {
		assign = workload.BalanceLPT(weights, opt.N)
	}
	res.Makespan = assign.Makespan(weights)
	// Shipping W_i(Σ, G) to each worker: one compact descriptor per unit.
	for w, idxs := range assign {
		cl.Ship(cluster.Coordinator, w, int64(len(idxs))*unitDescriptorBytes)
	}
	cl.EndRound()

	// ---- localVio: parallel local detection --------------------------
	detStart := time.Now()
	var sink *streamSink
	if emit != nil {
		sink = &streamSink{yield: emit}
	}
	perWorker := make([]Report, opt.N)
	busy := cl.RunMeasured(func(w int) {
		det := newUnitDetector(topo, &cancelCheck{ctx: ctx})
		out := workerEmit(sink, &perWorker[w])
		for _, ui := range assign[w] {
			if det.cancel.canceled() {
				return
			}
			u := units[ui]
			if !det.detect(groups[u.group], u, !opt.NoOptimize, out) {
				return
			}
		}
	})
	res.DetectWall = time.Since(detStart)
	res.DetectSpan = cluster.MaxSpan(busy)

	// ---- union at the coordinator -------------------------------------
	for w, out := range perWorker {
		cl.Ship(w, cluster.Coordinator, int64(len(out))*violationBytes)
		res.Violations = append(res.Violations, out...)
	}
	cl.EndRound()
	res.Violations.Sort()

	st := cl.Stats()
	res.BytesShipped = st.TotalBytes
	res.Messages = st.TotalMsgs
	res.Comm = cl.CommTime()
	res.Wall = time.Since(start)
	return res, ctx.Err()
}

// workerEmit selects one worker's violation consumer: the shared
// streaming sink when the caller streams, else an append onto the
// worker's private report slice.
func workerEmit(sink *streamSink, out *Report) func(Violation) bool {
	if sink != nil {
		return sink.emit
	}
	return func(v Violation) bool {
		*out = append(*out, v)
		return true
	}
}

const (
	unitDescriptorBytes = 16 // ⟨v̄_z, |G_z̄|⟩ on the wire
	candidateInfoBytes  = 16 // candidate + block-part size
	violationBytes      = 48 // rule name tag + match vector
)

// estimateUnits runs the parallel workload-estimation phase shared by
// repVal and disVal: pivot candidate lists are split into equi-depth
// ranges, range combinations are distributed round-robin to workers, each
// worker measures its candidates' c-hop block sizes and reports compact
// unit descriptors to the coordinator. The returned span is the modeled
// parallel duration of the phase (max worker busy time).
func estimateUnits(g *graph.Graph, topo graph.Topology, cl *cluster.Cluster, groups []*ruleGroup, opt Options) ([]workUnit, time.Duration) {
	type task struct {
		group  int
		ranges []stats.Range // one per component
	}
	var tasks []task
	cands := make([][][]graph.NodeID, len(groups)) // group -> component -> sorted candidates
	for gi, grp := range groups {
		k := grp.pivot.Arity()
		cands[gi] = make([][]graph.NodeID, k)
		ranges := make([][]stats.Range, k)
		for i := 0; i < k; i++ {
			sorted, rs := stats.EquiDepthByValue(g, grp.pivot.CandidatesIn(topo, i), "val", opt.HistogramM)
			cands[gi][i] = sorted
			ranges[i] = rs
		}
		// Cross-product of per-component ranges; for symmetric deduped
		// patterns only ordered range pairs are kept (Example 10).
		symmetric := !opt.NoOptimize && grp.pivot.Symmetric() && k == 2
		switch k {
		case 1:
			for _, r := range ranges[0] {
				tasks = append(tasks, task{group: gi, ranges: []stats.Range{r}})
			}
		case 2:
			for i, r1 := range ranges[0] {
				for j, r2 := range ranges[1] {
					if symmetric && j < i {
						continue
					}
					tasks = append(tasks, task{group: gi, ranges: []stats.Range{r1, r2}})
				}
			}
		default:
			// k > 2 is rare; a single task covers the full cross product.
			full := make([]stats.Range, k)
			for i := range full {
				full[i] = stats.Range{Lo: 0, Hi: len(cands[gi][i])}
			}
			tasks = append(tasks, task{group: gi, ranges: full})
		}
	}

	// Phase A: measure every needed c-hop block size exactly once, the
	// candidate set split contiguously across workers (each candidate is
	// owned by one worker, so no neighborhood is measured twice).
	sizeOf, sizeSpan := measureSizes(topo, cl, groups, cands, opt.N)

	// Phase B: workers assemble the unit descriptors for their range
	// combinations from the precomputed sizes.
	perWorker := make([][]workUnit, opt.N)
	busy := cl.RunMeasured(func(w int) {
		var mine []workUnit
		for ti := w; ti < len(tasks); ti += opt.N {
			t := tasks[ti]
			grp := groups[t.group]
			slice := make([][]graph.NodeID, len(t.ranges))
			for i, r := range t.ranges {
				slice[i] = cands[t.group][i][r.Lo:r.Hi]
			}
			symmetric := !opt.NoOptimize && grp.pivot.Symmetric()
			// Within the diagonal range pair the ordered-pair rule applies;
			// BuildUnitsSized handles it via DedupSymmetric. Off-diagonal
			// pairs are disjoint, so the flag only prunes the diagonal.
			dedup := symmetric && len(t.ranges) == 2 && t.ranges[0] == t.ranges[1]
			us := workload.BuildUnitsSized(grp.pivot, slice, sizeOf, workload.BuildOptions{DedupSymmetric: dedup})
			for _, u := range us {
				mine = append(mine, workUnit{Unit: u, group: t.group})
			}
		}
		perWorker[w] = mine
		// Report ⟨v̄_z, |G_z̄|⟩ descriptors to the coordinator (one batched
		// message per worker).
		cl.Ship(w, cluster.Coordinator, int64(len(mine))*unitDescriptorBytes)
	})
	cl.EndRound()

	var units []workUnit
	for _, mine := range perWorker {
		units = append(units, mine...)
	}
	return units, sizeSpan + cluster.MaxSpan(busy)
}

// measureSizes computes |G_z̄[z]| for every (candidate, radius) pair any
// group needs, in parallel with each pair assigned to exactly one worker.
// It returns a read-only lookup plus the phase's modeled span. Traversal
// runs over the compiled topology's CSR arrays.
func measureSizes(topo graph.Topology, cl *cluster.Cluster, groups []*ruleGroup, cands [][][]graph.NodeID, n int) (func(graph.NodeID, int) int, time.Duration) {
	type req struct {
		node   graph.NodeID
		radius int
	}
	seen := make(map[req]struct{})
	var reqs []req
	for gi, grp := range groups {
		for i := 0; i < grp.pivot.Arity(); i++ {
			r := grp.pivot.Radii[i]
			for _, v := range cands[gi][i] {
				k := req{v, r}
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					reqs = append(reqs, k)
				}
			}
		}
	}
	partial := make([]map[req]int, n)
	busy := cl.RunMeasured(func(w int) {
		mine := make(map[req]int)
		for i := w; i < len(reqs); i += n {
			mine[reqs[i]] = topo.NeighborhoodSize(reqs[i].node, reqs[i].radius)
		}
		partial[w] = mine
	})
	sizes := make(map[req]int, len(reqs))
	for _, m := range partial {
		for k, v := range m {
			sizes[k] = v
		}
	}
	return func(v graph.NodeID, c int) int { return sizes[req{v, c}] }, cluster.MaxSpan(busy)
}
