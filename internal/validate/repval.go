package validate

import (
	"context"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/graph"
)

// RepVal is the parallel scalable error-detection algorithm for replicated
// graphs (Fig. 4 / Theorem 10). The graph is available at every worker, so
// no block data is ever shipped; the engine balances the estimated
// workload W(Σ, G) across workers with the LPT greedy 2-approximation and
// runs local detection in parallel.
//
// Variants: Options.RandomAssign yields repran, Options.NoOptimize yields
// repnop.
//
// It builds a one-shot bundle per call; callers validating the same graph
// repeatedly should hold a session (gfd.NewSession) and Detect with
// EngineReplicated instead.
func RepVal(g *graph.Graph, set *core.Set, opt Options) *Result {
	res, _ := RepValB(context.Background(), NewBundle(g, set), opt, nil)
	return res
}

// RepValB is repVal over a prepared bundle with cooperative cancellation:
// workers check the context between work units and (strided) inside match
// enumeration, so a cancelled run aborts promptly and returns the
// context's error with partial instrumentation. When sink is non-nil,
// violations are delivered to it as they are found (each worker emitting
// on its own lane, stopping the engine when the sink refuses) and
// Result.Violations stays empty; a nil sink collects per worker, unions
// and sorts into Result.Violations.
//
// Detection runs under the fault-tolerant scheduler (runtime.go): worker
// panics are isolated, failed units are retried under Options.Retry, and
// when budgets exhaust the error is a *PartialError (errors.Is ErrPartial)
// with Result.Completeness carrying the census.
func RepValB(ctx context.Context, b *Bundle, opt Options, sink Sink) (res *Result, err error) {
	if err := ctx.Err(); err != nil {
		// A dead context must not pay for the estimation phase.
		return &Result{}, err
	}
	res = &Result{}
	defer engineRecover(&err)
	opt = opt.Normalized()
	start := time.Now()
	cl := cluster.New(opt.N, opt.Cost)
	inj := opt.Inject.Arm(opt.N)
	cl.Arm(inj)

	set, groups, gk := b.ruleGroupsKeyed(opt)
	res.Rules = set.Len()
	res.Groups = len(groups)
	topo := b.topo

	// ---- bPar: estimation + split + balanced n-partition, all memoized
	// per variant (estimate.go); warm rounds replay the plan and its comm
	// charges without re-touching the unit set ------------------------
	estStart := time.Now()
	plan, estSpan, err := b.planFor(cl, groups, gk, opt, nil)
	if err != nil {
		return res, err
	}
	res.EstimateSpan = estSpan
	res.SplitUnits = plan.split
	res.Units = len(plan.units)
	res.TotalWeight = plan.totalWeight
	res.Makespan = plan.makespan
	res.EstimateWall = time.Since(estStart)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// Shipping W_i(Σ, G) to each worker: one compact descriptor per unit.
	for w, idxs := range plan.assign {
		cl.Ship(cluster.Coordinator, w, int64(len(idxs))*unitDescriptorBytes)
	}
	cl.EndRound()

	// ---- localVio: parallel local detection under the fault-tolerant
	// scheduler (runtime.go) -------------------------------------------
	detStart := time.Now()
	var collect *CollectSink
	if sink == nil {
		collect = NewCollectSink(opt.N)
		sink = collect
	}
	run := &detectRun{ctx: ctx, cl: cl, topo: topo, groups: groups, units: plan.units, opt: opt, sink: sink, inj: inj}
	span, comp, perr := run.run(plan.assign)
	res.DetectWall = time.Since(detStart)
	res.DetectSpan = span
	res.Completeness = comp

	// ---- union at the coordinator -------------------------------------
	// Violations return to the coordinator whichever sink consumed them;
	// the shipment is charged off the per-worker delivery counts.
	for w, cnt := range run.counts {
		cl.Ship(w, cluster.Coordinator, cnt*violationBytes)
	}
	cl.EndRound()
	if collect != nil {
		res.Violations = collect.Report()
		res.Violations.Sort()
	}

	st := cl.Stats()
	res.BytesShipped = st.TotalBytes
	res.Messages = st.TotalMsgs
	res.Comm = cl.CommTime()
	res.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if perr != nil {
		return res, perr
	}
	return res, nil
}

const (
	unitDescriptorBytes = 16 // ⟨v̄_z, |G_z̄|⟩ on the wire
	candidateInfoBytes  = 16 // candidate + block-part size
	violationBytes      = 48 // rule name tag + match vector
)

// The workload-estimation phase (candidate listing, equi-depth ranges,
// block-size measurement, unit assembly) lives in estimate.go: it is
// shared by repVal and disVal and memoized on the Bundle so warm rounds
// skip it entirely.
