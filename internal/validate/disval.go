package validate

import (
	"context"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// DisVal is the parallel error-detection algorithm for fragmented graphs
// (Section 6.2 / Theorem 11). Each fragment F_i resides at worker i; the
// coordinator assembles work units from per-fragment partial units and
// computes a bi-criteria assignment that balances load while minimizing
// the data shipped to assemble each unit's block. Local detection then
// chooses per unit between prefetching the missing block parts and
// shipping partial matches, whichever is estimated cheaper.
//
// Variants: Options.RandomAssign yields disran, Options.NoOptimize yields
// disnop (no grouping/dedup/splitting, always prefetch).
//
// It builds a one-shot bundle per call; callers validating the same graph
// repeatedly should hold a session (gfd.NewSession) and Detect with
// EngineFragmented instead.
func DisVal(g *graph.Graph, frag *fragment.Fragmentation, set *core.Set, opt Options) *Result {
	res, _ := DisValB(context.Background(), NewBundle(g, set), frag, opt, nil)
	return res
}

// DisValB is disVal over a prepared bundle with cooperative cancellation
// and optional streaming, with the same contract as RepValB — including
// the fault-tolerant detection scheduler (runtime.go): a retried or
// reassigned unit re-runs its prefetch / partial-match exchange on the new
// worker, so recovery pays its shipping like the paper's model demands.
func DisValB(ctx context.Context, b *Bundle, frag *fragment.Fragmentation, opt Options, sink Sink) (res *Result, err error) {
	if err := ctx.Err(); err != nil {
		// A dead context must not pay for the estimation phase.
		return &Result{}, err
	}
	res = &Result{}
	defer engineRecover(&err)
	opt = opt.Normalized()
	if frag.N != opt.N {
		// The fragmentation fixes worker count; workers beyond frag.N
		// would own no data.
		opt.N = frag.N
	}
	g := b.g
	start := time.Now()
	cl := cluster.New(opt.N, opt.Cost)
	inj := opt.Inject.Arm(opt.N)
	cl.Arm(inj)

	set, groups, gk := b.ruleGroupsKeyed(opt)
	res.Rules = set.Len()
	res.Groups = len(groups)
	topo := b.topo

	// ---- disPar: estimation with border/ownership accounting, plus the
	// split and bi-criteria assignment — all memoized per (variant,
	// fragmentation); warm rounds replay the plan and its comm charges
	// and skip the work (estimate.go).
	estStart := time.Now()
	plan, estSpan, err := b.planFor(cl, groups, gk, opt, frag)
	if err != nil {
		return res, err
	}
	res.EstimateSpan = estSpan
	res.SplitUnits = plan.split
	res.Units = len(plan.units)
	res.TotalWeight = plan.totalWeight
	res.Makespan = plan.makespan
	res.EstimateWall = time.Since(estStart)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	units := plan.units
	for w, idxs := range plan.assign {
		cl.Ship(cluster.Coordinator, w, int64(len(idxs))*unitDescriptorBytes)
	}
	cl.EndRound()

	// ---- dlocalVio: detection with prefetch / partial-match choice,
	// under the fault-tolerant scheduler. The block exchange runs in the
	// per-attempt prep hook, so a unit reassigned after a worker death (or
	// retried after a deadline miss) re-ships its block to the worker that
	// actually runs it — recovery is charged, not free.
	detStart := time.Now()
	var collect *CollectSink
	if sink == nil {
		collect = NewCollectSink(opt.N)
		sink = collect
	}
	prefetched := make([]int, opt.N)
	partials := make([]int, opt.N)
	prep := func(w, ui int) {
		u := units[ui]
		grp := groups[u.group]
		shipped := u.shipBytes[w]
		strategy := "prefetch"
		// Weighing partial-match shipping against prefetching costs a
		// scan of the block; it is only worth considering when the
		// prefetch is substantial.
		if !opt.NoOptimize && shipped > minPartialConsideration {
			if pb := partialMatchBytes(g, topo, frag, grp, u, w, shipped); pb < shipped {
				shipped = pb
				strategy = "partial"
			}
		}
		if shipped > 0 {
			// Data arrives from each fragment owning a missing part;
			// charge it as one bulk transfer into w.
			cl.Ship(owningPeer(frag, u, w), w, shipped)
		}
		if strategy == "partial" {
			partials[w]++
		} else {
			prefetched[w]++
		}
	}
	run := &detectRun{ctx: ctx, cl: cl, topo: topo, groups: groups, units: units, opt: opt, sink: sink, inj: inj, prep: prep}
	span, comp, perr := run.run(plan.assign)
	res.DetectWall = time.Since(detStart)
	res.DetectSpan = span
	res.Completeness = comp
	cl.EndRound() // block/partial-match exchanges during detection

	for w, cnt := range run.counts {
		cl.Ship(w, cluster.Coordinator, cnt*violationBytes)
		res.PrefetchUnits += prefetched[w]
		res.PartialUnits += partials[w]
	}
	cl.EndRound()
	if collect != nil {
		res.Violations = collect.Report()
		res.Violations.Sort()
	}

	st := cl.Stats()
	res.BytesShipped = st.TotalBytes
	res.Messages = st.TotalMsgs
	res.Comm = cl.CommTime()
	res.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if perr != nil {
		return res, perr
	}
	return res, nil
}

// commCostWeight converts shipped bytes into load-comparable units for the
// bi-criteria greedy (c_s in the paper's CC(w) = c_s·|M|). Block sizes are
// |V|+|E| counts while shipping is in bytes; one block element is worth
// roughly a few tens of bytes on the wire.
const commCostWeight = 1.0 / 32

// chargeCandidateMessages accounts the M_i estimation messages of disPar:
// every fragment reports its local pivot candidates (candidate id,
// block-part size, border nodes) to the coordinator as one batched message
// per fragment, sized per candidate descriptor. Charges go through ship so
// the estimation cache can record and replay them.
func chargeCandidateMessages(g *graph.Graph, ship func(from, to int, bytes int64), frag *fragment.Fragmentation, groups []*ruleGroup) {
	type key struct {
		node  graph.NodeID
		owner int
	}
	seen := make(map[key]struct{})
	perOwner := make([]int64, frag.N)
	for _, grp := range groups {
		for i := 0; i < grp.pivot.Arity(); i++ {
			for _, c := range grp.pivot.Candidates(g, i) {
				k := key{c, frag.OwnerOf(c)}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				perOwner[k.owner] += candidateInfoBytes + int64(frag.N)*8
			}
		}
	}
	for owner, bytes := range perOwner {
		if bytes > 0 {
			ship(owner, cluster.Coordinator, bytes)
		}
	}
}

// attachShipCosts computes, for every worker, the bytes that must be
// shipped to it to assemble the unit's data block (its non-local part).
func attachShipCosts(g *graph.Graph, topo graph.Topology, frag *fragment.Fragmentation, u *workUnit) {
	block := u.BlockIn(topo).Sorted()
	u.shipBytes = make([]int64, frag.N)
	var total int64
	perOwner := make([]int64, frag.N)
	for _, v := range block {
		b := fragment.NodeBytes(g, v)
		perOwner[frag.OwnerOf(v)] += b
		total += b
	}
	for w := 0; w < frag.N; w++ {
		u.shipBytes[w] = total - perOwner[w]
	}
	u.totalBytes = total
}

// partialMatchBytes estimates the cost of the partial-match shipping
// strategy: the graph-simulation relation of the group pattern restricted
// to the unit's block over-approximates the partial matches that would be
// exchanged; each pair costs a fixed descriptor. Only pairs on nodes not
// owned by worker w need shipping.
//
// The simulation fixpoint is only worth computing when it could win: a
// label-compatibility count (an upper bound on the simulation size, O(1)
// per block node) prefilters units whose partial matches could not beat
// prefetching, keeping the strategy selector itself cheap — the paper's
// dlocalVio likewise estimates before exchanging.
func partialMatchBytes(g *graph.Graph, topo graph.Topology, frag *fragment.Fragmentation, grp *ruleGroup, u workUnit, w int, prefetchBytes int64) int64 {
	block := u.BlockIn(topo)
	var upper int64
	for v := range block {
		if frag.OwnerOf(v) == w {
			continue
		}
		l := g.Label(v)
		for _, n := range grp.q.Nodes {
			if pattern.LabelMatches(n.Label, l) {
				upper += partialDescriptorBytes
			}
		}
	}
	if upper >= prefetchBytes {
		return upper // cannot win; skip the fixpoint
	}
	sim := match.Simulate(g, grp.q, block)
	var pairs int64
	for _, s := range sim {
		for v := range s {
			if frag.OwnerOf(v) != w {
				pairs++
			}
		}
	}
	return pairs * partialDescriptorBytes
}

// partialDescriptorBytes is the wire size of one (pattern node, graph
// node) partial-match descriptor.
const partialDescriptorBytes = 24

// minPartialConsideration is the prefetch size (bytes) below which the
// partial-match alternative is not even evaluated.
const minPartialConsideration = 4096

// owningPeer picks the peer fragment contributing the largest missing
// block part, as the representative source of the bulk transfer.
func owningPeer(frag *fragment.Fragmentation, u workUnit, w int) int {
	// The exact source split does not change totals; attribute to the
	// fragment owning the first candidate not local to w, else worker 0.
	for _, c := range u.Candidates {
		if o := frag.OwnerOf(c); o != w {
			return o
		}
	}
	if w == 0 && frag.N > 1 {
		return 1
	}
	if w != 0 {
		return 0
	}
	return 0
}
