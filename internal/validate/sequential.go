package validate

import (
	"context"
	"errors"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
)

// ErrTimeout is returned by DetVioCtx when the context expires before the
// enumeration finishes — the fate of the sequential algorithm on the
// paper's large graphs (Exp-1: detVio does not terminate within 6000s).
var ErrTimeout = errors.New("validate: sequential detection timed out")

// DetVio is the sequential error-detection algorithm of Section 5.1: for
// every rule it enumerates all matches of the pattern in g and collects
// those violating X → Y. It is the correctness reference for the parallel
// engines, and exponential in the worst case.
//
// The graph is frozen once (Graph.Freeze); every rule's enumeration runs
// over the compiled snapshot and its X → Y check over the rule's literal
// program lowered onto the snapshot's symbol table.
func DetVio(g *graph.Graph, set *core.Set) Report {
	r, _ := DetVioCtx(context.Background(), g, set)
	return r
}

// DetVioCtx is DetVio with cooperative cancellation, checked between
// matches.
func DetVioCtx(ctx context.Context, g *graph.Graph, set *core.Set) (Report, error) {
	var out Report
	snap := g.Freeze()
	m := match.NewMatcher(snap)
	for _, f := range set.Rules() {
		p := f.ProgramFor(snap.Syms())
		var err error
		m.Enumerate(f.Q, match.Options{}, func(h core.Match) bool {
			if ctx.Err() != nil {
				err = ErrTimeout
				return false
			}
			if p.IsViolation(snap, h) {
				out = append(out, Violation{Rule: f.Name, Match: append(core.Match(nil), h...)})
			}
			return true
		})
		if err != nil {
			return out, err
		}
	}
	out.Sort()
	return out, nil
}

// Satisfies reports G |= Σ, i.e. whether the violation set is empty — the
// validation problem of Proposition 9.
func Satisfies(g *graph.Graph, set *core.Set) bool {
	snap := g.Freeze()
	m := match.NewMatcher(snap)
	for _, f := range set.Rules() {
		p := f.ProgramFor(snap.Syms())
		violated := false
		m.Enumerate(f.Q, match.Options{}, func(h core.Match) bool {
			if p.IsViolation(snap, h) {
				violated = true
				return false
			}
			return true
		})
		if violated {
			return false
		}
	}
	return true
}
