package validate

import (
	"context"
	"errors"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
)

// ErrTimeout is returned by DetVioCtx when the context expires before the
// enumeration finishes — the fate of the sequential algorithm on the
// paper's large graphs (Exp-1: detVio does not terminate within 6000s).
var ErrTimeout = errors.New("validate: sequential detection timed out")

// DetVioB is the sequential error-detection algorithm of Section 5.1 over
// a prepared bundle: it pulls matches of each rule's pattern from the
// matcher's lazy iterator, checks the compiled X → Y program on each, and
// delivers violations to the sink without materializing a report — match
// enumeration, literal checking and emission are one fused stream. Rules
// whose patterns share a connected core run factorized (factor.go): the
// shared prefix is enumerated once and each rule branches at its
// divergence point with the core image pinned, so multi-rule groups stop
// re-walking identical search-tree prefixes per rule. The violation set is
// exactly DetVioPerRuleB's; only the delivery order differs (interleaved
// by group rather than strictly rule-by-rule). Enumeration stops when the
// sink refuses a violation (no error) or the context is cancelled (the
// context's error is returned); both propagate into candidate enumeration
// through the matcher's halt probe, so a stop lands mid-class even on
// matchless stretches. A nil sink collects nothing (useful only for its
// side-effect timing) — callers wanting a report use DetVioCtx or a
// CollectSink. It is the correctness reference for the parallel engines,
// and exponential in the worst case.
//
// A panic during enumeration or literal evaluation is recovered into the
// returned error (a *cluster.WorkerError) — there is only one execution
// stream here, so there is nothing to retry, but the caller's process
// survives.
func DetVioB(ctx context.Context, b *Bundle, sink Sink) (err error) {
	defer engineRecover(&err)
	return detVioFactored(ctx, b, sink)
}

// DetVioPerRuleB is DetVioB without the factorized shared-core driver:
// every rule enumerates its own pattern from scratch, in rule order. It is
// the reference (and ablation benchmark) for the factorized path; the two
// produce identical violation sets.
func DetVioPerRuleB(ctx context.Context, b *Bundle, sink Sink) (err error) {
	defer engineRecover(&err)
	topo := b.topo
	m := match.NewMatcher(topo)
	cancel := &cancelCheck{ctx: ctx}
	opts := match.Options{Halt: cancel.canceled}
	for _, f := range b.set.Rules() {
		p := b.Program(f)
		stopped := false
		for h := range m.Matches(f.Q, opts) {
			if cancel.canceled() {
				break
			}
			if p.IsViolation(topo, h) {
				if sink != nil && !sink.Emit(0, Violation{Rule: f.Name, Match: append(core.Match(nil), h...)}) {
					stopped = true
					break
				}
			}
		}
		if cancel.hit {
			return ctx.Err()
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// DetVio runs the sequential detector and returns Vio(Σ, G).
//
// Deprecated-style convenience: it builds a one-shot bundle per call.
// Callers validating the same graph repeatedly should hold a session
// (gfd.NewSession) and Detect with EngineSequential instead.
func DetVio(g *graph.Graph, set *core.Set) Report {
	r, _ := DetVioCtx(context.Background(), g, set)
	return r
}

// DetVioCtx is DetVio with cooperative cancellation, checked between
// matches. On expiry it returns the violations found so far plus
// ErrTimeout.
func DetVioCtx(ctx context.Context, g *graph.Graph, set *core.Set) (Report, error) {
	sink := NewCollectSink(1)
	err := DetVioB(ctx, NewBundle(g, set), sink)
	out := sink.Report()
	if err != nil {
		return out, ErrTimeout
	}
	out.Sort()
	return out, nil
}

// Satisfies reports G |= Σ, i.e. whether the violation set is empty — the
// validation problem of Proposition 9. It stops at the first violation.
func Satisfies(g *graph.Graph, set *core.Set) bool {
	violated := false
	_ = DetVioB(context.Background(), NewBundle(g, set), Callback(func(Violation) bool {
		violated = true
		return false
	}))
	return !violated
}
