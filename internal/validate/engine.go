package validate

import (
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/fault"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/workload"
)

// Options configures the validation engines. The zero value is completed
// by Normalized(): the replicated engine, 4 workers, LPT/bi-criteria
// assignment, all optimizations on.
type Options struct {
	// Engine selects the algorithm a unified entry point (Prepared.Detect
	// / Prepared.Stream) runs; the direct engine functions ignore it.
	// EngineAuto resolves to EngineReplicated.
	Engine Engine
	// Frag supplies the fragmentation for EngineFragmented. When nil the
	// session hash-partitions the graph into N fragments (cached per
	// graph version). Ignored by the other engines.
	Frag *fragment.Fragmentation
	// N is the number of workers (processors).
	N int
	// RandomAssign replaces the LPT / bi-criteria assignment with uniform
	// random placement: the repran / disran variants.
	RandomAssign bool
	// NoOptimize disables the Appendix optimizations (multi-query pattern
	// grouping, symmetric work-unit deduplication, implication-based
	// workload reduction, replicate-and-split, and disVal's partial-match
	// shipping): the repnop / disnop variants.
	NoOptimize bool
	// NoReduce keeps implied rules even when optimizing; workload
	// reduction costs an implication test per rule, which the ablation
	// benchmarks isolate.
	NoReduce bool
	// HistogramM is the predefined number m of equi-depth ranges per pivot
	// candidate list used to spread estimation work (Section 6.1).
	// Defaults to 16; it is deliberately independent of N so the number of
	// estimation messages stays constant as workers are added.
	HistogramM int
	// SplitThreshold is θ of the replicate-and-split strategy: work units
	// whose data block exceeds θ are split into stripes. 0 derives a
	// default from the workload (4× the mean block size); negative
	// disables splitting.
	SplitThreshold int
	// ArbitraryPivot replaces min-radius pivot selection with the first
	// variable of each component (ablation).
	ArbitraryPivot bool
	// Seed drives the random assignment variant.
	Seed int64
	// Cost prices simulated communication.
	Cost cluster.CostModel

	// Retry is the per-unit retry budget the parallel engines apply when a
	// worker dies or a unit misses its deadline. The zero value normalizes
	// to the defaults (DefaultRetryMax attempts beyond the first,
	// DefaultRetryBackoff base backoff); Max < 0 disables retries.
	Retry Retry
	// UnitDeadline bounds one attempt of one work unit: an attempt running
	// longer is abandoned (cooperatively, at the same strided checkpoints
	// as cancellation) and the unit is retried under the Retry budget.
	// 0 means no per-unit deadline.
	UnitDeadline time.Duration
	// Inject arms a deterministic fault plan for this run (see
	// internal/fault). nil — the production state — makes every injection
	// point a nil-check no-op.
	Inject *fault.Plan

	// StreamBuffer bounds the per-worker violation lanes of the pull-based
	// pipeline (Prepared.Violations): each worker may run at most this many
	// violations ahead of the consumer before blocking. 0 normalizes to
	// DefaultStreamBuffer; the collect and callback sinks ignore it.
	StreamBuffer int

	// Dist configures EngineDistributed (internal/dist): where the shard
	// manifest lives and how worker processes are supervised. Ignored by
	// every other engine; nil with EngineDistributed is an error.
	Dist *DistOptions
}

// Retry configures the parallel engines' unit retry policy: a unit may be
// re-attempted up to Max times beyond its first attempt, and each recovery
// round backs off exponentially from Backoff (doubled per round, capped at
// maxBackoffFactor times the base) before reassigning failed units to live
// workers.
type Retry struct {
	Max     int           // retries per unit after the first attempt; < 0 disables
	Backoff time.Duration // base recovery-round backoff; < 0 disables
}

// Default retry policy: two retries with a 1ms base backoff. Backoff only
// costs anything after a failure, so the defaults are safe for fault-free
// runs.
const (
	DefaultRetryMax     = 2
	DefaultRetryBackoff = time.Millisecond
	maxBackoffFactor    = 8
)

// DefaultStreamBuffer is the per-worker lane capacity of the pull-based
// violation pipeline when Options.StreamBuffer is unset: deep enough to
// absorb bursts, small enough that an abandoned iterator bounds buffered
// work to a few KB per worker.
const DefaultStreamBuffer = 64

// Normalized fills unset fields with their defaults: the replicated
// engine, 4 workers, histogram m = 16, the default cost model, the default
// retry policy.
func (o Options) Normalized() Options {
	o.Engine = o.Engine.Resolve()
	if o.N < 1 {
		o.N = 4
	}
	if o.HistogramM <= 0 {
		o.HistogramM = 16
	}
	if o.Cost == (cluster.CostModel{}) {
		o.Cost = cluster.DefaultCostModel()
	}
	if o.Retry.Max == 0 {
		o.Retry.Max = DefaultRetryMax
	} else if o.Retry.Max < 0 {
		o.Retry.Max = 0
	}
	if o.Retry.Backoff == 0 {
		o.Retry.Backoff = DefaultRetryBackoff
	} else if o.Retry.Backoff < 0 {
		o.Retry.Backoff = 0
	}
	if o.StreamBuffer <= 0 {
		o.StreamBuffer = DefaultStreamBuffer
	}
	return o
}

// Result carries the violation set plus the instrumentation the
// experiments report.
type Result struct {
	Violations Report

	Rules  int // rules validated (after any reduction)
	Groups int // rule groups after multi-query combining
	Units  int // work units generated (after dedup/splitting)

	Wall         time.Duration // end-to-end wall-clock time on this host
	EstimateWall time.Duration // workload estimation phase (wall)
	DetectWall   time.Duration // local detection phase (wall)
	EstimateSpan time.Duration // modeled estimation span: max worker busy time
	DetectSpan   time.Duration // modeled detection span: max worker busy time
	Comm         time.Duration // modeled communication time
	BytesShipped int64         // total simulated data shipment
	Messages     int64

	Makespan    int64 // heaviest worker load (weight units)
	TotalWeight int64 // Σ unit weights ≈ sequential cost t(|Σ|,|G|)

	PrefetchUnits int // disVal: units evaluated by block prefetching
	PartialUnits  int // disVal: units evaluated by partial-match shipping
	SplitUnits    int // units produced by replicate-and-split

	// Completeness reports how much of the scheduled workload actually
	// completed: an honest answer instead of a silently clean report when
	// workers died or units exhausted their retry budgets. Filled by the
	// parallel engines (repVal / disVal); Complete() is trivially true for
	// the single-sink engines, which either finish or return an error.
	Completeness Completeness
}

// Completeness is the execution census of one detection run under the
// fault-tolerant scheduler.
type Completeness struct {
	Units          int // work units scheduled
	Attempted      int // units started at least once
	Succeeded      int // units that completed
	Failed         int // units abandoned: retry budget exhausted or no live workers left
	Retries        int // re-attempts beyond each unit's first
	WorkerDeaths   int // workers lost to recovered panics
	RecoveryRounds int // extra supersteps spent reassigning failed units
}

// Complete reports whether every scheduled unit succeeded. A cancelled
// run is not complete (unreached units are neither succeeded nor failed).
func (c Completeness) Complete() bool { return c.Succeeded == c.Units }

// TotalTime is wall time plus modeled communication time.
func (r *Result) TotalTime() time.Duration { return r.Wall + r.Comm }

// ModeledTime is the simulated n-worker parallel time the paper's figures
// plot: the maximum per-worker busy time of each phase (workers are
// logical; compute is measured per worker and phases overlap only within
// a worker) plus the modeled communication time. On a host with fewer
// cores than n this is the faithful scaling metric — wall time cannot
// drop below (total work / physical cores) regardless of n.
func (r *Result) ModeledTime() time.Duration {
	return r.EstimateSpan + r.DetectSpan + r.Comm
}

// workUnit is a work unit bound to its rule group and optional stripe.
type workUnit struct {
	workload.Unit
	group      int
	stripeMod  int // 0 = unstriped
	stripeRem  int
	shipBytes  []int64 // disVal: bytes to ship if assigned to worker i
	totalBytes int64   // disVal: full block bytes
}

// unitDetector is one worker's detection state: a topology-backed Matcher
// plus reusable pin map, match scratch, and cancellation probe, so the
// per-unit loop stays off the allocator. Workers each own one; the
// underlying Topology (snapshot or overlay) is shared and serves both
// enumeration (CSR topology) and literal evaluation (interned attributes).
type unitDetector struct {
	m       *match.Matcher
	pin     map[int]graph.NodeID
	scratch core.Match
	block   *graph.EpochSet // reusable data block, refilled per unit
	cancel  *cancelCheck    // per-worker; consulted between matches
	halt    func() bool     // cancel.canceled bound once; threaded into enumeration

	// Fault-injection context: nil inj in production (crossings are
	// nil-check no-ops); worker/unit identify the current execution for
	// the injected-panic payloads.
	inj    *fault.Injector
	worker int
	unit   int
}

func newUnitDetector(topo graph.Topology, cancel *cancelCheck, inj *fault.Injector, worker int) *unitDetector {
	return &unitDetector{
		m:      match.NewMatcher(topo),
		pin:    make(map[int]graph.NodeID, 2),
		block:  graph.NewEpochSet(topo.NumNodes()),
		cancel: cancel,
		// Bind the method value once so the per-unit loop hands the matcher
		// a halt probe without allocating a closure per unit.
		halt:   cancel.canceled,
		inj:    inj,
		worker: worker,
		unit:   -1,
	}
}

// fillBlock assembles the unit's data block G_z̄ into the detector's
// reusable EpochSet: the union of the c_i-hop neighborhoods of the pivot
// candidates, with zero steady-state allocation (the hash-set-per-unit it
// replaces dominated the detection phase's allocations).
func (d *unitDetector) fillBlock(u workUnit) *graph.EpochSet {
	d.block.Reset()
	topo := d.m.Topo()
	for i, v := range u.Candidates {
		topo.BlockInto(d.block, v, u.Unit.Pivot.Radii[i])
	}
	return d.block
}

// detect enumerates the matches of the unit's group pattern inside the
// unit's data block, with the pivots pinned to the unit's candidates, and
// checks every group dependency on each match, delivering violations to
// emit. For symmetric two-component patterns whose mirrored units were
// deduplicated, both pin orders are enumerated so the full match set is
// preserved. It returns false when the worker must stop: the context was
// cancelled or emit refused a violation.
func (d *unitDetector) detect(grp *ruleGroup, u workUnit, deduped bool, emit func(Violation) bool) bool {
	block := d.fillBlock(u)
	ok := true
	runPins := func(c0, c1 graph.NodeID, both bool) {
		if !ok {
			return
		}
		clear(d.pin)
		if both {
			d.pin[grp.pivot.Vars[0]] = c0
			d.pin[grp.pivot.Vars[1]] = c1
		} else {
			for i, v := range grp.pivot.Vars {
				d.pin[v] = u.Candidates[i]
			}
		}
		opts := match.Options{
			Block:      block,
			Pin:        d.pin,
			StripeMod:  u.stripeMod,
			StripeRem:  u.stripeRem,
			StripeNode: stripeNode(grp, u),
			// Early termination must reach candidate enumeration itself:
			// without the halt probe a cancelled (or consumer-stopped) run
			// only notices between matches, which on a matchless stretch of
			// a huge class is never.
			Halt: d.halt,
		}
		d.m.Enumerate(grp.q, opts, func(m core.Match) bool {
			if d.inj != nil {
				// Two crossings per delivered match: the match itself and
				// the literal evaluation about to run on it.
				d.inj.Cross(fault.Match, d.worker, d.unit)
				d.inj.Cross(fault.Literal, d.worker, d.unit)
			}
			if d.cancel.canceled() || !grp.checkMatch(d.m.Topo(), m, &d.scratch, emit) {
				ok = false
				return false
			}
			return true
		})
	}
	if deduped && grp.pivot.Symmetric() && len(u.Candidates) == 2 {
		runPins(u.Candidates[0], u.Candidates[1], true)
		runPins(u.Candidates[1], u.Candidates[0], true)
		return ok
	}
	runPins(0, 0, false)
	return ok
}

// stripeNode picks the pattern node the stripe constraint applies to: the
// first node that is not a pivot. Returns -1 (striping disabled upstream)
// when every node is pinned.
func stripeNode(grp *ruleGroup, u workUnit) int {
	if u.stripeMod == 0 {
		return -1
	}
	pinned := make(map[int]bool, len(grp.pivot.Vars))
	for _, v := range grp.pivot.Vars {
		pinned[v] = true
	}
	for i := 0; i < grp.q.NumNodes(); i++ {
		if !pinned[i] {
			return i
		}
	}
	return -1
}

// splittable reports whether the group pattern has an unpinned node to
// stripe on.
func splittable(grp *ruleGroup) bool {
	return grp.q.NumNodes() > len(grp.pivot.Vars)
}

// splitThreshold resolves the effective θ given the generated units.
func splitThreshold(opt Options, units []workUnit) int {
	if opt.NoOptimize || opt.SplitThreshold < 0 || len(units) == 0 {
		return 0 // disabled
	}
	if opt.SplitThreshold > 0 {
		return opt.SplitThreshold
	}
	var total int64
	for _, u := range units {
		total += int64(u.BlockSize)
	}
	return int(4 * total / int64(len(units)))
}

// applySplit replaces oversized units with stripes (replicate-and-split,
// Appendix): each stripe keeps the pivots and data block but enumerates
// only matches whose stripe-node image falls in its residue class, so the
// stripes' match sets partition the original unit's.
func applySplit(units []workUnit, groups []*ruleGroup, theta int) (out []workUnit, split int) {
	if theta <= 0 {
		return units, 0
	}
	out = make([]workUnit, 0, len(units))
	for _, u := range units {
		grp := groups[u.group]
		if u.BlockSize <= theta || !splittable(grp) {
			out = append(out, u)
			continue
		}
		s := (u.BlockSize + theta - 1) / theta
		if s < 2 {
			out = append(out, u)
			continue
		}
		for rem := 0; rem < s; rem++ {
			su := u
			su.stripeMod = s
			su.stripeRem = rem
			su.BlockSize = u.BlockSize / s
			if su.BlockSize == 0 {
				su.BlockSize = 1
			}
			out = append(out, su)
			split++
		}
	}
	return out, split
}
