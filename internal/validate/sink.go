package validate

import (
	"context"
	"sync"
	"sync/atomic"
)

// Sink is the single violation-consumption abstraction every engine emits
// through: detVio, repVal, disVal and the two baselines all deliver each
// violation to Emit as it is found, fused with match enumeration — no
// engine materializes a per-unit match set first. The three execution
// modes of the session API are three sinks over one engine code path:
//
//   - CollectSink — Detect: per-worker shards appended lock-free, merged
//     and sorted into the Report after the run;
//   - CallbackSink — the legacy Stream callback: emissions serialized
//     onto one user function under a mutex;
//   - PipeSink — the pull-based iterator (Prepared.Violations): each
//     worker owns a bounded lane, a fan-in merger feeds the consumer, and
//     a full lane applies backpressure to that worker alone.
//
// Emit may be called from concurrent workers; worker identifies the
// calling lane (single-threaded engines pass 0). Returning false tells
// the engine to stop: the refusal propagates through the per-worker
// cancel probes into match enumeration itself (match.Options.Halt), so a
// consumer that has seen enough stops the search mid-class, not at the
// next unit boundary.
type Sink interface {
	Emit(worker int, v Violation) bool
}

// CollectSink accumulates violations into per-worker shards so parallel
// engines append without synchronization; Report merges the shards in
// worker order. Emit never refuses.
type CollectSink struct {
	shards []Report
}

// NewCollectSink returns a collect sink with capacity for workers lanes
// (at least one).
func NewCollectSink(workers int) *CollectSink {
	if workers < 1 {
		workers = 1
	}
	return &CollectSink{shards: make([]Report, workers)}
}

// Emit appends v to the worker's shard. Workers own their shard for the
// duration of a run; cross-round ownership transfer is sequenced by the
// scheduler's superstep barrier.
func (s *CollectSink) Emit(worker int, v Violation) bool {
	if worker < 0 || worker >= len(s.shards) {
		worker = 0
	}
	s.shards[worker] = append(s.shards[worker], v)
	return true
}

// Report returns the union of the shards in worker order (unsorted; the
// engines sort canonically once at the end of a run).
func (s *CollectSink) Report() Report {
	var total int
	for _, sh := range s.shards {
		total += len(sh)
	}
	out := make(Report, 0, total)
	for _, sh := range s.shards {
		out = append(out, sh...)
	}
	return out
}

// CallbackSink serializes violation emissions from concurrent workers
// onto one user callback. Once the callback returns false every worker's
// next Emit fails, stopping the engines.
type CallbackSink struct {
	mu      sync.Mutex
	yield   func(Violation) bool
	stopped atomic.Bool
}

// Callback wraps a yield function as a Sink.
func Callback(yield func(Violation) bool) *CallbackSink {
	return &CallbackSink{yield: yield}
}

// Emit delivers v to the callback under the sink's mutex.
func (s *CallbackSink) Emit(_ int, v Violation) bool {
	if s.stopped.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return false
	}
	if !s.yield(v) {
		s.stopped.Store(true)
		return false
	}
	return true
}

// PipeSink is the asynchronous half of the pull-based violation pipeline:
// every worker emits into its own bounded lane (backpressure is per
// worker — a slow consumer stalls only the workers that outran it, and
// never serializes emissions behind a global mutex), per-lane forwarders
// fan in to one merged channel, and the consumer ranges over Out. The
// sink is bound to the run's context: once it is cancelled — the consumer
// broke out of the loop, or the caller's context died — every blocked
// Emit unwinds immediately and returns false, so no worker can wedge on a
// full lane.
//
// Lifecycle: NewPipeSink starts the forwarders; the engine owner calls
// Close after the engine returns (closing the lanes); Out closes once
// every lane has drained. Consumers must drain Out to completion (the
// iterator in the session layer does) — after cancellation the remaining
// buffered violations are discarded by the forwarders themselves, so the
// drain is prompt.
type PipeSink struct {
	ctx   context.Context
	lanes []chan Violation
	out   chan Violation
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPipeSink builds a pipe sink with one lane per worker, each buffering
// up to buffer violations (DefaultStreamBuffer when <= 0).
func NewPipeSink(ctx context.Context, workers, buffer int) *PipeSink {
	if workers < 1 {
		workers = 1
	}
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	p := &PipeSink{
		ctx:   ctx,
		lanes: make([]chan Violation, workers),
		out:   make(chan Violation, buffer),
	}
	for i := range p.lanes {
		p.lanes[i] = make(chan Violation, buffer)
		p.wg.Add(1)
		go p.forward(p.lanes[i])
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
	return p
}

// forward drains one lane into the merged output until the lane closes.
// On context cancellation it keeps consuming (and discarding) the lane so
// Close's lane close is never blocked on a dead consumer.
func (p *PipeSink) forward(lane <-chan Violation) {
	defer p.wg.Done()
	for v := range lane {
		select {
		case p.out <- v:
		case <-p.ctx.Done():
			for range lane { // discard the rest; Emit stops refilling
			}
			return
		}
	}
}

// Emit queues v on the worker's lane, blocking while the lane is full —
// the backpressure that bounds the pipeline's memory — and failing once
// the run's context is cancelled.
func (p *PipeSink) Emit(worker int, v Violation) bool {
	if worker < 0 || worker >= len(p.lanes) {
		worker = 0
	}
	select {
	case p.lanes[worker] <- v:
		return true
	case <-p.ctx.Done():
		return false
	}
}

// Close closes the lanes; call exactly once, after the producing engine
// has returned. Out closes once the forwarders drain.
func (p *PipeSink) Close() {
	p.once.Do(func() {
		for _, lane := range p.lanes {
			close(lane)
		}
	})
}

// Out is the merged violation stream. It closes after Close once every
// buffered violation has been delivered (or discarded post-cancel).
func (p *PipeSink) Out() <-chan Violation { return p.out }
