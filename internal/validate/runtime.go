package validate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/fault"
	"gfd/internal/graph"
	"gfd/internal/workload"
)

// This file is the fault-tolerant execution runtime shared by repVal and
// disVal. The paper's engines ran on a 20-node EC2 cluster where worker
// loss and stragglers are the steady state; the detection superstep here
// gives the simulated cluster the same failure semantics:
//
//   - a panic inside a worker kills only that worker: the panic is
//     recovered into a typed *cluster.WorkerError (worker id, unit id,
//     stack), the surviving workers drain their assignments, and the
//     coordinator reassigns the dead worker's remaining units to live
//     workers in recovery rounds;
//   - a unit attempt exceeding Options.UnitDeadline is abandoned
//     cooperatively (the worker survives) and retried under the per-unit
//     budget Options.Retry.Max, with capped exponential backoff between
//     recovery rounds;
//   - every reassignment re-ships the unit descriptor (and, for disVal,
//     the unit's block via the per-attempt prep hook) through the BSP cost
//     model, so DetectSpan and the comm figures stay honest under faults;
//   - retried units never double-report: per-unit enumeration is
//     deterministic, so a retry skips exactly the violations its earlier
//     attempts already delivered (unitState.emitted) before emitting the
//     rest — the violation set of a recovered run is byte-identical to the
//     fault-free run's (the chaos differential suite pins this);
//   - when budgets exhaust (or every worker is dead) the run returns a
//     *PartialError (errors.Is ErrPartial) listing the failed units, and
//     Result.Completeness carries the census — partial results announce
//     themselves instead of masquerading as clean reports.
//
// The fault-free fast path is the old static superstep: round 0 runs the
// LPT / bi-criteria assignment unchanged, the per-worker recover and the
// per-unit state writes are the only additions, and no recovery round, no
// backoff, and no extra shipment happens unless a failure did.

// ErrPartial marks a detection result whose violation set may be
// incomplete: some work units were abandoned after exhausting their retry
// budget (or losing every worker). Match with errors.Is; the concrete
// error is a *PartialError listing the failures, and Result.Completeness
// carries the counts.
var ErrPartial = errors.New("validate: partial result")

// UnitFailure records one work unit the scheduler had to abandon.
type UnitFailure struct {
	Unit     int   // index into the run's unit set
	Group    int   // rule group of the unit
	Attempts int   // attempts consumed (0: never started — all workers died first)
	Err      error // last failure: *cluster.WorkerError or context.DeadlineExceeded
}

// PartialError aggregates the abandoned units of a partial run. It
// satisfies errors.Is(err, ErrPartial) and unwraps to the per-unit
// failures, so a *cluster.WorkerError or context.DeadlineExceeded buried
// in the run remains matchable.
type PartialError struct {
	Failures []UnitFailure
}

// Error summarizes the failure set.
func (e *PartialError) Error() string {
	if len(e.Failures) == 1 {
		f := e.Failures[0]
		return fmt.Sprintf("validate: partial result: unit %d failed after %d attempts: %v", f.Unit, f.Attempts, f.Err)
	}
	return fmt.Sprintf("validate: partial result: %d units failed (first: %v)", len(e.Failures), e.Failures[0].Err)
}

// Is matches ErrPartial.
func (e *PartialError) Is(target error) bool { return target == ErrPartial }

// Unwrap exposes the per-unit causes to errors.Is / errors.As.
func (e *PartialError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// unitState tracks one unit across attempts and recovery rounds. It is
// written by the worker currently owning the unit (ownership moves only
// between rounds) and read by the coordinator after each superstep.
type unitState struct {
	attempts int
	emitted  int // violations already delivered by earlier attempts; retries skip these
	done     bool
	failed   bool // already recorded in the failure list; later rounds skip it
	lastErr  error
}

// detectRun is one fault-tolerant detection phase: the shared inputs plus
// the cross-round scheduler state.
type detectRun struct {
	ctx    context.Context
	cl     *cluster.Cluster
	topo   graph.Topology
	groups []*ruleGroup
	units  []workUnit
	opt    Options // normalized
	sink   Sink    // always non-nil: collect, callback, or pipe
	inj    *fault.Injector
	// prep runs at the start of every attempt on the executing worker —
	// disVal charges the unit's block shipment (prefetch or partial-match)
	// here, so a reassigned or retried unit re-ships to its new worker.
	prep func(w, ui int)

	mu     sync.Mutex // guards live/deaths/stopped and dead-worker state writes
	states []unitState
	live   []bool
	// counts[w] is the number of violations worker w delivered through the
	// sink — the engines charge the violation-return shipment off it.
	// Worker w is the only writer of counts[w] (ownership moves only
	// between rounds), so no lock is needed.
	counts  []int64
	deaths  int
	stopped bool // the sink refused a violation; the whole run stops
}

// run executes the detection phase from the given initial assignment and
// returns the modeled span (summed across recovery supersteps), the
// completeness census, and the partial-failure error (nil when every unit
// succeeded or the run was cancelled/stopped first).
func (r *detectRun) run(assign workload.Assignment) (time.Duration, Completeness, *PartialError) {
	n := r.opt.N
	r.states = make([]unitState, len(r.units))
	r.live = make([]bool, n)
	for i := range r.live {
		r.live[i] = true
	}
	r.counts = make([]int64, n)

	maxAttempts := 1 + r.opt.Retry.Max
	todo := make([][]int, n)
	copy(todo, assign)

	var span time.Duration
	var failures []UnitFailure
	round := 0
	for {
		// The superstep. Workers recover their own panics (keeping unit
		// context), so the cluster-level net stays unused here.
		busy, _ := r.cl.RunMeasured(func(w int) { r.worker(w, todo[w]) })
		span += cluster.MaxSpan(busy)
		if r.ctx.Err() != nil || r.stopped {
			// Cancelled or stream-stopped: unreached units are neither
			// succeeded nor failed; the caller reports ctx.Err() / nil.
			break
		}
		pending := r.collect(maxAttempts, &failures)
		if len(pending) == 0 {
			break
		}
		liveIdx := r.liveWorkers()
		if len(liveIdx) == 0 {
			// Nothing left to run on. Everything pending is abandoned.
			for _, ui := range pending {
				failures = append(failures, r.failure(ui))
			}
			break
		}
		round++
		if !r.backoff(round) {
			break // context died during backoff
		}
		todo = r.reassign(pending, liveIdx, n)
		r.cl.EndRound() // reassignment descriptor exchange
	}

	comp := Completeness{Units: len(r.units), WorkerDeaths: r.deaths, RecoveryRounds: round}
	for i := range r.states {
		st := &r.states[i]
		if st.attempts > 0 {
			comp.Attempted++
		}
		if st.attempts > 1 {
			comp.Retries += st.attempts - 1
		}
		if st.done {
			comp.Succeeded++
		}
	}
	comp.Failed = len(failures)
	if len(failures) == 0 {
		return span, comp, nil
	}
	return span, comp, &PartialError{Failures: failures}
}

// worker drains one worker's unit list for the current round. All panics —
// injected or genuine — are recovered at this level into a WorkerError
// that marks the worker dead and the in-flight unit failed.
func (r *detectRun) worker(w int, mine []int) {
	if len(mine) == 0 {
		return
	}
	det := newUnitDetector(r.topo, &cancelCheck{ctx: r.ctx}, r.inj, w)
	cur := -1      // unit in flight, for the recover path
	delivered := 0 // violations delivered by the in-flight attempt
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		werr := cluster.Recovered(w, cur, rec)
		r.mu.Lock()
		r.live[w] = false
		r.deaths++
		if cur >= 0 {
			st := &r.states[cur]
			st.emitted += delivered
			st.lastErr = werr
		}
		r.mu.Unlock()
	}()

	var skip, found int
	out := func(v Violation) bool {
		// Exactly-once across retries: per-unit enumeration is
		// deterministic, so the first `skip` violations of a retried unit
		// were already delivered by an earlier attempt. The skip-count
		// wrapper sits above the sink, so it holds for asynchronous
		// emission too — a violation counts as delivered the moment the
		// sink accepts it, whether that was an append, a callback, or a
		// buffered lane the consumer has not drained yet.
		found++
		if found <= skip {
			return true
		}
		if !r.sink.Emit(w, v) {
			return false
		}
		delivered++
		r.counts[w]++
		return true
	}

	for _, ui := range mine {
		if det.cancel.canceled() {
			return
		}
		u := r.units[ui]
		st := &r.states[ui]
		cur, delivered = ui, 0
		skip, found = st.emitted, 0
		st.attempts++
		det.unit = ui
		if r.prep != nil {
			r.prep(w, ui)
		}
		// The deadline covers the whole attempt, including the UnitStart
		// crossing: an injected straggler delay burns attempt time exactly
		// like a real stall would, so DelayUnit(d) + UnitDeadline < d
		// deterministically expires the first attempt.
		if d := r.opt.UnitDeadline; d > 0 {
			det.cancel.arm(time.Now().Add(d))
		}
		if r.inj != nil {
			r.inj.Cross(fault.UnitStart, w, ui)
		}
		ok := true
		if !det.cancel.expiredNow() {
			ok = det.detect(r.groups[u.group], u, !r.opt.NoOptimize, out)
		}
		st.emitted += delivered
		expired := det.cancel.deadlineHit
		det.cancel.disarm()
		cur = -1
		if expired {
			// The attempt missed its deadline; the worker survives and the
			// unit goes back to the coordinator for a retry.
			st.lastErr = fmt.Errorf("unit %d (worker %d): %w", ui, w, context.DeadlineExceeded)
			continue
		}
		if det.cancel.hit {
			return // context cancelled: the run is over
		}
		if !ok {
			// A streaming yield returned false; every worker's next emit
			// fails through the shared sink.
			r.mu.Lock()
			r.stopped = true
			r.mu.Unlock()
			return
		}
		st.done = true
		st.lastErr = nil
	}
}

// collect partitions the incomplete units after a superstep: units still
// inside their budget are returned for reassignment; exhausted ones are
// appended to failures.
func (r *detectRun) collect(maxAttempts int, failures *[]UnitFailure) (pending []int) {
	for ui := range r.states {
		st := &r.states[ui]
		if st.done {
			continue
		}
		if st.attempts >= maxAttempts {
			// Record the exhausted unit once; collect runs again after
			// every recovery round and must not re-report it.
			if !st.failed {
				st.failed = true
				*failures = append(*failures, r.failure(ui))
			}
			continue
		}
		pending = append(pending, ui)
	}
	return pending
}

func (r *detectRun) failure(ui int) UnitFailure {
	st := &r.states[ui]
	err := st.lastErr
	if err == nil {
		err = fmt.Errorf("unit %d: never started: %w", ui, errAllWorkersDead)
	}
	return UnitFailure{Unit: ui, Group: r.units[ui].group, Attempts: st.attempts, Err: err}
}

var errAllWorkersDead = errors.New("validate: all workers dead")

func (r *detectRun) liveWorkers() []int {
	var idx []int
	for w, ok := range r.live {
		if ok {
			idx = append(idx, w)
		}
	}
	return idx
}

// backoff sleeps the capped exponential recovery delay for the given
// round, returning false if the context died while waiting.
func (r *detectRun) backoff(round int) bool {
	d := r.opt.Retry.Backoff
	if d <= 0 {
		return r.ctx.Err() == nil
	}
	factor := 1 << (round - 1)
	if factor > maxBackoffFactor {
		factor = maxBackoffFactor
	}
	d *= time.Duration(factor)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// reassign balances the pending units across the live workers (LPT on the
// unit weights, like the initial assignment) and charges the descriptor
// reshipment to each receiving worker.
func (r *detectRun) reassign(pending, liveIdx []int, n int) [][]int {
	weights := make([]int, len(pending))
	for i, ui := range pending {
		weights[i] = r.units[ui].Weight()
	}
	sub := workload.BalanceLPT(weights, len(liveIdx))
	todo := make([][]int, n)
	for li, us := range sub {
		w := liveIdx[li]
		for _, pi := range us {
			todo[w] = append(todo[w], pending[pi])
		}
		if len(us) > 0 {
			r.cl.Ship(cluster.Coordinator, w, int64(len(us))*unitDescriptorBytes)
		}
	}
	return todo
}

// engineRecover is the last-resort safety net wrapped around every engine
// body: a panic on the coordinator path (estimation, assignment, shipping)
// becomes an error return instead of tearing down the process. Worker
// panics never reach it — the scheduler recovers those with unit context.
func engineRecover(err *error) {
	if rec := recover(); rec != nil {
		*err = cluster.Recovered(cluster.Coordinator, -1, rec)
	}
}
