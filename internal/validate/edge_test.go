package validate

import (
	"testing"

	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Edge-case coverage for the parallel engines beyond the main equivalence
// suite: degenerate graphs, worker-count mismatches, single-node
// patterns, wildcard-heavy rules, and option extremes.

func singleNodeRule() *core.Set {
	q := pattern.New()
	q.AddNode("x", "acct")
	return core.MustNewSet(core.MustNew("fake", q,
		[]core.Literal{core.Const("x", "is_fake", "true")},
		[]core.Literal{core.Const("x", "flagged", "true")}))
}

func TestEnginesOnEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	set := singleNodeRule()
	if len(DetVio(g, set)) != 0 {
		t.Fatal("empty graph has no violations")
	}
	if res := RepVal(g, set, Options{N: 4}); len(res.Violations) != 0 || res.Units != 0 {
		t.Error("repVal on empty graph must be empty")
	}
	frag := fragment.Partition(g, 4, fragment.Hash)
	if res := DisVal(g, frag, set, Options{N: 4}); len(res.Violations) != 0 {
		t.Error("disVal on empty graph must be empty")
	}
}

func TestEnginesOnSingleNodeGraph(t *testing.T) {
	g := graph.New(1, 0)
	g.AddNode("acct", graph.Attrs{"is_fake": "true"}) // flagged missing -> violation
	set := singleNodeRule()
	want := DetVio(g, set)
	if len(want) != 1 {
		t.Fatalf("want 1 violation, got %d", len(want))
	}
	if !RepVal(g, set, Options{N: 8}).Violations.Equal(want) {
		t.Error("repVal single-node mismatch")
	}
	frag := fragment.Partition(g, 3, fragment.Hash)
	if !DisVal(g, frag, set, Options{N: 3}).Violations.Equal(want) {
		t.Error("disVal single-node mismatch")
	}
}

func TestDisValWorkerCountClampsToFragments(t *testing.T) {
	g := graph.New(0, 0)
	g.AddNode("acct", graph.Attrs{"is_fake": "true"})
	g.AddNode("acct", graph.Attrs{"is_fake": "false"})
	set := singleNodeRule()
	frag := fragment.Partition(g, 2, fragment.Hash)
	// Requesting more workers than fragments must not panic or lose work.
	res := DisVal(g, frag, set, Options{N: 16})
	if len(res.Violations) != 1 {
		t.Errorf("violations = %d, want 1", len(res.Violations))
	}
}

func TestPatternLargerThanGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.AddNode("a", nil)
	q := pattern.New()
	q.AddNode("x", "a")
	q.AddNode("y", "a")
	q.AddNode("z", "a")
	set := core.MustNewSet(core.MustNew("big", q, nil,
		[]core.Literal{core.Const("x", "p", "1")}))
	if len(DetVio(g, set)) != 0 {
		t.Error("pattern larger than graph cannot match")
	}
	if len(RepVal(g, set, Options{N: 2}).Violations) != 0 {
		t.Error("repVal must agree")
	}
}

func TestWildcardEverythingRule(t *testing.T) {
	// (Q[x:_], ∅ → x.must = "have"): every node is a violation unless it
	// carries the attribute.
	q := pattern.New()
	q.AddNode("x", pattern.Wildcard)
	set := core.MustNewSet(core.MustNew("w", q, nil,
		[]core.Literal{core.Const("x", "must", "have")}))
	g := graph.New(0, 0)
	g.AddNode("a", graph.Attrs{"must": "have"})
	g.AddNode("b", nil)
	g.AddNode("c", graph.Attrs{"must": "not"})
	want := DetVio(g, set)
	if len(want) != 2 {
		t.Fatalf("want 2 violations, got %d", len(want))
	}
	if !RepVal(g, set, Options{N: 2}).Violations.Equal(want) {
		t.Error("repVal wildcard mismatch")
	}
	frag := fragment.Partition(g, 2, fragment.Hash)
	if !DisVal(g, frag, set, Options{N: 2}).Violations.Equal(want) {
		t.Error("disVal wildcard mismatch")
	}
}

func TestHistogramMOne(t *testing.T) {
	g := graph.New(0, 0)
	for i := 0; i < 6; i++ {
		attrs := graph.Attrs{"is_fake": "false", "flagged": "x"}
		if i%2 == 0 {
			attrs = graph.Attrs{"is_fake": "true"} // violations
		}
		g.AddNode("acct", attrs)
	}
	set := singleNodeRule()
	want := DetVio(g, set)
	res := RepVal(g, set, Options{N: 4, HistogramM: 1})
	if !res.Violations.Equal(want) {
		t.Errorf("m=1: %d violations, want %d", len(res.Violations), len(want))
	}
}

func TestThreeComponentPattern(t *testing.T) {
	// k = 3 components exercises the generic cross-product path.
	q := pattern.New()
	q.AddNode("x", "a")
	q.AddNode("y", "b")
	q.AddNode("z", "c")
	set := core.MustNewSet(core.MustNew("tri", q,
		[]core.Literal{core.VarEq("x", "v", "y", "v")},
		[]core.Literal{core.VarEq("y", "v", "z", "v")}))

	g := graph.New(0, 0)
	g.AddNode("a", graph.Attrs{"v": "1"})
	g.AddNode("b", graph.Attrs{"v": "1"})
	g.AddNode("c", graph.Attrs{"v": "2"}) // violates via transitive triple
	g.AddNode("c", graph.Attrs{"v": "1"}) // consistent triple
	want := DetVio(g, set)
	if len(want) != 1 {
		t.Fatalf("want 1 violation, got %d", len(want))
	}
	if !RepVal(g, set, Options{N: 3, NoReduce: true}).Violations.Equal(want) {
		t.Error("repVal k=3 mismatch")
	}
	frag := fragment.Partition(g, 2, fragment.Hash)
	if !DisVal(g, frag, set, Options{N: 2, NoReduce: true}).Violations.Equal(want) {
		t.Error("disVal k=3 mismatch")
	}
}

func TestResultModeledTimeComposition(t *testing.T) {
	g := graph.New(0, 0)
	for i := 0; i < 20; i++ {
		g.AddNode("acct", graph.Attrs{"is_fake": "true"})
	}
	res := RepVal(g, singleNodeRule(), Options{N: 4})
	if res.ModeledTime() != res.EstimateSpan+res.DetectSpan+res.Comm {
		t.Error("ModeledTime must compose from spans and comm")
	}
	if res.ModeledTime() <= 0 {
		t.Error("modeled time must be positive on non-empty work")
	}
}
