package workload

import (
	"fmt"

	"gfd/internal/graph"
)

// Unit is a work unit w = ⟨v̄_z, |G_z̄|⟩: a pivot candidate vector (one
// graph node per pattern component) plus the size of its data block — the
// union of the c_i-hop neighborhoods of the candidates. Validating a GFD
// reduces to enumerating matches inside each unit's data block with the
// pivots pinned.
type Unit struct {
	Pivot      *Pivot
	Candidates []graph.NodeID // v̄_z, aligned with Pivot.Vars
	BlockSize  int            // |G_z̄| = Σ_i |G_z̄[z_i]|, the unit's weight
}

func (u Unit) String() string {
	return fmt.Sprintf("unit(v̄=%v, |G|=%d)", u.Candidates, u.BlockSize)
}

// Weight returns the unit's load estimate used by the balancers. The paper
// weighs a unit by |G_z̄|^|Σ|; raising to the rule-set size overflows for
// any realistic block, so the implementation uses |G_z̄| directly — the
// ordering (and hence the greedy partition) is identical because the map
// x ↦ x^k is monotone.
func (u Unit) Weight() int { return u.BlockSize }

// BuildOptions controls unit generation.
type BuildOptions struct {
	// DedupSymmetric drops mirrored candidate pairs for patterns with two
	// isomorphic components (Example 10's duplicate removal). Disabled in
	// the *nop variants.
	DedupSymmetric bool
	// MaxUnitsPerRule caps the number of emitted units per rule as a
	// safety valve against cross-product explosion; 0 means unlimited.
	MaxUnitsPerRule int
}

// SizeCache memoizes |G_z̄[z]| block-part sizes per (radius, node); both
// engines share it across rules so each neighborhood is measured once.
type SizeCache struct {
	byRadius map[int]map[graph.NodeID]int
}

// NewSizeCache returns an empty cache.
func NewSizeCache() *SizeCache {
	return &SizeCache{byRadius: make(map[int]map[graph.NodeID]int)}
}

// Get returns the cached c-hop neighborhood size of v, computing it on
// demand. Not safe for concurrent use; workers keep private caches.
func (sc *SizeCache) Get(g *graph.Graph, v graph.NodeID, c int) int {
	m := sc.byRadius[c]
	if m == nil {
		m = make(map[graph.NodeID]int)
		sc.byRadius[c] = m
	}
	if s, ok := m[v]; ok {
		return s
	}
	s := g.NeighborhoodSize(v, c)
	m[v] = s
	return s
}

// BuildUnits enumerates the workload W(ϕ, G): all work units of the
// pivot's pattern over g. Neighborhood sizes are computed once per
// candidate and summed per unit. Supports patterns with 1 or 2 components
// directly and arbitrary k by recursive cross product (k > 2 is rare; the
// paper notes k ≤ 2 in practice).
func BuildUnits(g *graph.Graph, pivot *Pivot, opts BuildOptions) []Unit {
	k := pivot.Arity()
	cands := make([][]graph.NodeID, k)
	for i := 0; i < k; i++ {
		cands[i] = pivot.Candidates(g, i)
	}
	return BuildUnitsFrom(g, pivot, cands, NewSizeCache(), opts)
}

// BuildUnitsFrom is BuildUnits over externally supplied candidate lists
// (e.g. one equi-depth range per worker during parallel estimation) and a
// shared size cache.
func BuildUnitsFrom(g *graph.Graph, pivot *Pivot, cands [][]graph.NodeID, cache *SizeCache, opts BuildOptions) []Unit {
	return BuildUnitsSized(pivot, cands, func(v graph.NodeID, c int) int { return cache.Get(g, v, c) }, opts)
}

// BuildUnitsSized is the allocation core of unit generation: block-part
// sizes come from the supplied lookup (typically precomputed in a separate
// parallel phase so each neighborhood is measured exactly once).
func BuildUnitsSized(pivot *Pivot, cands [][]graph.NodeID, sizeOf func(graph.NodeID, int) int, opts BuildOptions) []Unit {
	k := pivot.Arity()
	sizes := make([]map[graph.NodeID]int, k)
	for i := 0; i < k; i++ {
		sizes[i] = make(map[graph.NodeID]int, len(cands[i]))
		for _, v := range cands[i] {
			sizes[i][v] = sizeOf(v, pivot.Radii[i])
		}
	}
	var units []Unit
	emit := func(vec []graph.NodeID) bool {
		total := 0
		for i, v := range vec {
			total += sizes[i][v]
		}
		units = append(units, Unit{
			Pivot:      pivot,
			Candidates: append([]graph.NodeID(nil), vec...),
			BlockSize:  total,
		})
		return opts.MaxUnitsPerRule == 0 || len(units) < opts.MaxUnitsPerRule
	}
	vec := make([]graph.NodeID, k)
	crossProduct(cands, vec, 0, opts.DedupSymmetric && pivot.Symmetric(), emit)
	return units
}

// crossProduct enumerates candidate vectors with pairwise-distinct entries
// (pivots are images of distinct pattern nodes under an injective match).
// When symmetric is set (two isomorphic components), only ordered pairs
// v[0] < v[1] are emitted.
func crossProduct(cands [][]graph.NodeID, vec []graph.NodeID, depth int, symmetric bool, emit func([]graph.NodeID) bool) bool {
	if depth == len(cands) {
		return emit(vec)
	}
	for _, v := range cands[depth] {
		if symmetric && depth == 1 && v <= vec[0] {
			continue
		}
		dup := false
		for i := 0; i < depth; i++ {
			if vec[i] == v {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		vec[depth] = v
		if !crossProduct(cands, vec, depth+1, symmetric, emit) {
			return false
		}
	}
	return true
}

// Block materializes the unit's data block G_z̄ as a node set: the union of
// the c_i-hop neighborhoods of the pivot candidates.
func (u Unit) Block(g *graph.Graph) graph.NodeSet {
	set := make(graph.NodeSet)
	for i, v := range u.Candidates {
		set.AddAll(g.Neighborhood(v, u.Pivot.Radii[i]))
	}
	return set
}

// BlockIn is Block over a compiled topology: the CSR traversal replaces
// the hash-set BFS on the engines' hot path.
func (u Unit) BlockIn(t graph.Topology) graph.NodeSet {
	set := make(graph.NodeSet)
	for i, v := range u.Candidates {
		set.AddAll(t.Neighborhood(v, u.Pivot.Radii[i]))
	}
	return set
}

// EachVector enumerates candidate vectors with pairwise-distinct entries
// over the supplied per-component candidate lists, without computing
// block sizes — what the incremental detector's initial sweep needs.
// Enumeration stops early when fn returns false. The vector passed to fn
// is reused across calls.
func EachVector(cands [][]graph.NodeID, fn func([]graph.NodeID) bool) {
	if len(cands) == 0 {
		return
	}
	vec := make([]graph.NodeID, len(cands))
	crossProduct(cands, vec, 0, false, fn)
}

// TotalWeight sums unit weights; this approximates the sequential cost
// t(|Σ|, |G|) the parallel bounds are stated against.
func TotalWeight(units []Unit) int64 {
	var total int64
	for _, u := range units {
		total += int64(u.Weight())
	}
	return total
}
