package workload

import (
	"testing"
	"testing/quick"

	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// starPattern builds a hub with n satellites (radius 1 at the hub).
func starPattern(n int) *pattern.Pattern {
	p := pattern.New()
	hub := p.AddNode("x", "flight")
	for i := 0; i < n; i++ {
		s := p.AddNode(pattern.Var(string(rune('a'+i))), "sat")
		p.AddEdge(hub, s, "e")
	}
	return p
}

func twoFlightStars() *pattern.Pattern {
	p := pattern.New()
	x := p.AddNode("x", "flight")
	x1 := p.AddNode("x1", "id")
	p.AddEdge(x, x1, "number")
	y := p.AddNode("y", "flight")
	y1 := p.AddNode("y1", "id")
	p.AddEdge(y, y1, "number")
	return p
}

func flightGraph(n int) *graph.Graph {
	g := graph.New(0, 0)
	for i := 0; i < n; i++ {
		f := g.AddNode("flight", graph.Attrs{"val": string(rune('a' + i))})
		id := g.AddNode("id", graph.Attrs{"val": "FL"})
		g.MustAddEdge(f, id, "number")
	}
	return g
}

func TestComputePivotSingleComponent(t *testing.T) {
	p := starPattern(3)
	pv := ComputePivot(p)
	if pv.Arity() != 1 {
		t.Fatalf("arity = %d", pv.Arity())
	}
	if pv.Vars[0] != 0 || pv.Radii[0] != 1 {
		t.Errorf("pivot = (%d, r=%d), want hub (0, r=1)", pv.Vars[0], pv.Radii[0])
	}
	if pv.Symmetric() {
		t.Error("one component cannot be symmetric")
	}
}

func TestComputePivotTwoSymmetricComponents(t *testing.T) {
	pv := ComputePivot(twoFlightStars())
	if pv.Arity() != 2 {
		t.Fatalf("arity = %d, want 2", pv.Arity())
	}
	if !pv.Symmetric() {
		t.Error("two flight stars are isomorphic components")
	}
	// Example 9: PV(ϕ1) = ((x,1),(y,1)) — here stars of radius 1.
	if pv.Radii[0] != 1 || pv.Radii[1] != 1 {
		t.Errorf("radii = %v", pv.Radii)
	}
}

func TestComputePivotAsymmetricComponents(t *testing.T) {
	p := pattern.New()
	x := p.AddNode("x", "flight")
	x1 := p.AddNode("x1", "id")
	p.AddEdge(x, x1, "number")
	p.AddNode("y", "country") // isolated second component
	pv := ComputePivot(p)
	if pv.Symmetric() {
		t.Error("different components must not be symmetric")
	}
	if pv.Radii[1] != 0 {
		t.Errorf("isolated node radius = %d, want 0", pv.Radii[1])
	}
}

func TestArbitraryPivot(t *testing.T) {
	// Path a -> b -> c: min-radius pivot is b (r=1); arbitrary picks a (r=2).
	p := pattern.New()
	a := p.AddNode("a", "n")
	b := p.AddNode("b", "n")
	c := p.AddNode("c", "n")
	p.AddEdge(a, b, "e")
	p.AddEdge(b, c, "e")
	if pv := ComputePivot(p); pv.Vars[0] != b || pv.Radii[0] != 1 {
		t.Errorf("min-radius pivot = %d r=%d", pv.Vars[0], pv.Radii[0])
	}
	if pv := ArbitraryPivot(p); pv.Vars[0] != a || pv.Radii[0] != 2 {
		t.Errorf("arbitrary pivot = %d r=%d", pv.Vars[0], pv.Radii[0])
	}
}

func TestCandidates(t *testing.T) {
	g := flightGraph(3)
	pv := ComputePivot(starPattern(1))
	cands := pv.Candidates(g, 0)
	if len(cands) != 3 {
		t.Errorf("flight candidates = %d", len(cands))
	}
	// Wildcard pivot: all nodes.
	wq := pattern.New()
	wq.AddNode("x", pattern.Wildcard)
	if got := ComputePivot(wq).Candidates(g, 0); len(got) != g.NumNodes() {
		t.Errorf("wildcard candidates = %d, want %d", len(got), g.NumNodes())
	}
}

func TestBuildUnitsSingleComponent(t *testing.T) {
	g := flightGraph(4)
	q := pattern.New()
	x := q.AddNode("x", "flight")
	x1 := q.AddNode("x1", "id")
	q.AddEdge(x, x1, "number")
	units := BuildUnits(g, ComputePivot(q), BuildOptions{})
	if len(units) != 4 {
		t.Fatalf("units = %d, want 4 (one per flight)", len(units))
	}
	// Each block is flight + id + edge = 3.
	for _, u := range units {
		if u.BlockSize != 3 {
			t.Errorf("block size = %d, want 3", u.BlockSize)
		}
		if u.Weight() != u.BlockSize {
			t.Errorf("weight = %d", u.Weight())
		}
	}
}

func TestBuildUnitsTwoComponentsDedup(t *testing.T) {
	g := flightGraph(4)
	q := twoFlightStars()
	pv := ComputePivot(q)
	all := BuildUnits(g, pv, BuildOptions{})
	if len(all) != 12 { // 4*3 ordered distinct pairs
		t.Fatalf("undeduped units = %d, want 12", len(all))
	}
	dedup := BuildUnits(g, pv, BuildOptions{DedupSymmetric: true})
	if len(dedup) != 6 { // unordered pairs
		t.Fatalf("deduped units = %d, want 6", len(dedup))
	}
	for _, u := range dedup {
		if u.Candidates[0] >= u.Candidates[1] {
			t.Errorf("dedup order violated: %v", u.Candidates)
		}
	}
}

func TestBuildUnitsMaxCap(t *testing.T) {
	g := flightGraph(10)
	q := twoFlightStars()
	units := BuildUnits(g, ComputePivot(q), BuildOptions{MaxUnitsPerRule: 7})
	if len(units) != 7 {
		t.Errorf("capped units = %d, want 7", len(units))
	}
}

func TestUnitBlock(t *testing.T) {
	g := flightGraph(2)
	q := pattern.New()
	x := q.AddNode("x", "flight")
	x1 := q.AddNode("x1", "id")
	q.AddEdge(x, x1, "number")
	units := BuildUnits(g, ComputePivot(q), BuildOptions{})
	block := units[0].Block(g)
	if block.Len() != 2 {
		t.Errorf("block nodes = %d, want flight + id", block.Len())
	}
}

func TestSizeCache(t *testing.T) {
	g := flightGraph(2)
	sc := NewSizeCache()
	a := sc.Get(g, 0, 1)
	b := sc.Get(g, 0, 1)
	if a != b || a != g.NeighborhoodSize(0, 1) {
		t.Errorf("cache results differ: %d %d", a, b)
	}
	if sc.Get(g, 0, 0) != 1 {
		t.Error("radius is part of the cache key")
	}
}

func TestTotalWeight(t *testing.T) {
	units := []Unit{{BlockSize: 3}, {BlockSize: 7}}
	if TotalWeight(units) != 10 {
		t.Errorf("TotalWeight = %d", TotalWeight(units))
	}
}

// --- Balancing ------------------------------------------------------------

func TestBalanceLPTExample12(t *testing.T) {
	// The paper's Example 12: 9 units sized {22,22,26,26,30,30,24,28,28}
	// over 3 workers must balance to loads near 236/3 ≈ 79.
	weights := []int{22, 22, 26, 26, 30, 30, 24, 28, 28}
	a := BalanceLPT(weights, 3)
	span := a.Makespan(weights)
	if span > 82 {
		t.Errorf("LPT makespan = %d, want ≤ 82 (paper's partition reaches 82)", span)
	}
	// All units assigned exactly once.
	seen := make(map[int]bool)
	for _, w := range a {
		for _, u := range w {
			if seen[u] {
				t.Fatalf("unit %d assigned twice", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != len(weights) {
		t.Fatalf("assigned %d of %d units", len(seen), len(weights))
	}
}

func TestBalanceLPTApproximationProperty(t *testing.T) {
	// LPT is a 2-approximation: makespan ≤ 2 · OPT and OPT ≥ total/n.
	f := func(raw []uint8, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := int(nRaw%8) + 1
		weights := make([]int, len(raw))
		total, max := 0, 0
		for i, r := range raw {
			weights[i] = int(r) + 1
			total += weights[i]
			if weights[i] > max {
				max = weights[i]
			}
		}
		lower := total / n
		if max > lower {
			lower = max
		}
		span := int(BalanceLPT(weights, n).Makespan(weights))
		return span <= 2*lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalanceRandomAssignsEverything(t *testing.T) {
	weights := make([]int, 50)
	for i := range weights {
		weights[i] = i + 1
	}
	a := BalanceRandom(weights, 4, 42)
	count := 0
	for _, w := range a {
		count += len(w)
	}
	if count != 50 {
		t.Errorf("random assigned %d of 50", count)
	}
	// Deterministic for a seed.
	b := BalanceRandom(weights, 4, 42)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Error("random assignment must be deterministic per seed")
		}
	}
}

func TestBalanceBiCriteriaPrefersLocalWorker(t *testing.T) {
	// Two units, two workers; unit 0 is free on worker 1 but costly on 0.
	weights := []int{10, 10}
	cc := func(unit, worker int) int64 {
		if unit == 0 && worker == 0 {
			return 1 << 20
		}
		if unit == 1 && worker == 1 {
			return 1 << 20
		}
		return 0
	}
	a := BalanceBiCriteria(weights, 2, cc, 1.0)
	if len(a[0]) != 1 || len(a[1]) != 1 {
		t.Fatalf("assignment = %v", a)
	}
	if a[1][0] != 0 || a[0][0] != 1 {
		t.Errorf("communication cost ignored: %v", a)
	}
}

func TestBalanceBiCriteriaZeroCommEqualsLPT(t *testing.T) {
	weights := []int{22, 22, 26, 26, 30, 30, 24, 28, 28}
	free := func(int, int) int64 { return 0 }
	a := BalanceBiCriteria(weights, 3, free, 1.0)
	b := BalanceLPT(weights, 3)
	if a.Makespan(weights) != b.Makespan(weights) {
		t.Errorf("zero-cost bi-criteria should match LPT makespan: %d vs %d",
			a.Makespan(weights), b.Makespan(weights))
	}
}
