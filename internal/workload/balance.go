package workload

import (
	"math/rand"
	"sort"
)

// Assignment maps each worker index to the indices of the units assigned
// to it.
type Assignment [][]int

// Makespan returns the maximum total weight across workers, the quantity
// the load-balancing problem minimizes.
func (a Assignment) Makespan(weights []int) int64 {
	var worst int64
	for _, units := range a {
		var load int64
		for _, u := range units {
			load += int64(weights[u])
		}
		if load > worst {
			worst = load
		}
	}
	return worst
}

// BalanceLPT computes a balanced n-partition with the classic
// longest-processing-time greedy rule: sort units by descending weight and
// repeatedly give the heaviest remaining unit to the least-loaded worker.
// This is the 2-approximation of Proposition 12 (4/3-approximate in fact,
// via Graham's bound); it runs in O(|W| log |W| + |W| log n).
func BalanceLPT(weights []int, n int) Assignment {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	return assignGreedy(order, weights, n, nil, 0)
}

// BalanceRandom assigns units to workers uniformly at random; the repran /
// disran baseline variants of Section 7 use it in place of LPT.
func BalanceRandom(weights []int, n int, seed int64) Assignment {
	rng := rand.New(rand.NewSource(seed))
	out := make(Assignment, n)
	for i := range weights {
		w := rng.Intn(n)
		out[w] = append(out[w], i)
	}
	return out
}

// CommCoster reports, for a unit and a worker, the bytes that must be
// shipped to that worker if the unit is assigned there (zero when the
// unit's whole data block is already local).
type CommCoster func(unit, worker int) int64

// BalanceBiCriteria computes the bi-criteria assignment of Section 6.2:
// weights are balanced LPT-style while each placement decision is charged
// its communication cost, scaled by commWeight (c_s in the paper's cost
// model). Following the generalized-assignment strategy of Shmoys–Tardos
// as adapted by the paper, the greedy rule places the heaviest unit on the
// worker minimizing load + commWeight·CC(w, i).
func BalanceBiCriteria(weights []int, n int, cc CommCoster, commWeight float64) Assignment {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	return assignGreedy(order, weights, n, cc, commWeight)
}

func assignGreedy(order, weights []int, n int, cc CommCoster, commWeight float64) Assignment {
	out := make(Assignment, n)
	loads := make([]float64, n)
	for _, u := range order {
		best, bestCost := 0, 0.0
		for w := 0; w < n; w++ {
			cost := loads[w] + float64(weights[u])
			if cc != nil {
				cost += commWeight * float64(cc(u, w))
			}
			if w == 0 || cost < bestCost {
				best, bestCost = w, cost
			}
		}
		out[best] = append(out[best], u)
		loads[best] += float64(weights[u])
		if cc != nil {
			loads[best] += commWeight * float64(cc(u, best))
		}
	}
	return out
}
