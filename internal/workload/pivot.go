// Package workload implements the workload model of Section 5.2: pivot
// vectors PV(ϕ), work units w = ⟨v̄_z, G_z̄⟩, workload estimation W(Σ, G),
// the greedy 2-approximation for balanced n-partitions (Proposition 12),
// and the bi-criteria assignment that additionally minimizes communication
// cost for fragmented graphs (Proposition 13).
package workload

import (
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Pivot is the pivot vector PV(ϕ) = ((z_1, c¹_Q), ..., (z_k, c^k_Q)) of a
// pattern: one pivot variable per maximal connected component, chosen with
// minimum radius (eccentricity), plus the component radii. By the locality
// of subgraph isomorphism, every match of the pattern lies within the
// c_i-hop neighborhoods of the pivots' images.
type Pivot struct {
	Q          *pattern.Pattern
	Components [][]int // node indices per connected component
	Vars       []int   // pivot node index z_i per component
	Radii      []int   // component radius c^i_Q at the pivot
	symmetric  bool    // the two components are isomorphic (k == 2 only)
}

// ComputePivot derives PV(ϕ) for a pattern. It runs in O(|Q|²) time.
func ComputePivot(q *pattern.Pattern) *Pivot {
	comps := q.Components()
	p := &Pivot{
		Q:          q,
		Components: comps,
		Vars:       make([]int, len(comps)),
		Radii:      make([]int, len(comps)),
	}
	for i, members := range comps {
		p.Vars[i], p.Radii[i] = q.Center(members)
	}
	if len(comps) == 2 {
		p.symmetric = componentsIsomorphic(q, comps[0], comps[1])
	}
	return p
}

// ArbitraryPivot derives a pivot vector that ignores the min-radius rule
// and picks the first variable of each component instead; the pivot-choice
// ablation benchmark compares it against ComputePivot.
func ArbitraryPivot(q *pattern.Pattern) *Pivot {
	comps := q.Components()
	p := &Pivot{
		Q:          q,
		Components: comps,
		Vars:       make([]int, len(comps)),
		Radii:      make([]int, len(comps)),
	}
	for i, members := range comps {
		p.Vars[i] = members[0]
		p.Radii[i] = q.Eccentricity(members[0])
	}
	if len(comps) == 2 {
		p.symmetric = componentsIsomorphic(q, comps[0], comps[1])
	}
	return p
}

// Arity returns k = ‖z̄‖, the number of connected components.
func (p *Pivot) Arity() int { return len(p.Vars) }

// Symmetric reports whether the pattern has exactly two isomorphic
// components, in which case pivot-candidate pairs (a, b) and (b, a)
// generate duplicate work units and only ordered pairs need be emitted
// (the multi-query duplicate-removal optimization of Example 10).
func (p *Pivot) Symmetric() bool { return p.symmetric }

// componentsIsomorphic checks whether the sub-patterns induced by two
// component node sets are isomorphic (labels included).
func componentsIsomorphic(q *pattern.Pattern, a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	pa, pb := subPattern(q, a), subPattern(q, b)
	if pa.NumEdges() != pb.NumEdges() {
		return false
	}
	return pattern.EmbeddableExact(pa, pb) && pattern.EmbeddableExact(pb, pa)
}

// subPattern extracts the sub-pattern induced by the node indices in keep.
func subPattern(q *pattern.Pattern, keep []int) *pattern.Pattern {
	remap := make(map[int]int, len(keep))
	sub := pattern.New()
	for _, v := range keep {
		remap[v] = sub.AddNode(q.Nodes[v].Var, q.Nodes[v].Label)
	}
	for _, e := range q.Edges {
		if fi, ok := remap[e.From]; ok {
			if ti, ok := remap[e.To]; ok {
				sub.AddEdge(fi, ti, e.Label)
			}
		}
	}
	return sub
}

// Candidates returns, for pivot component i, the candidate graph nodes of
// the pivot variable: nodes sharing the pivot node's label (all nodes for
// a wildcard pivot).
func (p *Pivot) Candidates(g *graph.Graph, i int) []graph.NodeID {
	label := p.Q.Nodes[p.Vars[i]].Label
	if label != pattern.Wildcard {
		return g.NodesWithLabel(label)
	}
	all := make([]graph.NodeID, g.NumNodes())
	for j := range all {
		all[j] = graph.NodeID(j)
	}
	return all
}

// CandidatesIn is Candidates over a compiled topology (frozen snapshot or
// overlay): the label-class range replaces the mutable graph's map lookup.
func (p *Pivot) CandidatesIn(t graph.Topology, i int) []graph.NodeID {
	label := p.Q.Nodes[p.Vars[i]].Label
	if label != pattern.Wildcard {
		return t.NodesWith(t.Syms().Lookup(label))
	}
	all := make([]graph.NodeID, t.NumNodes())
	for j := range all {
		all[j] = graph.NodeID(j)
	}
	return all
}
