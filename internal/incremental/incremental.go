// Package incremental maintains the violation set Vio(Σ, G) under graph
// updates without re-validating the whole graph — the incremental error
// detection direction the paper cites as follow-on work (Fan et al.,
// "Incremental detection of inconsistencies in distributed data", TKDE
// 2014) transplanted to GFDs, maintained in the spirit of answering
// queries under updates via auxiliary structures (Berkholz, Keppeler &
// Schweikardt) rather than recomputation.
//
// The key observation is the same locality that powers the parallel
// engines: every match of a pattern lies within the c-hop neighborhoods
// of its pivots. An update touching node v can therefore only create or
// destroy violations of units whose pivot lies within c hops of v; the
// detector re-validates exactly those units and splices the results into
// the maintained report.
//
// Supported updates are node insertion, edge insertion, and attribute
// assignment (the insert-only + attribute-update model; deletions would
// require adjacency removal the graph type deliberately does not expose).
//
// The detector runs entirely on the compiled path. It maintains a
// graph.Overlay — the base CSR snapshot frozen at construction plus
// localized adjacency/class/attribute patches kept in lockstep with every
// Apply — and re-validates touched units with the same zero-alloc
// match.Matcher and core.LiteralProgram machinery the batch engines use:
// interned labels, sorted CSR ranges, integer literal compares. No full
// snapshot is ever rebuilt per update batch; once the accumulated delta
// exceeds a fraction of the base size the detector compacts — one fresh
// freeze absorbing the patches — and continues on a clean overlay, so
// re-freeze cost is amortized over Ω(|G|) updates.
package incremental

import (
	"fmt"
	"sort"
	"strings"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
	"gfd/internal/workload"
)

// Update is one graph mutation.
type Update interface{ isUpdate() }

// AddNode inserts a node. The assigned NodeID is reported through
// Detector.Apply's node callback if needed; attribute map may be nil.
type AddNode struct {
	Label string
	Attrs graph.Attrs
}

// AddEdge inserts a directed labeled edge.
type AddEdge struct {
	From, To graph.NodeID
	Label    string
}

// SetAttr assigns an attribute value on an existing node.
type SetAttr struct {
	Node  graph.NodeID
	Attr  string
	Value string
}

func (AddNode) isUpdate() {}
func (AddEdge) isUpdate() {}
func (SetAttr) isUpdate() {}

// ApplyTo plays updates onto an overlay (which forwards each mutation to
// its underlying graph), returning the IDs of inserted nodes in update
// order. Shared by Detector.Apply and the session layer's Session.Apply.
func ApplyTo(ov *graph.Overlay, ups ...Update) []graph.NodeID {
	var inserted []graph.NodeID
	for _, up := range ups {
		switch u := up.(type) {
		case AddNode:
			inserted = append(inserted, ov.AddNode(u.Label, u.Attrs))
		case AddEdge:
			ov.MustAddEdge(u.From, u.To, u.Label)
		case SetAttr:
			ov.SetAttr(u.Node, u.Attr, u.Value)
		}
	}
	return inserted
}

// maxUnitPivots bounds the pivot arity the allocation-free unit key
// carries inline. The paper notes k ≤ 2 in practice (one pivot per
// connected pattern component); the headroom covers hand-built
// multi-component rules, and anything larger falls back to a string
// overflow key — degenerate patterns stay correct, they just pay the
// allocation the common case avoids.
const maxUnitPivots = 6

// unitID is the comparable identity of a work unit: rule index plus the
// pivot candidate vector, in a fixed-size struct so the per-unit hot
// maintenance loop keys maps without building strings (unused slots hold
// graph.Invalid). Replaces the strings.Builder keys that allocated once
// per re-validated unit.
type unitID struct {
	rule     int32
	vec      [maxUnitPivots]graph.NodeID
	overflow string // pivots beyond maxUnitPivots, encoded; "" in the common case
}

func makeUnitID(ri int, cands []graph.NodeID) unitID {
	id := unitID{rule: int32(ri)}
	for i := range id.vec {
		id.vec[i] = graph.Invalid
	}
	copy(id.vec[:], cands[:min(len(cands), maxUnitPivots)])
	if len(cands) > maxUnitPivots {
		var b strings.Builder
		for _, c := range cands[maxUnitPivots:] {
			fmt.Fprintf(&b, ":%d", c)
		}
		id.overflow = b.String()
	}
	return id
}

// Detector maintains Vio(Σ, G) across updates. All mutations must go
// through Apply, which keeps the overlay's patches in lockstep with the
// graph.
type Detector struct {
	g      *graph.Graph
	ov     *graph.Overlay
	rules  []*core.GFD
	pivots []*workload.Pivot

	version uint64 // graph version the detector's report reflects

	// Per-rule artifacts compiled against the overlay's symbol table,
	// rebuilt on compaction (a fresh freeze owns a fresh table).
	progs []*core.LiteralProgram
	cqs   []*pattern.Compiled

	// Reusable matching state: the compiled matcher, the unit data block,
	// the affected-pivot scratch set, and the pin map.
	m        *match.Matcher
	block    *graph.EpochSet
	affected *graph.EpochSet
	pin      map[int]graph.NodeID

	// compacted, when set, is invoked with the fresh overlay after each
	// compaction so co-holders of the old view (the owning Session) can
	// adopt it instead of silently decoupling into re-freeze-per-batch.
	compacted func(*graph.Overlay)

	// violations keyed by unit identity (rule index + pivot node vector),
	// so an affected unit's stale entries can be replaced atomically.
	byUnit map[unitID][]Violation
	// UnitsRevalidated counts units re-checked since construction — the
	// quantity the incremental-vs-full benchmarks compare.
	UnitsRevalidated int
}

// Violation mirrors validate.Violation (duplicated to keep the package
// free of a dependency cycle with the batch engines).
type Violation struct {
	Rule  string
	Match core.Match
}

// Key returns the canonical identity of a violation.
func (v Violation) Key() string {
	var b strings.Builder
	b.WriteString(v.Rule)
	for _, id := range v.Match {
		fmt.Fprintf(&b, ",%d", id)
	}
	return b.String()
}

// New builds a detector with an initial full validation of g. The graph
// is frozen once (cached per version — a session that already froze pays
// nothing) and never re-frozen per update batch afterwards.
func New(g *graph.Graph, set *core.Set) *Detector {
	return NewOnOverlay(graph.NewOverlay(g), set)
}

// NewOnOverlay is New over a caller-supplied overlay, which must be
// synced with its graph. A session (gfd.Session) uses it to share one
// maintained overlay across detectors and prepared rule sets instead of
// stacking a view per detector: the overlay's symbol table only ever
// grows, so artifacts compiled by earlier holders stay valid.
func NewOnOverlay(ov *graph.Overlay, set *core.Set) *Detector {
	g := ov.Graph()
	d := &Detector{
		g:       g,
		ov:      ov,
		rules:   set.Rules(),
		version: g.Version(),
		pin:     make(map[int]graph.NodeID, 2),
		byUnit:  make(map[unitID][]Violation),
	}
	for _, f := range d.rules {
		d.pivots = append(d.pivots, workload.ComputePivot(f.Q))
	}
	d.compile()
	d.fullValidate()
	return d
}

// fullValidate rebuilds the violation index with a complete sweep, unit
// by unit. No block sizes are needed (the detector balances nothing), so
// the sweep skips the workload model's neighborhood measuring entirely.
// Used at construction and as the recovery path when mutations reached
// the graph outside this detector's Apply.
func (d *Detector) fullValidate() {
	clear(d.byUnit)
	for ri := range d.rules {
		cands := d.candidates(ri)
		workload.EachVector(cands, func(vec []graph.NodeID) bool {
			d.revalidateUnit(ri, vec)
			return true
		})
	}
}

// compile (re)builds every symbol-table-bound artifact against the
// current overlay: rule labels and literal constants are interned first
// (the growing-table contract — an absent name must mean "can never
// occur"), then patterns and X → Y programs are lowered and the matcher
// and block sets are rebound.
func (d *Detector) compile() {
	syms := d.ov.Syms()
	for _, f := range d.rules {
		pattern.InternInto(f.Q, syms)
		f.InternLiterals(syms)
	}
	d.progs = d.progs[:0]
	d.cqs = d.cqs[:0]
	for _, f := range d.rules {
		d.cqs = append(d.cqs, pattern.CompileFor(f.Q, syms))
		d.progs = append(d.progs, f.CompileLiterals(syms))
	}
	d.m = match.NewMatcher(d.ov)
	d.block = graph.NewEpochSet(d.ov.NumNodes())
	d.affected = graph.NewEpochSet(d.ov.NumNodes())
}

// candidates returns the per-component pivot candidate lists of rule ri
// over the overlay's candidate classes.
func (d *Detector) candidates(ri int) [][]graph.NodeID {
	pv := d.pivots[ri]
	cands := make([][]graph.NodeID, pv.Arity())
	for i := range cands {
		cands[i] = pv.CandidatesIn(d.ov, i)
	}
	return cands
}

// Overlay exposes the maintained delta view so a session can hand it to
// the next detector (see NewOnOverlay) and to its prepared bundles.
func (d *Detector) Overlay() *graph.Overlay { return d.ov }

// OnCompact registers fn to be called with the fresh overlay whenever
// Apply compacts. The owning session uses it to follow the detector onto
// the new view — without it, the session's copy of the old overlay would
// desync at the detector's next Apply and every prepared Detect would
// quietly fall back to a full re-freeze per batch.
func (d *Detector) OnCompact(fn func(*graph.Overlay)) { d.compacted = fn }

// Synced reports whether the detector's maintained state reflects the
// graph's current version — true as long as every mutation since the
// detector was built went through its Apply. A direct graph mutation (or
// an Apply on another holder of the shared overlay) desynchronizes it;
// holders must then rebuild.
func (d *Detector) Synced() bool { return d.version == d.g.Version() }

// Report returns the current violation set, canonically sorted.
func (d *Detector) Report() []Violation {
	var out []Violation
	for _, vs := range d.byUnit {
		out = append(out, vs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Len returns |Vio(Σ, G)| as currently maintained.
func (d *Detector) Len() int {
	n := 0
	for _, vs := range d.byUnit {
		n += len(vs)
	}
	return n
}

// Apply performs the updates through the overlay (which mutates the
// underlying graph in lockstep) and incrementally refreshes the violation
// set, returning the IDs of any inserted nodes in update order. When the
// accumulated delta crosses compactFraction of the base size, the overlay
// is compacted into a fresh snapshot and the compiled artifacts rebound —
// the only time a freeze happens after construction.
func (d *Detector) Apply(ups ...Update) []graph.NodeID {
	// Mutations may have reached the graph since the last Apply without
	// this detector seeing them — through another holder of the shared
	// overlay (Session.Apply, a sibling detector) or a direct graph
	// mutation. The touched-set refresh below only covers this batch, so
	// a stale detector must recover with a full sweep; silently stamping
	// the new version would report Synced while missing violations.
	stale := d.version != d.g.Version()
	if stale && !d.ov.Synced() {
		// The overlay missed the mutations too (they bypassed it
		// entirely, or a co-holder compacted onto a different view):
		// rebuild from a fresh freeze — cached when the graph was already
		// frozen at this version — and publish the rebuilt view like a
		// compaction, so the owning session re-couples instead of the two
		// sides desyncing each other once per batch forever.
		d.ov = graph.NewOverlay(d.g)
		d.compile()
		if d.compacted != nil {
			d.compacted(d.ov)
		}
	}
	inserted := ApplyTo(d.ov, ups...)
	if stale {
		d.fullValidate()
	} else {
		touched := make(graph.NodeSet)
		for _, up := range ups {
			switch u := up.(type) {
			case AddEdge:
				touched.Add(u.From)
				touched.Add(u.To)
			case SetAttr:
				touched.Add(u.Node)
			}
		}
		for _, id := range inserted {
			touched.Add(id)
		}
		d.refresh(touched)
	}
	// Apply keeps the overlay in lockstep with the graph, so the detector
	// is synced at the new version (a Session polls Synced to decide
	// whether the overlay can be shared with the next detector).
	d.version = d.g.Version()
	if d.ov.NeedsCompaction() {
		d.ov = graph.NewOverlay(d.g)
		d.compile()
		if d.compacted != nil {
			d.compacted(d.ov)
		}
	}
	return inserted
}

// refresh re-validates every unit whose pivot lies within its component
// radius of a touched node (computed on the post-update overlay, so edge
// insertions that extend neighborhoods are covered).
func (d *Detector) refresh(touched graph.NodeSet) {
	for ri := range d.rules {
		pv := d.pivots[ri]
		// Affected pivot candidates per component: label-compatible nodes
		// within the component radius of any touched node.
		affected := make([]map[graph.NodeID]struct{}, pv.Arity())
		for i := range affected {
			affected[i] = make(map[graph.NodeID]struct{})
		}
		for v := range touched {
			for i := 0; i < pv.Arity(); i++ {
				labelSym := d.cqs[ri].NodeSyms[pv.Vars[i]]
				d.affected.Reset()
				d.ov.BlockInto(d.affected, v, pv.Radii[i])
				for _, z := range d.affected.Members() {
					if pattern.LabelMatchesSym(labelSym, d.ov.Label(z)) {
						affected[i][z] = struct{}{}
					}
				}
			}
		}
		// Re-validate every unit that includes an affected candidate in
		// some component; other components range over all candidates.
		d.forAffectedUnits(ri, affected, func(cands []graph.NodeID) {
			d.revalidateUnit(ri, cands)
		})
	}
}

// forAffectedUnits enumerates candidate vectors where at least one
// position takes an affected candidate. To avoid re-enumerating the full
// cross product, it fixes each position to its affected set in turn and
// lets earlier positions range over all candidates only when a later
// position is pinned to an affected one (inclusion–exclusion-free
// covering with duplicates suppressed by a seen-set).
func (d *Detector) forAffectedUnits(ri int, affected []map[graph.NodeID]struct{}, fn func([]graph.NodeID)) {
	pv := d.pivots[ri]
	k := pv.Arity()
	all := d.candidates(ri)
	seen := make(map[unitID]struct{})
	vec := make([]graph.NodeID, k)
	var rec func(pos, pinned int)
	rec = func(pos, pinned int) {
		if pos == k {
			if pinned == 0 {
				return
			}
			key := makeUnitID(ri, vec)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			if distinct(vec) {
				fn(vec)
			}
			return
		}
		// Option A: this position takes an affected candidate.
		for z := range affected[pos] {
			vec[pos] = z
			rec(pos+1, pinned+1)
		}
		// Option B: this position ranges over all candidates. Valid when
		// the vector is already pinned to an affected candidate, or some
		// later position still can be.
		later := pinned > 0
		for j := pos + 1; j < k && !later; j++ {
			if len(affected[j]) > 0 {
				later = true
			}
		}
		if later {
			for _, z := range all[pos] {
				if _, isAffected := affected[pos][z]; isAffected {
					continue // already covered by option A
				}
				vec[pos] = z
				rec(pos+1, pinned)
			}
		}
	}
	rec(0, 0)
}

func distinct(vec []graph.NodeID) bool {
	for i := 0; i < len(vec); i++ {
		for j := i + 1; j < len(vec); j++ {
			if vec[i] == vec[j] {
				return false
			}
		}
	}
	return true
}

// revalidateUnit recomputes the violations of one unit (rule + pivot
// candidate vector) with the compiled matcher — the unit's data block
// assembled into the reusable epoch set, pivots pinned, X → Y checked by
// the rule's literal program over the overlay's interned attributes — and
// replaces the unit's entry in the index.
func (d *Detector) revalidateUnit(ri int, cands []graph.NodeID) {
	f := d.rules[ri]
	pv := d.pivots[ri]
	d.UnitsRevalidated++

	d.block.Reset()
	clear(d.pin)
	for i, z := range cands {
		d.ov.BlockInto(d.block, z, pv.Radii[i])
		d.pin[pv.Vars[i]] = z
	}
	var found []Violation
	prog := d.progs[ri]
	d.m.Enumerate(f.Q, match.Options{Block: d.block, Pin: d.pin}, func(m core.Match) bool {
		if prog.IsViolation(d.ov, m) {
			found = append(found, Violation{Rule: f.Name, Match: append(core.Match(nil), m...)})
		}
		return true
	})
	key := makeUnitID(ri, cands)
	if len(found) == 0 {
		delete(d.byUnit, key)
	} else {
		d.byUnit[key] = found
	}
}
