// Package incremental maintains the violation set Vio(Σ, G) under graph
// updates without re-validating the whole graph — the incremental error
// detection direction the paper cites as follow-on work (Fan et al.,
// "Incremental detection of inconsistencies in distributed data", TKDE
// 2014) transplanted to GFDs.
//
// The key observation is the same locality that powers the parallel
// engines: every match of a pattern lies within the c-hop neighborhoods
// of its pivots. An update touching node v can therefore only create or
// destroy violations of units whose pivot lies within c hops of v; the
// detector re-validates exactly those units and splices the results into
// the maintained report.
//
// Supported updates are node insertion, edge insertion, and attribute
// assignment (the insert-only + attribute-update model; deletions would
// require adjacency removal the graph type deliberately does not expose).
//
// Unlike the batch engines, the detector matches against the mutable
// *graph.Graph directly rather than a frozen Snapshot: it interleaves
// mutation with small localized re-validations, so re-freezing the whole
// graph per update batch would cost more than the slice-backed matching it
// replaces. Literal evaluation, however, does run compiled: the detector
// maintains a graph.AttrIndex (the mutable counterpart of the snapshot's
// interned attribute arena) across updates and checks X → Y through each
// rule's core.LiteralProgram, so per-match attribute checking is integer
// compares here too. Sharing topology snapshots incrementally (CSR
// patches) remains an open item in ROADMAP.md.
package incremental

import (
	"fmt"
	"sort"
	"strings"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
	"gfd/internal/workload"
)

// Update is one graph mutation.
type Update interface{ isUpdate() }

// AddNode inserts a node. The assigned NodeID is reported through
// Detector.Apply's node callback if needed; attribute map may be nil.
type AddNode struct {
	Label string
	Attrs graph.Attrs
}

// AddEdge inserts a directed labeled edge.
type AddEdge struct {
	From, To graph.NodeID
	Label    string
}

// SetAttr assigns an attribute value on an existing node.
type SetAttr struct {
	Node  graph.NodeID
	Attr  string
	Value string
}

func (AddNode) isUpdate() {}
func (AddEdge) isUpdate() {}
func (SetAttr) isUpdate() {}

// Detector maintains Vio(Σ, G) across updates. All mutations must go
// through Apply, which keeps the interned attribute index in lockstep with
// the graph.
type Detector struct {
	g       *graph.Graph
	rules   []*core.GFD
	pivots  []*workload.Pivot
	attrs   *graph.AttrIndex
	version uint64                 // graph version the attribute index is synced to
	progs   []*core.LiteralProgram // per rule, compiled against attrs.Syms()

	// violations keyed by unit identity (rule index + pivot node vector),
	// so an affected unit's stale entries can be replaced atomically.
	byUnit map[string][]Violation
	// UnitsRevalidated counts units re-checked since construction — the
	// quantity the incremental-vs-full benchmarks compare.
	UnitsRevalidated int
}

// Violation mirrors validate.Violation (duplicated to keep the package
// free of a dependency cycle with the batch engines).
type Violation struct {
	Rule  string
	Match core.Match
}

// Key returns the canonical identity of a violation.
func (v Violation) Key() string {
	var b strings.Builder
	b.WriteString(v.Rule)
	for _, id := range v.Match {
		fmt.Fprintf(&b, ",%d", id)
	}
	return b.String()
}

// New builds a detector with an initial full validation of g.
func New(g *graph.Graph, set *core.Set) *Detector {
	return NewWithIndex(g, set, graph.NewAttrIndex(g))
}

// NewWithIndex is New over a caller-supplied attribute index, which must
// reflect g's current tuples. A session (gfd.Session) uses it to share
// one maintained AttrIndex across detectors and rule sets instead of
// re-interning every attribute per detector: interned codes only ever
// grow, so programs compiled by earlier detectors stay valid.
func NewWithIndex(g *graph.Graph, set *core.Set, ix *graph.AttrIndex) *Detector {
	d := &Detector{
		g:       g,
		rules:   set.Rules(),
		attrs:   ix,
		version: g.Version(),
		byUnit:  make(map[string][]Violation),
	}
	// Intern every rule constant before compiling: the index's table
	// grows with updates, and a constant must never be frozen as
	// "unknown" when a later SetAttr could introduce its value.
	for _, f := range d.rules {
		f.InternLiterals(d.attrs.Syms())
	}
	for _, f := range d.rules {
		d.pivots = append(d.pivots, workload.ComputePivot(f.Q))
		d.progs = append(d.progs, f.CompileLiterals(d.attrs.Syms()))
	}
	// Initial validation, unit by unit so the per-unit index is built.
	for ri := range d.rules {
		pv := d.pivots[ri]
		for _, u := range workload.BuildUnits(g, pv, workload.BuildOptions{}) {
			d.revalidateUnit(ri, u.Candidates)
		}
	}
	return d
}

// AttrIndex exposes the maintained attribute index so a session can hand
// it to the next detector (see NewWithIndex).
func (d *Detector) AttrIndex() *graph.AttrIndex { return d.attrs }

// Synced reports whether the detector's attribute index reflects the
// graph's current version — true as long as every mutation since the
// detector was built went through Apply. A direct graph mutation
// desynchronizes the index; holders must then rebuild it.
func (d *Detector) Synced() bool { return d.version == d.g.Version() }

// Report returns the current violation set, canonically sorted.
func (d *Detector) Report() []Violation {
	var out []Violation
	for _, vs := range d.byUnit {
		out = append(out, vs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Len returns |Vio(Σ, G)| as currently maintained.
func (d *Detector) Len() int {
	n := 0
	for _, vs := range d.byUnit {
		n += len(vs)
	}
	return n
}

// Apply performs the updates on the underlying graph and incrementally
// refreshes the violation set, returning the IDs of any inserted nodes in
// update order.
func (d *Detector) Apply(ups ...Update) []graph.NodeID {
	var inserted []graph.NodeID
	touched := make(graph.NodeSet)
	for _, up := range ups {
		switch u := up.(type) {
		case AddNode:
			id := d.g.AddNode(u.Label, u.Attrs)
			d.attrs.AddNode(u.Attrs)
			inserted = append(inserted, id)
			touched.Add(id)
		case AddEdge:
			d.g.MustAddEdge(u.From, u.To, u.Label)
			touched.Add(u.From)
			touched.Add(u.To)
		case SetAttr:
			d.g.SetAttr(u.Node, u.Attr, u.Value)
			d.attrs.SetAttr(u.Node, u.Attr, u.Value)
			touched.Add(u.Node)
		}
	}
	d.refresh(touched)
	// Apply keeps the attribute index in lockstep with the graph, so the
	// detector stays synced at the new version (a Session polls Synced to
	// decide whether the index can be reused by the next detector).
	d.version = d.g.Version()
	return inserted
}

// refresh re-validates every unit whose pivot lies within its component
// radius of a touched node (computed on the post-update graph, so edge
// insertions that extend neighborhoods are covered).
func (d *Detector) refresh(touched graph.NodeSet) {
	for ri, f := range d.rules {
		pv := d.pivots[ri]
		// Affected pivot candidates per component: label-compatible nodes
		// within the component radius of any touched node.
		affected := make([]map[graph.NodeID]struct{}, pv.Arity())
		for i := range affected {
			affected[i] = make(map[graph.NodeID]struct{})
		}
		for v := range touched {
			for i := 0; i < pv.Arity(); i++ {
				label := f.Q.Nodes[pv.Vars[i]].Label
				for _, z := range d.g.Neighborhood(v, pv.Radii[i]) {
					if pattern.LabelMatches(label, d.g.Label(z)) {
						affected[i][z] = struct{}{}
					}
				}
			}
		}
		// Re-validate every unit that includes an affected candidate in
		// some component; other components range over all candidates.
		d.forAffectedUnits(ri, affected, func(cands []graph.NodeID) {
			d.revalidateUnit(ri, cands)
		})
	}
}

// forAffectedUnits enumerates candidate vectors where at least one
// position takes an affected candidate. To avoid re-enumerating the full
// cross product, it fixes each position to its affected set in turn and
// lets earlier positions range over all candidates only when a later
// position is pinned to an affected one (inclusion–exclusion-free
// covering with duplicates suppressed by a seen-set).
func (d *Detector) forAffectedUnits(ri int, affected []map[graph.NodeID]struct{}, fn func([]graph.NodeID)) {
	pv := d.pivots[ri]
	k := pv.Arity()
	all := make([][]graph.NodeID, k)
	for i := 0; i < k; i++ {
		all[i] = pv.Candidates(d.g, i)
	}
	seen := make(map[string]struct{})
	vec := make([]graph.NodeID, k)
	var rec func(pos, pinned int)
	rec = func(pos, pinned int) {
		if pos == k {
			if pinned == 0 {
				return
			}
			key := unitKey(ri, vec)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			if distinct(vec) {
				fn(append([]graph.NodeID(nil), vec...))
			}
			return
		}
		// Option A: this position takes an affected candidate.
		for z := range affected[pos] {
			vec[pos] = z
			rec(pos+1, pinned+1)
		}
		// Option B: this position ranges over all candidates. Valid when
		// the vector is already pinned to an affected candidate, or some
		// later position still can be.
		later := pinned > 0
		for j := pos + 1; j < k && !later; j++ {
			if len(affected[j]) > 0 {
				later = true
			}
		}
		if later {
			for _, z := range all[pos] {
				if _, isAffected := affected[pos][z]; isAffected {
					continue // already covered by option A
				}
				vec[pos] = z
				rec(pos+1, pinned)
			}
		}
	}
	rec(0, 0)
}

func distinct(vec []graph.NodeID) bool {
	for i := 0; i < len(vec); i++ {
		for j := i + 1; j < len(vec); j++ {
			if vec[i] == vec[j] {
				return false
			}
		}
	}
	return true
}

// revalidateUnit recomputes the violations of one unit (rule + pivot
// candidate vector) and replaces its entry in the index.
func (d *Detector) revalidateUnit(ri int, cands []graph.NodeID) {
	f := d.rules[ri]
	pv := d.pivots[ri]
	d.UnitsRevalidated++

	block := make(graph.NodeSet)
	pin := make(map[int]graph.NodeID, len(cands))
	for i, z := range cands {
		block.AddAll(d.g.Neighborhood(z, pv.Radii[i]))
		pin[pv.Vars[i]] = z
	}
	var found []Violation
	prog := d.progs[ri]
	match.Enumerate(d.g, f.Q, match.Options{Block: block, Pin: pin}, func(m core.Match) bool {
		if prog.IsViolation(d.attrs, m) {
			found = append(found, Violation{Rule: f.Name, Match: append(core.Match(nil), m...)})
		}
		return true
	})
	key := unitKey(ri, cands)
	if len(found) == 0 {
		delete(d.byUnit, key)
	} else {
		d.byUnit[key] = found
	}
}

func unitKey(ri int, cands []graph.NodeID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", ri)
	for _, c := range cands {
		fmt.Fprintf(&b, ":%d", c)
	}
	return b.String()
}
