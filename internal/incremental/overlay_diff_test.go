// Differential sweeps for the overlay-backed incremental detector: after
// every random update batch the maintained report must equal a full batch
// detection on an identical graph — across engines and seeds — and the
// sweep itself must never rebuild a snapshot (the probe the delta-overlay
// design is accountable to).
package incremental_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/pattern"
	"gfd/internal/session"
	"gfd/internal/validate"
)

// capitalRule is ϕ2: one capital per country (mirrors the in-package
// test fixture; this file lives in the external test package so it can
// import the session layer).
func capitalRule() *core.GFD {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	return core.MustNew("capital", q, nil, []core.Literal{core.VarEq("y", "val", "z", "val")})
}

// randomBatch draws a batch of updates against the current graph state:
// node insertions reusing known labels, edge insertions between random
// existing nodes, and attribute corruptions.
func randomBatch(rng *rand.Rand, n int, labels []string, size int) []incremental.Update {
	ups := make([]incremental.Update, 0, size)
	for i := 0; i < size; i++ {
		switch rng.Intn(3) {
		case 0:
			ups = append(ups, incremental.AddNode{
				Label: labels[rng.Intn(len(labels))],
				Attrs: graph.Attrs{"val": fmt.Sprintf("n%d", rng.Intn(50))},
			})
		case 1:
			from := graph.NodeID(rng.Intn(n))
			to := graph.NodeID(rng.Intn(n))
			if from == to {
				continue
			}
			ups = append(ups, incremental.AddEdge{From: from, To: to, Label: "related_to"})
		default:
			ups = append(ups, incremental.SetAttr{
				Node:  graph.NodeID(rng.Intn(n)),
				Attr:  "val",
				Value: string(rune('a' + rng.Intn(26))),
			})
		}
	}
	return ups
}

// reportKeys canonicalizes the detector's report for comparison with an
// engine's violation set.
func reportKeys(vs []incremental.Violation) []string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = v.Key()
	}
	return keys
}

func TestOverlayIncrementalDifferentialSweep(t *testing.T) {
	engines := []validate.Engine{
		validate.EngineSequential,
		validate.EngineReplicated,
		validate.EngineFragmented,
	}
	for _, seed := range []int64{3, 17, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := gen.YAGO2Like(gen.DatasetConfig{Scale: 50, Seed: seed})
			set := gen.MineGFDs(g, gen.MineConfig{NumRules: 4, PatternSize: 3, TwoCompFrac: 0.3, Seed: seed + 1})
			if set.Len() == 0 {
				t.Skip("no rules mined")
			}
			d := incremental.New(g, set)
			builds := g.SnapshotBuilds()
			labels := g.Labels()
			rng := rand.New(rand.NewSource(seed))
			for batch := 0; batch < 6; batch++ {
				d.Apply(randomBatch(rng, g.NumNodes(), labels, 1+rng.Intn(4))...)
				got := reportKeys(d.Report())
				// Reference: a full re-freeze + batch Detect on a clone of
				// the updated graph (cloned so the probe below can prove
				// the incremental path itself froze nothing).
				ref := g.Clone()
				refSess, err := session.New(ref)
				if err != nil {
					t.Fatal(err)
				}
				prep, err := refSess.Prepare(set)
				if err != nil {
					t.Fatal(err)
				}
				for _, engine := range engines {
					res, err := prep.Detect(context.Background(), validate.Options{Engine: engine, N: 3})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Violations) != len(got) {
						t.Fatalf("batch %d %v: incremental has %d violations, full detection %d",
							batch, engine, len(got), len(res.Violations))
					}
					for i, v := range res.Violations {
						if v.Key() != got[i] {
							t.Fatalf("batch %d %v: violation %d differs: %s vs %s",
								batch, engine, i, got[i], v.Key())
						}
					}
				}
			}
			if g.SnapshotBuilds() != builds {
				t.Fatalf("update sweep rebuilt snapshots: %d -> %d (the overlay must absorb batches)",
					builds, g.SnapshotBuilds())
			}
		})
	}
}

// TestDetectorCompaction pushes the delta past the compaction threshold
// and checks the detector re-freezes exactly once, keeps answering
// correctly, and continues incrementally afterwards.
func TestDetectorCompaction(t *testing.T) {
	g := graph.New(0, 0)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": "Canberra"}), "capital")
	set := core.MustNewSet(capitalRule())
	d := incremental.New(g, set)
	builds := g.SnapshotBuilds()

	// Each batch adds a disconnected node; on a tiny base the delta
	// fraction crosses 0.25 almost immediately, forcing compactions.
	for i := 0; i < 12; i++ {
		d.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "X"}})
	}
	if g.SnapshotBuilds() == builds {
		t.Fatal("delta far past the threshold never compacted")
	}
	// Post-compaction the detector still answers and maintains.
	ids := d.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "Melbourne"}})
	d.Apply(incremental.AddEdge{From: au, To: ids[0], Label: "capital"})
	want := validate.DetVio(g.Clone(), set)
	got := d.Report()
	if len(got) != len(want) {
		t.Fatalf("post-compaction report has %d violations, full validation %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("post-compaction violation %d differs: %s vs %s", i, got[i].Key(), want[i].Key())
		}
	}
}
