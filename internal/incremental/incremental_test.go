package incremental

import (
	"math/rand"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// capitalRule is ϕ2: one capital per country.
func capitalRule() *core.GFD {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	return core.MustNew("capital", q, nil, []core.Literal{core.VarEq("y", "val", "z", "val")})
}

// agree reports whether the incremental report matches a fresh full
// validation.
func agree(t *testing.T, d *Detector, g *graph.Graph, set *core.Set) {
	t.Helper()
	want := validate.DetVio(g, set)
	got := d.Report()
	if len(got) != len(want) {
		t.Fatalf("incremental has %d violations, full validation %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("violation %d differs: %s vs %s", i, got[i].Key(), want[i].Key())
		}
	}
}

func TestIncrementalCapitalScenario(t *testing.T) {
	g := graph.New(0, 0)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	c1 := g.AddNode("city", graph.Attrs{"val": "Canberra"})
	g.MustAddEdge(au, c1, "capital")

	set := core.MustNewSet(capitalRule())
	d := New(g, set)
	if d.Len() != 0 {
		t.Fatal("single capital: no violations initially")
	}

	// Adding a second, different capital creates the inconsistency.
	ids := d.Apply(AddNode{Label: "city", Attrs: graph.Attrs{"val": "Melbourne"}})
	d.Apply(AddEdge{From: au, To: ids[0], Label: "capital"})
	agree(t, d, g, set)
	if d.Len() != 2 {
		t.Fatalf("want the two ordered violations, got %d", d.Len())
	}

	// Repairing the attribute clears the violations.
	d.Apply(SetAttr{Node: ids[0], Attr: "val", Value: "Canberra"})
	agree(t, d, g, set)
	if d.Len() != 0 {
		t.Fatalf("repair should clear violations, got %d", d.Len())
	}

	// Breaking it again from the other side.
	d.Apply(SetAttr{Node: c1, Attr: "val", Value: "Sydney"})
	agree(t, d, g, set)
	if d.Len() != 2 {
		t.Fatalf("want violations after re-breaking, got %d", d.Len())
	}
}

func TestIncrementalTwoComponentRule(t *testing.T) {
	// Flight FD over two disconnected components: updates far from one
	// component still affect pairs that include it.
	q := pattern.New()
	for _, pre := range []string{"x", "y"} {
		f := q.AddNode(pattern.Var(pre), "flight")
		id := q.AddNode(pattern.Var(pre+"1"), "id")
		c := q.AddNode(pattern.Var(pre+"2"), "city")
		q.AddEdge(f, id, "number")
		q.AddEdge(f, c, "from")
	}
	rule := core.MustNew("flightfd", q,
		[]core.Literal{core.VarEq("x1", "val", "y1", "val")},
		[]core.Literal{core.VarEq("x2", "val", "y2", "val")})
	set := core.MustNewSet(rule)

	g := graph.New(0, 0)
	addFlight := func(id, from string) graph.NodeID {
		f := g.AddNode("flight", graph.Attrs{"val": id + from})
		g.MustAddEdge(f, g.AddNode("id", graph.Attrs{"val": id}), "number")
		g.MustAddEdge(f, g.AddNode("city", graph.Attrs{"val": from}), "from")
		return f
	}
	addFlight("DL1", "Paris")
	d := New(g, set)
	if d.Len() != 0 {
		t.Fatal("one flight cannot violate a pair rule")
	}

	// Insert a conflicting duplicate via updates only.
	ids := d.Apply(
		AddNode{Label: "flight", Attrs: graph.Attrs{"val": "DL1b"}},
		AddNode{Label: "id", Attrs: graph.Attrs{"val": "DL1"}},
		AddNode{Label: "city", Attrs: graph.Attrs{"val": "Rome"}},
	)
	d.Apply(
		AddEdge{From: ids[0], To: ids[1], Label: "number"},
		AddEdge{From: ids[0], To: ids[2], Label: "from"},
	)
	agree(t, d, g, set)
	if d.Len() != 2 {
		t.Fatalf("want both ordered pair violations, got %d", d.Len())
	}
}

func TestIncrementalRandomizedAgainstFull(t *testing.T) {
	// Fuzz: random updates against a mined rule set; the incremental
	// report must always equal a fresh full validation.
	clean := gen.YAGO2Like(gen.DatasetConfig{Scale: 60, Seed: 9})
	set := gen.MineGFDs(clean, gen.MineConfig{NumRules: 4, PatternSize: 3, TwoCompFrac: 0.3, Seed: 10})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	d := New(clean, set)
	rng := rand.New(rand.NewSource(11))
	labels := clean.Labels()
	for step := 0; step < 25; step++ {
		switch rng.Intn(3) {
		case 0:
			d.Apply(AddNode{Label: labels[rng.Intn(len(labels))], Attrs: graph.Attrs{"val": "new"}})
		case 1:
			from := graph.NodeID(rng.Intn(clean.NumNodes()))
			to := graph.NodeID(rng.Intn(clean.NumNodes()))
			if from != to {
				d.Apply(AddEdge{From: from, To: to, Label: "related_to"})
			}
		default:
			v := graph.NodeID(rng.Intn(clean.NumNodes()))
			d.Apply(SetAttr{Node: v, Attr: "val", Value: corruptValue(rng)})
		}
		agree(t, d, clean, set)
	}
}

func corruptValue(rng *rand.Rand) string {
	return string(rune('a' + rng.Intn(26)))
}

func TestIncrementalRevalidatesFewUnits(t *testing.T) {
	// The point of incrementality: a single attribute touch must not
	// re-validate the whole workload.
	clean := gen.YAGO2Like(gen.DatasetConfig{Scale: 150, Seed: 12})
	set := gen.MineGFDs(clean, gen.MineConfig{NumRules: 4, PatternSize: 3, Seed: 13})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	d := New(clean, set)
	initial := d.UnitsRevalidated
	d.Apply(SetAttr{Node: 0, Attr: "val", Value: "zap"})
	delta := d.UnitsRevalidated - initial
	if delta > initial/4 {
		t.Errorf("one update re-validated %d of %d units — not incremental", delta, initial)
	}
}

func TestUnitIDDistinct(t *testing.T) {
	if makeUnitID(1, []graph.NodeID{2, 3}) == makeUnitID(12, []graph.NodeID{3}) {
		t.Error("unit keys must not collide across rule/candidate splits")
	}
	if makeUnitID(1, []graph.NodeID{2}) == makeUnitID(1, []graph.NodeID{2, 3}) {
		t.Error("unit keys must encode the full candidate vector")
	}
}

func TestNewOnOverlaySharesMaintainedView(t *testing.T) {
	g := graph.New(0, 0)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	c1 := g.AddNode("city", graph.Attrs{"val": "Canberra"})
	c2 := g.AddNode("city", graph.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")
	set := core.MustNewSet(capitalRule())

	d1 := New(g, set)
	if !d1.Synced() {
		t.Fatal("fresh detector must be synced")
	}
	agree(t, d1, g, set)

	// Mutate through the detector: the graph version advances and the
	// overlay follows, so the detector stays synced and a second detector
	// can be built over the same maintained view without a freeze.
	d1.Apply(SetAttr{Node: c2, Attr: "val", Value: "Canberra"})
	if !d1.Synced() {
		t.Fatal("detector must remain synced after Apply")
	}
	builds := g.SnapshotBuilds()
	d2 := NewOnOverlay(d1.Overlay(), set)
	if d2.Overlay() != d1.Overlay() {
		t.Fatal("NewOnOverlay must adopt the supplied overlay")
	}
	if g.SnapshotBuilds() != builds {
		t.Fatalf("adopting a maintained overlay must not freeze (builds %d -> %d)", builds, g.SnapshotBuilds())
	}
	agree(t, d2, g, set)
	// Updates through the new detector keep the shared overlay usable by
	// the first one's compiled programs (codes only grow).
	d2.Apply(SetAttr{Node: c2, Attr: "val", Value: "Sydney"})
	agree(t, d2, g, set)
	if d1.Synced() {
		t.Error("d1 did not observe d2's mutation; Synced must be false")
	}

	// A direct graph mutation desynchronizes every detector.
	g.SetAttr(c1, "val", "Perth")
	if d2.Synced() {
		t.Error("direct mutation must desynchronize the detector")
	}
}
