// Package fragment implements graph fragmentation for the distributed
// setting of Section 6.2: a fragmentation (F_1, ..., F_n) of G assigns
// every node to exactly one fragment, each fragment knowing its border —
// in-nodes (local nodes with an incoming edge from another fragment) and
// out-nodes (remote nodes reachable by an edge from a local node).
//
// Fragments are views over a shared in-memory graph; the cluster runtime
// charges communication cost whenever a worker touches data outside its
// own fragment, which is how the simulation reproduces the paper's data
// shipment measurements without a physical network.
package fragment

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"

	"gfd/internal/graph"
	"gfd/internal/store"
)

// Strategy selects how nodes are assigned to fragments.
type Strategy uint8

const (
	// Hash assigns node v to fragment hash(v) mod n: the edge-cut
	// partitioning used for the paper's fragmented experiments.
	Hash Strategy = iota
	// Range assigns contiguous ID ranges, which keeps generator locality
	// (synthetic communities land together) and yields fewer border nodes.
	Range
)

// String names the strategy — the form shard manifests record.
func (s Strategy) String() string {
	if s == Range {
		return "range"
	}
	return "hash"
}

// ParseStrategy is the inverse of Strategy.String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	}
	return Hash, fmt.Errorf("fragment: unknown strategy %q", name)
}

// Owner returns the fragment index strategy s assigns to node v in an
// n-way partition of numNodes nodes. This is the pure assignment formula
// behind Partition, exported so the distributed coordinator can reproduce
// shard ownership from a manifest (strategy, numNodes, n) without
// re-partitioning — the same triple must always map a node to the same
// shard, or halo shipping and unit reassignment would disagree about who
// owns what.
func Owner(s Strategy, v graph.NodeID, numNodes, n int) int {
	if n < 1 {
		n = 1
	}
	switch s {
	case Range:
		per := (numNodes + n - 1) / n
		owner := int(v) / max(per, 1)
		if owner >= n {
			owner = n - 1
		}
		return owner
	default:
		return hashNode(v) % n
	}
}

// Fragmentation is an n-way partition of a graph's nodes.
type Fragmentation struct {
	G     *graph.Graph
	N     int
	Owner []int // node ID -> fragment index
	frags []*Fragment
}

// Fragment is one fragment F_i: the set of locally-owned nodes plus its
// border bookkeeping.
type Fragment struct {
	ID       int
	Nodes    []graph.NodeID // owned nodes, ascending
	InNodes  []graph.NodeID // F_i.I: owned nodes with an edge from outside
	OutNodes []graph.NodeID // F_i.O: remote nodes with an edge from inside
	byLabel  map[string][]graph.NodeID
}

// Partition splits g into n fragments using the given strategy.
func Partition(g *graph.Graph, n int, s Strategy) *Fragmentation {
	if n < 1 {
		n = 1
	}
	f := &Fragmentation{G: g, N: n, Owner: make([]int, g.NumNodes())}
	for i := 0; i < n; i++ {
		f.frags = append(f.frags, &Fragment{ID: i, byLabel: make(map[string][]graph.NodeID)})
	}
	for v := 0; v < g.NumNodes(); v++ {
		owner := Owner(s, graph.NodeID(v), g.NumNodes(), n)
		f.Owner[v] = owner
		fr := f.frags[owner]
		id := graph.NodeID(v)
		fr.Nodes = append(fr.Nodes, id)
		fr.byLabel[g.Label(id)] = append(fr.byLabel[g.Label(id)], id)
	}
	f.computeBorders()
	return f
}

func hashNode(v graph.NodeID) int {
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	h.Write(b[:])
	return int(h.Sum32() & 0x7fffffff)
}

func (f *Fragmentation) computeBorders() {
	inSeen := make([]map[graph.NodeID]struct{}, f.N)
	outSeen := make([]map[graph.NodeID]struct{}, f.N)
	for i := range inSeen {
		inSeen[i] = make(map[graph.NodeID]struct{})
		outSeen[i] = make(map[graph.NodeID]struct{})
	}
	f.G.Edges(func(e graph.Edge) bool {
		fo, to := f.Owner[e.From], f.Owner[e.To]
		if fo != to {
			// e.To is an in-node of its fragment; e.To is an out-node of
			// e.From's fragment, and symmetrically for e.From.
			inSeen[to][e.To] = struct{}{}
			outSeen[fo][e.To] = struct{}{}
			inSeen[fo][e.From] = struct{}{} // reachable via reverse traversal
			outSeen[to][e.From] = struct{}{}
		}
		return true
	})
	for i, fr := range f.frags {
		fr.InNodes = setToSorted(inSeen[i])
		fr.OutNodes = setToSorted(outSeen[i])
	}
}

func setToSorted(m map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Frag returns fragment i.
func (f *Fragmentation) Frag(i int) *Fragment { return f.frags[i] }

// OwnerOf returns the fragment index owning node v.
func (f *Fragmentation) OwnerOf(v graph.NodeID) int { return f.Owner[v] }

// LocalNodesWithLabel returns fragment i's locally-owned candidates for a
// label.
func (f *Fragmentation) LocalNodesWithLabel(i int, label string) []graph.NodeID {
	return f.frags[i].byLabel[label]
}

// CutEdges counts edges crossing fragments, a partition-quality metric.
func (f *Fragmentation) CutEdges() int {
	cut := 0
	f.G.Edges(func(e graph.Edge) bool {
		if f.Owner[e.From] != f.Owner[e.To] {
			cut++
		}
		return true
	})
	return cut
}

// NodeBytes estimates the serialized size of a node: its label, attribute
// tuple and adjacency. This is the unit in which data shipment is charged
// (the paper's CC(w) = c_s · |M| with c_s folded into the network model).
func NodeBytes(g *graph.Graph, v graph.NodeID) int64 {
	size := int64(len(g.Label(v))) + 8
	for k, val := range g.NodeAttrs(v) {
		size += int64(len(k) + len(val) + 2)
	}
	size += int64(g.Degree(v)) * 12 // edge endpoints + label tag
	return size
}

// BlockShipBytes returns the bytes that must be shipped to worker dst to
// assemble the data block nodes: the total serialized size of block nodes
// not owned by dst.
func (f *Fragmentation) BlockShipBytes(block []graph.NodeID, dst int) int64 {
	var total int64
	for _, v := range block {
		if f.Owner[v] != dst {
			total += NodeBytes(f.G, v)
		}
	}
	return total
}

func (f *Fragmentation) String() string {
	return fmt.Sprintf("fragmentation(n=%d, cut=%d)", f.N, f.CutEdges())
}

// SaveShards persists the fragmentation as one .gfds file per fragment,
// named <prefix>.<i>.gfds under dir, and returns the paths in fragment
// order. Each shard is a *full-width* snapshot: the complete node, label,
// class, and symbol tables of the source graph (so NodeIDs, Sym codes, and
// candidate classes are global — identical on every shard), with attribute
// tuples only for owned nodes and adjacency restricted to edges incident
// to an owned endpoint. Keeping the symbol table global is what makes
// match enumeration order reproducible across shards, which the
// distributed runtime's skip-count retry dedupe relies on; the per-shard
// cost is one Sym per non-owned node and empty offset ranges, a few bytes
// a node.
//
// Shards are built by filtering the frozen snapshot's flat image and
// re-adopting it — no per-shard graph rebuild, no snapshot builds beyond
// the source freeze.
func (f *Fragmentation) SaveShards(ctx context.Context, dir, prefix string) ([]string, error) {
	return SaveShards(ctx, f.G.Freeze(), f.Owner, f.N, dir, prefix)
}

// SaveShards is the snapshot-level form of Fragmentation.SaveShards: owner
// maps each NodeID to its fragment in [0,n).
func SaveShards(ctx context.Context, snap *graph.Snapshot, owner []int, n int, dir, prefix string) ([]string, error) {
	if n < 1 {
		n = 1
	}
	full := snap.Flat()
	numNodes := len(full.Labels)
	if len(owner) != numNodes {
		return nil, fmt.Errorf("fragment: owner table covers %d nodes, snapshot has %d", len(owner), numNodes)
	}
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ff := graph.Flat{
			Names:    full.Names,
			Labels:   full.Labels,
			ClassOff: full.ClassOff,
			Classes:  full.Classes,
			AttrOff:  make([]int32, numNodes+1),
			OutOff:   make([]int32, numNodes+1),
			InOff:    make([]int32, numNodes+1),
		}
		for v := 0; v < numNodes; v++ {
			owned := owner[v] == i
			if owned {
				ff.AttrPairs = append(ff.AttrPairs, full.AttrPairs[full.AttrOff[v]:full.AttrOff[v+1]]...)
			}
			ff.AttrOff[v+1] = int32(len(ff.AttrPairs))
			// An edge belongs to shard i iff either endpoint is owned; in
			// both CSR directions e.To is the *other* endpoint, so the same
			// filter keeps the two arenas consistent (and equally sized).
			for _, e := range full.Out[full.OutOff[v]:full.OutOff[v+1]] {
				if owned || owner[e.To] == i {
					ff.Out = append(ff.Out, e)
				}
			}
			ff.OutOff[v+1] = int32(len(ff.Out))
			for _, e := range full.In[full.InOff[v]:full.InOff[v+1]] {
				if owned || owner[e.To] == i {
					ff.In = append(ff.In, e)
				}
			}
			ff.InOff[v+1] = int32(len(ff.In))
		}
		shard, err := graph.AdoptFlat(ff)
		if err != nil {
			return nil, fmt.Errorf("fragment: shard %d image invalid: %w", i, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.%d.gfds", prefix, i))
		if err := store.Save(ctx, shard, path); err != nil {
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}
