// Package fragment implements graph fragmentation for the distributed
// setting of Section 6.2: a fragmentation (F_1, ..., F_n) of G assigns
// every node to exactly one fragment, each fragment knowing its border —
// in-nodes (local nodes with an incoming edge from another fragment) and
// out-nodes (remote nodes reachable by an edge from a local node).
//
// Fragments are views over a shared in-memory graph; the cluster runtime
// charges communication cost whenever a worker touches data outside its
// own fragment, which is how the simulation reproduces the paper's data
// shipment measurements without a physical network.
package fragment

import (
	"fmt"
	"hash/fnv"

	"gfd/internal/graph"
)

// Strategy selects how nodes are assigned to fragments.
type Strategy uint8

const (
	// Hash assigns node v to fragment hash(v) mod n: the edge-cut
	// partitioning used for the paper's fragmented experiments.
	Hash Strategy = iota
	// Range assigns contiguous ID ranges, which keeps generator locality
	// (synthetic communities land together) and yields fewer border nodes.
	Range
)

// Fragmentation is an n-way partition of a graph's nodes.
type Fragmentation struct {
	G     *graph.Graph
	N     int
	Owner []int // node ID -> fragment index
	frags []*Fragment
}

// Fragment is one fragment F_i: the set of locally-owned nodes plus its
// border bookkeeping.
type Fragment struct {
	ID       int
	Nodes    []graph.NodeID // owned nodes, ascending
	InNodes  []graph.NodeID // F_i.I: owned nodes with an edge from outside
	OutNodes []graph.NodeID // F_i.O: remote nodes with an edge from inside
	byLabel  map[string][]graph.NodeID
}

// Partition splits g into n fragments using the given strategy.
func Partition(g *graph.Graph, n int, s Strategy) *Fragmentation {
	if n < 1 {
		n = 1
	}
	f := &Fragmentation{G: g, N: n, Owner: make([]int, g.NumNodes())}
	for i := 0; i < n; i++ {
		f.frags = append(f.frags, &Fragment{ID: i, byLabel: make(map[string][]graph.NodeID)})
	}
	per := (g.NumNodes() + n - 1) / n
	for v := 0; v < g.NumNodes(); v++ {
		var owner int
		switch s {
		case Range:
			owner = v / max(per, 1)
			if owner >= n {
				owner = n - 1
			}
		default:
			owner = hashNode(graph.NodeID(v)) % n
		}
		f.Owner[v] = owner
		fr := f.frags[owner]
		id := graph.NodeID(v)
		fr.Nodes = append(fr.Nodes, id)
		fr.byLabel[g.Label(id)] = append(fr.byLabel[g.Label(id)], id)
	}
	f.computeBorders()
	return f
}

func hashNode(v graph.NodeID) int {
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	h.Write(b[:])
	return int(h.Sum32() & 0x7fffffff)
}

func (f *Fragmentation) computeBorders() {
	inSeen := make([]map[graph.NodeID]struct{}, f.N)
	outSeen := make([]map[graph.NodeID]struct{}, f.N)
	for i := range inSeen {
		inSeen[i] = make(map[graph.NodeID]struct{})
		outSeen[i] = make(map[graph.NodeID]struct{})
	}
	f.G.Edges(func(e graph.Edge) bool {
		fo, to := f.Owner[e.From], f.Owner[e.To]
		if fo != to {
			// e.To is an in-node of its fragment; e.To is an out-node of
			// e.From's fragment, and symmetrically for e.From.
			inSeen[to][e.To] = struct{}{}
			outSeen[fo][e.To] = struct{}{}
			inSeen[fo][e.From] = struct{}{} // reachable via reverse traversal
			outSeen[to][e.From] = struct{}{}
		}
		return true
	})
	for i, fr := range f.frags {
		fr.InNodes = setToSorted(inSeen[i])
		fr.OutNodes = setToSorted(outSeen[i])
	}
}

func setToSorted(m map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Frag returns fragment i.
func (f *Fragmentation) Frag(i int) *Fragment { return f.frags[i] }

// OwnerOf returns the fragment index owning node v.
func (f *Fragmentation) OwnerOf(v graph.NodeID) int { return f.Owner[v] }

// LocalNodesWithLabel returns fragment i's locally-owned candidates for a
// label.
func (f *Fragmentation) LocalNodesWithLabel(i int, label string) []graph.NodeID {
	return f.frags[i].byLabel[label]
}

// CutEdges counts edges crossing fragments, a partition-quality metric.
func (f *Fragmentation) CutEdges() int {
	cut := 0
	f.G.Edges(func(e graph.Edge) bool {
		if f.Owner[e.From] != f.Owner[e.To] {
			cut++
		}
		return true
	})
	return cut
}

// NodeBytes estimates the serialized size of a node: its label, attribute
// tuple and adjacency. This is the unit in which data shipment is charged
// (the paper's CC(w) = c_s · |M| with c_s folded into the network model).
func NodeBytes(g *graph.Graph, v graph.NodeID) int64 {
	size := int64(len(g.Label(v))) + 8
	for k, val := range g.NodeAttrs(v) {
		size += int64(len(k) + len(val) + 2)
	}
	size += int64(g.Degree(v)) * 12 // edge endpoints + label tag
	return size
}

// BlockShipBytes returns the bytes that must be shipped to worker dst to
// assemble the data block nodes: the total serialized size of block nodes
// not owned by dst.
func (f *Fragmentation) BlockShipBytes(block []graph.NodeID, dst int) int64 {
	var total int64
	for _, v := range block {
		if f.Owner[v] != dst {
			total += NodeBytes(f.G, v)
		}
	}
	return total
}

func (f *Fragmentation) String() string {
	return fmt.Sprintf("fragmentation(n=%d, cut=%d)", f.N, f.CutEdges())
}
