package fragment

import (
	"testing"

	"gfd/internal/gen"
	"gfd/internal/graph"
)

func chainGraph(n int) *graph.Graph {
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddNode("n", graph.Attrs{"val": "v"})
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), "e")
	}
	return g
}

func TestPartitionCoversAllNodes(t *testing.T) {
	g := chainGraph(100)
	for _, strat := range []Strategy{Hash, Range} {
		f := Partition(g, 4, strat)
		total := 0
		seen := make(map[graph.NodeID]bool)
		for i := 0; i < 4; i++ {
			fr := f.Frag(i)
			total += len(fr.Nodes)
			for _, v := range fr.Nodes {
				if seen[v] {
					t.Fatalf("node %d in two fragments", v)
				}
				seen[v] = true
				if f.OwnerOf(v) != i {
					t.Fatalf("owner mismatch for %d", v)
				}
			}
		}
		if total != 100 {
			t.Fatalf("strategy %d: partition covers %d of 100 nodes", strat, total)
		}
	}
}

func TestPartitionSingleFragment(t *testing.T) {
	g := chainGraph(10)
	f := Partition(g, 1, Hash)
	if f.CutEdges() != 0 {
		t.Error("single fragment has no cut edges")
	}
	if len(f.Frag(0).InNodes) != 0 || len(f.Frag(0).OutNodes) != 0 {
		t.Error("single fragment has no border")
	}
	// n < 1 clamps to 1.
	if Partition(g, 0, Hash).N != 1 {
		t.Error("n must clamp to 1")
	}
}

func TestRangePartitionChainBorders(t *testing.T) {
	g := chainGraph(10)
	f := Partition(g, 2, Range)
	// Range split: nodes 0..4 and 5..9, one cut edge 4->5.
	if f.CutEdges() != 1 {
		t.Fatalf("cut edges = %d, want 1", f.CutEdges())
	}
	f0, f1 := f.Frag(0), f.Frag(1)
	// Node 5 is an in-node of fragment 1 (edge arrives from fragment 0);
	// node 4 is on fragment 0's border too (reachable backwards).
	if len(f1.InNodes) == 0 {
		t.Error("fragment 1 must have in-nodes")
	}
	if len(f0.OutNodes) == 0 {
		t.Error("fragment 0 must have out-nodes")
	}
	found := false
	for _, v := range f0.OutNodes {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Error("node 5 must be an out-node of fragment 0")
	}
}

func TestLocalNodesWithLabel(t *testing.T) {
	g := graph.New(0, 0)
	for i := 0; i < 20; i++ {
		label := "a"
		if i%2 == 1 {
			label = "b"
		}
		g.AddNode(label, nil)
	}
	f := Partition(g, 3, Hash)
	count := 0
	for i := 0; i < 3; i++ {
		count += len(f.LocalNodesWithLabel(i, "a"))
	}
	if count != 10 {
		t.Errorf("local 'a' candidates sum to %d, want 10", count)
	}
}

func TestNodeBytesGrowsWithContent(t *testing.T) {
	g := graph.New(0, 0)
	small := g.AddNode("x", nil)
	big := g.AddNode("some_long_label", graph.Attrs{"k1": "value1", "k2": "value2"})
	g.MustAddEdge(big, small, "e")
	if NodeBytes(g, big) <= NodeBytes(g, small) {
		t.Error("bigger nodes must serialize bigger")
	}
}

func TestBlockShipBytes(t *testing.T) {
	g := chainGraph(10)
	f := Partition(g, 2, Range)
	block := []graph.NodeID{0, 1, 5, 6}
	toW0 := f.BlockShipBytes(block, 0) // nodes 5,6 are remote
	toW1 := f.BlockShipBytes(block, 1) // nodes 0,1 are remote
	if toW0 <= 0 || toW1 <= 0 {
		t.Fatal("cross-fragment blocks must cost bytes")
	}
	// All-local block costs nothing.
	if f.BlockShipBytes([]graph.NodeID{0, 1}, 0) != 0 {
		t.Error("local block must ship zero bytes")
	}
}

func TestHashPartitionRoughBalance(t *testing.T) {
	g := gen.Synthetic(gen.SyntheticConfig{Nodes: 2000, Edges: 4000, Seed: 7})
	f := Partition(g, 4, Hash)
	for i := 0; i < 4; i++ {
		n := len(f.Frag(i).Nodes)
		if n < 300 || n > 700 {
			t.Errorf("fragment %d owns %d nodes; hash balance off", i, n)
		}
	}
}
