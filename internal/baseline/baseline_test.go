package baseline

import (
	"context"
	"sync/atomic"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// pathRule builds a GFD over the path a -e1-> b -e2-> c.
func pathRule(name string) *core.GFD {
	q := pattern.New()
	a := q.AddNode("a", "person")
	b := q.AddNode("b", "city")
	c := q.AddNode("c", "country")
	q.AddEdge(a, b, "born_in")
	q.AddEdge(b, c, "located_in")
	return core.MustNew(name, q, nil, []core.Literal{core.VarEq("a", "country", "c", "val")})
}

// cyclicRule builds a GFD over a cyclic pattern (inexpressible as GCFD).
func cyclicRule(name string) *core.GFD {
	q := pattern.New()
	x := q.AddNode("x", "person")
	y := q.AddNode("y", "person")
	q.AddEdge(x, y, "has_child")
	q.AddEdge(y, x, "has_child")
	return core.MustNew(name, q, nil, []core.Literal{core.Const("x", "impossible", "true")})
}

// branchingRule builds a GFD over a star (branching, inexpressible).
func branchingRule(name string) *core.GFD {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	return core.MustNew(name, q, nil, []core.Literal{core.VarEq("y", "val", "z", "val")})
}

func TestFromGFDExpressibility(t *testing.T) {
	if _, ok := FromGFD(pathRule("p")); !ok {
		t.Error("a chain rule is GCFD-expressible")
	}
	if _, ok := FromGFD(cyclicRule("c")); ok {
		t.Error("cyclic patterns are not GCFD-expressible")
	}
	if _, ok := FromGFD(branchingRule("b")); ok {
		t.Error("branching patterns are not GCFD-expressible")
	}
	// Two isomorphic single-node components: the relational-FD encoding,
	// expressible as a CFD over tuple pairs.
	twoComp := pattern.New()
	twoComp.AddNode("x", "a")
	twoComp.AddNode("y", "a")
	f := core.MustNew("t", twoComp, nil, []core.Literal{core.VarEq("x", "v", "y", "v")})
	if _, ok := FromGFD(f); !ok {
		t.Error("isomorphic path-pair patterns are CFD-expressible")
	}
	// Two non-isomorphic components are not.
	hetero := pattern.New()
	hetero.AddNode("x", "a")
	hetero.AddNode("y", "b")
	hf := core.MustNew("h", hetero, nil, []core.Literal{core.VarEq("x", "v", "y", "v")})
	if _, ok := FromGFD(hf); ok {
		t.Error("heterogeneous components are not a CFD pair")
	}
	// Two isomorphic *star* components (the flight FD) are not paths.
	stars := pattern.New()
	for _, pre := range []string{"x", "y"} {
		hub := stars.AddNode(pattern.Var(pre), "flight")
		s1 := stars.AddNode(pattern.Var(pre+"1"), "id")
		s2 := stars.AddNode(pattern.Var(pre+"2"), "city")
		stars.AddEdge(hub, s1, "number")
		stars.AddEdge(hub, s2, "from")
	}
	sf := core.MustNew("s2", stars, nil, []core.Literal{core.VarEq("x1", "val", "y1", "val")})
	if _, ok := FromGFD(sf); ok {
		t.Error("star components are not GCFD-expressible")
	}
	// Single node counts as a trivial path.
	single := pattern.New()
	single.AddNode("x", "a")
	sg := core.MustNew("s", single, nil, []core.Literal{core.Const("x", "v", "1")})
	if _, ok := FromGFD(sg); !ok {
		t.Error("a single node is a trivial path")
	}
}

func TestConvertSetCountsDropped(t *testing.T) {
	set := core.MustNewSet(pathRule("p"), cyclicRule("c"), branchingRule("b"))
	rules, dropped := ConvertSet(set)
	if len(rules) != 1 || dropped != 2 {
		t.Errorf("converted %d, dropped %d", len(rules), dropped)
	}
}

func TestGCFDDetectMatchesGFDOnPaths(t *testing.T) {
	// On path-expressible rules GCFD detection equals GFD detection.
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 120, Seed: 5})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.05, Seed: 6, Kinds: []gen.NoiseKind{gen.AttributeNoise}})
	rule := pathRule("p")
	// Give persons a country attribute matching their country, with some
	// noise already applied above (country attr won't exist -> rule only
	// fires when present; add it for a few nodes).
	for i, p := range g.NodesWithLabel("person") {
		if i%3 == 0 {
			g.SetAttr(p, "country", "country_0")
		}
	}
	set := core.MustNewSet(rule)
	want := validate.DetVio(g, set)
	gcfds, _ := ConvertSet(set)
	got := Detect(g, gcfds)
	if !got.Equal(want) {
		t.Errorf("GCFD found %d violations, GFD engine %d", len(got), len(want))
	}
}

func TestGCFDMissesCyclicViolations(t *testing.T) {
	// The Fig. 7 GFD-1 shape: person that has a child that is also its
	// parent. GCFDs cannot express it, so they catch nothing.
	g := graph.New(0, 0)
	a := g.AddNode("person", graph.Attrs{"val": "a"})
	b := g.AddNode("person", graph.Attrs{"val": "b"})
	g.MustAddEdge(a, b, "has_child")
	g.MustAddEdge(b, a, "has_child")

	set := core.MustNewSet(cyclicRule("cyc"))
	want := validate.DetVio(g, set)
	if len(want) == 0 {
		t.Fatal("the GFD engine must flag the parent/child cycle")
	}
	gcfds, dropped := ConvertSet(set)
	if dropped != 1 || len(Detect(g, gcfds)) != 0 {
		t.Error("GCFD must drop the cyclic rule and find nothing")
	}
}

func TestBigDansingMatchesGFDEngine(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 100, Seed: 7})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.05, Seed: 8})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 5, PatternSize: 4, TwoCompFrac: 0.4, Seed: 9})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	want := validate.DetVio(g, set)
	rel := Encode(g)
	got := DetectJoins(g, rel, set, 4)
	if !got.Equal(want) {
		t.Fatalf("join engine found %d violations, GFD engine %d", len(got), len(want))
	}
}

func TestBigDansingIsolatedNodesAndInjectivity(t *testing.T) {
	// Pattern of two isolated same-label nodes: the join plan must scan
	// the node table and enforce distinctness.
	g := graph.New(0, 0)
	g.AddNode("R", graph.Attrs{"A": "1", "B": "x"})
	g.AddNode("R", graph.Attrs{"A": "1", "B": "y"})
	f := core.FromFD("fd", "R", []string{"A"}, []string{"B"})
	set := core.MustNewSet(f)
	want := validate.DetVio(g, set)
	if len(want) != 2 {
		t.Fatalf("expected both orders to violate, got %d", len(want))
	}
	got := DetectJoins(g, Encode(g), set, 2)
	if !got.Equal(want) {
		t.Errorf("join engine: %v, want %v", got, want)
	}
}

func TestBigDansingWildcardLabels(t *testing.T) {
	g := graph.New(0, 0)
	b := g.AddNode("bird", graph.Attrs{"can_fly": "true"})
	p := g.AddNode("penguin", graph.Attrs{"can_fly": "false"})
	g.MustAddEdge(p, b, "is_a")

	q := pattern.New()
	x := q.AddNode("x", pattern.Wildcard)
	y := q.AddNode("y", pattern.Wildcard)
	q.AddEdge(y, x, "is_a")
	f := core.MustNew("isa", q, nil, []core.Literal{core.VarEq("x", "can_fly", "y", "can_fly")})
	set := core.MustNewSet(f)

	want := validate.DetVio(g, set)
	if len(want) != 1 {
		t.Fatalf("penguin inconsistency not found by reference: %d", len(want))
	}
	got := DetectJoins(g, Encode(g), set, 1)
	if !got.Equal(want) {
		t.Error("join engine misses the wildcard is_a violation")
	}
}

func TestBigDansingSlowerThanPivotEngine(t *testing.T) {
	// Sanity on the Fig. 9 shape: the join engine explores strictly more
	// intermediate tuples. We proxy "slower" by comparing the result with
	// equal answers under a modest time budget rather than wall clock
	// (timing asserts flake); the benchmark suite measures the 4.6×.
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 80, Seed: 10})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 3, PatternSize: 4, Seed: 11})
	if set.Len() == 0 {
		t.Skip("no rules")
	}
	rel := Encode(g)
	if got, want := DetectJoins(g, rel, set, 2), validate.DetVio(g, set); !got.Equal(want) {
		t.Error("join engine result mismatch")
	}
}

func TestGCFDDetectBMultiWorkerLanes(t *testing.T) {
	// n workers sharding rules over per-worker lanes must produce exactly
	// the single-worker violation set, and each worker must emit on its
	// own lane.
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 120, Seed: 5})
	gen.Inject(g, gen.NoiseConfig{Rate: 0.08, Seed: 6, Kinds: []gen.NoiseKind{gen.AttributeNoise}})
	for i, p := range g.NodesWithLabel("person") {
		if i%3 == 0 {
			g.SetAttr(p, "country", "country_0")
		}
	}
	rules := []*GCFD{}
	for i := 0; i < 4; i++ {
		c, ok := FromGFD(pathRule(string(rune('a' + i))))
		if !ok {
			t.Fatal("path rule must convert")
		}
		rules = append(rules, c)
	}
	b := validate.NewBundle(g, core.MustNewSet())
	want := validate.NewCollectSink(1)
	if err := DetectB(context.Background(), b, rules, 1, want); err != nil {
		t.Fatal(err)
	}
	wr := want.Report()
	wr.Sort()
	if len(wr) == 0 {
		t.Fatal("fixture produced no violations; test is vacuous")
	}
	got := validate.NewCollectSink(4)
	if err := DetectB(context.Background(), b, rules, 4, got); err != nil {
		t.Fatal(err)
	}
	gr := got.Report()
	gr.Sort()
	if !gr.Equal(wr) {
		t.Fatalf("4-worker run found %d violations, 1-worker %d", len(gr), len(wr))
	}
}

func TestGCFDDetectBSinkStopAndCancel(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 120, Seed: 5})
	for i, p := range g.NodesWithLabel("person") {
		if i%2 == 0 {
			g.SetAttr(p, "country", "nowhere")
		}
	}
	c, _ := FromGFD(pathRule("p"))
	rules := []*GCFD{c}
	b := validate.NewBundle(g, core.MustNewSet())
	var n atomic.Int32
	err := DetectB(context.Background(), b, rules, 2, validate.Callback(func(validate.Violation) bool {
		n.Add(1)
		return false
	}))
	if err != nil {
		t.Fatalf("sink stop must not error: %v", err)
	}
	if got := n.Load(); got < 1 || got > 2 {
		// With 2 workers at most one in-flight emit per worker can land
		// before the stop flag latches.
		t.Fatalf("sink saw %d violations after refusing the first", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DetectB(ctx, b, rules, 2, validate.NewCollectSink(2)); err == nil {
		t.Skip("enumeration finished before the first cancellation probe")
	}
}
