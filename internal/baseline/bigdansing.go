package baseline

import (
	"context"
	"sync"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// Relational is the relational encoding of a property graph that a
// BigDansing-style rule engine operates on: nodes(id, label),
// edges(src, label, dst) and attrs(id, attr, val) tables, with the hash
// indexes a generic relational engine would build (edges by label, nodes
// by label).
type Relational struct {
	g            *graph.Graph // retained only for attribute lookups in dependency checks
	nodesByLabel map[string][]graph.NodeID
	edgesByLabel map[string][]graph.Edge
	allEdges     []graph.Edge
	allNodes     []graph.NodeID
}

// Encode builds the relational encoding of g.
func Encode(g *graph.Graph) *Relational {
	r := &Relational{
		g:            g,
		nodesByLabel: make(map[string][]graph.NodeID),
		edgesByLabel: make(map[string][]graph.Edge),
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		r.allNodes = append(r.allNodes, id)
		r.nodesByLabel[g.Label(id)] = append(r.nodesByLabel[g.Label(id)], id)
	}
	g.Edges(func(e graph.Edge) bool {
		r.allEdges = append(r.allEdges, e)
		r.edgesByLabel[e.Label] = append(r.edgesByLabel[e.Label], e)
		return true
	})
	return r
}

// binding is a partial assignment of pattern nodes, the intermediate tuple
// of the join pipeline. Index -1 marks unbound.
type binding []graph.NodeID

// DetectJoins evaluates every rule as a left-deep join over the edge
// relation — one join per pattern edge, node-table scans for isolated
// pattern nodes — followed by the isomorphism (pairwise-distinctness)
// filter that BigDansing users must hand-code, and finally the X → Y
// check. Parallelism degree n splits the outermost scan. The results
// coincide with the GFD engine's; only the evaluation strategy (and its
// intermediate sizes) differs.
func DetectJoins(g *graph.Graph, rel *Relational, set *core.Set, n int) validate.Report {
	if n < 1 {
		n = 1
	}
	sink := validate.NewCollectSink(n)
	_ = DetectJoinsB(context.Background(), validate.NewBundle(g, set), rel, n, sink)
	out := sink.Report()
	out.Sort()
	return out
}

// DetectJoinsB is DetectJoins over a prepared bundle with cooperative
// cancellation and streaming delivery: the sink receives violations as
// the join pipelines find them, each worker emitting on its own lane, a
// sink refusal stops every worker, and a cancelled context aborts with
// its error. The session layer runs EngineBigDansing through it.
//
// A panicking join worker is recovered into a *cluster.WorkerError while
// the surviving workers drain their chunks; the run then continues into
// the remaining rules and returns a *validate.PartialError (errors.Is
// validate.ErrPartial, Unit -1 — the join pipeline has no retryable unit
// granularity) listing every death.
func DetectJoinsB(ctx context.Context, b *validate.Bundle, rel *Relational, n int, sink validate.Sink) error {
	if n < 1 {
		n = 1
	}
	// Even a relational engine gets the interned-dependency check: the
	// final X → Y filter runs each rule's compiled literal program against
	// the frozen attribute arena (the join pipeline itself — the part the
	// comparison measures — stays relational).
	snap := b.Topo()
	ls := newLaneSink(sink)
	var failures []validate.UnitFailure
	for _, f := range b.Set().Rules() {
		if err := ctx.Err(); err != nil {
			return err
		}
		cont, errs := detectOneJoin(ctx, b.Graph(), snap, rel, f, b.Program(f), n, ls)
		for _, werr := range errs {
			failures = append(failures, validate.UnitFailure{Unit: -1, Group: -1, Attempts: 1, Err: werr})
		}
		if !cont {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(failures) > 0 {
		return &validate.PartialError{Failures: failures}
	}
	return nil
}

// detectOneJoin runs one rule's join pipeline; it returns false when the
// sink stopped the detection, plus one *cluster.WorkerError per worker
// that died (recovered panics — the surviving workers drained regardless).
func detectOneJoin(ctx context.Context, g *graph.Graph, snap core.AttrSource, rel *Relational, f *core.GFD, prog *core.LiteralProgram, n int, ls *laneSink) (bool, []error) {
	q := f.Q
	nNodes := q.NumNodes()
	if nNodes == 0 {
		return true, nil
	}
	plan := joinPlan(q)

	// Outer scan: the first plan step's tuples, split across n workers.
	// Workers share the lane sink's stop flag: an emit refusal or context
	// expiry seen by any of them halts the rest at their next outer tuple.
	firstTuples := stepTuples(rel, q, plan[0])
	chunks := splitChunks(len(firstTuples), n)
	deaths := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					deaths[w] = cluster.Recovered(w, -1, r)
				}
			}()
			for i, ti := range chunks[w] {
				if ls.stopped() {
					return
				}
				if i%64 == 0 && ctx.Err() != nil {
					ls.stop.Store(true)
					return
				}
				b := make(binding, nNodes)
				for i := range b {
					b[i] = graph.Invalid
				}
				if !applyStep(q, plan[0], firstTuples[ti], b) {
					continue
				}
				if !labelsOK(g, q, plan[0], b) {
					continue
				}
				if !joinRest(g, snap, rel, f, prog, plan, 1, b, ls, w) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var errs []error
	for _, e := range deaths {
		if e != nil {
			errs = append(errs, e)
		}
	}
	return !ls.stopped(), errs
}

// planStep is one join step: either a pattern edge or an isolated node
// scan.
type planStep struct {
	edge   int // pattern edge index, or -1
	node   int // pattern node index for isolated scans
	isEdge bool
}

// joinPlan orders the pattern edges left-deep (generator order — a generic
// engine without graph statistics) and appends scans for edge-free nodes.
func joinPlan(q *pattern.Pattern) []planStep {
	var plan []planStep
	covered := make([]bool, q.NumNodes())
	for ei := range q.Edges {
		plan = append(plan, planStep{edge: ei, isEdge: true})
		covered[q.Edges[ei].From] = true
		covered[q.Edges[ei].To] = true
	}
	for v := 0; v < q.NumNodes(); v++ {
		if !covered[v] {
			plan = append(plan, planStep{node: v, edge: -1})
		}
	}
	return plan
}

// tuple is one row feeding a join step.
type tuple struct {
	e      graph.Edge
	v      graph.NodeID
	isEdge bool
}

func stepTuples(rel *Relational, q *pattern.Pattern, s planStep) []tuple {
	if s.isEdge {
		e := q.Edges[s.edge]
		var rows []graph.Edge
		if e.Label == pattern.Wildcard {
			rows = rel.allEdges
		} else {
			rows = rel.edgesByLabel[e.Label]
		}
		out := make([]tuple, len(rows))
		for i, r := range rows {
			out[i] = tuple{e: r, isEdge: true}
		}
		return out
	}
	label := q.Nodes[s.node].Label
	var rows []graph.NodeID
	if label == pattern.Wildcard {
		rows = rel.allNodes
	} else {
		rows = rel.nodesByLabel[label]
	}
	out := make([]tuple, len(rows))
	for i, r := range rows {
		out[i] = tuple{v: r}
	}
	return out
}

// applyStep merges a tuple into the binding, checking node-label selections
// and join keys; returns false on mismatch.
func applyStep(q *pattern.Pattern, s planStep, t tuple, b binding) bool {
	if s.isEdge {
		e := q.Edges[s.edge]
		return bindNode(q, b, e.From, t.e.From) && bindNode(q, b, e.To, t.e.To)
	}
	return bindNode(q, b, s.node, t.v)
}

func bindNode(q *pattern.Pattern, b binding, pv int, g graph.NodeID) bool {
	if b[pv] != graph.Invalid {
		return b[pv] == g
	}
	b[pv] = g
	return true
}

// joinRest extends the binding through the remaining plan steps; it
// returns false when worker w's emission stopped the detection.
func joinRest(g *graph.Graph, snap core.AttrSource, rel *Relational, f *core.GFD, prog *core.LiteralProgram, plan []planStep, depth int, b binding, ls *laneSink, w int) bool {
	if depth == len(plan) {
		return finishBinding(snap, f, prog, b, ls, w)
	}
	s := plan[depth]
	for _, t := range stepTuples(rel, f.Q, s) {
		nb := append(binding(nil), b...)
		if !applyStep(f.Q, s, t, nb) {
			continue
		}
		if !labelsOK(g, f.Q, s, nb) {
			continue
		}
		if !joinRest(g, snap, rel, f, prog, plan, depth+1, nb, ls, w) {
			return false
		}
	}
	return true
}

// labelsOK applies the node-label selection predicates for the nodes the
// step just bound (edge tables carry no node labels, so a relational plan
// must re-check them).
func labelsOK(g *graph.Graph, q *pattern.Pattern, s planStep, b binding) bool {
	check := func(pv int) bool {
		return pattern.LabelMatches(q.Nodes[pv].Label, g.Label(b[pv]))
	}
	if s.isEdge {
		e := q.Edges[s.edge]
		return check(e.From) && check(e.To)
	}
	return check(s.node)
}

// finishBinding applies the hand-coded isomorphism filter (pairwise
// distinctness) and the compiled dependency check; it returns false when
// worker w's emission stopped the detection.
func finishBinding(snap core.AttrSource, f *core.GFD, prog *core.LiteralProgram, b binding, ls *laneSink, w int) bool {
	for i := 0; i < len(b); i++ {
		if b[i] == graph.Invalid {
			return true
		}
		for j := i + 1; j < len(b); j++ {
			if b[i] == b[j] {
				return true
			}
		}
	}
	m := core.Match(b)
	if prog.IsViolation(snap, m) {
		return ls.Emit(w, validate.Violation{Rule: f.Name, Match: append(core.Match(nil), m...)})
	}
	return true
}

func splitChunks(total, n int) [][]int {
	out := make([][]int, n)
	for i := 0; i < total; i++ {
		out[i%n] = append(out[i%n], i)
	}
	return out
}
