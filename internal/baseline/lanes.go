package baseline

import (
	"sync/atomic"

	"gfd/internal/validate"
)

// laneSink routes worker emissions onto per-worker sink lanes with one
// shared stop flag: the first refused emission latches stop, and every
// worker observes it at its next emit or stopped() probe. It is the
// baselines' unit-lane discipline — each worker owns lane w, so lane-aware
// sinks (CollectSink shards, PipeSink bounded lanes) see the same
// contention-free layout the native engines give them, instead of a
// callback adapter funneling every worker through lane 0.
type laneSink struct {
	sink validate.Sink
	stop atomic.Bool
}

func newLaneSink(sink validate.Sink) *laneSink { return &laneSink{sink: sink} }

// stopped reports whether any worker's emission was refused (or a worker
// latched stop for cancellation).
func (ls *laneSink) stopped() bool { return ls.stop.Load() }

// Emit delivers v on worker w's lane; false once the detection should
// stop. A nil sink accepts everything (timing-only runs).
func (ls *laneSink) Emit(w int, v validate.Violation) bool {
	if ls.stop.Load() {
		return false
	}
	if ls.sink != nil && !ls.sink.Emit(w, v) {
		ls.stop.Store(true)
		return false
	}
	return true
}
