// Package baseline implements the two comparison systems of Exp-5
// (Appendix, "Compared with Other Approaches"):
//
//   - GCFDs, the extension of CFDs to RDF of He et al. [23], whose
//     patterns are restricted to conjunctive *paths* — no general graph
//     patterns, no cycles, no cross-path identity tests. Rules outside
//     that fragment are inexpressible and silently dropped, which is what
//     costs the baseline recall.
//   - A BigDansing-style detector [28] that encodes the graph as
//     node/edge/attribute relations and evaluates each rule as a chain of
//     relational joins with a final isomorphism (distinctness) filter — the
//     same answers as the GFD engine, at the cost of join-sized
//     intermediates instead of pivot-localized search.
package baseline

import (
	"context"
	"sync"
	"sync/atomic"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// GCFD is a conditional functional dependency over a single path pattern.
type GCFD struct {
	Name string
	Path *pattern.Pattern // a simple directed path
	X, Y []core.Literal

	once sync.Once
	rule *core.GFD // the GFD encoding, compiled once per GCFD
}

// compiled returns the GCFD's GFD encoding, built lazily so that
// hand-constructed GCFDs work and repeated Detect calls stop re-encoding
// the rule (its pattern and literal lowerings are memoized on the GFD).
func (c *GCFD) compiled() *core.GFD {
	c.once.Do(func() {
		if c.rule == nil {
			c.rule = core.MustNew(c.Name, c.Path, c.X, c.Y)
		}
	})
	return c.rule
}

// FromGFD converts a GFD into a GCFD when expressible. A GCFD is a CFD
// whose scope is a conjunctive *path*: its "relation" is the set of path
// instances, and — CFD semantics being pairwise over tuples — a dependency
// may compare two instances of the same path. Hence expressible patterns
// are (a) one simple directed path (the CFD applies per instance or per
// instance pair) or (b) two isomorphic simple-path components (explicit
// pair form). Branching, cyclic, or heterogeneous patterns — the shapes
// that motivate GFDs, including all of the paper's Fig. 7 rules — are
// inexpressible. Returns false for those.
func FromGFD(f *core.GFD) (*GCFD, bool) {
	comps := f.Q.Components()
	switch len(comps) {
	case 1:
		if !isSimplePath(f.Q) {
			return nil, false
		}
	case 2:
		if len(comps[0]) != len(comps[1]) {
			return nil, false
		}
		a := subPathPattern(f.Q, comps[0])
		b := subPathPattern(f.Q, comps[1])
		if a == nil || b == nil {
			return nil, false
		}
		if !pattern.EmbeddableExact(a, b) || !pattern.EmbeddableExact(b, a) {
			return nil, false
		}
	default:
		return nil, false
	}
	// The converted GCFD shares the source GFD as its compiled encoding
	// (the scope and dependency are unchanged), so pattern and literal
	// lowerings memoized on the rule are shared with the GFD engine.
	return &GCFD{Name: f.Name, Path: f.Q, X: f.X, Y: f.Y, rule: f}, true
}

// subPathPattern extracts the sub-pattern induced by a component's nodes,
// returning nil unless it is a simple directed path.
func subPathPattern(q *pattern.Pattern, members []int) *pattern.Pattern {
	remap := make(map[int]int, len(members))
	sub := pattern.New()
	for _, v := range members {
		remap[v] = sub.AddNode(q.Nodes[v].Var, q.Nodes[v].Label)
	}
	for _, e := range q.Edges {
		fi, okF := remap[e.From]
		ti, okT := remap[e.To]
		if okF && okT {
			sub.AddEdge(fi, ti, e.Label)
		}
	}
	if !isSimplePath(sub) {
		return nil
	}
	return sub
}

// ConvertSet converts every expressible rule of a GFD set, returning the
// GCFD rules plus the number dropped as inexpressible.
func ConvertSet(s *core.Set) (rules []*GCFD, dropped int) {
	var out []*GCFD
	for _, f := range s.Rules() {
		if c, ok := FromGFD(f); ok {
			out = append(out, c)
		} else {
			dropped++
		}
	}
	return out, dropped
}

// isSimplePath reports whether q is a single directed chain
// v0 -> v1 -> ... -> vk with no extra edges.
func isSimplePath(q *pattern.Pattern) bool {
	n := q.NumNodes()
	if n == 0 || q.NumEdges() != n-1 {
		return false
	}
	starts := 0
	for v := 0; v < n; v++ {
		out, in := len(q.OutEdges(v)), len(q.InEdges(v))
		if out > 1 || in > 1 {
			return false
		}
		if in == 0 {
			starts++
		}
	}
	if starts != 1 {
		return false
	}
	// n-1 edges, max in/out degree 1, single source: a simple chain as
	// long as it is connected, which the degree constraints plus edge
	// count guarantee (a second component would need its own source).
	return true
}

// Detect runs GCFD validation: path matches are enumerated (path patterns
// are a special case the shared matcher handles in linear time per match)
// and checked against X → Y via the compiled literal program, exactly as
// the GFD engine does. Violations are reported in the same format so
// accuracy is directly comparable.
func Detect(g *graph.Graph, rules []*GCFD) validate.Report {
	sink := validate.NewCollectSink(1)
	_ = DetectB(context.Background(), validate.NewBundle(g, core.MustNewSet()), rules, 1, sink)
	out := sink.Report()
	out.Sort()
	return out
}

// DetectB is Detect over a prepared bundle with cooperative cancellation
// and streaming delivery: n workers take rules round-robin, each with its
// own matcher, and emit violations on their own sink lane as they are
// found (unsorted). A sink refusal stops every worker at its next probe,
// and a cancelled context aborts with its error (checked strided inside
// candidate enumeration, so a stop lands mid-class even on matchless
// stretches). The session layer runs EngineGCFD through it so a prepared
// rule conversion is validated without re-freezing or re-encoding
// anything.
//
// A panicking worker is recovered into a *cluster.WorkerError while the
// survivors finish their rules; the run then returns a
// *validate.PartialError (Unit -1 — a dead worker's remaining rules are
// not retried) listing every death.
func DetectB(ctx context.Context, b *validate.Bundle, rules []*GCFD, n int, sink validate.Sink) error {
	if n < 1 {
		n = 1
	}
	if n > len(rules) {
		n = max(len(rules), 1)
	}
	snap := b.Topo()
	ls := newLaneSink(sink)
	var aborted atomic.Bool
	deaths := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					deaths[w] = cluster.Recovered(w, -1, r)
				}
			}()
			m := match.NewMatcher(snap)
			checked := 0
			opts := match.Options{Halt: func() bool {
				if ls.stopped() {
					return true
				}
				if checked++; checked%64 == 0 && ctx.Err() != nil {
					aborted.Store(true)
					return true
				}
				return false
			}}
			for ri := w; ri < len(rules); ri += n {
				if ls.stopped() || aborted.Load() {
					return
				}
				c := rules[ri]
				p := b.Program(c.compiled())
				for h := range m.Matches(c.Path, opts) {
					if p.IsViolation(snap, h) {
						if !ls.Emit(w, validate.Violation{Rule: c.Name, Match: append(core.Match(nil), h...)}) {
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	var failures []validate.UnitFailure
	for _, e := range deaths {
		if e != nil {
			failures = append(failures, validate.UnitFailure{Unit: -1, Group: -1, Attempts: 1, Err: e})
		}
	}
	if len(failures) > 0 {
		return &validate.PartialError{Failures: failures}
	}
	return nil
}
