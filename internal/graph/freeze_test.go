package graph

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"
)

// randomFreezeGraph builds a random labeled/attributed graph exercising
// everything the freeze pipeline shards: skewed degrees, nodes without
// attributes, and attribute values colliding with node and edge labels in
// the shared symbol namespace (the ordering-sensitive case for
// deterministic interning).
func randomFreezeGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"person", "org", "city", "product", "_x"}
	elabels := []string{"knows", "works_at", "in", "likes"}
	attrs := []string{"name", "val", "country", "knows"} // "knows" collides with an edge label
	g := New(n, n*3)
	for i := 0; i < n; i++ {
		var a Attrs
		if rng.Intn(4) != 0 {
			a = make(Attrs)
			for _, k := range attrs {
				if rng.Intn(2) == 0 {
					switch rng.Intn(3) {
					case 0:
						a[k] = fmt.Sprintf("v%d", rng.Intn(n/2+1))
					case 1:
						a[k] = labels[rng.Intn(len(labels))] // value == node label
					default:
						a[k] = elabels[rng.Intn(len(elabels))] // value == edge label
					}
				}
			}
		}
		g.AddNode(labels[rng.Intn(len(labels))], a)
	}
	m := rng.Intn(3*n + 1)
	for i := 0; i < m; i++ {
		from := NodeID(rng.Intn(n))
		if rng.Intn(5) == 0 { // skew: hubs
			from = NodeID(rng.Intn(n/10 + 1))
		}
		to := NodeID(rng.Intn(n))
		g.MustAddEdge(from, to, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// requireSnapshotsEqual asserts byte-identical snapshots: symbol table,
// CSR arrays (both halves), attribute arena, class ranges.
func requireSnapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if !slices.Equal(want.syms.names, got.syms.names) {
		t.Fatalf("symbol tables differ:\nserial   %v\nparallel %v", want.syms.names, got.syms.names)
	}
	if !slices.Equal(want.labels, got.labels) {
		t.Fatalf("label arrays differ")
	}
	if !slices.Equal(want.outOff, got.outOff) || !slices.Equal(want.out, got.out) {
		t.Fatalf("out CSR differs")
	}
	if !slices.Equal(want.inOff, got.inOff) || !slices.Equal(want.in, got.in) {
		t.Fatalf("in CSR differs")
	}
	if !slices.Equal(want.attrOff, got.attrOff) || !slices.Equal(want.attrPairs, got.attrPairs) {
		t.Fatalf("attribute arena differs")
	}
	if !slices.Equal(want.classOff, got.classOff) || !slices.Equal(want.classes, got.classes) {
		t.Fatalf("label classes differ")
	}
}

// TestParallelFreezeEquivalence pins the parallel builder's differential
// guarantee: for random graphs and any worker count, buildSnapshotParallel
// emits a snapshot byte-identical to the serial builder's. Run with
// -cpu 1,4 in CI so the GOMAXPROCS==1 environment exercises it too.
func TestParallelFreezeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, n := range []int{1, 7, 100, 500} {
			g := randomFreezeGraph(seed, n)
			want := g.BuildSnapshot(1)
			for _, w := range []int{2, 3, 4, 7, 16} {
				got := g.BuildSnapshot(w)
				requireSnapshotsEqual(t, want, got)
			}
		}
	}
}

// FuzzFreezeParallel fuzzes the same differential guarantee over the
// (seed, size, workers) space.
func FuzzFreezeParallel(f *testing.F) {
	f.Add(int64(42), 64, 4)
	f.Add(int64(7), 200, 3)
	f.Add(int64(1), 1, 2)
	f.Fuzz(func(t *testing.T, seed int64, n, workers int) {
		n = n%700 + 1
		if n < 0 {
			n = -n + 1
		}
		workers = workers%16 + 2
		if workers < 2 {
			workers = 2
		}
		g := randomFreezeGraph(seed, n)
		requireSnapshotsEqual(t, g.BuildSnapshot(1), g.BuildSnapshot(workers))
	})
}

// TestConcurrentFreezeSharesOneBuild is the -race target for the
// build-once guard: many concurrent Freeze callers during mutation-free
// reads must share a single construction (one snapshot pointer, one
// build), with readers of the published snapshot racing freely alongside.
func TestConcurrentFreezeSharesOneBuild(t *testing.T) {
	g := randomFreezeGraph(3, 400)
	const callers = 16
	snaps := make([]*Snapshot, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			s := g.Freeze()
			snaps[i] = s
			// Mutation-free reads concurrent with other Freeze callers.
			for v := 0; v < s.NumNodes(); v += 37 {
				_ = s.Out(NodeID(v))
				_, _ = s.AttrSym(NodeID(v), 1)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("caller %d got a different snapshot", i)
		}
	}
	if builds := g.SnapshotBuilds(); builds != 1 {
		t.Fatalf("SnapshotBuilds = %d, want 1 (build-once guard)", builds)
	}
}

// TestSetFreezeWorkersOverride pins the knob precedence: an explicit
// override wins over the environment/GOMAXPROCS default, and resetting it
// restores the default resolution.
func TestSetFreezeWorkersOverride(t *testing.T) {
	defer SetFreezeWorkers(0)
	SetFreezeWorkers(3)
	if got := FreezeWorkers(); got != 3 {
		t.Fatalf("FreezeWorkers after SetFreezeWorkers(3) = %d", got)
	}
	SetFreezeWorkers(0)
	if got := FreezeWorkers(); got < 1 {
		t.Fatalf("default FreezeWorkers = %d, want >= 1", got)
	}
}

// BenchmarkBuildSnapshot prices the freeze pipeline serial vs parallel on
// one mid-sized graph (the gfdbench -exp freeze sweep covers sizes and
// worker counts; this is the in-tree smoke).
func BenchmarkBuildSnapshot(b *testing.B) {
	g := randomFreezeGraph(1, 20000)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.BuildSnapshot(w)
			}
		})
	}
}
