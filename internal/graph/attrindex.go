package graph

import "sort"

// AttrIndex is the mutable counterpart of the Snapshot's interned
// attribute arena: per-node (Name, Val) pairs sorted by Name, maintained
// incrementally as the graph mutates. An Overlay embeds one (borrowing
// the base snapshot's arena copy-on-write, see newAttrIndexOver) so
// literal evaluation (core.LiteralProgram) runs on integer compares on
// the incremental path too, without re-freezing the whole graph per
// update batch.
//
// Unlike a Snapshot's table, an AttrIndex's Symbols table keeps growing:
// updates intern new values on the fly. Interned codes are stable, so
// literal programs compiled against the table stay valid as it grows —
// with one caveat: a constant absent at compile time would lower to NoSym
// and wrongly stay "never matches" after the value later appears. Callers
// therefore intern every rule constant up front (GFD.InternLiterals)
// before compiling.
//
// AttrIndex is not safe for concurrent mutation; the incremental detector
// serializes updates by construction.
type AttrIndex struct {
	syms  *Symbols
	pairs [][]AttrPair // indexed by NodeID, each sorted by Name

	// borrowed marks tuples that alias a frozen snapshot's arena
	// (newAttrIndexOver): those are copied before the first write so the
	// shared snapshot stays immutable. nil for indexes that own all
	// tuples (NewAttrIndex).
	borrowed []bool
}

// NewAttrIndex builds the index of g's current attribute tuples. Names are
// interned from one sorted pass over the distinct set (deterministic codes,
// mirroring buildSnapshot); values in (node, sorted name) order.
func NewAttrIndex(g *Graph) *AttrIndex {
	ix := &AttrIndex{syms: NewSymbols(), pairs: make([][]AttrPair, g.NumNodes())}
	distinct := make(map[string]struct{}, 8)
	for _, a := range g.attrs {
		for k := range a {
			distinct[k] = struct{}{}
		}
	}
	names := make([]string, 0, len(distinct))
	for k := range distinct {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ix.syms.Intern(k)
	}
	for v := range g.attrs {
		ix.pairs[v] = ix.internTuple(g.attrs[v])
	}
	return ix
}

// newAttrIndexOver builds an index over a frozen snapshot's interned
// attribute arena without re-interning anything: every tuple is borrowed
// as a capacity-capped subslice of the arena and copied only when first
// written (SetAttr), and the snapshot's own symbol table is adopted — the
// Overlay's one-namespace requirement. O(|V|) slice headers, no tuple
// copying.
func newAttrIndexOver(s *Snapshot) *AttrIndex {
	n := s.NumNodes()
	ix := &AttrIndex{
		syms:     s.syms,
		pairs:    make([][]AttrPair, n),
		borrowed: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		lo, hi := s.attrOff[v], s.attrOff[v+1]
		if lo == hi {
			continue
		}
		ix.pairs[v] = s.attrPairs[lo:hi:hi]
		ix.borrowed[v] = true
	}
	return ix
}

func (ix *AttrIndex) internTuple(a Attrs) []AttrPair {
	if len(a) == 0 {
		return nil
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ps := make([]AttrPair, 0, len(keys))
	for _, k := range keys {
		ps = append(ps, AttrPair{Name: ix.syms.Intern(k), Val: ix.syms.Intern(a[k])})
	}
	sortAttrPairs(ps)
	return ps
}

// Syms returns the index's growing symbol table.
func (ix *AttrIndex) Syms() *Symbols { return ix.syms }

// AttrSym returns the interned value of attribute name on node v — the
// same contract as Snapshot.AttrSym, over the mutable pairs.
func (ix *AttrIndex) AttrSym(v NodeID, name Sym) (Sym, bool) {
	return lookupAttr(ix.pairs[v], name)
}

// AddNode appends the tuple of a freshly inserted node (call in the same
// order nodes are added to the graph; a nil attrs is allowed).
func (ix *AttrIndex) AddNode(attrs Attrs) {
	ix.pairs = append(ix.pairs, ix.internTuple(attrs))
}

// SetAttr upserts attribute name = val on node v, interning both. A
// borrowed tuple is copied before the write (copy-on-write over the
// snapshot arena).
func (ix *AttrIndex) SetAttr(v NodeID, name, val string) {
	n, vl := ix.syms.Intern(name), ix.syms.Intern(val)
	if ix.borrowed != nil && int(v) < len(ix.borrowed) && ix.borrowed[v] {
		ix.pairs[v] = append([]AttrPair(nil), ix.pairs[v]...)
		ix.borrowed[v] = false
	}
	ps := ix.pairs[v]
	pos := sort.Search(len(ps), func(i int) bool { return ps[i].Name >= n })
	if pos < len(ps) && ps[pos].Name == n {
		ps[pos].Val = vl
		return
	}
	ps = append(ps, AttrPair{})
	copy(ps[pos+1:], ps[pos:])
	ps[pos] = AttrPair{Name: n, Val: vl}
	ix.pairs[v] = ps
}
