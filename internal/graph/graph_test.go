package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Graph {
	t.Helper()
	g := New(0, 0)
	a := g.AddNode("person", Attrs{"name": "ann", "val": "1"})
	b := g.AddNode("person", Attrs{"name": "bob"})
	c := g.AddNode("city", Attrs{"val": "edi"})
	g.MustAddEdge(a, b, "knows")
	g.MustAddEdge(a, c, "lives_in")
	g.MustAddEdge(b, c, "lives_in")
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0, 0)
	for i := 0; i < 5; i++ {
		if id := g.AddNode("x", nil); id != NodeID(i) {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeRejectsMissingNodes(t *testing.T) {
	g := New(0, 0)
	g.AddNode("x", nil)
	if err := g.AddEdge(0, 7, "e"); err == nil {
		t.Fatal("expected error for missing target")
	}
	if err := g.AddEdge(-1, 0, "e"); err == nil {
		t.Fatal("expected error for negative source")
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := buildSample(t)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Size() != 6 {
		t.Errorf("Size = %d, want 6", g.Size())
	}
}

func TestHasEdge(t *testing.T) {
	g := buildSample(t)
	if !g.HasEdge(0, 1, "knows") {
		t.Error("expected edge 0-[knows]->1")
	}
	if g.HasEdge(1, 0, "knows") {
		t.Error("edge direction must matter")
	}
	if g.HasEdge(0, 1, "lives_in") {
		t.Error("edge label must matter")
	}
	if !g.HasEdgeAnyLabel(0, 1) {
		t.Error("HasEdgeAnyLabel(0,1) should hold")
	}
	if g.HasEdgeAnyLabel(2, 0) {
		t.Error("HasEdgeAnyLabel(2,0) should not hold")
	}
}

func TestAttrSemantics(t *testing.T) {
	g := buildSample(t)
	if v, ok := g.Attr(0, "name"); !ok || v != "ann" {
		t.Errorf("Attr(0,name) = %q,%v", v, ok)
	}
	if _, ok := g.Attr(1, "val"); ok {
		t.Error("bob has no val attribute")
	}
	g.SetAttr(1, "val", "2")
	if v, ok := g.Attr(1, "val"); !ok || v != "2" {
		t.Errorf("SetAttr failed: %q,%v", v, ok)
	}
	// SetAttr on a node with nil attrs must allocate.
	id := g.AddNode("bare", nil)
	g.SetAttr(id, "k", "v")
	if v, _ := g.Attr(id, "k"); v != "v" {
		t.Error("SetAttr on nil-attrs node failed")
	}
}

func TestLabelIndex(t *testing.T) {
	g := buildSample(t)
	persons := g.NodesWithLabel("person")
	if len(persons) != 2 || persons[0] != 0 || persons[1] != 1 {
		t.Errorf("NodesWithLabel(person) = %v", persons)
	}
	if g.LabelCount("city") != 1 {
		t.Errorf("LabelCount(city) = %d", g.LabelCount("city"))
	}
	if got := g.Labels(); len(got) != 2 || got[0] != "city" || got[1] != "person" {
		t.Errorf("Labels() = %v", got)
	}
	if g.NodesWithLabel("nope") != nil {
		t.Error("unknown label should yield nil")
	}
}

func TestRelabelMaintainsIndex(t *testing.T) {
	g := buildSample(t)
	g.Relabel(1, "city")
	if g.Label(1) != "city" {
		t.Fatalf("Label(1) = %q", g.Label(1))
	}
	if g.LabelCount("person") != 1 {
		t.Errorf("person count = %d, want 1", g.LabelCount("person"))
	}
	cities := g.NodesWithLabel("city")
	if len(cities) != 2 || cities[0] != 1 || cities[1] != 2 {
		t.Errorf("city candidates = %v, want sorted [1 2]", cities)
	}
	// Relabeling away the last member deletes the class.
	g.Relabel(0, "robot")
	if g.LabelCount("person") != 0 {
		t.Error("person class should be empty")
	}
	// No-op relabel.
	g.Relabel(0, "robot")
	if g.LabelCount("robot") != 1 {
		t.Error("no-op relabel corrupted index")
	}
}

func TestNeighborhood(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 with an offshoot 1 -> 4.
	g := New(0, 0)
	for i := 0; i < 5; i++ {
		g.AddNode("n", nil)
	}
	g.MustAddEdge(0, 1, "e")
	g.MustAddEdge(1, 2, "e")
	g.MustAddEdge(2, 3, "e")
	g.MustAddEdge(1, 4, "e")

	tests := []struct {
		start NodeID
		c     int
		want  []NodeID
	}{
		{0, 0, []NodeID{0}},
		{0, 1, []NodeID{0, 1}},
		{0, 2, []NodeID{0, 1, 2, 4}},
		{3, 1, []NodeID{2, 3}}, // undirected: follows in-edges too
		{0, 10, []NodeID{0, 1, 2, 3, 4}},
	}
	for _, tc := range tests {
		got := g.Neighborhood(tc.start, tc.c)
		if len(got) != len(tc.want) {
			t.Errorf("Neighborhood(%d,%d) = %v, want %v", tc.start, tc.c, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Neighborhood(%d,%d) = %v, want %v", tc.start, tc.c, got, tc.want)
				break
			}
		}
	}
	if g.Neighborhood(99, 1) != nil {
		t.Error("missing node should yield nil neighborhood")
	}
}

func TestNeighborhoodSize(t *testing.T) {
	g := buildSample(t)
	// 1-hop of node 0: nodes {0,1,2}, induced edges all 3 -> size 6.
	if got := g.NeighborhoodSize(0, 1); got != 6 {
		t.Errorf("NeighborhoodSize(0,1) = %d, want 6", got)
	}
	if got := g.NeighborhoodSize(0, 0); got != 1 {
		t.Errorf("NeighborhoodSize(0,0) = %d, want 1", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildSample(t)
	sub, remap := g.InducedSubgraph([]NodeID{0, 2})
	if sub.NumNodes() != 2 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("sub edges = %d, want only 0->2 lives_in", sub.NumEdges())
	}
	if !sub.HasEdge(remap[0], remap[2], "lives_in") {
		t.Error("induced edge missing")
	}
	if v, _ := sub.Attr(remap[2], "val"); v != "edi" {
		t.Error("attributes must carry over")
	}
	// Duplicates in keep are tolerated.
	sub2, _ := g.InducedSubgraph([]NodeID{1, 1})
	if sub2.NumNodes() != 1 {
		t.Errorf("duplicate keep created %d nodes", sub2.NumNodes())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildSample(t)
	c := g.Clone()
	c.SetAttr(0, "name", "zed")
	if v, _ := g.Attr(0, "name"); v != "ann" {
		t.Error("clone shares attribute maps")
	}
	c.AddNode("extra", nil)
	if g.NumNodes() != 3 {
		t.Error("clone shares node storage")
	}
	if c.NumEdges() != g.NumEdges() {
		t.Error("clone lost edges")
	}
}

func TestEdgesIterationAndEarlyStop(t *testing.T) {
	g := buildSample(t)
	var seen []Edge
	g.Edges(func(e Edge) bool {
		seen = append(seen, e)
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("iterated %d edges", len(seen))
	}
	count := 0
	g.Edges(func(Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop iterated %d", count)
	}
}

func TestGraphIO(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, names, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %v vs %v", g2, g)
	}
	if id, ok := names["n0"]; !ok || g2.Label(id) != "person" {
		t.Error("node n0 lost")
	}
	if v, _ := g2.Attr(names["n0"], "name"); v != "ann" {
		t.Error("attribute lost in roundtrip")
	}
	if !g2.HasEdge(names["n0"], names["n1"], "knows") {
		t.Error("edge lost in roundtrip")
	}
}

func TestGraphIOQuotedAttrs(t *testing.T) {
	g := New(0, 0)
	g.AddNode("blog", Attrs{"keyword": "free prize draw"})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g2.Attr(0, "keyword"); v != "free prize draw" {
		t.Errorf("quoted attr = %q", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"node a",                     // missing label
		"node a x\nnode a y",         // duplicate
		"edge a e b",                 // unknown nodes
		"node a x\nedge a e",         // short edge
		"frob a b",                   // unknown directive
		"node a x k",                 // attribute without '='
		"node a x\nnode b y\nedge a", // malformed
	}
	for _, c := range cases {
		if _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
	// Comments and blank lines are fine.
	if _, _, err := Read(strings.NewReader("# hi\n\nnode a x\n")); err != nil {
		t.Errorf("comment handling: %v", err)
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet([]NodeID{3, 1, 2})
	if !s.Contains(1) || s.Contains(9) {
		t.Error("Contains broken")
	}
	var nilSet NodeSet
	if !nilSet.Contains(42) {
		t.Error("nil NodeSet must contain everything (whole-graph block)")
	}
	got := s.Sorted()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Sorted = %v", got)
	}
	s.Add(10)
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

// Property: the c-hop neighborhood is monotone in c and always contains
// the start node.
func TestNeighborhoodMonotoneProperty(t *testing.T) {
	f := func(seed int64, nNodes uint8, nEdges uint8) bool {
		n := int(nNodes%32) + 1
		g := New(n, 0)
		for i := 0; i < n; i++ {
			g.AddNode("x", nil)
		}
		r := seed
		next := func(mod int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int(r % int64(mod))
			if v < 0 {
				v = -v
			}
			return v
		}
		for e := 0; e < int(nEdges%64); e++ {
			g.MustAddEdge(NodeID(next(n)), NodeID(next(n)), "e")
		}
		start := NodeID(next(n))
		prev := 0
		for c := 0; c <= 4; c++ {
			nb := g.Neighborhood(start, c)
			if len(nb) < prev {
				return false
			}
			found := false
			for _, v := range nb {
				if v == start {
					found = true
				}
			}
			if !found {
				return false
			}
			prev = len(nb)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
