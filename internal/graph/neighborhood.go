package graph

import "slices"

// Neighborhood computes the set of nodes within c hops of start, treating
// edges as undirected (the paper's data blocks G_z̄ contain the c-neighbors
// of a pivot candidate; subgraph-isomorphism locality is undirected because
// pattern edges may point either way). The result includes start itself and
// is sorted by NodeID.
//
// c == 0 returns just {start}.
func (g *Graph) Neighborhood(start NodeID, c int) []NodeID {
	if !g.Has(start) {
		return nil
	}
	visited := map[NodeID]struct{}{start: {}}
	frontier := []NodeID{start}
	for hop := 0; hop < c && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, v := range frontier {
			for _, he := range g.out[v] {
				if _, seen := visited[he.To]; !seen {
					visited[he.To] = struct{}{}
					next = append(next, he.To)
				}
			}
			for _, he := range g.in[v] {
				if _, seen := visited[he.To]; !seen {
					visited[he.To] = struct{}{}
					next = append(next, he.To)
				}
			}
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(visited))
	for v := range visited {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// NeighborhoodSize returns |V'| + |E'| of the subgraph induced by the c-hop
// neighborhood of start, without materializing it. This is the |G_z̄| block
// size the workload model weighs work units by.
func (g *Graph) NeighborhoodSize(start NodeID, c int) int {
	nodes := g.Neighborhood(start, c)
	in := make(map[NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		in[v] = struct{}{}
	}
	size := len(nodes)
	for _, v := range nodes {
		for _, he := range g.out[v] {
			if _, ok := in[he.To]; ok {
				size++
			}
		}
	}
	return size
}

// Membership is the read side of a node set: what the matchers consult to
// restrict candidates to a data block. Implemented by NodeSet (hash set,
// convenient for ad-hoc blocks) and *EpochSet (stamp array, the engines'
// reusable zero-alloc block).
type Membership interface {
	Contains(id NodeID) bool
}

// NodeSet is a set of node IDs with O(1) membership, used to restrict
// matching to a data block.
type NodeSet map[NodeID]struct{}

// NewNodeSet builds a NodeSet from ids.
func NewNodeSet(ids []NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Contains reports set membership. A nil NodeSet contains everything, so a
// nil block means "match anywhere in G".
func (s NodeSet) Contains(id NodeID) bool {
	if s == nil {
		return true
	}
	_, ok := s[id]
	return ok
}

// Add inserts id.
func (s NodeSet) Add(id NodeID) { s[id] = struct{}{} }

// AddAll inserts every id of ids.
func (s NodeSet) AddAll(ids []NodeID) {
	for _, id := range ids {
		s[id] = struct{}{}
	}
}

// Len returns the number of members; 0 for nil.
func (s NodeSet) Len() int { return len(s) }

// Sorted returns the members in ascending order.
func (s NodeSet) Sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(ids []NodeID) { slices.Sort(ids) }
