package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text format is line-oriented:
//
//	# comment
//	node <name> <label> [attr=value ...]
//	edge <from> <label> <to>
//
// Node names are arbitrary tokens (no whitespace); they are mapped to dense
// NodeIDs in order of first appearance. Attribute values may be quoted with
// double quotes if they contain spaces; '=' splits on the first occurrence.

// Write serializes g to w in the text format. Node names are n<ID>.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for id := 0; id < g.NumNodes(); id++ {
		fmt.Fprintf(bw, "node n%d %s", id, g.Label(NodeID(id)))
		attrs := g.NodeAttrs(NodeID(id))
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := attrs[k]
			if strings.ContainsAny(v, " \t") {
				fmt.Fprintf(bw, " %s=%q", k, v)
			} else {
				fmt.Fprintf(bw, " %s=%s", k, v)
			}
		}
		fmt.Fprintln(bw)
	}
	var err error
	g.Edges(func(e Edge) bool {
		_, err = fmt.Fprintf(bw, "edge n%d %s n%d\n", e.From, e.Label, e.To)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses the text format from r and returns the graph plus the mapping
// from node names to IDs.
func Read(r io.Reader) (*Graph, map[string]NodeID, error) {
	g := New(0, 0)
	names := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitQuoted(line)
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("graph: line %d: node needs name and label", lineno)
			}
			name, label := fields[1], fields[2]
			if _, dup := names[name]; dup {
				return nil, nil, fmt.Errorf("graph: line %d: duplicate node %q", lineno, name)
			}
			var attrs Attrs
			if len(fields) > 3 {
				attrs = make(Attrs, len(fields)-3)
				for _, kv := range fields[3:] {
					k, v, ok := strings.Cut(kv, "=")
					if !ok {
						return nil, nil, fmt.Errorf("graph: line %d: bad attribute %q", lineno, kv)
					}
					attrs[k] = v
				}
			}
			names[name] = g.AddNode(label, attrs)
		case "edge":
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("graph: line %d: edge needs from, label, to", lineno)
			}
			from, ok := names[fields[1]]
			if !ok {
				return nil, nil, fmt.Errorf("graph: line %d: unknown node %q", lineno, fields[1])
			}
			to, ok := names[fields[3]]
			if !ok {
				return nil, nil, fmt.Errorf("graph: line %d: unknown node %q", lineno, fields[3])
			}
			if err := g.AddEdge(from, to, fields[2]); err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
		default:
			return nil, nil, fmt.Errorf("graph: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return g, names, nil
}

// splitQuoted splits on whitespace but keeps key="quoted value" tokens
// together (the quotes are stripped).
func splitQuoted(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}
