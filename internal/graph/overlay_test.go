package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// overlayBaseGraph builds a small deterministic property graph to stack
// overlays on.
func overlayBaseGraph() *Graph {
	g := New(8, 12)
	labels := []string{"person", "city", "person", "company", "city", "person"}
	for i, l := range labels {
		g.AddNode(l, Attrs{"val": fmt.Sprintf("v%d", i)})
	}
	g.MustAddEdge(0, 1, "lives_in")
	g.MustAddEdge(2, 1, "lives_in")
	g.MustAddEdge(0, 3, "works_at")
	g.MustAddEdge(2, 3, "works_at")
	g.MustAddEdge(3, 4, "based_in")
	g.MustAddEdge(5, 4, "lives_in")
	return g
}

// edgeKey renders an adjacency entry with its label name so views over
// different symbol tables can be compared.
func edgeKey(syms *Symbols, e CSREdge) string {
	return fmt.Sprintf("%s->%d", syms.Name(e.Label), e.To)
}

// assertOverlayMatchesFreeze checks every Topology observable of ov
// against a fresh freeze of the mutated graph — the compaction oracle:
// the patched view and the from-scratch CSR must be indistinguishable.
func assertOverlayMatchesFreeze(t *testing.T, ov *Overlay) {
	t.Helper()
	g := ov.Graph()
	snap := buildSnapshot(g) // bypass the cache: the oracle must be fresh
	if ov.NumNodes() != snap.NumNodes() {
		t.Fatalf("NumNodes: overlay %d, freeze %d", ov.NumNodes(), snap.NumNodes())
	}
	osyms, ssyms := ov.Syms(), snap.Syms()
	for v := 0; v < snap.NumNodes(); v++ {
		id := NodeID(v)
		if got, want := osyms.Name(ov.Label(id)), ssyms.Name(snap.Label(id)); got != want {
			t.Fatalf("Label(%d): overlay %q, freeze %q", v, got, want)
		}
		// Adjacency must agree as an edge multiset; the within-node order
		// may differ between the views because each is sorted by its own
		// table's label codes (the overlay interns late-arriving labels at
		// higher codes than a fresh freeze would). Per-view sortedness —
		// what the binary searches rely on — is asserted separately.
		for dir, pair := range map[string][2][]CSREdge{
			"out": {ov.Out(id), snap.Out(id)},
			"in":  {ov.In(id), snap.In(id)},
		} {
			oes, ses := pair[0], pair[1]
			if len(oes) != len(ses) {
				t.Fatalf("%s degree of %d: overlay %d, freeze %d", dir, v, len(oes), len(ses))
			}
			for i := 1; i < len(oes); i++ {
				prev, cur := oes[i-1], oes[i]
				if cur.Label < prev.Label || (cur.Label == prev.Label && cur.To < prev.To) {
					t.Fatalf("%s adjacency of %d not (label, neighbor)-sorted at %d", dir, v, i)
				}
			}
			okeys := make([]string, len(oes))
			skeys := make([]string, len(ses))
			for i := range oes {
				okeys[i] = edgeKey(osyms, oes[i])
				skeys[i] = edgeKey(ssyms, ses[i])
			}
			sort.Strings(okeys)
			sort.Strings(skeys)
			for i := range okeys {
				if okeys[i] != skeys[i] {
					t.Fatalf("%s adjacency of %d differs: overlay %s, freeze %s", dir, v, okeys[i], skeys[i])
				}
			}
		}
		// Attribute tuples through the interned index.
		for name, want := range g.NodeAttrs(id) {
			sym, ok := ov.AttrSym(id, osyms.Lookup(name))
			if !ok {
				t.Fatalf("AttrSym(%d, %s): overlay misses attribute", v, name)
			}
			if got := osyms.Name(sym); got != want {
				t.Fatalf("AttrSym(%d, %s): overlay %q, graph %q", v, name, got, want)
			}
		}
	}
	// Candidate classes: same node sets, ascending, sizes consistent.
	for _, label := range g.Labels() {
		oc := ov.NodesWith(osyms.Lookup(label))
		sc := snap.NodesWith(ssyms.Lookup(label))
		if fmt.Sprint(oc) != fmt.Sprint(sc) {
			t.Fatalf("NodesWith(%s): overlay %v, freeze %v", label, oc, sc)
		}
		if !sort.SliceIsSorted(oc, func(i, j int) bool { return oc[i] < oc[j] }) {
			t.Fatalf("NodesWith(%s) not ascending: %v", label, oc)
		}
		if ov.ClassSize(osyms.Lookup(label)) != len(oc) {
			t.Fatalf("ClassSize(%s) = %d, class has %d", label, ov.ClassSize(osyms.Lookup(label)), len(oc))
		}
	}
	// Edge existence and neighborhoods, spot-checked over every node pair
	// on small graphs (capped for fuzz inputs that grew the graph).
	n := snap.NumNodes()
	cap := n
	if cap > 24 {
		cap = 24
	}
	for a := 0; a < cap; a++ {
		for b := 0; b < cap; b++ {
			if got, want := ov.HasEdge(NodeID(a), NodeID(b), WildcardSym), snap.HasEdge(NodeID(a), NodeID(b), WildcardSym); got != want {
				t.Fatalf("HasEdge(%d, %d, _): overlay %v, freeze %v", a, b, got, want)
			}
		}
		for c := 0; c <= 2; c++ {
			if got, want := fmt.Sprint(ov.Neighborhood(NodeID(a), c)), fmt.Sprint(snap.Neighborhood(NodeID(a), c)); got != want {
				t.Fatalf("Neighborhood(%d, %d): overlay %s, freeze %s", a, c, got, want)
			}
			if got, want := ov.NeighborhoodSize(NodeID(a), c), snap.NeighborhoodSize(NodeID(a), c); got != want {
				t.Fatalf("NeighborhoodSize(%d, %d): overlay %d, freeze %d", a, c, got, want)
			}
			// BlockInto is a hand-specialized copy of the snapshot's fill
			// (see Overlay.bfs); pin the two against each other.
			oset, sset := NewEpochSet(ov.NumNodes()), NewEpochSet(snap.NumNodes())
			ov.BlockInto(oset, NodeID(a), c)
			snap.BlockInto(sset, NodeID(a), c)
			om := append([]NodeID(nil), oset.Members()...)
			sm := append([]NodeID(nil), sset.Members()...)
			sortNodeIDs(om)
			sortNodeIDs(sm)
			if fmt.Sprint(om) != fmt.Sprint(sm) {
				t.Fatalf("BlockInto(%d, %d): overlay %v, freeze %v", a, c, om, sm)
			}
		}
	}
}

func TestOverlayMirrorsUpdates(t *testing.T) {
	g := overlayBaseGraph()
	ov := NewOverlay(g)
	if !ov.Synced() {
		t.Fatal("fresh overlay must be synced")
	}
	assertOverlayMatchesFreeze(t, ov)

	// New node with a new label and attribute values.
	id := ov.AddNode("country", Attrs{"val": "AU", "pop": "26m"})
	if id != 6 {
		t.Fatalf("AddNode id = %d, want 6", id)
	}
	// Edges touching frozen and fresh nodes, including a new edge label.
	ov.MustAddEdge(1, id, "in_country")
	ov.MustAddEdge(id, 4, "contains")
	ov.MustAddEdge(0, 1, "visits") // second labeled edge on a frozen pair
	// Attribute upsert on a frozen node (copy-on-write over the arena)
	// and on the fresh node.
	ov.SetAttr(2, "val", "rewritten")
	ov.SetAttr(id, "val", "Australia")
	if !ov.Synced() {
		t.Fatal("overlay must stay synced through its own mutators")
	}
	assertOverlayMatchesFreeze(t, ov)

	if ov.Delta() == 0 {
		t.Error("delta must grow with patches")
	}
	if frac := ov.DeltaFraction(); frac <= 0 {
		t.Errorf("delta fraction = %v, want > 0", frac)
	}

	// A mutation bypassing the overlay desynchronizes it.
	g.SetAttr(0, "val", "behind-the-back")
	if ov.Synced() {
		t.Error("direct graph mutation must desynchronize the overlay")
	}
}

// TestOverlayLeavesBaseImmutable pins the copy-on-write contract: patches
// must never leak into the frozen base snapshot another reader may hold.
func TestOverlayLeavesBaseImmutable(t *testing.T) {
	g := overlayBaseGraph()
	base := g.Freeze()
	wantOut := fmt.Sprint(base.Out(0))
	wantAttr, _ := base.Attr(2, "val")

	ov := NewOverlay(g)
	if ov.Base() != base {
		t.Fatal("overlay must adopt the cached snapshot")
	}
	ov.MustAddEdge(0, 4, "visits")
	ov.SetAttr(2, "val", "rewritten")
	ov.AddNode("person", Attrs{"val": "new"})

	if got := fmt.Sprint(base.Out(0)); got != wantOut {
		t.Fatalf("base adjacency mutated: %s -> %s", wantOut, got)
	}
	if got, _ := base.Attr(2, "val"); got != wantAttr {
		t.Fatalf("base attribute mutated: %q -> %q", wantAttr, got)
	}
	if got, _ := ov.Graph().Attr(2, "val"); got != "rewritten" {
		t.Fatalf("graph missed the overlay write: %q", got)
	}
}

// TestNodesWithStripePartitions checks the stripe index: for any modulus,
// the residue sub-ranges partition the label class exactly and preserve
// ascending order.
func TestNodesWithStripePartitions(t *testing.T) {
	g := overlayBaseGraph()
	for i := 0; i < 40; i++ {
		g.AddNode([]string{"person", "city"}[i%2], nil)
	}
	snap := g.Freeze()
	for _, label := range []string{"person", "city"} {
		l := snap.Syms().Lookup(label)
		class := snap.NodesWith(l)
		for _, mod := range []int{1, 2, 3, 5, 7} {
			var union []NodeID
			for rem := 0; rem < mod; rem++ {
				part := snap.NodesWithStripe(l, mod, rem)
				for i, v := range part {
					if mod > 1 && int(v)%mod != rem {
						t.Fatalf("%s stripe %d/%d holds %d", label, rem, mod, v)
					}
					if i > 0 && part[i-1] >= v {
						t.Fatalf("%s stripe %d/%d not ascending", label, rem, mod)
					}
				}
				union = append(union, part...)
			}
			sortNodeIDs(union)
			if fmt.Sprint(union) != fmt.Sprint(class) {
				t.Fatalf("%s stripes mod %d do not partition the class", label, mod)
			}
		}
	}
	if got := snap.NodesWithStripe(snap.Syms().Lookup("person"), 3, 5); got != nil {
		t.Fatalf("out-of-range residue must be empty, got %v", got)
	}
}

// FuzzOverlayPatch drives random update streams through an Overlay and
// checks the patch invariants — adjacency sortedness, class ranges,
// degree counts, attribute tuples — against a from-scratch freeze of the
// same mutated graph (which is also the compaction oracle: compacting is
// exactly replacing the overlay with that fresh snapshot).
func FuzzOverlayPatch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 2, 2, 9, 9, 1, 0, 4, 7, 7})
	f.Add([]byte("interleaved-updates"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		g := overlayBaseGraph()
		ov := NewOverlay(g)
		labels := []string{"person", "city", "company", "country"}
		edgeLabels := []string{"lives_in", "works_at", "knows", "based_in"}
		attrs := []string{"val", "pop", "rank"}
		rng := rand.New(rand.NewSource(int64(len(ops))))
		for _, b := range ops {
			switch b % 3 {
			case 0:
				var at Attrs
				if b%2 == 0 {
					at = Attrs{attrs[int(b/3)%len(attrs)]: fmt.Sprintf("a%d", b)}
				}
				ov.AddNode(labels[int(b/3)%len(labels)], at)
			case 1:
				n := ov.NumNodes()
				from := NodeID(rng.Intn(n))
				to := NodeID(rng.Intn(n))
				ov.MustAddEdge(from, to, edgeLabels[int(b/3)%len(edgeLabels)])
			default:
				n := ov.NumNodes()
				ov.SetAttr(NodeID(rng.Intn(n)), attrs[int(b/3)%len(attrs)], fmt.Sprintf("s%d", b))
			}
			if !ov.Synced() {
				t.Fatal("overlay fell out of sync under its own mutators")
			}
		}
		assertOverlayMatchesFreeze(t, ov)
		// The compacted view (fresh overlay over the re-frozen graph) must
		// be observationally identical too.
		assertOverlayMatchesFreeze(t, NewOverlay(g))
	})
}
