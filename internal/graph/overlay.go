package graph

import (
	"sort"
	"sync"
)

// Overlay is the mutable counterpart of a Snapshot: a base CSR view plus
// localized patches that track a stream of AddNode / AddEdge / SetAttr
// updates, so the compiled match path keeps working over a changing graph
// without an O(|V|+|E|) re-freeze per update batch. It implements the same
// Topology contract the engines run against.
//
// Representation: adjacency of a touched node is copied out of the base
// CSR on first touch and maintained (label, neighbor)-sorted in place, so
// OutWith/InWith subranges and HasEdge binary searches work exactly as on
// a Snapshot; untouched nodes read straight from the base arrays. Nodes
// inserted after the freeze get label and class-range fixups (per-label
// candidate classes grown incrementally, kept ascending because new IDs
// are always larger than frozen ones). Attributes ride on an AttrIndex
// that borrows the base snapshot's interned arena copy-on-write.
//
// The overlay interns new labels and attribute values into the base
// snapshot's own symbol table. Codes only ever grow, so artifacts compiled
// against the table stay valid — with the usual growing-table caveat:
// names a pattern or rule mentions must be interned before compiling
// (pattern.InternInto, GFD.InternLiterals), or an absent name would be
// frozen as "matches nothing". Mutating an overlay concurrently with any
// matching against views sharing the table is not safe; between update
// batches the overlay is safe for concurrent readers, like a Snapshot.
//
// An Overlay is meant to stay small relative to its base: patch cost grows
// with the touched region, and holders compact (re-freeze and start a
// fresh overlay) once DeltaFraction crosses their threshold.
type Overlay struct {
	g    *Graph
	base *Snapshot
	syms *Symbols

	version uint64 // graph version the patches reflect

	outPatch  map[NodeID][]CSREdge // copy-on-write adjacency, (Label, To)-sorted
	inPatch   map[NodeID][]CSREdge
	newLabels []Sym            // labels of nodes inserted after the freeze
	classes   map[Sym][]NodeID // merged candidate classes for labels that gained nodes
	attrs     *AttrIndex       // attribute tuples, borrowing the base arena

	delta int // patch size: nodes + edges + attribute writes since the freeze

	// touchLog records every node whose *topology* changed since the base
	// freeze (inserted nodes, endpoints of inserted edges) in update order.
	// Holders of derived per-node measurements (the engines' cached c-hop
	// block sizes) remember a log position and invalidate only what lies
	// within radius of the nodes appended since — the delta-proportional
	// alternative to discarding every measurement per update batch.
	// Attribute writes are deliberately absent: they change no neighborhood.
	touchLog []NodeID

	scratch sync.Pool // *bfsScratch
}

// NewOverlay freezes g (cached per version, so stacking an overlay on an
// already-frozen graph builds nothing) and returns an empty overlay over
// the snapshot. All further mutations must flow through the overlay's
// AddNode/AddEdge/SetAttr so the patches stay in lockstep with the graph;
// a direct graph mutation desynchronizes it (see Synced).
func NewOverlay(g *Graph) *Overlay {
	base := g.Freeze()
	return &Overlay{
		g:        g,
		base:     base,
		syms:     base.Syms(),
		version:  g.Version(),
		outPatch: make(map[NodeID][]CSREdge),
		inPatch:  make(map[NodeID][]CSREdge),
		classes:  make(map[Sym][]NodeID),
		attrs:    newAttrIndexOver(base),
	}
}

// Graph returns the underlying mutable graph.
func (o *Overlay) Graph() *Graph { return o.g }

// Base returns the frozen snapshot the overlay patches.
func (o *Overlay) Base() *Snapshot { return o.base }

// Version returns the graph version the overlay's patches reflect. It
// advances with every mutation applied through the overlay, so holders of
// topology-derived caches (the matcher's plan cache) can key on it.
func (o *Overlay) Version() uint64 { return o.version }

// Synced reports whether the overlay reflects the graph's current version
// — true as long as every mutation since NewOverlay went through the
// overlay. Holders of a desynchronized overlay must discard it and
// re-freeze.
func (o *Overlay) Synced() bool { return o.version == o.g.Version() }

// Delta returns the patch size: nodes inserted + edges inserted +
// attribute writes since the base freeze.
func (o *Overlay) Delta() int { return o.delta }

// DeltaFraction returns Delta relative to the base size |V|+|E| — the
// compaction trigger: past a threshold fraction, re-freezing once is
// cheaper than dragging a large patch set through every lookup.
func (o *Overlay) DeltaFraction() float64 {
	base := o.base.NumNodes() + o.base.NumEdges()
	if base < 1 {
		base = 1
	}
	return float64(o.delta) / float64(base)
}

// CompactFraction is the DeltaFraction past which holders should compact
// (drop the overlay and re-freeze once). One shared constant: the session
// and the incremental detector maintain the same overlay, so diverging
// thresholds would make the lifecycle depend on which Apply a batch took.
// Past a quarter of the base, one amortized freeze beats the patches.
const CompactFraction = 0.25

// NeedsCompaction reports whether the accumulated delta has outgrown the
// base by CompactFraction.
func (o *Overlay) NeedsCompaction() bool { return o.DeltaFraction() > CompactFraction }

// TouchLen returns the current length of the topology touch log; callers
// caching per-node measurements record it as their mark.
func (o *Overlay) TouchLen() int { return len(o.touchLog) }

// TouchedSince returns the nodes whose adjacency changed since the given
// log mark (inserted nodes and endpoints of inserted edges, in update
// order, possibly with repeats). Shared slice; read-only.
func (o *Overlay) TouchedSince(mark int) []NodeID {
	if mark < 0 {
		mark = 0
	}
	if mark >= len(o.touchLog) {
		return nil
	}
	return o.touchLog[mark:]
}

// AddNode inserts a node into the underlying graph and patches the
// overlay: label interned, candidate class extended, attribute tuple
// indexed. Returns the new node's ID.
func (o *Overlay) AddNode(label string, attrs Attrs) NodeID {
	id := o.g.AddNode(label, attrs)
	o.attrs.AddNode(attrs)
	l := o.syms.Intern(label)
	o.newLabels = append(o.newLabels, l)
	// Extend the merged candidate class; seeded from the base range on the
	// label's first insertion. New IDs exceed every frozen ID, so the class
	// stays ascending by construction.
	m, ok := o.classes[l]
	if !ok {
		m = append([]NodeID(nil), o.base.NodesWith(l)...)
	}
	o.classes[l] = append(m, id)
	o.touchLog = append(o.touchLog, id)
	o.delta += 1 + len(attrs)
	o.version = o.g.Version()
	return id
}

// AddEdge inserts a directed labeled edge into the underlying graph and
// patches both endpoints' adjacency (copy-on-write on first touch).
func (o *Overlay) AddEdge(from, to NodeID, label string) error {
	if err := o.g.AddEdge(from, to, label); err != nil {
		return err
	}
	l := o.syms.Intern(label)
	o.outPatch[from] = insertSortedEdge(o.adjacency(from, o.outPatch, o.base.outOff, o.base.out), CSREdge{To: to, Label: l})
	o.inPatch[to] = insertSortedEdge(o.adjacency(to, o.inPatch, o.base.inOff, o.base.in), CSREdge{To: from, Label: l})
	// One unit per edge, matching the |V|+|E| denominator of
	// DeltaFraction — counting both half-edge patches would silently
	// halve the documented compaction threshold for edge-heavy streams.
	o.touchLog = append(o.touchLog, from, to)
	o.delta++
	o.version = o.g.Version()
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (o *Overlay) MustAddEdge(from, to NodeID, label string) {
	if err := o.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// SetAttr upserts attribute a = val on node v in the graph and the
// attribute index.
func (o *Overlay) SetAttr(v NodeID, a, val string) {
	o.g.SetAttr(v, a, val)
	o.attrs.SetAttr(v, a, val)
	o.delta++
	o.version = o.g.Version()
}

// adjacency returns the mutable adjacency slice of v for one direction:
// the existing patch, or a fresh copy of the base range on first touch.
func (o *Overlay) adjacency(v NodeID, patch map[NodeID][]CSREdge, off []int32, arena []CSREdge) []CSREdge {
	if es, ok := patch[v]; ok {
		return es
	}
	if int(v) < o.base.NumNodes() {
		base := arena[off[v]:off[v+1]]
		es := make([]CSREdge, len(base), len(base)+4)
		copy(es, base)
		return es
	}
	return nil
}

// insertSortedEdge inserts e into its (Label, To) position. Duplicate
// triples are kept adjacent, mirroring the graph's multi-edge behavior;
// the matcher collapses them like it does on a Snapshot.
func insertSortedEdge(es []CSREdge, e CSREdge) []CSREdge {
	pos := sort.Search(len(es), func(i int) bool {
		if es[i].Label != e.Label {
			return es[i].Label > e.Label
		}
		return es[i].To >= e.To
	})
	es = append(es, CSREdge{})
	copy(es[pos+1:], es[pos:])
	es[pos] = e
	return es
}

// ---- Topology ------------------------------------------------------------

// Syms returns the overlay's symbol table — the base snapshot's table,
// grown in place by updates.
func (o *Overlay) Syms() *Symbols { return o.syms }

// NumNodes returns |V| including nodes inserted after the freeze.
func (o *Overlay) NumNodes() int { return o.base.NumNodes() + len(o.newLabels) }

// NumEdges returns |E| as seen by the overlay.
func (o *Overlay) NumEdges() int { return o.g.NumEdges() }

// Label returns the interned label code of node v.
func (o *Overlay) Label(v NodeID) Sym {
	if n := o.base.NumNodes(); int(v) >= n {
		return o.newLabels[int(v)-n]
	}
	return o.base.Label(v)
}

// AttrSym returns the interned value of attribute name on node v.
func (o *Overlay) AttrSym(v NodeID, name Sym) (Sym, bool) {
	return o.attrs.AttrSym(v, name)
}

// Out returns v's out-adjacency: the patched slice for touched nodes, the
// base CSR range otherwise.
func (o *Overlay) Out(v NodeID) []CSREdge {
	if len(o.outPatch) > 0 {
		if es, ok := o.outPatch[v]; ok {
			return es
		}
	}
	if int(v) < o.base.NumNodes() {
		return o.base.Out(v)
	}
	return nil
}

// In returns v's in-adjacency; see Out.
func (o *Overlay) In(v NodeID) []CSREdge {
	if len(o.inPatch) > 0 {
		if es, ok := o.inPatch[v]; ok {
			return es
		}
	}
	if int(v) < o.base.NumNodes() {
		return o.base.In(v)
	}
	return nil
}

// OutDegree returns the number of out-edges of v.
func (o *Overlay) OutDegree(v NodeID) int { return len(o.Out(v)) }

// InDegree returns the number of in-edges of v.
func (o *Overlay) InDegree(v NodeID) int { return len(o.In(v)) }

// OutWith returns the contiguous subrange of v's out-adjacency with edge
// label l (the whole range for WildcardSym).
func (o *Overlay) OutWith(v NodeID, l Sym) []CSREdge { return labelRange(o.Out(v), l) }

// InWith is OutWith over the in-adjacency.
func (o *Overlay) InWith(v NodeID, l Sym) []CSREdge { return labelRange(o.In(v), l) }

// HasEdge reports whether a from -[l]-> to edge exists; l == WildcardSym
// matches any label.
func (o *Overlay) HasEdge(from, to NodeID, l Sym) bool {
	return hasEdgeRanges(o.Out(from), o.In(to), from, to, l)
}

// NodesWith returns the candidate class of label code l: the merged class
// for labels that gained nodes, the base range otherwise. Shared;
// read-only.
func (o *Overlay) NodesWith(l Sym) []NodeID {
	if len(o.classes) > 0 {
		if m, ok := o.classes[l]; ok {
			return m
		}
	}
	return o.base.NodesWith(l)
}

// NodesWithStripe returns the stripe candidates of label l. The overlay
// has no precomputed residue sub-ranges, so it over-approximates with the
// whole class; callers keep the residue filter (the Topology contract).
func (o *Overlay) NodesWithStripe(l Sym, mod, rem int) []NodeID { return o.NodesWith(l) }

// ClassSize returns the number of nodes carrying label code l.
func (o *Overlay) ClassSize(l Sym) int {
	if len(o.classes) > 0 {
		if m, ok := o.classes[l]; ok {
			return len(m)
		}
	}
	return o.base.ClassSize(l)
}

func (o *Overlay) getScratch() *bfsScratch {
	sc, _ := o.scratch.Get().(*bfsScratch)
	if sc == nil {
		sc = &bfsScratch{}
	}
	if n := o.NumNodes(); len(sc.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, sc.stamp)
		sc.stamp = grown
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.stamp)
		sc.epoch = 1
	}
	return sc
}

// bfs collects the nodes within c undirected hops of start into the
// returned scratch (discovery order, start first); the caller must Put it
// back. It deliberately repeats Snapshot.bfs with the patched accessors
// instead of sharing a Topology-generic traversal: workload estimation
// runs one traversal per pivot candidate on the snapshot path, and
// routing its adjacency reads through interface (or gcshape-dictionary)
// dispatch taxes the measured estimation spans the benchmark gate
// watches — the same rationale as the matcher's specialized inner loop.
// Behavioral changes must land in both copies; FuzzOverlayPatch pins this
// copy against a fresh freeze (Neighborhood, NeighborhoodSize, BlockInto).
func (o *Overlay) bfs(start NodeID, c int) *bfsScratch {
	if int(start) < 0 || int(start) >= o.NumNodes() {
		return nil
	}
	sc := o.getScratch()
	sc.visit(start)
	frontier := append(sc.frontier[:0], start)
	next := sc.next[:0]
	nodes := append(sc.nodes[:0], start)
	for hop := 0; hop < c && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range o.Out(v) {
				if !sc.visited(e.To) {
					sc.visit(e.To)
					next = append(next, e.To)
					nodes = append(nodes, e.To)
				}
			}
			for _, e := range o.In(v) {
				if !sc.visited(e.To) {
					sc.visit(e.To)
					next = append(next, e.To)
					nodes = append(nodes, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next, sc.nodes = frontier, next, nodes
	return sc
}

// Neighborhood returns the nodes within c undirected hops of start,
// including start, sorted ascending.
func (o *Overlay) Neighborhood(start NodeID, c int) []NodeID {
	sc := o.bfs(start, c)
	if sc == nil {
		return nil
	}
	out := append([]NodeID(nil), sc.nodes...)
	o.scratch.Put(sc)
	sortNodeIDs(out)
	return out
}

// NeighborhoodSize returns |V'| + |E'| of the subgraph induced by the
// c-hop neighborhood of start.
func (o *Overlay) NeighborhoodSize(start NodeID, c int) int {
	sc := o.bfs(start, c)
	if sc == nil {
		return 0
	}
	size := len(sc.nodes)
	for _, v := range sc.nodes {
		for _, e := range o.Out(v) {
			if sc.visited(e.To) {
				size++
			}
		}
	}
	o.scratch.Put(sc)
	return size
}

// BlockInto adds to set every node within c undirected hops of start —
// the EpochSet fill the engines and the incremental detector use.
func (o *Overlay) BlockInto(set *EpochSet, start NodeID, c int) {
	if int(start) < 0 || int(start) >= o.NumNodes() {
		return
	}
	set.beginFill(o.NumNodes())
	set.visit[start] = set.visitEpoch
	set.Add(start)
	frontier := append(set.frontier[:0], start)
	next := set.next[:0]
	for hop := 0; hop < c && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range o.Out(v) {
				if set.visit[e.To] != set.visitEpoch {
					set.visit[e.To] = set.visitEpoch
					set.Add(e.To)
					next = append(next, e.To)
				}
			}
			for _, e := range o.In(v) {
				if set.visit[e.To] != set.visitEpoch {
					set.visit[e.To] = set.visitEpoch
					set.Add(e.To)
					next = append(next, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	set.frontier, set.next = frontier, next
}
