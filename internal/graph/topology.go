package graph

// Topology is the compiled execution view of a graph that the match and
// validation engines run against: interned labels, (label, neighbor)-sorted
// adjacency, contiguous per-label candidate classes, interned attribute
// lookup, and the BFS primitives the workload model is built on.
//
// Two implementations exist:
//
//   - *Snapshot — the immutable CSR view built by Graph.Freeze. This is the
//     fast path: flat arrays, zero steady-state allocation, safe for any
//     number of concurrent readers.
//   - *Overlay — a base Snapshot plus localized patches maintained under
//     AddNode/AddEdge/SetAttr updates. It serves the incremental detector
//     and the session's post-update bundles without re-freezing the whole
//     graph per update batch.
//
// Every Topology is safe for concurrent readers while it is not being
// mutated; mutating an Overlay (or the underlying Graph) concurrently with
// matching is not safe — the same contract Graph.Freeze always had.
type Topology interface {
	// Syms returns the symbol table labels, attribute names and values are
	// interned in. Patterns are compiled against it (pattern.CompileFor)
	// and X → Y literals lower onto it (core.LiteralProgram).
	Syms() *Symbols
	// NumNodes returns |V| as seen by this view.
	NumNodes() int
	// Label returns the interned label code of node v.
	Label(v NodeID) Sym
	// AttrSym returns the interned value of attribute name on node v, or
	// (NoSym, false) when the node does not carry it. This is the
	// core.AttrSource contract, so literal programs evaluate directly
	// against any Topology.
	AttrSym(v NodeID, name Sym) (Sym, bool)
	// Out returns v's out-adjacency sorted by (Label, To). Shared; read-only.
	Out(v NodeID) []CSREdge
	// In returns v's in-adjacency (CSREdge.To is the edge source), sorted
	// by (Label, To). Shared; read-only.
	In(v NodeID) []CSREdge
	// OutDegree returns the number of out-edges of v.
	OutDegree(v NodeID) int
	// InDegree returns the number of in-edges of v.
	InDegree(v NodeID) int
	// OutWith returns the contiguous subrange of v's out-adjacency carrying
	// edge label l; the whole range for WildcardSym.
	OutWith(v NodeID, l Sym) []CSREdge
	// InWith is OutWith over the in-adjacency.
	InWith(v NodeID, l Sym) []CSREdge
	// HasEdge reports whether a from -[l]-> to edge exists; l == WildcardSym
	// matches any label.
	HasEdge(from, to NodeID, l Sym) bool
	// NodesWith returns the candidate class of label code l: all nodes
	// carrying it, ascending. Shared; read-only.
	NodesWith(l Sym) []NodeID
	// NodesWithStripe returns the candidates of label l whose node ID is
	// congruent to rem modulo mod — the replicate-and-split residue class.
	// Implementations may over-approximate (return a superset, up to the
	// whole class); callers must keep the residue filter. The Snapshot
	// returns the exact precomputed sub-range.
	NodesWithStripe(l Sym, mod, rem int) []NodeID
	// ClassSize returns the number of nodes carrying label code l.
	ClassSize(l Sym) int
	// Neighborhood returns the nodes within c undirected hops of start,
	// including start, sorted ascending.
	Neighborhood(start NodeID, c int) []NodeID
	// NeighborhoodSize returns |V'| + |E'| of the subgraph induced by the
	// c-hop neighborhood of start — the |G_z̄| block-size measure.
	NeighborhoodSize(start NodeID, c int) int
	// BlockInto adds to set every node within c undirected hops of start
	// (including start) — the allocation-free block fill engines use.
	BlockInto(set *EpochSet, start NodeID, c int)
}

// Compile-time interface checks: both execution views implement the full
// Topology contract.
var (
	_ Topology = (*Snapshot)(nil)
	_ Topology = (*Overlay)(nil)
)
