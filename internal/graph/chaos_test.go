package graph

import (
	"testing"

	"gfd/internal/fault"
)

// TestFreezeShardPanicFallsBackSerial: a shard goroutine panicking inside
// the parallel freeze pipeline must not crash the process or corrupt the
// snapshot — Freeze falls back to the serial builder, produces the exact
// snapshot the parallel path would have, and the FreezeFallbacks probe
// records the degradation.
func TestFreezeShardPanicFallsBackSerial(t *testing.T) {
	g := randomFreezeGraph(3, 40000)
	if g.Size() < parallelFreezeMinSize {
		t.Fatalf("graph too small for the parallel freeze path: size %d", g.Size())
	}
	SetFreezeWorkers(4)
	defer SetFreezeWorkers(0)
	inj := fault.NewPlan(7).PanicAt(fault.FreezeShard, 1).Arm(4)
	SetFreezeInjector(inj)
	defer SetFreezeInjector(nil)

	base := FreezeFallbacks()
	got := g.Freeze()
	if inj.Fired() != 1 {
		t.Fatalf("shard fault never fired (fired = %d); the fallback was not exercised", inj.Fired())
	}
	if n := FreezeFallbacks(); n != base+1 {
		t.Fatalf("FreezeFallbacks = %d, want %d", n, base+1)
	}
	requireSnapshotsEqual(t, buildSnapshot(g), got)
}

// TestExplicitBuildSnapshotPropagatesShardPanic: the explicit differential
// entry point keeps propagating shard panics (no silent fallback) — but as
// a recoverable panic on the calling goroutine, after every surviving
// shard has finished, not as a process abort from an orphan goroutine.
func TestExplicitBuildSnapshotPropagatesShardPanic(t *testing.T) {
	g := randomFreezeGraph(5, 500)
	inj := fault.NewPlan(8).PanicAt(fault.FreezeShard, 2).Arm(4)
	SetFreezeInjector(inj)
	defer SetFreezeInjector(nil)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("BuildSnapshot swallowed the shard panic")
		}
		if _, ok := rec.(fault.Injected); !ok {
			t.Fatalf("panic value = %v, want the injected fault", rec)
		}
	}()
	g.BuildSnapshot(4)
}
