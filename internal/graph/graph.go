// Package graph implements the property-graph substrate of the GFD system:
// directed graphs G = (V, E, L, F_A) with labeled nodes and edges and
// attribute tuples on nodes, as defined in Section 2 of Fan, Wu & Xu,
// "Functional Dependencies for Graphs" (SIGMOD 2016).
//
// The representation is index-based: node identifiers are dense integers
// assigned in insertion order, adjacency is stored as in/out half-edge
// slices, and a label index supports candidate lookup for pattern matching.
// All iteration orders are deterministic.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node within a Graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1 in insertion order.
type NodeID int32

// Invalid is returned by lookups that find no node.
const Invalid NodeID = -1

// Attrs is the attribute tuple F_A(v) of a node: attribute name -> constant.
// Attribute values are strings; the paper's constants are uninterpreted.
type Attrs map[string]string

// Clone returns a copy of the tuple (nil stays nil).
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	m := make(Attrs, len(a))
	for k, v := range a {
		m[k] = v
	}
	return m
}

// HalfEdge is one endpoint's view of a labeled directed edge.
type HalfEdge struct {
	To    NodeID // the other endpoint (target for out-edges, source for in-edges)
	Label string // edge label L(e)
}

// Edge is a fully specified directed labeled edge.
type Edge struct {
	From  NodeID
	To    NodeID
	Label string
}

// Graph is a directed property graph with labeled nodes and edges and
// per-node attribute tuples. The zero value is an empty graph ready to use.
type Graph struct {
	labels  []string // node labels, indexed by NodeID
	attrs   []Attrs  // attribute tuples, indexed by NodeID (may be nil)
	out     [][]HalfEdge
	in      [][]HalfEdge
	byLabel map[string][]NodeID
	edges   int
	degHint int // initial adjacency capacity derived from New's edge hint

	version      uint64     // bumped on every mutation; invalidates the snapshot
	snapMu       sync.Mutex // guards the snapshot cache fields below
	snap         *Snapshot
	snapVersion  uint64
	snapBuilds   uint64     // snapshots actually built (cache misses), for reuse probes
	snapBuilding *snapBuild // in-flight build, so construction runs outside snapMu

	// hollow is set on graphs adopted from a persisted snapshot
	// (AdoptFlat): the mutable representation above is empty and is
	// materialized lazily from this snapshot on first need (see
	// ensureThawed in persist.go). Reads the snapshot can answer directly
	// never trigger the thaw.
	hollow      *Snapshot
	hollowState hollowState
}

// snapBuild tracks one in-flight snapshot construction: concurrent Freeze
// callers for the same version wait on done instead of holding snapMu for
// the whole O(|V|+|E|) build.
type snapBuild struct {
	version uint64
	done    chan struct{}
}

// Version returns the graph's mutation counter. Every mutating call
// (AddNode, AddEdge, SetAttr, Relabel) bumps it; sessions and other
// snapshot holders compare versions to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// SnapshotBuilds returns how many times Freeze actually built a snapshot
// (as opposed to returning the cached one). It is the freeze-count probe
// the session-reuse tests assert on: one build per graph version, no
// matter how many engines and sweep rounds share the graph.
func (g *Graph) SnapshotBuilds() int {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	return int(g.snapBuilds)
}

// New returns an empty graph with capacity hints for nodes and edges. The
// edge hint presizes per-node adjacency storage (expected average degree),
// avoiding append-growth churn while generators bulk-load edges.
func New(nodeHint, edgeHint int) *Graph {
	g := &Graph{
		labels:  make([]string, 0, nodeHint),
		attrs:   make([]Attrs, 0, nodeHint),
		out:     make([][]HalfEdge, 0, nodeHint),
		in:      make([][]HalfEdge, 0, nodeHint),
		byLabel: make(map[string][]NodeID),
	}
	if nodeHint > 0 && edgeHint > nodeHint {
		g.degHint = min(edgeHint/nodeHint, 16)
	}
	return g
}

// AddNode appends a node with the given label and attributes and returns its
// ID. The attrs map is stored by reference; callers must not mutate it after
// the call unless they own the graph. A nil attrs is allowed.
func (g *Graph) AddNode(label string, attrs Attrs) NodeID {
	g.ensureThawed()
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, label)
	g.attrs = append(g.attrs, attrs)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if g.byLabel == nil {
		g.byLabel = make(map[string][]NodeID)
	}
	g.byLabel[label] = append(g.byLabel[label], id)
	g.version++
	return id
}

// AddEdge inserts a directed labeled edge from -> to. Multi-edges with
// distinct labels are allowed; duplicate (from, to, label) triples are not
// deduplicated (the generators never produce them).
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	g.ensureThawed()
	if !g.Has(from) || !g.Has(to) {
		return fmt.Errorf("graph: edge (%d)-[%s]->(%d) references missing node", from, label, to)
	}
	if g.degHint > 0 {
		if g.out[from] == nil {
			g.out[from] = make([]HalfEdge, 0, g.degHint)
		}
		if g.in[to] == nil {
			g.in[to] = make([]HalfEdge, 0, g.degHint)
		}
	}
	g.out[from] = append(g.out[from], HalfEdge{To: to, Label: label})
	g.in[to] = append(g.in[to], HalfEdge{To: from, Label: label})
	g.edges++
	g.version++
	return nil
}

// MustAddEdge is AddEdge that panics on error; for tests and generators that
// construct graphs from trusted IDs.
func (g *Graph) MustAddEdge(from, to NodeID, label string) {
	if err := g.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// Has reports whether id is a node of g.
func (g *Graph) Has(id NodeID) bool {
	if s := g.pending(); s != nil {
		return id >= 0 && int(id) < s.NumNodes()
	}
	return id >= 0 && int(id) < len(g.labels)
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	if s := g.pending(); s != nil {
		return s.NumNodes()
	}
	return len(g.labels)
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Size returns |V| + |E|, the size measure used for data blocks in the
// paper's workload model.
func (g *Graph) Size() int { return g.NumNodes() + g.edges }

// Label returns L(v).
func (g *Graph) Label(id NodeID) string {
	if s := g.pending(); s != nil {
		return s.LabelName(id)
	}
	return g.labels[id]
}

// NodeAttrs returns the attribute tuple F_A(v). The returned map is shared
// with the graph; treat it as read-only.
func (g *Graph) NodeAttrs(id NodeID) Attrs {
	g.ensureThawed()
	return g.attrs[id]
}

// Attr returns the value of attribute a on node id, and whether the node
// carries that attribute at all. Missing attributes are first-class in GFD
// semantics (a literal x.A = c in X is trivially unsatisfied when h(x) has
// no attribute A).
func (g *Graph) Attr(id NodeID, a string) (string, bool) {
	if s := g.pending(); s != nil {
		return s.Attr(id, a)
	}
	m := g.attrs[id]
	if m == nil {
		return "", false
	}
	v, ok := m[a]
	return v, ok
}

// SetAttr sets attribute a of node id to value v, creating the tuple if the
// node had none. Used by noise injection and repair experiments.
func (g *Graph) SetAttr(id NodeID, a, v string) {
	g.ensureThawed()
	if g.attrs[id] == nil {
		g.attrs[id] = make(Attrs, 1)
	}
	g.attrs[id][a] = v
	g.version++
}

// Relabel changes the label of node id, maintaining the label index. Used
// by type-inconsistency noise injection (Exp-5). It is O(label class size).
func (g *Graph) Relabel(id NodeID, label string) {
	g.ensureThawed()
	old := g.labels[id]
	if old == label {
		return
	}
	ids := g.byLabel[old]
	for i, v := range ids {
		if v == id {
			g.byLabel[old] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(g.byLabel[old]) == 0 {
		delete(g.byLabel, old)
	}
	g.labels[id] = label
	g.byLabel[label] = insertSorted(g.byLabel[label], id)
	g.version++
}

// insertSorted keeps label class slices in ascending NodeID order so that
// candidate iteration stays deterministic after relabeling.
func insertSorted(ids []NodeID, id NodeID) []NodeID {
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// Out returns the out-adjacency of id. Shared slice; read-only.
func (g *Graph) Out(id NodeID) []HalfEdge {
	g.ensureThawed()
	return g.out[id]
}

// In returns the in-adjacency of id. Shared slice; read-only.
func (g *Graph) In(id NodeID) []HalfEdge {
	g.ensureThawed()
	return g.in[id]
}

// OutDegree returns the number of out-edges of id.
func (g *Graph) OutDegree(id NodeID) int {
	if s := g.pending(); s != nil {
		return s.OutDegree(id)
	}
	return len(g.out[id])
}

// InDegree returns the number of in-edges of id.
func (g *Graph) InDegree(id NodeID) int {
	if s := g.pending(); s != nil {
		return s.InDegree(id)
	}
	return len(g.in[id])
}

// Degree returns total degree (in + out).
func (g *Graph) Degree(id NodeID) int { return g.OutDegree(id) + g.InDegree(id) }

// NodesWithLabel returns the IDs of all nodes labeled l, in insertion order.
// This is the candidate set C(u) for a pattern node u labeled l. The slice
// is shared; read-only.
func (g *Graph) NodesWithLabel(l string) []NodeID {
	g.ensureThawed()
	return g.byLabel[l]
}

// Labels returns the distinct node labels of g in sorted order.
func (g *Graph) Labels() []string {
	g.ensureThawed()
	out := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LabelCount returns the number of nodes carrying label l.
func (g *Graph) LabelCount(l string) int {
	g.ensureThawed()
	return len(g.byLabel[l])
}

// HasEdge reports whether a from -[label]-> to edge exists. A wildcard match
// on the label is not performed here; see package match for pattern
// semantics.
func (g *Graph) HasEdge(from, to NodeID, label string) bool {
	// Thaw rather than answer from a pending snapshot: the snapshot's
	// HasEdge takes interned codes, and a label the table never saw would
	// intern-miss to NoSym semantics this string API doesn't share.
	g.ensureThawed()
	// Scan the smaller adjacency list of the two endpoints.
	if len(g.out[from]) <= len(g.in[to]) {
		for _, he := range g.out[from] {
			if he.To == to && he.Label == label {
				return true
			}
		}
		return false
	}
	for _, he := range g.in[to] {
		if he.To == from && he.Label == label {
			return true
		}
	}
	return false
}

// HasEdgeAnyLabel reports whether any from -> to edge exists regardless of
// its label (wildcard edge label in a pattern).
func (g *Graph) HasEdgeAnyLabel(from, to NodeID) bool {
	g.ensureThawed()
	if len(g.out[from]) <= len(g.in[to]) {
		for _, he := range g.out[from] {
			if he.To == to {
				return true
			}
		}
		return false
	}
	for _, he := range g.in[to] {
		if he.To == from {
			return true
		}
	}
	return false
}

// Edges calls fn for every edge of g in deterministic (source, position)
// order. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(Edge) bool) {
	g.ensureThawed()
	for from := range g.out {
		for _, he := range g.out[from] {
			if !fn(Edge{From: NodeID(from), To: he.To, Label: he.Label}) {
				return
			}
		}
	}
}

// Clone returns a deep copy of g. Attribute maps are copied.
func (g *Graph) Clone() *Graph {
	g.ensureThawed()
	c := &Graph{
		labels:  append([]string(nil), g.labels...),
		attrs:   make([]Attrs, len(g.attrs)),
		out:     make([][]HalfEdge, len(g.out)),
		in:      make([][]HalfEdge, len(g.in)),
		byLabel: make(map[string][]NodeID, len(g.byLabel)),
		edges:   g.edges,
		degHint: g.degHint,
	}
	for i, a := range g.attrs {
		c.attrs[i] = a.Clone()
	}
	for i := range g.out {
		c.out[i] = append([]HalfEdge(nil), g.out[i]...)
		c.in[i] = append([]HalfEdge(nil), g.in[i]...)
	}
	for l, ids := range g.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ids...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the node set keep: it
// contains exactly the nodes of keep and all edges of g whose endpoints are
// both in keep. Node IDs are remapped densely; the second return value maps
// original IDs to new IDs. Attribute tuples are copied: a SetAttr on the
// subgraph must bump only the subgraph's version, never mutate the parent
// behind its cached snapshot.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, map[NodeID]NodeID) {
	g.ensureThawed()
	remap := make(map[NodeID]NodeID, len(keep))
	sub := New(len(keep), 0)
	for _, id := range keep {
		if _, dup := remap[id]; dup {
			continue
		}
		remap[id] = sub.AddNode(g.labels[id], g.attrs[id].Clone())
	}
	for old, nw := range remap {
		for _, he := range g.out[old] {
			if to, ok := remap[he.To]; ok {
				sub.MustAddEdge(nw, to, he.Label)
			}
		}
	}
	return sub, remap
}

// String returns a short description of the graph, e.g. "graph(|V|=9, |E|=14)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d)", g.NumNodes(), g.NumEdges())
}
