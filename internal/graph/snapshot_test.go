package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(t *testing.T, seed int64, nodes, edges int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "_"}
	elabels := []string{"e", "f", "g"}
	g := New(nodes, edges)
	for i := 0; i < nodes; i++ {
		g.AddNode(labels[rng.Intn(len(labels))], Attrs{"val": string(rune('a' + rng.Intn(5)))})
	}
	for i := 0; i < edges; i++ {
		g.MustAddEdge(NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes)), elabels[rng.Intn(len(elabels))])
	}
	return g
}

// TestSnapshotMirrorsGraph cross-checks every snapshot accessor against the
// mutable graph it was frozen from.
func TestSnapshotMirrorsGraph(t *testing.T) {
	g := randomGraph(t, 7, 60, 220)
	s := g.Freeze()

	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: snapshot (%d,%d) vs graph (%d,%d)",
			s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if s.LabelName(id) != g.Label(id) {
			t.Fatalf("node %d: label %q vs %q", v, s.LabelName(id), g.Label(id))
		}
		if s.OutDegree(id) != g.OutDegree(id) || s.InDegree(id) != g.InDegree(id) {
			t.Fatalf("node %d: degree mismatch", v)
		}
		if v2, ok := s.Attr(id, "val"); !ok {
			t.Fatalf("node %d: missing val attr in snapshot", v)
		} else if want, _ := g.Attr(id, "val"); v2 != want {
			t.Fatalf("node %d: attr %q vs %q", v, v2, want)
		}
	}
	// Every graph edge must be findable in the snapshot, concrete and
	// wildcard, and the CSR ranges must be (Label, To)-sorted.
	g.Edges(func(e Edge) bool {
		l := s.Syms().Lookup(e.Label)
		if !s.HasEdge(e.From, e.To, l) {
			t.Fatalf("edge %v missing from snapshot", e)
		}
		if !s.HasEdge(e.From, e.To, WildcardSym) {
			t.Fatalf("edge %v not found via wildcard", e)
		}
		return true
	})
	for v := 0; v < g.NumNodes(); v++ {
		es := s.Out(NodeID(v))
		for i := 1; i < len(es); i++ {
			if es[i].Label < es[i-1].Label ||
				(es[i].Label == es[i-1].Label && es[i].To < es[i-1].To) {
				t.Fatalf("node %d: out-adjacency not sorted at %d", v, i)
			}
		}
	}
	// Absent edges must stay absent.
	if s.HasEdge(0, 1, s.Syms().Lookup("e")) != g.HasEdge(0, 1, "e") {
		t.Fatal("HasEdge(0,1,e) disagrees with graph")
	}
	if s.HasEdge(0, 1, NoSym) {
		t.Fatal("NoSym label must match no edge")
	}
	// Label classes must equal the graph's label index.
	for _, l := range g.Labels() {
		want := g.NodesWithLabel(l)
		got := s.NodesWithLabel(l)
		if len(want) != len(got) {
			t.Fatalf("label %q: class size %d vs %d", l, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("label %q: class differs at %d", l, i)
			}
		}
		if s.ClassSize(s.Syms().Lookup(l)) != g.LabelCount(l) {
			t.Fatalf("label %q: ClassSize mismatch", l)
		}
	}
	if s.NodesWithLabel("nope") != nil {
		t.Fatal("unknown label must have an empty class")
	}
}

// TestSnapshotNeighborhood checks the CSR BFS against the map-based one.
func TestSnapshotNeighborhood(t *testing.T) {
	g := randomGraph(t, 13, 80, 200)
	s := g.Freeze()
	for v := 0; v < g.NumNodes(); v += 7 {
		for c := 0; c <= 3; c++ {
			want := g.Neighborhood(NodeID(v), c)
			got := s.Neighborhood(NodeID(v), c)
			if len(want) != len(got) {
				t.Fatalf("node %d c=%d: %d vs %d nodes", v, c, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("node %d c=%d: differs at %d", v, c, i)
				}
			}
			if ws, gs := g.NeighborhoodSize(NodeID(v), c), s.NeighborhoodSize(NodeID(v), c); ws != gs {
				t.Fatalf("node %d c=%d: size %d vs %d", v, c, gs, ws)
			}
		}
	}
}

// TestFreezeCache verifies snapshots are cached until the next mutation.
func TestFreezeCache(t *testing.T) {
	g := randomGraph(t, 3, 10, 20)
	s1 := g.Freeze()
	if g.Freeze() != s1 {
		t.Fatal("Freeze rebuilt despite no mutation")
	}
	g.SetAttr(0, "val", "changed")
	s2 := g.Freeze()
	if s2 == s1 {
		t.Fatal("Freeze returned a stale snapshot after SetAttr")
	}
	if v, _ := s2.Attr(0, "val"); v != "changed" {
		t.Fatalf("refrozen snapshot sees %q, want %q", v, "changed")
	}
	g.AddNode("z", nil)
	if g.Freeze() == s2 {
		t.Fatal("Freeze returned a stale snapshot after AddNode")
	}
	g.MustAddEdge(0, 1, "new")
	s3 := g.Freeze()
	if !s3.HasEdge(0, 1, s3.Syms().Lookup("new")) {
		t.Fatal("refrozen snapshot misses the new edge")
	}
	g.Relabel(0, "w")
	if g.Freeze() == s3 {
		t.Fatal("Freeze returned a stale snapshot after Relabel")
	}
	// Clones must not share the cache.
	c := g.Clone()
	if c.Freeze() == g.Freeze() {
		t.Fatal("clone shares its parent's snapshot")
	}
}

// TestNewEdgeHint covers the previously-discarded edge capacity hint.
func TestNewEdgeHint(t *testing.T) {
	g := New(4, 40)
	for i := 0; i < 4; i++ {
		g.AddNode("n", nil)
	}
	g.MustAddEdge(0, 1, "e")
	if c := cap(g.out[0]); c < 10 {
		t.Fatalf("out adjacency capacity %d; want >= 10 (edgeHint/nodeHint)", c)
	}
	if c := cap(g.in[1]); c < 10 {
		t.Fatalf("in adjacency capacity %d; want >= 10", c)
	}
	// Degenerate hints must not presize (or crash).
	g2 := New(0, 0)
	g2.AddNode("n", nil)
	g2.AddNode("n", nil)
	g2.MustAddEdge(0, 1, "e")
	if g2.NumEdges() != 1 {
		t.Fatal("zero-hint graph broken")
	}
}
