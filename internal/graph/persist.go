package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Flat is the serializable image of a Snapshot: every backing array exposed
// as-is, plus the symbol table in code order. It exists for package store —
// the arrays are already flat and offset-based, so persisting a snapshot is
// a section-per-field dump and loading one is AdoptFlat over (possibly
// memory-mapped) views. The slices are shared with the snapshot; treat
// them as read-only.
type Flat struct {
	Names     []string // symbol table, index == Sym code (Names[0] is the wildcard)
	Labels    []Sym    // node label codes, indexed by NodeID; len |V|
	AttrOff   []int32  // len |V|+1, offsets into AttrPairs
	AttrPairs []AttrPair
	OutOff    []int32 // len |V|+1, offsets into Out
	Out       []CSREdge
	InOff     []int32 // len |V|+1, offsets into In
	In        []CSREdge
	ClassOff  []int32  // len len(Names)+1, offsets into Classes
	Classes   []NodeID // nodes grouped by label code, ascending within a class
}

// Flat returns the snapshot's flat-array image for serialization. The
// arrays are the snapshot's own backing storage (no copies) — the Names
// slice is the only allocation.
func (s *Snapshot) Flat() Flat {
	return Flat{
		Names:     s.syms.Names(),
		Labels:    s.labels,
		AttrOff:   s.attrOff,
		AttrPairs: s.attrPairs,
		OutOff:    s.outOff,
		Out:       s.out,
		InOff:     s.inOff,
		In:        s.in,
		ClassOff:  s.classOff,
		Classes:   s.classes,
	}
}

// AdoptFlat reconstructs a Snapshot around a Flat image without copying the
// arrays: the returned snapshot's backing storage IS the given slices, so a
// caller mapping them from a read-only file gets a zero-copy view. The
// image is validated first — offsets monotone and bounded, codes in range,
// per-node sort invariants, classes consistent with labels — because every
// violated invariant is a latent panic (or silent mismatch) in the match
// engine's unchecked indexing. Images from untrusted bytes must never be
// adopted unvalidated; the checks here are O(|V|+|E|) integer scans, far
// below a freeze.
//
// The snapshot's source graph (Snapshot.Graph) is a hollow *Graph that
// materializes its mutable representation lazily from the snapshot on
// first use: reads that the snapshot can answer (NumNodes, Label, Attr,
// degrees) stay on the flat arrays, and the first mutation — or a read
// needing the slice-of-maps representation — thaws the whole graph onto
// the heap. The graph's snapshot cache is pre-seeded, so Freeze returns
// this snapshot without building anything (SnapshotBuilds stays 0) until a
// mutation bumps the version, after which the next freeze is built from
// the thawed heap representation — nothing ever writes through the adopted
// arrays.
func AdoptFlat(f Flat) (*Snapshot, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	syms, err := adoptSymbols(f.Names)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		syms:      syms,
		labels:    f.Labels,
		attrOff:   f.AttrOff,
		attrPairs: f.AttrPairs,
		outOff:    f.OutOff,
		out:       f.Out,
		inOff:     f.InOff,
		in:        f.In,
		classOff:  f.ClassOff,
		classes:   f.Classes,
	}
	g := &Graph{edges: len(f.Out)}
	g.snap, g.snapVersion = s, 0
	g.hollow = s
	s.g = g
	return s, nil
}

// validate checks every invariant the engines' unchecked indexing relies
// on. Error messages name the failing section; package store wraps them
// into its typed corruption error.
func (f Flat) validate() error {
	n := len(f.Labels)
	nsyms := len(f.Names)
	if nsyms == 0 {
		return fmt.Errorf("graph: empty symbol table")
	}
	if err := checkOffsets("attr", f.AttrOff, n, len(f.AttrPairs)); err != nil {
		return err
	}
	if err := checkOffsets("out", f.OutOff, n, len(f.Out)); err != nil {
		return err
	}
	if err := checkOffsets("in", f.InOff, n, len(f.In)); err != nil {
		return err
	}
	if err := checkOffsets("class", f.ClassOff, nsyms, len(f.Classes)); err != nil {
		return err
	}
	if len(f.Out) != len(f.In) {
		return fmt.Errorf("graph: out/in arena size mismatch (%d vs %d)", len(f.Out), len(f.In))
	}
	if len(f.Classes) != n {
		return fmt.Errorf("graph: class arena holds %d nodes, want |V|=%d", len(f.Classes), n)
	}
	for v, l := range f.Labels {
		if l < 0 || int(l) >= nsyms {
			return fmt.Errorf("graph: node %d label code %d out of range [0,%d)", v, l, nsyms)
		}
	}
	// Adjacency: endpoints and labels in range, each node's range
	// (Label, To)-sorted — the binary searches (OutWith, HasEdge) and the
	// matcher's sorted-range intersection assume it.
	if err := checkAdjacency("out", f.OutOff, f.Out, n, nsyms); err != nil {
		return err
	}
	if err := checkAdjacency("in", f.InOff, f.In, n, nsyms); err != nil {
		return err
	}
	// Attribute tuples: codes in range, names strictly increasing per node
	// (a tuple is a map image — duplicates would make AttrSym ambiguous).
	for v := 0; v < n; v++ {
		ps := f.AttrPairs[f.AttrOff[v]:f.AttrOff[v+1]]
		for i, p := range ps {
			if p.Name < 0 || int(p.Name) >= nsyms || p.Val < 0 || int(p.Val) >= nsyms {
				return fmt.Errorf("graph: node %d attr pair %d codes (%d,%d) out of range [0,%d)", v, i, p.Name, p.Val, nsyms)
			}
			if i > 0 && ps[i-1].Name >= p.Name {
				return fmt.Errorf("graph: node %d attr tuple not strictly sorted by name at %d", v, i)
			}
		}
	}
	// Label classes: each class ascending and containing exactly the nodes
	// carrying its label. Together with the offset total == |V| this forces
	// every node into exactly its own class.
	for l := 0; l < nsyms; l++ {
		class := f.Classes[f.ClassOff[l]:f.ClassOff[l+1]]
		for i, v := range class {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: class %d member %d node id %d out of range [0,%d)", l, i, v, n)
			}
			if f.Labels[v] != Sym(l) {
				return fmt.Errorf("graph: class %d holds node %d labeled %d", l, v, f.Labels[v])
			}
			if i > 0 && class[i-1] >= v {
				return fmt.Errorf("graph: class %d not strictly ascending at %d", l, i)
			}
		}
	}
	return nil
}

// checkOffsets validates one CSR offset array: length count+1, starting at
// 0, monotone non-decreasing, ending exactly at the arena length.
func checkOffsets(name string, off []int32, count, arena int) error {
	if len(off) != count+1 {
		return fmt.Errorf("graph: %s offsets length %d, want %d", name, len(off), count+1)
	}
	if count >= 0 && len(off) > 0 && off[0] != 0 {
		return fmt.Errorf("graph: %s offsets start at %d, want 0", name, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: %s offsets decrease at %d (%d -> %d)", name, i, off[i-1], off[i])
		}
	}
	if int(off[len(off)-1]) != arena {
		return fmt.Errorf("graph: %s offsets end at %d, arena holds %d", name, off[len(off)-1], arena)
	}
	return nil
}

// checkAdjacency validates one direction's arena: codes in range and each
// node's range (Label, To)-sorted (non-strict: duplicate triples mirror the
// mutable graph's multi-edge behavior).
func checkAdjacency(name string, off []int32, es []CSREdge, n, nsyms int) error {
	for v := 0; v < n; v++ {
		r := es[off[v]:off[v+1]]
		for i, e := range r {
			if e.To < 0 || int(e.To) >= n {
				return fmt.Errorf("graph: %s edge of node %d targets %d, out of range [0,%d)", name, v, e.To, n)
			}
			if e.Label < 0 || int(e.Label) >= nsyms {
				return fmt.Errorf("graph: %s edge of node %d label code %d out of range [0,%d)", name, v, e.Label, nsyms)
			}
			if i > 0 && (r[i-1].Label > e.Label || (r[i-1].Label == e.Label && r[i-1].To > e.To)) {
				return fmt.Errorf("graph: %s adjacency of node %d not (label,to)-sorted at %d", name, v, i)
			}
		}
	}
	return nil
}

// ---- hollow graphs --------------------------------------------------------

// hollowState carries the lazy-thaw machinery of a graph adopted from a
// snapshot (AdoptFlat): the snapshot to materialize from, a build-once
// guard, and an atomic flag for the read fast paths.
type hollowState struct {
	once   sync.Once
	thawed atomic.Bool
}

// pending returns the adopted snapshot while the graph has not yet been
// materialized, nil otherwise — the guard of every read fast path that can
// answer from the flat arrays without paying the thaw.
func (g *Graph) pending() *Snapshot {
	if g.hollow != nil && !g.hollowState.thawed.Load() {
		return g.hollow
	}
	return nil
}

// ensureThawed materializes the mutable representation of a graph adopted
// from a snapshot, exactly once. Ordinary graphs return immediately. Safe
// for concurrent readers (two concurrent thaw-needing reads share one
// build); mutation concurrent with anything is as unsafe as it always was.
func (g *Graph) ensureThawed() {
	if g.hollow == nil || g.hollowState.thawed.Load() {
		return
	}
	g.hollowState.once.Do(func() {
		g.thawFromSnapshot(g.hollow)
		g.hollowState.thawed.Store(true)
	})
}

// thawFromSnapshot rebuilds the slice-of-maps representation from the
// adopted snapshot. It does not bump the version: thawing is a pure
// materialization, so prepared sessions over the snapshot stay valid and
// no re-freeze is triggered until an actual mutation follows. Adjacency
// comes back in CSR (label, neighbor) order rather than original insertion
// order — equivalent under the engines, which sort at freeze time anyway.
func (g *Graph) thawFromSnapshot(s *Snapshot) {
	syms := s.Syms()
	n := s.NumNodes()
	g.labels = make([]string, n)
	g.attrs = make([]Attrs, n)
	g.out = make([][]HalfEdge, n)
	g.in = make([][]HalfEdge, n)
	g.byLabel = make(map[string][]NodeID)
	for v := 0; v < n; v++ {
		id := NodeID(v)
		label := syms.Name(s.Label(id))
		g.labels[v] = label
		g.byLabel[label] = append(g.byLabel[label], id)
		if ps := s.AttrPairs(id); len(ps) > 0 {
			m := make(Attrs, len(ps))
			for _, p := range ps {
				m[syms.Name(p.Name)] = syms.Name(p.Val)
			}
			g.attrs[v] = m
		}
		if es := s.Out(id); len(es) > 0 {
			out := make([]HalfEdge, len(es))
			for i, e := range es {
				out[i] = HalfEdge{To: e.To, Label: syms.Name(e.Label)}
			}
			g.out[v] = out
		}
		if es := s.In(id); len(es) > 0 {
			in := make([]HalfEdge, len(es))
			for i, e := range es {
				in[i] = HalfEdge{To: e.To, Label: syms.Name(e.Label)}
			}
			g.in[v] = in
		}
	}
	g.edges = s.NumEdges()
}
