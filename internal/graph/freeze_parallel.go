package graph

import (
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gfd/internal/fault"
)

// This file is the parallel freeze pipeline: buildSnapshotParallel produces
// a Snapshot byte-identical to buildSnapshot's (same CSR arrays, class
// ranges, attribute arena, and symbol table — TestParallelFreezeEquivalence
// and FuzzFreezeParallel pin the guarantee) while sharding the O(|V|+|E|)
// work across worker goroutines:
//
//	count      — per-shard degree/tuple counting into the offset arrays
//	offsets    — one serial prefix-sum pass merges counts into CSR offsets
//	symbols    — per-shard distinct-name scans with first-occurrence ranks,
//	             merged and interned in rank order (codes match the serial
//	             builder's interning order exactly)
//	fill+sort  — disjoint node-range fills of the out/in halves and the
//	             attribute arena, each row (label, neighbor)- or name-sorted
//	             in the same worker pass
//	classes    — per-worker label counts merged into class offsets, then
//	             disjoint-range fills with per-worker cursors
//
// The serial builder remains the GOMAXPROCS==1 / small-graph path.

var (
	freezeWorkersOverride atomic.Int32
	freezeWorkersEnv      int
	freezeWorkersEnvOnce  sync.Once
)

// SetFreezeWorkers overrides the number of workers Freeze builds snapshots
// with; n <= 0 restores the default resolution (GFD_FREEZE_WORKERS, then
// GOMAXPROCS). It applies process-wide to subsequent builds.
func SetFreezeWorkers(n int) {
	if n < 0 {
		n = 0
	}
	freezeWorkersOverride.Store(int32(n))
}

// FreezeWorkers resolves the effective freeze worker count:
// SetFreezeWorkers override, else the GFD_FREEZE_WORKERS environment
// variable, else GOMAXPROCS.
func FreezeWorkers() int {
	if n := freezeWorkersOverride.Load(); n > 0 {
		return int(n)
	}
	freezeWorkersEnvOnce.Do(func() {
		if v, err := strconv.Atoi(os.Getenv("GFD_FREEZE_WORKERS")); err == nil && v > 0 {
			freezeWorkersEnv = v
		}
	})
	if freezeWorkersEnv > 0 {
		return freezeWorkersEnv
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFreezeMinSize is the |V|+|E| below which Freeze always takes the
// serial builder: goroutine fan-out and per-shard map merging cost more
// than the build itself on small graphs.
const parallelFreezeMinSize = 1 << 15

var (
	freezeFallbacks atomic.Int64
	freezeInjector  atomic.Pointer[fault.Injector]
)

// FreezeFallbacks returns how many times a parallel freeze failed and the
// build fell back to the serial builder — the probe the fault tests (and a
// production health check) watch. A nonzero count means degraded freeze
// performance, never a wrong snapshot.
func FreezeFallbacks() int { return int(freezeFallbacks.Load()) }

// SetFreezeInjector arms (nil: disarms) a fault injector crossed once per
// shard goroutine of every parallel build, letting the chaos tests panic a
// shard deterministically. Production never calls this; the crossing is a
// nil-check no-op.
func SetFreezeInjector(inj *fault.Injector) { freezeInjector.Store(inj) }

// buildSnapshotAuto is the builder Freeze dispatches to: parallel when
// more than one worker is resolved and the graph is large enough to
// amortize the fan-out, serial otherwise. A panic anywhere in the parallel
// pipeline (a shard goroutine or the merge code between phases) is
// recovered here and the build falls back to the serial builder: freezing
// degrades to slow before it degrades to failed.
func buildSnapshotAuto(g *Graph) *Snapshot {
	if w := FreezeWorkers(); w > 1 && g.Size() >= parallelFreezeMinSize {
		if s := tryBuildParallel(g, w); s != nil {
			return s
		}
		freezeFallbacks.Add(1)
	}
	return buildSnapshot(g)
}

// tryBuildParallel runs the parallel pipeline, converting any panic
// (re-raised onto this goroutine by runShards) into a nil result.
func tryBuildParallel(g *Graph, workers int) (s *Snapshot) {
	defer func() { _ = recover() }()
	return buildSnapshotParallel(g, workers)
}

// BuildSnapshot builds a fresh snapshot with an explicit worker count,
// bypassing Freeze's cache and the small-graph fallback: workers <= 1 runs
// the serial builder, anything larger the parallel pipeline. The
// differential tests and the freeze benchmark drive both paths through
// this; regular callers should use Freeze.
func (g *Graph) BuildSnapshot(workers int) *Snapshot {
	g.ensureThawed()
	if workers <= 1 || g.NumNodes() == 0 {
		return buildSnapshot(g)
	}
	return buildSnapshotParallel(g, workers)
}

// shard is one worker's contiguous node range [lo, hi).
type shard struct{ lo, hi int }

// runShards executes fn over every shard, one goroutine per shard (the
// single-shard case stays on the calling goroutine). A panicking shard no
// longer kills the process from an unrecoverable goroutine: every shard
// recovers its own panic, the surviving shards finish, and the first
// panic value is re-raised on the calling goroutine — where Freeze's
// fallback (or an explicit BuildSnapshot caller) can handle it.
func runShards(shards []shard, fn func(si, lo, hi int)) {
	inj := freezeInjector.Load()
	if len(shards) == 1 {
		inj.Cross(fault.FreezeShard, 0, -1)
		fn(0, shards[0].lo, shards[0].hi)
		return
	}
	panics := make([]any, len(shards))
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for si, sh := range shards {
		go func(si, lo, hi int) {
			defer wg.Done()
			defer func() { panics[si] = recover() }()
			inj.Cross(fault.FreezeShard, si, -1)
			fn(si, lo, hi)
		}(si, sh.lo, sh.hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// shardRanges splits [0, n) into at most `workers` near-equal contiguous
// ranges (empty ranges dropped).
func shardRanges(n, workers int) []shard {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]shard, 0, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		if size > 0 {
			out = append(out, shard{lo, lo + size})
		}
		lo += size
	}
	return out
}

// shardByOffsets splits [0, len(off)-1) into contiguous ranges balanced by
// the offset deltas (per-node fill/sort work), counting one extra unit per
// node so degree-zero stretches still spread across workers.
func shardByOffsets(off []int32, workers int) []shard {
	n := len(off) - 1
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n == 0 {
			return nil
		}
		return []shard{{0, n}}
	}
	total := int64(off[n]) + int64(n)
	target := total / int64(workers)
	if target < 1 {
		target = 1
	}
	out := make([]shard, 0, workers)
	lo, acc := 0, int64(0)
	for v := 0; v < n; v++ {
		acc += int64(off[v+1]-off[v]) + 1
		if acc >= target && len(out) < workers-1 {
			out = append(out, shard{lo, v + 1})
			lo, acc = v+1, 0
		}
	}
	if lo < n {
		out = append(out, shard{lo, n})
	}
	return out
}

// firstSeen pairs a distinct name with the rank of its first occurrence in
// the serial builder's interning order.
type firstSeen struct {
	name string
	at   int64
}

// collectDistinct runs scan over every shard (each filling a private
// name -> first-occurrence-rank map), merges the shard maps by minimum
// rank, and returns the distinct names sorted by rank — the exact order
// the serial builder would have interned them in.
func collectDistinct(shards []shard, scan func(lo, hi int, seen map[string]int64)) []firstSeen {
	perShard := make([]map[string]int64, len(shards))
	runShards(shards, func(si, lo, hi int) {
		m := make(map[string]int64, 16)
		scan(lo, hi, m)
		perShard[si] = m
	})
	merged := perShard[0]
	for _, m := range perShard[1:] {
		for name, at := range m {
			if prev, ok := merged[name]; !ok || at < prev {
				merged[name] = at
			}
		}
	}
	out := make([]firstSeen, 0, len(merged))
	for name, at := range merged {
		out = append(out, firstSeen{name, at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// buildSnapshotParallel is buildSnapshot sharded across `workers`
// goroutines. Output is byte-identical to the serial builder's: the symbol
// table is constructed by merging per-shard first-occurrence scans so
// codes land in the serial interning order, after which every fill runs
// lock-free over disjoint ranges against the then-immutable table.
func buildSnapshotParallel(g *Graph, workers int) *Snapshot {
	n := g.NumNodes()
	if n == 0 {
		return buildSnapshot(g)
	}
	s := &Snapshot{
		g:       g,
		syms:    NewSymbols(),
		labels:  make([]Sym, n),
		outOff:  make([]int32, n+1),
		inOff:   make([]int32, n+1),
		attrOff: make([]int32, n+1),
	}
	nodeShards := shardRanges(n, workers)

	// ---- count: per-shard degree and tuple counting ----------------------
	runShards(nodeShards, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			s.outOff[v+1] = int32(len(g.out[v]))
			s.inOff[v+1] = int32(len(g.in[v]))
			s.attrOff[v+1] = int32(len(g.attrs[v]))
		}
	})
	// ---- offset merge: serial prefix sums over the counts ----------------
	for v := 0; v < n; v++ {
		s.outOff[v+1] += s.outOff[v]
		s.inOff[v+1] += s.inOff[v]
		s.attrOff[v+1] += s.attrOff[v]
	}
	totalAttrs := int(s.attrOff[n])

	// ---- symbols: merged first-occurrence scans, serial interning --------
	// Node labels first (rank = NodeID), then edge labels (rank = global
	// out-edge index), then attribute names (sorted distinct), then values
	// (rank = arena position) — the serial builder's exact phase order, so
	// every code matches.
	for _, fs := range collectDistinct(nodeShards, func(lo, hi int, seen map[string]int64) {
		for v := lo; v < hi; v++ {
			if _, ok := seen[g.labels[v]]; !ok {
				seen[g.labels[v]] = int64(v)
			}
		}
	}) {
		s.syms.Intern(fs.name)
	}
	for _, fs := range collectDistinct(nodeShards, func(lo, hi int, seen map[string]int64) {
		for v := lo; v < hi; v++ {
			base := int64(s.outOff[v])
			for i := range g.out[v] {
				l := g.out[v][i].Label
				if _, ok := seen[l]; !ok {
					seen[l] = base + int64(i)
				}
			}
		}
	}) {
		s.syms.Intern(fs.name)
	}
	attrNames := collectDistinct(nodeShards, func(lo, hi int, seen map[string]int64) {
		for v := lo; v < hi; v++ {
			for k := range g.attrs[v] {
				if _, ok := seen[k]; !ok {
					seen[k] = 0
				}
			}
		}
	})
	sort.Slice(attrNames, func(i, j int) bool { return attrNames[i].name < attrNames[j].name })
	for _, fs := range attrNames {
		s.syms.Intern(fs.name)
	}
	// Sorted per-node key lists are needed twice (value ranking here, the
	// arena fill below); build them once into a shared arena.
	keyArena := make([]string, totalAttrs)
	for _, fs := range collectDistinct(nodeShards, func(lo, hi int, seen map[string]int64) {
		for v := lo; v < hi; v++ {
			a := g.attrs[v]
			if len(a) == 0 {
				continue
			}
			ks := keyArena[s.attrOff[v]:s.attrOff[v+1]]
			i := 0
			for k := range a {
				ks[i] = k
				i++
			}
			sort.Strings(ks)
			base := int64(s.attrOff[v])
			for ki, k := range ks {
				if _, ok := seen[a[k]]; !ok {
					seen[a[k]] = base + int64(ki)
				}
			}
		}
	}) {
		s.syms.Intern(fs.name)
	}

	// The table is complete and immutable for the rest of the build; fills
	// read it lock-free.
	codes := s.syms.view()

	// ---- fill + sort: disjoint ranges, degree-balanced shards ------------
	s.out = make([]CSREdge, s.outOff[n])
	s.in = make([]CSREdge, s.inOff[n])
	s.attrPairs = make([]AttrPair, totalAttrs)
	runShards(shardByOffsets(s.outOff, workers), func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := s.out[s.outOff[v]:s.outOff[v+1]]
			for i := range g.out[v] {
				row[i] = CSREdge{To: g.out[v][i].To, Label: codes[g.out[v][i].Label]}
			}
			sortCSR(row)
		}
	})
	runShards(shardByOffsets(s.inOff, workers), func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := s.in[s.inOff[v]:s.inOff[v+1]]
			for i := range g.in[v] {
				row[i] = CSREdge{To: g.in[v][i].To, Label: codes[g.in[v][i].Label]}
			}
			sortCSR(row)
		}
	})
	runShards(shardByOffsets(s.attrOff, workers), func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			a := g.attrs[v]
			if len(a) == 0 {
				continue
			}
			ks := keyArena[s.attrOff[v]:s.attrOff[v+1]]
			row := s.attrPairs[s.attrOff[v]:s.attrOff[v+1]]
			for i, k := range ks {
				row[i] = AttrPair{Name: codes[k], Val: codes[a[k]]}
			}
			sortAttrPairs(row)
		}
	})

	// ---- classes: per-worker counts merged into offsets, cursor fills ----
	// Node-label codes were interned first, so they are bounded by a small
	// prefix of the table; per-worker count/cursor arrays size to that
	// prefix, not the full (value-heavy) namespace.
	maxLabel := Sym(0)
	runShards(nodeShards, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			s.labels[v] = codes[g.labels[v]]
		}
	})
	for _, l := range s.labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	nl := int(maxLabel) + 1
	counts := make([][]int32, len(nodeShards))
	runShards(nodeShards, func(si, lo, hi int) {
		c := make([]int32, nl)
		for v := lo; v < hi; v++ {
			c[s.labels[v]]++
		}
		counts[si] = c
	})
	s.classOff = make([]int32, s.syms.Len()+1)
	for _, c := range counts {
		for l, k := range c {
			s.classOff[l+1] += k
		}
	}
	for i := 1; i < len(s.classOff); i++ {
		s.classOff[i] += s.classOff[i-1]
	}
	s.classes = make([]NodeID, n)
	starts := make([][]int32, len(nodeShards))
	run := make([]int32, nl)
	for si := range nodeShards {
		st := make([]int32, nl)
		for l := 0; l < nl; l++ {
			st[l] = s.classOff[l] + run[l]
		}
		starts[si] = st
		for l, k := range counts[si] {
			run[l] += k
		}
	}
	runShards(nodeShards, func(si, lo, hi int) {
		cur := starts[si]
		for v := lo; v < hi; v++ {
			l := s.labels[v]
			s.classes[cur[l]] = NodeID(v)
			cur[l]++
		}
	})
	return s
}
