package graph

import (
	"fmt"
	"sync"
)

// Sym is a dense interned code for a node label, edge label, attribute
// name, or attribute value. Snapshots compare labels as Sym equality
// instead of string comparison in the matching inner loop, and literal
// programs (core.LiteralProgram) compare attribute values the same way;
// see Symbols.
type Sym int32

const (
	// WildcardSym is the interned code of the pattern wildcard label "_"
	// (pattern.Wildcard; the literal is repeated here because package
	// pattern depends on this package). Every Symbols table interns it at
	// construction so the wildcard check compiles to `sym == 0`.
	WildcardSym Sym = 0

	// NoSym marks a name that is absent from a Symbols table. Compiled
	// patterns use it for labels the frozen graph never mentions: NoSym
	// equals no concrete code and is not the wildcard, so it matches
	// nothing.
	NoSym Sym = -1
)

// Symbols is an interning table mapping names (node labels, edge labels,
// attribute names, and attribute values — one shared namespace) to dense
// Sym codes. A Snapshot owns one; package pattern compiles patterns
// against it so pattern/graph label comparison is integer equality,
// including the wildcard check, and package core lowers X → Y literals
// onto it so per-match attribute checking is integer equality too.
//
// The table is safe for concurrent use: Lookup/Name/Len take a shared
// lock, Intern an exclusive one. Codes are append-only, so readers always
// observe a consistent prefix. This matters for the delta-overlay
// lifecycle, where a live table can be grown (rule lowering against an
// Overlay interns labels and constants) while other prepared rule sets
// compile against it; the per-match hot paths never touch the table — they
// run on resolved codes. Freeze-time bulk interning goes through the same
// lock; the cost is noise against the O(|V|+|E| log d) build.
type Symbols struct {
	mu    sync.RWMutex
	codes map[string]Sym
	names []string
}

// NewSymbols returns a table with the wildcard pre-interned as WildcardSym.
func NewSymbols() *Symbols {
	s := &Symbols{codes: make(map[string]Sym, 16)}
	s.Intern("_")
	return s
}

// Intern returns the code of name, assigning the next dense code if the
// name is new.
func (s *Symbols) Intern(name string) Sym {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.codes[name]; ok {
		return c
	}
	c := Sym(len(s.names))
	s.codes[name] = c
	s.names = append(s.names, name)
	return c
}

// Lookup returns the code of name without interning; NoSym if absent.
func (s *Symbols) Lookup(name string) Sym {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.codes[name]; ok {
		return c
	}
	return NoSym
}

// Name returns the string a code was interned from.
func (s *Symbols) Name(c Sym) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.names[c]
}

// Len returns the number of interned names.
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Names returns a copy of the interned names in code order (index i is the
// string Sym(i) was interned from) — the serializable image of the table.
func (s *Symbols) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.names...)
}

// adoptSymbols rebuilds a table from a serialized name list. The list must
// be a valid table image: non-empty, wildcard first (codes are dense and
// the wildcard is always interned at construction), no duplicates (two
// codes for one name would break interning's bijection).
func adoptSymbols(names []string) (*Symbols, error) {
	if len(names) == 0 || names[0] != "_" {
		return nil, fmt.Errorf("graph: symbol table must start with the wildcard %q", "_")
	}
	s := &Symbols{codes: make(map[string]Sym, len(names)), names: append([]string(nil), names...)}
	for i, n := range s.names {
		if _, dup := s.codes[n]; dup {
			return nil, fmt.Errorf("graph: duplicate symbol %q", n)
		}
		s.codes[n] = Sym(i)
	}
	return s, nil
}

// view returns the table's name -> code index for lock-free reads. Only
// for phases with no concurrent Intern — the parallel freeze fills read it
// after the table is fully built and before the snapshot is published.
func (s *Symbols) view() map[string]Sym { return s.codes }
