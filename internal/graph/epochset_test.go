package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomTestGraph(rng *rand.Rand, n, e int) *Graph {
	g := New(n, e)
	labels := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		var t Attrs
		if rng.Intn(2) == 0 {
			t = Attrs{"val": fmt.Sprintf("v%d", rng.Intn(5))}
		}
		g.AddNode(labels[rng.Intn(len(labels))], t)
	}
	seen := map[[3]int]bool{}
	for i := 0; i < e; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		l := rng.Intn(3)
		k := [3]int{from, to, l}
		if seen[k] {
			continue // honor the no-duplicate-edge invariant
		}
		seen[k] = true
		g.MustAddEdge(NodeID(from), NodeID(to), labels[l])
	}
	return g
}

// TestBlockIntoMatchesNeighborhoodUnion pins the EpochSet block assembly
// (reused across units, the engines' hot path) to the reference union of
// independent Neighborhood traversals, including overlapping multi-pivot
// blocks where a shared visited mask would wrongly truncate the BFS.
func TestBlockIntoMatchesNeighborhoodUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(30)
		g := randomTestGraph(rng, n, 2*n)
		s := g.Freeze()
		set := NewEpochSet(n) // one set reused across iterations: exercises Reset
		for it := 0; it < 10; it++ {
			k := 1 + rng.Intn(3)
			want := make(NodeSet)
			set.Reset()
			for i := 0; i < k; i++ {
				start := NodeID(rng.Intn(n))
				radius := rng.Intn(4)
				want.AddAll(s.Neighborhood(start, radius))
				s.BlockInto(set, start, radius)
			}
			if set.Len() != want.Len() {
				t.Fatalf("trial %d it %d: block size %d, want %d", trial, it, set.Len(), want.Len())
			}
			for v := range want {
				if !set.Contains(v) {
					t.Fatalf("trial %d it %d: node %d missing from block", trial, it, v)
				}
			}
			for _, v := range set.Members() {
				if !want.Contains(v) {
					t.Fatalf("trial %d it %d: node %d wrongly in block", trial, it, v)
				}
			}
		}
	}
}

func TestEpochSetBasics(t *testing.T) {
	s := NewEpochSet(5)
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add should report newness exactly once")
	}
	s.Add(1)
	if !s.Contains(3) || !s.Contains(1) || s.Contains(0) {
		t.Fatal("membership wrong")
	}
	if s.Contains(99) {
		t.Fatal("out-of-range id must not be a member")
	}
	if s.Len() != 2 || len(s.Members()) != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Reset()
	if s.Contains(3) || s.Len() != 0 {
		t.Fatal("Reset did not empty the set")
	}
}

// TestAttrIndexMatchesGraph pins AttrIndex lookups (and their evolution
// under SetAttr/AddNode) to Graph.Attr, via string round-trips since the
// index owns its own symbol table.
func TestAttrIndexMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"val", "x", "y", "zz"}
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(12)
		g := randomTestGraph(rng, n, n)
		ix := NewAttrIndex(g)
		check := func(stage string) {
			for v := 0; v < g.NumNodes(); v++ {
				for _, a := range names {
					want, wantOK := g.Attr(NodeID(v), a)
					sym, symOK := ix.AttrSym(NodeID(v), ix.Syms().Lookup(a))
					if symOK != wantOK {
						t.Fatalf("%s: node %d attr %q presence index=%v graph=%v", stage, v, a, symOK, wantOK)
					}
					if wantOK && ix.Syms().Name(sym) != want {
						t.Fatalf("%s: node %d attr %q = %q, want %q", stage, v, a, ix.Syms().Name(sym), want)
					}
				}
			}
		}
		check("initial")
		for u := 0; u < 15; u++ {
			if rng.Intn(4) == 0 {
				attrs := Attrs{names[rng.Intn(len(names))]: fmt.Sprintf("new%d", rng.Intn(3))}
				g.AddNode("a", attrs)
				ix.AddNode(attrs)
			} else {
				v := NodeID(rng.Intn(g.NumNodes()))
				a := names[rng.Intn(len(names))]
				val := fmt.Sprintf("v%d", rng.Intn(6))
				g.SetAttr(v, a, val)
				ix.SetAttr(v, a, val)
			}
		}
		check("after-mutation")
	}
}

// TestSnapshotAttrArena exercises the interned arena directly, including
// an attribute name that collides with a node label (its Sym code is out
// of lexicographic order relative to other attribute names, so the
// per-node sort by code is what keeps the binary search correct).
func TestSnapshotAttrArena(t *testing.T) {
	g := New(3, 0)
	// "zz" is interned first as a node label, then reused as an attr name:
	// its code is smaller than "aa"'s even though "aa" < "zz" as strings.
	g.AddNode("zz", Attrs{"aa": "1", "zz": "2", "mm": "3"})
	g.AddNode("person", Attrs{"zz": "9"})
	g.AddNode("person", nil)
	s := g.Freeze()
	for _, tc := range []struct {
		v    NodeID
		a    string
		want string
		ok   bool
	}{
		{0, "aa", "1", true}, {0, "zz", "2", true}, {0, "mm", "3", true},
		{1, "zz", "9", true}, {1, "aa", "", false},
		{2, "zz", "", false}, {0, "ghost", "", false},
	} {
		got, ok := s.Attr(tc.v, tc.a)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Attr(%d, %q) = (%q, %v), want (%q, %v)", tc.v, tc.a, got, ok, tc.want, tc.ok)
		}
	}
	// Pairs must be sorted by Name code for every node.
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		ps := s.AttrPairs(v)
		for i := 1; i < len(ps); i++ {
			if ps[i-1].Name >= ps[i].Name {
				t.Fatalf("node %d pairs not strictly sorted by Name: %v", v, ps)
			}
		}
	}
	if _, ok := s.AttrSym(0, NoSym); ok {
		t.Fatal("AttrSym(NoSym) must miss")
	}
}

// TestInducedSubgraphAttrIsolation is the snapshot-version audit
// regression: InducedSubgraph must copy attribute tuples, so a SetAttr on
// the subgraph bumps only the subgraph's version and can never mutate the
// parent behind its cached snapshot.
func TestInducedSubgraphAttrIsolation(t *testing.T) {
	g := New(2, 1)
	g.AddNode("person", Attrs{"val": "old"})
	g.AddNode("person", Attrs{"val": "x"})
	g.MustAddEdge(0, 1, "knows")
	snap := g.Freeze()

	sub, remap := g.InducedSubgraph([]NodeID{0, 1})
	sub.SetAttr(remap[0], "val", "mutated")

	if v, _ := g.Attr(0, "val"); v != "old" {
		t.Fatalf("parent attr mutated through subgraph: %q", v)
	}
	if g.Freeze() != snap {
		t.Fatal("parent snapshot invalidated by subgraph mutation")
	}
	if v, _ := snap.Attr(0, "val"); v != "old" {
		t.Fatalf("frozen arena changed: %q", v)
	}
	if v, _ := sub.Attr(remap[0], "val"); v != "mutated" {
		t.Fatalf("subgraph SetAttr lost: %q", v)
	}
}

// TestCloneSnapshotIsolation: same audit for Clone.
func TestCloneSnapshotIsolation(t *testing.T) {
	g := New(1, 0)
	g.AddNode("n", Attrs{"k": "orig"})
	snap := g.Freeze()
	c := g.Clone()
	c.SetAttr(0, "k", "changed")
	if g.Freeze() != snap {
		t.Fatal("clone mutation invalidated the original's snapshot")
	}
	if v, _ := snap.Attr(0, "k"); v != "orig" {
		t.Fatalf("frozen arena observed clone mutation: %q", v)
	}
	if cv, _ := c.Freeze().Attr(0, "k"); cv != "changed" {
		t.Fatalf("clone snapshot stale: %q", cv)
	}
}
