package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// refIntersect is the map-based reference: NodeIDs present in every range.
func refIntersect(ranges [][]CSREdge) []NodeID {
	counts := make(map[NodeID]int)
	for _, r := range ranges {
		seen := make(map[NodeID]bool)
		for _, e := range r {
			if !seen[e.To] {
				seen[e.To] = true
				counts[e.To]++
			}
		}
	}
	var out []NodeID
	for v, c := range counts {
		if c == len(ranges) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRange(rng *rand.Rand, n, space int, withDups bool) []CSREdge {
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, rng.Intn(space))
	}
	sort.Ints(ids)
	out := make([]CSREdge, 0, n)
	for i, id := range ids {
		if !withDups && i > 0 && id == ids[i-1] {
			continue
		}
		out = append(out, CSREdge{To: NodeID(id), Label: 1})
	}
	return out
}

func TestSeekGE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		es := sortedRange(rng, rng.Intn(40), 60, true)
		for trial := 0; trial < 20; trial++ {
			from := 0
			if len(es) > 0 {
				from = rng.Intn(len(es) + 1)
			}
			to := NodeID(rng.Intn(70))
			got := SeekGE(es, from, to)
			want := from
			for want < len(es) && es[want].To < to {
				want++
			}
			if got != want {
				t.Fatalf("SeekGE(%v, %d, %d) = %d, want %d", es, from, to, got, want)
			}
		}
	}
}

func TestIntersectAdjacencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		k := 1 + rng.Intn(5)
		ranges := make([][]CSREdge, k)
		for i := range ranges {
			ranges[i] = sortedRange(rng, rng.Intn(30), 40, rng.Intn(2) == 0)
		}
		got := IntersectAdjacency(nil, ranges)
		want := refIntersect(ranges)
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %v want %v (ranges %v)", iter, got, want, ranges)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: got %v want %v", iter, got, want)
			}
		}
	}
}

func TestIntersectAdjacencyEdgeCases(t *testing.T) {
	if got := IntersectAdjacency(nil, nil); len(got) != 0 {
		t.Fatalf("empty arity: %v", got)
	}
	empty := [][]CSREdge{{{To: 1}}, nil}
	if got := IntersectAdjacency(nil, empty); len(got) != 0 {
		t.Fatalf("one empty range: %v", got)
	}
	// Disjoint ranges.
	dis := [][]CSREdge{{{To: 1}, {To: 2}}, {{To: 3}, {To: 4}}}
	if got := IntersectAdjacency(nil, dis); len(got) != 0 {
		t.Fatalf("disjoint: %v", got)
	}
	// Duplicates collapse.
	dup := [][]CSREdge{{{To: 5}, {To: 5}}, {{To: 5}, {To: 5}, {To: 6}}}
	if got := IntersectAdjacency(nil, dup); len(got) != 1 || got[0] != 5 {
		t.Fatalf("duplicates: %v", got)
	}
	// Arity above MaxIntersectArity still correct (allocates, never wrong).
	var wide [][]CSREdge
	for i := 0; i < MaxIntersectArity+3; i++ {
		wide = append(wide, []CSREdge{{To: 2}, {To: NodeID(10 + i)}})
	}
	if got := IntersectAdjacency(nil, wide); len(got) != 1 || got[0] != 2 {
		t.Fatalf("wide arity: %v", got)
	}
}

// TestIntersectAdjacencyZeroAlloc pins the kernel's steady state at zero
// allocations: reused dst capacity, stack-resident cursor array.
func TestIntersectAdjacencyZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := sortedRange(rng, 200, 300, false)
	b := sortedRange(rng, 200, 300, false)
	c := sortedRange(rng, 200, 300, false)
	ranges := [][]CSREdge{a, b, c}
	dst := make([]NodeID, 0, 400)
	allocs := testing.AllocsPerRun(100, func() {
		dst = IntersectAdjacency(dst[:0], ranges)
	})
	if allocs != 0 {
		t.Fatalf("IntersectAdjacency allocates %.1f per run, want 0", allocs)
	}
}
