package graph

import (
	"sort"
	"sync"
)

// CSREdge is one adjacency entry of a Snapshot: the other endpoint and the
// interned edge label. Within a node's range entries are sorted by
// (Label, To), so label-filtered neighbor sets are contiguous subranges and
// edge-existence tests are binary searches.
type CSREdge struct {
	To    NodeID
	Label Sym
}

// AttrPair is one interned attribute of a node's tuple: attribute name and
// value as symbol codes. Within a node's range pairs are sorted by Name,
// so attribute lookup is a binary search over int32 pairs and literal
// evaluation (core.LiteralProgram) is pure integer comparison.
type AttrPair struct {
	Name Sym
	Val  Sym
}

// Snapshot is a compiled, immutable CSR (compressed sparse row) view of a
// Graph: flat adjacency arrays with per-node offsets, interned labels, and
// contiguous per-label candidate ranges. It is the execution representation
// the match engine and the validation engines run against.
//
// Lifecycle: build/mutate a *Graph, call Freeze, then match against the
// Snapshot. A Snapshot is safe for concurrent readers (all engines share
// one across workers). It reflects the graph at freeze time; mutating the
// source graph afterwards invalidates it — call Freeze again to get a fresh
// view (Freeze is cached and only rebuilds after a mutation). Attribute
// tuples are copied into an interned arena at freeze time, so later
// mutations of the source graph's maps never leak into a frozen view.
type Snapshot struct {
	g    *Graph
	syms *Symbols

	labels []Sym // node label codes, indexed by NodeID

	attrOff   []int32 // len NumNodes+1; attrPairs[attrOff[v]:attrOff[v+1]] is v's tuple
	attrPairs []AttrPair

	outOff []int32 // len NumNodes+1; out[outOff[v]:outOff[v+1]] is v's out-adjacency
	out    []CSREdge
	inOff  []int32
	in     []CSREdge

	classOff []int32  // per Sym: offsets into classNodes (node-label classes)
	classes  []NodeID // nodes grouped by label code, ascending IDs within a class

	stripeMu sync.RWMutex               // guards stripes
	stripes  map[stripeKey]*stripeIndex // residue regroupings, per (label, mod)

	scratch sync.Pool // *bfsScratch, reused across Neighborhood traversals
}

// Freeze returns the CSR snapshot of g, building it on first use and
// whenever the graph has been mutated since the last call; otherwise the
// cached snapshot is returned. O(|V| + |E| log d) to build (sharded across
// FreezeWorkers goroutines for large graphs, serial under GOMAXPROCS==1 or
// below the size floor), O(1) when cached. Concurrent Freeze calls on an
// unmutated graph are safe and share one snapshot: the first caller builds
// while later callers wait on the build, not on the cache mutex, so a long
// freeze never blocks unrelated lock holders (SnapshotBuilds, a racing
// version check). Freeze concurrent with mutation is not safe, just as
// matching during mutation never was. The returned Snapshot itself is safe
// to share across goroutines.
func (g *Graph) Freeze() *Snapshot {
	g.snapMu.Lock()
	for {
		v := g.version
		if g.snap != nil && g.snapVersion == v {
			s := g.snap
			g.snapMu.Unlock()
			return s
		}
		b := g.snapBuilding
		if b == nil || b.version != v {
			break
		}
		// Another caller is building this version: wait outside the lock
		// and re-check (the build-once guard — exactly one construction
		// per version no matter how many concurrent callers).
		g.snapMu.Unlock()
		<-b.done
		g.snapMu.Lock()
	}
	b := &snapBuild{version: g.version, done: make(chan struct{})}
	g.snapBuilding = b
	g.snapMu.Unlock()

	// The O(|V|+|E|) construction runs outside the mutex. Publish and
	// cleanup run deferred so a panicking build (mutation racing the
	// freeze) still clears the in-flight marker and releases waiters —
	// they re-check the cache and retry instead of blocking forever.
	var s *Snapshot
	defer func() {
		g.snapMu.Lock()
		if s != nil {
			g.snap, g.snapVersion = s, b.version
			g.snapBuilds++
		}
		if g.snapBuilding == b {
			g.snapBuilding = nil
		}
		g.snapMu.Unlock()
		close(b.done)
	}()
	s = buildSnapshotAuto(g)
	return s
}

func buildSnapshot(g *Graph) *Snapshot {
	n := g.NumNodes()
	s := &Snapshot{
		g:      g,
		syms:   NewSymbols(),
		labels: make([]Sym, n),
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
		out:    make([]CSREdge, 0, g.edges),
		in:     make([]CSREdge, 0, g.edges),
	}
	// Intern node labels in NodeID order so codes are deterministic.
	for v := 0; v < n; v++ {
		s.labels[v] = s.syms.Intern(g.labels[v])
	}
	// Flatten adjacency; edge labels interned in (source, position) order.
	for v := 0; v < n; v++ {
		s.outOff[v] = int32(len(s.out))
		for _, he := range g.out[v] {
			s.out = append(s.out, CSREdge{To: he.To, Label: s.syms.Intern(he.Label)})
		}
	}
	s.outOff[n] = int32(len(s.out))
	for v := 0; v < n; v++ {
		s.inOff[v] = int32(len(s.in))
		for _, he := range g.in[v] {
			s.in = append(s.in, CSREdge{To: he.To, Label: s.syms.Intern(he.Label)})
		}
	}
	s.inOff[n] = int32(len(s.in))
	// Intern attribute names and values and flatten every node's tuple
	// into one contiguous (Name, Val) arena. Names are interned from one
	// sorted pass over the distinct set so their codes are deterministic;
	// values are interned in (node, sorted attribute name) order. Copying
	// the tuples here (instead of sharing the graph's maps by reference)
	// is what lets literal evaluation run without string hashing — and it
	// means a frozen view can never observe a later map mutation.
	distinct := make(map[string]struct{}, 8)
	total := 0
	for _, a := range g.attrs {
		total += len(a)
		for k := range a {
			distinct[k] = struct{}{}
		}
	}
	attrNames := make([]string, 0, len(distinct))
	for k := range distinct {
		attrNames = append(attrNames, k)
	}
	sort.Strings(attrNames)
	for _, k := range attrNames {
		s.syms.Intern(k)
	}
	s.attrOff = make([]int32, n+1)
	s.attrPairs = make([]AttrPair, 0, total)
	var keyScratch []string
	for v := 0; v < n; v++ {
		s.attrOff[v] = int32(len(s.attrPairs))
		a := g.attrs[v]
		if len(a) == 0 {
			continue
		}
		keyScratch = keyScratch[:0]
		for k := range a {
			keyScratch = append(keyScratch, k)
		}
		sort.Strings(keyScratch)
		for _, k := range keyScratch {
			s.attrPairs = append(s.attrPairs, AttrPair{Name: s.syms.Lookup(k), Val: s.syms.Intern(a[k])})
		}
		// The shared namespace can assign an attribute name a code out of
		// lexicographic order (when it collides with an earlier-interned
		// label), so re-sort the tuple by Name code for binary search.
		sortAttrPairs(s.attrPairs[s.attrOff[v]:])
	}
	s.attrOff[n] = int32(len(s.attrPairs))
	// Sort each node's adjacency by (Label, To): label-filtered neighbor
	// iteration becomes a contiguous subrange, HasEdge a binary search.
	for v := 0; v < n; v++ {
		sortCSR(s.out[s.outOff[v]:s.outOff[v+1]])
		sortCSR(s.in[s.inOff[v]:s.inOff[v+1]])
	}
	// Label classes: counting sort of nodes by label code. Iterating nodes
	// in ID order keeps every class ascending, preserving the deterministic
	// candidate order of the mutable graph's label index.
	s.classOff = make([]int32, s.syms.Len()+1)
	for _, l := range s.labels {
		s.classOff[l+1]++
	}
	for i := 1; i < len(s.classOff); i++ {
		s.classOff[i] += s.classOff[i-1]
	}
	s.classes = make([]NodeID, n)
	fill := append([]int32(nil), s.classOff[:len(s.classOff)-1]...)
	for v := 0; v < n; v++ {
		l := s.labels[v]
		s.classes[fill[l]] = NodeID(v)
		fill[l]++
	}
	return s
}

func sortCSR(es []CSREdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].To < es[j].To
	})
}

// sortAttrPairs orders a node's tuple by Name code. Tuples are tiny, so an
// insertion sort beats sort.Slice's closure machinery during freeze.
func sortAttrPairs(ps []AttrPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Name < ps[j-1].Name; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Syms returns the snapshot's symbol table; patterns are compiled against
// it (pattern.Compile).
func (s *Snapshot) Syms() *Symbols { return s.syms }

// Graph returns the source graph.
func (s *Snapshot) Graph() *Graph { return s.g }

// NumNodes returns |V| at freeze time.
func (s *Snapshot) NumNodes() int { return len(s.labels) }

// NumEdges returns |E| at freeze time.
func (s *Snapshot) NumEdges() int { return len(s.out) }

// Label returns the interned label code of node v.
func (s *Snapshot) Label(v NodeID) Sym { return s.labels[v] }

// LabelName returns the string label of node v.
func (s *Snapshot) LabelName(v NodeID) string { return s.syms.Name(s.labels[v]) }

// Attr returns the value of attribute a on node v at freeze time, read
// from the interned arena (string-keyed convenience; hot paths use
// AttrSym).
func (s *Snapshot) Attr(v NodeID, a string) (string, bool) {
	val, ok := s.AttrSym(v, s.syms.Lookup(a))
	if !ok {
		return "", false
	}
	return s.syms.Name(val), true
}

// AttrSym returns the interned value of attribute name on node v, or
// (NoSym, false) when the node does not carry it. Lookup is a binary
// search over the node's (Name, Val) pairs — no string hashing, no map.
// name == NoSym (an attribute the frozen graph never mentions) matches
// nothing.
func (s *Snapshot) AttrSym(v NodeID, name Sym) (Sym, bool) {
	return lookupAttr(s.attrPairs[s.attrOff[v]:s.attrOff[v+1]], name)
}

// lookupAttr is the lower-bound binary search over a name-sorted tuple
// shared by Snapshot.AttrSym and AttrIndex.AttrSym.
func lookupAttr(ps []AttrPair, name Sym) (Sym, bool) {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].Name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ps) && ps[lo].Name == name {
		return ps[lo].Val, true
	}
	return NoSym, false
}

// AttrPairs returns v's attribute tuple as interned pairs sorted by Name.
// Shared; read-only.
func (s *Snapshot) AttrPairs(v NodeID) []AttrPair {
	return s.attrPairs[s.attrOff[v]:s.attrOff[v+1]]
}

// Out returns v's out-adjacency range, sorted by (Label, To). Shared;
// read-only.
func (s *Snapshot) Out(v NodeID) []CSREdge { return s.out[s.outOff[v]:s.outOff[v+1]] }

// In returns v's in-adjacency range (CSREdge.To is the edge source),
// sorted by (Label, To). Shared; read-only.
func (s *Snapshot) In(v NodeID) []CSREdge { return s.in[s.inOff[v]:s.inOff[v+1]] }

// OutDegree returns the number of out-edges of v.
func (s *Snapshot) OutDegree(v NodeID) int { return int(s.outOff[v+1] - s.outOff[v]) }

// InDegree returns the number of in-edges of v.
func (s *Snapshot) InDegree(v NodeID) int { return int(s.inOff[v+1] - s.inOff[v]) }

// OutWith returns the contiguous subrange of v's out-adjacency carrying
// edge label l; the whole range for WildcardSym. O(log d).
func (s *Snapshot) OutWith(v NodeID, l Sym) []CSREdge {
	return labelRange(s.Out(v), l)
}

// InWith is OutWith over the in-adjacency.
func (s *Snapshot) InWith(v NodeID, l Sym) []CSREdge {
	return labelRange(s.In(v), l)
}

func labelRange(es []CSREdge, l Sym) []CSREdge {
	if l == WildcardSym {
		return es
	}
	lo := sort.Search(len(es), func(i int) bool { return es[i].Label >= l })
	hi := lo
	for hi < len(es) && es[hi].Label == l {
		hi++
	}
	return es[lo:hi]
}

// HasEdge reports whether a from -[l]-> to edge exists; l == WildcardSym
// matches any label. Binary search for a concrete label; a linear scan of
// the smaller endpoint range for the wildcard (label groups make the
// neighbor column non-monotonic across the whole range). The body repeats
// hasEdgeRanges rather than calling it: this sits in the matcher's
// per-candidate loop, and the extra call level was a measured regression.
func (s *Snapshot) HasEdge(from, to NodeID, l Sym) bool {
	if l == WildcardSym {
		out := s.Out(from)
		if in := s.In(to); len(in) < len(out) {
			for i := range in {
				if in[i].To == from {
					return true
				}
			}
			return false
		}
		for i := range out {
			if out[i].To == to {
				return true
			}
		}
		return false
	}
	es := s.Out(from)
	i := sort.Search(len(es), func(i int) bool {
		if es[i].Label != l {
			return es[i].Label > l
		}
		return es[i].To >= to
	})
	return i < len(es) && es[i].Label == l && es[i].To == to
}

// hasEdgeRanges is the edge-existence test over a node pair's sorted
// adjacency ranges; the Overlay's HasEdge runs on it (its adjacency
// slices come from patches or the base arena).
func hasEdgeRanges(out, in []CSREdge, from, to NodeID, l Sym) bool {
	if l == WildcardSym {
		if len(in) < len(out) {
			for i := range in {
				if in[i].To == from {
					return true
				}
			}
			return false
		}
		for i := range out {
			if out[i].To == to {
				return true
			}
		}
		return false
	}
	i := sort.Search(len(out), func(i int) bool {
		if out[i].Label != l {
			return out[i].Label > l
		}
		return out[i].To >= to
	})
	return i < len(out) && out[i].Label == l && out[i].To == to
}

// NodesWith returns the candidate class of label code l: all nodes carrying
// it, ascending. The contiguous range replaces the mutable graph's
// map[string][]NodeID lookup. Shared; read-only.
func (s *Snapshot) NodesWith(l Sym) []NodeID {
	if l < 0 || int(l) >= len(s.classOff)-1 {
		return nil
	}
	return s.classes[s.classOff[l]:s.classOff[l+1]]
}

// NodesWithLabel is NodesWith by label string.
func (s *Snapshot) NodesWithLabel(label string) []NodeID {
	return s.NodesWith(s.syms.Lookup(label))
}

// ClassSize returns the number of nodes carrying label code l.
func (s *Snapshot) ClassSize(l Sym) int {
	if l < 0 || int(l) >= len(s.classOff)-1 {
		return 0
	}
	return int(s.classOff[l+1] - s.classOff[l])
}

// stripeKey identifies one cached residue regrouping of a label class.
type stripeKey struct {
	l   Sym
	mod int
}

// stripeIndex is a label class regrouped by node-ID residue: nodes holds
// the class permuted so each residue's members are contiguous (ascending
// within a residue), off[r]..off[r+1] delimiting residue r.
type stripeIndex struct {
	off   []int32
	nodes []NodeID
}

// NodesWithStripe returns the candidates of label class l whose ID is
// congruent to rem modulo mod — the exact residue sub-range the
// replicate-and-split stripes enumerate, replacing the per-candidate
// `v mod m == r` filter. The regrouping is computed once per (label, mod)
// pair and cached; steady-state calls are a lock-shared map hit returning
// a subslice. Safe for concurrent use.
func (s *Snapshot) NodesWithStripe(l Sym, mod, rem int) []NodeID {
	if mod <= 1 {
		return s.NodesWith(l)
	}
	if rem < 0 || rem >= mod {
		return nil
	}
	key := stripeKey{l, mod}
	s.stripeMu.RLock()
	ix, ok := s.stripes[key]
	s.stripeMu.RUnlock()
	if !ok {
		ix = buildStripeIndex(s.NodesWith(l), mod)
		s.stripeMu.Lock()
		if prev, dup := s.stripes[key]; dup {
			ix = prev // a racing builder won; share its index
		} else {
			if s.stripes == nil {
				s.stripes = make(map[stripeKey]*stripeIndex)
			}
			s.stripes[key] = ix
		}
		s.stripeMu.Unlock()
	}
	return ix.nodes[ix.off[rem]:ix.off[rem+1]]
}

// buildStripeIndex counting-sorts a class by ID residue.
func buildStripeIndex(class []NodeID, mod int) *stripeIndex {
	ix := &stripeIndex{
		off:   make([]int32, mod+1),
		nodes: make([]NodeID, len(class)),
	}
	for _, v := range class {
		ix.off[int(v)%mod+1]++
	}
	for r := 1; r <= mod; r++ {
		ix.off[r] += ix.off[r-1]
	}
	fill := append([]int32(nil), ix.off[:mod]...)
	for _, v := range class {
		r := int(v) % mod
		ix.nodes[fill[r]] = v
		fill[r]++
	}
	return ix
}

// bfsScratch is reusable traversal state: an epoch-stamped visited array
// (one clear per 2³²−1 traversals instead of an O(|V|) allocation per
// call — workload estimation runs one traversal per pivot candidate) plus
// the frontier and discovery buffers. Pooled on the Snapshot so concurrent
// workers each grab their own.
type bfsScratch struct {
	stamp    []uint32
	epoch    uint32
	frontier []NodeID
	next     []NodeID
	nodes    []NodeID
}

func (sc *bfsScratch) visited(v NodeID) bool { return sc.stamp[v] == sc.epoch }
func (sc *bfsScratch) visit(v NodeID)        { sc.stamp[v] = sc.epoch }

func (s *Snapshot) getScratch() *bfsScratch {
	sc, _ := s.scratch.Get().(*bfsScratch)
	if sc == nil {
		sc = &bfsScratch{stamp: make([]uint32, s.NumNodes())}
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide, clear them
		clear(sc.stamp)
		sc.epoch = 1
	}
	return sc
}

// bfs collects the nodes within c undirected hops of start (in discovery
// order, start first) into the returned scratch, whose stamp array is the
// visited mask. The caller must Put the scratch back into s.scratch when
// done. Returns nil for an out-of-range start.
func (s *Snapshot) bfs(start NodeID, c int) *bfsScratch {
	if int(start) < 0 || int(start) >= s.NumNodes() {
		return nil
	}
	sc := s.getScratch()
	sc.visit(start)
	frontier := append(sc.frontier[:0], start)
	next := sc.next[:0]
	nodes := append(sc.nodes[:0], start)
	for hop := 0; hop < c && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range s.Out(v) {
				if !sc.visited(e.To) {
					sc.visit(e.To)
					next = append(next, e.To)
					nodes = append(nodes, e.To)
				}
			}
			for _, e := range s.In(v) {
				if !sc.visited(e.To) {
					sc.visit(e.To)
					next = append(next, e.To)
					nodes = append(nodes, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next, sc.nodes = frontier, next, nodes
	return sc
}

// Neighborhood returns the nodes within c undirected hops of start,
// including start, sorted ascending — Graph.Neighborhood over the CSR view.
func (s *Snapshot) Neighborhood(start NodeID, c int) []NodeID {
	sc := s.bfs(start, c)
	if sc == nil {
		return nil
	}
	out := append([]NodeID(nil), sc.nodes...)
	s.scratch.Put(sc)
	sortNodeIDs(out)
	return out
}

// NeighborhoodSize returns |V'| + |E'| of the subgraph induced by the c-hop
// neighborhood of start — the |G_z̄| block-size measure — without
// materializing the subgraph.
func (s *Snapshot) NeighborhoodSize(start NodeID, c int) int {
	sc := s.bfs(start, c)
	if sc == nil {
		return 0
	}
	size := len(sc.nodes)
	for _, v := range sc.nodes {
		for _, e := range s.Out(v) {
			if sc.visited(e.To) {
				size++
			}
		}
	}
	s.scratch.Put(sc)
	return size
}
