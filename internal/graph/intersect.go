package graph

// Sorted-range intersection primitives for the worst-case-optimal join step
// of the matcher (Leapfrog Triejoin style). Both Snapshot and Overlay keep
// every node's adjacency sorted by (Label, To), so a concrete-label subrange
// (OutWith/InWith with l != WildcardSym) is sorted ascending by To — exactly
// the shape a multiway sorted intersection wants. Wildcard subranges span
// label groups and are NOT To-sorted; callers must never hand one to
// IntersectAdjacency.

// MaxIntersectArity is the largest number of adjacency ranges the matcher
// intersects at once. Pattern nodes with more matched neighbors than this
// intersect the first MaxIntersectArity ranges and leave the rest to the
// per-candidate feasibility check — correctness never depends on arity.
const MaxIntersectArity = 8

// SeekGE returns the smallest index i in [from, len(es)] with
// es[i].To >= to, assuming es is sorted ascending by To. It gallops
// (doubling steps) from the starting position before binary-searching the
// final block, so a sequence of seeks over one range is adaptive: total
// cost O(k log(n/k)) for k seeks landing across an n-entry range, far below
// k full binary searches when the seeks advance locally.
func SeekGE(es []CSREdge, from int, to NodeID) int {
	if from >= len(es) || es[from].To >= to {
		return from
	}
	// Invariant: es[i].To < to; es[i+step].To is the probe.
	i, step := from, 1
	for i+step < len(es) && es[i+step].To < to {
		i += step
		step <<= 1
	}
	lo, hi := i+1, i+step
	if hi > len(es) {
		hi = len(es)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if es[mid].To < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntersectAdjacency appends to dst every NodeID present in all of the
// given adjacency ranges and returns the extended slice, ascending and
// deduplicated (parallel duplicate (from, to, label) triples, which sit
// adjacent in a sorted range, collapse to one emission). Each range must be
// sorted ascending by To — a single concrete-label run of a Snapshot or
// Overlay adjacency; never a WildcardSym range.
//
// The merge is a round-robin leapfrog: the current candidate is the largest
// head seen so far, and each range in turn gallops (SeekGE) to it, either
// confirming membership or raising the candidate. Cost is proportional to
// the output plus the number of "fence posts" where ranges overtake each
// other — on ranges with little overlap it skips runs of every input,
// where iterate-smallest-and-probe always pays for the whole smallest
// range. Zero allocations for arity <= MaxIntersectArity.
func IntersectAdjacency(dst []NodeID, ranges [][]CSREdge) []NodeID {
	k := len(ranges)
	if k == 0 {
		return dst
	}
	if k == 1 {
		es := ranges[0]
		for i := range es {
			if i > 0 && es[i].To == es[i-1].To {
				continue
			}
			dst = append(dst, es[i].To)
		}
		return dst
	}
	for i := range ranges {
		if len(ranges[i]) == 0 {
			return dst
		}
	}
	var posArr [MaxIntersectArity]int
	pos := posArr[:]
	if k > MaxIntersectArity {
		pos = make([]int, k)
	}
	i := 0
	x := ranges[0][0].To
	matched := 1
	for {
		i++
		if i == k {
			i = 0
		}
		r := ranges[i]
		p := SeekGE(r, pos[i], x)
		if p == len(r) {
			return dst
		}
		pos[i] = p
		if r[p].To != x {
			x = r[p].To
			matched = 1
			continue
		}
		matched++
		if matched < k {
			continue
		}
		dst = append(dst, x)
		// Advance this range past x (collapsing duplicates); the other
		// ranges seek past it on their next turn.
		for p < len(r) && r[p].To == x {
			p++
		}
		if p == len(r) {
			return dst
		}
		pos[i] = p
		x = r[p].To
		matched = 1
	}
}
