package graph

// EpochSet is a reusable node set over a dense ID space: membership is an
// epoch-stamped array probe, clearing is an epoch bump, and the member
// list is tracked for iteration. It exists for the engines' per-unit data
// blocks — a worker materializes thousands of blocks per run, and a fresh
// hash set per block dominated the detection phase's allocations. One
// EpochSet per worker amortizes everything: after warm-up, Reset + BFS
// fill + membership probes during enumeration are allocation-free.
//
// Not safe for concurrent use; workers own private sets. The zero value
// is unusable — construct with NewEpochSet.
type EpochSet struct {
	stamp   []uint32
	epoch   uint32
	members []NodeID

	// Per-fill BFS state for Snapshot.BlockInto. The visited mask is
	// separate from membership: a block is a *union* of independent
	// traversals, and a node already in the set from an earlier pivot's
	// fill must still be expanded through by the current one.
	visit          []uint32
	visitEpoch     uint32
	frontier, next []NodeID
}

// NewEpochSet returns an empty set over the ID space [0, n).
func NewEpochSet(n int) *EpochSet {
	return &EpochSet{stamp: make([]uint32, n), epoch: 1}
}

// Reset empties the set in O(1) (an epoch bump; the stamp array is cleared
// only on the once-per-2³²−1 wraparound).
func (s *EpochSet) Reset() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	s.members = s.members[:0]
}

// Add inserts id, reporting whether it was new.
func (s *EpochSet) Add(id NodeID) bool {
	if s.stamp[id] == s.epoch {
		return false
	}
	s.stamp[id] = s.epoch
	s.members = append(s.members, id)
	return true
}

// Contains reports membership. Out-of-range IDs (nodes added to the graph
// after the set was sized) are not members.
func (s *EpochSet) Contains(id NodeID) bool {
	return int(id) < len(s.stamp) && s.stamp[id] == s.epoch
}

// Len returns the number of members.
func (s *EpochSet) Len() int { return len(s.members) }

// Members returns the current members in insertion order. The slice is
// invalidated by the next Reset; callers that retain it must copy.
func (s *EpochSet) Members() []NodeID { return s.members }

// beginFill starts a fresh visited mask for one traversal, growing both
// the mask and the membership stamp array to cover an ID space that has
// expanded since the set was built (nodes inserted through an Overlay).
// Grown regions are zeroed, i.e. unvisited and not members.
func (set *EpochSet) beginFill(n int) {
	if len(set.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, set.stamp)
		set.stamp = grown
	}
	if len(set.visit) < n {
		set.visit = make([]uint32, n)
		set.visitEpoch = 0
	}
	set.visitEpoch++
	if set.visitEpoch == 0 {
		clear(set.visit)
		set.visitEpoch = 1
	}
}

// BlockInto adds to set every node within c undirected hops of start
// (including start) — the EpochSet counterpart of Neighborhood for
// assembling multi-pivot data blocks without per-block allocation. The
// set owns its visited mask and frontier buffers, so repeated fills reuse
// them. Out-of-range starts are ignored.
func (s *Snapshot) BlockInto(set *EpochSet, start NodeID, c int) {
	if int(start) < 0 || int(start) >= s.NumNodes() {
		return
	}
	set.beginFill(s.NumNodes())
	set.visit[start] = set.visitEpoch
	set.Add(start)
	frontier := append(set.frontier[:0], start)
	next := set.next[:0]
	for hop := 0; hop < c && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range s.Out(v) {
				if set.visit[e.To] != set.visitEpoch {
					set.visit[e.To] = set.visitEpoch
					set.Add(e.To)
					next = append(next, e.To)
				}
			}
			for _, e := range s.In(v) {
				if set.visit[e.To] != set.visitEpoch {
					set.visit[e.To] = set.visitEpoch
					set.Add(e.To)
					next = append(next, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
	set.frontier, set.next = frontier, next
}
