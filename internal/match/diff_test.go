// Differential property tests: enumeration over a frozen Snapshot must
// yield exactly the same match set as the slice-backed reference path, on
// randomly generated graphs, across every Options dimension (pinning,
// blocks, striping, wildcards, limits).
package match_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// matchKeys canonicalizes a match set for order-insensitive comparison.
func matchKeys(ms []core.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = fmt.Sprint([]graph.NodeID(m))
	}
	sort.Strings(keys)
	return keys
}

func assertSameMatches(t *testing.T, g *graph.Graph, q *pattern.Pattern, opts match.Options, ctx string) {
	t.Helper()
	legacy := matchKeys(match.All(g, q, opts))
	snap := matchKeys(match.AllSnapshot(g.Freeze(), q, opts))
	if len(legacy) != len(snap) {
		t.Fatalf("%s: legacy found %d matches, snapshot %d", ctx, len(legacy), len(snap))
	}
	for i := range legacy {
		if legacy[i] != snap[i] {
			t.Fatalf("%s: match sets differ at %d: legacy %s vs snapshot %s", ctx, i, legacy[i], snap[i])
		}
	}
}

// randomPattern draws a small connected pattern whose labels come from the
// graph (plus occasional wildcards), so it has a chance of matching.
func randomPattern(g *graph.Graph, rng *rand.Rand, nodes int, wildcards bool) *pattern.Pattern {
	labels := g.Labels()
	edgeLabels := map[string]bool{}
	g.Edges(func(e graph.Edge) bool {
		edgeLabels[e.Label] = true
		return len(edgeLabels) < 20
	})
	var els []string
	for l := range edgeLabels {
		els = append(els, l)
	}
	sort.Strings(els)
	pick := func(pool []string) string {
		if wildcards && rng.Intn(4) == 0 {
			return pattern.Wildcard
		}
		return pool[rng.Intn(len(pool))]
	}
	q := pattern.New()
	for i := 0; i < nodes; i++ {
		q.AddNode(pattern.Var(fmt.Sprintf("v%d", i)), pick(labels))
	}
	// Spanning-tree edges keep it connected; a few extras add constraints.
	for i := 1; i < nodes; i++ {
		from, to := rng.Intn(i), i
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		q.AddEdge(from, to, pick(els))
	}
	if nodes > 2 && rng.Intn(2) == 0 {
		q.AddEdge(rng.Intn(nodes), rng.Intn(nodes), pick(els))
	}
	return q
}

func diffGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"synthetic": gen.Synthetic(gen.SyntheticConfig{Nodes: 250, Edges: 700, Skew: 0.6, Seed: 11}),
		"yago2":     gen.YAGO2Like(gen.DatasetConfig{Scale: 60, Seed: 7}),
		"pokec":     gen.PokecLike(gen.DatasetConfig{Scale: 80, Seed: 19}),
	}
}

// TestGeneratorsNoDuplicateEdges enforces the graph type's documented
// invariant on every dataset generator: no duplicate (from, to, label)
// triples. The two enumeration paths agree on match multiplicity exactly
// because of it (see TestDuplicateEdgeSetSemantics). Synthetic and
// PokecLike draw endpoints independently (both deduplicated now), so the
// sweep covers many seeds, not one lucky one.
func TestGeneratorsNoDuplicateEdges(t *testing.T) {
	graphs := diffGraphs()
	graphs["dbpedia"] = gen.DBpediaLike(gen.DatasetConfig{Scale: 60, Seed: 29})
	for seed := int64(0); seed < 30; seed++ {
		graphs[fmt.Sprintf("synthetic/seed=%d", seed)] = gen.Synthetic(
			gen.SyntheticConfig{Nodes: 250, Edges: 700, Skew: 0.6, Seed: seed})
		if seed < 8 {
			graphs[fmt.Sprintf("pokec/seed=%d", seed)] = gen.PokecLike(
				gen.DatasetConfig{Scale: 60, Seed: seed})
		}
	}
	// Post-injection workloads must honor the invariant too: structural
	// noise adds edges (the Fig. 7 motifs), not just attribute noise.
	for seed := int64(0); seed < 8; seed++ {
		g := gen.YAGO2Like(gen.DatasetConfig{Scale: 80, Seed: seed})
		gen.InjectStructural(g, 10, seed+100)
		graphs[fmt.Sprintf("yago2+structural/seed=%d", seed)] = g
	}
	for name, g := range graphs {
		seen := make(map[graph.Edge]bool, g.NumEdges())
		g.Edges(func(e graph.Edge) bool {
			if seen[e] {
				t.Errorf("%s: duplicate edge %v", name, e)
			}
			seen[e] = true
			return true
		})
	}
}

// TestDuplicateEdgeSetSemantics pins down behavior on graphs that violate
// the no-duplicate-edge invariant: the snapshot matcher yields each match
// h once (set semantics), whereas the legacy path re-yields h once per
// parallel duplicate of the adjacency list it happens to iterate. Only the
// snapshot count is contractual.
func TestDuplicateEdgeSetSemantics(t *testing.T) {
	g := graph.New(3, 3)
	a := g.AddNode("x", nil)
	b := g.AddNode("y", nil)
	c := g.AddNode("z", nil)
	g.MustAddEdge(a, c, "e")
	g.MustAddEdge(a, c, "e") // duplicate triple
	g.MustAddEdge(b, c, "e")
	q := pattern.New()
	va := q.AddNode("va", "x")
	vb := q.AddNode("vb", "y")
	vc := q.AddNode("vc", "z")
	q.AddEdge(va, vc, "e")
	q.AddEdge(vb, vc, "e")
	opts := match.Options{Pin: map[int]graph.NodeID{va: a, vb: b}}
	if got := match.CountSnapshot(g.Freeze(), q, opts); got != 1 {
		t.Fatalf("snapshot yielded the duplicated match %d times, want 1", got)
	}
}

// TestConcurrentFreeze covers the read-only concurrency contract: parallel
// Freeze/Enumerate on a shared, unmutated graph (as concurrent
// gfd.Validate calls would do) must be race-free and agree.
func TestConcurrentFreeze(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 40, Seed: 3})
	q := starPattern()
	want := match.CountSnapshot(g.Freeze(), q, match.Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := match.CountSnapshot(g.Freeze(), q, match.Options{}); got != want {
				t.Errorf("concurrent count %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestDifferentialRandomPatterns(t *testing.T) {
	for name, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 40; trial++ {
			n := 2 + rng.Intn(3)
			q := randomPattern(g, rng, n, trial%2 == 1)
			assertSameMatches(t, g, q, match.Options{},
				fmt.Sprintf("%s trial %d q=%s", name, trial, q))
		}
	}
}

func TestDifferentialPinned(t *testing.T) {
	for name, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 20; trial++ {
			q := randomPattern(g, rng, 2+rng.Intn(2), false)
			// Pin node 0 to a few of its legacy candidates (and one
			// hopeless node to exercise the empty case).
			cands := g.NodesWithLabel(q.Nodes[0].Label)
			if len(cands) == 0 {
				cands = []graph.NodeID{0}
			}
			for i := 0; i < 3 && i < len(cands); i++ {
				pin := map[int]graph.NodeID{0: cands[(i*7)%len(cands)]}
				assertSameMatches(t, g, q, match.Options{Pin: pin},
					fmt.Sprintf("%s trial %d pin=%v", name, trial, pin))
			}
		}
	}
}

func TestDifferentialBlocked(t *testing.T) {
	for name, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 20; trial++ {
			q := randomPattern(g, rng, 2+rng.Intn(2), trial%3 == 0)
			start := graph.NodeID(rng.Intn(g.NumNodes()))
			block := graph.NewNodeSet(g.Neighborhood(start, 2))
			assertSameMatches(t, g, q, match.Options{Block: block},
				fmt.Sprintf("%s trial %d block around %d", name, trial, start))
		}
	}
}

func TestDifferentialStriped(t *testing.T) {
	for name, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 12; trial++ {
			q := randomPattern(g, rng, 2+rng.Intn(2), false)
			mod := 2 + rng.Intn(3)
			node := rng.Intn(q.NumNodes())
			total := 0
			for rem := 0; rem < mod; rem++ {
				opts := match.Options{StripeNode: node, StripeMod: mod, StripeRem: rem}
				assertSameMatches(t, g, q, opts,
					fmt.Sprintf("%s trial %d stripe %d/%d", name, trial, rem, mod))
				total += match.CountSnapshot(g.Freeze(), q, opts)
			}
			// Residues must partition the unstriped match set.
			if all := match.CountSnapshot(g.Freeze(), q, match.Options{}); total != all {
				t.Fatalf("%s trial %d: stripes sum to %d, unstriped %d", name, trial, total, all)
			}
		}
	}
}

func TestDifferentialLimit(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 40, Seed: 3})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		q := randomPattern(g, rng, 2+rng.Intn(2), false)
		all := match.Count(g, q, match.Options{})
		for _, limit := range []int{1, 2, 5} {
			want := min(limit, all)
			if got := match.CountSnapshot(g.Freeze(), q, match.Options{Limit: limit}); got != want {
				t.Fatalf("trial %d limit %d: snapshot count %d, want %d", trial, limit, got, want)
			}
		}
	}
}

// TestDifferentialMinedRules runs the full mined-rule patterns (the
// engines' real workload, including two-component symmetric patterns)
// through both paths.
func TestDifferentialMinedRules(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 50, Seed: 21})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 6, PatternSize: 4, TwoCompFrac: 0.5, Seed: 9})
	for _, f := range set.Rules() {
		assertSameMatches(t, g, f.Q, match.Options{}, "rule "+f.Name)
	}
}

// TestMatcherZeroAllocSteadyState proves the acceptance criterion: after
// warm-up, a snapshot-backed enumeration performs zero allocations.
func TestMatcherZeroAllocSteadyState(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 80, Seed: 1})
	q := pattern.New()
	f := q.AddNode("f", "flight")
	id := q.AddNode("i", "id")
	from := q.AddNode("c", "city")
	q.AddEdge(f, id, "number")
	q.AddEdge(f, from, "from")

	m := match.NewMatcher(g.Freeze())
	count := 0
	yield := func(core.Match) bool { count++; return true }
	m.Enumerate(q, match.Options{}, yield) // warm-up: compile + size buffers
	if count == 0 {
		t.Fatal("workload has no matches; allocation test is vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Enumerate(q, match.Options{}, yield)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Enumerate allocated %.1f times per run, want 0", allocs)
	}
}
