package match

import (
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Simulate computes the (dual) graph simulation relation from pattern q to
// graph g restricted to the node set block (nil = whole graph): for each
// pattern node u it returns the set of graph nodes v that simulate u, i.e.
// v's label matches u's and every pattern edge incident to u can be
// followed from v into the simulation sets of u's neighbors.
//
// Simulation over-approximates subgraph isomorphism (every node that
// participates in an isomorphic match simulates its pattern node) and is
// computable in polynomial time; disVal uses it to estimate the number of
// partial matches before deciding whether to ship partial matches or
// prefetch data blocks (Section 6.2).
func Simulate(g *graph.Graph, q *pattern.Pattern, block graph.NodeSet) []graph.NodeSet {
	n := q.NumNodes()
	sim := make([]graph.NodeSet, n)
	for u := 0; u < n; u++ {
		sim[u] = make(graph.NodeSet)
		l := q.Nodes[u].Label
		if l == pattern.Wildcard {
			if block == nil {
				for v := 0; v < g.NumNodes(); v++ {
					sim[u].Add(graph.NodeID(v))
				}
			} else {
				for v := range block {
					sim[u].Add(v)
				}
			}
		} else {
			for _, v := range g.NodesWithLabel(l) {
				if block.Contains(v) {
					sim[u].Add(v)
				}
			}
		}
	}
	// Iterate to fixpoint: drop v from sim(u) when some pattern edge at u
	// has no counterpart from v into the current simulation sets.
	changed := true
	for changed {
		changed = false
		for u := 0; u < n; u++ {
			for v := range sim[u] {
				if !simFeasible(g, q, sim, u, v, block) {
					delete(sim[u], v)
					changed = true
				}
			}
		}
	}
	return sim
}

func simFeasible(g *graph.Graph, q *pattern.Pattern, sim []graph.NodeSet, u int, v graph.NodeID, block graph.NodeSet) bool {
	for _, ei := range q.OutEdges(u) {
		e := q.Edges[ei]
		if !hasSimSuccessor(g.Out(v), e.Label, sim[e.To], block) {
			return false
		}
	}
	for _, ei := range q.InEdges(u) {
		e := q.Edges[ei]
		if !hasSimSuccessor(g.In(v), e.Label, sim[e.From], block) {
			return false
		}
	}
	return true
}

func hasSimSuccessor(adj []graph.HalfEdge, label string, target graph.NodeSet, block graph.NodeSet) bool {
	for _, he := range adj {
		if !pattern.LabelMatches(label, he.Label) {
			continue
		}
		if !block.Contains(he.To) {
			continue
		}
		if _, ok := target[he.To]; ok {
			return true
		}
	}
	return false
}

// SimulationSize returns the total number of (pattern node, graph node)
// pairs in the simulation relation; disVal's shipping-strategy selector
// compares this estimate against the data-block size.
func SimulationSize(sim []graph.NodeSet) int {
	total := 0
	for _, s := range sim {
		total += s.Len()
	}
	return total
}
