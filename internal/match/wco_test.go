// Differential tests for the worst-case-optimal multiway intersection
// step: on cyclic patterns (where a closing node has ≥2 matched
// neighbors) the intersection route must produce exactly the match set of
// the classical probe backtracking (Options.NoIntersect), order aside, on
// snapshots and overlays, across blocks, stripes, pins, limits and Halt —
// and stay allocation-free in steady state.
package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// layeredCyclicGraph draws a random 4-class graph whose labeled edge kinds
// support triangles, diamonds and 4-cycles by construction.
func layeredCyclicGraph(rng *rand.Rand, n, deg int) *graph.Graph {
	g := graph.New(0, 0)
	classes := [4]string{"A", "B", "C", "D"}
	var ids [4][]graph.NodeID
	for ci, cl := range classes {
		for i := 0; i < n; i++ {
			ids[ci] = append(ids[ci], g.AddNode(cl, graph.Attrs{"val": fmt.Sprintf("v%d", i%5)}))
		}
	}
	kinds := []struct {
		from, to int
		label    string
	}{
		{0, 1, "ab"}, {0, 2, "ac"}, {1, 2, "bc"},
		{1, 3, "bd"}, {2, 3, "cd"}, {0, 3, "ad"}, {3, 2, "dc"},
	}
	for _, k := range kinds {
		for _, u := range ids[k.from] {
			for e := 0; e < deg; e++ {
				v := ids[k.to][rng.Intn(n)]
				if !g.HasEdge(u, v, k.label) {
					g.MustAddEdge(u, v, k.label)
				}
			}
		}
	}
	return g
}

func triPattern() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, c, "ac")
	return q
}

func diamondPattern() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	d := q.AddNode("d", "D")
	q.AddEdge(a, b, "ab")
	q.AddEdge(a, c, "ac")
	q.AddEdge(b, d, "bd")
	q.AddEdge(c, d, "cd")
	return q
}

func squarePattern() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	d := q.AddNode("d", "D")
	q.AddEdge(a, b, "ab")
	q.AddEdge(b, c, "bc")
	q.AddEdge(a, d, "ad")
	q.AddEdge(d, c, "dc")
	return q
}

func cyclicShapes() map[string]*pattern.Pattern {
	return map[string]*pattern.Pattern{
		"triangle": triPattern(),
		"diamond":  diamondPattern(),
		"cycle4":   squarePattern(),
	}
}

// collect gathers a matcher enumeration into copied matches.
func collect(m *match.Matcher, q *pattern.Pattern, opts match.Options) []core.Match {
	var out []core.Match
	m.Enumerate(q, opts, func(h core.Match) bool {
		out = append(out, append(core.Match(nil), h...))
		return true
	})
	return out
}

func assertWCOEqualsProbe(t *testing.T, topo graph.Topology, g *graph.Graph, q *pattern.Pattern, opts match.Options, ctx string) {
	t.Helper()
	m := match.NewMatcher(topo)
	wcoOpts, probeOpts := opts, opts
	probeOpts.NoIntersect = true
	wco := matchKeys(collect(m, q, wcoOpts))
	probe := matchKeys(collect(m, q, probeOpts))
	if len(wco) != len(probe) {
		t.Fatalf("%s: WCO found %d matches, probe %d", ctx, len(wco), len(probe))
	}
	for i := range wco {
		if wco[i] != probe[i] {
			t.Fatalf("%s: match sets differ at %d: WCO %s vs probe %s", ctx, i, wco[i], probe[i])
		}
	}
	if g != nil {
		legacy := matchKeys(match.All(g, q, opts))
		if len(legacy) != len(wco) {
			t.Fatalf("%s: legacy oracle found %d matches, WCO %d", ctx, len(legacy), len(wco))
		}
	}
}

// TestWCOEquivalenceCyclicSnapshots is the core differential: random
// graphs × cyclic patterns, snapshot topology, plain options.
func TestWCOEquivalenceCyclicSnapshots(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := layeredCyclicGraph(rng, 40+rng.Intn(40), 2+rng.Intn(5))
		snap := g.Freeze()
		for name, q := range cyclicShapes() {
			assertWCOEqualsProbe(t, snap, g, q, match.Options{},
				fmt.Sprintf("seed %d %s", seed, name))
		}
	}
}

// TestWCOEquivalenceCyclicOverlay repeats the differential over an
// overlay topology with mutations applied through it (patched adjacency
// merges base CSR runs with patch runs; both must stay intersectable).
func TestWCOEquivalenceCyclicOverlay(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g := layeredCyclicGraph(rng, 50, 3)
		ov := graph.NewOverlay(g)
		as, bs, cs := g.NodesWithLabel("A"), g.NodesWithLabel("B"), g.NodesWithLabel("C")
		for i := 0; i < 40; i++ {
			a, b, c := as[rng.Intn(len(as))], bs[rng.Intn(len(bs))], cs[rng.Intn(len(cs))]
			switch i % 3 {
			case 0:
				if !g.HasEdge(a, b, "ab") {
					ov.MustAddEdge(a, b, "ab")
				}
			case 1:
				if !g.HasEdge(b, c, "bc") {
					ov.MustAddEdge(b, c, "bc")
				}
			default:
				if !g.HasEdge(a, c, "ac") {
					ov.MustAddEdge(a, c, "ac")
				}
			}
		}
		for name, q := range cyclicShapes() {
			assertWCOEqualsProbe(t, ov, g, q, match.Options{},
				fmt.Sprintf("seed %d overlay %s", seed, name))
		}
	}
}

// TestWCOEquivalenceOptionDimensions sweeps blocks, stripes and pins —
// the filters feasibility applies on top of the intersected candidates.
func TestWCOEquivalenceOptionDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := layeredCyclicGraph(rng, 60, 4)
	snap := g.Freeze()
	for name, q := range cyclicShapes() {
		// Block: a 2-hop neighborhood around a random A node.
		start := g.NodesWithLabel("A")[rng.Intn(60)]
		blockOpts := match.Options{Block: graph.NewNodeSet(snap.Neighborhood(start, 2))}
		assertWCOEqualsProbe(t, snap, g, q, blockOpts, name+" block")
		// Stripe: residues must agree pairwise AND partition the whole set.
		all := match.CountSnapshot(snap, q, match.Options{})
		for _, mod := range []int{2, 3} {
			total := 0
			for rem := 0; rem < mod; rem++ {
				opts := match.Options{StripeNode: rng.Intn(q.NumNodes()), StripeMod: mod, StripeRem: rem}
				opts.StripeNode = 2 // the closing node C is reached by intersection in most orders
				assertWCOEqualsProbe(t, snap, g, q, opts, fmt.Sprintf("%s stripe %d/%d", name, rem, mod))
				total += match.CountSnapshot(snap, q, opts)
			}
			if total != all {
				t.Fatalf("%s mod %d: stripes sum to %d, unstriped %d", name, mod, total, all)
			}
		}
		// Pin: force node 0 onto each of a few candidates.
		for i := 0; i < 5; i++ {
			pin := map[int]graph.NodeID{0: g.NodesWithLabel("A")[rng.Intn(60)]}
			assertWCOEqualsProbe(t, snap, g, q, match.Options{Pin: pin}, name+" pin")
		}
	}
}

// TestWCOLimitAndHalt: with Limit the two paths may surface different
// matches (enumeration order differs), so only counts are compared; Halt
// must abandon the search on both paths and never yield a match outside
// the full set.
func TestWCOLimitAndHalt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := layeredCyclicGraph(rng, 60, 4)
	snap := g.Freeze()
	for name, q := range cyclicShapes() {
		full := match.CountSnapshot(snap, q, match.Options{})
		if full == 0 {
			t.Fatalf("%s: no matches; limit test is vacuous", name)
		}
		for _, limit := range []int{1, 3, full + 10} {
			want := min(limit, full)
			for _, noInt := range []bool{false, true} {
				got := match.CountSnapshot(snap, q, match.Options{Limit: limit, NoIntersect: noInt})
				if got != want {
					t.Fatalf("%s limit %d noIntersect=%v: count %d, want %d", name, limit, noInt, got, want)
				}
			}
		}
		fullSet := make(map[string]bool)
		for _, k := range matchKeys(match.AllSnapshot(snap, q, match.Options{})) {
			fullSet[k] = true
		}
		for _, noInt := range []bool{false, true} {
			probes := 0
			m := match.NewMatcher(snap)
			var got []core.Match
			m.Enumerate(q, match.Options{
				NoIntersect: noInt,
				Halt:        func() bool { probes++; return probes > 50 },
			}, func(h core.Match) bool {
				got = append(got, append(core.Match(nil), h...))
				return true
			})
			if len(got) >= full && full > 1 {
				// Halt landed after everything was already found — fine,
				// but the workloads above are sized so it fires mid-search.
				continue
			}
			for _, k := range matchKeys(got) {
				if !fullSet[k] {
					t.Fatalf("%s noIntersect=%v: halted run yielded %s outside the full match set", name, noInt, k)
				}
			}
		}
	}
}

// TestMatcherZeroAllocIntersection pins the steady-state guarantee on the
// intersection route itself: enumerating a triangle (closing node fed by
// a 2-way intersection every step) over a snapshot must not allocate
// after warm-up.
func TestMatcherZeroAllocIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := layeredCyclicGraph(rng, 80, 5)
	snap := g.Freeze()
	for name, q := range cyclicShapes() {
		m := match.NewMatcher(snap)
		count := 0
		yield := func(core.Match) bool { count++; return true }
		m.Enumerate(q, match.Options{}, yield) // warm-up: compile, plan cache, buffers
		if count == 0 {
			t.Fatalf("%s: no matches; allocation test is vacuous", name)
		}
		allocs := testing.AllocsPerRun(10, func() {
			m.Enumerate(q, match.Options{}, yield)
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state WCO Enumerate allocated %.1f times per run, want 0", name, allocs)
		}
	}
}
