package match

import (
	"iter"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Matcher is the compiled-representation enumerator: it runs the same
// backtracking search as Enumerate, but against a graph.Topology — the
// frozen *graph.Snapshot on the batch path, or a *graph.Overlay (base
// snapshot plus update patches) on the incremental path. Interned integer
// labels, CSR adjacency sorted by (label, neighbor), a flat []bool
// used-set, and contiguous per-label candidate ranges. After warm-up
// (first call per pattern shape) an enumeration over a Snapshot performs
// zero steady-state allocations: candidates are iterated directly off
// topology ranges, never materialized.
//
// A Matcher is NOT safe for concurrent use — it owns reusable search
// buffers. Engines create one Matcher per worker; all of them share one
// Topology, which is read-only during matching.
//
// Candidate generation prefers the smallest label-filtered adjacency range
// among already-matched pattern neighbors (set intersection driven by the
// most selective sorted range, remaining constraints checked by binary
// search), falling back to the pattern node's label class — or, for a
// striped node, the class's precomputed residue sub-range.
type Matcher struct {
	topo graph.Topology
	// snap is the devirtualized fast path: non-nil exactly when topo is a
	// *graph.Snapshot, so the per-candidate accessors (label, degrees,
	// adjacency ranges) stay direct, inlinable calls on the batch path and
	// only the overlay pays interface dispatch.
	snap *graph.Snapshot

	// Reusable search state.
	used   []bool     // graph-node used-set, sized |V|
	assign core.Match // pattern node -> graph node
	order  []int      // matching order
	placed []bool     // planOrder scratch
	est    []int      // planOrder scratch: candidate estimate per pattern node

	// Per-call state.
	q     *pattern.Pattern
	cq    *pattern.Compiled
	opts  Options
	yield func(core.Match) bool
	n     int
	found int
	halt  bool
	// tick strides the Options.Halt probe: the probe is a function call
	// through a pointer, too expensive per candidate in the hottest loop,
	// so it fires every haltStride tries — bounding the delay between an
	// external stop and the search abandoning, without measurably taxing
	// the zero-alloc steady state.
	tick uint32
}

// haltStride is how many candidate tries pass between Options.Halt
// consultations. Combined with the engines' own strided ctx probe this
// bounds stop latency to a few thousand candidate tries — microseconds —
// while keeping the per-try cost to a counter increment.
const haltStride = 64

// NewMatcher returns a matcher over t.
func NewMatcher(t graph.Topology) *Matcher {
	m := &Matcher{
		topo: t,
		used: make([]bool, t.NumNodes()),
	}
	m.snap, _ = t.(*graph.Snapshot)
	return m
}

// Topo returns the topology this matcher runs against.
func (m *Matcher) Topo() graph.Topology { return m.topo }

// numNodes is shared by buffer sizing on both paths; the nil-check keeps
// the snapshot read direct.
func (m *Matcher) numNodes() int {
	if m.snap != nil {
		return m.snap.NumNodes()
	}
	return m.topo.NumNodes()
}

// Enumerate calls yield for every match of q in the topology under opts,
// in a deterministic order (ascending within each candidate range). The
// match set is exactly Enumerate's on the unfrozen graph; only the order
// may differ. (One carve-out: if a graph violates the documented
// no-duplicate-edge invariant, the legacy path can yield the same match
// once per parallel (from, to, label) duplicate; this path always yields
// it once.) The Match slice passed to yield is reused across calls;
// callers that retain it must copy it.
func (m *Matcher) Enumerate(q *pattern.Pattern, opts Options, yield func(core.Match) bool) {
	n := q.NumNodes()
	if n == 0 {
		return
	}
	m.q, m.cq = q, m.compiledFor(q)
	m.opts, m.yield = opts, yield
	m.n, m.found, m.halt = n, 0, false
	m.ensure(n)
	m.planOrder()
	if m.snap != nil {
		m.extendSnap(0)
	} else {
		m.extend(0)
	}
	m.yield = nil
}

// Matches returns the matches of q under opts as a lazy pull-based
// iterator: enumeration only advances as the consumer pulls, and breaking
// out of the range stops the backtracking search at the current node —
// the iterator form of Enumerate's early-stop contract. The yielded Match
// is the matcher's reusable assignment buffer; consumers that retain a
// match must copy it. Like every Matcher method, a returned iterator must
// not be ranged concurrently with other uses of the same Matcher.
func (m *Matcher) Matches(q *pattern.Pattern, opts Options) iter.Seq[core.Match] {
	return func(yield func(core.Match) bool) {
		m.Enumerate(q, opts, yield)
	}
}

// Count returns the number of matches of q under opts.
func (m *Matcher) Count(q *pattern.Pattern, opts Options) int {
	n := 0
	m.Enumerate(q, opts, func(core.Match) bool {
		n++
		return opts.Limit == 0 || n < opts.Limit
	})
	return n
}

// Has reports whether q has at least one match under opts.
func (m *Matcher) Has(q *pattern.Pattern, opts Options) bool {
	found := false
	m.Enumerate(q, opts, func(core.Match) bool {
		found = true
		return false
	})
	return found
}

// All returns every match (copied) of q under opts.
func (m *Matcher) All(q *pattern.Pattern, opts Options) []core.Match {
	var out []core.Match
	m.Enumerate(q, opts, func(h core.Match) bool {
		out = append(out, append(core.Match(nil), h...))
		return true
	})
	return out
}

// compiledFor lowers q onto the topology's symbol table, memoized on the
// pattern itself (pattern.CompileFor), so matchers are cheap to construct
// and workers sharing rule patterns share the lowering.
func (m *Matcher) compiledFor(q *pattern.Pattern) *pattern.Compiled {
	return pattern.CompileFor(q, m.topo.Syms())
}

// ensure sizes the reusable buffers for an n-node pattern, growing the
// used-set when the topology gained nodes since the last call (an Overlay
// between update batches).
func (m *Matcher) ensure(n int) {
	if v := m.numNodes(); len(m.used) < v {
		m.used = make([]bool, v)
	}
	if cap(m.assign) < n {
		m.assign = make(core.Match, n)
		m.order = make([]int, n)
		m.placed = make([]bool, n)
		m.est = make([]int, n)
	}
	m.assign = m.assign[:n]
	m.order = m.order[:n]
	m.placed = m.placed[:n]
	m.est = m.est[:n]
	for i := 0; i < n; i++ {
		m.assign[i] = graph.Invalid
		m.placed[i] = false
	}
}

// planOrder mirrors the legacy searcher's matching order — pinned nodes
// first, then BFS growth from placed nodes preferring small candidate
// estimates, new components seeded by the most selective node — using
// topology class sizes as estimates and no allocations.
func (m *Matcher) planOrder() {
	n := m.n
	// Candidate estimates are constant during planning; resolving them
	// once per pattern node keeps the O(|Q|²) selection loops on plain
	// array reads (and off the Topology interface on the overlay path).
	for v := 0; v < n; v++ {
		sym := m.cq.NodeSyms[v]
		switch {
		case sym == graph.WildcardSym:
			m.est[v] = m.numNodes()
		case m.snap != nil:
			m.est[v] = m.snap.ClassSize(sym)
		default:
			m.est[v] = m.topo.ClassSize(sym)
		}
	}
	k := 0
	for i := 0; i < n; i++ {
		if _, ok := m.opts.Pin[i]; ok {
			m.placed[i] = true
			m.order[k] = i
			k++
		}
	}
	for k < n {
		next, bestEst := -1, int(^uint(0)>>1)
		for oi := 0; oi < k; oi++ {
			p := m.order[oi]
			for _, ei := range m.q.OutEdges(p) {
				if w := int(m.cq.Edges[ei].To); !m.placed[w] && m.est[w] < bestEst {
					next, bestEst = w, m.est[w]
				}
			}
			for _, ei := range m.q.InEdges(p) {
				if w := int(m.cq.Edges[ei].From); !m.placed[w] && m.est[w] < bestEst {
					next, bestEst = w, m.est[w]
				}
			}
		}
		if next < 0 {
			for v := 0; v < n; v++ {
				if !m.placed[v] && m.est[v] < bestEst {
					next, bestEst = v, m.est[v]
				}
			}
		}
		m.placed[next] = true
		m.order[k] = next
		k++
	}
}

func (m *Matcher) extend(depth int) {
	if m.halt {
		return
	}
	if depth == m.n {
		m.found++
		if !m.yield(m.assign) {
			m.halt = true
		}
		if m.opts.Limit > 0 && m.found >= m.opts.Limit {
			m.halt = true
		}
		return
	}
	u := m.order[depth]
	if v, ok := m.opts.Pin[u]; ok {
		m.try(depth, u, v)
		return
	}
	// Prefer the smallest label-filtered adjacency range among edges to
	// already-matched neighbors: iterate the most selective sorted range,
	// feasible() verifies the rest by binary search.
	var best []graph.CSREdge
	bestLen := -1
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if from := m.assign[e.From]; from != graph.Invalid {
			if r := m.topo.OutWith(from, e.Label); bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
		}
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		if to := m.assign[e.To]; to != graph.Invalid {
			if r := m.topo.InWith(to, e.Label); bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
		}
	}
	if bestLen >= 0 {
		for i := range best {
			// Adjacency is (Label, To)-sorted, so duplicate (from, to,
			// label) edges — which the graph type documents as never
			// produced, but does not reject — sit adjacent; skipping them
			// keeps the match set a set where the legacy path would
			// re-yield the same h once per parallel edge.
			if i > 0 && best[i] == best[i-1] {
				continue
			}
			m.try(depth, u, best[i].To)
			if m.halt {
				return
			}
		}
		return
	}
	// Fresh component: label class range — narrowed to the precomputed
	// residue sub-range when this node carries the stripe constraint — or
	// all nodes for a wildcard.
	sym := m.cq.NodeSyms[u]
	if sym != graph.WildcardSym {
		var cands []graph.NodeID
		if m.opts.StripeMod > 0 && u == m.opts.StripeNode {
			cands = m.topo.NodesWithStripe(sym, m.opts.StripeMod, m.opts.StripeRem)
		} else {
			cands = m.topo.NodesWith(sym)
		}
		for _, v := range cands {
			m.try(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	for v := 0; v < m.topo.NumNodes(); v++ {
		m.try(depth, u, graph.NodeID(v))
		if m.halt {
			return
		}
	}
}

// try extends the partial assignment with u -> v if injective and feasible.
func (m *Matcher) try(depth, u int, v graph.NodeID) {
	if m.opts.Halt != nil {
		m.tick++
		if m.tick%haltStride == 0 && m.opts.Halt() {
			m.halt = true
			return
		}
	}
	if m.used[v] {
		return
	}
	if !m.feasible(u, v) {
		return
	}
	m.assign[u] = v
	m.used[v] = true
	m.extend(depth + 1)
	m.used[v] = false
	m.assign[u] = graph.Invalid
}

// feasible verifies block membership, striping, node label, degree bounds,
// and every pattern edge between u and an already-assigned node (binary
// searches over sorted CSR ranges). The stripe check stays here even
// though striped class enumeration pre-filters (NodesWithStripe):
// adjacency-driven candidates are not pre-filtered, and an Overlay's
// stripe ranges are allowed to over-approximate.
func (m *Matcher) feasible(u int, v graph.NodeID) bool {
	if m.opts.Block != nil && !m.opts.Block.Contains(v) {
		return false
	}
	if m.opts.StripeMod > 0 && u == m.opts.StripeNode && int(v)%m.opts.StripeMod != m.opts.StripeRem {
		return false
	}
	if !pattern.LabelMatchesSym(m.cq.NodeSyms[u], m.topo.Label(v)) {
		return false
	}
	if len(m.q.OutEdges(u)) > m.topo.OutDegree(v) || len(m.q.InEdges(u)) > m.topo.InDegree(v) {
		return false
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		to := m.assign[e.To]
		if int(e.To) == u {
			to = v // self-loop
		}
		if to == graph.Invalid {
			continue
		}
		if !m.topo.HasEdge(v, to, e.Label) {
			return false
		}
	}
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if int(e.From) == u {
			continue // self-loop handled above
		}
		from := m.assign[e.From]
		if from == graph.Invalid {
			continue
		}
		if !m.topo.HasEdge(from, v, e.Label) {
			return false
		}
	}
	return true
}

// The snapshot-specialized search: extendSnap/trySnap/feasibleSnap are
// the exact generic extend/try/feasible with every topology access made a
// direct (inlinable) call on *graph.Snapshot. The duplication exists
// because the batch engines' per-candidate inner loop is the system's
// hottest code: routing it through interface dispatch (or even through
// nil-checked wrapper methods, which Go's inliner rejects at this size)
// measurably slows every engine, and the tentpole contract is zero
// regression on the pure-snapshot path. Behavioral changes MUST be made
// to both copies; the differential tests run each against the other's
// reference path.

func (m *Matcher) extendSnap(depth int) {
	if m.halt {
		return
	}
	if depth == m.n {
		m.found++
		if !m.yield(m.assign) {
			m.halt = true
		}
		if m.opts.Limit > 0 && m.found >= m.opts.Limit {
			m.halt = true
		}
		return
	}
	u := m.order[depth]
	if v, ok := m.opts.Pin[u]; ok {
		m.trySnap(depth, u, v)
		return
	}
	var best []graph.CSREdge
	bestLen := -1
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if from := m.assign[e.From]; from != graph.Invalid {
			if r := m.snap.OutWith(from, e.Label); bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
		}
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		if to := m.assign[e.To]; to != graph.Invalid {
			if r := m.snap.InWith(to, e.Label); bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
		}
	}
	if bestLen >= 0 {
		for i := range best {
			if i > 0 && best[i] == best[i-1] {
				continue // adjacent duplicate triple; see extend
			}
			m.trySnap(depth, u, best[i].To)
			if m.halt {
				return
			}
		}
		return
	}
	sym := m.cq.NodeSyms[u]
	if sym != graph.WildcardSym {
		var cands []graph.NodeID
		if m.opts.StripeMod > 0 && u == m.opts.StripeNode {
			cands = m.snap.NodesWithStripe(sym, m.opts.StripeMod, m.opts.StripeRem)
		} else {
			cands = m.snap.NodesWith(sym)
		}
		for _, v := range cands {
			m.trySnap(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	for v := 0; v < m.snap.NumNodes(); v++ {
		m.trySnap(depth, u, graph.NodeID(v))
		if m.halt {
			return
		}
	}
}

func (m *Matcher) trySnap(depth, u int, v graph.NodeID) {
	if m.opts.Halt != nil {
		m.tick++
		if m.tick%haltStride == 0 && m.opts.Halt() {
			m.halt = true
			return
		}
	}
	if m.used[v] {
		return
	}
	if !m.feasibleSnap(u, v) {
		return
	}
	m.assign[u] = v
	m.used[v] = true
	m.extendSnap(depth + 1)
	m.used[v] = false
	m.assign[u] = graph.Invalid
}

func (m *Matcher) feasibleSnap(u int, v graph.NodeID) bool {
	if m.opts.Block != nil && !m.opts.Block.Contains(v) {
		return false
	}
	if m.opts.StripeMod > 0 && u == m.opts.StripeNode && int(v)%m.opts.StripeMod != m.opts.StripeRem {
		return false
	}
	if !pattern.LabelMatchesSym(m.cq.NodeSyms[u], m.snap.Label(v)) {
		return false
	}
	if len(m.q.OutEdges(u)) > m.snap.OutDegree(v) || len(m.q.InEdges(u)) > m.snap.InDegree(v) {
		return false
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		to := m.assign[e.To]
		if int(e.To) == u {
			to = v // self-loop
		}
		if to == graph.Invalid {
			continue
		}
		if !m.snap.HasEdge(v, to, e.Label) {
			return false
		}
	}
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if int(e.From) == u {
			continue // self-loop handled above
		}
		from := m.assign[e.From]
		if from == graph.Invalid {
			continue
		}
		if !m.snap.HasEdge(from, v, e.Label) {
			return false
		}
	}
	return true
}

// EnumerateSnapshot is Enumerate over a compiled topology with a throwaway
// Matcher; callers with repeated enumerations should hold a Matcher.
func EnumerateSnapshot(t graph.Topology, q *pattern.Pattern, opts Options, yield func(core.Match) bool) {
	NewMatcher(t).Enumerate(q, opts, yield)
}

// CountSnapshot counts matches over a compiled topology.
func CountSnapshot(t graph.Topology, q *pattern.Pattern, opts Options) int {
	return NewMatcher(t).Count(q, opts)
}

// AllSnapshot returns every match (copied) over a compiled topology.
func AllSnapshot(t graph.Topology, q *pattern.Pattern, opts Options) []core.Match {
	return NewMatcher(t).All(q, opts)
}
