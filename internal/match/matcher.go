package match

import (
	"iter"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Matcher is the compiled-representation enumerator: it runs the same
// backtracking search as Enumerate, but against a graph.Topology — the
// frozen *graph.Snapshot on the batch path, or a *graph.Overlay (base
// snapshot plus update patches) on the incremental path. Interned integer
// labels, CSR adjacency sorted by (label, neighbor), a flat []bool
// used-set, and contiguous per-label candidate ranges. After warm-up
// (first call per pattern shape) an enumeration over a Snapshot performs
// zero steady-state allocations: candidates are iterated directly off
// topology ranges, never materialized.
//
// A Matcher is NOT safe for concurrent use — it owns reusable search
// buffers. Engines create one Matcher per worker; all of them share one
// Topology, which is read-only during matching.
//
// Candidate generation: a pattern node with two or more already-matched
// neighbors over concrete edge labels takes the worst-case-optimal route —
// a Leapfrog-style multiway intersection of their sorted CSR ranges
// (graph.IntersectAdjacency), so only common neighbors are ever tried.
// With a single matched neighbor it iterates the smallest label-filtered
// range (remaining constraints checked by binary search), falling back to
// the pattern node's label class — or, for a striped node, the class's
// precomputed residue sub-range. Matching orders are cached per (compiled
// pattern, pin set, topology version); Options.NoIntersect forces the
// backtracking path for differential testing.
type Matcher struct {
	topo graph.Topology
	// snap is the devirtualized fast path: non-nil exactly when topo is a
	// *graph.Snapshot, so the per-candidate accessors (label, degrees,
	// adjacency ranges) stay direct, inlinable calls on the batch path and
	// only the overlay pays interface dispatch.
	snap *graph.Snapshot

	// Reusable search state.
	used   []bool     // graph-node used-set, sized |V|
	assign core.Match // pattern node -> graph node
	order  []int      // matching order
	placed []bool     // planOrder scratch
	est    []int      // planOrder scratch: candidate estimate per pattern node

	// Worst-case-optimal intersection state. ranges is the per-depth
	// gather scratch for concrete-label adjacency ranges: it is consumed
	// (intersected into cands) before the search recurses, so one copy
	// serves every depth. cands holds one reusable intersection output
	// buffer per depth — the buffer IS iterated across the recursion, so
	// depths must not share.
	ranges [graph.MaxIntersectArity][]graph.CSREdge
	cands  [][]graph.NodeID

	// plans caches computed matching orders per (compiled pattern, pin
	// set, topology version), so repeated Enumerate calls — one per work
	// unit on the engine paths — stop re-deriving the same order from the
	// same class sizes. Snapshots are immutable (version 0 forever); an
	// Overlay keys by its graph version so mutations invalidate naturally.
	plans map[planKey][]int

	// Per-call state.
	q     *pattern.Pattern
	cq    *pattern.Compiled
	opts  Options
	yield func(core.Match) bool
	n     int
	found int
	halt  bool
	// tick strides the Options.Halt probe: the probe is a function call
	// through a pointer, too expensive per candidate in the hottest loop,
	// so it fires every haltStride tries — bounding the delay between an
	// external stop and the search abandoning, without measurably taxing
	// the zero-alloc steady state.
	tick uint32
}

// haltStride is how many candidate tries pass between Options.Halt
// consultations. Combined with the engines' own strided ctx probe this
// bounds stop latency to a few thousand candidate tries — microseconds —
// while keeping the per-try cost to a counter increment.
const haltStride = 64

// planKey identifies one cached matching order: the lowered pattern (a
// stable pointer per (pattern, symbol table)), the set of pinned pattern
// nodes as a bitmask (pin *values* never affect the order), and the
// topology version the class-size estimates were read at.
type planKey struct {
	cq   *pattern.Compiled
	pins uint64
	ver  uint64
}

// maxPlanCache bounds the plan cache; beyond it the cache resets. Engines
// cycle through a handful of rule patterns per matcher, so eviction only
// fires for a long-lived matcher over a heavily mutating overlay.
const maxPlanCache = 64

// NewMatcher returns a matcher over t.
func NewMatcher(t graph.Topology) *Matcher {
	m := &Matcher{
		topo: t,
		used: make([]bool, t.NumNodes()),
	}
	m.snap, _ = t.(*graph.Snapshot)
	return m
}

// Topo returns the topology this matcher runs against.
func (m *Matcher) Topo() graph.Topology { return m.topo }

// numNodes is shared by buffer sizing on both paths; the nil-check keeps
// the snapshot read direct.
func (m *Matcher) numNodes() int {
	if m.snap != nil {
		return m.snap.NumNodes()
	}
	return m.topo.NumNodes()
}

// Enumerate calls yield for every match of q in the topology under opts,
// in a deterministic order (ascending within each candidate range). The
// match set is exactly Enumerate's on the unfrozen graph; only the order
// may differ. (One carve-out: if a graph violates the documented
// no-duplicate-edge invariant, the legacy path can yield the same match
// once per parallel (from, to, label) duplicate; this path always yields
// it once.) The Match slice passed to yield is reused across calls;
// callers that retain it must copy it.
func (m *Matcher) Enumerate(q *pattern.Pattern, opts Options, yield func(core.Match) bool) {
	n := q.NumNodes()
	if n == 0 {
		return
	}
	m.q, m.cq = q, m.compiledFor(q)
	m.opts, m.yield = opts, yield
	m.n, m.found, m.halt = n, 0, false
	m.ensure(n)
	m.planOrder()
	if m.snap != nil {
		m.extendSnap(0)
	} else {
		m.extend(0)
	}
	m.yield = nil
}

// Matches returns the matches of q under opts as a lazy pull-based
// iterator: enumeration only advances as the consumer pulls, and breaking
// out of the range stops the backtracking search at the current node —
// the iterator form of Enumerate's early-stop contract. The yielded Match
// is the matcher's reusable assignment buffer; consumers that retain a
// match must copy it. Like every Matcher method, a returned iterator must
// not be ranged concurrently with other uses of the same Matcher.
func (m *Matcher) Matches(q *pattern.Pattern, opts Options) iter.Seq[core.Match] {
	return func(yield func(core.Match) bool) {
		m.Enumerate(q, opts, yield)
	}
}

// Count returns the number of matches of q under opts.
func (m *Matcher) Count(q *pattern.Pattern, opts Options) int {
	n := 0
	m.Enumerate(q, opts, func(core.Match) bool {
		n++
		return opts.Limit == 0 || n < opts.Limit
	})
	return n
}

// Has reports whether q has at least one match under opts.
func (m *Matcher) Has(q *pattern.Pattern, opts Options) bool {
	found := false
	m.Enumerate(q, opts, func(core.Match) bool {
		found = true
		return false
	})
	return found
}

// All returns every match (copied) of q under opts.
func (m *Matcher) All(q *pattern.Pattern, opts Options) []core.Match {
	var out []core.Match
	m.Enumerate(q, opts, func(h core.Match) bool {
		out = append(out, append(core.Match(nil), h...))
		return true
	})
	return out
}

// compiledFor lowers q onto the topology's symbol table, memoized on the
// pattern itself (pattern.CompileFor), so matchers are cheap to construct
// and workers sharing rule patterns share the lowering.
func (m *Matcher) compiledFor(q *pattern.Pattern) *pattern.Compiled {
	return pattern.CompileFor(q, m.topo.Syms())
}

// ensure sizes the reusable buffers for an n-node pattern, growing the
// used-set when the topology gained nodes since the last call (an Overlay
// between update batches).
func (m *Matcher) ensure(n int) {
	if v := m.numNodes(); len(m.used) < v {
		m.used = make([]bool, v)
	}
	if cap(m.assign) < n {
		m.assign = make(core.Match, n)
		m.order = make([]int, n)
		m.placed = make([]bool, n)
		m.est = make([]int, n)
	}
	m.assign = m.assign[:n]
	m.order = m.order[:n]
	m.placed = m.placed[:n]
	m.est = m.est[:n]
	for i := 0; i < n; i++ {
		m.assign[i] = graph.Invalid
		m.placed[i] = false
	}
	for len(m.cands) < n {
		m.cands = append(m.cands, nil)
	}
}

// topoVersion is the plan-cache version component: snapshots are immutable
// so every enumeration sees version 0; an overlay reports its graph
// version, which advances per mutation.
func (m *Matcher) topoVersion() uint64 {
	if m.snap != nil {
		return 0
	}
	if o, ok := m.topo.(*graph.Overlay); ok {
		return o.Version()
	}
	return 0
}

// planOrder mirrors the legacy searcher's matching order — pinned nodes
// first, then BFS growth from placed nodes preferring small candidate
// estimates, new components seeded by the most selective node — using
// topology class sizes as estimates and no allocations.
func (m *Matcher) planOrder() {
	n := m.n
	// Cached order: patterns small enough for a pin bitmask (all of them,
	// in practice) resolve repeated enumerations — one per work unit on
	// the engine paths — to a map hit and a copy, skipping the class-size
	// reads and the O(|Q|²) selection below.
	cacheable := n <= 64
	var key planKey
	if cacheable {
		key = planKey{cq: m.cq, ver: m.topoVersion()}
		for i := 0; i < n; i++ {
			if _, ok := m.opts.Pin[i]; ok {
				key.pins |= 1 << uint(i)
			}
		}
		if ord, ok := m.plans[key]; ok {
			copy(m.order, ord)
			return
		}
	}
	// Candidate estimates are constant during planning; resolving them
	// once per pattern node keeps the O(|Q|²) selection loops on plain
	// array reads (and off the Topology interface on the overlay path).
	for v := 0; v < n; v++ {
		sym := m.cq.NodeSyms[v]
		switch {
		case sym == graph.WildcardSym:
			m.est[v] = m.numNodes()
		case m.snap != nil:
			m.est[v] = m.snap.ClassSize(sym)
		default:
			m.est[v] = m.topo.ClassSize(sym)
		}
	}
	k := 0
	for i := 0; i < n; i++ {
		if _, ok := m.opts.Pin[i]; ok {
			m.placed[i] = true
			m.order[k] = i
			k++
		}
	}
	for k < n {
		next, bestEst := -1, int(^uint(0)>>1)
		for oi := 0; oi < k; oi++ {
			p := m.order[oi]
			for _, ei := range m.q.OutEdges(p) {
				if w := int(m.cq.Edges[ei].To); !m.placed[w] && m.est[w] < bestEst {
					next, bestEst = w, m.est[w]
				}
			}
			for _, ei := range m.q.InEdges(p) {
				if w := int(m.cq.Edges[ei].From); !m.placed[w] && m.est[w] < bestEst {
					next, bestEst = w, m.est[w]
				}
			}
		}
		if next < 0 {
			for v := 0; v < n; v++ {
				if !m.placed[v] && m.est[v] < bestEst {
					next, bestEst = v, m.est[v]
				}
			}
		}
		m.placed[next] = true
		m.order[k] = next
		k++
	}
	if cacheable {
		if m.plans == nil {
			m.plans = make(map[planKey][]int)
		} else if len(m.plans) >= maxPlanCache {
			clear(m.plans)
		}
		m.plans[key] = append([]int(nil), m.order[:n]...)
	}
}

func (m *Matcher) extend(depth int) {
	if m.halt {
		return
	}
	if depth == m.n {
		m.found++
		if !m.yield(m.assign) {
			m.halt = true
		}
		if m.opts.Limit > 0 && m.found >= m.opts.Limit {
			m.halt = true
		}
		return
	}
	u := m.order[depth]
	if v, ok := m.opts.Pin[u]; ok {
		m.try(depth, u, v)
		return
	}
	// Candidate generation. With one matched neighbor (or under
	// NoIntersect): iterate the smallest label-filtered adjacency range,
	// feasible() verifies the rest by binary search. With two or more
	// matched neighbors over concrete edge labels: intersect their sorted
	// ranges directly (worst-case-optimal join step) — only survivors of
	// the multiway merge reach try(), skipping the per-candidate probes
	// that make cyclic patterns (triangles, diamonds) pay the classical
	// intermediate blow-up. Wildcard-labeled ranges span label groups and
	// are not To-sorted, so they never join the intersection; feasible()
	// still checks those edges per candidate.
	var best []graph.CSREdge
	bestLen := -1
	wco := !m.opts.NoIntersect
	nr := 0
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if from := m.assign[e.From]; from != graph.Invalid {
			r := m.topo.OutWith(from, e.Label)
			if bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
			if wco && e.Label != graph.WildcardSym && nr < graph.MaxIntersectArity {
				m.ranges[nr] = r
				nr++
			}
		}
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		if to := m.assign[e.To]; to != graph.Invalid {
			r := m.topo.InWith(to, e.Label)
			if bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
			if wco && e.Label != graph.WildcardSym && nr < graph.MaxIntersectArity {
				m.ranges[nr] = r
				nr++
			}
		}
	}
	if nr >= 2 {
		// m.ranges is free for deeper depths once the intersection has
		// materialized into this depth's candidate buffer; the buffer
		// itself is per-depth because it is live across the recursion.
		cands := graph.IntersectAdjacency(m.cands[depth][:0], m.ranges[:nr])
		m.cands[depth] = cands
		for _, v := range cands {
			m.try(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	if bestLen >= 0 {
		for i := range best {
			// Adjacency is (Label, To)-sorted, so duplicate (from, to,
			// label) edges — which the graph type documents as never
			// produced, but does not reject — sit adjacent; skipping them
			// keeps the match set a set where the legacy path would
			// re-yield the same h once per parallel edge.
			if i > 0 && best[i] == best[i-1] {
				continue
			}
			m.try(depth, u, best[i].To)
			if m.halt {
				return
			}
		}
		return
	}
	// Fresh component: label class range — narrowed to the precomputed
	// residue sub-range when this node carries the stripe constraint — or
	// all nodes for a wildcard.
	sym := m.cq.NodeSyms[u]
	if sym != graph.WildcardSym {
		var cands []graph.NodeID
		if m.opts.StripeMod > 0 && u == m.opts.StripeNode {
			cands = m.topo.NodesWithStripe(sym, m.opts.StripeMod, m.opts.StripeRem)
		} else {
			cands = m.topo.NodesWith(sym)
		}
		for _, v := range cands {
			m.try(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	for v := 0; v < m.topo.NumNodes(); v++ {
		m.try(depth, u, graph.NodeID(v))
		if m.halt {
			return
		}
	}
}

// try extends the partial assignment with u -> v if injective and feasible.
func (m *Matcher) try(depth, u int, v graph.NodeID) {
	if m.opts.Halt != nil {
		m.tick++
		if m.tick%haltStride == 0 && m.opts.Halt() {
			m.halt = true
			return
		}
	}
	if m.used[v] {
		return
	}
	if !m.feasible(u, v) {
		return
	}
	m.assign[u] = v
	m.used[v] = true
	m.extend(depth + 1)
	m.used[v] = false
	m.assign[u] = graph.Invalid
}

// feasible verifies block membership, striping, node label, degree bounds,
// and every pattern edge between u and an already-assigned node (binary
// searches over sorted CSR ranges). The stripe check stays here even
// though striped class enumeration pre-filters (NodesWithStripe):
// adjacency-driven candidates are not pre-filtered, and an Overlay's
// stripe ranges are allowed to over-approximate.
func (m *Matcher) feasible(u int, v graph.NodeID) bool {
	if m.opts.Block != nil && !m.opts.Block.Contains(v) {
		return false
	}
	if m.opts.StripeMod > 0 && u == m.opts.StripeNode && int(v)%m.opts.StripeMod != m.opts.StripeRem {
		return false
	}
	if !pattern.LabelMatchesSym(m.cq.NodeSyms[u], m.topo.Label(v)) {
		return false
	}
	if len(m.q.OutEdges(u)) > m.topo.OutDegree(v) || len(m.q.InEdges(u)) > m.topo.InDegree(v) {
		return false
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		to := m.assign[e.To]
		if int(e.To) == u {
			to = v // self-loop
		}
		if to == graph.Invalid {
			continue
		}
		if !m.topo.HasEdge(v, to, e.Label) {
			return false
		}
	}
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if int(e.From) == u {
			continue // self-loop handled above
		}
		from := m.assign[e.From]
		if from == graph.Invalid {
			continue
		}
		if !m.topo.HasEdge(from, v, e.Label) {
			return false
		}
	}
	return true
}

// The snapshot-specialized search: extendSnap/trySnap/feasibleSnap are
// the exact generic extend/try/feasible with every topology access made a
// direct (inlinable) call on *graph.Snapshot. The duplication exists
// because the batch engines' per-candidate inner loop is the system's
// hottest code: routing it through interface dispatch (or even through
// nil-checked wrapper methods, which Go's inliner rejects at this size)
// measurably slows every engine, and the tentpole contract is zero
// regression on the pure-snapshot path. Behavioral changes MUST be made
// to both copies; the differential tests run each against the other's
// reference path.

func (m *Matcher) extendSnap(depth int) {
	if m.halt {
		return
	}
	if depth == m.n {
		m.found++
		if !m.yield(m.assign) {
			m.halt = true
		}
		if m.opts.Limit > 0 && m.found >= m.opts.Limit {
			m.halt = true
		}
		return
	}
	u := m.order[depth]
	if v, ok := m.opts.Pin[u]; ok {
		m.trySnap(depth, u, v)
		return
	}
	var best []graph.CSREdge
	bestLen := -1
	wco := !m.opts.NoIntersect
	nr := 0
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if from := m.assign[e.From]; from != graph.Invalid {
			r := m.snap.OutWith(from, e.Label)
			if bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
			if wco && e.Label != graph.WildcardSym && nr < graph.MaxIntersectArity {
				m.ranges[nr] = r
				nr++
			}
		}
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		if to := m.assign[e.To]; to != graph.Invalid {
			r := m.snap.InWith(to, e.Label)
			if bestLen < 0 || len(r) < bestLen {
				best, bestLen = r, len(r)
			}
			if wco && e.Label != graph.WildcardSym && nr < graph.MaxIntersectArity {
				m.ranges[nr] = r
				nr++
			}
		}
	}
	if nr >= 2 {
		// Worst-case-optimal step; see extend.
		cands := graph.IntersectAdjacency(m.cands[depth][:0], m.ranges[:nr])
		m.cands[depth] = cands
		for _, v := range cands {
			m.trySnap(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	if bestLen >= 0 {
		for i := range best {
			if i > 0 && best[i] == best[i-1] {
				continue // adjacent duplicate triple; see extend
			}
			m.trySnap(depth, u, best[i].To)
			if m.halt {
				return
			}
		}
		return
	}
	sym := m.cq.NodeSyms[u]
	if sym != graph.WildcardSym {
		var cands []graph.NodeID
		if m.opts.StripeMod > 0 && u == m.opts.StripeNode {
			cands = m.snap.NodesWithStripe(sym, m.opts.StripeMod, m.opts.StripeRem)
		} else {
			cands = m.snap.NodesWith(sym)
		}
		for _, v := range cands {
			m.trySnap(depth, u, v)
			if m.halt {
				return
			}
		}
		return
	}
	for v := 0; v < m.snap.NumNodes(); v++ {
		m.trySnap(depth, u, graph.NodeID(v))
		if m.halt {
			return
		}
	}
}

func (m *Matcher) trySnap(depth, u int, v graph.NodeID) {
	if m.opts.Halt != nil {
		m.tick++
		if m.tick%haltStride == 0 && m.opts.Halt() {
			m.halt = true
			return
		}
	}
	if m.used[v] {
		return
	}
	if !m.feasibleSnap(u, v) {
		return
	}
	m.assign[u] = v
	m.used[v] = true
	m.extendSnap(depth + 1)
	m.used[v] = false
	m.assign[u] = graph.Invalid
}

func (m *Matcher) feasibleSnap(u int, v graph.NodeID) bool {
	if m.opts.Block != nil && !m.opts.Block.Contains(v) {
		return false
	}
	if m.opts.StripeMod > 0 && u == m.opts.StripeNode && int(v)%m.opts.StripeMod != m.opts.StripeRem {
		return false
	}
	if !pattern.LabelMatchesSym(m.cq.NodeSyms[u], m.snap.Label(v)) {
		return false
	}
	if len(m.q.OutEdges(u)) > m.snap.OutDegree(v) || len(m.q.InEdges(u)) > m.snap.InDegree(v) {
		return false
	}
	for _, ei := range m.q.OutEdges(u) {
		e := m.cq.Edges[ei]
		to := m.assign[e.To]
		if int(e.To) == u {
			to = v // self-loop
		}
		if to == graph.Invalid {
			continue
		}
		if !m.snap.HasEdge(v, to, e.Label) {
			return false
		}
	}
	for _, ei := range m.q.InEdges(u) {
		e := m.cq.Edges[ei]
		if int(e.From) == u {
			continue // self-loop handled above
		}
		from := m.assign[e.From]
		if from == graph.Invalid {
			continue
		}
		if !m.snap.HasEdge(from, v, e.Label) {
			return false
		}
	}
	return true
}

// EnumerateSnapshot is Enumerate over a compiled topology with a throwaway
// Matcher; callers with repeated enumerations should hold a Matcher.
func EnumerateSnapshot(t graph.Topology, q *pattern.Pattern, opts Options, yield func(core.Match) bool) {
	NewMatcher(t).Enumerate(q, opts, yield)
}

// CountSnapshot counts matches over a compiled topology.
func CountSnapshot(t graph.Topology, q *pattern.Pattern, opts Options) int {
	return NewMatcher(t).Count(q, opts)
}

// AllSnapshot returns every match (copied) over a compiled topology.
func AllSnapshot(t graph.Topology, q *pattern.Pattern, opts Options) []core.Match {
	return NewMatcher(t).All(q, opts)
}
