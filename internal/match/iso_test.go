package match

import (
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// buildG1 reproduces Fig. 1's G1: two flight entities with private
// satellites; flight1 Paris->NYC, flight2 Paris->Singapore, same id DL1
// and times.
func buildG1() *graph.Graph {
	g := graph.New(0, 0)
	addFlight := func(name, id, from, to, dep, arr string) graph.NodeID {
		f := g.AddNode("flight", graph.Attrs{"val": name})
		sat := func(label, val string) graph.NodeID {
			return g.AddNode(label, graph.Attrs{"val": val})
		}
		g.MustAddEdge(f, sat("id", id), "number")
		g.MustAddEdge(f, sat("city", from), "from")
		g.MustAddEdge(f, sat("city", to), "to")
		g.MustAddEdge(f, sat("time", dep), "depart")
		g.MustAddEdge(f, sat("time", arr), "arrive")
		return f
	}
	addFlight("flight1", "DL1", "Paris", "NYC", "14:50", "22:35")
	addFlight("flight2", "DL1", "Paris", "Singapore", "14:50", "22:35")
	return g
}

// flightComponent builds one component of the paper's Q1.
func flightComponent(p *pattern.Pattern, prefix string) {
	x := p.AddNode(pattern.Var(prefix), "flight")
	labels := []string{"id", "city", "city", "time", "time"}
	edges := []string{"number", "from", "to", "depart", "arrive"}
	for i := range labels {
		s := p.AddNode(pattern.Var(prefix+string(rune('1'+i))), labels[i])
		p.AddEdge(x, s, edges[i])
	}
}

func buildQ1() *pattern.Pattern {
	p := pattern.New()
	flightComponent(p, "x")
	flightComponent(p, "y")
	return p
}

func TestSingleComponentStarMatch(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	ms := All(g, q, Options{})
	if len(ms) != 2 {
		t.Fatalf("star matches = %d, want 2 (one per flight)", len(ms))
	}
	// Each match maps x to a flight node.
	for _, m := range ms {
		if g.Label(m[0]) != "flight" {
			t.Errorf("x matched %s", g.Label(m[0]))
		}
	}
}

func TestTwoComponentMatchCount(t *testing.T) {
	g := buildG1()
	q := buildQ1()
	ms := All(g, q, Options{})
	// Two flights, ordered pairs with distinct entities: (f1,f2) and (f2,f1).
	if len(ms) != 2 {
		t.Fatalf("Q1 matches = %d, want 2", len(ms))
	}
	xi, _ := q.VarIndex("x")
	yi, _ := q.VarIndex("y")
	for _, m := range ms {
		if m[xi] == m[yi] {
			t.Error("injectivity violated: x == y")
		}
	}
}

func TestMatchIsInjective(t *testing.T) {
	// Pattern: two city nodes. G1 has 4 city satellites -> 4*3 ordered pairs.
	g := buildG1()
	q := pattern.New()
	q.AddNode("a", "city")
	q.AddNode("b", "city")
	if n := Count(g, q, Options{}); n != 12 {
		t.Fatalf("city pairs = %d, want 12", n)
	}
}

func TestEdgeLabelMatters(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	f := q.AddNode("f", "flight")
	c := q.AddNode("c", "city")
	q.AddEdge(f, c, "from")
	if n := Count(g, q, Options{}); n != 2 {
		t.Fatalf("from-matches = %d, want 2", n)
	}
	q2 := pattern.New()
	f2 := q2.AddNode("f", "flight")
	c2 := q2.AddNode("c", "city")
	q2.AddEdge(f2, c2, "lands_at")
	if Has(g, q2, Options{}) {
		t.Error("nonexistent edge label must not match")
	}
}

func TestWildcardNodeAndEdge(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	a := q.AddNode("a", pattern.Wildcard)
	b := q.AddNode("b", "id")
	q.AddEdge(a, b, pattern.Wildcard)
	// Only flights point at id nodes: 2 matches.
	if n := Count(g, q, Options{}); n != 2 {
		t.Fatalf("wildcard matches = %d, want 2", n)
	}
}

func TestPinRestrictsMatches(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	xi, _ := q.VarIndex("x")
	flights := g.NodesWithLabel("flight")
	ms := All(g, q, Options{Pin: map[int]graph.NodeID{xi: flights[0]}})
	if len(ms) != 1 || ms[0][xi] != flights[0] {
		t.Fatalf("pinned matches = %v", ms)
	}
	// Pin to an incompatible node: no matches.
	cities := g.NodesWithLabel("city")
	if Has(g, q, Options{Pin: map[int]graph.NodeID{xi: cities[0]}}) {
		t.Error("pin to wrong-label node must not match")
	}
}

func TestBlockRestrictsMatches(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	flights := g.NodesWithLabel("flight")
	// Block = 1-hop around flight0 only.
	block := graph.NewNodeSet(g.Neighborhood(flights[0], 1))
	ms := All(g, q, Options{Block: block})
	if len(ms) != 1 {
		t.Fatalf("block-restricted matches = %d, want 1", len(ms))
	}
}

func TestLimitStopsEnumeration(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	q.AddNode("a", "city")
	q.AddNode("b", "city")
	if n := len(All(g, q, Options{Limit: 3})); n != 3 {
		t.Fatalf("limited matches = %d, want 3", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	q.AddNode("a", "city")
	calls := 0
	Enumerate(g, q, Options{}, func(core.Match) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop after %d yields", calls)
	}
}

func TestStripePartitionsMatchSpace(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	total := Count(g, q, Options{})
	sum := 0
	mod := 3
	for rem := 0; rem < mod; rem++ {
		sum += Count(g, q, Options{StripeNode: 1, StripeMod: mod, StripeRem: rem})
	}
	if sum != total {
		t.Fatalf("stripes sum to %d, total is %d", sum, total)
	}
}

func TestCyclicPattern(t *testing.T) {
	// Triangle in the graph.
	g := graph.New(0, 0)
	a := g.AddNode("n", nil)
	b := g.AddNode("n", nil)
	c := g.AddNode("n", nil)
	g.MustAddEdge(a, b, "e")
	g.MustAddEdge(b, c, "e")
	g.MustAddEdge(c, a, "e")

	q := pattern.New()
	x := q.AddNode("x", "n")
	y := q.AddNode("y", "n")
	z := q.AddNode("z", "n")
	q.AddEdge(x, y, "e")
	q.AddEdge(y, z, "e")
	q.AddEdge(z, x, "e")
	// Directed triangle has 3 rotations as matches.
	if n := Count(g, q, Options{}); n != 3 {
		t.Fatalf("triangle matches = %d, want 3", n)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	g := graph.New(0, 0)
	a := g.AddNode("n", nil)
	g.AddNode("n", nil)
	g.MustAddEdge(a, a, "self")

	q := pattern.New()
	x := q.AddNode("x", "n")
	q.AddEdge(x, x, "self")
	ms := All(g, q, Options{})
	if len(ms) != 1 || ms[0][0] != a {
		t.Fatalf("self-loop matches = %v", ms)
	}
}

func TestParallelPatternEdges(t *testing.T) {
	// Pattern demands two differently-labeled edges between the same pair.
	g := graph.New(0, 0)
	a := g.AddNode("n", nil)
	b := g.AddNode("n", nil)
	g.MustAddEdge(a, b, "e1")
	g.MustAddEdge(a, b, "e2")
	c := g.AddNode("n", nil)
	g.MustAddEdge(a, c, "e1")

	q := pattern.New()
	x := q.AddNode("x", "n")
	y := q.AddNode("y", "n")
	q.AddEdge(x, y, "e1")
	q.AddEdge(x, y, "e2")
	ms := All(g, q, Options{})
	if len(ms) != 1 || ms[0][1] != b {
		t.Fatalf("multi-edge matches = %v", ms)
	}
}

func TestEmptyPatternYieldsNothing(t *testing.T) {
	g := buildG1()
	if Has(g, pattern.New(), Options{}) {
		t.Error("empty pattern must yield no matches")
	}
}

func TestMatchReuseRequiresCopy(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	q.AddNode("a", "flight")
	var raw []core.Match
	Enumerate(g, q, Options{}, func(m core.Match) bool {
		raw = append(raw, m) // deliberately NOT copying
		return true
	})
	// The doc says the slice is reused: both entries alias the same array.
	if len(raw) == 2 && &raw[0][0] != &raw[1][0] {
		t.Skip("implementation copies; nothing to verify")
	}
}
