package match

import (
	"testing"

	"gfd/internal/graph"
	"gfd/internal/pattern"
)

func TestSimulateBasic(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	f := q.AddNode("f", "flight")
	c := q.AddNode("c", "city")
	q.AddEdge(f, c, "from")

	sim := Simulate(g, q, nil)
	// Both flights have a from-city: sim(f) = 2 flights.
	if sim[0].Len() != 2 {
		t.Errorf("sim(f) = %d, want 2", sim[0].Len())
	}
	// Only the two from-cities simulate c (to-cities lack an incoming
	// 'from' edge).
	if sim[1].Len() != 2 {
		t.Errorf("sim(c) = %d, want 2", sim[1].Len())
	}
}

func TestSimulateOverApproximatesIso(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	sim := Simulate(g, q, nil)
	for _, m := range All(g, q, Options{}) {
		for u, v := range m {
			if _, ok := sim[u][v]; !ok {
				t.Fatalf("match node %d for pattern %d missing from simulation", v, u)
			}
		}
	}
}

func TestSimulatePrunesDanglingCandidates(t *testing.T) {
	g := graph.New(0, 0)
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddNode("a", nil) // isolated 'a' node: cannot simulate
	g.MustAddEdge(a, b, "e")

	q := pattern.New()
	x := q.AddNode("x", "a")
	y := q.AddNode("y", "b")
	q.AddEdge(x, y, "e")

	sim := Simulate(g, q, nil)
	if sim[0].Len() != 1 {
		t.Errorf("sim(x) = %v, want only the connected 'a'", sim[0].Sorted())
	}
	if !sim[0].Contains(a) {
		t.Error("connected 'a' pruned incorrectly")
	}
}

func TestSimulateRespectsBlock(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	flightComponent(q, "x")
	flights := g.NodesWithLabel("flight")
	block := graph.NewNodeSet(g.Neighborhood(flights[0], 1))
	sim := Simulate(g, q, block)
	if sim[0].Len() != 1 || !sim[0].Contains(flights[0]) {
		t.Errorf("block-restricted sim(x) = %v", sim[0].Sorted())
	}
}

func TestSimulateCyclicPattern(t *testing.T) {
	// A directed 2-cycle pattern over a graph with only a chain: empty sim.
	g := graph.New(0, 0)
	a := g.AddNode("n", nil)
	b := g.AddNode("n", nil)
	g.MustAddEdge(a, b, "e")

	q := pattern.New()
	x := q.AddNode("x", "n")
	y := q.AddNode("y", "n")
	q.AddEdge(x, y, "e")
	q.AddEdge(y, x, "e")

	sim := Simulate(g, q, nil)
	if sim[0].Len() != 0 || sim[1].Len() != 0 {
		t.Errorf("chain cannot simulate a cycle: %v %v", sim[0].Sorted(), sim[1].Sorted())
	}
}

func TestSimulationSize(t *testing.T) {
	g := buildG1()
	q := pattern.New()
	q.AddNode("x", "flight")
	sim := Simulate(g, q, nil)
	if SimulationSize(sim) != 2 {
		t.Errorf("SimulationSize = %d, want 2", SimulationSize(sim))
	}
}
