// Package match implements graph pattern matching via subgraph isomorphism
// (Section 2 of the GFD paper): a match of pattern Q in graph G is a
// subgraph of G isomorphic to Q, i.e. an injective mapping h from pattern
// nodes to graph nodes preserving node labels (wildcard matches anything)
// and requiring, for every pattern edge (u,u'), an edge (h(u),h(u')) in G
// with a matching label.
//
// The enumerator is a backtracking search with label/degree candidate
// filtering and connectivity-driven variable ordering. It supports pinning
// pattern nodes to designated graph nodes (pivot candidates of work units)
// and restricting matches to a data block (locality of subgraph
// isomorphism, Section 5.2).
//
// Two execution paths produce the same match set:
//
//   - Enumerate/Count/Has/All walk the mutable *graph.Graph directly. This
//     is the portable reference path, kept as the differential-test oracle
//     and for ad-hoc callers (targeted noise injection).
//   - Matcher (matcher.go) runs against a graph.Topology — the frozen
//     *graph.Snapshot (interned labels, CSR adjacency, zero steady-state
//     allocations; what the batch engines use) or a *graph.Overlay (the
//     snapshot plus update patches; what the incremental detector and
//     post-update sessions use). Build graphs, g.Freeze() (or maintain an
//     overlay), then match.
package match

import (
	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// Options configures an enumeration.
type Options struct {
	// Block restricts every matched graph node to this set. nil means the
	// whole graph. Engines pass a per-worker *graph.EpochSet (reusable,
	// allocation-free); ad-hoc callers pass a graph.NodeSet.
	Block graph.Membership
	// Pin forces pattern node index k to match exactly Pin[k]. Used to
	// enumerate only matches that include a pivot candidate.
	Pin map[int]graph.NodeID
	// Limit stops the enumeration after this many matches; 0 means
	// unlimited.
	Limit int
	// StripeNode, together with StripeMod/StripeRem, partitions the match
	// space for the replicate-and-split skew optimization: pattern node
	// StripeNode may only match graph nodes v with v mod StripeMod ==
	// StripeRem. StripeMod == 0 disables striping. Enumerating all
	// residues yields exactly the unstriped match set, since every match
	// assigns StripeNode exactly one graph node.
	StripeNode int
	StripeMod  int
	StripeRem  int
	// NoIntersect disables the Matcher's multiway sorted-intersection
	// candidate step, forcing the classical iterate-smallest-and-probe
	// backtracking everywhere. The match set is identical either way; the
	// flag exists for differential tests and for benchmarking the
	// worst-case-optimal step against the backtracking path. The legacy
	// Enumerate path ignores it (it has no intersection step).
	NoIntersect bool
	// Halt is consulted at strided checkpoints inside candidate
	// enumeration; returning true abandons the search immediately, even
	// mid-class on a stretch that produces no matches (where a
	// yield-driven stop would never fire). The engines pass their
	// per-worker cancellation probe so early termination — a consumer
	// done pulling violations, a cancelled context, an expired unit
	// deadline — propagates into the backtracking itself. nil disables
	// the probe at zero cost.
	Halt func() bool
}

// Enumerate calls yield for every match of q in g under opts, in a
// deterministic order. Enumeration stops early if yield returns false.
// The Match slice passed to yield is reused across calls; callers that
// retain it must copy it.
func Enumerate(g *graph.Graph, q *pattern.Pattern, opts Options, yield func(core.Match) bool) {
	if q.NumNodes() == 0 {
		return
	}
	s := &searcher{g: g, q: q, opts: opts, yield: yield}
	s.order = s.planOrder()
	s.assign = make(core.Match, q.NumNodes())
	for i := range s.assign {
		s.assign[i] = graph.Invalid
	}
	s.used = make(map[graph.NodeID]struct{}, q.NumNodes())
	s.extend(0)
}

// Count returns the number of matches of q in g under opts.
func Count(g *graph.Graph, q *pattern.Pattern, opts Options) int {
	n := 0
	Enumerate(g, q, opts, func(core.Match) bool {
		n++
		return opts.Limit == 0 || n < opts.Limit
	})
	return n
}

// Has reports whether q has at least one match in g under opts.
func Has(g *graph.Graph, q *pattern.Pattern, opts Options) bool {
	found := false
	Enumerate(g, q, opts, func(core.Match) bool {
		found = true
		return false
	})
	return found
}

// All returns every match (copied) of q in g under opts.
func All(g *graph.Graph, q *pattern.Pattern, opts Options) []core.Match {
	var out []core.Match
	Enumerate(g, q, opts, func(m core.Match) bool {
		out = append(out, append(core.Match(nil), m...))
		return true
	})
	return out
}

type searcher struct {
	g     *graph.Graph
	q     *pattern.Pattern
	opts  Options
	yield func(core.Match) bool

	order  []int
	assign core.Match
	used   map[graph.NodeID]struct{}
	found  int
	halt   bool
}

// planOrder produces a matching order: pinned nodes first, then remaining
// nodes of each component in BFS order from already-placed nodes, seeding
// new components by the node with the smallest candidate estimate.
func (s *searcher) planOrder() []int {
	n := s.q.NumNodes()
	placed := make([]bool, n)
	order := make([]int, 0, n)
	// Pinned nodes first (cheapest to verify, maximum pruning).
	for i := 0; i < n; i++ {
		if _, ok := s.opts.Pin[i]; ok {
			placed[i] = true
			order = append(order, i)
		}
	}
	adjacent := func(v int) []int {
		var out []int
		for _, ei := range s.q.OutEdges(v) {
			out = append(out, s.q.Edges[ei].To)
		}
		for _, ei := range s.q.InEdges(v) {
			out = append(out, s.q.Edges[ei].From)
		}
		return out
	}
	estimate := func(v int) int {
		l := s.q.Nodes[v].Label
		if l == pattern.Wildcard {
			return s.g.NumNodes()
		}
		return s.g.LabelCount(l)
	}
	for len(order) < n {
		// Grow from the frontier of placed nodes if possible.
		next := -1
		bestEst := int(^uint(0) >> 1)
		for _, p := range order {
			for _, w := range adjacent(p) {
				if !placed[w] && estimate(w) < bestEst {
					next, bestEst = w, estimate(w)
				}
			}
		}
		if next < 0 {
			// New component: seed with the most selective node.
			for v := 0; v < n; v++ {
				if !placed[v] && estimate(v) < bestEst {
					next, bestEst = v, estimate(v)
				}
			}
		}
		placed[next] = true
		order = append(order, next)
	}
	return order
}

func (s *searcher) extend(depth int) {
	if s.halt {
		return
	}
	if s.opts.Halt != nil && s.opts.Halt() {
		s.halt = true
		return
	}
	if depth == len(s.order) {
		s.found++
		if !s.yield(s.assign) {
			s.halt = true
		}
		if s.opts.Limit > 0 && s.found >= s.opts.Limit {
			s.halt = true
		}
		return
	}
	u := s.order[depth]
	for _, v := range s.candidates(u) {
		if _, taken := s.used[v]; taken {
			continue
		}
		if !s.feasible(u, v) {
			continue
		}
		s.assign[u] = v
		s.used[v] = struct{}{}
		s.extend(depth + 1)
		delete(s.used, v)
		s.assign[u] = graph.Invalid
		if s.halt {
			return
		}
	}
}

// candidates produces the candidate graph nodes for pattern node u given
// the current partial assignment: the pinned node, or the neighbors of an
// already-matched adjacent pattern node, or the label index.
func (s *searcher) candidates(u int) []graph.NodeID {
	if v, ok := s.opts.Pin[u]; ok {
		return []graph.NodeID{v}
	}
	// Prefer expanding along a matched neighbor: candidates are then the
	// adjacency of the matched node, already label-filtered by feasible().
	for _, ei := range s.q.InEdges(u) {
		e := s.q.Edges[ei]
		if from := s.assign[e.From]; from != graph.Invalid {
			out := make([]graph.NodeID, 0, len(s.g.Out(from)))
			for _, he := range s.g.Out(from) {
				if pattern.LabelMatches(e.Label, he.Label) {
					out = append(out, he.To)
				}
			}
			return out
		}
	}
	for _, ei := range s.q.OutEdges(u) {
		e := s.q.Edges[ei]
		if to := s.assign[e.To]; to != graph.Invalid {
			out := make([]graph.NodeID, 0, len(s.g.In(to)))
			for _, he := range s.g.In(to) {
				if pattern.LabelMatches(e.Label, he.Label) {
					out = append(out, he.To)
				}
			}
			return out
		}
	}
	// Fresh component: label index or all nodes for wildcard.
	l := s.q.Nodes[u].Label
	if l != pattern.Wildcard {
		return s.g.NodesWithLabel(l)
	}
	all := make([]graph.NodeID, s.g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return all
}

// feasible verifies that assigning v to pattern node u is consistent:
// block membership, node label, degree bounds, and every pattern edge
// between u and an already-assigned node.
func (s *searcher) feasible(u int, v graph.NodeID) bool {
	if s.opts.Block != nil && !s.opts.Block.Contains(v) {
		return false
	}
	if s.opts.StripeMod > 0 && u == s.opts.StripeNode && int(v)%s.opts.StripeMod != s.opts.StripeRem {
		return false
	}
	if !pattern.LabelMatches(s.q.Nodes[u].Label, s.g.Label(v)) {
		return false
	}
	if len(s.q.OutEdges(u)) > s.g.OutDegree(v) || len(s.q.InEdges(u)) > s.g.InDegree(v) {
		return false
	}
	for _, ei := range s.q.OutEdges(u) {
		e := s.q.Edges[ei]
		to := s.assign[e.To]
		if e.To == u {
			to = v // self-loop
		}
		if to == graph.Invalid {
			continue
		}
		if !s.hasEdge(v, to, e.Label) {
			return false
		}
	}
	for _, ei := range s.q.InEdges(u) {
		e := s.q.Edges[ei]
		if e.From == u {
			continue // self-loop handled above
		}
		from := s.assign[e.From]
		if from == graph.Invalid {
			continue
		}
		if !s.hasEdge(from, v, e.Label) {
			return false
		}
	}
	return true
}

func (s *searcher) hasEdge(from, to graph.NodeID, label string) bool {
	if label == pattern.Wildcard {
		return s.g.HasEdgeAnyLabel(from, to)
	}
	return s.g.HasEdge(from, to, label)
}
