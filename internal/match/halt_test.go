package match

import (
	"fmt"
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// haltWorkload is a match space large enough that the strided Halt probe
// must fire well before exhaustion: a two-component single-node pattern
// over n city nodes enumerates n² assignments.
func haltWorkload(n int) (*graph.Graph, *pattern.Pattern) {
	g := graph.New(0, 0)
	for i := 0; i < n; i++ {
		g.AddNode("city", graph.Attrs{"val": fmt.Sprint(i)})
	}
	q := pattern.New()
	q.AddNode("x", "city")
	q.AddNode("y", "city")
	return g, q
}

// TestHaltStopsEnumerationMidClass: once Options.Halt reports true, both
// enumeration paths stop within one probe stride even though the yield
// keeps asking for more. This is the hook the streaming pipeline's early
// termination rides — a consumer breaking out of Prepared.Violations must
// reach into candidate enumeration mid-class, not wait for the current
// unit to finish.
func TestHaltStopsEnumerationMidClass(t *testing.T) {
	g, q := haltWorkload(40)
	total := Count(g, q, Options{})
	if total <= 4*haltStride {
		t.Fatalf("workload too small to exercise the halt stride: %d matches", total)
	}
	paths := map[string]func(opts Options, yield func(core.Match) bool){
		"enumerate": func(opts Options, yield func(core.Match) bool) {
			Enumerate(g, q, opts, yield)
		},
		"snapshot": func(opts Options, yield func(core.Match) bool) {
			EnumerateSnapshot(g.Freeze(), q, opts, yield)
		},
	}
	for name, run := range paths {
		halted := false
		yields := 0
		run(Options{Halt: func() bool { return halted }}, func(core.Match) bool {
			yields++
			halted = true // trip on the first match; keep asking for more
			return true
		})
		if yields == 0 {
			t.Fatalf("%s: no match yielded before the halt tripped", name)
		}
		if yields >= total {
			t.Fatalf("%s: Halt ignored, all %d matches yielded", name, total)
		}
		if yields > 2*haltStride {
			t.Fatalf("%s: enumeration ran %d yields past the halt; probe stride is %d",
				name, yields, haltStride)
		}
	}
}

// TestHaltBeforeFirstMatch: a Halt that is already true yields nothing —
// the probe runs ahead of the first emission, so a consumer that broke
// before a unit started never pays for its match space.
func TestHaltBeforeFirstMatch(t *testing.T) {
	g, q := haltWorkload(40)
	yields := 0
	Enumerate(g, q, Options{Halt: func() bool { return true }}, func(core.Match) bool {
		yields++
		return true
	})
	if yields != 0 {
		t.Fatalf("pre-tripped halt still yielded %d matches", yields)
	}
}
