// Allocation-tracked benchmarks for the two enumeration paths. Run with
//
//	go test ./internal/match -bench=BenchmarkEnumerate -benchmem
//
// The snapshot sub-benchmarks must report 0 allocs/op (steady state);
// TestMatcherZeroAllocSteadyState asserts it.
package match_test

import (
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

func starPattern() *pattern.Pattern {
	q := pattern.New()
	f := q.AddNode("f", "flight")
	id := q.AddNode("i", "id")
	from := q.AddNode("c", "city")
	q.AddEdge(f, id, "number")
	q.AddEdge(f, from, "from")
	return q
}

func trianglePattern() *pattern.Pattern {
	q := pattern.New()
	a := q.AddNode("a", "person")
	b := q.AddNode("b", "person")
	c := q.AddNode("c", "person")
	q.AddEdge(a, b, "knows")
	q.AddEdge(b, c, "knows")
	q.AddEdge(a, c, "knows")
	return q
}

func BenchmarkEnumerate(b *testing.B) {
	gStar := gen.YAGO2Like(gen.DatasetConfig{Scale: 400, Seed: 1})
	qStar := starPattern()
	gTri := gen.PokecLike(gen.DatasetConfig{Scale: 300, Seed: 2})
	qTri := trianglePattern()

	yield := func(core.Match) bool { return true }

	b.Run("star/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.Enumerate(gStar, qStar, match.Options{}, yield)
		}
	})
	b.Run("star/snapshot", func(b *testing.B) {
		m := match.NewMatcher(gStar.Freeze())
		m.Enumerate(qStar, match.Options{}, yield) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Enumerate(qStar, match.Options{}, yield)
		}
	})
	b.Run("triangle/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.Enumerate(gTri, qTri, match.Options{}, yield)
		}
	})
	b.Run("triangle/snapshot", func(b *testing.B) {
		m := match.NewMatcher(gTri.Freeze())
		m.Enumerate(qTri, match.Options{}, yield) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Enumerate(qTri, match.Options{}, yield)
		}
	})
}

// BenchmarkFreeze prices the snapshot build itself, so callers can judge
// the freeze-then-match break-even point.
func BenchmarkFreeze(b *testing.B) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 400, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetAttr(0, "val", "poke") // invalidate the cache: measure a real rebuild
		_ = g.Freeze()
	}
}
