// Differential tests for the matcher over a graph.Overlay: enumeration
// against the patched view must equal the slice-backed reference path on
// the same mutated graph, and the stripe-aware candidate ranges must not
// change any match set while keeping the class fast path allocation-free.
package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// mutateThroughOverlay applies a deterministic batch of updates through
// the overlay so graph and patches stay in lockstep.
func mutateThroughOverlay(ov *graph.Overlay, rng *rand.Rand, steps int) {
	g := ov.Graph()
	labels := g.Labels()
	for i := 0; i < steps; i++ {
		switch rng.Intn(3) {
		case 0:
			ov.AddNode(labels[rng.Intn(len(labels))], graph.Attrs{"val": fmt.Sprintf("nv%d", i)})
		case 1:
			from := graph.NodeID(rng.Intn(ov.NumNodes()))
			to := graph.NodeID(rng.Intn(ov.NumNodes()))
			if from != to && !g.HasEdge(from, to, "patched") {
				ov.MustAddEdge(from, to, "patched")
			}
		default:
			ov.SetAttr(graph.NodeID(rng.Intn(ov.NumNodes())), "val", fmt.Sprintf("sv%d", i))
		}
	}
}

func TestDifferentialOverlayMatcher(t *testing.T) {
	for name, g := range diffGraphs() {
		rng := rand.New(rand.NewSource(77))
		ov := graph.NewOverlay(g)
		m := match.NewMatcher(ov)
		for round := 0; round < 6; round++ {
			mutateThroughOverlay(ov, rng, 5+rng.Intn(10))
			for trial := 0; trial < 8; trial++ {
				q := randomPattern(g, rng, 2+rng.Intn(3), trial%2 == 1)
				opts := match.Options{}
				switch trial % 4 {
				case 1: // pin node 0 to a candidate, if any
					if cands := g.NodesWithLabel(q.Nodes[0].Label); len(cands) > 0 {
						opts.Pin = map[int]graph.NodeID{0: cands[rng.Intn(len(cands))]}
					}
				case 2: // block around a random node, overlay BFS
					start := graph.NodeID(rng.Intn(ov.NumNodes()))
					opts.Block = graph.NewNodeSet(ov.Neighborhood(start, 2))
				case 3: // stripe a random node
					opts.StripeNode = rng.Intn(q.NumNodes())
					opts.StripeMod = 2 + rng.Intn(3)
					opts.StripeRem = rng.Intn(opts.StripeMod)
				}
				legacy := matchKeys(match.All(g, q, opts))
				var overlaid []core.Match
				m.Enumerate(q, opts, func(h core.Match) bool {
					overlaid = append(overlaid, append(core.Match(nil), h...))
					return true
				})
				got := matchKeys(overlaid)
				if len(legacy) != len(got) {
					t.Fatalf("%s round %d trial %d: legacy found %d matches, overlay %d",
						name, round, trial, len(legacy), len(got))
				}
				for i := range legacy {
					if legacy[i] != got[i] {
						t.Fatalf("%s round %d trial %d: match sets differ at %d: %s vs %s",
							name, round, trial, i, legacy[i], got[i])
					}
				}
			}
		}
	}
}

// TestStripedClassFastPath pins the stripe-aware candidate ranges: a
// pattern whose striped node seeds the enumeration (no pin, no matched
// neighbor) takes the NodesWithStripe sub-range, and the residue stripes
// must still partition the unstriped match set exactly.
func TestStripedClassFastPath(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 60, Seed: 13})
	q := pattern.New()
	q.AddNode("c", "city") // single striped node: candidates come from the class
	snap := g.Freeze()
	all := match.CountSnapshot(snap, q, match.Options{})
	if all == 0 {
		t.Fatal("no city nodes; test is vacuous")
	}
	for _, mod := range []int{2, 3, 5} {
		total := 0
		for rem := 0; rem < mod; rem++ {
			total += match.CountSnapshot(snap, q, match.Options{StripeNode: 0, StripeMod: mod, StripeRem: rem})
		}
		if total != all {
			t.Fatalf("mod %d: stripes sum to %d, unstriped %d", mod, total, all)
		}
	}
}

// TestMatcherZeroAllocStriped extends the steady-state allocation
// guarantee to striped enumeration: after the per-(label, mod) stripe
// index is built once, striped class enumeration allocates nothing.
func TestMatcherZeroAllocStriped(t *testing.T) {
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 80, Seed: 1})
	q := pattern.New()
	f := q.AddNode("f", "flight")
	id := q.AddNode("i", "id")
	q.AddEdge(f, id, "number")

	m := match.NewMatcher(g.Freeze())
	count := 0
	yield := func(core.Match) bool { count++; return true }
	// Pick a residue that has matches (warm-up doubles as the search).
	var opts match.Options
	for rem := 0; rem < 4 && count == 0; rem++ {
		opts = match.Options{StripeNode: 0, StripeMod: 4, StripeRem: rem}
		m.Enumerate(q, opts, yield) // warm-up: compile, buffers, stripe index
	}
	if count == 0 {
		t.Fatal("workload has no matches; allocation test is vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Enumerate(q, opts, yield)
	})
	if allocs != 0 {
		t.Fatalf("steady-state striped Enumerate allocated %.1f times per run, want 0", allocs)
	}
}
