// Package gen provides the data substrate of the evaluation (Section 7):
// a synthetic power-law graph generator, parameter-matched stand-ins for
// the paper's real-life datasets (DBpedia, YAGO2, Pokec; see DESIGN.md §4
// for the substitution rationale), a GFD generator that mines frequent
// features and assembles rules, and noise injection with ground truth for
// the accuracy experiment (Exp-5).
package gen

import (
	"fmt"
	"math/rand"

	"gfd/internal/graph"
)

// SyntheticConfig controls the power-law generator. It mirrors the paper's
// knobs: |V|, |E|, a label alphabet L of 30 labels, 5 attributes per node
// with values from an active domain of 1000 values.
type SyntheticConfig struct {
	Nodes  int
	Edges  int
	Labels int     // node/edge label alphabet size; 0 -> 30
	Attrs  int     // attributes per node; 0 -> 5
	Domain int     // active attribute-value domain; 0 -> 1000
	Skew   float64 // preferential-attachment bias in [0,1); higher = more skewed degrees
	Seed   int64
}

func (c SyntheticConfig) normalize() SyntheticConfig {
	if c.Labels <= 0 {
		c.Labels = 30
	}
	if c.Attrs <= 0 {
		c.Attrs = 5
	}
	if c.Domain <= 0 {
		c.Domain = 1000
	}
	if c.Skew < 0 {
		c.Skew = 0
	}
	if c.Skew >= 0.99 {
		c.Skew = 0.99
	}
	return c
}

// Synthetic generates a directed power-law graph G = (V, E, L, F_A): edge
// targets are drawn preferentially (probability Skew from the running
// endpoint multiset, else uniformly), which yields the heavy-tailed degree
// distributions of the paper's synthetic workloads. Deterministic for a
// given config.
func Synthetic(cfg SyntheticConfig) *graph.Graph {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.Nodes, cfg.Edges)

	for i := 0; i < cfg.Nodes; i++ {
		attrs := make(graph.Attrs, cfg.Attrs)
		for a := 0; a < cfg.Attrs; a++ {
			attrs[fmt.Sprintf("a%d", a)] = fmt.Sprintf("v%d", rng.Intn(cfg.Domain))
		}
		// "val" is the selected attribute the equi-depth histograms range
		// over; every node carries it.
		attrs["val"] = fmt.Sprintf("v%d", rng.Intn(cfg.Domain))
		g.AddNode(fmt.Sprintf("L%d", rng.Intn(cfg.Labels)), attrs)
	}
	if cfg.Nodes == 0 {
		return g
	}

	// Endpoint multiset for preferential attachment.
	endpoints := make([]graph.NodeID, 0, 2*cfg.Edges)
	pick := func() graph.NodeID {
		if len(endpoints) > 0 && rng.Float64() < cfg.Skew {
			return endpoints[rng.Intn(len(endpoints))]
		}
		return graph.NodeID(rng.Intn(cfg.Nodes))
	}
	seen := make(map[graph.Edge]bool, cfg.Edges)
	for e := 0; e < cfg.Edges; e++ {
		from, to := pick(), pick()
		if from == to {
			to = graph.NodeID((int(to) + 1) % cfg.Nodes)
		}
		// Skip duplicate draws (the graph type documents that generators
		// never emit duplicate (from, to, label) triples); the RNG stream
		// is consumed either way so existing seeds keep their shape.
		edge := graph.Edge{From: from, To: to, Label: fmt.Sprintf("e%d", rng.Intn(cfg.Labels))}
		if seen[edge] {
			continue
		}
		seen[edge] = true
		g.MustAddEdge(edge.From, edge.To, edge.Label)
		endpoints = append(endpoints, from, to)
	}
	return g
}
