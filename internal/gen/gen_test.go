package gen

import (
	"testing"

	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/validate"
)

func TestSyntheticShape(t *testing.T) {
	g := Synthetic(SyntheticConfig{Nodes: 1000, Edges: 3000, Seed: 1})
	if g.NumNodes() != 1000 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3000 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	// Defaults: 30 labels, 5 attrs + val, domain 1000.
	if labels := g.Labels(); len(labels) > 30 {
		t.Errorf("labels = %d", len(labels))
	}
	attrs := g.NodeAttrs(0)
	if len(attrs) != 6 {
		t.Errorf("attrs per node = %d, want 5 + val", len(attrs))
	}
	if _, ok := g.Attr(0, "val"); !ok {
		t.Error("every node needs the histogram attribute 'val'")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := Synthetic(SyntheticConfig{Nodes: 200, Edges: 600, Seed: 7})
	b := Synthetic(SyntheticConfig{Nodes: 200, Edges: 600, Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must generate the same graph")
	}
	same := true
	a.Edges(func(e graph.Edge) bool {
		if !b.HasEdge(e.From, e.To, e.Label) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Error("edge sets differ across runs with the same seed")
	}
	c := Synthetic(SyntheticConfig{Nodes: 200, Edges: 600, Seed: 8})
	diff := false
	a.Edges(func(e graph.Edge) bool {
		if !c.HasEdge(e.From, e.To, e.Label) {
			diff = true
			return false
		}
		return true
	})
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticNoSelfLoops(t *testing.T) {
	g := Synthetic(SyntheticConfig{Nodes: 100, Edges: 500, Skew: 0.9, Seed: 5})
	g.Edges(func(e graph.Edge) bool {
		if e.From == e.To {
			t.Errorf("self-loop at %d", e.From)
		}
		return true
	})
}

func TestDatasetStandIns(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"yago2", YAGO2Like(DatasetConfig{Scale: 200, Seed: 1})},
		{"dbpedia", DBpediaLike(DatasetConfig{Scale: 200, Seed: 2})},
		{"pokec", PokecLike(DatasetConfig{Scale: 200, Seed: 3})},
	}
	for _, tc := range cases {
		if tc.g.NumNodes() < 200 || tc.g.NumEdges() < 200 {
			t.Errorf("%s: too small (%v)", tc.name, tc.g)
		}
		if len(tc.g.Labels()) < 5 {
			t.Errorf("%s: only %d labels", tc.name, len(tc.g.Labels()))
		}
	}
}

func TestYAGO2MotifsPresent(t *testing.T) {
	g := YAGO2Like(DatasetConfig{Scale: 200, Seed: 1})
	for _, label := range []string{"flight", "id", "city", "country", "person", "party"} {
		if g.LabelCount(label) == 0 {
			t.Errorf("label %q missing", label)
		}
	}
	// Flight pairs must be consistent by construction: same id value =>
	// same from value.
	byID := make(map[string][]graph.NodeID)
	for _, f := range g.NodesWithLabel("flight") {
		for _, he := range g.Out(f) {
			if he.Label == "number" {
				v, _ := g.Attr(he.To, "val")
				byID[v] = append(byID[v], f)
			}
		}
	}
	fromVal := func(f graph.NodeID) string {
		for _, he := range g.Out(f) {
			if he.Label == "from" {
				v, _ := g.Attr(he.To, "val")
				return v
			}
		}
		return ""
	}
	for id, flights := range byID {
		if len(flights) != 2 {
			t.Fatalf("flight id %s has %d copies, want 2", id, len(flights))
		}
		if fromVal(flights[0]) != fromVal(flights[1]) {
			t.Fatalf("flight id %s: inconsistent origins before noise", id)
		}
	}
}

func TestPokecFakeAccounts(t *testing.T) {
	g := PokecLike(DatasetConfig{Scale: 400, Seed: 9})
	fakes := 0
	for _, a := range g.NodesWithLabel("account") {
		if v, _ := g.Attr(a, "is_fake"); v == "true" {
			fakes++
		}
	}
	if fakes == 0 {
		t.Error("some accounts must be fake")
	}
	if fakes > 40 {
		t.Errorf("too many fakes: %d of 400", fakes)
	}
}

func TestMineGFDs(t *testing.T) {
	g := YAGO2Like(DatasetConfig{Scale: 200, Seed: 1})
	set := MineGFDs(g, MineConfig{NumRules: 10, PatternSize: 5, TwoCompFrac: 0.3, Seed: 2})
	if set.Len() == 0 {
		t.Fatal("mining produced nothing")
	}
	for _, f := range set.Rules() {
		if err := f.Check(); err != nil {
			t.Errorf("mined rule invalid: %v", err)
		}
		if len(f.Y) == 0 {
			t.Errorf("%s: empty consequent", f.Name)
		}
		// Every mined pattern must have support in the graph.
		if !match.Has(g, f.Q, match.Options{}) {
			t.Errorf("%s: pattern has no match in its source graph", f.Name)
		}
	}
}

func TestMineGFDsCleanGraphMostlyConsistent(t *testing.T) {
	// Rules mined from a clean graph should rarely flag it; tolerate a few
	// accidental violations (mining keys on a single witnessed match).
	g := YAGO2Like(DatasetConfig{Scale: 120, Seed: 5})
	set := MineGFDs(g, MineConfig{NumRules: 6, PatternSize: 4, TwoCompFrac: 0.5, Seed: 6})
	if set.Len() == 0 {
		t.Skip("no rules")
	}
	vio := validate.DetVio(g, set)
	flagged := vio.ViolatingNodes().Len()
	if flagged > g.NumNodes()/10 {
		t.Errorf("clean graph heavily flagged: %d of %d nodes", flagged, g.NumNodes())
	}
}

func TestMineDeterminism(t *testing.T) {
	g := YAGO2Like(DatasetConfig{Scale: 120, Seed: 5})
	a := MineGFDs(g, MineConfig{NumRules: 5, Seed: 6})
	b := MineGFDs(g, MineConfig{NumRules: 5, Seed: 6})
	if a.Len() != b.Len() {
		t.Fatal("mining must be deterministic")
	}
	for i, f := range a.Rules() {
		if f.String() != b.Rules()[i].String() {
			t.Errorf("rule %d differs across runs", i)
		}
	}
}

func TestInjectNoise(t *testing.T) {
	g := YAGO2Like(DatasetConfig{Scale: 300, Seed: 1})
	before := g.NumNodes()
	errs := Inject(g, NoiseConfig{Rate: 0.05, Seed: 2})
	if g.NumNodes() != before {
		t.Error("noise must not add nodes")
	}
	if len(errs) == 0 {
		t.Fatal("no noise injected at 5%")
	}
	// Roughly rate * nodes, within generous bounds.
	expected := float64(before) * 0.05
	if float64(len(errs)) < expected/3 || float64(len(errs)) > expected*3 {
		t.Errorf("injected %d errors, expected about %.0f", len(errs), expected)
	}
	for _, e := range errs {
		switch e.Kind {
		case TypeNoise:
			if g.Label(e.Node) != e.New {
				t.Error("type noise not applied")
			}
		default:
			if v, _ := g.Attr(e.Node, e.Attr); v != e.New {
				t.Errorf("attribute noise not applied: %q != %q", v, e.New)
			}
			if e.New == e.Old {
				t.Error("noise must change the value")
			}
		}
	}
	truth := GroundTruth(errs)
	if truth.Len() == 0 || truth.Len() > len(errs) {
		t.Errorf("ground truth size %d vs %d errors", truth.Len(), len(errs))
	}
}

func TestNoiseKindString(t *testing.T) {
	if AttributeNoise.String() != "attribute" || TypeNoise.String() != "type" ||
		RepresentationalNoise.String() != "representational" {
		t.Error("NoiseKind names wrong")
	}
}

func TestPrecisionRecall(t *testing.T) {
	truth := graph.NewNodeSet([]graph.NodeID{1, 2, 3, 4})
	detected := graph.NewNodeSet([]graph.NodeID{2, 3, 9})
	p, r := PrecisionRecall(truth, detected)
	if p != 2.0/3.0 {
		t.Errorf("precision = %v", p)
	}
	if r != 0.5 {
		t.Errorf("recall = %v", r)
	}
	// Degenerate cases.
	if p, r := PrecisionRecall(truth, graph.NewNodeSet(nil)); p != 1 || r != 0 {
		t.Errorf("empty detection: p=%v r=%v", p, r)
	}
	if p, r := PrecisionRecall(graph.NewNodeSet(nil), graph.NewNodeSet(nil)); p != 1 || r != 1 {
		t.Errorf("both empty: p=%v r=%v", p, r)
	}
}

func TestNoiseMakesRulesFire(t *testing.T) {
	// End-to-end: mine on clean graph, inject noise, detect — recall of
	// *some* errors is expected (not all: rules cover a subset).
	g := YAGO2Like(DatasetConfig{Scale: 150, Seed: 42})
	set := MineGFDs(g, MineConfig{NumRules: 8, PatternSize: 4, TwoCompFrac: 0.5, Seed: 43})
	if set.Len() == 0 {
		t.Skip("no rules")
	}
	base := validate.DetVio(g, set)
	Inject(g, NoiseConfig{Rate: 0.08, Seed: 44, Kinds: []NoiseKind{AttributeNoise}})
	noisy := validate.DetVio(g, set)
	if len(noisy) <= len(base) {
		t.Errorf("noise should create violations: %d before, %d after", len(base), len(noisy))
	}
}
