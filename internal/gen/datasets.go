package gen

import (
	"fmt"
	"math/rand"

	"gfd/internal/graph"
)

// DatasetConfig sizes a real-dataset stand-in. Scale is the base entity
// count (roughly: persons for knowledge graphs, accounts for the social
// graph); node/edge totals grow linearly with it.
type DatasetConfig struct {
	Scale int
	Seed  int64
}

func (c DatasetConfig) normalize() DatasetConfig {
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	return c
}

// kb is a small builder over shared entity pools, used by the dataset
// stand-ins to lay down the knowledge-graph motifs the mined GFDs select
// (flights, capitals, type hierarchies, mayors/parties, families).
type kb struct {
	g   *graph.Graph
	rng *rand.Rand

	countries []graph.NodeID
	cities    []graph.NodeID
	persons   []graph.NodeID
	parties   []graph.NodeID
	classes   []graph.NodeID
}

func newKB(seed int64, nodeHint int) *kb {
	return &kb{g: graph.New(nodeHint, nodeHint*2), rng: rand.New(rand.NewSource(seed))}
}

func (b *kb) node(label, val string, extra graph.Attrs) graph.NodeID {
	attrs := graph.Attrs{"val": val}
	for k, v := range extra {
		attrs[k] = v
	}
	return b.g.AddNode(label, attrs)
}

// pools creates the shared entity pools.
func (b *kb) pools(countries, cities, parties, classes int) {
	for i := 0; i < countries; i++ {
		b.countries = append(b.countries, b.node("country", fmt.Sprintf("country_%d", i), nil))
	}
	for i := 0; i < cities; i++ {
		c := b.node("city", fmt.Sprintf("city_%d", i), nil)
		b.cities = append(b.cities, c)
		// Every city is located in a country.
		b.g.MustAddEdge(c, b.countries[i%len(b.countries)], "located_in")
	}
	for i := 0; i < parties; i++ {
		p := b.node("party", fmt.Sprintf("party_%d", i), nil)
		b.parties = append(b.parties, p)
		b.g.MustAddEdge(p, b.countries[i%len(b.countries)], "in_country")
	}
	for i := 0; i < classes; i++ {
		b.classes = append(b.classes, b.node("class", fmt.Sprintf("class_%d", i), nil))
	}
	// capitals: one per country, consistent by construction.
	for i, c := range b.countries {
		b.g.MustAddEdge(c, b.cities[i%len(b.cities)], "capital")
	}
	// a modest class hierarchy with disjointness facts.
	for i := 1; i < len(b.classes); i++ {
		b.g.MustAddEdge(b.classes[i], b.classes[(i-1)/2], "subclass_of")
		if i%3 == 0 && i+1 < len(b.classes) {
			b.g.MustAddEdge(b.classes[i], b.classes[i+1], "disjoint_with")
		}
	}
}

// flights lays down n flight-entity pairs in the shape of Fig. 1's G1:
// each flight entity has its *own* satellite id/city/time nodes reached by
// number/from/to/depart/arrive edges (as in the paper's G1, where Paris
// appears once per flight), and the two copies of a pair agree on the id,
// origin and destination values — so the ϕ1-style GFD holds until noise is
// injected.
func (b *kb) flights(n int) {
	for i := 0; i < n; i++ {
		fromVal := fmt.Sprintf("city_%d", b.rng.Intn(max(1, len(b.cities))))
		toVal := fmt.Sprintf("city_%d", b.rng.Intn(max(1, len(b.cities))))
		depVal := fmt.Sprintf("%02d:%02d", b.rng.Intn(24), b.rng.Intn(12)*5)
		arrVal := fmt.Sprintf("%02d:%02d", b.rng.Intn(24), b.rng.Intn(12)*5)
		for copyNo := 0; copyNo < 2; copyNo++ {
			f := b.node("flight", fmt.Sprintf("flight_%d_%d", i, copyNo), nil)
			b.g.MustAddEdge(f, b.node("id", fmt.Sprintf("FL%04d", i), nil), "number")
			b.g.MustAddEdge(f, b.node("city", fromVal, nil), "from")
			b.g.MustAddEdge(f, b.node("city", toVal, nil), "to")
			b.g.MustAddEdge(f, b.node("time", depVal, nil), "depart")
			b.g.MustAddEdge(f, b.node("time", arrVal, nil), "arrive")
		}
	}
}

// books lays down n book-edition pairs in a *chain* shape: each edition
// has its own isbn satellite which is registered to its own publisher
// satellite, and the two editions of a book agree on both values. The
// resulting FD (same isbn ⇒ same publisher) lives on a path pattern, the
// fragment GCFDs can express — the chain counterpart of the star-shaped
// flight motif.
func (b *kb) books(n int) {
	for i := 0; i < n; i++ {
		isbnVal := fmt.Sprintf("978-%07d", i)
		pubVal := fmt.Sprintf("publisher_%d", b.rng.Intn(max(4, n/8)))
		for copyNo := 0; copyNo < 2; copyNo++ {
			e := b.node("edition", fmt.Sprintf("edition_%d_%d", i, copyNo), nil)
			isbn := b.node("isbn", isbnVal, nil)
			pub := b.node("publisher", pubVal, nil)
			b.g.MustAddEdge(e, isbn, "has_isbn")
			b.g.MustAddEdge(isbn, pub, "registered_to")
		}
	}
}

// people lays down n person entities with birthplace/citizenship, family
// edges (parent/child, acyclic by construction), and a sprinkling of
// mayors affiliated to parties of the same country (Fig. 7 GFD 3 shape).
func (b *kb) people(n int) {
	for i := 0; i < n; i++ {
		p := b.node("person", fmt.Sprintf("person_%d", i), graph.Attrs{
			"birth_year": fmt.Sprintf("%d", 1940+b.rng.Intn(70)),
		})
		b.persons = append(b.persons, p)
		city := b.cities[b.rng.Intn(len(b.cities))]
		b.g.MustAddEdge(p, city, "born_in")
		if i > 0 {
			// Parent chosen among earlier persons: hasChild from parent to
			// child and hasParent back, never cyclic.
			parent := b.persons[b.rng.Intn(i)]
			b.g.MustAddEdge(parent, p, "has_child")
			b.g.MustAddEdge(p, parent, "has_parent")
		}
		if i%23 == 0 {
			// Mayor of a city, affiliated to a party of that city's country.
			b.g.MustAddEdge(p, city, "mayor_of")
			country := b.cityCountry(city)
			party := b.partyOf(country)
			if party != graph.Invalid {
				b.g.MustAddEdge(p, party, "affiliated_to")
			}
		}
	}
}

func (b *kb) cityCountry(city graph.NodeID) graph.NodeID {
	for _, he := range b.g.Out(city) {
		if he.Label == "located_in" {
			return he.To
		}
	}
	return graph.Invalid
}

func (b *kb) partyOf(country graph.NodeID) graph.NodeID {
	for _, he := range b.g.In(country) {
		if he.Label == "in_country" && b.g.Label(he.To) == "party" {
			return he.To
		}
	}
	return graph.Invalid
}

// typedEntities lays down n generic typed entities pointing at classes,
// giving DBpedia-like label variety.
func (b *kb) typedEntities(n, types int) {
	for i := 0; i < n; i++ {
		e := b.node(fmt.Sprintf("T%d", i%types), fmt.Sprintf("entity_%d", i), graph.Attrs{
			"a0": fmt.Sprintf("v%d", b.rng.Intn(50)),
			"a1": fmt.Sprintf("v%d", b.rng.Intn(50)),
		})
		b.g.MustAddEdge(e, b.classes[i%len(b.classes)], "type")
		if i > 0 && b.rng.Intn(3) == 0 {
			b.g.MustAddEdge(e, graph.NodeID(int(e)-1-b.rng.Intn(int(e))), "related_to")
		}
	}
}

// YAGO2Like generates the YAGO2 stand-in: a knowledge graph with ~13 node
// types and ~36 edge types carrying the flight / capital / family / mayor
// motifs that the paper's real-life GFDs (Fig. 7) select.
func YAGO2Like(cfg DatasetConfig) *graph.Graph {
	cfg = cfg.normalize()
	b := newKB(cfg.Seed, cfg.Scale*4)
	b.pools(max(4, cfg.Scale/100), max(12, cfg.Scale/10), max(4, cfg.Scale/100), max(8, cfg.Scale/50))
	b.flights(cfg.Scale / 4)
	b.books(cfg.Scale / 4)
	b.people(cfg.Scale)
	return b.g
}

// DBpediaLike generates the DBpedia stand-in: the same knowledge motifs
// plus a long tail of generic entity types (the real graph has ~200 node
// and ~160 edge types), yielding a larger, more heterogeneous graph.
func DBpediaLike(cfg DatasetConfig) *graph.Graph {
	cfg = cfg.normalize()
	b := newKB(cfg.Seed, cfg.Scale*6)
	b.pools(max(6, cfg.Scale/80), max(20, cfg.Scale/8), max(6, cfg.Scale/80), max(16, cfg.Scale/25))
	b.flights(cfg.Scale / 4)
	b.books(cfg.Scale / 4)
	b.people(cfg.Scale)
	b.typedEntities(cfg.Scale, 60)
	return b.g
}

// PokecLike generates the social-network stand-in: accounts with profile
// attributes, follows/likes/posts relationships, and blogs with keywords —
// the substrate for the fake-account GFD ϕ6 of Example 5.
func PokecLike(cfg DatasetConfig) *graph.Graph {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.Scale*3, cfg.Scale*8)

	keywords := []string{"free prize", "win free prize", "gift card", "hello world", "holiday pics", "news", "sports"}
	nRegions := 20
	regions := make([]graph.NodeID, nRegions)
	for i := range regions {
		regions[i] = g.AddNode("region", graph.Attrs{"val": fmt.Sprintf("r%d", i)})
	}
	accounts := make([]graph.NodeID, cfg.Scale)
	for i := range accounts {
		isFake := "false"
		if rng.Intn(40) == 0 {
			isFake = "true"
		}
		region := rng.Intn(nRegions)
		accounts[i] = g.AddNode("account", graph.Attrs{
			"val":     fmt.Sprintf("acct_%d", i),
			"is_fake": isFake,
			"region":  fmt.Sprintf("r%d", region),
			"age":     fmt.Sprintf("%d", 16+rng.Intn(60)),
		})
		g.MustAddEdge(accounts[i], regions[region], "lives_in")
	}
	nBlogs := cfg.Scale * 2
	blogs := make([]graph.NodeID, nBlogs)
	for i := range blogs {
		kw := keywords[rng.Intn(len(keywords))]
		blogs[i] = g.AddNode("blog", graph.Attrs{
			"val":     fmt.Sprintf("blog_%d", i),
			"keyword": kw,
		})
		// Poster: fake accounts tend to post spammy keywords.
		poster := accounts[rng.Intn(len(accounts))]
		if kw == "free prize" || kw == "win free prize" {
			// Bias spam posts toward fake accounts.
			for try := 0; try < 4; try++ {
				v, _ := g.Attr(poster, "is_fake")
				if v == "true" {
					break
				}
				poster = accounts[rng.Intn(len(accounts))]
			}
		}
		g.MustAddEdge(poster, blogs[i], "post")
	}
	for _, a := range accounts {
		nLikes := 1 + rng.Intn(6)
		liked := make(map[int]bool, nLikes)
		for l := 0; l < nLikes; l++ {
			// Dedup repeated draws: the graph type documents that no
			// generator emits duplicate (from, to, label) triples.
			if b := rng.Intn(nBlogs); !liked[b] {
				liked[b] = true
				g.MustAddEdge(a, blogs[b], "like")
			}
		}
		if rng.Intn(2) == 0 {
			g.MustAddEdge(a, accounts[rng.Intn(len(accounts))], "follows")
		}
	}
	// Blog/status/photo motif (the shape of Q5 and ϕ5 in Example 5): a
	// blog has a status and a photo; the status is attached to the photo,
	// and consistently annotates it.
	for i := 0; i < cfg.Scale/4; i++ {
		desc := fmt.Sprintf("pic_%d", rng.Intn(500))
		blog := blogs[rng.Intn(nBlogs)]
		status := g.AddNode("status", graph.Attrs{"val": fmt.Sprintf("status_%d", i), "text": desc})
		photo := g.AddNode("photo", graph.Attrs{"val": fmt.Sprintf("photo_%d", i), "desc": desc})
		g.MustAddEdge(blog, status, "has_status")
		g.MustAddEdge(blog, photo, "has_photo")
		g.MustAddEdge(status, photo, "has_attachment")
	}
	return g
}
