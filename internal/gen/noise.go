package gen

import (
	"fmt"
	"math/rand"

	"gfd/internal/graph"
)

// NoiseKind classifies an injected inconsistency, following the taxonomy
// of Exp-5 (after Zaveri et al.): attribute, type, and representational
// inconsistencies.
type NoiseKind uint8

const (
	// AttributeNoise changes the value of one attribute x.A.
	AttributeNoise NoiseKind = iota
	// TypeNoise revises the type (label) of an entity.
	TypeNoise
	// RepresentationalNoise perturbs one of two attribute values that were
	// equal across same-typed entities.
	RepresentationalNoise
)

func (k NoiseKind) String() string {
	switch k {
	case AttributeNoise:
		return "attribute"
	case TypeNoise:
		return "type"
	default:
		return "representational"
	}
}

// InjectedError records one injected inconsistency, forming the ground
// truth Vio for precision/recall.
type InjectedError struct {
	Node graph.NodeID
	Kind NoiseKind
	Attr string // attribute touched (empty for type noise)
	Old  string
	New  string
}

// NoiseConfig controls injection.
type NoiseConfig struct {
	Rate  float64 // per-node probability of receiving noise; 0 -> 0.02
	Kinds []NoiseKind
	Seed  int64
}

func (c NoiseConfig) normalize() NoiseConfig {
	if c.Rate <= 0 {
		c.Rate = 0.02
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []NoiseKind{AttributeNoise, TypeNoise, RepresentationalNoise}
	}
	return c
}

// Inject mutates g in place, corrupting entities at the configured rate,
// and returns the ground-truth error list. Deterministic for a config.
func Inject(g *graph.Graph, cfg NoiseConfig) []InjectedError {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := g.Labels()
	var out []InjectedError
	for v := 0; v < g.NumNodes(); v++ {
		if rng.Float64() >= cfg.Rate {
			continue
		}
		id := graph.NodeID(v)
		kind := cfg.Kinds[rng.Intn(len(cfg.Kinds))]
		switch kind {
		case TypeNoise:
			old := g.Label(id)
			nw := labels[rng.Intn(len(labels))]
			if nw == old {
				continue
			}
			g.Relabel(id, nw)
			out = append(out, InjectedError{Node: id, Kind: TypeNoise, Old: old, New: nw})
		default:
			attr := pickAttr(g, id, rng)
			if attr == "" {
				continue
			}
			old, _ := g.Attr(id, attr)
			nw := corrupt(old, rng)
			g.SetAttr(id, attr, nw)
			out = append(out, InjectedError{Node: id, Kind: kind, Attr: attr, Old: old, New: nw})
		}
	}
	return out
}

// corrupt produces a value distinct from old.
func corrupt(old string, rng *rand.Rand) string {
	return fmt.Sprintf("%s~err%d", old, rng.Intn(1000))
}

// GroundTruth returns the set of corrupted entities.
func GroundTruth(errs []InjectedError) graph.NodeSet {
	set := make(graph.NodeSet, len(errs))
	for _, e := range errs {
		set.Add(e.Node)
	}
	return set
}

// PrecisionRecall compares a detected entity set against ground truth,
// the accuracy measures of Exp-5: precision = |Vio ∩ Vio(A)| / |Vio(A)|,
// recall = |Vio ∩ Vio(A)| / |Vio|.
func PrecisionRecall(truth, detected graph.NodeSet) (precision, recall float64) {
	if detected.Len() == 0 {
		if truth.Len() == 0 {
			return 1, 1
		}
		return 1, 0
	}
	hit := 0
	for v := range detected {
		if _, ok := truth[v]; ok {
			hit++
		}
	}
	precision = float64(hit) / float64(detected.Len())
	if truth.Len() == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(truth.Len())
	}
	return precision, recall
}
