package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
	"gfd/internal/pattern"
)

// MineConfig controls GFD generation over a data graph, mirroring the
// paper's generator (Section 7): frequent features (edges and paths up to
// length 3) are mined, the top-k most frequent become "seeds", seeds are
// combined into patterns of the requested size with 1 or 2 connected
// components, and dependencies X → Y are composed from the attributes of
// the nodes an actual match carries.
type MineConfig struct {
	NumRules    int
	PatternSize int     // target |Q| = |V_Q| + |E_Q|; 0 -> 5
	TwoCompFrac float64 // fraction of rules with two (isomorphic) components
	Seeds       int     // top-k seed features; 0 -> 5
	SampleNodes int     // nodes sampled for path mining; 0 -> 2000
	MaxCandFreq int     // skip pivot labels more frequent than this for 2-component rules; 0 -> 1500
	Seed        int64
}

func (c MineConfig) normalize() MineConfig {
	if c.NumRules <= 0 {
		c.NumRules = 10
	}
	if c.PatternSize <= 0 {
		c.PatternSize = 5
	}
	if c.Seeds <= 0 {
		c.Seeds = 5
	}
	if c.SampleNodes <= 0 {
		c.SampleNodes = 2000
	}
	if c.MaxCandFreq <= 0 {
		c.MaxCandFreq = 1500
	}
	return c
}

// feature is a frequent directed edge type (srcLabel -edge-> dstLabel).
type feature struct {
	src, edge, dst string
	count          int
}

// MineGFDs generates a rule set over g. Deterministic for a given config.
func MineGFDs(g *graph.Graph, cfg MineConfig) *core.Set {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	feats := frequentEdgeFeatures(g)
	if len(feats) == 0 {
		return core.MustNewSet()
	}
	adj := featureAdjacency(feats)

	set := core.MustNewSet()
	signatures := make(map[string]bool)
	attempt := 0
	for set.Len() < cfg.NumRules && attempt < cfg.NumRules*20 {
		attempt++
		twoComp := rng.Float64() < cfg.TwoCompFrac
		seed := feats[attempt%min(cfg.Seeds*3, len(feats))]
		if twoComp && g.LabelCount(seed.src) > cfg.MaxCandFreq {
			twoComp = false
		}
		q, ok := growPattern(seed, adj, cfg.PatternSize, twoComp, rng)
		if !ok {
			continue
		}
		f := composeDependency(g, q, set.Len(), twoComp, rng)
		if f == nil {
			continue
		}
		// Mining revisits seeds; identical rules (same pattern and
		// dependency, name aside) are dropped so the budget buys
		// diversity.
		sig := ruleSignature(f)
		if signatures[sig] {
			continue
		}
		if err := set.Add(f); err != nil {
			continue
		}
		signatures[sig] = true
	}
	return set
}

// ruleSignature is a name-independent identity for mined rules.
func ruleSignature(f *core.GFD) string {
	s := f.String()
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// frequentEdgeFeatures counts every (srcLabel, edgeLabel, dstLabel) triple
// and returns them by descending frequency — the frequent edges + length-1
// paths of the mining step. Longer paths are implicit in featureAdjacency,
// which chains compatible features.
func frequentEdgeFeatures(g *graph.Graph) []feature {
	counts := make(map[feature]int)
	g.Edges(func(e graph.Edge) bool {
		f := feature{src: g.Label(e.From), edge: e.Label, dst: g.Label(e.To)}
		counts[f]++
		return true
	})
	out := make([]feature, 0, len(counts))
	for f, c := range counts {
		f.count = c
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return featureKey(out[i]) < featureKey(out[j])
	})
	return out
}

func featureKey(f feature) string { return f.src + "\x00" + f.edge + "\x00" + f.dst }

// featureAdjacency indexes features by source label, so patterns can grow
// by chaining compatible features into paths of length up to the pattern
// size budget.
func featureAdjacency(feats []feature) map[string][]feature {
	adj := make(map[string][]feature)
	for _, f := range feats {
		adj[f.src] = append(adj[f.src], f)
	}
	return adj
}

// growPattern builds a connected pattern component starting from the seed
// feature and extending with frequent features until the node budget is
// met; for two-component rules the component is duplicated with fresh
// variables (the paper's flight-style symmetric patterns). size is the
// target number of pattern nodes (the |Q| knob of the evaluation, varied
// 2..6); two-component rules get at least 3 nodes per component so an FD
// can key on one satellite and assert another.
func growPattern(seed feature, adj map[string][]feature, size int, twoComp bool, rng *rand.Rand) (*pattern.Pattern, bool) {
	budget := size
	if twoComp {
		budget = size / 2
		if budget < 3 {
			budget = 3
		}
	}
	if budget < 2 {
		budget = 2 // the seed edge needs two endpoints
	}
	type protoNode struct{ label string }
	type protoEdge struct {
		from, to int
		label    string
	}
	nodes := []protoNode{{seed.src}, {seed.dst}}
	edges := []protoEdge{{0, 1, seed.edge}}
	for len(nodes) < budget {
		// Extend from an existing node whose label has outgoing features.
		// Half the time chain from the most recent node (producing path
		// patterns, the fragment GCFDs can express); otherwise branch from
		// a random node (producing the star/branching patterns that
		// motivate general GFDs).
		anchorIdx := len(nodes) - 1
		if rng.Intn(2) == 0 {
			anchorIdx = rng.Intn(len(nodes))
		}
		cands := adj[nodes[anchorIdx].label]
		if len(cands) == 0 {
			// Try any node before giving up.
			found := false
			for i := range nodes {
				if len(adj[nodes[i].label]) > 0 {
					anchorIdx, cands = i, adj[nodes[i].label]
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		f := cands[rng.Intn(min(3, len(cands)))]
		nodes = append(nodes, protoNode{f.dst})
		edges = append(edges, protoEdge{anchorIdx, len(nodes) - 1, f.edge})
	}
	q := pattern.New()
	copies := 1
	if twoComp {
		copies = 2
	}
	prefix := [2]string{"x", "y"}
	for c := 0; c < copies; c++ {
		base := q.NumNodes()
		for i, n := range nodes {
			q.AddNode(pattern.Var(fmt.Sprintf("%s%d", prefix[c], i)), n.label)
		}
		for _, e := range edges {
			q.AddEdge(base+e.from, base+e.to, e.label)
		}
	}
	return q, true
}

// composeDependency picks X and Y literals from the attributes an actual
// match of q carries, then *verifies* the candidate rule against a sample
// of matches, keeping only rules the (clean) source graph satisfies —
// mined data-quality rules must hold on the data they are mined from. For
// two-component rules it builds the FD shape x_i.val = y_i.val →
// x_j.val = y_j.val; for single-component rules a constant rule
// x_i.A = c → x_j.B = d from observed values.
func composeDependency(g *graph.Graph, q *pattern.Pattern, idx int, twoComp bool, rng *rand.Rand) *core.GFD {
	ms := match.AllSnapshot(g.Freeze(), q, match.Options{Limit: 1})
	if len(ms) == 0 {
		return nil // pattern has no support in the graph
	}
	m := ms[0]
	name := fmt.Sprintf("mined_%d", idx)
	if twoComp {
		half := q.NumNodes() / 2
		tuples := componentTuples(g, q, half)
		// Try each node as the key; keep consequent positions whose values
		// are functionally determined by the key across *all* component
		// matches (sampling is unsound here: a key that collides across
		// unrelated entities, e.g. flights sharing an arrival time, must
		// be rejected even when the first few hundred matches agree).
		for key := 0; key < half; key++ {
			positions := functionalPositions(tuples, key, half)
			var y []core.Literal
			for _, i := range positions {
				if len(y) == 2 {
					break
				}
				y = append(y, core.VarEq(q.Nodes[i].Var, "val", q.Nodes[half+i].Var, "val"))
			}
			if len(y) == 0 {
				continue
			}
			x := []core.Literal{core.VarEq(q.Nodes[key].Var, "val", q.Nodes[half+key].Var, "val")}
			return core.MustNew(name, q, x, y)
		}
		return nil
	}
	// Single component: condition on one node's observed attribute value,
	// require another node's observed value; retry a few literal choices
	// until one holds on the sample.
	for try := 0; try < 6; try++ {
		xi := rng.Intn(q.NumNodes())
		yi := (xi + 1 + rng.Intn(q.NumNodes()-1)) % q.NumNodes()
		xa := pickAttr(g, m[xi], rng)
		ya := pickAttr(g, m[yi], rng)
		if xa == "" || ya == "" {
			continue
		}
		xv, _ := g.Attr(m[xi], xa)
		yv, _ := g.Attr(m[yi], ya)
		f := core.MustNew(name, q,
			[]core.Literal{core.Const(q.Nodes[xi].Var, xa, xv)},
			[]core.Literal{core.Const(q.Nodes[yi].Var, ya, yv)})
		if holdsOnSample(g, f) {
			return f
		}
	}
	return nil
}

// componentTuple is one match of a two-component pattern's first
// component: the matched nodes plus their "val" attributes (empty string
// for a missing attribute).
type componentTuple struct {
	nodes []graph.NodeID
	vals  []string
}

// componentTuples enumerates every match of the first component of a
// symmetric two-component pattern (nodes 0..half-1 with their edges).
func componentTuples(g *graph.Graph, q *pattern.Pattern, half int) []componentTuple {
	comp := pattern.New()
	for i := 0; i < half; i++ {
		comp.AddNode(q.Nodes[i].Var, q.Nodes[i].Label)
	}
	for _, e := range q.Edges {
		if e.From < half && e.To < half {
			comp.AddEdge(e.From, e.To, e.Label)
		}
	}
	const maxTuples = 50000
	var tuples []componentTuple
	match.EnumerateSnapshot(g.Freeze(), comp, match.Options{}, func(m core.Match) bool {
		t := componentTuple{nodes: append([]graph.NodeID(nil), m...), vals: make([]string, half)}
		for i := 0; i < half; i++ {
			t.vals[i], _ = g.Attr(m[i], "val")
		}
		tuples = append(tuples, t)
		return len(tuples) < maxTuples
	})
	return tuples
}

// functionalPositions returns the component node positions whose value is
// functionally determined by the key position across all tuples. The key
// must have support: some value shared by two *node-disjoint* component
// matches — a full two-component match is injective, so two instances
// sharing a node never form one, and an FD keyed on them would never fire.
func functionalPositions(tuples []componentTuple, key, half int) []int {
	byKey := make(map[string][]int)
	for ti, t := range tuples {
		if t.vals[key] != "" {
			byKey[t.vals[key]] = append(byKey[t.vals[key]], ti)
		}
	}
	support := false
	for _, group := range byKey {
		for j := 1; j < len(group) && !support; j++ {
			if nodesDisjoint(tuples[group[0]].nodes, tuples[group[j]].nodes) {
				support = true
			}
		}
		if support {
			break
		}
	}
	if !support {
		return nil
	}
	var out []int
	for i := 0; i < half; i++ {
		if i == key {
			continue
		}
		consistent := true
		for _, group := range byKey {
			for j := 1; j < len(group) && consistent; j++ {
				a, b := tuples[group[0]].vals[i], tuples[group[j]].vals[i]
				if a == "" || a != b {
					consistent = false
				}
			}
			if !consistent {
				break
			}
		}
		if consistent {
			out = append(out, i)
		}
	}
	return out
}

func nodesDisjoint(a, b []graph.NodeID) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

// mineVerifySample bounds how many matches a candidate rule is checked
// against before being accepted.
const mineVerifySample = 2000

// holdsOnSample reports whether f is a useful data-quality rule for its
// source graph: among the first mineVerifySample matches of its pattern it
// has no violation and at least two matches satisfying X. The support
// requirement rejects vacuous rules (e.g. FDs keyed on a unique value),
// which would never fire on noisy data.
func holdsOnSample(g *graph.Graph, f *core.GFD) bool {
	ok := true
	seen, support := 0, 0
	snap := g.Freeze()
	p := f.ProgramFor(snap.Syms())
	match.EnumerateSnapshot(snap, f.Q, match.Options{}, func(m core.Match) bool {
		seen++
		if p.SatisfiesX(snap, m) {
			support++
			if !p.SatisfiesY(snap, m) {
				ok = false
				return false
			}
		}
		return seen < mineVerifySample
	})
	return ok && support >= 2
}

func pickAttr(g *graph.Graph, v graph.NodeID, rng *rand.Rand) string {
	attrs := g.NodeAttrs(v)
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[rng.Intn(len(keys))]
}
