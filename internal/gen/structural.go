package gen

import (
	"fmt"
	"math/rand"

	"gfd/internal/graph"
)

// StructuralErrors records the entities involved in injected structural
// inconsistencies — the real-life error classes of the paper's Fig. 7.
type StructuralErrors struct {
	ChildParentCycles []graph.NodeID // persons with a has_child/has_parent 2-cycle
	DisjointTyped     []graph.NodeID // entities typed with two disjoint classes
	MayorMismatch     []graph.NodeID // mayors whose city and party countries differ
}

// Count returns the total number of injected structural errors.
func (s StructuralErrors) Count() int {
	return len(s.ChildParentCycles) + len(s.DisjointTyped) + len(s.MayorMismatch)
}

// InjectStructural adds perKind instances of each Fig. 7 error motif to a
// knowledge graph built by YAGO2Like/DBpediaLike. Unlike attribute noise,
// these are *topological* inconsistencies: impossible family cycles,
// disjoint type assertions, and mayors whose party sits in the wrong
// country. Only edges and fresh nodes are added; existing data is not
// modified.
func InjectStructural(g *graph.Graph, perKind int, seed int64) StructuralErrors {
	rng := rand.New(rand.NewSource(seed))
	var out StructuralErrors

	persons := g.NodesWithLabel("person")
	for i := 0; i < perKind && len(persons) >= 2; i++ {
		// x gains y as both child and parent: x -has_child-> y and
		// x -has_parent-> y.
		x := persons[rng.Intn(len(persons))]
		y := persons[rng.Intn(len(persons))]
		if x == y {
			continue
		}
		// The pair may already be linked (real family edges, or an earlier
		// iteration drawing it again); skip rather than emit duplicate
		// (from, to, label) triples, which the graph type forbids.
		if g.HasEdge(x, y, "has_child") || g.HasEdge(x, y, "has_parent") {
			continue
		}
		g.MustAddEdge(x, y, "has_child")
		g.MustAddEdge(x, y, "has_parent")
		out.ChildParentCycles = append(out.ChildParentCycles, x)
	}

	classes := g.NodesWithLabel("class")
	// Collect disjoint class pairs.
	type pair struct{ a, b graph.NodeID }
	var disjoint []pair
	for _, c := range classes {
		for _, he := range g.Out(c) {
			if he.Label == "disjoint_with" {
				disjoint = append(disjoint, pair{c, he.To})
			}
		}
	}
	for i := 0; i < perKind && len(disjoint) > 0; i++ {
		p := disjoint[rng.Intn(len(disjoint))]
		e := g.AddNode("entity", graph.Attrs{"val": fmt.Sprintf("odd_entity_%d", i)})
		g.MustAddEdge(e, p.a, "type")
		g.MustAddEdge(e, p.b, "type")
		out.DisjointTyped = append(out.DisjointTyped, e)
	}

	// Mayor of a city in one country, affiliated to a party in another.
	// Only pool cities carry located_in edges (flight satellites are also
	// labeled "city" but have no country), so filter first.
	countryOf := func(v graph.NodeID, label string) graph.NodeID {
		for _, he := range g.Out(v) {
			if he.Label == label {
				return he.To
			}
		}
		return graph.Invalid
	}
	var cities, parties []graph.NodeID
	for _, c := range g.NodesWithLabel("city") {
		if countryOf(c, "located_in") != graph.Invalid {
			cities = append(cities, c)
		}
	}
	for _, p := range g.NodesWithLabel("party") {
		if countryOf(p, "in_country") != graph.Invalid {
			parties = append(parties, p)
		}
	}
	for i := 0; i < perKind && len(cities) > 0 && len(parties) > 0; i++ {
		city := cities[rng.Intn(len(cities))]
		cityCountry := countryOf(city, "located_in")
		if cityCountry == graph.Invalid {
			continue
		}
		// Find a party in a different country.
		var party graph.NodeID = graph.Invalid
		for try := 0; try < 10; try++ {
			cand := parties[rng.Intn(len(parties))]
			if pc := countryOf(cand, "in_country"); pc != graph.Invalid && pc != cityCountry {
				party = cand
				break
			}
		}
		if party == graph.Invalid {
			continue
		}
		m := g.AddNode("person", graph.Attrs{"val": fmt.Sprintf("bad_mayor_%d", i)})
		g.MustAddEdge(m, city, "mayor_of")
		g.MustAddEdge(m, party, "affiliated_to")
		out.MayorMismatch = append(out.MayorMismatch, m)
	}
	return out
}
