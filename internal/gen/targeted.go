package gen

import (
	"math/rand"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/match"
)

// InjectTargeted corrupts attribute values of entities that participate in
// matches of the given rule set, mirroring Exp-5's methodology: the paper
// sampled entities, injected noise into them, and used GFDs whose patterns
// match a fraction of the sampled entities with constants from the
// original (pre-noise) values. Corrupting rule-covered entities is what
// makes recall measurable — noise outside every rule's scope is invisible
// to all compared models alike.
//
// For each rule, up to sampleMatches matches are enumerated; each match is
// corrupted with probability rate by perturbing the attribute of one
// literal-bound node (chosen uniformly over X ∪ Y literals). Corruptions
// of Y-side attributes create violations; corruptions of X-side attributes
// silently remove matches, which is what keeps recall below 1 as in the
// paper.
func InjectTargeted(g *graph.Graph, set *core.Set, rate float64, seed int64) []InjectedError {
	const (
		maxScan    = 100000 // pattern matches scanned per rule
		maxTargets = 400    // X-satisfying matches collected per rule
	)
	rng := rand.New(rand.NewSource(seed))
	done := make(map[corruptKey]bool) // (node, attr) corrupted once
	var out []InjectedError
	for _, f := range set.Rules() {
		if len(f.Y) == 0 {
			continue
		}
		// Collect the matches the rule actually constrains (h |= X) before
		// mutating anything: corruption changes the match set. This stays
		// on the mutable-graph oracle path deliberately — the loop below
		// interleaves SetAttr with the next rule's scan, so a frozen
		// snapshot would be rebuilt per rule for a setup-time routine.
		var targets []core.Match
		seen := 0
		match.Enumerate(g, f.Q, match.Options{}, func(m core.Match) bool {
			seen++
			if f.SatisfiesX(g, m) {
				targets = append(targets, append(core.Match(nil), m...))
			}
			return seen < maxScan && len(targets) < maxTargets
		})
		// How often each antecedent endpoint occurs across targets:
		// corrupting a *shared* X node would silently disable the rule for
		// every target, so antecedent corruption is restricted to nodes
		// unique to their target.
		xShared := make(map[graph.NodeID]int)
		for _, m := range targets {
			for _, l := range f.X {
				xi, _ := f.Q.VarIndex(l.X)
				xShared[m[xi]]++
			}
		}
		for _, m := range targets {
			if rng.Float64() >= rate {
				continue
			}
			// Most corruptions hit a consequent literal (detectable as a
			// violation); ~10% hit a per-entity antecedent literal,
			// silently removing the match — the undetectable error class
			// that keeps recall below 1, as in the paper's 0.91.
			lits := f.Y
			if len(f.X) > 0 && rng.Float64() < 0.1 {
				l := f.X[rng.Intn(len(f.X))]
				xi, _ := f.Q.VarIndex(l.X)
				if xShared[m[xi]] == 1 {
					lits = f.X
				}
			}
			l := lits[rng.Intn(len(lits))]
			xi, _ := f.Q.VarIndex(l.X)
			node, attr := m[xi], l.A
			partner, partnerAttr := graph.Invalid, ""
			if l.Kind == core.Variable {
				yi, _ := f.Q.VarIndex(l.Y)
				if rng.Intn(2) == 1 {
					node, attr = m[yi], l.B
					partner, partnerAttr = m[xi], l.A
				} else {
					partner, partnerAttr = m[yi], l.B
				}
			}
			key := corruptKey{node, attr}
			if done[key] {
				continue
			}
			done[key] = true
			if old, ok := g.Attr(node, attr); ok {
				nw := corrupt(old, rng)
				g.SetAttr(node, attr, nw)
				out = append(out, InjectedError{
					Node: node, Kind: AttributeNoise, Attr: attr, Old: old, New: nw,
				})
				// Breaking an equality x.A = y.B makes the *pair*
				// inconsistent — which side is wrong is not decidable from
				// the data, so ground truth records both endpoints (the
				// paper's representational-inconsistency accounting).
				if partner != graph.Invalid {
					pv, _ := g.Attr(partner, partnerAttr)
					out = append(out, InjectedError{
						Node: partner, Kind: RepresentationalNoise, Attr: partnerAttr, Old: pv, New: pv,
					})
				}
			}
		}
	}
	return out
}

// corruptKey deduplicates corruptions per (node, attribute).
type corruptKey struct {
	node graph.NodeID
	attr string
}
