package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"gfd/internal/core"
	"gfd/internal/fault"
	"gfd/internal/graph"
	"gfd/internal/validate"
)

// The wire protocol: every frame is a u32 little-endian payload length, a
// u8 frame type, then the payload. Strings are u32 length + bytes; node
// IDs travel as u64 (NodeIDs are global — every shard shares the full
// node table, so no translation happens at either end). The protocol is
// deliberately version-checked in the HELLO and bounded by maxFrame: a
// torn or garbage frame must become a typed error (and a worker-death
// event), never a giant allocation or a misread.

const (
	protoVersion = 1
	// maxFrame bounds one frame's payload. Halo sections dominate frame
	// size; a frame above this is protocol corruption, not data.
	maxFrame = 64 << 20
	// frameOverhead is the header cost charged per frame against the
	// modeled cost model (length + type).
	frameOverhead = 5
)

// Frame types.
const (
	fHello     byte = iota + 1 // coordinator -> worker: identity, rules, shard path
	fReady                     // worker -> coordinator: shard opened, groups rebuilt
	fAssign                    // coordinator -> worker: one unit + halo
	fVio                       // worker -> coordinator: violation batch
	fDone                      // worker -> coordinator: unit finished
	fHeartbeat                 // worker -> coordinator: liveness
	fShutdown                  // coordinator -> worker: drain and report census
	fCensus                    // worker -> coordinator: final tallies
)

// ---- encoding -------------------------------------------------------------

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated %s at offset %d", what, r.off)
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a u32 element count and sanity-bounds it by the remaining
// payload (each element costs at least `min` bytes), so a corrupt count
// cannot drive a huge allocation.
func (r *rbuf) count(min int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n < 0 || n*min > len(r.b)-r.off {
		r.fail("count")
		return 0
	}
	return n
}

// ---- frame I/O ------------------------------------------------------------

// frameWriter serializes frames onto one pipe. The mutex makes it safe
// for the worker's heartbeat goroutine and unit loop to interleave; the
// injector hook is the worker-side PipeFrame fault site — a stall sleeps
// while *holding* the writer (starving heartbeats, which is the point),
// and a truncation writes a prefix and hands control to onTruncate (the
// worker exits there, mid-frame, like a real crash during a write).
type frameWriter struct {
	mu         sync.Mutex
	w          *bufio.Writer
	inj        *fault.Injector
	worker     int
	onTruncate func()
}

func (fw *frameWriter) write(typ byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if fw.inj != nil {
		stall, trunc := fw.inj.CrossPipe(fw.worker)
		if stall > 0 {
			time.Sleep(stall)
		}
		if trunc && fw.onTruncate != nil {
			fw.w.Write(hdr[:])
			fw.w.Write(payload[:len(payload)/2])
			fw.w.Flush()
			fw.onTruncate() // does not return
		}
	}
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	return fw.w.Flush()
}

// frameReader deserializes frames off one pipe.
type frameReader struct {
	r *bufio.Reader
}

// read returns the next frame. io.EOF (clean close between frames) and
// io.ErrUnexpectedEOF (torn frame) both surface as errors; the caller
// treats any error as end-of-peer.
func (fr *frameReader) read() (byte, []byte, error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("dist: torn frame header: %w", err)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: torn frame payload: %w", err)
	}
	return hdr[4], payload, nil
}

// ---- messages -------------------------------------------------------------

type helloMsg struct {
	proto     uint32
	worker    int
	workers   int
	numNodes  int
	heartbeat time.Duration
	combine   bool
	arbPivot  bool
	shardPath string
	rules     string // core.WriteRules serialization of the effective set
	groups    int    // coordinator's group count, sanity-checked worker-side
}

func encodeHello(h helloMsg) []byte {
	var w wbuf
	w.u32(protoVersion)
	w.u32(uint32(h.worker))
	w.u32(uint32(h.workers))
	w.u64(uint64(h.numNodes))
	w.i64(int64(h.heartbeat))
	var flags byte
	if h.combine {
		flags |= 1
	}
	if h.arbPivot {
		flags |= 2
	}
	w.u8(flags)
	w.str(h.shardPath)
	w.str(h.rules)
	w.u32(uint32(h.groups))
	return w.b
}

func decodeHello(b []byte) (helloMsg, error) {
	r := rbuf{b: b}
	h := helloMsg{proto: r.u32()}
	h.worker = int(r.u32())
	h.workers = int(r.u32())
	h.numNodes = int(r.u64())
	h.heartbeat = time.Duration(r.i64())
	flags := r.u8()
	h.combine = flags&1 != 0
	h.arbPivot = flags&2 != 0
	h.shardPath = r.str()
	h.rules = r.str()
	h.groups = int(r.u32())
	return h, r.err
}

type readyMsg struct {
	numNodes int
	groups   int
}

func encodeReady(m readyMsg) []byte {
	var w wbuf
	w.u64(uint64(m.numNodes))
	w.u32(uint32(m.groups))
	return w.b
}

func decodeReady(b []byte) (readyMsg, error) {
	r := rbuf{b: b}
	m := readyMsg{numNodes: int(r.u64()), groups: int(r.u32())}
	return m, r.err
}

// haloNode is one non-owned block node shipped to a worker: its attribute
// tuple and full adjacency, as strings (symbol codes are identical across
// shards by construction, but strings keep the protocol independent of
// that invariant — the overlay re-interns to the same codes either way).
type haloNode struct {
	id    graph.NodeID
	attrs [][2]string
	out   []haloEdge // id -> To
	in    []haloEdge // To -> id
}

type haloEdge struct {
	to    graph.NodeID
	label string
}

type assignMsg struct {
	unit validate.DistUnit
	skip int64
	halo []haloNode
}

func encodeAssign(m assignMsg) []byte {
	var w wbuf
	w.u32(uint32(m.unit.ID))
	w.u32(uint32(m.unit.Group))
	w.u32(uint32(m.unit.StripeMod))
	w.u32(uint32(m.unit.StripeRem))
	w.u64(uint64(m.unit.BlockSize))
	w.u64(uint64(m.skip))
	w.u32(uint32(len(m.unit.Candidates)))
	for _, c := range m.unit.Candidates {
		w.u64(uint64(c))
	}
	w.u32(uint32(len(m.halo)))
	for _, h := range m.halo {
		w.u64(uint64(h.id))
		w.u32(uint32(len(h.attrs)))
		for _, kv := range h.attrs {
			w.str(kv[0])
			w.str(kv[1])
		}
		w.u32(uint32(len(h.out)))
		for _, e := range h.out {
			w.u64(uint64(e.to))
			w.str(e.label)
		}
		w.u32(uint32(len(h.in)))
		for _, e := range h.in {
			w.u64(uint64(e.to))
			w.str(e.label)
		}
	}
	return w.b
}

func decodeAssign(b []byte) (assignMsg, error) {
	r := rbuf{b: b}
	var m assignMsg
	m.unit.ID = int(r.u32())
	m.unit.Group = int(r.u32())
	m.unit.StripeMod = int(r.u32())
	m.unit.StripeRem = int(r.u32())
	m.unit.BlockSize = int(r.u64())
	m.skip = r.i64()
	nc := r.count(8)
	m.unit.Candidates = make([]graph.NodeID, nc)
	for i := range m.unit.Candidates {
		m.unit.Candidates[i] = graph.NodeID(r.u64())
	}
	nh := r.count(8)
	m.halo = make([]haloNode, 0, nh)
	for i := 0; i < nh && r.err == nil; i++ {
		var h haloNode
		h.id = graph.NodeID(r.u64())
		na := r.count(8)
		h.attrs = make([][2]string, na)
		for j := range h.attrs {
			h.attrs[j][0] = r.str()
			h.attrs[j][1] = r.str()
		}
		no := r.count(12)
		h.out = make([]haloEdge, no)
		for j := range h.out {
			h.out[j] = haloEdge{to: graph.NodeID(r.u64()), label: r.str()}
		}
		ni := r.count(12)
		h.in = make([]haloEdge, ni)
		for j := range h.in {
			h.in[j] = haloEdge{to: graph.NodeID(r.u64()), label: r.str()}
		}
		m.halo = append(m.halo, h)
	}
	return m, r.err
}

type vioMsg struct {
	unit int
	vios []validate.Violation
}

func encodeVio(m vioMsg) []byte {
	var w wbuf
	w.u32(uint32(m.unit))
	w.u32(uint32(len(m.vios)))
	for _, v := range m.vios {
		w.str(v.Rule)
		w.u32(uint32(len(v.Match)))
		for _, id := range v.Match {
			w.u64(uint64(id))
		}
	}
	return w.b
}

func decodeVio(b []byte) (vioMsg, error) {
	r := rbuf{b: b}
	var m vioMsg
	m.unit = int(r.u32())
	n := r.count(8)
	m.vios = make([]validate.Violation, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var v validate.Violation
		v.Rule = r.str()
		nm := r.count(8)
		v.Match = make(core.Match, nm)
		for j := range v.Match {
			v.Match[j] = graph.NodeID(r.u64())
		}
		m.vios = append(m.vios, v)
	}
	return m, r.err
}

type doneMsg struct {
	unit      int
	found     int64 // violations enumerated, including skipped ones
	delivered int64 // violations emitted this attempt (after skip)
	wall      time.Duration
}

func encodeDone(m doneMsg) []byte {
	var w wbuf
	w.u32(uint32(m.unit))
	w.i64(m.found)
	w.i64(m.delivered)
	w.i64(int64(m.wall))
	return w.b
}

func decodeDone(b []byte) (doneMsg, error) {
	r := rbuf{b: b}
	m := doneMsg{unit: int(r.u32()), found: r.i64(), delivered: r.i64(), wall: time.Duration(r.i64())}
	return m, r.err
}

type censusMsg struct {
	unitsRun  int64
	delivered int64
}

func encodeCensus(m censusMsg) []byte {
	var w wbuf
	w.i64(m.unitsRun)
	w.i64(m.delivered)
	return w.b
}

func decodeCensus(b []byte) (censusMsg, error) {
	r := rbuf{b: b}
	m := censusMsg{unitsRun: r.i64(), delivered: r.i64()}
	return m, r.err
}
