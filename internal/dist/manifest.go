// Package dist is the real shared-nothing execution runtime the simulated
// cluster (internal/cluster + internal/fragment) models: a coordinator
// process and one worker *process* per fragment, each worker mmapping its
// own persisted .gfds shard (internal/store) and running the compiled
// engines over it, speaking a small length-prefixed binary protocol over
// stdin/stdout pipes — unit assignment with halo data, violation batches,
// heartbeats, and a completeness census.
//
// The coordinator layers process-level fault tolerance over the PR 6
// scheduler semantics: heartbeat/deadline liveness detection, dead-process
// unit reassignment to survivors under the same retry budgets and capped
// backoff, capped worker respawn, typed *cluster.WorkerError causes,
// *validate.PartialError + Result.Completeness when budgets exhaust, and
// graceful degradation to the in-process fragmented engine when no worker
// process can be had at all. Process faults (kills, pipe stalls, truncated
// frames) are injected deterministically via internal/fault plans armed in
// the child through an environment variable, so the chaos differential
// suite replays seeds across process boundaries.
package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gfd/internal/fragment"
	"gfd/internal/graph"
)

// ManifestVersion is the manifest format version this runtime writes.
const ManifestVersion = 1

// Manifest describes one persisted fragmentation: how many workers, which
// strategy assigned node ownership, and where the per-fragment shards
// live. Shard paths are stored relative to the manifest's directory so
// the whole bundle can be moved; LoadManifest resolves them.
type Manifest struct {
	Version  int      `json:"version"`
	NumNodes int      `json:"num_nodes"`
	Workers  int      `json:"workers"`
	Strategy string   `json:"strategy"`
	Shards   []string `json:"shards"`

	strategy fragment.Strategy
}

// Owner returns the worker index owning node v — the same pure formula
// fragment.Partition used when the shards were written, reproduced from
// the manifest alone.
func (m *Manifest) Owner(v graph.NodeID) int {
	return fragment.Owner(m.strategy, v, m.NumNodes, m.Workers)
}

// WriteShards persists snap as n shards plus a manifest under dir, naming
// the shards <prefix>.<i>.gfds and the manifest <prefix>.manifest. It
// returns the manifest path. This is what `gfdgen -fragments n` calls;
// the ownership formula is fragment.Owner with the given strategy.
func WriteShards(snap *graph.Snapshot, n int, s fragment.Strategy, dir, prefix string) (string, error) {
	if n < 1 {
		n = 1
	}
	numNodes := snap.NumNodes()
	owner := make([]int, numNodes)
	for v := range owner {
		owner[v] = fragment.Owner(s, graph.NodeID(v), numNodes, n)
	}
	paths, err := fragment.SaveShards(context.Background(), snap, owner, n, dir, prefix)
	if err != nil {
		return "", err
	}
	m := &Manifest{
		Version:  ManifestVersion,
		NumNodes: numNodes,
		Workers:  n,
		Strategy: s.String(),
	}
	for _, p := range paths {
		m.Shards = append(m.Shards, filepath.Base(p))
	}
	mp := filepath.Join(dir, prefix+".manifest")
	if err := SaveManifest(mp, m); err != nil {
		return "", err
	}
	return mp, nil
}

// SaveManifest writes m as JSON at path (atomically via rename).
func SaveManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadManifest reads and validates a manifest, resolving shard paths
// against the manifest's directory.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("dist: manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("dist: manifest %s: version %d, want %d", path, m.Version, ManifestVersion)
	}
	if m.Workers < 1 || len(m.Shards) != m.Workers {
		return nil, fmt.Errorf("dist: manifest %s: %d workers but %d shards", path, m.Workers, len(m.Shards))
	}
	if m.NumNodes < 0 {
		return nil, fmt.Errorf("dist: manifest %s: negative node count", path)
	}
	m.strategy, err = fragment.ParseStrategy(m.Strategy)
	if err != nil {
		return nil, fmt.Errorf("dist: manifest %s: %w", path, err)
	}
	base := filepath.Dir(path)
	for i, s := range m.Shards {
		if !filepath.IsAbs(s) {
			m.Shards[i] = filepath.Join(base, s)
		}
	}
	return m, nil
}
