package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/validate"
	"gfd/internal/workload"
)

// Supervision defaults.
const (
	// DefaultHeartbeat is the worker heartbeat period when
	// DistOptions.HeartbeatInterval is unset; a worker silent for three
	// periods is declared lost and killed.
	DefaultHeartbeat = 200 * time.Millisecond
	// DefaultHandshakeTimeout bounds spawn-to-READY (shard open + rule
	// parse + group rebuild).
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultMaxRespawns is how many replacement processes a worker slot
	// gets when DistOptions.MaxRespawns is 0.
	DefaultMaxRespawns = 1
	// heartbeatMisses is how many silent heartbeat periods the liveness
	// monitor tolerates before killing a worker.
	heartbeatMisses = 3
	// shutdownGrace bounds the drain phase: SHUTDOWN → CENSUS → exit per
	// worker; slower workers are killed, never leaked.
	shutdownGrace = 3 * time.Second
)

// errDegraded is the internal signal that no worker process could be had
// at all and the run should fall back to the in-process fragmented engine.
var errDegraded = errors.New("dist: no worker processes available")

// Detect runs distributed detection over the shards named by
// opt.Dist.ManifestPath, collecting into Result.Violations.
func Detect(ctx context.Context, b *validate.Bundle, opt validate.Options) (*validate.Result, error) {
	return DetectB(ctx, b, opt, nil)
}

// DetectB is the distributed engine: it loads the shard manifest, spawns
// one worker process per shard (each mmapping its own .gfds and running
// the compiled engines), drives unit assignment with halo shipping over
// the wire protocol, and supervises the fleet — heartbeat and
// per-unit-deadline liveness, dead-process unit reassignment to survivors
// under Options.Retry budgets with capped backoff, capped respawn, and
// exactly-once retry semantics via deterministic skip counts. Exhausted
// budgets surface as *validate.PartialError with Result.Completeness
// carrying the census; when no worker process can be obtained at all and
// nothing was delivered yet, the run degrades to the in-process
// fragmented engine over the same partition.
//
// The bundle's topology must be the frozen, unmutated snapshot the shards
// were written from (NodeIDs, symbol codes, and block shapes must agree);
// a session with pending overlay mutations must re-shard first.
func DetectB(ctx context.Context, b *validate.Bundle, opt validate.Options, sink validate.Sink) (res *validate.Result, err error) {
	res = &validate.Result{}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	opt = opt.Normalized()
	if opt.Dist == nil || opt.Dist.ManifestPath == "" {
		return res, errors.New("dist: EngineDistributed requires Options.Dist.ManifestPath")
	}
	m, err := LoadManifest(opt.Dist.ManifestPath)
	if err != nil {
		return res, err
	}
	snap, ok := b.Topo().(*graph.Snapshot)
	if !ok {
		return res, errors.New("dist: bundle topology is not a frozen snapshot; re-shard after mutations")
	}
	if snap.NumNodes() != m.NumNodes {
		return res, fmt.Errorf("dist: snapshot holds %d nodes, manifest %s says %d",
			snap.NumNodes(), opt.Dist.ManifestPath, m.NumNodes)
	}
	opt.N = m.Workers // the shard layout fixes the worker count

	start := time.Now()
	cl := cluster.New(opt.N, opt.Cost)

	estStart := time.Now()
	plan, err := b.DistPlan(cl, opt)
	if err != nil {
		return res, err
	}
	res.Rules = plan.Set.Len()
	res.Groups = plan.Groups
	res.Units = len(plan.Units)
	res.SplitUnits = plan.Split
	res.TotalWeight = plan.TotalWeight
	res.Makespan = plan.Makespan
	res.EstimateSpan = plan.EstimateSpan
	res.EstimateWall = time.Since(estStart)
	if err := ctx.Err(); err != nil {
		return res, err
	}

	var rules strings.Builder
	if err := core.WriteRules(&rules, plan.Set); err != nil {
		return res, err
	}

	origSink := sink
	var collect *validate.CollectSink
	if sink == nil {
		collect = validate.NewCollectSink(opt.N)
		sink = collect
	}

	r := &coordRun{
		ctx:      ctx,
		b:        b,
		snap:     snap,
		manifest: m,
		plan:     plan,
		opt:      opt,
		cl:       cl,
		sink:     sink,
		rules:    rules.String(),
		events:   make(chan event, 1024),
	}
	detStart := time.Now()
	span, comp, runErr := r.run()
	res.DetectWall = time.Since(detStart)
	res.DetectSpan = span
	res.Completeness = comp

	if errors.Is(runErr, errDegraded) {
		// Worker processes are unobtainable and nothing was delivered:
		// fall back to the in-process fragmented engine over the same
		// partition. The fallback may thaw the graph; correctness over
		// cold-start purity once the distributed path is gone. It gets the
		// caller's original sink (possibly nil) so it assembles its own
		// Result, including the collected violations.
		strat, _ := fragment.ParseStrategy(m.Strategy)
		frag := fragment.Partition(b.Graph(), m.Workers, strat)
		return validate.DisValB(ctx, b, frag, opt, origSink)
	}

	st := cl.Stats()
	res.BytesShipped = st.TotalBytes
	res.Messages = st.TotalMsgs
	res.Comm = cl.CommTime()
	if collect != nil {
		res.Violations = collect.Report()
		res.Violations.Sort()
	}
	res.Wall = time.Since(start)
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	return res, runErr
}

// event is what per-worker reader goroutines deliver to the coordinator
// loop: a decoded-frame envelope or a death notice. Frames buffered
// before a death are always delivered first (the reader emits the death
// only after the read loop ends), so violation accounting at reassignment
// time is exact.
type event struct {
	w       int
	gen     int
	typ     byte
	payload []byte
	death   *deathNotice
}

type deathNotice struct {
	waitErr error  // cmd.Wait result: exit status or wait failure
	readErr error  // what ended the read loop (EOF, torn frame, ...)
	tail    string // last stderr output — panic stacks land here
}

// unitState mirrors the in-process scheduler's per-unit bookkeeping.
type unitState struct {
	attempts int
	emitted  int64 // violations accepted by the sink across attempts; retries skip these
	done     bool
	failed   bool
	lastErr  error
}

// procState is one worker slot across incarnations.
type procState struct {
	id    int
	shard string

	cmd      *exec.Cmd
	stdin    io.WriteCloser
	fw       *frameWriter
	tail     *tailBuffer
	gen      int // incarnation counter; stale-gen events are dropped
	alive    bool
	ready    bool
	spawned  time.Time
	lastSeen time.Time
	killed   error // why the liveness monitor killed it; nil for self-deaths

	queue      []int // pending unit IDs
	inflight   int   // unit ID in flight; -1 when idle
	inflightAt time.Time
	shipped    []bool // halo nodes already shipped to this incarnation
	respawns   int
	busy       time.Duration // sum of reported unit walls — the modeled span basis
}

type coordRun struct {
	ctx      context.Context
	b        *validate.Bundle
	snap     *graph.Snapshot
	manifest *Manifest
	plan     *validate.DistPlan
	opt      validate.Options
	cl       *cluster.Cluster
	sink     validate.Sink
	rules    string
	events   chan event

	procs    []*procState
	states   []unitState
	resolved int // units done or failed
	deaths   int
	rounds   int
	stopped  bool // sink refused a violation; drain and stop cleanly
	anyEmit  bool

	wg sync.WaitGroup // reader goroutines
}

// Completeness alias keeps signatures readable.
type Completeness = validate.Completeness

// run executes the distributed detection phase. It returns the modeled
// detection span, the completeness census, and the run error: nil,
// ctx.Err(), a *validate.PartialError, or errDegraded.
func (r *coordRun) run() (time.Duration, Completeness, error) {
	n := r.opt.N
	r.states = make([]unitState, len(r.plan.Units))
	r.procs = make([]*procState, n)
	faultEnv := r.opt.Inject.Encode()
	for w := 0; w < n; w++ {
		r.procs[w] = &procState{id: w, shard: r.manifest.Shards[w], inflight: -1}
		r.procs[w].queue = append(r.procs[w].queue, r.plan.Assign[w]...)
	}
	// Always reap every child, whatever path exits this function. The
	// drain keeps reader goroutines from blocking on a full events
	// channel while we wait for them to finish.
	defer func() {
		for _, p := range r.procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}
		done := make(chan struct{})
		go func() {
			r.wg.Wait()
			close(done)
		}()
		for {
			select {
			case <-r.events:
			case <-done:
				return
			}
		}
	}()

	spawned := 0
	for w := 0; w < n; w++ {
		if err := r.spawn(w, faultEnv); err != nil {
			r.procs[w].alive = false
			r.procs[w].killed = fmt.Errorf("spawn failed: %w", err)
			continue
		}
		spawned++
	}
	if spawned == 0 {
		return 0, r.census(nil), errDegraded
	}
	// Queues of workers that never spawned move to the survivors.
	var orphaned []int
	for _, p := range r.procs {
		if !p.alive {
			orphaned = append(orphaned, p.queue...)
			p.queue = nil
		}
	}
	if len(orphaned) > 0 {
		r.reassign(orphaned)
	}

	hb := r.opt.Dist.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	handshake := r.opt.Dist.HandshakeTimeout
	if handshake <= 0 {
		handshake = DefaultHandshakeTimeout
	}
	tick := hb / 2
	if d := r.opt.UnitDeadline; d > 0 && d/2 < tick {
		tick = d / 2
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	var failures []validate.UnitFailure
	var ctxErr error
loop:
	for r.resolved < len(r.states) && !r.stopped {
		select {
		case <-r.ctx.Done():
			ctxErr = r.ctx.Err()
			break loop
		case ev := <-r.events:
			r.handle(ev, &failures)
		case <-ticker.C:
			r.checkLiveness(hb, handshake)
		}
		if r.liveCount() == 0 {
			if !r.progress() {
				return 0, r.census(failures), errDegraded
			}
			// Some units are unreachable: everything unresolved fails.
			for ui := range r.states {
				st := &r.states[ui]
				if !st.done && !st.failed {
					st.failed = true
					r.resolved++
					failures = append(failures, r.failure(ui))
				}
			}
			break loop
		}
	}

	r.shutdown()

	var span time.Duration
	for _, p := range r.procs {
		if p.busy > span {
			span = p.busy
		}
	}
	comp := r.census(failures)
	if ctxErr != nil {
		return span, comp, ctxErr
	}
	if len(failures) > 0 {
		return span, comp, &validate.PartialError{Failures: failures}
	}
	return span, comp, nil
}

// handle processes one event from a worker reader.
func (r *coordRun) handle(ev event, failures *[]validate.UnitFailure) {
	p := r.procs[ev.w]
	if ev.gen != p.gen {
		return // an earlier incarnation's leftovers
	}
	if ev.death != nil {
		r.handleDeath(ev.w, ev.death, failures)
		return
	}
	p.lastSeen = time.Now()
	switch ev.typ {
	case fReady:
		m, err := decodeReady(ev.payload)
		if err != nil || m.numNodes != r.manifest.NumNodes || m.groups != r.plan.Groups {
			p.killed = fmt.Errorf("dist: worker %d handshake mismatch (%v)", ev.w, err)
			r.kill(p)
			return
		}
		r.cl.Ship(ev.w, cluster.Coordinator, frameOverhead+int64(len(ev.payload)))
		p.ready = true
		r.dispatch(p)
	case fVio:
		m, err := decodeVio(ev.payload)
		if err != nil {
			p.killed = fmt.Errorf("dist: worker %d sent undecodable violations: %w", ev.w, err)
			r.kill(p)
			return
		}
		r.cl.Ship(ev.w, cluster.Coordinator, frameOverhead+int64(len(ev.payload)))
		if m.unit < 0 || m.unit >= len(r.states) {
			return
		}
		st := &r.states[m.unit]
		for _, v := range m.vios {
			if !r.sink.Emit(ev.w, v) {
				r.stopped = true
				return
			}
			st.emitted++
			r.anyEmit = true
		}
	case fDone:
		m, err := decodeDone(ev.payload)
		if err != nil || m.unit != p.inflight {
			p.killed = fmt.Errorf("dist: worker %d done frame out of protocol (unit %d, inflight %d)", ev.w, m.unit, p.inflight)
			r.kill(p)
			return
		}
		r.cl.Ship(ev.w, cluster.Coordinator, frameOverhead+int64(len(ev.payload)))
		st := &r.states[m.unit]
		if !st.done && !st.failed {
			st.done = true
			st.lastErr = nil
			r.resolved++
		}
		p.busy += m.wall
		p.inflight = -1
		r.dispatch(p)
	case fHeartbeat:
		// lastSeen already refreshed above.
	case fCensus:
		// Arrives during shutdown; the drain loop consumes it there. One
		// out of band is harmless.
	}
}

// handleDeath marks a worker dead, converts its exit into the unit's
// failure cause, requeues its pending work, respawns if the budget
// allows, and reassigns with backoff.
func (r *coordRun) handleDeath(w int, d *deathNotice, failures *[]validate.UnitFailure) {
	p := r.procs[w]
	if !p.alive {
		return
	}
	p.alive = false
	p.ready = false
	r.deaths++

	cause := p.killed
	if cause == nil {
		cause = &cluster.WorkerError{Worker: w, Unit: p.inflight, Panic: describeExit(d)}
	}
	var pending []int
	if ui := p.inflight; ui >= 0 {
		p.inflight = -1
		st := &r.states[ui]
		if !st.done && !st.failed {
			st.lastErr = fmt.Errorf("unit %d (worker %d): %w", ui, w, cause)
			if st.attempts >= r.maxAttempts() {
				st.failed = true
				r.resolved++
				*failures = append(*failures, r.failure(ui))
			} else {
				pending = append(pending, ui)
			}
		}
	}
	pending = append(pending, p.queue...)
	p.queue = nil

	maxRespawns := r.opt.Dist.MaxRespawns
	if maxRespawns == 0 {
		maxRespawns = DefaultMaxRespawns
	}
	if maxRespawns > 0 && p.respawns < maxRespawns && r.ctx.Err() == nil {
		p.respawns++
		// Replacement processes never re-arm the fault plan: a real
		// machine does not re-crash on the injected schedule either, and
		// a deterministic re-kill would make every recoverable plan
		// unrecoverable.
		if err := r.spawn(w, ""); err != nil {
			p.killed = fmt.Errorf("respawn failed: %w", err)
		}
	}

	if len(pending) > 0 && r.liveCount() > 0 {
		r.rounds++
		r.backoff(r.rounds)
		r.reassign(pending)
	} else if len(pending) > 0 {
		// keep them queued on the dead worker so the all-dead sweep in
		// runImpl fails them with accurate attempt counts.
		p.queue = pending
	}
}

// checkLiveness kills workers that went silent, failed to handshake, or
// blew the per-unit deadline. The kill only initiates death: the reader's
// death notice (which follows the last buffered frames) drives recovery,
// so violations already on the wire are never lost.
func (r *coordRun) checkLiveness(hb, handshake time.Duration) {
	now := time.Now()
	for _, p := range r.procs {
		if !p.alive || p.killed != nil {
			continue
		}
		if !p.ready {
			if now.Sub(p.spawned) > handshake {
				p.killed = fmt.Errorf("dist: worker %d handshake timed out after %v", p.id, handshake)
				r.kill(p)
			}
			continue
		}
		if d := r.opt.UnitDeadline; d > 0 && p.inflight >= 0 && now.Sub(p.inflightAt) > d {
			p.killed = fmt.Errorf("unit %d (worker %d): %w", p.inflight, p.id, context.DeadlineExceeded)
			r.kill(p)
			continue
		}
		if now.Sub(p.lastSeen) > time.Duration(heartbeatMisses)*hb {
			p.killed = fmt.Errorf("dist: worker %d lost (no frames for %v)", p.id, now.Sub(p.lastSeen))
			r.kill(p)
		}
	}
}

func (r *coordRun) kill(p *procState) {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

// dispatch sends the next queued unit to an idle, ready worker: one unit
// in flight per worker, which keeps deadline tracking and reassignment
// trivial and lets the LPT queues drain in weight order.
func (r *coordRun) dispatch(p *procState) {
	if !p.alive || !p.ready || p.inflight >= 0 || r.stopped {
		return
	}
	for len(p.queue) > 0 {
		ui := p.queue[0]
		p.queue = p.queue[1:]
		st := &r.states[ui]
		if st.done || st.failed {
			continue
		}
		st.attempts++
		p.inflight = ui
		p.inflightAt = time.Now()
		msg := assignMsg{unit: r.plan.Units[ui], skip: st.emitted, halo: r.haloFor(p, ui)}
		payload := encodeAssign(msg)
		r.cl.Ship(cluster.Coordinator, p.id, frameOverhead+int64(len(payload)))
		if err := p.fw.write(fAssign, payload); err != nil {
			// The pipe is gone; the reader's death notice will requeue
			// the unit. Leave it in flight so accounting stays single-path.
			return
		}
		return
	}
}

// haloFor collects the unit's block nodes this worker does not own and
// has not been shipped yet this incarnation: attribute tuples plus full
// adjacency, from the coordinator's snapshot. Because every shard keeps
// the full node/class/symbol tables, the halo is the only data a worker
// is missing, and after patching, its local block reproduces the
// coordinator's exactly.
func (r *coordRun) haloFor(p *procState, ui int) []haloNode {
	block := r.plan.BlockNodes(ui)
	syms := r.snap.Syms()
	var halo []haloNode
	for _, v := range block {
		if r.manifest.Owner(v) == p.id || p.shipped[v] {
			continue
		}
		p.shipped[v] = true
		h := haloNode{id: v}
		for _, pr := range r.snap.AttrPairs(v) {
			h.attrs = append(h.attrs, [2]string{syms.Name(pr.Name), syms.Name(pr.Val)})
		}
		for _, e := range r.snap.Out(v) {
			h.out = append(h.out, haloEdge{to: e.To, label: syms.Name(e.Label)})
		}
		for _, e := range r.snap.In(v) {
			h.in = append(h.in, haloEdge{to: e.To, label: syms.Name(e.Label)})
		}
		halo = append(halo, h)
	}
	return halo
}

// reassign balances pending units across live workers (LPT on unit
// weights, like the initial assignment) and kicks idle ones.
func (r *coordRun) reassign(pending []int) {
	var live []*procState
	for _, p := range r.procs {
		if p.alive {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return
	}
	weights := make([]int, len(pending))
	for i, ui := range pending {
		weights[i] = int(r.plan.Units[ui].Weight())
	}
	sub := workload.BalanceLPT(weights, len(live))
	for li, us := range sub {
		for _, pi := range us {
			live[li].queue = append(live[li].queue, pending[pi])
		}
	}
	for _, p := range live {
		r.dispatch(p)
	}
}

// backoff sleeps the capped exponential recovery delay (PR 6 semantics),
// bailing early if the context dies.
func (r *coordRun) backoff(round int) {
	d := r.opt.Retry.Backoff
	if d <= 0 {
		return
	}
	factor := 1 << (round - 1)
	if factor > 8 {
		factor = 8
	}
	t := time.NewTimer(d * time.Duration(factor))
	defer t.Stop()
	select {
	case <-r.ctx.Done():
	case <-t.C:
	}
}

func (r *coordRun) maxAttempts() int { return 1 + r.opt.Retry.Max }

func (r *coordRun) liveCount() int {
	n := 0
	for _, p := range r.procs {
		if p.alive {
			n++
		}
	}
	return n
}

// progress reports whether the run achieved anything a fallback would
// duplicate: a completed unit or a delivered violation.
func (r *coordRun) progress() bool {
	if r.anyEmit {
		return true
	}
	for i := range r.states {
		if r.states[i].done {
			return true
		}
	}
	return false
}

func (r *coordRun) failure(ui int) validate.UnitFailure {
	st := &r.states[ui]
	err := st.lastErr
	if err == nil {
		err = fmt.Errorf("unit %d: never started: all workers dead", ui)
	}
	return validate.UnitFailure{Unit: ui, Group: r.plan.Units[ui].Group, Attempts: st.attempts, Err: err}
}

func (r *coordRun) census(failures []validate.UnitFailure) Completeness {
	comp := Completeness{Units: len(r.states), WorkerDeaths: r.deaths, RecoveryRounds: r.rounds}
	for i := range r.states {
		st := &r.states[i]
		if st.attempts > 0 {
			comp.Attempted++
		}
		if st.attempts > 1 {
			comp.Retries += st.attempts - 1
		}
		if st.done {
			comp.Succeeded++
		}
	}
	comp.Failed = len(failures)
	return comp
}

// shutdown drains the fleet: SHUTDOWN to every live worker, wait for each
// census (bounded), then close pipes and reap. Workers that ignore the
// grace period are killed — the coordinator never leaks processes.
func (r *coordRun) shutdown() {
	waiting := 0
	for _, p := range r.procs {
		if !p.alive || !p.ready {
			continue
		}
		if err := p.fw.write(fShutdown, nil); err == nil {
			r.cl.Ship(cluster.Coordinator, p.id, frameOverhead)
			waiting++
		}
	}
	deadline := time.NewTimer(shutdownGrace)
	defer deadline.Stop()
	for waiting > 0 {
		select {
		case ev := <-r.events:
			p := r.procs[ev.w]
			if ev.gen != p.gen {
				continue
			}
			if ev.death != nil {
				if p.alive {
					p.alive = false
					waiting--
				}
				continue
			}
			if ev.typ == fCensus {
				r.cl.Ship(ev.w, cluster.Coordinator, frameOverhead+int64(len(ev.payload)))
				if p.alive {
					p.alive = false
					waiting--
				}
				p.stdin.Close()
			}
		case <-deadline.C:
			waiting = 0
		}
	}
	// The deferred reaper in runImpl kills and waits whatever is left.
}

// spawn starts (or restarts) worker w's process: pipes wired, stderr
// tailed, HELLO written. The reader goroutine owns cmd.Wait — it emits
// the death notice after the last buffered frame, which is what makes
// violation accounting at death exact.
func (r *coordRun) spawn(w int, faultEnv string) error {
	p := r.procs[w]
	argv := r.opt.Dist.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		argv = []string{exe}
	}
	cmd := exec.CommandContext(r.ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), EnvWorker+"=1")
	if faultEnv != "" {
		cmd.Env = append(cmd.Env, EnvFault+"="+faultEnv)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	tail := &tailBuffer{}
	cmd.Stderr = tail
	if err := cmd.Start(); err != nil {
		return err
	}
	p.gen++
	p.cmd = cmd
	p.stdin = stdin
	p.tail = tail
	p.fw = &frameWriter{w: bufio.NewWriterSize(stdin, 1<<16)}
	p.alive = true
	p.ready = false
	p.killed = nil
	p.inflight = -1
	p.spawned = time.Now()
	p.lastSeen = p.spawned
	p.shipped = make([]bool, r.manifest.NumNodes)

	hb := r.opt.Dist.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	hello := encodeHello(helloMsg{
		proto:     protoVersion,
		worker:    w,
		workers:   r.opt.N,
		numNodes:  r.manifest.NumNodes,
		heartbeat: hb,
		combine:   r.plan.Combine,
		arbPivot:  r.plan.ArbitraryPivot,
		shardPath: p.shard,
		rules:     r.rules,
		groups:    r.plan.Groups,
	})
	r.cl.Ship(cluster.Coordinator, w, frameOverhead+int64(len(hello)))

	gen := p.gen
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fr := &frameReader{r: bufio.NewReaderSize(stdout, 1<<16)}
		for {
			typ, payload, err := fr.read()
			if err != nil {
				waitErr := cmd.Wait()
				r.events <- event{w: w, gen: gen, death: &deathNotice{waitErr: waitErr, readErr: err, tail: tail.String()}}
				return
			}
			r.events <- event{w: w, gen: gen, typ: typ, payload: payload}
		}
	}()
	// A failed HELLO write means the child died instantly; the reader's
	// death notice handles it.
	p.fw.write(fHello, hello)
	return nil
}

// describeExit renders a death notice into the WorkerError panic slot.
func describeExit(d *deathNotice) string {
	s := "process died"
	if d.waitErr != nil {
		s = d.waitErr.Error()
	}
	if d.readErr != nil && !errors.Is(d.readErr, io.EOF) {
		s += " (" + d.readErr.Error() + ")"
	}
	if tail := strings.TrimSpace(d.tail); tail != "" {
		if len(tail) > 512 {
			tail = tail[len(tail)-512:]
		}
		s += ": " + tail
	}
	return s
}

// tailBuffer keeps the last few KB written to it — enough stderr to carry
// a panic stack into a WorkerError without unbounded growth.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

const tailCap = 8 << 10

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailCap {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-tailCap:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
