package dist

// The dist chaos differential suite. The test binary doubles as the worker
// executable: TestMain calls MaybeWorker first, so when the coordinator
// re-executes this binary with the worker environment set, it becomes a
// shard worker instead of running the tests. Every recoverable process
// fault plan must leave the violation set byte-identical to the in-process
// fault-free run over the same partition; unrecoverable plans must return
// ErrPartial with an honest census, and never hang or leak processes.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/fault"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/store"
	"gfd/internal/validate"
)

var fxDir string

func TestMain(m *testing.M) {
	MaybeWorker()
	code := m.Run()
	if fxDir != "" {
		os.RemoveAll(fxDir)
	}
	os.Exit(code)
}

const fxWorkers = 4

type fixture struct {
	g        *graph.Graph
	set      *core.Set
	b        *validate.Bundle
	manifest string
	base     validate.Report // fault-free in-process reference
	err      error
}

var (
	fx     fixture
	fxOnce sync.Once
)

// setup builds the shared workload once: a noisy generated graph, mined
// rules, persisted shards + manifest, and the in-process fault-free
// reference violation set over the identical hash partition.
func setup(t *testing.T) *fixture {
	t.Helper()
	fxOnce.Do(func() {
		g := gen.YAGO2Like(gen.DatasetConfig{Scale: 400, Seed: 9})
		set := gen.MineGFDs(g, gen.MineConfig{NumRules: 6, PatternSize: 4, TwoCompFrac: 0.3, Seed: 13})
		if set.Len() == 0 {
			fx.err = errors.New("no rules mined")
			return
		}
		gen.Inject(g, gen.NoiseConfig{Rate: 0.4, Seed: 11})
		dir, err := os.MkdirTemp("", "gfd-dist-test-")
		if err != nil {
			fx.err = err
			return
		}
		fxDir = dir
		mp, err := WriteShards(g.Freeze(), fxWorkers, fragment.Hash, dir, "fx")
		if err != nil {
			fx.err = err
			return
		}
		b := validate.NewBundle(g, set)
		ref, err := validate.DisValB(context.Background(), b,
			fragment.Partition(g, fxWorkers, fragment.Hash), validate.Options{N: fxWorkers}, nil)
		if err != nil {
			fx.err = err
			return
		}
		if len(ref.Violations) == 0 {
			fx.err = errors.New("workload produced no violations; differentials would be vacuous")
			return
		}
		fx = fixture{g: g, set: set, b: b, manifest: mp, base: ref.Violations}
	})
	if fx.err != nil {
		t.Fatal(fx.err)
	}
	return &fx
}

func distOpt(f *fixture, plan *fault.Plan) validate.Options {
	return validate.Options{
		Inject: plan,
		Dist: &validate.DistOptions{
			ManifestPath: f.manifest,
			// Tight supervision keeps injected 30s pipe stalls (killed via
			// heartbeat starvation) from dominating the suite's runtime.
			HeartbeatInterval: 50 * time.Millisecond,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// TestDistFaultFree: the multi-process run over mmap'd shards reproduces
// the in-process fault-free violation set exactly, with a complete census
// and zero snapshot builds in the coordinator (the cold-start guarantee:
// plans and halos come from the already-frozen snapshot; nothing thaws).
func TestDistFaultFree(t *testing.T) {
	f := setup(t)
	before := f.g.SnapshotBuilds()
	res, err := DetectB(context.Background(), f.b, distOpt(f, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violations.Equal(f.base) {
		t.Fatalf("violation set diverged from in-process run (%d vs %d)",
			len(res.Violations), len(f.base))
	}
	c := res.Completeness
	if !c.Complete() || c.Failed != 0 || c.WorkerDeaths != 0 {
		t.Fatalf("fault-free census not clean: %+v", c)
	}
	if got := f.g.SnapshotBuilds(); got != before {
		t.Fatalf("coordinator built %d snapshots during a dist run, want 0", got-before)
	}
	if res.BytesShipped == 0 || res.Messages == 0 {
		t.Fatalf("no shipment accounted: bytes=%d msgs=%d", res.BytesShipped, res.Messages)
	}
	if res.DetectSpan <= 0 {
		t.Fatalf("modeled detection span not measured: %v", res.DetectSpan)
	}
}

// TestDistChaosDifferential sweeps seed-derived recoverable process fault
// plans — SIGKILLed workers, stalled pipes starving heartbeats, frames
// torn mid-write — and requires every run to recover to exactly the
// fault-free violation set with a complete census.
func TestDistChaosDifferential(t *testing.T) {
	f := setup(t)
	ctx := context.Background()
	activity := 0
	for seed := int64(1); seed <= 6; seed++ {
		plan := fault.FromSeedProc(seed, fxWorkers, 64)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := DetectB(ctx, f.b, distOpt(f, plan), nil)
			if err != nil {
				t.Fatalf("%v: %v", plan, err)
			}
			if !res.Violations.Equal(f.base) {
				t.Fatalf("%v: violation set diverged from fault-free run (%d vs %d)",
					plan, len(res.Violations), len(f.base))
			}
			c := res.Completeness
			if !c.Complete() || c.Failed != 0 {
				t.Fatalf("%v: census not complete: %+v", plan, c)
			}
			activity += c.Retries + c.WorkerDeaths
		})
	}
	if activity == 0 {
		t.Error("no process fault fired across the whole sweep — every differential was vacuous")
	}
}

// TestDistTruncatedFrameExactlyOnce pins the retry dedupe across a torn
// frame: a worker that dies mid-write of its 4th outbound frame (likely a
// violation batch) loses that frame, and the retried unit must re-deliver
// exactly the missing violations — no duplicates, no gaps.
func TestDistTruncatedFrameExactlyOnce(t *testing.T) {
	f := setup(t)
	plan := fault.NewPlan(11).TruncateMessage(2, 3)
	res, err := DetectB(context.Background(), f.b, distOpt(f, plan), nil)
	if err != nil {
		t.Fatalf("%v: %v", plan, err)
	}
	if !res.Violations.Equal(f.base) {
		t.Fatalf("%v: set diverged after torn frame (%d vs %d) — duplicate or lost emissions",
			plan, len(res.Violations), len(f.base))
	}
	if res.Completeness.WorkerDeaths == 0 {
		t.Fatalf("%v: truncation never killed the worker: %+v", plan, res.Completeness)
	}
}

// TestDistUnrecoverablePartial: a process kill with retries and respawn
// both disabled abandons exactly the in-flight unit — the run returns
// ErrPartial wrapping a *cluster.WorkerError, the census says one failed
// unit and one death, and every reported violation is real (a subset of
// the fault-free set).
func TestDistUnrecoverablePartial(t *testing.T) {
	f := setup(t)
	plan := fault.NewPlan(7).KillProcess(1, 0)
	opt := distOpt(f, plan)
	opt.Retry = validate.Retry{Max: -1}
	opt.Dist.MaxRespawns = -1
	res, err := DetectB(context.Background(), f.b, opt, nil)
	if !errors.Is(err, validate.ErrPartial) {
		t.Fatalf("%v: err = %v, want ErrPartial", plan, err)
	}
	var pe *validate.PartialError
	if !errors.As(err, &pe) || len(pe.Failures) != 1 {
		t.Fatalf("%v: err = %v, want *PartialError with exactly 1 failure", plan, err)
	}
	if pe.Failures[0].Attempts != 1 {
		t.Fatalf("%v: failed unit consumed %d attempts with retries disabled", plan, pe.Failures[0].Attempts)
	}
	var we *cluster.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("%v: failure does not unwrap to a *cluster.WorkerError: %v", plan, err)
	}
	c := res.Completeness
	if c.WorkerDeaths != 1 || c.Failed != 1 || c.Succeeded != c.Units-1 {
		t.Fatalf("%v: census wrong for one dead process: %+v", plan, c)
	}
	seen := make(map[string]bool, len(f.base))
	for _, v := range f.base {
		seen[fmt.Sprint(v.Rule, v.Match)] = true
	}
	for _, v := range res.Violations {
		if !seen[fmt.Sprint(v.Rule, v.Match)] {
			t.Fatalf("%v: partial run reported a violation absent from the fault-free set: %v", plan, v)
		}
	}
}

// TestDistDegradeSpawnFailure: when no worker process can be started at
// all, the engine degrades to the in-process fragmented engine over the
// same partition and still produces the full violation set.
func TestDistDegradeSpawnFailure(t *testing.T) {
	f := setup(t)
	opt := distOpt(f, nil)
	opt.Dist.Command = []string{"/nonexistent/gfd-dist-worker"}
	res, err := DetectB(context.Background(), f.b, opt, nil)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !res.Violations.Equal(f.base) {
		t.Fatalf("degraded run diverged (%d vs %d)", len(res.Violations), len(f.base))
	}
	if !res.Completeness.Complete() {
		t.Fatalf("degraded census not complete: %+v", res.Completeness)
	}
}

// TestDistDegradeAllDeadNoProgress: every worker killed on its first unit
// before anything was delivered, with respawn disabled — nothing useful
// happened, so instead of reporting total failure the engine falls back
// in-process and completes.
func TestDistDegradeAllDeadNoProgress(t *testing.T) {
	f := setup(t)
	plan := fault.NewPlan(3)
	for w := 0; w < fxWorkers; w++ {
		plan.KillProcess(w, 0)
	}
	opt := distOpt(f, plan)
	opt.Dist.MaxRespawns = -1
	res, err := DetectB(context.Background(), f.b, opt, nil)
	if err != nil {
		t.Fatalf("%v: total-loss run did not degrade: %v", plan, err)
	}
	if !res.Violations.Equal(f.base) {
		t.Fatalf("%v: degraded run diverged (%d vs %d)", plan, len(res.Violations), len(f.base))
	}
}

// TestDistStreamStop: a sink refusing the first violation stops the run
// promptly and cleanly — no error, no hung coordinator, and the worker
// fleet is torn down without stranding goroutines.
func TestDistStreamStop(t *testing.T) {
	f := setup(t)
	before := runtime.NumGoroutine()
	n := 0
	_, err := DetectB(context.Background(), f.b, distOpt(f, nil),
		validate.Callback(func(validate.Violation) bool {
			n++
			return false
		}))
	if err != nil {
		t.Fatalf("stopped run returned %v", err)
	}
	if n != 1 {
		t.Fatalf("sink called %d times after refusing", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDistCancellation: a context cancelled mid-run surfaces its error
// and reaps the fleet instead of hanging.
func TestDistCancellation(t *testing.T) {
	f := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DetectB(ctx, f.b, distOpt(f, nil), nil)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancelled run took %v to return", time.Since(start))
	}
}

// TestManifestRoundTrip: WriteShards persists loadable shards whose
// manifest reproduces the exact ownership formula of the in-memory
// partition, and every shard opens over mmap carrying the full node
// count and the global symbol table.
func TestManifestRoundTrip(t *testing.T) {
	f := setup(t)
	m, err := LoadManifest(f.manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != fxWorkers || m.NumNodes != f.g.NumNodes() {
		t.Fatalf("manifest shape wrong: %+v", m)
	}
	frag := fragment.Partition(f.g, fxWorkers, fragment.Hash)
	for v := 0; v < m.NumNodes; v++ {
		if got, want := m.Owner(graph.NodeID(v)), frag.Owner[v]; got != want {
			t.Fatalf("manifest owner(%d) = %d, partition says %d", v, got, want)
		}
	}
	full := f.g.Freeze()
	for i, p := range m.Shards {
		loaded, err := store.Open(context.Background(), p)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		snap := loaded.Snapshot()
		if snap.NumNodes() != m.NumNodes {
			t.Fatalf("shard %d holds %d nodes, want %d (full node table)", i, snap.NumNodes(), m.NumNodes)
		}
		if got, want := snap.Syms().Len(), full.Syms().Len(); got != want {
			t.Fatalf("shard %d symbol table has %d codes, full snapshot %d — tables must be global", i, got, want)
		}
		loaded.Close()
	}
	if _, err := LoadManifest(f.manifest + ".missing"); err == nil {
		t.Fatal("loading a missing manifest succeeded")
	}
}

// TestWireRoundTrip exercises the frame codec over awkward payloads:
// empty strings, multi-byte runes, zero-length halo lists, and violation
// matches — everything must survive encode → decode unchanged.
func TestWireRoundTrip(t *testing.T) {
	h := helloMsg{
		proto: protoVersion, worker: 3, workers: 7, numNodes: 1 << 20,
		heartbeat: 125 * time.Millisecond, combine: true, arbPivot: false,
		shardPath: "/tmp/δ shard.0.gfds", rules: "rule text\nwith lines", groups: 5,
	}
	h2, err := decodeHello(encodeHello(h))
	if err != nil || h2 != h {
		t.Fatalf("hello round-trip: %+v -> %+v (%v)", h, h2, err)
	}

	a := assignMsg{
		unit: validate.DistUnit{ID: 9, Group: 2, Candidates: []graph.NodeID{1, 99, 4096},
			StripeMod: 3, StripeRem: 1, BlockSize: 77},
		skip: 12345,
		halo: []haloNode{
			{id: 42, attrs: [][2]string{{"name", "héllo"}, {"", ""}},
				out: []haloEdge{{to: 7, label: "knows"}},
				in:  nil},
			{id: 43},
		},
	}
	a2, err := decodeAssign(encodeAssign(a))
	if err != nil {
		t.Fatalf("assign round-trip: %v", err)
	}
	if a2.unit.ID != a.unit.ID || a2.skip != a.skip || len(a2.halo) != 2 ||
		a2.halo[0].attrs[0][1] != "héllo" || len(a2.halo[0].out) != 1 || len(a2.halo[1].attrs) != 0 {
		t.Fatalf("assign round-trip mangled: %+v", a2)
	}

	v := vioMsg{unit: 4, vios: []validate.Violation{
		{Rule: "r1", Match: core.Match{3, 1, 4}},
		{Rule: "", Match: nil},
	}}
	v2, err := decodeVio(encodeVio(v))
	if err != nil || v2.unit != 4 || len(v2.vios) != 2 ||
		v2.vios[0].Rule != "r1" || len(v2.vios[0].Match) != 3 || v2.vios[0].Match[2] != 4 {
		t.Fatalf("vio round-trip mangled: %+v (%v)", v2, err)
	}

	d := doneMsg{unit: 8, found: 100, delivered: 60, wall: 42 * time.Millisecond}
	if d2, err := decodeDone(encodeDone(d)); err != nil || d2 != d {
		t.Fatalf("done round-trip: %+v (%v)", d2, err)
	}
	c := censusMsg{unitsRun: 17, delivered: 230}
	if c2, err := decodeCensus(encodeCensus(c)); err != nil || c2 != c {
		t.Fatalf("census round-trip: %+v (%v)", c2, err)
	}

	// Corrupt truncations must error, never panic or over-allocate.
	for _, enc := range [][]byte{encodeHello(h), encodeAssign(a), encodeVio(v), encodeDone(d)} {
		for cut := 0; cut < len(enc); cut += 3 {
			decodeHello(enc[:cut])
			decodeAssign(enc[:cut])
			decodeVio(enc[:cut])
			decodeDone(enc[:cut])
		}
	}
}

// TestFaultPlanEncodeRoundTrip: the env-var encoding that ships a plan
// into worker processes reproduces every rule, including the process
// sites, and rejects garbage.
func TestFaultPlanEncodeRoundTrip(t *testing.T) {
	p := fault.NewPlan(99).
		KillProcess(1, 2).
		StallPipe(0, 4, 30*time.Second).
		TruncateMessage(3, 1).
		DelayUnit(7, 2*time.Millisecond).
		KillWorker(2, 0)
	enc := p.Encode()
	q, err := fault.DecodePlan(enc)
	if err != nil {
		t.Fatalf("decoding %q: %v", enc, err)
	}
	if q.Encode() != enc {
		t.Fatalf("re-encode diverged:\n%q\n%q", enc, q.Encode())
	}
	if got, err := fault.DecodePlan(""); got != nil || err != nil {
		t.Fatalf("empty encoding: %v, %v", got, err)
	}
	for _, bad := range []string{"v2;seed=1", "v1;seed=x", "v1;seed=1;bogus,1", "v1;seed=1;kill,1"} {
		if _, err := fault.DecodePlan(bad); err == nil {
			t.Fatalf("decoding %q succeeded", bad)
		}
	}
}
