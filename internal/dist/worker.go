package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gfd/internal/core"
	"gfd/internal/fault"
	"gfd/internal/graph"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// Environment contract between coordinator and worker child.
const (
	// EnvWorker marks a process as a dist worker: any binary that calls
	// MaybeWorker early in main becomes spawnable as a worker with no
	// flags of its own.
	EnvWorker = "GFD_DIST_WORKER"
	// EnvFault carries an encoded fault.Plan (Plan.Encode) so seeded
	// process faults replay deterministically in the child. Respawned
	// workers are started without it — a replacement process must not
	// re-die on the same injected fault.
	EnvFault = "GFD_DIST_FAULT"
)

// Worker exit codes the coordinator maps back to failure causes. Anything
// nonzero is a death; these make injected faults recognizable in
// WorkerError text and tests.
const (
	exitProtocol  = 1  // protocol/internal error
	exitKilled    = 42 // injected KillProcess fired
	exitTruncated = 43 // injected TruncateMessage fired (exit mid-frame)
)

// vioBatch is how many violations a worker coalesces per fVio frame.
const vioBatch = 64

// MaybeWorker turns the current process into a dist worker when the
// environment says so, never returning in that case (the process exits
// with the worker's status). Call it first thing in main() — and in
// TestMain for any test binary the chaos suite re-executes.
func MaybeWorker() {
	if os.Getenv(EnvWorker) == "" {
		return
	}
	os.Exit(workerMain(os.Stdin, os.Stdout, os.Stderr))
}

// workerMain is the worker protocol loop: HELLO → open shard → READY →
// (ASSIGN → VIO* → DONE)* → SHUTDOWN → CENSUS. It deliberately recovers
// nothing: a panic — injected or genuine — crashes the process with a
// stack on stderr, which is exactly the failure mode the coordinator is
// built to detect and survive.
func workerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "gfd-dist-worker: "+format+"\n", args...)
		return exitProtocol
	}
	fr := &frameReader{r: bufio.NewReaderSize(stdin, 1<<16)}
	typ, payload, err := fr.read()
	if err != nil {
		return fail("reading hello: %v", err)
	}
	if typ != fHello {
		return fail("first frame is type %d, want hello", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return fail("decoding hello: %v", err)
	}
	if h.proto != protoVersion {
		return fail("protocol version %d, want %d", h.proto, protoVersion)
	}
	plan, err := fault.DecodePlan(os.Getenv(EnvFault))
	if err != nil {
		return fail("decoding fault plan: %v", err)
	}
	inj := plan.Arm(h.workers)
	fw := &frameWriter{
		w:      bufio.NewWriterSize(stdout, 1<<16),
		inj:    inj,
		worker: h.worker,
		onTruncate: func() {
			os.Exit(exitTruncated)
		},
	}

	ctx := context.Background()
	loaded, err := store.Open(ctx, h.shardPath)
	if err != nil {
		return fail("opening shard %s: %v", h.shardPath, err)
	}
	defer loaded.Close()
	snap := loaded.Snapshot()
	if snap.NumNodes() != h.numNodes {
		return fail("shard %s holds %d nodes, manifest says %d", h.shardPath, snap.NumNodes(), h.numNodes)
	}
	set, err := core.ParseRules(strings.NewReader(h.rules))
	if err != nil {
		return fail("parsing shipped rules: %v", err)
	}
	// The overlay receives halo patches; the shard snapshot beneath it is
	// the mmap'd file. Every shard carries the full (global) symbol table,
	// so halo interning never mints new codes and enumeration order stays
	// identical across workers — the retry dedupe depends on it.
	ov := graph.NewOverlay(snap.Graph())
	b := validate.NewBundleOver(snap.Graph(), ov, set, nil)
	// The coordinator shipped the post-reduction set and its grouping
	// flags; NoReduce keeps the worker from reducing again, and the flags
	// reproduce the exact group indices the unit descriptors reference.
	opt := validate.Options{
		NoOptimize:     !h.combine,
		NoReduce:       true,
		ArbitraryPivot: h.arbPivot,
	}
	runner := validate.NewUnitRunner(ctx, b, opt, inj, h.worker)
	if h.groups != runner.Groups() {
		return fail("rebuilt %d rule groups, coordinator has %d", runner.Groups(), h.groups)
	}
	if err := fw.write(fReady, encodeReady(readyMsg{numNodes: snap.NumNodes(), groups: runner.Groups()})); err != nil {
		return fail("writing ready: %v", err)
	}

	hb := h.heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if fw.write(fHeartbeat, nil) != nil {
					return // coordinator gone; the main loop will notice
				}
			}
		}
	}()

	var census censusMsg
	for {
		typ, payload, err := fr.read()
		if err != nil {
			if err == io.EOF {
				return 0 // coordinator closed the pipe: clean shutdown
			}
			return fail("reading frame: %v", err)
		}
		switch typ {
		case fAssign:
			m, err := decodeAssign(payload)
			if err != nil {
				return fail("decoding assign: %v", err)
			}
			// Process-kill faults fire at unit start, before any work —
			// the moment a real OOM-kill or node loss is most likely.
			if inj.ProcKill(h.worker, m.unit.ID) {
				os.Exit(exitKilled)
			}
			if err := applyHalo(ov, m.halo); err != nil {
				return fail("patching halo for unit %d: %v", m.unit.ID, err)
			}
			start := time.Now()
			var delivered int64
			batch := make([]validate.Violation, 0, vioBatch)
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				if fw.write(fVio, encodeVio(vioMsg{unit: m.unit.ID, vios: batch})) != nil {
					return false
				}
				delivered += int64(len(batch))
				batch = batch[:0]
				return true
			}
			emit := func(v validate.Violation) bool {
				batch = append(batch, v)
				if len(batch) >= vioBatch {
					return flush()
				}
				return true
			}
			found, err := runner.Run(m.unit, m.skip, emit)
			if err != nil {
				return fail("running unit %d: %v", m.unit.ID, err)
			}
			if !flush() {
				return fail("writing violations for unit %d", m.unit.ID)
			}
			done := doneMsg{unit: m.unit.ID, found: found, delivered: delivered, wall: time.Since(start)}
			if err := fw.write(fDone, encodeDone(done)); err != nil {
				return fail("writing done for unit %d: %v", m.unit.ID, err)
			}
			census.unitsRun++
			census.delivered += delivered
		case fShutdown:
			if err := fw.write(fCensus, encodeCensus(census)); err != nil {
				return fail("writing census: %v", err)
			}
			return 0
		default:
			return fail("unexpected frame type %d", typ)
		}
	}
}

// applyHalo patches the shipped non-owned block nodes into the worker's
// overlay: attribute tuples, then full adjacency in both directions.
// Edges already present — because the other endpoint is owned, or because
// an earlier unit's halo introduced them — are skipped via HasEdge, so
// re-shipment after respawn stays idempotent.
func applyHalo(ov *graph.Overlay, halo []haloNode) error {
	syms := ov.Syms()
	for _, h := range halo {
		for _, kv := range h.attrs {
			ov.SetAttr(h.id, kv[0], kv[1])
		}
		for _, e := range h.out {
			if l := syms.Lookup(e.label); l != graph.NoSym && ov.HasEdge(h.id, e.to, l) {
				continue
			}
			if err := ov.AddEdge(h.id, e.to, e.label); err != nil {
				return err
			}
		}
		for _, e := range h.in {
			if l := syms.Lookup(e.label); l != graph.NoSym && ov.HasEdge(e.to, h.id, l) {
				continue
			}
			if err := ov.AddEdge(e.to, h.id, e.label); err != nil {
				return err
			}
		}
	}
	return nil
}
