package core

import (
	"testing"

	"gfd/internal/graph"
)

// tupleGraph represents relation R tuples as graph nodes labeled R
// (Example 5, ϕ4 setting).
func tupleGraph(rows []graph.Attrs) *graph.Graph {
	g := graph.New(len(rows), 0)
	for _, row := range rows {
		g.AddNode("R", row)
	}
	return g
}

func TestFromFD(t *testing.T) {
	f := FromFD("fd", "R", []string{"A"}, []string{"B"})
	if f.Q.NumNodes() != 2 || f.Q.NumEdges() != 0 {
		t.Fatalf("FD pattern shape: %v", f.Q)
	}
	if !f.IsVariable() {
		t.Error("FD encoding must be a variable GFD")
	}
	g := tupleGraph([]graph.Attrs{
		{"A": "1", "B": "x"},
		{"A": "1", "B": "y"}, // violates A -> B
		{"A": "2", "B": "z"},
	})
	// Match (t0, t1): same A, different B.
	if !f.IsViolation(g, Match{0, 1}) {
		t.Error("FD violation not detected")
	}
	if f.IsViolation(g, Match{0, 2}) {
		t.Error("different A values cannot violate")
	}
}

func TestFromCFD(t *testing.T) {
	// R(country = 44, zip -> street), the paper's CFD example.
	f := FromCFD("cfd", "R",
		[]CFDCondition{{Attr: "country", Value: "44"}},
		[]string{"zip"}, []string{"street"})
	g := tupleGraph([]graph.Attrs{
		{"country": "44", "zip": "EH8", "street": "Mayfield"},
		{"country": "44", "zip": "EH8", "street": "Crichton"}, // violation
		{"country": "01", "zip": "EH8", "street": "Other"},    // out of scope
	})
	if !f.IsViolation(g, Match{0, 1}) {
		t.Error("CFD violation not detected")
	}
	if f.IsViolation(g, Match{0, 2}) {
		t.Error("tuples outside the condition scope cannot violate")
	}
}

func TestFromConstantCFD(t *testing.T) {
	// R(country = 44, area_code = 131 -> city = "Edi") = ϕ4''.
	f := FromConstantCFD("ccfd", "R",
		[]CFDCondition{{Attr: "country", Value: "44"}, {Attr: "area_code", Value: "131"}},
		[]CFDCondition{{Attr: "city", Value: "Edi"}})
	if !f.IsConstant() {
		t.Error("constant CFD encoding must be a constant GFD")
	}
	if f.Q.NumNodes() != 1 {
		t.Error("single-tuple CFD uses a one-node pattern")
	}
	g := tupleGraph([]graph.Attrs{
		{"country": "44", "area_code": "131", "city": "Gla"}, // violation
		{"country": "44", "area_code": "131", "city": "Edi"},
		{"country": "44", "area_code": "20", "city": "Lon"},
	})
	if !f.IsViolation(g, Match{0}) {
		t.Error("constant CFD violation not detected")
	}
	if f.IsViolation(g, Match{1}) || f.IsViolation(g, Match{2}) {
		t.Error("false positives in constant CFD")
	}
}

func TestSetOperations(t *testing.T) {
	f1 := FromFD("a", "R", []string{"A"}, []string{"B"})
	f2 := FromFD("b", "R", []string{"B"}, []string{"C"})
	s, err := NewSet(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Get("a") != f1 || s.Get("zzz") != nil {
		t.Error("Get broken")
	}
	if err := s.Add(FromFD("a", "R", nil, nil)); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if s.Size() <= 0 || s.MaxPatternSize() != f1.Q.Size() {
		t.Errorf("Size=%d MaxPatternSize=%d", s.Size(), s.MaxPatternSize())
	}
	names := s.SortedNames()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("SortedNames = %v", names)
	}
}
