package core

import (
	"gfd/internal/graph"
)

// AttrSource is the interned attribute view a LiteralProgram evaluates
// against: Snapshot's frozen arena on the batch path, AttrIndex's mutable
// pairs on the incremental path. Both answer "what is the interned value
// of attribute `name` on node v" with a binary search over int32 pairs.
type AttrSource interface {
	AttrSym(v graph.NodeID, name graph.Sym) (graph.Sym, bool)
}

// litInst is one lowered literal: variables resolved to pattern node
// indices (done once per rule by bind) and attribute names / constant
// values resolved to symbol codes of one table (done once per (rule,
// snapshot) pair by CompileLiterals). Per-match evaluation is then a
// couple of binary searches and integer compares — no strings, no maps.
type litInst struct {
	xi, yi int32
	a, b   graph.Sym // attribute name codes
	c      graph.Sym // constant value code, when kind == Constant
	kind   LiteralKind
}

// LiteralProgram is a GFD's X → Y condition compiled onto a symbol table —
// the attribute-side analogue of pattern.Compiled. A program is tied to
// the table it was lowered on: evaluate it only against an AttrSource
// backed by that table (the Snapshot it was compiled for, or the detector's
// AttrIndex). GFD.ProgramFor handles the per-snapshot caching.
type LiteralProgram struct {
	x, y []litInst

	// neverX / neverY record that some literal of the side references a
	// name or constant the table has never seen. Such a literal cannot
	// hold on any match (a missing attribute name means no node carries
	// it; a missing constant means no node value equals it), so the whole
	// side short-circuits with zero per-match work. NOTE: only sound for
	// tables that intern every rule constant up front or never grow
	// (Snapshot tables are frozen; AttrIndex callers use InternLiterals).
	neverX, neverY bool
}

// CompileLiterals lowers ϕ's literals onto syms. It only reads the table
// (Lookup, never Intern), so compiling against a shared snapshot table is
// safe from concurrent workers.
func (f *GFD) CompileLiterals(syms *graph.Symbols) *LiteralProgram {
	f.bind()
	p := &LiteralProgram{}
	p.x, p.neverX = lowerLiterals(f.xb, syms)
	p.y, p.neverY = lowerLiterals(f.yb, syms)
	return p
}

func lowerLiterals(ls []boundLiteral, syms *graph.Symbols) ([]litInst, bool) {
	if len(ls) == 0 {
		return nil, false
	}
	never := false
	out := make([]litInst, len(ls))
	for i, l := range ls {
		in := litInst{xi: int32(l.xi), kind: l.kind, a: syms.Lookup(l.a)}
		if in.a == graph.NoSym {
			never = true
		}
		if l.kind == Constant {
			in.c = syms.Lookup(l.c)
			if in.c == graph.NoSym {
				never = true
			}
		} else {
			in.yi = int32(l.yi)
			in.b = syms.Lookup(l.b)
			if in.b == graph.NoSym {
				never = true
			}
		}
		out[i] = in
	}
	return out, never
}

// Resolved reports that every literal name and constant lowered to a real
// code: such a program can never go stale as its table grows (codes are
// append-only), so holders may reuse it across re-compilations. A program
// with a never-matching side must be recompiled once the table may have
// interned the missing name.
func (p *LiteralProgram) Resolved() bool { return !p.neverX && !p.neverY }

// InternLiterals interns every attribute name and constant of ϕ's literals
// into syms, so a later CompileLiterals against the same table resolves
// them all. Required before compiling against a growing table (AttrIndex):
// a constant lowered to NoSym must mean "this value can never occur", which
// only holds if the table is the sole authority on the value universe.
func (f *GFD) InternLiterals(syms *graph.Symbols) {
	for _, side := range [2][]Literal{f.X, f.Y} {
		for _, l := range side {
			syms.Intern(l.A)
			if l.Kind == Constant {
				syms.Intern(l.C)
			} else {
				syms.Intern(l.B)
			}
		}
	}
}

// holds evaluates one instruction on a match: true iff the referenced
// attributes exist and the equality holds (the compiled evalLiteral).
func (l *litInst) holds(src AttrSource, h Match) bool {
	xv, ok := src.AttrSym(h[l.xi], l.a)
	if !ok {
		return false
	}
	if l.kind == Constant {
		return xv == l.c
	}
	yv, ok := src.AttrSym(h[l.yi], l.b)
	return ok && xv == yv
}

// SatisfiesX reports h(x̄) |= X under the paper's semantics: a missing
// attribute leaves X unsatisfied (and the GFD trivially satisfied).
func (p *LiteralProgram) SatisfiesX(src AttrSource, h Match) bool {
	if p.neverX {
		return false
	}
	for i := range p.x {
		if !p.x[i].holds(src, h) {
			return false
		}
	}
	return true
}

// SatisfiesY reports h(x̄) |= Y; in Y a missing attribute is a violation.
func (p *LiteralProgram) SatisfiesY(src AttrSource, h Match) bool {
	if p.neverY {
		return false
	}
	for i := range p.y {
		if !p.y[i].holds(src, h) {
			return false
		}
	}
	return true
}

// Holds reports h(x̄) |= X → Y.
func (p *LiteralProgram) Holds(src AttrSource, h Match) bool {
	if !p.SatisfiesX(src, h) {
		return true
	}
	return p.SatisfiesY(src, h)
}

// IsViolation reports whether h(x̄) violates ϕ: h |= X but h ̸|= Y.
func (p *LiteralProgram) IsViolation(src AttrSource, h Match) bool {
	return p.SatisfiesX(src, h) && !p.SatisfiesY(src, h)
}
