package core

import (
	"bytes"
	"strings"
	"testing"
)

const sampleRules = `
# flight consistency, the paper's phi1
gfd phi1 {
  node x flight
  node x1 id
  node y flight
  node y1 id
  edge x number x1
  edge y number y1
  when x1.val = y1.val
  then x.dest = y.dest
}

gfd capital {
  node x country
  node y city
  node z city
  edge x capital y
  edge x capital z
  then y.val = z.val
}

gfd fake {
  node a account
  when a.is_fake = "true", a.region = r1
  then a.flagged = true
}
`

func TestParseRules(t *testing.T) {
	set, err := ParseRules(strings.NewReader(sampleRules))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("parsed %d rules", set.Len())
	}
	phi1 := set.Get("phi1")
	if phi1 == nil {
		t.Fatal("phi1 missing")
	}
	if phi1.Q.NumNodes() != 4 || phi1.Q.NumEdges() != 2 {
		t.Errorf("phi1 pattern: %v", phi1.Q)
	}
	if len(phi1.X) != 1 || phi1.X[0].Kind != Variable {
		t.Errorf("phi1.X = %v", phi1.X)
	}
	if len(phi1.Y) != 1 || phi1.Y[0].Kind != Variable {
		t.Errorf("phi1.Y = %v", phi1.Y)
	}

	capital := set.Get("capital")
	if len(capital.X) != 0 {
		t.Error("capital has empty X")
	}

	fake := set.Get("fake")
	if len(fake.X) != 2 {
		t.Fatalf("fake.X = %v", fake.X)
	}
	// Quoted and unquoted constants both parse as constants; "r1" is a
	// constant because r1 is not a declared variable.
	for _, l := range fake.X {
		if l.Kind != Constant {
			t.Errorf("literal %v should be constant", l)
		}
	}
	if fake.X[0].C != "true" || fake.X[1].C != "r1" {
		t.Errorf("constants = %q, %q", fake.X[0].C, fake.X[1].C)
	}
}

func TestParseRulesVarVsConstantDisambiguation(t *testing.T) {
	// y1.val on the right is a variable literal only when y1 is declared.
	src := `
gfd g {
  node x a
  when x.attr = y1.val
}`
	set, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	l := set.Get("g").X[0]
	if l.Kind != Constant || l.C != "y1.val" {
		t.Errorf("undeclared dotted RHS should be a constant: %v", l)
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []string{
		"gfd a {\n  node x l\n",                         // unterminated
		"}",                                             // stray brace
		"node x l",                                      // outside block
		"gfd a {\n  gfd b {\n}\n}",                      // nested
		"gfd a\n",                                       // missing brace
		"gfd a {\n  node x\n}",                          // short node
		"gfd a {\n  edge x e y\n}",                      // unknown vars
		"gfd a {\n  node x l\n  edge x e\n}",            // short edge
		"gfd a {\n  node x l\n  when x.attr\n}",         // no '='
		"gfd a {\n  node x l\n  when attr = 3\n}",       // no var.attr lhs
		"gfd a {\n  node x l\n  when q.attr = 3\n}",     // undeclared lhs var
		"gfd a {\n  node x l\n  frobnicate\n}",          // unknown directive
		"gfd a {\n  node x l\n}\ngfd a {\n node y l\n}", // duplicate names
	}
	for _, c := range cases {
		if _, err := ParseRules(strings.NewReader(c)); err == nil {
			t.Errorf("ParseRules(%q) should fail", c)
		}
	}
}

func TestRulesRoundTrip(t *testing.T) {
	set, err := ParseRules(strings.NewReader(sampleRules))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRules(&buf, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ParseRules(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if set2.Len() != set.Len() {
		t.Fatalf("roundtrip lost rules: %d vs %d", set2.Len(), set.Len())
	}
	for _, f := range set.Rules() {
		f2 := set2.Get(f.Name)
		if f2 == nil {
			t.Fatalf("rule %s lost", f.Name)
		}
		if f2.Q.NumNodes() != f.Q.NumNodes() || f2.Q.NumEdges() != f.Q.NumEdges() {
			t.Errorf("%s: pattern changed", f.Name)
		}
		if len(f2.X) != len(f.X) || len(f2.Y) != len(f.Y) {
			t.Errorf("%s: literals changed", f.Name)
		}
	}
}

func TestRoundTripQuotedConstant(t *testing.T) {
	src := "gfd g {\n  node x blog\n  when x.keyword = \"free prize, draw\"\n  then x.spam = \"yes\"\n}\n"
	set, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Get("g").X[0].C; got != "free prize, draw" {
		t.Fatalf("quoted comma constant = %q", got)
	}
	var buf bytes.Buffer
	if err := WriteRules(&buf, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ParseRules(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := set2.Get("g").X[0].C; got != "free prize, draw" {
		t.Errorf("roundtripped constant = %q", got)
	}
}
