package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gfd/internal/pattern"
)

// The rule file format is line-oriented:
//
//	# comment
//	gfd <name> {
//	  node <var> <label>          # label may be _ (wildcard)
//	  edge <var> <label> <var>    # label may be _
//	  when <literal> [, <literal> ...]
//	  then <literal> [, <literal> ...]
//	}
//
// A literal is either  x.A = y.B  (variable literal, y must be a declared
// variable) or  x.A = "c" / x.A = c  (constant literal). `when` may be
// omitted (X = ∅). Multiple `when`/`then` lines accumulate.

// ParseRules reads a rule file and returns the rule set.
func ParseRules(r io.Reader) (*Set, error) {
	set := MustNewSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0

	var (
		cur  *ruleBuilder
		name string
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "gfd":
			if cur != nil {
				return nil, fmt.Errorf("rules: line %d: nested gfd block", lineno)
			}
			if len(fields) < 3 || fields[len(fields)-1] != "{" {
				return nil, fmt.Errorf("rules: line %d: want `gfd <name> {`", lineno)
			}
			name = strings.Trim(fields[1], `"`)
			cur = &ruleBuilder{q: pattern.New()}
		case fields[0] == "}":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: stray '}'", lineno)
			}
			f, err := New(name, cur.q, cur.x, cur.y)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
			}
			if err := set.Add(f); err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
			}
			cur = nil
		case cur == nil:
			return nil, fmt.Errorf("rules: line %d: %q outside gfd block", lineno, fields[0])
		case fields[0] == "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("rules: line %d: want `node <var> <label>`", lineno)
			}
			cur.q.AddNode(pattern.Var(fields[1]), fields[2])
		case fields[0] == "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("rules: line %d: want `edge <from> <label> <to>`", lineno)
			}
			from, ok := cur.q.VarIndex(pattern.Var(fields[1]))
			if !ok {
				return nil, fmt.Errorf("rules: line %d: unknown variable %q", lineno, fields[1])
			}
			to, ok := cur.q.VarIndex(pattern.Var(fields[3]))
			if !ok {
				return nil, fmt.Errorf("rules: line %d: unknown variable %q", lineno, fields[3])
			}
			cur.q.AddEdge(from, to, fields[2])
		case fields[0] == "when", fields[0] == "then":
			rest := strings.TrimSpace(line[len(fields[0]):])
			lits, err := parseLiterals(rest, cur.q)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineno, err)
			}
			if fields[0] == "when" {
				cur.x = append(cur.x, lits...)
			} else {
				cur.y = append(cur.y, lits...)
			}
		default:
			return nil, fmt.Errorf("rules: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("rules: unterminated gfd block %q", name)
	}
	return set, nil
}

type ruleBuilder struct {
	q    *pattern.Pattern
	x, y []Literal
}

func parseLiterals(s string, q *pattern.Pattern) ([]Literal, error) {
	parts := splitLiterals(s)
	lits := make([]Literal, 0, len(parts))
	for _, part := range parts {
		l, err := parseLiteral(strings.TrimSpace(part), q)
		if err != nil {
			return nil, err
		}
		lits = append(lits, l)
	}
	return lits, nil
}

// splitLiterals splits on commas that are outside double quotes.
func splitLiterals(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func parseLiteral(s string, q *pattern.Pattern) (Literal, error) {
	lhs, rhs, ok := cutOutsideQuotes(s, '=')
	if !ok {
		return Literal{}, fmt.Errorf("bad literal %q: missing '='", s)
	}
	lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
	xv, xa, ok := strings.Cut(lhs, ".")
	if !ok {
		return Literal{}, fmt.Errorf("bad literal %q: left side must be var.attr", s)
	}
	x := pattern.Var(xv)
	if _, declared := q.VarIndex(x); !declared {
		return Literal{}, fmt.Errorf("bad literal %q: unknown variable %q", s, xv)
	}
	// Right side: var.attr if it parses as one and the var is declared;
	// otherwise a constant (quotes stripped).
	if yv, yb, isDotted := strings.Cut(rhs, "."); isDotted && !strings.HasPrefix(rhs, `"`) {
		if _, declared := q.VarIndex(pattern.Var(yv)); declared {
			return VarEq(x, xa, pattern.Var(yv), yb), nil
		}
	}
	if c, err := strconv.Unquote(rhs); err == nil {
		return Const(x, xa, c), nil
	}
	return Const(x, xa, rhs), nil
}

func cutOutsideQuotes(s string, sep byte) (string, string, bool) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case sep:
			if !inQuote {
				return s[:i], s[i+1:], true
			}
		}
	}
	return s, "", false
}

// WriteRules serializes the rule set in the ParseRules format.
func WriteRules(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Rules() {
		fmt.Fprintf(bw, "gfd %s {\n", f.Name)
		for _, n := range f.Q.Nodes {
			fmt.Fprintf(bw, "  node %s %s\n", n.Var, n.Label)
		}
		for _, e := range f.Q.Edges {
			fmt.Fprintf(bw, "  edge %s %s %s\n", f.Q.Nodes[e.From].Var, e.Label, f.Q.Nodes[e.To].Var)
		}
		if len(f.X) > 0 {
			fmt.Fprintf(bw, "  when %s\n", formatLiterals(f.X))
		}
		if len(f.Y) > 0 {
			fmt.Fprintf(bw, "  then %s\n", formatLiterals(f.Y))
		}
		fmt.Fprintln(bw, "}")
	}
	return bw.Flush()
}

func formatLiterals(ls []Literal) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		if l.Kind == Constant {
			parts[i] = fmt.Sprintf("%s.%s = %q", l.X, l.A, l.C)
		} else {
			parts[i] = fmt.Sprintf("%s.%s = %s.%s", l.X, l.A, l.Y, l.B)
		}
	}
	return strings.Join(parts, ", ")
}

// SortedNames returns rule names in sorted order (stable test output).
func (s *Set) SortedNames() []string {
	names := make([]string, 0, s.Len())
	for _, r := range s.rules {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}
