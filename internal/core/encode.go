package core

import (
	"fmt"

	"gfd/internal/pattern"
)

// This file provides the relational encodings of Section 3 (Example 5,
// items ϕ4, ϕ4', ϕ4''): FDs and CFDs over a relation R become GFDs over a
// graph in which every tuple of R is a node labeled R whose attributes are
// the tuple's fields.

// FromFD encodes a relational FD R(lhs → rhs) as the variable GFD
// (Q4[x, y], ⋀_{A∈lhs} x.A = y.A → ⋀_{B∈rhs} x.B = y.B), where Q4 is two
// isolated nodes labeled relation.
func FromFD(name, relation string, lhs, rhs []string) *GFD {
	q := pattern.New()
	q.AddNode("x", relation)
	q.AddNode("y", relation)
	var x, y []Literal
	for _, a := range lhs {
		x = append(x, VarEq("x", a, "y", a))
	}
	for _, b := range rhs {
		y = append(y, VarEq("x", b, "y", b))
	}
	return MustNew(name, q, x, y)
}

// CFDCondition is one fixed attribute-value binding of a CFD's pattern
// tuple, e.g. country = "44".
type CFDCondition struct {
	Attr  string
	Value string
}

// FromCFD encodes a two-tuple CFD R(conds ∧ lhs → rhs), e.g.
// R(country = 44, zip → street): both tuples must satisfy the constant
// bindings, agree on lhs, and then must agree on rhs.
func FromCFD(name, relation string, conds []CFDCondition, lhs, rhs []string) *GFD {
	q := pattern.New()
	q.AddNode("x", relation)
	q.AddNode("y", relation)
	var x, y []Literal
	for _, c := range conds {
		x = append(x, Const("x", c.Attr, c.Value), Const("y", c.Attr, c.Value))
	}
	for _, a := range lhs {
		x = append(x, VarEq("x", a, "y", a))
	}
	for _, b := range rhs {
		y = append(y, VarEq("x", b, "y", b))
	}
	return MustNew(name, q, x, y)
}

// FromConstantCFD encodes a single-tuple constant CFD such as
// R(country = 44, area_code = 131 → city = "Edi") as a GFD over the
// one-node pattern Q”4[x].
func FromConstantCFD(name, relation string, conds []CFDCondition, consequent []CFDCondition) *GFD {
	q := pattern.New()
	q.AddNode("x", relation)
	var x, y []Literal
	for _, c := range conds {
		x = append(x, Const("x", c.Attr, c.Value))
	}
	for _, c := range consequent {
		y = append(y, Const("x", c.Attr, c.Value))
	}
	return MustNew(name, q, x, y)
}

// RequireAttr builds the type-information GFD (Q[x], ∅ → x.A = x.A) for a
// single node labeled typ: every entity of that type must carry attribute a
// (Section 3, special case 3).
func RequireAttr(name, typ, a string) *GFD {
	q := pattern.New()
	q.AddNode("x", typ)
	return MustNew(name, q, nil, []Literal{VarEq("x", a, "x", a)})
}

// Set is an ordered collection Σ of GFDs with unique names.
type Set struct {
	rules []*GFD
	byKey map[string]int
}

// NewSet builds a Set from rules; duplicate names are rejected.
func NewSet(rules ...*GFD) (*Set, error) {
	s := &Set{byKey: make(map[string]int, len(rules))}
	for _, r := range rules {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSet is NewSet that panics on error.
func MustNewSet(rules ...*GFD) *Set {
	s, err := NewSet(rules...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends a rule.
func (s *Set) Add(r *GFD) error {
	if _, dup := s.byKey[r.Name]; dup {
		return fmt.Errorf("gfd set: duplicate rule name %q", r.Name)
	}
	s.byKey[r.Name] = len(s.rules)
	s.rules = append(s.rules, r)
	return nil
}

// Rules returns the rules in insertion order. Shared slice; read-only.
func (s *Set) Rules() []*GFD { return s.rules }

// Len returns ‖Σ‖, the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Get returns the rule named name, or nil.
func (s *Set) Get(name string) *GFD {
	if i, ok := s.byKey[name]; ok {
		return s.rules[i]
	}
	return nil
}

// Size returns |Σ| = Σ_ϕ |ϕ|.
func (s *Set) Size() int {
	total := 0
	for _, r := range s.rules {
		total += r.Size()
	}
	return total
}

// MaxPatternSize returns max_ϕ |Q_ϕ|, used to bound reasoning searches.
func (s *Set) MaxPatternSize() int {
	max := 0
	for _, r := range s.rules {
		if sz := r.Q.Size(); sz > max {
			max = sz
		}
	}
	return max
}
